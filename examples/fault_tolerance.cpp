// Fault tolerance walkthrough (§6.1): OFC's cache survives a worker crash,
// and when the whole cache path degrades the proxy's circuit breaker routes
// traffic around it (DESIGN.md §10).
//
// Act 1 — node crash: objects are cached with one in-memory master copy and
// on-disk backup replicas on other nodes. When a node fail-stops, the
// surviving nodes promote their backups to masters (partitioned, parallel
// recovery), so cached data stays available — and the external-consistency
// machinery (shadow objects + persistors) guarantees the RSDS never serves
// stale payloads either way.
//
// Act 2 — cache-path brownout: consecutive cache failures trip the breaker
// open; reads serve RSDS-direct (the no-cache baseline path) until half-open
// probes find the cache healthy again and close it.
//
// Run: ./build/examples/fault_tolerance
#include <cstdio>
#include <string>

#include "src/core/proxy.h"
#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"
#include "src/store/object_store.h"

using namespace ofc;

namespace {

const char* BreakerStateName(core::Proxy::BreakerState state) {
  switch (state) {
    case core::Proxy::BreakerState::kClosed:
      return "closed";
    case core::Proxy::BreakerState::kOpen:
      return "open";
    case core::Proxy::BreakerState::kHalfOpen:
      return "half-open";
  }
  return "?";
}

void BreakerDemo() {
  std::printf("\n--- Act 2: cache-path circuit breaker ---\n");
  sim::EventLoop loop;
  store::ObjectStore rsds(&loop, sim::LatencyProfiles::SwiftRequest(), Rng(1), "swift",
                          sim::LatencyProfiles::SwiftControl());
  rc::ClusterOptions cluster_options;
  cluster_options.default_capacity = GiB(1);
  cluster_options.replication_factor = 1;
  rc::Cluster cluster(&loop, 2, cluster_options, Rng(2));
  core::ProxyOptions proxy_options;
  proxy_options.breaker_failure_threshold = 3;
  proxy_options.breaker_open_duration = Seconds(5);
  proxy_options.breaker_half_open_probes = 2;
  core::Proxy proxy(&loop, &cluster, &rsds, proxy_options);

  faas::InvocationContext ctx;
  ctx.worker = 0;
  ctx.function = "demo";
  ctx.should_cache = true;
  auto read = [&](const std::string& key) {
    bool ok = false;
    proxy.Read(ctx, key, [&ok](Result<Bytes> r) { ok = r.ok(); });
    loop.Run();
    return ok;
  };
  for (int i = 0; i < 8; ++i) {
    rsds.Seed("media/" + std::to_string(i), MiB(1), {});
  }

  // The cache path browns out for 3 simulated seconds: every cache op fails,
  // but functions keep getting their data from the RSDS underneath.
  proxy.InjectCacheFaultUntil(loop.now() + Seconds(3));
  for (int i = 0; i < 4; ++i) {
    const bool ok = read("media/" + std::to_string(i));
    std::printf("read %d during brownout: %s; breaker %s\n", i,
                ok ? "served (RSDS)" : "FAILED",
                BreakerStateName(proxy.breaker_state()));
  }
  std::printf("breaker tripped after %d consecutive cache failures; %llu read(s)\n"
              "bypassed the sick cache entirely while open.\n",
              proxy_options.breaker_failure_threshold,
              static_cast<unsigned long long>(proxy.stats().breaker_bypassed_reads));

  // Past the open window the fault has healed: probes succeed and it closes.
  loop.RunUntil(loop.now() + Seconds(6));
  for (int i = 4; i < 6; ++i) {
    read("media/" + std::to_string(i));
    std::printf("probe read %d: breaker %s\n", i,
                BreakerStateName(proxy.breaker_state()));
  }
  std::printf("breaker closed after %llu healthy probe(s); cache path restored\n"
              "(opens=%llu closes=%llu).\n",
              static_cast<unsigned long long>(proxy.stats().breaker_probes),
              static_cast<unsigned long long>(proxy.stats().breaker_opens),
              static_cast<unsigned long long>(proxy.stats().breaker_closes));
}

}  // namespace

int main() {
  sim::EventLoop loop;
  rc::ClusterOptions options;
  options.replication_factor = 2;
  options.default_capacity = GiB(1);
  rc::Cluster cluster(&loop, 4, options, Rng(3));

  // Populate the cache: 40 objects of 1-8 MiB mastered on node 0.
  Rng rng(9);
  Bytes total = 0;
  for (int i = 0; i < 40; ++i) {
    const Bytes size = MiB(rng.UniformInt(1, 8));
    total += size;
    cluster.Write(0, "obj/" + std::to_string(i), size, 1, rc::ObjectClass::kInput, false,
                  [](Status) {});
  }
  loop.Run();
  std::printf("Cached %zu objects (%s) with master copies on node 0;\n",
              cluster.NumObjects(), FormatBytes(total).c_str());
  std::printf("each object has %d on-disk backup replicas on other nodes.\n\n",
              options.replication_factor);

  // Fail-stop node 0.
  const rc::RecoveryResult recovery = cluster.CrashNode(0);
  std::printf("Node 0 crashed.\n");
  std::printf("  recovered objects : %zu\n", recovery.objects_recovered);
  std::printf("  lost objects      : %zu\n", recovery.objects_lost);
  std::printf("  recovery makespan : %s (parallel backup promotion)\n\n",
              FormatDuration(recovery.duration).c_str());

  // Every object is still readable from its new master.
  int readable = 0;
  for (int i = 0; i < 40; ++i) {
    cluster.Read(1, "obj/" + std::to_string(i), [&](Result<rc::CachedObject> obj) {
      readable += obj.ok();
    });
  }
  loop.Run();
  std::printf("Post-crash reads served from promoted masters: %d / 40\n", readable);

  // The node comes back empty and resumes its backup/master duties.
  cluster.RestartNode(0);
  bool rewrite_ok = false;
  cluster.Write(0, "obj/new", MiB(2), 1, rc::ObjectClass::kInput, false,
                [&](Status status) { rewrite_ok = status.ok(); });
  loop.Run();
  std::printf("Node 0 restarted; new writes placed on it again: %s\n",
              rewrite_ok ? "yes" : "no");

  BreakerDemo();
  return 0;
}
