// Fault tolerance walkthrough (§6.1): OFC's cache survives a worker crash.
//
// Objects are cached with one in-memory master copy and on-disk backup
// replicas on other nodes. When a node fail-stops, the surviving nodes promote
// their backups to masters (partitioned, parallel recovery), so cached data
// stays available — and the external-consistency machinery (shadow objects +
// persistors) guarantees the RSDS never serves stale payloads either way.
//
// Run: ./build/examples/fault_tolerance
#include <cstdio>

#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"

using namespace ofc;

int main() {
  sim::EventLoop loop;
  rc::ClusterOptions options;
  options.replication_factor = 2;
  options.default_capacity = GiB(1);
  rc::Cluster cluster(&loop, 4, options, Rng(3));

  // Populate the cache: 40 objects of 1-8 MiB mastered on node 0.
  Rng rng(9);
  Bytes total = 0;
  for (int i = 0; i < 40; ++i) {
    const Bytes size = MiB(rng.UniformInt(1, 8));
    total += size;
    cluster.Write(0, "obj/" + std::to_string(i), size, 1, rc::ObjectClass::kInput, false,
                  [](Status) {});
  }
  loop.Run();
  std::printf("Cached %zu objects (%s) with master copies on node 0;\n",
              cluster.NumObjects(), FormatBytes(total).c_str());
  std::printf("each object has %d on-disk backup replicas on other nodes.\n\n",
              options.replication_factor);

  // Fail-stop node 0.
  const rc::RecoveryResult recovery = cluster.CrashNode(0);
  std::printf("Node 0 crashed.\n");
  std::printf("  recovered objects : %zu\n", recovery.objects_recovered);
  std::printf("  lost objects      : %zu\n", recovery.objects_lost);
  std::printf("  recovery makespan : %s (parallel backup promotion)\n\n",
              FormatDuration(recovery.duration).c_str());

  // Every object is still readable from its new master.
  int readable = 0;
  for (int i = 0; i < 40; ++i) {
    cluster.Read(1, "obj/" + std::to_string(i), [&](Result<rc::CachedObject> obj) {
      readable += obj.ok();
    });
  }
  loop.Run();
  std::printf("Post-crash reads served from promoted masters: %d / 40\n", readable);

  // The node comes back empty and resumes its backup/master duties.
  cluster.RestartNode(0);
  bool rewrite_ok = false;
  cluster.Write(0, "obj/new", MiB(2), 1, rc::ObjectClass::kInput, false,
                [&](Status status) { rewrite_ok = status.ok(); });
  loop.Run();
  std::printf("Node 0 restarted; new writes placed on it again: %s\n",
              rewrite_ok ? "yes" : "no");
  return 0;
}
