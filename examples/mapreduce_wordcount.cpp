// MapReduce word count over a 30 MB text corpus — the paper's flagship
// analytics pipeline (§2.2.3, Figure 7i).
//
// The corpus is split into 512 KiB chunk objects; a map task per chunk emits
// per-chunk counts, and one reduce task merges them. The example runs the same
// pipeline on vanilla OWK-Swift and on OFC and prints the ETL breakdown: with
// OFC, intermediate map outputs live only in the RAM cache and are dropped
// when the pipeline finishes, so the E and L columns collapse.
//
// Run: ./build/examples/mapreduce_wordcount
#include <cstdio>

#include "src/faasload/environment.h"
#include "src/faasload/injector.h"

using namespace ofc;

namespace {

faas::PipelineRecord RunWordCount(faasload::Mode mode) {
  faasload::EnvironmentOptions options;
  options.platform.num_workers = 4;
  options.seed = 99;
  faasload::Environment env(mode, options);

  const workloads::PipelineSpec* pipeline = workloads::FindPipeline("map_reduce");
  Rng rng(5);
  for (const workloads::PipelineStage& stage : pipeline->stages) {
    faas::FunctionConfig config;
    config.spec = *workloads::FindFunction(stage.function);
    config.tenant = "analytics-team";
    config.booked_memory = GiB(1);
    (void)env.platform().RegisterFunction(config);
    if (env.ofc() != nullptr) {
      Rng pretrain_rng = rng.Fork();
      env.ofc()->trainer().Pretrain(config.spec, 1000, pretrain_rng);
    }
  }

  // Upload the corpus as chunk objects.
  workloads::MediaGenerator generator(rng.Fork());
  std::vector<faas::InputObject> chunks;
  const Bytes corpus = MiB(30);
  const int num_chunks = pipeline->NumChunks(corpus);
  for (int c = 0; c < num_chunks; ++c) {
    const workloads::MediaDescriptor chunk = generator.GenerateWithByteSize(
        workloads::InputKind::kText, corpus / num_chunks);
    const std::string key = "corpus/part-" + std::to_string(c);
    env.rsds().Seed(key, chunk.byte_size, faas::MediaToTags(chunk));
    chunks.push_back(faas::InputObject{key, chunk});
  }

  faas::PipelineRecord record;
  bool done = false;
  env.platform().InvokePipeline(*pipeline, chunks, [&](const faas::PipelineRecord& r) {
    record = r;
    done = true;
  });
  while (!done && env.loop().Step()) {
  }
  return record;
}

}  // namespace

int main() {
  std::printf("MapReduce word count over 30 MiB (60 chunks, 60 map + 1 reduce tasks)\n\n");
  std::printf("%-10s %-10s %-10s %-10s %-12s %s\n", "mode", "E sum", "T sum", "L sum",
              "wall clock", "tasks");
  for (faasload::Mode mode : {faasload::Mode::kOwkSwift, faasload::Mode::kOfc}) {
    const faas::PipelineRecord record = RunWordCount(mode);
    std::printf("%-10s %-10s %-10s %-10s %-12s %zu\n",
                faasload::ModeName(mode).c_str(),
                FormatDuration(record.extract_time).c_str(),
                FormatDuration(record.compute_time).c_str(),
                FormatDuration(record.load_time).c_str(),
                FormatDuration(record.total).c_str(), record.num_tasks);
  }
  std::printf(
      "\nOFC absorbs the chunk reads and buffers the intermediate map outputs in\n"
      "worker RAM (they never reach the object store), cutting the E/L phases.\n");
  return 0;
}
