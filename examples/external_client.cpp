// External-client consistency walkthrough (§6.2): a non-FaaS application reads
// and writes the object store directly while OFC's cache holds newer data.
//
// Demonstrates the shadow-object + webhook machinery:
//   1. A function writes its output: the store gets a shadow (empty
//      placeholder, new version); the payload sits in the RAM cache.
//   2. An external reader hits the store *before* the persistor ran: the read
//      webhook blocks the request, boosts the persistor, and only then serves
//      the (now current) payload — the reader can never observe stale data.
//   3. An external writer updates an object that is cached: the write webhook
//      invalidates the cached copy first, so functions re-fetch the new data.
//
// Run: ./build/examples/external_client
#include <cstdio>

#include "src/faasload/environment.h"
#include "src/faasload/injector.h"

using namespace ofc;

int main() {
  faasload::EnvironmentOptions options;
  options.platform.num_workers = 2;
  options.seed = 77;
  faasload::Environment env(faasload::Mode::kOfc, options);

  const workloads::FunctionSpec* spec = workloads::FindFunction("wand_sepia");
  faas::FunctionConfig config;
  config.spec = *spec;
  config.tenant = "shared-bucket-app";
  config.booked_memory = GiB(2);
  if (!env.platform().RegisterFunction(config).ok()) {
    return 1;
  }
  Rng rng(5);
  Rng pretrain_rng = rng.Fork();
  env.ofc()->trainer().Pretrain(*spec, 1000, pretrain_rng);

  workloads::MediaGenerator generator(rng.Fork());
  const workloads::MediaDescriptor photo =
      generator.GenerateWithByteSize(workloads::InputKind::kImage, KiB(512));
  env.rsds().Seed("bucket/in.jpg", photo.byte_size, faas::MediaToTags(photo));

  // 1. Run the function; stop the clock right at its completion, before the
  //    asynchronous persistor fires.
  std::string output_key;
  bool done = false;
  env.platform().Invoke("wand_sepia", {faas::InputObject{"bucket/in.jpg", photo}}, {0.4},
                        [&](const faas::InvocationRecord& record) {
                          output_key = record.output_key;
                          done = true;
                        });
  while (!done && env.loop().Step()) {
  }
  const auto meta = env.rsds().Stat(output_key);
  std::printf("function completed; store holds version %llu (payload present: %s)\n",
              static_cast<unsigned long long>(meta->latest_version),
              meta->IsShadow() ? "no - shadow only" : "yes");

  // 2. External read: the webhook must deliver the real payload.
  bool served = false;
  env.rsds().ExternalRead(output_key, [&](Result<store::ObjectMetadata> doc) {
    std::printf("external read served: size=%s, shadow=%s (persistor was boosted)\n",
                FormatBytes(doc->size).c_str(), doc->IsShadow() ? "yes" : "no");
    served = true;
  });
  while (!served && env.loop().Step()) {
  }

  // 3. External write to the (cached) input invalidates the cached copy.
  std::printf("\ncached input before external write: %s\n",
              env.cluster()->Contains("bucket/in.jpg") ? "yes" : "no");
  bool written = false;
  env.rsds().ExternalWrite("bucket/in.jpg", KiB(700), [&](Status) { written = true; });
  while (!written && env.loop().Step()) {
  }
  std::printf("cached input after external write:  %s (invalidated)\n",
              env.cluster()->Contains("bucket/in.jpg") ? "yes" : "no");
  std::printf("external-read persistor boosts: %llu, invalidations: %llu\n",
              static_cast<unsigned long long>(env.ofc()->proxy().stats().external_read_boosts),
              static_cast<unsigned long long>(
                  env.ofc()->proxy().stats().external_write_invalidations));
  return 0;
}
