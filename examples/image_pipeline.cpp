// ServerlessBench-style Image Processing pipeline (§7's fourth multi-stage
// application): extract-metadata -> transform -> thumbnail over a single
// image, repeated over a batch of uploads.
//
// Demonstrates OFC's pipeline handling on a latency-sensitive interactive
// flow: every stage's output is the next stage's input, so the cache removes
// two RSDS round-trips per image plus write-back-buffers the final thumbnail.
//
// Run: ./build/examples/image_pipeline
#include <cstdio>

#include "src/common/stats.h"
#include "src/faasload/environment.h"
#include "src/faasload/injector.h"

using namespace ofc;

namespace {

Samples RunBatch(faasload::Mode mode, int images) {
  faasload::EnvironmentOptions options;
  options.platform.num_workers = 4;
  options.seed = 31;
  faasload::Environment env(mode, options);

  const workloads::PipelineSpec* pipeline = workloads::FindPipeline("image_processing");
  Rng rng(17);
  for (const workloads::PipelineStage& stage : pipeline->stages) {
    faas::FunctionConfig config;
    config.spec = *workloads::FindFunction(stage.function);
    config.tenant = "photo-app";
    config.booked_memory = GiB(2);
    (void)env.platform().RegisterFunction(config);
    if (env.ofc() != nullptr) {
      Rng pretrain_rng = rng.Fork();
      env.ofc()->trainer().Pretrain(config.spec, 1000, pretrain_rng);
    }
  }

  workloads::MediaGenerator generator(rng.Fork());
  Samples latencies_ms;
  for (int i = 0; i < images; ++i) {
    const workloads::MediaDescriptor photo =
        generator.GenerateWithByteSize(workloads::InputKind::kImage, MiB(2));
    const std::string key = "uploads/img-" + std::to_string(i);
    env.rsds().Seed(key, photo.byte_size, faas::MediaToTags(photo));

    faas::PipelineRecord record;
    bool done = false;
    env.platform().InvokePipeline(*pipeline, {faas::InputObject{key, photo}},
                                  [&](const faas::PipelineRecord& r) {
                                    record = r;
                                    done = true;
                                  });
    while (!done && env.loop().Step()) {
    }
    latencies_ms.Add(ToMillis(record.total));
  }
  return latencies_ms;
}

}  // namespace

int main() {
  constexpr int kImages = 25;
  std::printf("Image Processing pipeline (meta -> transform -> thumbnail), %d uploads\n\n",
              kImages);
  std::printf("%-10s %-12s %-12s %-12s\n", "mode", "median (ms)", "p95 (ms)", "max (ms)");
  for (faasload::Mode mode :
       {faasload::Mode::kOwkSwift, faasload::Mode::kOwkRedis, faasload::Mode::kOfc}) {
    const Samples latencies = RunBatch(mode, kImages);
    std::printf("%-10s %-12.1f %-12.1f %-12.1f\n", faasload::ModeName(mode).c_str(),
                latencies.Median(), latencies.Percentile(0.95), latencies.Max());
  }
  std::printf(
      "\nAfter the first upload warms the stage sandboxes, OFC's per-image latency\n"
      "approaches the in-memory (Redis) baseline without any dedicated cache\n"
      "resources: the pipeline's intermediates never leave worker RAM.\n");
  return 0;
}
