// Quickstart: the smallest end-to-end OFC setup.
//
// Builds an OFC environment (OpenWhisk-style platform + RAMCloud cache + Swift
// RSDS), registers one image function, pretrains its models, and invokes it
// twice on the same input — the first invocation misses the cache (and admits
// the object), the second is a local RAM hit. Compare the Extract phases.
//
// Run: ./build/examples/quickstart
#include <cstdio>

#include "src/faasload/environment.h"
#include "src/faasload/injector.h"

using namespace ofc;

int main() {
  // 1. One call builds the whole stack wired together (Figure 4 of the paper):
  //    controller hooks (Predictor/Sizer/Monitor), per-worker cache instances,
  //    the data-plane proxy, and the backing object store.
  faasload::EnvironmentOptions options;
  options.platform.num_workers = 4;
  options.platform.worker_memory = GiB(8);
  options.seed = 7;
  faasload::Environment env(faasload::Mode::kOfc, options);

  // 2. Register a function the way a tenant would: code (here: a workload
  //    model) plus a booked memory size.
  const workloads::FunctionSpec* blur = workloads::FindFunction("wand_blur");
  faas::FunctionConfig config;
  config.spec = *blur;
  config.tenant = "alice";
  config.booked_memory = GiB(2);  // Generously overbooked -- OFC hoards the rest.
  if (!env.platform().RegisterFunction(config).ok()) {
    return 1;
  }

  // 3. Warm up the ML models offline (the artifact ships pretrained models; a
  //    production deployment matures them online after ~100-450 invocations).
  Rng rng(13);
  Rng pretrain_rng = rng.Fork();
  env.ofc()->trainer().Pretrain(*blur, 1000, pretrain_rng);

  // 4. Upload an input image to the object store.
  workloads::MediaGenerator generator(rng.Fork());
  const workloads::MediaDescriptor photo =
      generator.GenerateWithByteSize(workloads::InputKind::kImage, KiB(512));
  env.rsds().Seed("photos/cat.jpg", photo.byte_size, faas::MediaToTags(photo));

  // 5. Invoke twice; the platform reports per-phase timings.
  auto invoke = [&](const char* label) {
    faas::InvocationRecord record;
    bool done = false;
    env.platform().Invoke("wand_blur", {faas::InputObject{"photos/cat.jpg", photo}},
                          {3.0},  // blur sigma
                          [&](const faas::InvocationRecord& r) {
                            record = r;
                            done = true;
                          });
    while (!done && env.loop().Step()) {
    }
    std::printf("%-18s E=%-10s T=%-10s L=%-10s total=%-10s limit=%s\n", label,
                FormatDuration(record.extract_time).c_str(),
                FormatDuration(record.compute_time).c_str(),
                FormatDuration(record.load_time).c_str(),
                FormatDuration(record.total).c_str(),
                FormatBytes(record.memory_limit).c_str());
    return record;
  };

  std::printf("Invoking wand_blur on a %s image (booked 2 GiB):\n\n",
              FormatBytes(photo.byte_size).c_str());
  invoke("cold + cache miss");
  invoke("warm + cache hit");

  const auto& proxy = env.ofc()->proxy().stats();
  std::printf("\nCache: %llu hit(s), %llu miss(es), %llu admission(s)\n",
              static_cast<unsigned long long>(proxy.cache_hits),
              static_cast<unsigned long long>(proxy.cache_misses),
              static_cast<unsigned long long>(proxy.admissions));
  std::printf("Predicted sandbox size came from the ML model: %s\n",
              env.ofc()->prediction_stats().model_predictions > 0 ? "yes" : "no");
  return 0;
}
