// Multi-tenant FAASLOAD run: five tenants with different functions share four
// workers for ten simulated minutes; prints per-tenant latency summaries and
// OFC's internal counters. A smaller interactive version of the §7.2.2 macro
// experiment (the full one lives in bench/fig9_macro_workload).
//
// Run: ./build/examples/multi_tenant
#include <cstdio>

#include "src/common/stats.h"
#include "src/faasload/environment.h"
#include "src/faasload/injector.h"

using namespace ofc;

int main() {
  faasload::EnvironmentOptions options;
  options.platform.num_workers = 4;
  options.platform.worker_memory = GiB(16);
  options.seed = 2026;
  faasload::Environment env(faasload::Mode::kOfc, options);

  faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, 11);
  const char* kFunctions[] = {"wand_blur", "sharp_resize", "audio_normalize",
                              "wand_thumbnail", "text_summarize"};
  for (const char* function : kFunctions) {
    faasload::TenantSpec spec;
    spec.name = std::string("tenant-") + function;
    spec.function = function;
    spec.mean_interval_s = 20.0;  // Poisson arrivals, one every ~20 s.
    spec.dataset_objects = 4;
    if (!injector.AddTenant(spec).ok()) {
      return 1;
    }
  }
  injector.PretrainModels(1000);
  injector.Run(Minutes(10));

  std::printf("%-24s %-6s %-12s %-12s %-10s\n", "tenant", "invoc", "median (ms)",
              "p95 (ms)", "failures");
  for (const faasload::TenantResult& tenant : injector.results()) {
    Samples latencies;
    for (const auto& record : tenant.invocations) {
      latencies.Add(ToMillis(record.total));
    }
    std::printf("%-24s %-6zu %-12.1f %-12.1f %-10zu\n", tenant.name.c_str(),
                tenant.invocations.size(), latencies.Median(), latencies.Percentile(0.95),
                tenant.FailureCount());
  }

  const auto& proxy = env.ofc()->proxy().stats();
  const auto& cache = env.ofc()->cache_agent().stats();
  const auto& predictions = env.ofc()->prediction_stats();
  std::printf("\nOFC internals over the run:\n");
  std::printf("  cache hit ratio        %.1f %%\n", 100.0 * proxy.HitRatio());
  std::printf("  cache scale ups/downs  %llu / %llu\n",
              static_cast<unsigned long long>(cache.scale_ups),
              static_cast<unsigned long long>(cache.scale_downs_plain +
                                              cache.scale_downs_migration +
                                              cache.scale_downs_eviction));
  std::printf("  model predictions      %llu (bad: %llu)\n",
              static_cast<unsigned long long>(predictions.model_predictions),
              static_cast<unsigned long long>(predictions.bad_predictions));
  std::printf("  persistor runs         %llu\n",
              static_cast<unsigned long long>(proxy.persistor_runs));
  return 0;
}
