// Unit tests for the observability layer: metrics registry, exporters, and
// per-invocation lifecycle tracing.
//
// The exporter tests validate output with a minimal recursive-descent JSON
// parser (no third-party dependency): it accepts exactly the RFC 8259 grammar
// minus number exponents/escapes we never emit, which is enough to catch
// malformed quoting, trailing commas and unbalanced brackets.
#include <gtest/gtest.h>

#include <cctype>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/faas/direct_data_service.h"
#include "src/faas/platform.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/sim/event_loop.h"
#include "src/store/object_store.h"

namespace ofc::obs {
namespace {

// ---- Minimal JSON well-formedness checker -----------------------------------

class JsonChecker {
 public:
  explicit JsonChecker(const std::string& text) : text_(text) {}

  bool Valid() {
    SkipWs();
    if (!Value()) {
      return false;
    }
    SkipWs();
    return pos_ == text_.size();
  }

 private:
  void SkipWs() {
    while (pos_ < text_.size() && std::isspace(static_cast<unsigned char>(text_[pos_]))) {
      ++pos_;
    }
  }
  bool Literal(const char* word) {
    const std::size_t len = std::strlen(word);
    if (text_.compare(pos_, len, word) != 0) {
      return false;
    }
    pos_ += len;
    return true;
  }
  bool String() {
    if (pos_ >= text_.size() || text_[pos_] != '"') {
      return false;
    }
    for (++pos_; pos_ < text_.size(); ++pos_) {
      if (text_[pos_] == '\\') {
        ++pos_;  // Skip the escaped character.
      } else if (text_[pos_] == '"') {
        ++pos_;
        return true;
      }
    }
    return false;  // Unterminated.
  }
  bool Number() {
    const std::size_t start = pos_;
    if (pos_ < text_.size() && text_[pos_] == '-') {
      ++pos_;
    }
    while (pos_ < text_.size() &&
           (std::isdigit(static_cast<unsigned char>(text_[pos_])) || text_[pos_] == '.' ||
            text_[pos_] == 'e' || text_[pos_] == 'E' || text_[pos_] == '+' ||
            text_[pos_] == '-')) {
      ++pos_;
    }
    return pos_ > start;
  }
  bool Value() {
    SkipWs();
    if (pos_ >= text_.size()) {
      return false;
    }
    switch (text_[pos_]) {
      case '{':
        return Members('}', /*keyed=*/true);
      case '[':
        return Members(']', /*keyed=*/false);
      case '"':
        return String();
      case 't':
        return Literal("true");
      case 'f':
        return Literal("false");
      case 'n':
        return Literal("null");
      default:
        return Number();
    }
  }
  bool Members(char close, bool keyed) {
    ++pos_;  // Consume the opening bracket.
    SkipWs();
    if (pos_ < text_.size() && text_[pos_] == close) {
      ++pos_;
      return true;
    }
    while (true) {
      SkipWs();
      if (keyed) {
        if (!String()) {
          return false;
        }
        SkipWs();
        if (pos_ >= text_.size() || text_[pos_] != ':') {
          return false;
        }
        ++pos_;
      }
      if (!Value()) {
        return false;
      }
      SkipWs();
      if (pos_ >= text_.size()) {
        return false;
      }
      if (text_[pos_] == ',') {
        ++pos_;
        continue;
      }
      if (text_[pos_] == close) {
        ++pos_;
        return true;
      }
      return false;
    }
  }

  const std::string& text_;
  std::size_t pos_ = 0;
};

bool IsValidJson(const std::string& text) { return JsonChecker(text).Valid(); }

// ---- MetricsRegistry ---------------------------------------------------------

TEST(MetricsRegistryTest, CountersGaugesSeriesBasics) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("ofc.test.events");
  ++*c;
  c->Add(4);
  EXPECT_EQ(registry.CounterValue("ofc.test.events"), 5u);
  EXPECT_EQ(registry.GetCounter("ofc.test.events"), c);  // Stable get-or-create.

  Gauge* g = registry.GetGauge("ofc.test.level");
  g->Set(2.5);
  g->Add(0.5);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("ofc.test.level"), 3.0);

  Series* s = registry.GetSeries("ofc.test.latency_ms");
  for (double v : {1.0, 2.0, 3.0, 4.0}) {
    s->Observe(v);
  }
  const Series* found = registry.FindSeries("ofc.test.latency_ms");
  ASSERT_NE(found, nullptr);
  EXPECT_EQ(found->count(), 4u);
  EXPECT_DOUBLE_EQ(found->sum(), 10.0);
}

TEST(MetricsRegistryTest, LabeledCellsAreIndependentAndTotalled) {
  MetricsRegistry registry;
  registry.GetCounter("ofc.test.hits", "blur")->Add(3);
  registry.GetCounter("ofc.test.hits", "sepia")->Add(4);
  EXPECT_EQ(registry.CounterValue("ofc.test.hits", "blur"), 3u);
  EXPECT_EQ(registry.CounterValue("ofc.test.hits", "sepia"), 4u);
  EXPECT_EQ(registry.CounterValue("ofc.test.hits", "missing"), 0u);
  EXPECT_EQ(registry.CounterTotal("ofc.test.hits"), 7u);
}

TEST(MetricsRegistryTest, ResetZeroesEveryCell) {
  MetricsRegistry registry;
  registry.GetCounter("ofc.test.c")->Add(9);
  registry.GetGauge("ofc.test.g")->Set(9);
  registry.GetSeries("ofc.test.s")->Observe(9);
  registry.Reset();
  EXPECT_EQ(registry.CounterValue("ofc.test.c"), 0u);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("ofc.test.g"), 0.0);
  EXPECT_EQ(registry.FindSeries("ofc.test.s")->count(), 0u);
}

TEST(MetricsRegistryTest, SnapshotJsonIsWellFormed) {
  MetricsRegistry registry;
  registry.GetCounter("ofc.test.hits", "with \"quotes\" and \\slashes\\")->Add(1);
  registry.GetGauge("ofc.test.level")->Set(1.5);
  registry.GetSeries("ofc.test.latency_ms")->Observe(12.0);
  const std::string json = registry.SnapshotJson(/*now=*/Millis(1500));
  EXPECT_TRUE(IsValidJson(json)) << json;
  EXPECT_NE(json.find("\"sim_time_us\": 1500000"), std::string::npos);
  EXPECT_NE(json.find("ofc.test.latency_ms"), std::string::npos);
}

TEST(MetricsRegistryTest, SnapshotCsvHasHeaderAndOneRowPerCell) {
  MetricsRegistry registry;
  registry.GetCounter("ofc.test.hits", "a")->Add(1);
  registry.GetCounter("ofc.test.hits", "b")->Add(2);
  registry.GetSeries("ofc.test.ms")->Observe(5.0);
  const std::string csv = registry.SnapshotCsv();
  std::vector<std::string> lines;
  std::size_t start = 0;
  while (start < csv.size()) {
    const std::size_t nl = csv.find('\n', start);
    lines.push_back(csv.substr(start, nl - start));
    if (nl == std::string::npos) {
      break;
    }
    start = nl + 1;
  }
  ASSERT_GE(lines.size(), 4u);
  EXPECT_EQ(lines[0], "name,type,label,value,count,mean,min,max,p50,p95,p99");
  int hit_rows = 0;
  for (const std::string& line : lines) {
    if (line.find("ofc.test.hits") == 0) {
      ++hit_rows;
    }
  }
  EXPECT_EQ(hit_rows, 2);
}

// ---- TraceRecorder -----------------------------------------------------------

TEST(TraceRecorderTest, DisabledRecorderRecordsNothing) {
  TraceRecorder trace;  // Off by default.
  trace.Span("s", "cat", Millis(1), Millis(2), kPidInvocations, 1);
  trace.Instant("i", "cat", Millis(1), kPidInvocations, 1);
  EXPECT_EQ(trace.num_events(), 0u);
  EXPECT_FALSE(trace.Sampled(0));
}

TEST(TraceRecorderTest, SamplingIsDeterministicInTheId) {
  TraceOptions options;
  options.enabled = true;
  options.sample_period = 4;
  TraceRecorder trace(options);
  EXPECT_TRUE(trace.Sampled(0));
  EXPECT_FALSE(trace.Sampled(1));
  EXPECT_TRUE(trace.Sampled(8));
}

TEST(TraceRecorderTest, MaxEventsCapCountsDrops) {
  TraceOptions options;
  options.enabled = true;
  options.max_events = 2;
  TraceRecorder trace(options);
  for (int i = 0; i < 5; ++i) {
    trace.Instant("i", "cat", Millis(i), kPidInvocations, 1);
  }
  EXPECT_EQ(trace.num_events(), 2u);
  EXPECT_EQ(trace.num_dropped(), 3u);
}

TEST(TraceRecorderTest, ToJsonIsWellFormedAndTsMonotone) {
  TraceOptions options;
  options.enabled = true;
  TraceRecorder trace(options);
  trace.SetProcessName(kPidInvocations, "invocations");
  // Insert out of order; the exporter must sort by ts.
  trace.Span("b", "cat", Millis(30), Millis(5), kPidInvocations, 2, {{"k", "v"}});
  trace.Span("a", "cat", Millis(10), Millis(50), kPidInvocations, 1);
  trace.Instant("mark", "cat", Millis(20), kPidInvocations, 1);
  const std::string json = trace.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;

  // Extract the ts values of the non-metadata events in file order.
  std::vector<long> ts;
  std::size_t pos = 0;
  while ((pos = json.find("\"ts\": ", pos)) != std::string::npos) {
    pos += 6;
    ts.push_back(std::strtol(json.c_str() + pos, nullptr, 10));
  }
  ASSERT_EQ(ts.size(), 3u);
  for (std::size_t i = 1; i < ts.size(); ++i) {
    EXPECT_LE(ts[i - 1], ts[i]);
  }
}

// ---- End-to-end: a traced platform run ---------------------------------------

workloads::FunctionSpec TinySpec() {
  workloads::FunctionSpec spec;
  spec.name = "tiny";
  spec.kind = workloads::InputKind::kImage;
  spec.base_mem_mb = 100;
  spec.mem_copies = 5.0;
  spec.mem_noise = 0.0;
  spec.compute_us_per_mb = 50;
  return spec;
}

TEST(TracedPlatformTest, TwoInvocationsProduceLifecycleSpans) {
  sim::EventLoop loop;
  store::ObjectStore rsds(&loop, sim::LatencyModel{Millis(5), 200e6, 0.0}, Rng(1), "rsds");
  faas::DirectDataService data(&rsds);
  MetricsRegistry metrics;
  TraceOptions trace_options;
  trace_options.enabled = true;
  TraceRecorder trace(trace_options);

  faas::PlatformOptions options;
  options.metrics = &metrics;
  options.trace = &trace;
  faas::Platform platform(&loop, options, &data, /*hooks=*/nullptr, Rng(2));
  faas::FunctionConfig config;
  config.spec = TinySpec();
  config.booked_memory = MiB(512);
  ASSERT_TRUE(platform.RegisterFunction(config).ok());

  rsds.Seed("in/obj", KiB(64), {});
  workloads::MediaDescriptor media;
  media.kind = workloads::InputKind::kImage;
  media.width = 800;
  media.height = 800;
  media.byte_size = KiB(64);

  int completed = 0;
  for (int i = 0; i < 2; ++i) {
    bool done = false;
    platform.Invoke("tiny", {faas::InputObject{"in/obj", media}}, {},
                    [&](const faas::InvocationRecord& r) {
                      EXPECT_FALSE(r.failed);
                      done = true;
                      ++completed;
                    });
    while (!done && loop.Step()) {
    }
  }
  ASSERT_EQ(completed, 2);

  const std::string json = trace.ToJson();
  EXPECT_TRUE(IsValidJson(json)) << json;
  // One cold start then one warm start, and both invocations hit every ETL
  // phase plus the whole-invocation span.
  auto occurrences = [&json](const std::string& needle) {
    int n = 0;
    std::size_t pos = 0;
    while ((pos = json.find(needle, pos)) != std::string::npos) {
      ++n;
      pos += needle.size();
    }
    return n;
  };
  EXPECT_EQ(occurrences("\"cold-start\""), 1);
  EXPECT_EQ(occurrences("\"warm-start\""), 1);
  EXPECT_EQ(occurrences("\"extract\""), 2);
  EXPECT_EQ(occurrences("\"transform\""), 2);
  EXPECT_EQ(occurrences("\"load\""), 2);
  EXPECT_EQ(occurrences("\"cat\": \"invocation\""), 2);  // Whole-invocation spans.

  // The registry saw the same run the trace did.
  EXPECT_EQ(metrics.CounterValue("ofc.platform.invocations"), 2u);
  EXPECT_EQ(metrics.CounterValue("ofc.platform.cold_starts"), 1u);
  EXPECT_EQ(metrics.CounterValue("ofc.platform.invocations_by_function", "tiny"), 2u);
  EXPECT_EQ(platform.stats().invocations, 2u);  // The view matches the cells.
}

TEST(TracedPlatformTest, SamplingSkipsUnsampledInvocations) {
  sim::EventLoop loop;
  store::ObjectStore rsds(&loop, sim::LatencyModel{Millis(5), 200e6, 0.0}, Rng(1), "rsds");
  faas::DirectDataService data(&rsds);
  TraceOptions trace_options;
  trace_options.enabled = true;
  trace_options.sample_period = 1000;  // Only invocation ids divisible by 1000.
  TraceRecorder trace(trace_options);

  faas::PlatformOptions options;
  options.trace = &trace;
  faas::Platform platform(&loop, options, &data, /*hooks=*/nullptr, Rng(2));
  faas::FunctionConfig config;
  config.spec = TinySpec();
  config.booked_memory = MiB(512);
  ASSERT_TRUE(platform.RegisterFunction(config).ok());

  rsds.Seed("in/obj", KiB(64), {});
  workloads::MediaDescriptor media;
  media.kind = workloads::InputKind::kImage;
  media.width = 800;
  media.height = 800;
  media.byte_size = KiB(64);
  bool done = false;
  platform.Invoke("tiny", {faas::InputObject{"in/obj", media}}, {},
                  [&](const faas::InvocationRecord&) { done = true; });
  while (!done && loop.Step()) {
  }
  ASSERT_TRUE(done);
  // Only metadata events (process names) — the invocation itself was unsampled.
  const std::string json = trace.ToJson();
  EXPECT_EQ(json.find("\"extract\""), std::string::npos);
  EXPECT_EQ(json.find("\"ph\": \"X\""), std::string::npos);
}

}  // namespace
}  // namespace ofc::obs
