// Unit tests for the OFC core: memory intervals, per-function models with the
// §5.3.1 maturation criterion, Predictor fallback, CacheAgent hoarding and
// reclamation, Proxy caching/shadow/persistor behaviour.
#include <gtest/gtest.h>

#include "src/core/cache_agent.h"
#include "src/core/function_model.h"
#include "src/core/intervals.h"
#include "src/core/ml_service.h"
#include "src/core/proxy.h"
#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"
#include "src/store/object_store.h"

namespace ofc::core {
namespace {

// ---- MemoryIntervals -----------------------------------------------------------

TEST(IntervalsTest, DefaultIs128Classes) {
  MemoryIntervals intervals;
  EXPECT_EQ(intervals.num_classes(), 128);
  EXPECT_EQ(intervals.interval_size(), MiB(16));
}

TEST(IntervalsTest, LabelAndBounds) {
  MemoryIntervals intervals(MiB(16), GiB(2));
  EXPECT_EQ(intervals.Label(0), 0);
  EXPECT_EQ(intervals.Label(MiB(16) - 1), 0);
  EXPECT_EQ(intervals.Label(MiB(16)), 1);
  EXPECT_EQ(intervals.Label(MiB(100)), 6);
  EXPECT_EQ(intervals.Label(GiB(4)), 127);  // Clamped.
  EXPECT_EQ(intervals.UpperBound(0), MiB(16));
  EXPECT_EQ(intervals.UpperBound(6), MiB(112));
}

TEST(IntervalsTest, ConservativeAllocationIsNextInterval) {
  MemoryIntervals intervals(MiB(16), GiB(2));
  EXPECT_EQ(intervals.ConservativeAllocation(6), MiB(128));
  // Top class cannot be bumped further.
  EXPECT_EQ(intervals.ConservativeAllocation(127), GiB(2));
}

TEST(IntervalsTest, ClassAttributeOrdered) {
  MemoryIntervals intervals(MiB(32), GiB(2));
  const ml::Attribute attr = intervals.ClassAttribute();
  EXPECT_EQ(attr.num_values(), 64u);
  EXPECT_EQ(attr.values[0], "m0");
  EXPECT_EQ(attr.values[63], "m63");
}

// ---- FunctionModel --------------------------------------------------------------

ModelConfig FastConfig() {
  ModelConfig config;
  config.min_train = 10;
  config.retrain_every = 10;
  config.maturity_min_invocations = 50;
  return config;
}

std::vector<ml::Attribute> SimpleFeatures() {
  return {ml::Attribute::Numeric("x"), ml::Attribute::Numeric("y")};
}

// Learnable memory: mem = x * y bytes scaled into a few intervals.
Bytes TrueMemory(double x, double y) {
  return static_cast<Bytes>(MiB(40) + static_cast<Bytes>(x * y * 1e4));
}

TEST(FunctionModelTest, StartsBlankAndImmature) {
  FunctionModel model("f", SimpleFeatures(), FastConfig());
  EXPECT_FALSE(model.trained());
  EXPECT_FALSE(model.mature());
  EXPECT_EQ(model.PredictClass({1.0, 1.0}), std::nullopt);
  EXPECT_EQ(model.PredictBenefit({1.0, 1.0}), std::nullopt);
  EXPECT_EQ(model.matured_at(), -1);
}

TEST(FunctionModelTest, MaturesOnLearnableWorkload) {
  FunctionModel model("f", SimpleFeatures(), FastConfig());
  Rng rng(3);
  for (int i = 0; i < 300 && !model.mature(); ++i) {
    const double x = rng.Uniform(10, 100);
    const double y = rng.Uniform(10, 100);
    model.Learn({x, y}, TrueMemory(x, y), true);
  }
  EXPECT_TRUE(model.trained());
  EXPECT_TRUE(model.mature());
  EXPECT_GE(model.matured_at(), 50);
  EXPECT_GE(model.eo_rate(), 0.9);
  EXPECT_GE(model.under_within_one_rate(), 0.5);
}

TEST(FunctionModelTest, PredictsAccuratelyWhenMature) {
  FunctionModel model("f", SimpleFeatures(), FastConfig());
  Rng rng(5);
  for (int i = 0; i < 400; ++i) {
    const double x = rng.Uniform(10, 100);
    const double y = rng.Uniform(10, 100);
    model.Learn({x, y}, TrueMemory(x, y), true);
  }
  ASSERT_TRUE(model.mature());
  const MemoryIntervals& intervals = model.config().intervals;
  int exact_or_over = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    const double x = rng.Uniform(10, 100);
    const double y = rng.Uniform(10, 100);
    const auto cls = model.PredictClass({x, y});
    ASSERT_TRUE(cls.has_value());
    // With the §5.3.1 conservative bump, the allocation covers the truth.
    exact_or_over +=
        intervals.ConservativeAllocation(*cls) >= TrueMemory(x, y) ? 1 : 0;
  }
  EXPECT_GE(exact_or_over, 90);
}

TEST(FunctionModelTest, CuratesTrainingSetAfterMaturity) {
  FunctionModel model("f", SimpleFeatures(), FastConfig());
  Rng rng(7);
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(10, 100);
    const double y = rng.Uniform(10, 100);
    model.Learn({x, y}, TrueMemory(x, y), true);
  }
  ASSERT_TRUE(model.mature());
  const std::size_t before = model.training_set_size();
  // Accurate post-maturity samples are mostly NOT retained.
  for (int i = 0; i < 100; ++i) {
    const double x = rng.Uniform(10, 100);
    const double y = rng.Uniform(10, 100);
    model.Learn({x, y}, TrueMemory(x, y), true);
  }
  EXPECT_LT(model.training_set_size(), before + 30);
}

TEST(FunctionModelTest, BenefitModelLearnsSeparably) {
  FunctionModel model("f", SimpleFeatures(), FastConfig());
  Rng rng(9);
  // Benefit iff x < 50 (crisp rule).
  for (int i = 0; i < 200; ++i) {
    const double x = rng.Uniform(10, 100);
    const double y = rng.Uniform(10, 100);
    model.Learn({x, y}, TrueMemory(x, y), x < 50);
  }
  ASSERT_TRUE(model.trained());
  EXPECT_EQ(model.PredictBenefit({20.0, 50.0}), true);
  EXPECT_EQ(model.PredictBenefit({90.0, 50.0}), false);
}

// ---- Predictor / ModelTrainer ----------------------------------------------------

TEST(PredictorTest, FallsBackToBookedWhileImmature) {
  ModelRegistry registry(FastConfig());
  Predictor predictor(&registry);
  const workloads::FunctionSpec& spec = workloads::AllFunctions().front();
  workloads::MediaGenerator gen(Rng(11));
  Rng rng(13);
  const auto media = gen.Generate(spec.kind);
  const auto args = workloads::SampleArgs(spec, rng);
  const Prediction prediction = predictor.Predict(spec, media, args, GiB(2));
  EXPECT_FALSE(prediction.from_model);
  EXPECT_EQ(prediction.memory, GiB(2));
  EXPECT_FALSE(prediction.should_cache);
}

TEST(PredictorTest, UsesModelAfterPretraining) {
  ModelRegistry registry(FastConfig());
  Predictor predictor(&registry);
  ModelTrainer trainer(&registry, store::StoreProfile::Swift());
  const workloads::FunctionSpec* spec = workloads::FindFunction("wand_sepia");
  ASSERT_NE(spec, nullptr);
  Rng rng(17);
  trainer.Pretrain(*spec, 600, rng);
  ASSERT_TRUE(registry.Find("wand_sepia")->mature());

  workloads::MediaGenerator gen(Rng(19));
  int covered = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    const auto media = gen.Generate(spec->kind);
    const auto args = workloads::SampleArgs(*spec, rng);
    const Prediction prediction = predictor.Predict(*spec, media, args, GiB(2));
    EXPECT_TRUE(prediction.from_model);
    EXPECT_LT(prediction.memory, GiB(2));  // Prediction hoards real memory.
    const auto demand = workloads::ComputeDemand(*spec, media, args, &rng);
    covered += prediction.memory >= demand.memory ? 1 : 0;
  }
  EXPECT_GE(covered, 44);  // ~95 % EO-coverage per §5.3.1.
}

TEST(PredictorTest, BenefitFollowsEtlDominance) {
  // Small images on a slow RSDS: E+L dominates -> caching predicted useful.
  ModelRegistry registry(FastConfig());
  Predictor predictor(&registry);
  ModelTrainer trainer(&registry, store::StoreProfile::Swift());
  const workloads::FunctionSpec* spec = workloads::FindFunction("wand_sepia");
  Rng rng(23);
  trainer.Pretrain(*spec, 600, rng);

  workloads::MediaGenerator gen(Rng(29));
  int should_cache = 0;
  const int trials = 50;
  for (int i = 0; i < trials; ++i) {
    const auto media = gen.Generate(spec->kind);
    const auto args = workloads::SampleArgs(*spec, rng);
    should_cache += predictor.Predict(*spec, media, args, GiB(2)).should_cache;
  }
  // wand_sepia computes ~15 us/MB: E&L dominates for nearly every input.
  EXPECT_GE(should_cache, trials * 8 / 10);
}

// ---- CacheAgent -------------------------------------------------------------------

class CacheAgentTest : public ::testing::Test {
 protected:
  CacheAgentTest() : cluster_(&loop_, 2, MakeClusterOptions(), Rng(1)) {}

  static rc::ClusterOptions MakeClusterOptions() {
    rc::ClusterOptions options;
    options.default_capacity = 0;
    options.replication_factor = 1;
    options.max_object_size = GiB(1);  // Tests use large objects for pressure.
    return options;
  }

  CacheAgentOptions MakeAgentOptions() {
    CacheAgentOptions options;
    options.worker_memory = GiB(1);
    options.initial_slack = MiB(100);
    return options;
  }

  // Sandbox memory event: a 1 GiB-booked sandbox whose cgroup limit moves from
  // `old_limit` to `new_limit` on `worker`.
  static faas::SandboxMemoryEvent Ev(int worker, Bytes old_limit, Bytes new_limit,
                                     Bytes booked = GiB(1)) {
    faas::SandboxMemoryEvent event;
    event.worker = worker;
    event.booked = booked;
    event.old_limit = old_limit;
    event.new_limit = new_limit;
    return event;
  }

  // CacheAgent::Start() arms perpetual periodic timers, so tests must advance
  // the loop by bounded amounts instead of running it dry.
  void RunFor(SimDuration duration) { loop_.RunUntil(loop_.now() + duration); }

  void WriteObject(int node, const std::string& key, Bytes size,
                   rc::ObjectClass cls = rc::ObjectClass::kInput, bool dirty = false) {
    Status status = InternalError("unset");
    cluster_.Write(node, key, size, 1, cls, dirty, [&](Status s) { status = s; });
    RunFor(Seconds(1));
    ASSERT_TRUE(status.ok()) << status.ToString();
  }

  sim::EventLoop loop_;
  rc::Cluster cluster_;
};

TEST_F(CacheAgentTest, NoSandboxesMeansNoCache) {
  // The cache is fed exclusively by booked-but-unused sandbox memory; with no
  // sandboxes alive there is nothing to hoard.
  CacheAgent agent(&loop_, &cluster_, MakeAgentOptions());
  agent.Start();
  EXPECT_EQ(cluster_.Capacity(0), 0);
  EXPECT_EQ(cluster_.Capacity(1), 0);
}

TEST_F(CacheAgentTest, HoardFollowsBookedMinusLimit) {
  CacheAgent agent(&loop_, &cluster_, MakeAgentOptions());
  agent.Start();
  // A 1 GiB-booked sandbox sized to 64 MiB leaves 960 MiB of hoardable memory
  // (bounded by the same physical amount), minus the 100 MiB slack pool.
  agent.OnSandboxMemoryChange(Ev(0, 0, MiB(64)));
  EXPECT_EQ(agent.hoard(0), GiB(1) - MiB(64));
  EXPECT_EQ(cluster_.Capacity(0), GiB(1) - MiB(64) - MiB(100));
  // Sandbox destruction returns the hoard to zero.
  agent.OnSandboxMemoryChange(Ev(0, MiB(64), 0));
  EXPECT_EQ(agent.hoard(0), 0);
  EXPECT_EQ(cluster_.Capacity(0), 0);
}

TEST_F(CacheAgentTest, SandboxGrowthShrinksCache) {
  CacheAgent agent(&loop_, &cluster_, MakeAgentOptions());
  agent.Start();
  agent.OnSandboxMemoryChange(Ev(0, 0, MiB(64)));
  agent.ResetStats();  // Ignore the initial-hoard scale-up.
  agent.OnSandboxMemoryChange(Ev(0, MiB(64), MiB(512)));
  EXPECT_EQ(cluster_.Capacity(0), GiB(1) - MiB(512) - MiB(100));
  agent.OnSandboxMemoryChange(Ev(0, MiB(512), MiB(128)));  // Sandbox shrinks back.
  EXPECT_EQ(cluster_.Capacity(0), GiB(1) - MiB(128) - MiB(100));
  EXPECT_EQ(agent.stats().scale_ups, 1u);
  EXPECT_GE(agent.stats().scale_downs_plain, 1u);
}

TEST_F(CacheAgentTest, ShrinkEvictsPersistedOutputsFirst) {
  CacheAgent agent(&loop_, &cluster_, MakeAgentOptions());
  agent.Start();
  agent.OnSandboxMemoryChange(Ev(0, 0, MiB(64)));  // Cache capacity 860 MiB.
  WriteObject(0, "input_hot", MiB(300));
  WriteObject(0, "output_done", MiB(400), rc::ObjectClass::kFinalOutput, false);
  // Sandbox grows to 600 MiB: target 324 MiB, must free ~376 MiB. The
  // persisted output goes; the input stays.
  agent.OnSandboxMemoryChange(Ev(0, MiB(64), MiB(600)));
  EXPECT_FALSE(cluster_.Contains("output_done"));
  EXPECT_TRUE(cluster_.Contains("input_hot"));
}

TEST_F(CacheAgentTest, ShrinkMigratesInputsToOtherNode) {
  CacheAgent agent(&loop_, &cluster_, MakeAgentOptions());
  agent.Start();
  agent.OnSandboxMemoryChange(Ev(0, 0, MiB(64)));
  agent.OnSandboxMemoryChange(Ev(1, 0, MiB(64)));  // Node 1 can host migrations.
  WriteObject(0, "in1", MiB(5));
  WriteObject(0, "in2", MiB(5));
  const Bytes before_total = cluster_.TotalUsed();
  agent.OnSandboxMemoryChange(Ev(0, MiB(64), MiB(920)));  // Target (4 MiB) < used (10 MiB).
  // Objects migrated to node 1 rather than evicted (replication=1 backup).
  EXPECT_EQ(cluster_.TotalUsed(), before_total);
  EXPECT_TRUE(cluster_.Contains("in1"));
  EXPECT_TRUE(cluster_.Contains("in2"));
  EXPECT_EQ(*cluster_.MasterOf("in1"), 1);
  EXPECT_GE(agent.stats().objects_migrated, 2u);
  EXPECT_GE(agent.stats().scale_downs_migration, 1u);
}

TEST_F(CacheAgentTest, SweepEvictsColdObjects) {
  CacheAgentOptions options = MakeAgentOptions();
  CacheAgent agent(&loop_, &cluster_, options);
  agent.Start();
  agent.OnSandboxMemoryChange(Ev(0, 0, MiB(64)));
  WriteObject(0, "cold", MiB(2));
  WriteObject(0, "hot", MiB(2));
  // Make "hot" genuinely hot: >= 5 accesses.
  for (int i = 0; i < 6; ++i) {
    cluster_.Read(0, "hot", [](Result<rc::CachedObject>) {});
  }
  // Age both past one sweep period, then sweep.
  RunFor(Seconds(301));
  agent.SweepOnce();
  EXPECT_FALSE(cluster_.Contains("cold"));  // n_access < 5.
  EXPECT_TRUE(cluster_.Contains("hot"));
  EXPECT_GE(agent.stats().objects_swept, 1u);
}

TEST_F(CacheAgentTest, SweepEvictsIdleObjectsEvenIfOnceHot) {
  CacheAgent agent(&loop_, &cluster_, MakeAgentOptions());
  agent.Start();
  agent.OnSandboxMemoryChange(Ev(0, 0, MiB(64)));
  WriteObject(0, "idle", MiB(2));
  for (int i = 0; i < 8; ++i) {
    cluster_.Read(0, "idle", [](Result<rc::CachedObject>) {});
  }
  RunFor(Minutes(31));  // Past the 30 min idle bound.
  agent.SweepOnce();
  EXPECT_FALSE(cluster_.Contains("idle"));
}

TEST_F(CacheAgentTest, ReleaseForSandboxFreesCapacity) {
  CacheAgent agent(&loop_, &cluster_, MakeAgentOptions());
  agent.Start();
  agent.OnSandboxMemoryChange(Ev(0, 0, MiB(64)));
  const Bytes before = cluster_.Capacity(0);
  EXPECT_TRUE(agent.ReleaseForSandbox(0, MiB(200)));
  EXPECT_EQ(cluster_.Capacity(0), before - MiB(200));
}

TEST_F(CacheAgentTest, SlackAdjustsWithChurn) {
  CacheAgentOptions options = MakeAgentOptions();
  CacheAgent agent(&loop_, &cluster_, options);
  agent.Start();
  // Heavy churn: repeated large sandbox resizes.
  for (int i = 0; i < 10; ++i) {
    agent.OnSandboxMemoryChange(Ev(0, 0, MiB(400)));
    agent.OnSandboxMemoryChange(Ev(0, MiB(400), 0));
    RunFor(Seconds(30));
  }
  RunFor(Seconds(130));  // Cover a slack-adjust tick.
  EXPECT_GT(agent.slack(0), options.initial_slack);
}

// ---- Proxy --------------------------------------------------------------------------

class ProxyTest : public ::testing::Test {
 protected:
  ProxyTest()
      : rsds_(&loop_, sim::LatencyProfiles::SwiftRequest(), Rng(1), "swift",
              sim::LatencyProfiles::SwiftControl()),
        cluster_(&loop_, 2, MakeClusterOptions(), Rng(2)),
        proxy_(&loop_, &cluster_, &rsds_, ProxyOptions{}) {}

  static rc::ClusterOptions MakeClusterOptions() {
    rc::ClusterOptions options;
    options.default_capacity = GiB(1);
    options.replication_factor = 1;
    return options;
  }

  faas::InvocationContext Ctx(bool should_cache = true, std::uint64_t pipeline = 0,
                              bool final_stage = true) {
    faas::InvocationContext ctx;
    ctx.worker = 0;
    ctx.function = "f";
    ctx.should_cache = should_cache;
    ctx.pipeline_id = pipeline;
    ctx.final_stage = final_stage;
    return ctx;
  }

  Result<Bytes> ReadSync(const faas::InvocationContext& ctx, const std::string& key) {
    Result<Bytes> out = InternalError("unset");
    proxy_.Read(ctx, key, [&](Result<Bytes> r) { out = std::move(r); });
    loop_.Run();
    return out;
  }

  Status WriteSync(const faas::InvocationContext& ctx, const std::string& key, Bytes size) {
    Status out = InternalError("unset");
    workloads::MediaDescriptor media;
    media.kind = workloads::InputKind::kImage;
    media.byte_size = size;
    proxy_.Write(ctx, key, size, media, [&](Status s) { out = s; });
    loop_.Run();
    return out;
  }

  sim::EventLoop loop_;
  store::ObjectStore rsds_;
  rc::Cluster cluster_;
  Proxy proxy_;
};

TEST_F(ProxyTest, MissReadsRsdsAndAdmits) {
  rsds_.Seed("obj", MiB(1), {});
  const auto size = ReadSync(Ctx(), "obj");
  ASSERT_TRUE(size.ok());
  EXPECT_EQ(*size, MiB(1));
  EXPECT_EQ(proxy_.stats().cache_misses, 1u);
  EXPECT_TRUE(cluster_.Contains("obj"));  // Admitted off the critical path.
  EXPECT_EQ(proxy_.stats().admissions, 1u);
  // Second read hits.
  const auto again = ReadSync(Ctx(), "obj");
  ASSERT_TRUE(again.ok());
  EXPECT_EQ(proxy_.stats().cache_hits, 1u);
}

TEST_F(ProxyTest, NoAdmissionWhenNotBeneficial) {
  rsds_.Seed("obj", MiB(1), {});
  ASSERT_TRUE(ReadSync(Ctx(/*should_cache=*/false), "obj").ok());
  EXPECT_FALSE(cluster_.Contains("obj"));
}

TEST_F(ProxyTest, NoAdmissionAboveSizeCap) {
  rsds_.Seed("big", MiB(11), {});
  ASSERT_TRUE(ReadSync(Ctx(), "big").ok());
  EXPECT_FALSE(cluster_.Contains("big"));
}

TEST_F(ProxyTest, HitIsMuchFasterThanMiss) {
  rsds_.Seed("obj", MiB(2), {});
  const SimTime t0 = loop_.now();
  ASSERT_TRUE(ReadSync(Ctx(), "obj").ok());
  const SimDuration miss_time = loop_.now() - t0;
  const SimTime t1 = loop_.now();
  ASSERT_TRUE(ReadSync(Ctx(), "obj").ok());
  const SimDuration hit_time = loop_.now() - t1;
  EXPECT_LT(hit_time * 5, miss_time);
}

TEST_F(ProxyTest, CachedWriteCreatesShadowThenPersists) {
  // Drive the write only until its ack so the in-between state is observable
  // (the persistor has not yet run).
  workloads::MediaDescriptor media;
  media.kind = workloads::InputKind::kImage;
  media.byte_size = MiB(1);
  bool acked = false;
  proxy_.Write(Ctx(), "out", MiB(1), media, [&](Status s) {
    ASSERT_TRUE(s.ok());
    acked = true;
  });
  while (!acked) {
    ASSERT_TRUE(loop_.Step());
  }
  // Immediately after the ack: payload cached + dirty, RSDS holds a shadow.
  const auto cached = cluster_.Inspect("out");
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->dirty);
  const auto meta = rsds_.Stat("out");
  ASSERT_TRUE(meta.ok());
  EXPECT_TRUE(meta->IsShadow());
  EXPECT_EQ(proxy_.stats().shadow_writes, 1u);
  // Run the persistor: payload lands in the RSDS, final output leaves cache.
  loop_.Run();
  EXPECT_FALSE(rsds_.Stat("out")->IsShadow());
  EXPECT_EQ(rsds_.Stat("out")->size, MiB(1));
  EXPECT_FALSE(cluster_.Contains("out"));  // §6.3: dropped after write-back.
  EXPECT_EQ(proxy_.stats().persistor_runs, 1u);
}

TEST_F(ProxyTest, CachedWriteAckFasterThanDirectWrite) {
  // Write-back acks after shadow (control-cost) + cache write, not after the
  // full payload upload.
  const SimTime t0 = loop_.now();
  ASSERT_TRUE(WriteSync(Ctx(/*should_cache=*/true), "cached_out", MiB(5)).ok());
  // Note: WriteSync runs the loop fully, so measure with a manual sequence.
  sim::EventLoop loop2;
  store::ObjectStore rsds2(&loop2, sim::LatencyProfiles::SwiftRequest(), Rng(3), "swift2",
                           sim::LatencyProfiles::SwiftControl());
  rc::Cluster cluster2(&loop2, 2, MakeClusterOptions(), Rng(4));
  Proxy proxy2(&loop2, &cluster2, &rsds2, ProxyOptions{});
  workloads::MediaDescriptor media;
  media.byte_size = MiB(5);
  SimTime cached_ack = 0;
  proxy2.Write(Ctx(true), "w1", MiB(5), media, [&](Status) { cached_ack = loop2.now(); });
  loop2.Run();
  SimTime direct_ack_start = loop2.now();
  SimTime direct_ack = 0;
  proxy2.Write(Ctx(false), "w2", MiB(5), media, [&](Status) { direct_ack = loop2.now(); });
  loop2.Run();
  EXPECT_LT(cached_ack, direct_ack - direct_ack_start);
  (void)t0;
}

TEST_F(ProxyTest, PipelineIntermediatesNeverTouchRsds) {
  ASSERT_TRUE(WriteSync(Ctx(true, /*pipeline=*/7, /*final_stage=*/false), "mid", MiB(1)).ok());
  EXPECT_TRUE(cluster_.Contains("mid"));
  EXPECT_FALSE(rsds_.Exists("mid"));
  EXPECT_EQ(proxy_.stats().intermediates_cached, 1u);
  // End of pipeline: intermediates dropped (§6.3).
  proxy_.OnPipelineComplete(7);
  EXPECT_FALSE(cluster_.Contains("mid"));
  EXPECT_EQ(proxy_.stats().intermediates_dropped, 1u);
}

TEST_F(ProxyTest, WritebackPushesDirtyObject) {
  ASSERT_TRUE(WriteSync(Ctx(true, 9, false), "mid", MiB(2)).ok());  // Dirty? No: intermediate.
  // Make a dirty final output without running its persistor: use relaxed mode.
  sim::EventLoop loop2;
  store::ObjectStore rsds2(&loop2, sim::LatencyProfiles::SwiftRequest(), Rng(5), "swift2");
  rc::Cluster cluster2(&loop2, 2, MakeClusterOptions(), Rng(6));
  ProxyOptions relaxed;
  relaxed.transparent_consistency = false;
  Proxy proxy2(&loop2, &cluster2, &rsds2, relaxed);
  workloads::MediaDescriptor media;
  media.byte_size = MiB(2);
  Status write_status = InternalError("unset");
  proxy2.Write(Ctx(true), "lazy", MiB(2), media, [&](Status s) { write_status = s; });
  loop2.Run();
  ASSERT_TRUE(write_status.ok());
  EXPECT_FALSE(rsds2.Exists("lazy"));  // Relaxed: no shadow, no persistor.
  ASSERT_TRUE(cluster2.Inspect("lazy")->dirty);

  Status wb_status = InternalError("unset");
  proxy2.Writeback("lazy", [&](Status s) { wb_status = s; });
  loop2.Run();
  EXPECT_TRUE(wb_status.ok());
  EXPECT_TRUE(rsds2.Exists("lazy"));
  EXPECT_FALSE(cluster2.Inspect("lazy")->dirty);
}

TEST_F(ProxyTest, ExternalReadBlocksUntilPersisted) {
  proxy_.InstallWebhooks();
  ASSERT_TRUE(WriteSync(Ctx(), "out", MiB(1)).ok());
  // At this instant the RSDS holds only the shadow... but WriteSync ran the
  // loop to completion, so re-create the situation manually: write again and
  // issue the external read before running the persistor.
  workloads::MediaDescriptor media;
  media.byte_size = MiB(1);
  bool write_acked = false;
  proxy_.Write(Ctx(), "out2", MiB(1), media, [&](Status) { write_acked = true; });
  // Run only until the write acks (shadow + cache write done).
  while (!write_acked) {
    ASSERT_TRUE(loop_.Step());
  }
  ASSERT_TRUE(rsds_.Stat("out2")->IsShadow());
  Result<store::ObjectMetadata> external = InternalError("unset");
  rsds_.ExternalRead("out2", [&](Result<store::ObjectMetadata> m) { external = std::move(m); });
  loop_.Run();
  ASSERT_TRUE(external.ok());
  EXPECT_FALSE(external->IsShadow());  // The webhook boosted the persistor.
  EXPECT_EQ(external->size, MiB(1));
  EXPECT_GE(proxy_.stats().external_read_boosts, 1u);
}

// ---- CacheAgent: write-back budget & memory pressure --------------------------

TEST_F(CacheAgentTest, WritebackBudgetThrottlesAndDrainsBacklog) {
  CacheAgentOptions options = MakeAgentOptions();
  options.max_inflight_writebacks = 1;
  CacheAgent agent(&loop_, &cluster_, options);
  int inflight = 0;
  int peak_inflight = 0;
  // Slow write-backs (10 s) so one is still in flight when the manual sweep
  // below re-encounters the remaining dirty objects.
  agent.set_writeback([&](const std::string&, std::function<void(Status)> done) {
    peak_inflight = std::max(peak_inflight, ++inflight);
    loop_.ScheduleAfter(Seconds(10), [&inflight, done = std::move(done)] {
      --inflight;
      done(OkStatus());
    });
  });
  agent.Start();
  agent.OnSandboxMemoryChange(Ev(0, 0, MiB(64)));
  WriteObject(0, "d0", MiB(2), rc::ObjectClass::kFinalOutput, /*dirty=*/true);
  WriteObject(0, "d1", MiB(2), rc::ObjectClass::kFinalOutput, /*dirty=*/true);
  WriteObject(0, "d2", MiB(2), rc::ObjectClass::kFinalOutput, /*dirty=*/true);
  RunFor(Seconds(301));  // Age past the sweep coldness bound; the periodic
                         // sweep at t=300 already started one write-back.
  agent.SweepOnce();     // The rest are dirty: write-back, not eviction.
  EXPECT_GE(agent.stats().writebacks_throttled, 2u);  // Budget is 1.
  RunFor(Seconds(40));  // Backlog drains serially, 10 s per write-back.
  EXPECT_EQ(peak_inflight, 1);
  EXPECT_FALSE(cluster_.Contains("d0"));
  EXPECT_FALSE(cluster_.Contains("d1"));
  EXPECT_FALSE(cluster_.Contains("d2"));
  EXPECT_GE(agent.stats().writebacks_triggered, 3u);
}

TEST_F(CacheAgentTest, WritebackBudgetDeduplicatesPendingKeys) {
  CacheAgentOptions options = MakeAgentOptions();
  options.max_inflight_writebacks = 1;
  CacheAgent agent(&loop_, &cluster_, options);
  int calls = 0;
  agent.set_writeback([&](const std::string&, std::function<void(Status)> done) {
    ++calls;
    loop_.ScheduleAfter(Seconds(10), [done = std::move(done)] { done(OkStatus()); });
  });
  agent.Start();
  agent.OnSandboxMemoryChange(Ev(0, 0, MiB(64)));
  WriteObject(0, "dup", MiB(2), rc::ObjectClass::kFinalOutput, /*dirty=*/true);
  RunFor(Seconds(301));  // The periodic sweep at t=300 starts the write-back.
  agent.SweepOnce();
  agent.SweepOnce();  // Same dirty object re-encountered while in flight.
  RunFor(Seconds(1));
  EXPECT_EQ(calls, 1);
}

TEST_F(CacheAgentTest, PressureWatermarksUseHysteresis) {
  CacheAgentOptions options = MakeAgentOptions();
  options.pressure_high_watermark = 0.8;
  options.pressure_low_watermark = 0.5;
  CacheAgent agent(&loop_, &cluster_, options);
  agent.Start();
  agent.OnSandboxMemoryChange(Ev(0, 0, MiB(64)));  // Capacity 860 MiB.
  EXPECT_FALSE(agent.UnderPressure(0));
  WriteObject(0, "a", MiB(500));
  WriteObject(0, "b", MiB(200));  // 700/860 = 81 % >= high watermark.
  EXPECT_TRUE(agent.UnderPressure(0));
  (void)cluster_.Remove("b");  // 500/860 = 58 %: between the watermarks.
  EXPECT_TRUE(agent.UnderPressure(0));  // Hysteresis holds pressure.
  (void)cluster_.Remove("a");  // 0 %: below the low watermark.
  EXPECT_FALSE(agent.UnderPressure(0));
}

TEST_F(CacheAgentTest, PressureDisabledByDefault) {
  CacheAgent agent(&loop_, &cluster_, MakeAgentOptions());
  agent.Start();
  agent.OnSandboxMemoryChange(Ev(0, 0, MiB(64)));
  WriteObject(0, "full", MiB(800));  // 93 % of capacity.
  EXPECT_FALSE(agent.UnderPressure(0));
}

// ---- Proxy circuit breaker ----------------------------------------------------

class BreakerTest : public ::testing::Test {
 protected:
  BreakerTest()
      : rsds_(&loop_, sim::LatencyProfiles::SwiftRequest(), Rng(1), "swift",
              sim::LatencyProfiles::SwiftControl()),
        cluster_(&loop_, 2, MakeClusterOptions(), Rng(2)) {}

  static rc::ClusterOptions MakeClusterOptions() {
    rc::ClusterOptions options;
    options.default_capacity = GiB(1);
    options.replication_factor = 1;
    return options;
  }

  void MakeProxy(int threshold, SimDuration open = Seconds(5), int probes = 2,
                 SimDuration slo = 0) {
    ProxyOptions options;
    options.breaker_failure_threshold = threshold;
    options.breaker_open_duration = open;
    options.breaker_half_open_probes = probes;
    options.breaker_latency_slo = slo;
    proxy_ = std::make_unique<Proxy>(&loop_, &cluster_, &rsds_, options);
  }

  faas::InvocationContext Ctx() {
    faas::InvocationContext ctx;
    ctx.worker = 0;
    ctx.function = "f";
    ctx.should_cache = true;
    return ctx;
  }

  Result<Bytes> ReadSync(const std::string& key) {
    Result<Bytes> out = InternalError("unset");
    proxy_->Read(Ctx(), key, [&](Result<Bytes> r) { out = std::move(r); });
    loop_.Run();
    return out;
  }

  Status WriteSync(const std::string& key, Bytes size) {
    Status out = InternalError("unset");
    workloads::MediaDescriptor media;
    media.kind = workloads::InputKind::kImage;
    media.byte_size = size;
    proxy_->Write(Ctx(), key, size, media, [&](Status s) { out = s; });
    loop_.Run();
    return out;
  }

  sim::EventLoop loop_;
  store::ObjectStore rsds_;
  rc::Cluster cluster_;
  std::unique_ptr<Proxy> proxy_;
};

TEST_F(BreakerTest, TripsAfterConsecutiveCacheFailuresAndBypasses) {
  MakeProxy(/*threshold=*/3);
  for (int i = 0; i < 4; ++i) {
    rsds_.Seed("k" + std::to_string(i), MiB(1), {});
  }
  proxy_->InjectCacheFaultUntil(loop_.now() + Minutes(10));
  // Reads keep succeeding throughout — the RSDS serves every miss/failure.
  ASSERT_TRUE(ReadSync("k0").ok());
  ASSERT_TRUE(ReadSync("k1").ok());
  EXPECT_EQ(proxy_->breaker_state(), Proxy::BreakerState::kClosed);
  ASSERT_TRUE(ReadSync("k2").ok());  // Third consecutive failure: trip.
  EXPECT_EQ(proxy_->breaker_state(), Proxy::BreakerState::kOpen);
  EXPECT_EQ(proxy_->stats().breaker_opens, 1u);
  ASSERT_TRUE(ReadSync("k3").ok());  // Open: served via bypass, not the cache.
  EXPECT_EQ(proxy_->stats().breaker_bypassed_reads, 1u);
}

TEST_F(BreakerTest, HalfOpenProbesCloseAfterSuccesses) {
  MakeProxy(/*threshold=*/2, /*open=*/Seconds(5), /*probes=*/2);
  for (int i = 0; i < 4; ++i) {
    rsds_.Seed("k" + std::to_string(i), MiB(1), {});
  }
  proxy_->InjectCacheFaultUntil(loop_.now() + Seconds(1));  // Heals before open ends.
  ASSERT_TRUE(ReadSync("k0").ok());
  ASSERT_TRUE(ReadSync("k1").ok());
  ASSERT_EQ(proxy_->breaker_state(), Proxy::BreakerState::kOpen);
  loop_.RunUntil(loop_.now() + Seconds(6));  // Past the open window.
  ASSERT_TRUE(ReadSync("k2").ok());  // First probe: healthy miss.
  EXPECT_EQ(proxy_->breaker_state(), Proxy::BreakerState::kHalfOpen);
  ASSERT_TRUE(ReadSync("k3").ok());  // Second probe success: close.
  EXPECT_EQ(proxy_->breaker_state(), Proxy::BreakerState::kClosed);
  EXPECT_EQ(proxy_->stats().breaker_closes, 1u);
  EXPECT_EQ(proxy_->stats().breaker_probes, 2u);
  EXPECT_EQ(proxy_->stats().breaker_probe_failures, 0u);
}

TEST_F(BreakerTest, FailedProbeReopensImmediately) {
  MakeProxy(/*threshold=*/2, /*open=*/Seconds(5), /*probes=*/2);
  for (int i = 0; i < 3; ++i) {
    rsds_.Seed("k" + std::to_string(i), MiB(1), {});
  }
  proxy_->InjectCacheFaultUntil(loop_.now() + Seconds(60));  // Outlives the window.
  ASSERT_TRUE(ReadSync("k0").ok());
  ASSERT_TRUE(ReadSync("k1").ok());
  ASSERT_EQ(proxy_->breaker_state(), Proxy::BreakerState::kOpen);
  loop_.RunUntil(loop_.now() + Seconds(6));
  ASSERT_TRUE(ReadSync("k2").ok());  // Probe hits the still-sick cache path.
  EXPECT_EQ(proxy_->breaker_state(), Proxy::BreakerState::kOpen);
  EXPECT_EQ(proxy_->stats().breaker_opens, 2u);
  EXPECT_EQ(proxy_->stats().breaker_probe_failures, 1u);
  EXPECT_EQ(proxy_->stats().breaker_closes, 0u);
}

TEST_F(BreakerTest, LatencySloBreachCountsAsFailure) {
  // A 1 us SLO that every genuine cache hit breaches: a crawling cache trips
  // the breaker even though it serves data.
  MakeProxy(/*threshold=*/2, Seconds(5), 2, /*slo=*/Micros(1));
  rsds_.Seed("obj", MiB(1), {});
  ASSERT_TRUE(ReadSync("obj").ok());  // Miss (healthy) + admission.
  ASSERT_TRUE(cluster_.Contains("obj"));
  ASSERT_TRUE(ReadSync("obj").ok());  // Hit, slower than 1 us: strike one.
  EXPECT_EQ(proxy_->breaker_state(), Proxy::BreakerState::kClosed);
  ASSERT_TRUE(ReadSync("obj").ok());  // Strike two: trip.
  EXPECT_EQ(proxy_->breaker_state(), Proxy::BreakerState::kOpen);
  EXPECT_EQ(proxy_->stats().breaker_opens, 1u);
}

TEST_F(BreakerTest, OpenBreakerWritesGoDirectToRsds) {
  MakeProxy(/*threshold=*/1);
  rsds_.Seed("k0", MiB(1), {});
  proxy_->InjectCacheFaultUntil(loop_.now() + Minutes(10));
  ASSERT_TRUE(ReadSync("k0").ok());  // One failure trips a threshold of 1.
  ASSERT_EQ(proxy_->breaker_state(), Proxy::BreakerState::kOpen);
  ASSERT_TRUE(WriteSync("out", MiB(1)).ok());
  EXPECT_EQ(proxy_->stats().breaker_bypassed_writes, 1u);
  EXPECT_TRUE(rsds_.Exists("out"));
  EXPECT_FALSE(cluster_.Contains("out"));  // Nothing touched the sick cache.
}

TEST_F(BreakerTest, CapacityRejectionIsNotACacheFailure) {
  // kResourceExhausted from a full cache is normal back-pressure, not
  // sickness: it must not open the breaker.
  MakeProxy(/*threshold=*/1);
  sim::EventLoop loop2;
  store::ObjectStore rsds2(&loop2, sim::LatencyProfiles::SwiftRequest(), Rng(3), "swift2",
                           sim::LatencyProfiles::SwiftControl());
  rc::ClusterOptions tiny = MakeClusterOptions();
  tiny.default_capacity = KiB(1);  // Every cached write is rejected for space.
  rc::Cluster cluster2(&loop2, 2, tiny, Rng(4));
  ProxyOptions options;
  options.breaker_failure_threshold = 1;
  Proxy proxy2(&loop2, &cluster2, &rsds2, options);
  workloads::MediaDescriptor media;
  media.kind = workloads::InputKind::kImage;
  media.byte_size = MiB(1);
  for (int i = 0; i < 3; ++i) {
    Status status = InternalError("unset");
    proxy2.Write(Ctx(), "w" + std::to_string(i), MiB(1), media,
                 [&](Status s) { status = s; });
    loop2.Run();
    ASSERT_TRUE(status.ok());  // Falls back to the RSDS transparently.
  }
  EXPECT_EQ(proxy2.breaker_state(), Proxy::BreakerState::kClosed);
  EXPECT_EQ(proxy2.stats().breaker_opens, 0u);
}

TEST_F(ProxyTest, ExternalWriteInvalidatesCache) {
  proxy_.InstallWebhooks();
  rsds_.Seed("obj", MiB(1), {});
  ASSERT_TRUE(ReadSync(Ctx(), "obj").ok());
  ASSERT_TRUE(cluster_.Contains("obj"));
  Status status = InternalError("unset");
  rsds_.ExternalWrite("obj", MiB(2), [&](Status s) { status = s; });
  loop_.Run();
  EXPECT_TRUE(status.ok());
  EXPECT_FALSE(cluster_.Contains("obj"));
  EXPECT_EQ(proxy_.stats().external_write_invalidations, 1u);
}

}  // namespace
}  // namespace ofc::core
