// Unit tests for the ML library: dataset, tree math, the four classifiers of
// Table 1, and the evaluation harness.
#include <gtest/gtest.h>

#include <cmath>
#include <limits>
#include <memory>

#include "src/common/rng.h"
#include "src/ml/dataset.h"
#include "src/ml/evaluation.h"
#include "src/ml/hoeffding_tree.h"
#include "src/ml/j48.h"
#include "src/ml/random_forest.h"
#include "src/ml/random_tree.h"
#include "src/ml/tree_math.h"

namespace ofc::ml {
namespace {

Schema TwoFeatureSchema() {
  return Schema({Attribute::Numeric("x"), Attribute::Nominal("color", {"red", "green", "blue"})},
                Attribute::Nominal("class", {"a", "b"}));
}

// A dataset with a crisp two-level rule: class = b iff (x > 5 and color != blue).
Dataset RuleDataset(int n, std::uint64_t seed) {
  Dataset data(TwoFeatureSchema());
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double x = rng.Uniform(0.0, 10.0);
    const double color = static_cast<double>(rng.UniformInt(0, 2));
    const int label = (x > 5.0 && color != 2.0) ? 1 : 0;
    EXPECT_TRUE(data.Add({{x, color}, label, 1.0}).ok());
  }
  return data;
}

// A noisy multi-class problem over 3 numeric features; the label is a banded
// function of a hidden combination, which mimics the memory-interval task.
Dataset BandedDataset(int n, int num_classes, std::uint64_t seed, double noise = 0.0) {
  std::vector<std::string> class_names;
  for (int c = 0; c < num_classes; ++c) {
    class_names.push_back("c" + std::to_string(c));
  }
  Schema schema({Attribute::Numeric("w"), Attribute::Numeric("h"), Attribute::Numeric("arg")},
                Attribute::Nominal("band", class_names));
  Dataset data(schema);
  Rng rng(seed);
  for (int i = 0; i < n; ++i) {
    const double w = rng.Uniform(10, 100);
    const double h = rng.Uniform(10, 100);
    const double arg = rng.Uniform(0, 4);
    double score = w * h * (1.0 + 0.2 * arg);
    score *= 1.0 + noise * rng.Gaussian(0.0, 1.0);
    int label = static_cast<int>(score / (100.0 * 100.0 * 1.8 / num_classes));
    label = std::clamp(label, 0, num_classes - 1);
    EXPECT_TRUE(data.Add({{w, h, arg}, label, 1.0}).ok());
  }
  return data;
}

// ---- Dataset -------------------------------------------------------------

TEST(DatasetTest, RejectsArityMismatch) {
  Dataset data(TwoFeatureSchema());
  EXPECT_FALSE(data.Add({{1.0}, 0, 1.0}).ok());
}

TEST(DatasetTest, RejectsBadLabel) {
  Dataset data(TwoFeatureSchema());
  EXPECT_FALSE(data.Add({{1.0, 0.0}, 2, 1.0}).ok());
  EXPECT_FALSE(data.Add({{1.0, 0.0}, -1, 1.0}).ok());
}

TEST(DatasetTest, RejectsOutOfRangeNominal) {
  Dataset data(TwoFeatureSchema());
  EXPECT_FALSE(data.Add({{1.0, 3.0}, 0, 1.0}).ok());
  EXPECT_FALSE(data.Add({{1.0, 0.5}, 0, 1.0}).ok());
}

TEST(DatasetTest, RejectsNonPositiveWeight) {
  Dataset data(TwoFeatureSchema());
  EXPECT_FALSE(data.Add({{1.0, 0.0}, 0, 0.0}).ok());
}

TEST(DatasetTest, ClassDistributionWeighted) {
  Dataset data(TwoFeatureSchema());
  ASSERT_TRUE(data.Add({{1.0, 0.0}, 0, 2.0}).ok());
  ASSERT_TRUE(data.Add({{2.0, 1.0}, 1, 3.0}).ok());
  const auto dist = data.ClassDistribution();
  EXPECT_DOUBLE_EQ(dist[0], 2.0);
  EXPECT_DOUBLE_EQ(dist[1], 3.0);
  EXPECT_DOUBLE_EQ(data.TotalWeight(), 5.0);
}

TEST(DatasetTest, FilterKeepsMatching) {
  Dataset data = RuleDataset(100, 1);
  Dataset ones = data.Filter([](const Instance& i) { return i.label == 1; });
  for (const auto& inst : ones.instances()) {
    EXPECT_EQ(inst.label, 1);
  }
  EXPECT_LT(ones.size(), data.size());
  EXPECT_GT(ones.size(), 0u);
}

TEST(SchemaTest, FeatureIndexLookup) {
  Schema s = TwoFeatureSchema();
  EXPECT_EQ(s.FeatureIndex("x"), 0);
  EXPECT_EQ(s.FeatureIndex("color"), 1);
  EXPECT_EQ(s.FeatureIndex("nope"), -1);
}

// ---- Tree math -------------------------------------------------------------

TEST(TreeMathTest, EntropyKnownValues) {
  EXPECT_DOUBLE_EQ(Entropy({1.0, 1.0}), 1.0);
  EXPECT_DOUBLE_EQ(Entropy({4.0, 0.0}), 0.0);
  EXPECT_NEAR(Entropy({2.0, 2.0, 2.0, 2.0}), 2.0, 1e-12);
  EXPECT_DOUBLE_EQ(Entropy({}), 0.0);
}

TEST(TreeMathTest, PartitionEntropyPerfectSplitIsZero) {
  EXPECT_DOUBLE_EQ(PartitionEntropy({{5.0, 0.0}, {0.0, 5.0}}), 0.0);
}

TEST(TreeMathTest, SplitInformationBalancedBinary) {
  EXPECT_NEAR(SplitInformation({{2.0, 3.0}, {1.0, 4.0}}), 1.0, 1e-12);
}

TEST(TreeMathTest, NormalInverseKnownQuantiles) {
  EXPECT_NEAR(NormalInverse(0.5), 0.0, 1e-9);
  EXPECT_NEAR(NormalInverse(0.975), 1.959964, 1e-5);
  EXPECT_NEAR(NormalInverse(0.025), -1.959964, 1e-5);
  EXPECT_NEAR(NormalInverse(0.75), 0.674490, 1e-5);
}

TEST(TreeMathTest, PessimisticExtraErrorsPositiveAndMonotone) {
  // More observed errors on the same support -> at least as many extra errors
  // is not guaranteed, but the estimate must always be positive and bounded.
  const double e0 = PessimisticExtraErrors(10.0, 0.0, 0.25);
  const double e2 = PessimisticExtraErrors(10.0, 2.0, 0.25);
  EXPECT_GT(e0, 0.0);
  EXPECT_GT(e2, 0.0);
  EXPECT_LT(e2, 10.0);
  // Larger support shrinks the correction per instance.
  EXPECT_GT(PessimisticExtraErrors(10.0, 1.0, 0.25) / 10.0,
            PessimisticExtraErrors(1000.0, 100.0, 0.25) / 1000.0);
}

TEST(TreeMathTest, ArgMaxFirstOnTies) {
  EXPECT_EQ(ArgMax({1.0, 3.0, 3.0}), 1u);
  EXPECT_EQ(ArgMax({5.0}), 0u);
}

// ---- J48 -------------------------------------------------------------------

TEST(J48Test, LearnsCrispRule) {
  Dataset train = RuleDataset(400, 2);
  Dataset test = RuleDataset(200, 3);
  J48 model;
  ASSERT_TRUE(model.Train(train).ok());
  int correct = 0;
  for (const auto& inst : test.instances()) {
    correct += model.Predict(inst.features) == inst.label;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()), 0.95);
}

TEST(J48Test, RejectsEmptyDataset) {
  J48 model;
  EXPECT_FALSE(model.Train(Dataset(TwoFeatureSchema())).ok());
}

TEST(J48Test, PureDatasetYieldsSingleLeaf) {
  Dataset data(TwoFeatureSchema());
  for (int i = 0; i < 10; ++i) {
    ASSERT_TRUE(data.Add({{static_cast<double>(i), 0.0}, 0, 1.0}).ok());
  }
  J48 model;
  ASSERT_TRUE(model.Train(data).ok());
  EXPECT_EQ(model.NumNodes(), 1u);
  EXPECT_EQ(model.Predict({3.0, 1.0}), 0);
}

TEST(J48Test, PruningShrinksTree) {
  Dataset train = BandedDataset(600, 6, 5, /*noise=*/0.15);
  J48 pruned(J48Options{.prune = true});
  J48 unpruned(J48Options{.prune = false});
  ASSERT_TRUE(pruned.Train(train).ok());
  ASSERT_TRUE(unpruned.Train(train).ok());
  EXPECT_LE(pruned.NumNodes(), unpruned.NumNodes());
}

TEST(J48Test, PredictDistributionSumsToOne) {
  Dataset train = BandedDataset(300, 4, 7);
  J48 model;
  ASSERT_TRUE(model.Train(train).ok());
  const auto dist = model.PredictDistribution({50.0, 50.0, 2.0});
  double sum = 0.0;
  for (double d : dist) {
    sum += d;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
}

TEST(J48Test, HandlesWeightedInstances) {
  // Upweighting class-1 instances shifts ties toward class 1.
  Dataset data(TwoFeatureSchema());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(data.Add({{1.0, 0.0}, 0, 1.0}).ok());
    ASSERT_TRUE(data.Add({{1.0, 0.0}, 1, 3.0}).ok());
  }
  J48 model;
  ASSERT_TRUE(model.Train(data).ok());
  EXPECT_EQ(model.Predict({1.0, 0.0}), 1);
}

TEST(J48Test, RetrainReplacesModel) {
  J48 model;
  Dataset a(TwoFeatureSchema());
  Dataset b(TwoFeatureSchema());
  for (int i = 0; i < 20; ++i) {
    ASSERT_TRUE(a.Add({{1.0, 0.0}, 0, 1.0}).ok());
    ASSERT_TRUE(b.Add({{1.0, 0.0}, 1, 1.0}).ok());
  }
  ASSERT_TRUE(model.Train(a).ok());
  EXPECT_EQ(model.Predict({1.0, 0.0}), 0);
  ASSERT_TRUE(model.Train(b).ok());
  EXPECT_EQ(model.Predict({1.0, 0.0}), 1);
}

// ---- J48 missing values (C4.5 fractional instances) ---------------------------

constexpr double kMissing = std::numeric_limits<double>::quiet_NaN();

TEST(J48MissingTest, DatasetAcceptsNaNAsMissing) {
  Dataset data(TwoFeatureSchema());
  EXPECT_TRUE(data.Add({{kMissing, 0.0}, 0, 1.0}).ok());
  EXPECT_TRUE(data.Add({{1.0, kMissing}, 1, 1.0}).ok());  // Nominal missing too.
}

TEST(J48MissingTest, TrainsThroughMissingValues) {
  // The crisp rule dataset with 20 % of x values knocked out: the tree must
  // still learn the rule from the known instances.
  Dataset train(TwoFeatureSchema());
  Rng rng(101);
  for (int i = 0; i < 600; ++i) {
    const double x = rng.Uniform(0.0, 10.0);
    const double color = static_cast<double>(rng.UniformInt(0, 2));
    const int label = (x > 5.0 && color != 2.0) ? 1 : 0;
    const double feature_x = rng.Bernoulli(0.2) ? kMissing : x;
    ASSERT_TRUE(train.Add({{feature_x, color}, label, 1.0}).ok());
  }
  J48 model;
  ASSERT_TRUE(model.Train(train).ok());
  Dataset test = RuleDataset(300, 103);
  int correct = 0;
  for (const auto& inst : test.instances()) {
    correct += model.Predict(inst.features) == inst.label;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()), 0.9);
}

TEST(J48MissingTest, MissingFeatureAtPredictionBlendsBranches) {
  Dataset train = RuleDataset(500, 107);
  J48 model;
  ASSERT_TRUE(model.Train(train).ok());
  // With x missing, the distribution blends both sides of the x-split: the
  // result must be a proper distribution, not a crash or a degenerate one-hot
  // copy of a single branch.
  const auto dist = model.PredictDistribution({kMissing, 0.0});
  ASSERT_EQ(dist.size(), 2u);
  const double sum = dist[0] + dist[1];
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_GT(dist[0], 0.05);  // Both classes keep mass: x <= 5 gives class 0...
  EXPECT_GT(dist[1], 0.05);  // ...and x > 5 with color red/green gives class 1.
  // Prediction still works when everything is missing.
  const int p = model.Predict({kMissing, kMissing});
  EXPECT_TRUE(p == 0 || p == 1);
}

TEST(J48MissingTest, FullyObservedPredictionsUnchangedByMissingSupport) {
  // Sanity: on fully observed data the missing-value machinery is inert.
  Dataset train = RuleDataset(400, 109);
  J48 model;
  ASSERT_TRUE(model.Train(train).ok());
  EXPECT_EQ(model.Predict({8.0, 0.0}), 1);
  EXPECT_EQ(model.Predict({2.0, 0.0}), 0);
  EXPECT_EQ(model.Predict({8.0, 2.0}), 0);
}

// ---- RandomTree / RandomForest ----------------------------------------------

TEST(RandomTreeTest, LearnsCrispRule) {
  Dataset train = RuleDataset(600, 11);
  Dataset test = RuleDataset(200, 12);
  RandomTree model(RandomTreeOptions{.seed = 5});
  ASSERT_TRUE(model.Train(train).ok());
  int correct = 0;
  for (const auto& inst : test.instances()) {
    correct += model.Predict(inst.features) == inst.label;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()), 0.9);
}

TEST(RandomTreeTest, SeedChangesTree) {
  Dataset train = BandedDataset(400, 4, 13);
  RandomTree a(RandomTreeOptions{.seed = 1});
  RandomTree b(RandomTreeOptions{.seed = 2});
  ASSERT_TRUE(a.Train(train).ok());
  ASSERT_TRUE(b.Train(train).ok());
  // Different random attribute subsets almost surely give different shapes.
  EXPECT_TRUE(a.NumNodes() != b.NumNodes() || a.NumNodes() > 1);
}

TEST(RandomForestTest, BeatsSingleRandomTreeOnNoisyData) {
  Dataset train = BandedDataset(500, 6, 17, /*noise=*/0.2);
  Dataset test = BandedDataset(400, 6, 18, /*noise=*/0.2);
  RandomTree tree(RandomTreeOptions{.seed = 3});
  RandomForest forest(RandomForestOptions{.num_trees = 25, .seed = 4});
  ASSERT_TRUE(tree.Train(train).ok());
  ASSERT_TRUE(forest.Train(train).ok());
  int tree_ok = 0;
  int forest_ok = 0;
  for (const auto& inst : test.instances()) {
    tree_ok += tree.Predict(inst.features) == inst.label;
    forest_ok += forest.Predict(inst.features) == inst.label;
  }
  EXPECT_GE(forest_ok, tree_ok);
}

TEST(RandomForestTest, DistributionAveragesTrees) {
  Dataset train = RuleDataset(300, 19);
  RandomForest forest(RandomForestOptions{.num_trees = 10, .seed = 6});
  ASSERT_TRUE(forest.Train(train).ok());
  const auto dist = forest.PredictDistribution({8.0, 0.0});
  double sum = 0.0;
  for (double d : dist) {
    sum += d;
  }
  EXPECT_NEAR(sum, 1.0, 1e-9);
  EXPECT_EQ(forest.Predict({8.0, 0.0}), 1);
}

// ---- HoeffdingTree -----------------------------------------------------------

TEST(HoeffdingTreeTest, LearnsIncrementally) {
  HoeffdingTree model(HoeffdingTreeOptions{.grace_period = 25});
  ASSERT_TRUE(model.Reset(TwoFeatureSchema()).ok());
  Rng rng(23);
  for (int i = 0; i < 3000; ++i) {
    const double x = rng.Uniform(0.0, 10.0);
    const double color = static_cast<double>(rng.UniformInt(0, 2));
    const int label = (x > 5.0 && color != 2.0) ? 1 : 0;
    ASSERT_TRUE(model.Observe({{x, color}, label, 1.0}).ok());
  }
  Dataset test = RuleDataset(300, 24);
  int correct = 0;
  for (const auto& inst : test.instances()) {
    correct += model.Predict(inst.features) == inst.label;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()), 0.85);
  EXPECT_GT(model.NumNodes(), 1u);
}

TEST(HoeffdingTreeTest, ObserveBeforeResetFails) {
  HoeffdingTree model;
  EXPECT_FALSE(model.Observe({{1.0, 0.0}, 0, 1.0}).ok());
}

TEST(HoeffdingTreeTest, NaiveBayesLeavesBeatMajorityOnSmallStreams) {
  // Six well-separated Gaussian classes over one feature, but too few samples
  // for the Hoeffding bound to split: a majority vote is stuck at the modal
  // class while the NB leaf reads the per-class Gaussians.
  Schema schema({Attribute::Numeric("x")},
                Attribute::Nominal("cls", {"c0", "c1", "c2", "c3", "c4", "c5"}));
  auto make = [&](std::uint64_t seed, int n) {
    Dataset data(schema);
    Rng rng(seed);
    for (int i = 0; i < n; ++i) {
      const int label = static_cast<int>(rng.UniformInt(0, 5));
      EXPECT_TRUE(data.Add({{rng.Gaussian(label * 10.0, 1.0)}, label, 1.0}).ok());
    }
    return data;
  };
  Dataset train = make(77, 120);
  Dataset test = make(79, 300);
  // Grace period above the stream length: the tree stays a single leaf, so
  // the comparison isolates the leaf-prediction strategies.
  HoeffdingTree nb(HoeffdingTreeOptions{
      .grace_period = 500, .leaf_prediction = LeafPrediction::kNaiveBayesAdaptive});
  HoeffdingTree mc(HoeffdingTreeOptions{
      .grace_period = 500, .leaf_prediction = LeafPrediction::kMajorityClass});
  ASSERT_TRUE(nb.Train(train).ok());
  ASSERT_TRUE(mc.Train(train).ok());
  int nb_ok = 0;
  int mc_ok = 0;
  for (const auto& inst : test.instances()) {
    nb_ok += nb.Predict(inst.features) == inst.label;
    mc_ok += mc.Predict(inst.features) == inst.label;
  }
  EXPECT_GT(nb_ok, mc_ok + 50);
  EXPECT_GT(static_cast<double>(nb_ok) / static_cast<double>(test.size()), 0.8);
}

TEST(HoeffdingTreeTest, BatchTrainWorks) {
  Dataset train = RuleDataset(2500, 29);
  HoeffdingTree model(HoeffdingTreeOptions{.grace_period = 25});
  ASSERT_TRUE(model.Train(train).ok());
  Dataset test = RuleDataset(200, 31);
  int correct = 0;
  for (const auto& inst : test.instances()) {
    correct += model.Predict(inst.features) == inst.label;
  }
  EXPECT_GT(static_cast<double>(correct) / static_cast<double>(test.size()), 0.8);
}

// ---- Evaluation --------------------------------------------------------------

TEST(ConfusionMatrixTest, AccuracyAndEO) {
  ConfusionMatrix m(3);
  m.Add(0, 0);  // exact
  m.Add(1, 2);  // over
  m.Add(2, 0);  // under by 2
  m.Add(2, 1);  // under by 1
  EXPECT_DOUBLE_EQ(m.Accuracy(), 0.25);
  EXPECT_DOUBLE_EQ(m.ExactOrOverAccuracy(), 0.5);
  EXPECT_DOUBLE_EQ(m.UnderpredictionRate(), 0.5);
  EXPECT_DOUBLE_EQ(m.OverpredictionRate(), 0.25);
  EXPECT_DOUBLE_EQ(m.UnderpredictionsWithin(1), 0.5);
  EXPECT_DOUBLE_EQ(m.UnderpredictionsWithin(2), 1.0);
}

TEST(ConfusionMatrixTest, PrecisionRecallF) {
  ConfusionMatrix m(2);
  // 8 TP, 2 FN, 1 FP, 9 TN for class 1.
  for (int i = 0; i < 8; ++i) m.Add(1, 1);
  for (int i = 0; i < 2; ++i) m.Add(1, 0);
  m.Add(0, 1);
  for (int i = 0; i < 9; ++i) m.Add(0, 0);
  EXPECT_NEAR(m.Precision(1), 8.0 / 9.0, 1e-12);
  EXPECT_NEAR(m.Recall(1), 0.8, 1e-12);
  const double p = 8.0 / 9.0;
  EXPECT_NEAR(m.FMeasure(1), 2 * p * 0.8 / (p + 0.8), 1e-12);
}

TEST(ConfusionMatrixTest, MergeAggregates) {
  ConfusionMatrix a(2);
  ConfusionMatrix b(2);
  a.Add(0, 0);
  b.Add(1, 1);
  b.Add(1, 0);
  a.Merge(b);
  EXPECT_DOUBLE_EQ(a.total(), 3.0);
  EXPECT_NEAR(a.Accuracy(), 2.0 / 3.0, 1e-12);
}

TEST(ConfusionMatrixTest, NoUnderpredictionsMeansWithinIsOne) {
  ConfusionMatrix m(3);
  m.Add(0, 0);
  m.Add(0, 2);
  EXPECT_DOUBLE_EQ(m.UnderpredictionsWithin(1), 1.0);
}

TEST(CrossValidationTest, HighAccuracyOnLearnableTask) {
  Dataset data = RuleDataset(500, 37);
  Rng rng(41);
  const auto result =
      CrossValidate([] { return std::make_unique<J48>(); }, data, 10, rng);
  EXPECT_GT(result.confusion.Accuracy(), 0.9);
  EXPECT_EQ(result.errors.size(), data.size());
}

TEST(CrossValidationTest, ErrorsSignedInIntervalUnits) {
  Dataset data = BandedDataset(400, 8, 43, /*noise=*/0.1);
  Rng rng(47);
  const auto result =
      CrossValidate([] { return std::make_unique<J48>(); }, data, 5, rng);
  for (int e : result.errors) {
    EXPECT_GE(e, -7);
    EXPECT_LE(e, 7);
  }
}

// Parameterized sweep: every classifier must beat a majority-class baseline on
// the banded task, mirroring the Table 1 comparison setup.
class AllClassifiersTest : public ::testing::TestWithParam<const char*> {
 protected:
  std::unique_ptr<Classifier> Make() const {
    const std::string name = GetParam();
    if (name == "J48") {
      return std::make_unique<J48>();
    }
    if (name == "RandomForest") {
      return std::make_unique<RandomForest>(RandomForestOptions{.num_trees = 15, .seed = 9});
    }
    if (name == "RandomTree") {
      return std::make_unique<RandomTree>(RandomTreeOptions{.seed = 9});
    }
    return std::make_unique<HoeffdingTree>(HoeffdingTreeOptions{.grace_period = 25});
  }
};

TEST_P(AllClassifiersTest, BeatsMajorityBaseline) {
  // 3000 instances so that even the stream learner (Hoeffding bound needs
  // thousands of observations per split) has room to grow.
  Dataset train = BandedDataset(3000, 5, 53, /*noise=*/0.05);
  Dataset test = BandedDataset(300, 5, 59, /*noise=*/0.05);
  auto model = Make();
  ASSERT_TRUE(model->Train(train).ok());

  const auto train_dist = train.ClassDistribution();
  const int majority = static_cast<int>(ArgMax(train_dist));
  int model_ok = 0;
  int baseline_ok = 0;
  for (const auto& inst : test.instances()) {
    model_ok += model->Predict(inst.features) == inst.label;
    baseline_ok += majority == inst.label;
  }
  EXPECT_GT(model_ok, baseline_ok) << model->Name();
}

TEST_P(AllClassifiersTest, PredictionInRange) {
  Dataset train = BandedDataset(400, 5, 61);
  auto model = Make();
  ASSERT_TRUE(model->Train(train).ok());
  Rng rng(67);
  for (int i = 0; i < 100; ++i) {
    const int p =
        model->Predict({rng.Uniform(10, 100), rng.Uniform(10, 100), rng.Uniform(0, 4)});
    EXPECT_GE(p, 0);
    EXPECT_LT(p, 5);
  }
}

INSTANTIATE_TEST_SUITE_P(Table1Algorithms, AllClassifiersTest,
                         ::testing::Values("J48", "RandomForest", "RandomTree",
                                           "HoeffdingTree"));

}  // namespace
}  // namespace ofc::ml
