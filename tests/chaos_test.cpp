// Chaos tests: randomized-but-deterministic fault schedules against the full
// platform, audited by the six invariants in chaos_harness.h. Every scenario
// is replayable — same seed and plan must give a byte-identical fingerprint.
#include <fstream>
#include <sstream>
#include <string>

#include <gtest/gtest.h>

#include "src/fault/fault_plan.h"
#include "tests/chaos_harness.h"

namespace ofc {
namespace {

using chaos::ChaosReport;
using chaos::ChaosScenarioOptions;
using chaos::RunChaosScenario;
using fault::FaultEvent;
using fault::FaultKind;
using fault::FaultPlan;

void ExpectClean(const ChaosReport& report) {
  EXPECT_TRUE(report.ok()) << report.ViolationSummary();
  EXPECT_GT(report.completed, 0);
}

TEST(ChaosTest, FaultFreeBaselineIsClean) {
  ChaosScenarioOptions options;
  options.seed = 101;
  const ChaosReport report = RunChaosScenario(options);
  ExpectClean(report);
  EXPECT_EQ(report.failed, 0);
  EXPECT_EQ(report.counter("ofc.fault.injected"), 0u);
}

// The ISSUE acceptance scenario: a RAMCloud master crashes in the middle of
// the workload (while the CacheAgent is actively scaling node pools), the
// object store browns out 4x, and one persistor window is dropped. All four
// invariants must hold, deterministically across two replays of the same seed.
ChaosScenarioOptions AcceptanceScenario(std::uint64_t seed) {
  ChaosScenarioOptions options;
  options.seed = seed;
  options.num_invocations = 40;
  options.mean_interval_s = 4.0;
  options.plan.events = {
      FaultEvent{Seconds(45), FaultKind::kStoreBrownout, -1, Seconds(60), 4.0},
      FaultEvent{Seconds(60), FaultKind::kNodeCrash, 1, Seconds(30)},
      FaultEvent{Seconds(70), FaultKind::kPersistorDrop, -1, Seconds(20)},
  };
  options.plan.Sort();
  return options;
}

TEST(ChaosTest, AcceptanceMasterCrashBrownoutPersistorDrop) {
  const ChaosReport report = RunChaosScenario(AcceptanceScenario(7));
  ExpectClean(report);
  EXPECT_EQ(report.counter("ofc.fault.injected"), 3u);
  EXPECT_EQ(report.counter("ofc.fault.healed"), 3u);
  EXPECT_EQ(report.counter("ofc.ramcloud.node_crashes"), 1u);
  EXPECT_EQ(report.counter("ofc.ramcloud.node_restarts"), 1u);
}

TEST(ChaosTest, AcceptanceScenarioReplaysByteIdentical) {
  const ChaosReport first = RunChaosScenario(AcceptanceScenario(7));
  const ChaosReport second = RunChaosScenario(AcceptanceScenario(7));
  ExpectClean(first);
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint());
}

TEST(ChaosTest, MachineCrashUnderStoreOutageRecovers) {
  // The hardest compound fault: a worker and its storage node die together
  // while the RSDS is down, so in-flight work re-dispatches into a degraded
  // data path and recovery runs with one fewer node.
  ChaosScenarioOptions options;
  options.seed = 23;
  options.num_invocations = 30;
  options.plan.events = {
      FaultEvent{Seconds(40), FaultKind::kStoreOutage, -1, Seconds(25)},
      FaultEvent{Seconds(50), FaultKind::kMachineCrash, 0, Seconds(40)},
  };
  options.plan.Sort();
  const ChaosReport report = RunChaosScenario(options);
  ExpectClean(report);
  EXPECT_EQ(report.counter("ofc.platform.worker_crashes"), 1u);
  EXPECT_EQ(report.counter("ofc.platform.worker_restores"), 1u);
  EXPECT_GT(report.counter("ofc.store.unavailable_errors"), 0u);
}

TEST(ChaosTest, StoreOutageDuringWritesFallsBackTransparently) {
  // A long outage squarely over the busiest arrival window: acknowledged
  // writes must survive via the cache-backed fallback + degraded persistor.
  ChaosScenarioOptions options;
  options.seed = 31;
  options.num_invocations = 40;
  options.mean_interval_s = 3.0;
  options.plan.events = {
      FaultEvent{Seconds(30), FaultKind::kStoreOutage, -1, Seconds(45)},
  };
  const ChaosReport report = RunChaosScenario(options);
  ExpectClean(report);
  EXPECT_GT(report.counter("ofc.store.unavailable_errors"), 0u);
  // The degradation path saw traffic: retries, fallbacks, or both.
  EXPECT_GT(report.counter("ofc.proxy.rsds_retries") +
                report.counter("ofc.proxy.fallback_writes"),
            0u);
}

TEST(ChaosTest, PersistorDropDelaysButNeverLosesWrites) {
  ChaosScenarioOptions options;
  options.seed = 47;
  options.num_invocations = 35;
  options.mean_interval_s = 3.0;
  options.plan.events = {
      FaultEvent{Seconds(20), FaultKind::kPersistorDrop, -1, Seconds(90)},
  };
  const ChaosReport report = RunChaosScenario(options);
  ExpectClean(report);
  EXPECT_GT(report.counter("ofc.proxy.persistor_drops"), 0u);
  EXPECT_GT(report.counter("ofc.proxy.persistor_retries"), 0u);
  EXPECT_EQ(report.counter("ofc.proxy.persistor_abandons"), 0u);
}

TEST(ChaosTest, OverlappingNodeCrashesReestablishReplication) {
  // Two staggered node crashes (never all nodes at once): recovery promotes
  // backups twice and the restarts must restore the replication factor.
  ChaosScenarioOptions options;
  options.seed = 53;
  options.num_invocations = 30;
  options.plan.events = {
      FaultEvent{Seconds(40), FaultKind::kNodeCrash, 0, Seconds(30)},
      FaultEvent{Seconds(55), FaultKind::kNodeCrash, 2, Seconds(30)},
  };
  const ChaosReport report = RunChaosScenario(options);
  ExpectClean(report);
  EXPECT_EQ(report.counter("ofc.ramcloud.node_crashes"), 2u);
  EXPECT_EQ(report.counter("ofc.ramcloud.node_restarts"), 2u);
}

// ---- Overload & graceful degradation ------------------------------------------

// A 2x-sustainable burst lands while the store is browned out and the cache
// path then degrades: bounded admission must shed the overflow explicitly and
// the breaker must route survivors around the sick cache.
ChaosScenarioOptions OverloadScenario(std::uint64_t seed) {
  ChaosScenarioOptions options;
  options.seed = seed;
  options.num_workers = 2;
  options.num_invocations = 15;
  options.mean_interval_s = 6.0;
  options.queue_limit = 6;
  options.queue_deadline = Seconds(2);
  options.breaker_threshold = 3;
  options.breaker_open = Seconds(10);
  options.breaker_probes = 2;
  options.burst_count = 40;
  options.burst_at = Seconds(60);
  options.plan.events = {
      FaultEvent{Seconds(30), FaultKind::kStoreBrownout, -1, Seconds(60), 4.0},
      FaultEvent{Seconds(45), FaultKind::kCacheDegraded, -1, Seconds(40)},
  };
  options.plan.Sort();
  return options;
}

TEST(ChaosTest, OverloadBurstShedsAndResolvesExactlyOnce) {
  const ChaosReport report = RunChaosScenario(OverloadScenario(13));
  ExpectClean(report);  // I3 + I5: every submission resolved exactly once.
  EXPECT_GT(report.shed, 0);       // The burst exceeded the queue bound.
  EXPECT_GT(report.succeeded, 0);  // ... but goodput survived.
  EXPECT_EQ(report.counter("ofc.overload.shed"),
            static_cast<std::uint64_t>(report.shed));
  EXPECT_GT(report.counter("ofc.breaker.opens"), 0u);
  EXPECT_GT(report.counter("ofc.breaker.bypassed_reads") +
                report.counter("ofc.breaker.bypassed_writes"),
            0u);
}

TEST(ChaosTest, OverloadScenarioReplaysByteIdentical) {
  const ChaosReport first = RunChaosScenario(OverloadScenario(13));
  const ChaosReport second = RunChaosScenario(OverloadScenario(13));
  ExpectClean(first);
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint());
}

// The overload scenario with the full observability stack on: windowed
// telemetry scrapes, burn-rate SLOs, and the flight recorder. The timeline
// must localize the fault (shed/breaker activity brackets the injected
// brownout + burst interval instead of smearing over the run), the shed-rate
// SLO must fire a multi-window burn-rate alert, and the flight ring must hold
// the causal story.
ChaosScenarioOptions ObservedOverloadScenario(std::uint64_t seed) {
  ChaosScenarioOptions options = OverloadScenario(seed);
  options.flight_recorder = true;
  options.timeline = true;
  options.scrape_interval = Seconds(10);
  std::string error;
  EXPECT_TRUE(obs::ParseSloSpecs(
      "warm=lat:ofc.platform.total_ms:p95:400:fast=30:slow=120:fastburn=3:slowburn=1.5;"
      "shed=rate:ofc.overload.shed/ofc.platform.invocations:0.01"
      ":fast=30:slow=120:fastburn=3:slowburn=1.5",
      &options.slos, &error))
      << error;
  return options;
}

TEST(ChaosTest, TimelineBracketsFaultWindowAndSloAlertFires) {
  const ChaosReport report = RunChaosScenario(ObservedOverloadScenario(13));
  ExpectClean(report);
  ASSERT_GT(report.shed, 0);
  ASSERT_GT(report.counter("ofc.breaker.opens"), 0u);

  // Shed activity is burst-driven (burst at t=60s, queue deadline 2s): the
  // windows that saw nonzero shed deltas must bracket it tightly, not cover
  // the whole run.
  EXPECT_GE(report.shed_first_window_start, Seconds(40));
  EXPECT_LE(report.shed_last_window_end, Seconds(120));
  // Breaker opens are driven by the degraded-cache window (45s..85s; the
  // breaker can re-open until the probe after heal succeeds).
  EXPECT_GE(report.breaker_first_window_start, Seconds(30));
  EXPECT_LE(report.breaker_last_window_end, Seconds(120));

  // The shed-rate SLO fired a multi-window burn-rate alert and it shows up in
  // the health artifact.
  EXPECT_GE(report.slo_alerts_fired, 1u);
  EXPECT_GT(report.worst_burn, 1.5);
  EXPECT_NE(report.health_json.find("\"slo\": \"shed\""), std::string::npos);

  // The flight ring carries the causal story: lifecycle, overload, breaker,
  // and fault-window records all present.
  for (const char* kind : {"\"kind\": \"submit\"", "\"kind\": \"complete\"",
                           "\"kind\": \"shed\"", "\"kind\": \"breaker_open\"",
                           "\"kind\": \"fault_inject\"", "\"kind\": \"fault_heal\""}) {
    EXPECT_NE(report.flight_json.find(kind), std::string::npos) << kind;
  }
}

TEST(ChaosTest, ObservedOverloadReplaysAllArtifactsByteIdentical) {
  // Fingerprint() covers metrics, timeline, health, and flight JSON — this is
  // the artifact-level determinism acceptance for the observability stack.
  const ChaosReport first = RunChaosScenario(ObservedOverloadScenario(13));
  const ChaosReport second = RunChaosScenario(ObservedOverloadScenario(13));
  ExpectClean(first);
  EXPECT_FALSE(first.timeline_json.empty());
  EXPECT_FALSE(first.health_json.empty());
  EXPECT_FALSE(first.flight_json.empty());
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint());
}

TEST(ChaosTest, ViolationDumpsFlightRingForPostMortem) {
  // A plan that addresses a node the cluster does not have is the cheapest
  // deterministic "breach": the harness must still honor dump_on_violation.
  ChaosScenarioOptions options;
  options.seed = 5;
  options.flight_recorder = true;
  options.dump_on_violation = ::testing::TempDir() + "/chaos_flight_dump.json";
  options.plan.events = {FaultEvent{Seconds(1), FaultKind::kNodeCrash, 99, Seconds(5)}};
  const ChaosReport report = RunChaosScenario(options);
  EXPECT_FALSE(report.ok());

  std::ifstream in(options.dump_on_violation);
  ASSERT_TRUE(in.good()) << "dump file missing: " << options.dump_on_violation;
  std::ostringstream dump;
  dump << in.rdbuf();
  EXPECT_NE(dump.str().find("\"reason\""), std::string::npos);
  EXPECT_NE(dump.str().find("fault plan rejected"), std::string::npos);
}

TEST(ChaosTest, BreakerOpenMatchesNoCacheBaseline) {
  // With the cache path sick from t=0 and the breaker latched open, the
  // extract+load data path must match a cache-disabled run of the same
  // workload within 5% — graceful degradation, not a new failure mode.
  ChaosScenarioOptions degraded;
  degraded.seed = 71;
  degraded.num_invocations = 25;
  degraded.mean_interval_s = 8.0;
  degraded.breaker_threshold = 1;
  degraded.breaker_open = Minutes(10);  // Never half-opens during the run.
  degraded.plan.events = {
      FaultEvent{0, FaultKind::kCacheDegraded, -1, Minutes(10)},
  };
  ChaosScenarioOptions baseline = degraded;
  baseline.disable_cache = true;
  baseline.breaker_threshold = 0;
  baseline.plan.events.clear();

  const ChaosReport a = RunChaosScenario(degraded);
  const ChaosReport b = RunChaosScenario(baseline);
  ExpectClean(a);
  ExpectClean(b);
  EXPECT_GT(a.counter("ofc.breaker.opens"), 0u);
  EXPECT_GT(a.counter("ofc.breaker.bypassed_reads"), 0u);
  ASSERT_GT(b.mean_el_ms, 0.0);
  EXPECT_NEAR(a.mean_el_ms, b.mean_el_ms, 0.05 * b.mean_el_ms);
}

// ---- Data integrity: corruption storms, scrubbing, self-healing ----------------

// The ISSUE 9 acceptance scenario: a bit-flip storm hits replicas, master
// segments, and the RSDS while the scrubber sweeps in the background. Every
// injected corruption must be detected and repaired by the end of the drain
// (the I6 end-state sweep), and no corrupt payload may ever reach a function.
ChaosScenarioOptions BitFlipStormScenario(std::uint64_t seed) {
  ChaosScenarioOptions options;
  options.seed = seed;
  options.num_invocations = 40;
  options.mean_interval_s = 4.0;
  options.scrub_interval = Seconds(5);
  options.scrub_quarantine_threshold = 0;  // Repair-only; quarantine tested below.
  options.flight_recorder = true;
  options.plan.events = {
      FaultEvent{Seconds(30), FaultKind::kCorruptSegment, 0, 0, 3.0},
      FaultEvent{Seconds(50), FaultKind::kCorruptReplica, 1, 0, 3.0},
      FaultEvent{Seconds(80), FaultKind::kStoreRot, -1, 0, 4.0},
      FaultEvent{Seconds(110), FaultKind::kCorruptSegment, 2, 0, 2.0},
      FaultEvent{Seconds(140), FaultKind::kStoreRot, -1, 0, 2.0},
  };
  options.plan.Sort();
  return options;
}

TEST(ChaosTest, BitFlipStormIsDetectedAndRepaired) {
  const ChaosReport report = RunChaosScenario(BitFlipStormScenario(9));
  ExpectClean(report);  // Includes I6: tripwire at zero + end-state sweep clean.
  EXPECT_GT(report.counter("ofc.fault.objects_corrupted"), 0u);
  // Detection happened somewhere: a verifying read, the scrubber, or both.
  EXPECT_GT(report.counter("ofc.integrity.checksum_failures") +
                report.counter("ofc.scrub.corruptions_found") +
                report.counter("ofc.integrity.store_checksum_failures"),
            0u);
  // ... and so did repair (the sweep already proved it was complete).
  EXPECT_GT(report.counter("ofc.integrity.repairs") +
                report.counter("ofc.scrub.repairs") +
                report.counter("ofc.integrity.store_repairs"),
            0u);
  EXPECT_EQ(report.counter("ofc.integrity.corrupt_acked"), 0u);
  // The scrubber made full passes and the black box kept the causal story.
  EXPECT_GT(report.counter("ofc.scrub.cycles"), 0u);
  EXPECT_NE(report.flight_json.find("\"kind\": \"corruption_detected\""),
            std::string::npos);
  EXPECT_NE(report.flight_json.find("\"kind\": \"corruption_repaired\""),
            std::string::npos);
}

TEST(ChaosTest, BitFlipStormReplaysByteIdentical) {
  const ChaosReport first = RunChaosScenario(BitFlipStormScenario(9));
  const ChaosReport second = RunChaosScenario(BitFlipStormScenario(9));
  ExpectClean(first);
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint());
}

TEST(ChaosTest, RepeatedCorruptionQuarantinesTheSickNode) {
  // Node 1 keeps rotting its copies; once the scrubber has found enough
  // corrupt copies there it must drain the node gracefully and re-establish
  // replication elsewhere (I4 then holds against the reduced pool).
  ChaosScenarioOptions options;
  options.seed = 11;
  options.num_invocations = 30;
  options.scrub_interval = Seconds(5);
  options.scrub_quarantine_threshold = 2;
  options.flight_recorder = true;
  options.plan.events = {
      FaultEvent{Seconds(40), FaultKind::kCorruptSegment, 1, 0, 4.0},
      FaultEvent{Seconds(60), FaultKind::kCorruptReplica, 1, 0, 4.0},
      FaultEvent{Seconds(80), FaultKind::kCorruptSegment, 1, 0, 4.0},
      FaultEvent{Seconds(100), FaultKind::kCorruptReplica, 1, 0, 4.0},
  };
  options.plan.Sort();
  const ChaosReport report = RunChaosScenario(options);
  ExpectClean(report);
  EXPECT_GE(report.counter("ofc.scrub.quarantines"), 1u);
  EXPECT_GE(report.counter("ofc.ramcloud.nodes_quarantined"), 1u);
  EXPECT_NE(report.flight_json.find("\"kind\": \"node_quarantined\""),
            std::string::npos);
}

TEST(ChaosTest, ScrubInterleavesWithCrashRecoveryCleanly) {
  // The scrub walk races the full lifecycle machinery: a master crashes right
  // after its segments rot (recovery must promote healthy copies or repair),
  // more corruption lands while the node is down, and the store rots during
  // the crash window. No double-repair, no assert, and a clean end state.
  ChaosScenarioOptions options;
  options.seed = 29;
  options.num_invocations = 30;
  options.scrub_interval = Seconds(5);
  options.scrub_quarantine_threshold = 0;
  options.plan.events = {
      FaultEvent{Seconds(40), FaultKind::kCorruptSegment, 1, 0, 3.0},
      FaultEvent{Seconds(42), FaultKind::kNodeCrash, 1, Seconds(30)},
      FaultEvent{Seconds(50), FaultKind::kCorruptReplica, 0, 0, 3.0},
      FaultEvent{Seconds(55), FaultKind::kStoreRot, -1, 0, 3.0},
  };
  options.plan.Sort();
  const ChaosReport report = RunChaosScenario(options);
  ExpectClean(report);
  EXPECT_EQ(report.counter("ofc.ramcloud.node_crashes"), 1u);
  EXPECT_EQ(report.counter("ofc.ramcloud.node_restarts"), 1u);
}

TEST(ChaosTest, ScrubbedCrashRunReplaysByteIdentical) {
  auto scenario = [] {
    ChaosScenarioOptions options;
    options.seed = 29;
    options.num_invocations = 30;
    options.scrub_interval = Seconds(5);
    options.flight_recorder = true;
    options.plan.events = {
        FaultEvent{Seconds(40), FaultKind::kCorruptSegment, 1, 0, 3.0},
        FaultEvent{Seconds(42), FaultKind::kNodeCrash, 1, Seconds(30)},
        FaultEvent{Seconds(55), FaultKind::kStoreRot, -1, 0, 3.0},
    };
    options.plan.Sort();
    return options;
  };
  const ChaosReport first = RunChaosScenario(scenario());
  const ChaosReport second = RunChaosScenario(scenario());
  ExpectClean(first);
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint());
}

// Randomized schedules: the plan is drawn from the seed, so each seed is a
// distinct-but-reproducible chaos run. Invariants must hold for every seed.
class RandomChaosTest : public ::testing::TestWithParam<std::uint64_t> {};

fault::ChaosPlanOptions RandomPlanOptions() {
  fault::ChaosPlanOptions plan_options;
  plan_options.num_workers = 3;
  plan_options.num_nodes = 3;
  plan_options.start = Seconds(20);
  plan_options.horizon = Minutes(3);
  plan_options.num_events = 5;
  plan_options.max_duration = Seconds(30);
  return plan_options;
}

TEST_P(RandomChaosTest, InvariantsHoldUnderRandomSchedule) {
  const std::uint64_t seed = GetParam();
  Rng plan_rng(seed * 1000003);
  ChaosScenarioOptions options;
  options.seed = seed;
  options.fault_horizon = Minutes(3);
  options.plan = fault::RandomFaultPlan(RandomPlanOptions(), &plan_rng);
  ASSERT_FALSE(options.plan.empty());
  const ChaosReport report = RunChaosScenario(options);
  ExpectClean(report);
  EXPECT_EQ(report.counter("ofc.fault.injected"),
            static_cast<std::uint64_t>(options.plan.size()));
}

TEST_P(RandomChaosTest, RandomScheduleReplaysByteIdentical) {
  const std::uint64_t seed = GetParam();
  ChaosReport reports[2];
  for (ChaosReport& report : reports) {
    Rng plan_rng(seed * 1000003);
    ChaosScenarioOptions options;
    options.seed = seed;
    options.fault_horizon = Minutes(3);
    options.num_invocations = 20;
    options.plan = fault::RandomFaultPlan(RandomPlanOptions(), &plan_rng);
    report = RunChaosScenario(options);
  }
  EXPECT_TRUE(reports[0].ok()) << reports[0].ViolationSummary();
  EXPECT_EQ(reports[0].Fingerprint(), reports[1].Fingerprint());
}

TEST_P(RandomChaosTest, CorruptionScheduleWithScrubberStaysClean) {
  // Random schedules drawn from the corruption-enabled pool, scrubber on:
  // whatever interleaving of crashes and bit flips the seed produces, the six
  // invariants (including the I6 end-state sweep) must hold.
  const std::uint64_t seed = GetParam();
  Rng plan_rng(seed * 2000003);
  fault::ChaosPlanOptions plan_options = RandomPlanOptions();
  plan_options.include_corruption_faults = true;
  ChaosScenarioOptions options;
  options.seed = seed;
  options.fault_horizon = Minutes(3);
  options.num_invocations = 20;
  options.scrub_interval = Seconds(5);
  options.plan = fault::RandomFaultPlan(plan_options, &plan_rng);
  ASSERT_FALSE(options.plan.empty());
  const ChaosReport report = RunChaosScenario(options);
  ExpectClean(report);
  EXPECT_EQ(report.counter("ofc.integrity.corrupt_acked"), 0u);
}

INSTANTIATE_TEST_SUITE_P(Seeds, RandomChaosTest, ::testing::Values(1u, 2u, 3u));

}  // namespace
}  // namespace ofc
