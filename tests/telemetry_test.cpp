// Tests for the second-generation observability layer: timeline windowing
// math, SLO burn-rate alerting, the flight recorder ring, and exporter
// escaping under hostile metric/label names.
#include <limits>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/units.h"
#include "src/obs/export_util.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/slo.h"
#include "src/obs/timeline.h"

namespace ofc::obs {
namespace {

// ---- TimelineRecorder --------------------------------------------------------

TEST(TimelineTest, CounterDeltasAndRates) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t.count");
  TimelineRecorder timeline(&registry);

  c->Add(10);
  timeline.Scrape(Seconds(10));
  c->Add(5);
  timeline.Scrape(Seconds(20));

  ASSERT_EQ(timeline.windows().size(), 2u);
  const TimelineWindow& w0 = timeline.windows()[0];
  ASSERT_EQ(w0.counters.size(), 1u);
  EXPECT_EQ(w0.counters[0].value, 10u);
  EXPECT_EQ(w0.counters[0].delta, 10u);
  EXPECT_DOUBLE_EQ(w0.counters[0].rate_per_s, 1.0);
  const TimelineWindow& w1 = timeline.windows()[1];
  EXPECT_EQ(w1.counters[0].value, 15u);
  EXPECT_EQ(w1.counters[0].delta, 5u);
  EXPECT_DOUBLE_EQ(w1.counters[0].rate_per_s, 0.5);
  EXPECT_EQ(timeline.CounterDelta(0, "t.count"), 10u);
  EXPECT_EQ(timeline.CounterDelta(1, "t.count"), 5u);
}

TEST(TimelineTest, CounterResetIsTreatedAsRestartNotUnderflow) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t.count");
  TimelineRecorder timeline(&registry);

  c->Add(10);
  timeline.Scrape(Seconds(10));
  c->Reset();
  c->Add(3);
  timeline.Scrape(Seconds(20));

  // The shrink is read as a restart: the post-reset value is the delta, never
  // a wrapped-around huge number.
  EXPECT_EQ(timeline.windows()[1].counters[0].delta, 3u);
}

TEST(TimelineTest, ZeroLengthWindowHasZeroRate) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t.count");
  TimelineRecorder timeline(&registry);
  c->Add(7);
  timeline.Scrape(Seconds(5));
  c->Add(7);
  timeline.Scrape(Seconds(5));  // Same instant: delta present, rate 0.
  EXPECT_EQ(timeline.windows()[1].counters[0].delta, 7u);
  EXPECT_DOUBLE_EQ(timeline.windows()[1].counters[0].rate_per_s, 0.0);
}

TEST(TimelineTest, IntervalPercentilesAreWindowLocalWhileRunPercentilesAccumulate) {
  MetricsRegistry registry;
  Series* s = registry.GetSeries("t.lat_ms");
  TimelineRecorder timeline(&registry);

  for (int i = 0; i < 100; ++i) {
    s->Observe(10.0);
  }
  timeline.Scrape(Seconds(10));
  for (int i = 0; i < 100; ++i) {
    s->Observe(1000.0);
  }
  timeline.Scrape(Seconds(20));

  const TimelineSeries& s0 = timeline.windows()[0].series[0];
  const TimelineSeries& s1 = timeline.windows()[1].series[0];
  EXPECT_EQ(s0.delta, 100u);
  EXPECT_DOUBLE_EQ(s0.interval_p50, 10.0);
  EXPECT_DOUBLE_EQ(s0.interval_mean, 10.0);
  // Second window only saw the slow observations...
  EXPECT_EQ(s1.delta, 100u);
  EXPECT_DOUBLE_EQ(s1.interval_p50, 1000.0);
  EXPECT_DOUBLE_EQ(s1.interval_mean, 1000.0);
  // ...while the whole-run view mixes both populations.
  EXPECT_EQ(s1.count, 200u);
  EXPECT_GT(s1.run_p99, s1.run_p50);
  EXPECT_LE(s1.run_p50, 1000.0);
  EXPECT_GE(s1.run_p50, 10.0);
}

TEST(TimelineTest, QuietWindowReportsZeroDeltaAndSilentPercentiles) {
  MetricsRegistry registry;
  Series* s = registry.GetSeries("t.lat_ms");
  TimelineRecorder timeline(&registry);
  s->Observe(42.0);
  timeline.Scrape(Seconds(10));
  timeline.Scrape(Seconds(20));  // No new observations.
  const TimelineSeries& quiet = timeline.windows()[1].series[0];
  EXPECT_EQ(quiet.delta, 0u);
  EXPECT_DOUBLE_EQ(quiet.interval_p50, 0.0);
  EXPECT_DOUBLE_EQ(quiet.interval_p99, 0.0);
  EXPECT_EQ(quiet.count, 1u);  // Cumulative view still carries the total.
}

TEST(TimelineTest, RingEvictsOldestWindowsAtCapacity) {
  MetricsRegistry registry;
  Counter* c = registry.GetCounter("t.count");
  TimelineOptions options;
  options.max_windows = 4;
  TimelineRecorder timeline(&registry, options);
  for (int i = 1; i <= 10; ++i) {
    c->Add(1);
    timeline.Scrape(Seconds(i));
  }
  EXPECT_EQ(timeline.windows().size(), 4u);
  EXPECT_EQ(timeline.total_windows(), 10u);
  EXPECT_EQ(timeline.evicted(), 6u);
  // Retained windows keep their monotonic scrape indices.
  EXPECT_EQ(timeline.windows().front().index, 6u);
  EXPECT_EQ(timeline.windows().back().index, 9u);
  // An evicted window's delta is gone; a retained one still answers.
  EXPECT_EQ(timeline.CounterDelta(0, "t.count"), 0u);
  EXPECT_EQ(timeline.CounterDelta(9, "t.count"), 1u);
}

TEST(TimelineTest, JsonIsByteIdenticalAcrossIdenticalRuns) {
  auto run = [] {
    MetricsRegistry registry;
    Counter* c = registry.GetCounter("t.count", "fn");
    Series* s = registry.GetSeries("t.lat_ms");
    TimelineRecorder timeline(&registry);
    for (int i = 1; i <= 5; ++i) {
      c->Add(static_cast<std::uint64_t>(i));
      s->Observe(10.0 * i);
      timeline.Scrape(Seconds(i * 10));
    }
    return timeline.ToJson();
  };
  const std::string a = run();
  const std::string b = run();
  EXPECT_EQ(a, b);
  EXPECT_NE(a.find("\"windows\""), std::string::npos);
  EXPECT_NE(a.find("\"rate_per_s\""), std::string::npos);
}

// ---- SLO spec parsing --------------------------------------------------------

TEST(SloParseTest, ParsesLatencyAndRateSpecsWithOptions) {
  std::vector<SloSpec> specs;
  std::string error;
  ASSERT_TRUE(ParseSloSpecs(
      "warm=lat:ofc.platform.total_ms:p99:250:fast=30:slow=300:fastburn=10:slowburn=4;"
      "# a comment line\n"
      "rate:ofc.overload.shed/ofc.platform.invocations:0.005",
      &specs, &error))
      << error;
  ASSERT_EQ(specs.size(), 2u);
  EXPECT_EQ(specs[0].name, "warm");
  EXPECT_EQ(specs[0].type, SloSpec::Type::kLatency);
  EXPECT_EQ(specs[0].series, "ofc.platform.total_ms");
  EXPECT_DOUBLE_EQ(specs[0].quantile, 0.99);
  EXPECT_DOUBLE_EQ(specs[0].target_ms, 250.0);
  EXPECT_NEAR(specs[0].budget, 0.01, 1e-12);
  EXPECT_DOUBLE_EQ(specs[0].fast_window_s, 30.0);
  EXPECT_DOUBLE_EQ(specs[0].slow_window_s, 300.0);
  EXPECT_DOUBLE_EQ(specs[0].fast_burn_threshold, 10.0);
  EXPECT_DOUBLE_EQ(specs[0].slow_burn_threshold, 4.0);
  // Unnamed specs get positional names; defaults stay in place.
  EXPECT_EQ(specs[1].name, "slo2");
  EXPECT_EQ(specs[1].type, SloSpec::Type::kRate);
  EXPECT_EQ(specs[1].numerator, "ofc.overload.shed");
  EXPECT_EQ(specs[1].denominator, "ofc.platform.invocations");
  EXPECT_DOUBLE_EQ(specs[1].budget, 0.005);
  EXPECT_DOUBLE_EQ(specs[1].fast_window_s, 60.0);
  EXPECT_DOUBLE_EQ(specs[1].slow_window_s, 600.0);
}

TEST(SloParseTest, RejectsMalformedSpecs) {
  const char* bad[] = {
      "latency:foo:p99:100",               // unknown type keyword
      "lat:foo:99:100",                    // percentile missing the 'p'
      "lat:foo:p0:100",                    // percentile out of range
      "lat:foo:p99",                       // missing target
      "rate:foo:0.01",                     // missing '/'
      "rate:foo/bar:2",                    // budget out of (0, 1]
      "lat:foo:p99:100:fast=600:slow=60",  // fast window exceeds slow
      "lat:foo:p99:100:bogus=1",           // unknown option
      "=lat:foo:p99:100",                  // empty name
  };
  for (const char* spec : bad) {
    std::vector<SloSpec> specs;
    std::string error;
    EXPECT_FALSE(ParseSloSpecs(spec, &specs, &error)) << spec;
    EXPECT_FALSE(error.empty()) << spec;
  }
}

// ---- SloMonitor --------------------------------------------------------------

SloSpec LatencySpec() {
  std::vector<SloSpec> specs;
  std::string error;
  EXPECT_TRUE(ParseSloSpecs("warm=lat:t.lat_ms:p99:100", &specs, &error)) << error;
  return specs[0];
}

TEST(SloMonitorTest, LatencyAlertFiresOnBothWindowsAndClearsOnRecovery) {
  MetricsRegistry registry;
  Series* lat = registry.GetSeries("t.lat_ms");
  SloMonitor monitor(&registry, /*trace=*/nullptr, {LatencySpec()});

  monitor.Evaluate(0);
  // One minute of 100% over-target traffic: burn = 1.0 / 0.01 = 100 on both
  // windows, past fastburn=14 and slowburn=6.
  for (int i = 0; i < 100; ++i) {
    lat->Observe(200.0);
  }
  monitor.Evaluate(Seconds(60));
  ASSERT_EQ(monitor.alerts_fired(), 1u);
  EXPECT_EQ(monitor.alerts()[0].slo, "warm");
  EXPECT_EQ(monitor.alerts()[0].fired_at, Seconds(60));
  EXPECT_EQ(monitor.alerts()[0].resolved_at, 0);
  EXPECT_NEAR(monitor.alerts()[0].fast_burn, 100.0, 1e-9);
  EXPECT_DOUBLE_EQ(registry.GaugeValue("ofc.slo.firing", "warm"), 1.0);
  EXPECT_EQ(registry.CounterValue("ofc.slo.alerts", "warm"), 1u);

  // A healthy minute empties the fast window; the alert clears even though the
  // slow window still remembers the bad minute.
  for (int i = 0; i < 200; ++i) {
    lat->Observe(10.0);
  }
  monitor.Evaluate(Seconds(120));
  ASSERT_EQ(monitor.alerts_fired(), 1u);  // Cleared, not re-fired.
  EXPECT_EQ(monitor.alerts()[0].resolved_at, Seconds(120));
  EXPECT_DOUBLE_EQ(registry.GaugeValue("ofc.slo.firing", "warm"), 0.0);
  EXPECT_NEAR(monitor.worst_burn(), 100.0, 1e-9);
}

TEST(SloMonitorTest, BlipBelowThresholdDoesNotFire) {
  MetricsRegistry registry;
  Series* lat = registry.GetSeries("t.lat_ms");
  SloMonitor monitor(&registry, nullptr, {LatencySpec()});
  monitor.Evaluate(0);
  // 5% over target: burn 5 clears slowburn=6? No — 5 < 6, and 5 < fastburn=14.
  for (int i = 0; i < 95; ++i) {
    lat->Observe(10.0);
  }
  for (int i = 0; i < 5; ++i) {
    lat->Observe(200.0);
  }
  monitor.Evaluate(Seconds(60));
  EXPECT_EQ(monitor.alerts_fired(), 0u);
  EXPECT_NEAR(monitor.worst_burn(), 5.0, 1e-9);
}

TEST(SloMonitorTest, RateSloCountsCounterDeltasPerInterval) {
  MetricsRegistry registry;
  Counter* bad = registry.GetCounter("t.bad");
  Counter* total = registry.GetCounter("t.total");
  std::vector<SloSpec> specs;
  std::string error;
  ASSERT_TRUE(ParseSloSpecs("shed=rate:t.bad/t.total:0.01", &specs, &error)) << error;
  SloMonitor monitor(&registry, nullptr, specs);

  monitor.Evaluate(0);
  bad->Add(50);
  total->Add(100);
  monitor.Evaluate(Seconds(60));
  ASSERT_EQ(monitor.alerts_fired(), 1u);
  EXPECT_NEAR(monitor.alerts()[0].fast_burn, 50.0, 1e-9);  // (50/100)/0.01
}

TEST(SloMonitorTest, MetricCellsExistBeforeAnyAlertFires) {
  MetricsRegistry registry;
  SloMonitor monitor(&registry, nullptr, {LatencySpec()});
  // Eager creation keeps snapshot layout independent of alert activity.
  const std::string snapshot = registry.SnapshotJson();
  EXPECT_NE(snapshot.find("ofc.slo.alerts"), std::string::npos);
  EXPECT_NE(snapshot.find("ofc.slo.burn_fast"), std::string::npos);
  EXPECT_NE(snapshot.find("ofc.slo.burn_slow"), std::string::npos);
  EXPECT_NE(snapshot.find("ofc.slo.firing"), std::string::npos);
}

TEST(SloMonitorTest, HealthJsonCarriesAlertsAndEscapesHostileNames) {
  MetricsRegistry registry;
  Series* lat = registry.GetSeries("t.lat_ms");
  SloSpec spec = LatencySpec();
  spec.name = "we\"ird\nname";
  SloMonitor monitor(&registry, nullptr, {spec});
  monitor.Evaluate(0);
  for (int i = 0; i < 100; ++i) {
    lat->Observe(200.0);
  }
  monitor.Evaluate(Seconds(60));
  const std::string health = monitor.HealthJson(Seconds(60));
  EXPECT_NE(health.find("\"alerts_fired\": 1"), std::string::npos);
  EXPECT_NE(health.find("\"worst_burn\""), std::string::npos);
  EXPECT_NE(health.find("\"breaker\""), std::string::npos);
  EXPECT_NE(health.find("we\\\"ird\\nname"), std::string::npos);
  EXPECT_EQ(health.find("we\"ird\nname"), std::string::npos);  // No raw bytes.
}

// ---- FlightRecorder ----------------------------------------------------------

TEST(FlightRecorderTest, DisabledRecorderRecordsNothing) {
  FlightRecorder flight;  // Default: disabled.
  flight.Record(Seconds(1), FlightEventKind::kSubmit, 1);
  EXPECT_EQ(flight.size(), 0u);
  EXPECT_EQ(flight.total_recorded(), 0u);
}

TEST(FlightRecorderTest, RingEvictsOldestBeyondCapacity) {
  FlightRecorder flight({/*enabled=*/true, /*capacity=*/4});
  for (std::uint64_t i = 0; i < 10; ++i) {
    flight.Record(static_cast<SimTime>(i), FlightEventKind::kSubmit, i + 1);
  }
  EXPECT_EQ(flight.size(), 4u);
  EXPECT_EQ(flight.total_recorded(), 10u);
  EXPECT_EQ(flight.evicted(), 6u);
  EXPECT_EQ(flight.ChainFor(7).size(), 1u);   // Retained.
  EXPECT_TRUE(flight.ChainFor(1).empty());    // Evicted.
}

TEST(FlightRecorderTest, ChainForFollowsInvocationAndParentLinks) {
  FlightRecorder flight({/*enabled=*/true, /*capacity=*/64});
  flight.Record(Seconds(1), FlightEventKind::kSubmit, 7, 0, 2, "fn");
  flight.Record(Seconds(1), FlightEventKind::kCacheMiss, 7, 0, 2, "key-a");
  // Persistor job: control-plane record linked back via parent_id.
  flight.Record(Seconds(2), FlightEventKind::kPersistorDispatch, 0, 7, -1, "key-a");
  flight.Record(Seconds(3), FlightEventKind::kComplete, 7, 0, 2, "fn");
  flight.Record(Seconds(3), FlightEventKind::kSubmit, 8);  // Unrelated.

  const auto chain = flight.ChainFor(7);
  ASSERT_EQ(chain.size(), 4u);
  EXPECT_EQ(chain[0]->kind, FlightEventKind::kSubmit);
  EXPECT_EQ(chain[2]->kind, FlightEventKind::kPersistorDispatch);
  EXPECT_EQ(chain[2]->parent_id, 7u);
  EXPECT_EQ(chain[3]->kind, FlightEventKind::kComplete);
}

TEST(FlightRecorderTest, JsonDumpEscapesHostilePayloadsAndCarriesReason) {
  FlightRecorder flight({/*enabled=*/true, /*capacity=*/8});
  flight.Record(Seconds(1), FlightEventKind::kFail, 3, 0, 0, "fn\"quote", "line\nbreak");
  const std::string dump = flight.ToJson("invariant \"X\" violated");
  EXPECT_NE(dump.find("\"reason\": \"invariant \\\"X\\\" violated\""), std::string::npos);
  EXPECT_NE(dump.find("fn\\\"quote"), std::string::npos);
  EXPECT_NE(dump.find("line\\nbreak"), std::string::npos);
  EXPECT_EQ(dump.find("line\nbreak"), std::string::npos);
  EXPECT_NE(dump.find("\"total_recorded\": 1"), std::string::npos);
}

// ---- Exporter escaping (hostile metric/label names) --------------------------

TEST(ExportUtilTest, JsonEscapeHandlesQuotesBackslashesAndControls) {
  EXPECT_EQ(JsonEscape("plain"), "plain");
  EXPECT_EQ(JsonEscape("a\"b"), "a\\\"b");
  EXPECT_EQ(JsonEscape("a\\b"), "a\\\\b");
  EXPECT_EQ(JsonEscape("a\nb\tc"), "a\\nb\\tc");
  EXPECT_EQ(JsonEscape(std::string("a\x01") + "b"), "a\\u0001b");
}

TEST(ExportUtilTest, JsonNumberNeverEmitsNanOrInf) {
  EXPECT_EQ(JsonNumber(2.0), "2");
  EXPECT_EQ(JsonNumber(0.0), "0");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::quiet_NaN()), "0");
  EXPECT_EQ(JsonNumber(std::numeric_limits<double>::infinity()), "0");
  EXPECT_NE(JsonNumber(2.5).find('.'), std::string::npos);
}

TEST(ExportUtilTest, CsvFieldQuotesOnlyWhenNecessary) {
  EXPECT_EQ(CsvField("plain"), "plain");
  EXPECT_EQ(CsvField("a,b"), "\"a,b\"");
  EXPECT_EQ(CsvField("a\"b"), "\"a\"\"b\"");
  EXPECT_EQ(CsvField("a\nb"), "\"a\nb\"");
}

TEST(ExportUtilTest, RegistryExportersSurviveHostileNamesAndLabels) {
  MetricsRegistry registry;
  registry.GetCounter("evil\"metric", "lab,el\nx")->Add(3);
  registry.GetSeries("s\\eries", "q\"l")->Observe(1.0);

  const std::string json = registry.SnapshotJson();
  EXPECT_NE(json.find("evil\\\"metric"), std::string::npos);
  EXPECT_NE(json.find("lab,el\\nx"), std::string::npos);
  EXPECT_NE(json.find("s\\\\eries"), std::string::npos);
  EXPECT_EQ(json.find("evil\"metric"), std::string::npos);  // No raw quote.

  const std::string csv = registry.SnapshotCsv();
  EXPECT_NE(csv.find("\"evil\"\"metric\""), std::string::npos);
  EXPECT_NE(csv.find("\"lab,el\nx\""), std::string::npos);
}

}  // namespace
}  // namespace ofc::obs
