// Unit tests for the RAMCloud-style log-structured memory: segment allocation,
// jumbo entries, fragmentation, the cleaner, and capacity bounds.
#include <gtest/gtest.h>

#include <map>

#include "src/common/rng.h"
#include "src/ramcloud/segmented_log.h"

namespace ofc::rc {
namespace {

SegmentedLogOptions SmallSegments() {
  SegmentedLogOptions options;
  options.segment_size = MiB(1);
  return options;
}

TEST(SegmentedLogTest, StartsEmpty) {
  SegmentedLog log(SmallSegments());
  EXPECT_EQ(log.live_bytes(), 0);
  EXPECT_EQ(log.footprint(), 0);
  EXPECT_EQ(log.num_segments(), 0u);
  EXPECT_DOUBLE_EQ(log.utilization(), 1.0);
}

TEST(SegmentedLogTest, AppendAllocatesSegments) {
  SegmentedLog log(SmallSegments());
  const auto a = log.Append(KiB(300), MiB(16));
  ASSERT_TRUE(a.ok());
  EXPECT_EQ(log.live_bytes(), KiB(300));
  EXPECT_EQ(log.footprint(), MiB(1));  // One segment holds it.
  const auto b = log.Append(KiB(300), MiB(16));
  ASSERT_TRUE(b.ok());
  EXPECT_EQ(log.footprint(), MiB(1));  // Same segment has room.
  const auto c = log.Append(KiB(600), MiB(16));
  ASSERT_TRUE(c.ok());
  EXPECT_EQ(log.footprint(), MiB(2));  // Needs a second segment.
  EXPECT_NE(*a, *b);
}

TEST(SegmentedLogTest, JumboEntriesGetDedicatedSegment) {
  SegmentedLog log(SmallSegments());
  const auto big = log.Append(MiB(5), MiB(16));
  ASSERT_TRUE(big.ok());
  EXPECT_EQ(log.footprint(), MiB(5));  // Exact-size jumbo segment.
  EXPECT_EQ(log.num_segments(), 1u);
  ASSERT_TRUE(log.Free(*big).ok());
  EXPECT_EQ(log.footprint(), 0);  // Fully dead segments release instantly.
}

TEST(SegmentedLogTest, CapacityBoundsFootprint) {
  SegmentedLog log(SmallSegments());
  ASSERT_TRUE(log.Append(KiB(900), MiB(2)).ok());
  ASSERT_TRUE(log.Append(KiB(900), MiB(2)).ok());
  // A third segment would exceed the 2 MiB bound, and nothing can be cleaned.
  const auto result = log.Append(KiB(900), MiB(2));
  EXPECT_EQ(result.status().code(), StatusCode::kResourceExhausted);
  EXPECT_LE(log.footprint(), MiB(2));
}

TEST(SegmentedLogTest, FreeLeavesDeadBytesUntilCleaned) {
  SegmentedLog log(SmallSegments());
  const auto a = log.Append(KiB(500), MiB(16));
  const auto b = log.Append(KiB(400), MiB(16));
  ASSERT_TRUE(a.ok());
  ASSERT_TRUE(b.ok());
  ASSERT_TRUE(log.Free(*a).ok());
  // The segment still holds b, so its footprint persists; utilization drops.
  EXPECT_EQ(log.live_bytes(), KiB(400));
  EXPECT_EQ(log.footprint(), MiB(1));
  EXPECT_LT(log.utilization(), 0.5);
}

TEST(SegmentedLogTest, DoubleFreeIsNotFound) {
  SegmentedLog log(SmallSegments());
  const auto a = log.Append(KiB(10), MiB(16));
  ASSERT_TRUE(log.Free(*a).ok());
  EXPECT_EQ(log.Free(*a).code(), StatusCode::kNotFound);
  EXPECT_EQ(log.Free(9999).code(), StatusCode::kNotFound);
}

TEST(SegmentedLogTest, CleanerCompactsFragmentedSegments) {
  SegmentedLog log(SmallSegments());
  // Fill 4 segments with pairs of ~512 KiB entries, then kill one entry per
  // segment: 4 half-dead segments.
  std::vector<SegmentedLog::EntryId> keep;
  std::vector<SegmentedLog::EntryId> kill;
  for (int s = 0; s < 4; ++s) {
    keep.push_back(*log.Append(KiB(500), MiB(16)));
    kill.push_back(*log.Append(KiB(500), MiB(16)));
  }
  for (auto id : kill) {
    ASSERT_TRUE(log.Free(id).ok());
  }
  EXPECT_EQ(log.footprint(), MiB(4));
  EXPECT_NEAR(log.utilization(), 0.49, 0.03);

  const CleanResult result = log.Clean(/*max_footprint=*/MiB(16));
  // Live data (4 x 500 KiB) packs into 2 segments.
  EXPECT_EQ(log.footprint(), MiB(2));
  EXPECT_GE(result.segments_freed, 2);
  EXPECT_GT(result.bytes_copied, 0);
  EXPECT_GT(result.duration, 0);
  EXPECT_GT(log.utilization(), 0.9);
  // All kept entries survive with their sizes intact.
  for (auto id : keep) {
    const auto size = log.EntrySize(id);
    ASSERT_TRUE(size.ok());
    EXPECT_EQ(*size, KiB(500));
  }
}

TEST(SegmentedLogTest, AppendTriggersCleaningUnderPressure) {
  SegmentedLog log(SmallSegments());
  // Two half-dead segments under a 2 MiB cap: a fresh 800 KiB append only fits
  // after compaction.
  const auto a = log.Append(KiB(500), MiB(2));
  const auto dead_a = log.Append(KiB(500), MiB(2));
  const auto b = log.Append(KiB(500), MiB(2));
  const auto dead_b = log.Append(KiB(500), MiB(2));
  ASSERT_TRUE(log.Free(*dead_a).ok());
  ASSERT_TRUE(log.Free(*dead_b).ok());
  SimDuration cleaning = 0;
  const auto c = log.Append(KiB(800), MiB(2), &cleaning);
  ASSERT_TRUE(c.ok());
  EXPECT_GT(cleaning, 0);
  EXPECT_LE(log.footprint(), MiB(2));
  EXPECT_TRUE(log.EntrySize(*a).ok());
  EXPECT_TRUE(log.EntrySize(*b).ok());
}

TEST(SegmentedLogTest, CleanIsNoOpWhenFullyLive) {
  SegmentedLog log(SmallSegments());
  for (int i = 0; i < 6; ++i) {
    ASSERT_TRUE(log.Append(KiB(900), MiB(16)).ok());
  }
  const Bytes before = log.footprint();
  const CleanResult result = log.Clean(MiB(16));
  EXPECT_EQ(result.bytes_copied, 0);
  EXPECT_EQ(log.footprint(), before);
}

TEST(SegmentedLogTest, StatsAccumulate) {
  SegmentedLog log(SmallSegments());
  const auto a = log.Append(KiB(100), MiB(16));
  (void)log.Append(KiB(100), MiB(16));
  ASSERT_TRUE(log.Free(*a).ok());
  (void)log.Clean(MiB(16));
  const SegmentedLogStats& stats = log.stats();
  EXPECT_EQ(stats.appends, 2u);
  EXPECT_EQ(stats.frees, 1u);
  EXPECT_GE(stats.cleaner_runs, 1u);
  EXPECT_GE(stats.segments_allocated, 1);
}

TEST(SegmentedLogTest, SegmentSlotsAreReused) {
  SegmentedLog log(SmallSegments());
  for (int round = 0; round < 20; ++round) {
    const auto id = log.Append(KiB(900), MiB(2));
    ASSERT_TRUE(id.ok());
    ASSERT_TRUE(log.Free(*id).ok());
  }
  // Twenty alloc/free rounds must not grow the footprint.
  EXPECT_EQ(log.footprint(), 0);
  EXPECT_EQ(log.stats().segments_reclaimed, 20);
}

// Property sweep: random append/free churn keeps the accounting consistent.
class LogChurnTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LogChurnTest, InvariantsHoldUnderChurn) {
  SegmentedLog log(SmallSegments());
  Rng rng(GetParam());
  std::map<SegmentedLog::EntryId, Bytes> live;
  Bytes live_sum = 0;
  for (int step = 0; step < 600; ++step) {
    if (live.empty() || rng.Bernoulli(0.55)) {
      const Bytes size = rng.UniformInt(KiB(1), KiB(1500));
      const auto id = log.Append(size, MiB(32));
      if (id.ok()) {
        live[*id] = size;
        live_sum += size;
      }
    } else {
      auto it = live.begin();
      std::advance(it, static_cast<long>(rng.Index(live.size())));
      ASSERT_TRUE(log.Free(it->first).ok());
      live_sum -= it->second;
      live.erase(it);
    }
    if (step % 97 == 0) {
      (void)log.Clean(MiB(32));
    }
    ASSERT_EQ(log.live_bytes(), live_sum);
    ASSERT_GE(log.footprint(), log.live_bytes());
    ASSERT_EQ(log.num_entries(), live.size());
  }
  // After freeing everything and cleaning, the footprint returns to zero.
  for (const auto& [id, size] : live) {
    ASSERT_TRUE(log.Free(id).ok());
  }
  (void)log.Clean(MiB(32));
  EXPECT_EQ(log.footprint(), 0);
}

INSTANTIATE_TEST_SUITE_P(Seeds, LogChurnTest, ::testing::Values(61, 62, 63, 64));

}  // namespace
}  // namespace ofc::rc
