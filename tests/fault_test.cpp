// Unit tests for the fault subsystem: FaultPlan JSON parsing / validation /
// random generation, ObjectStore outage + brownout + webhook-drop hooks, the
// proxy's bounded-retry degradation path, and FaultInjector scheduling.
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/checksum.h"
#include "src/core/proxy.h"
#include "src/faasload/environment.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"
#include "src/sim/latency.h"
#include "src/store/object_store.h"

namespace ofc::fault {
namespace {

// ---- FaultPlan: names, JSON, validation -------------------------------------------

TEST(FaultPlanTest, KindNamesRoundTrip) {
  for (FaultKind kind :
       {FaultKind::kWorkerCrash, FaultKind::kNodeCrash, FaultKind::kMachineCrash,
        FaultKind::kStoreOutage, FaultKind::kStoreBrownout, FaultKind::kPersistorDrop,
        FaultKind::kWebhookDrop, FaultKind::kCorruptReplica, FaultKind::kCorruptSegment,
        FaultKind::kStoreRot}) {
    const auto parsed = FaultKindFromName(FaultKindName(kind));
    ASSERT_TRUE(parsed.ok());
    EXPECT_EQ(*parsed, kind);
  }
  EXPECT_FALSE(FaultKindFromName("meteor_strike").ok());
}

TEST(FaultPlanTest, ParsesDocumentedSchema) {
  const std::string json = R"({"events": [
      {"at_ms": 60000, "kind": "node_crash", "target": 1, "duration_ms": 30000},
      {"at_ms": 45000, "kind": "store_brownout", "duration_ms": 20000, "severity": 4},
      {"at_ms": 70000, "kind": "persistor_drop", "duration_ms": 5000}
  ]})";
  const auto plan = ParseFaultPlanJson(json);
  ASSERT_TRUE(plan.ok()) << plan.status().message();
  ASSERT_EQ(plan->size(), 3u);
  // Parsing sorts by time.
  EXPECT_EQ(plan->events[0].kind, FaultKind::kStoreBrownout);
  EXPECT_EQ(plan->events[0].at, Seconds(45));
  EXPECT_EQ(plan->events[0].severity, 4.0);
  EXPECT_EQ(plan->events[1].kind, FaultKind::kNodeCrash);
  EXPECT_EQ(plan->events[1].target, 1);
  EXPECT_EQ(plan->events[1].duration, Seconds(30));
  EXPECT_EQ(plan->events[2].kind, FaultKind::kPersistorDrop);
}

TEST(FaultPlanTest, JsonRoundTripPreservesEvents) {
  FaultPlan plan;
  plan.events = {
      FaultEvent{Seconds(10), FaultKind::kWorkerCrash, 0, Seconds(5)},
      FaultEvent{Seconds(20), FaultKind::kStoreBrownout, -1, Seconds(15), 8.0},
      FaultEvent{Seconds(30), FaultKind::kWebhookDrop, -1, Seconds(5)},
  };
  const auto reparsed = ParseFaultPlanJson(FaultPlanToJson(plan));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(reparsed->events, plan.events);
}

TEST(FaultPlanTest, RejectsMalformedJson) {
  for (const char* bad : {
           "",                                               // Empty.
           "[]",                                             // Not an object.
           R"({"plan": []})",                                // Wrong key.
           R"({"events": [{"kind": "node_crash"}]})",        // Missing at_ms.
           R"({"events": [{"at_ms": 1}]})",                  // Missing kind.
           R"({"events": [{"at_ms": 1, "kind": "nope"}]})",  // Unknown kind.
           R"({"events": [{"at_ms": 1, "kind": "node_crash", "bogus": 2}]})",
           R"({"events": []} trailing)",                     // Trailing content.
           R"({"events": [{"at_ms": x, "kind": "node_crash"}]})",
       }) {
    EXPECT_FALSE(ParseFaultPlanJson(bad).ok()) << bad;
  }
}

TEST(FaultPlanTest, ValidateChecksTargetsAndParameters) {
  auto one = [](FaultEvent event) {
    FaultPlan plan;
    plan.events = {event};
    return plan;
  };
  // Valid baseline.
  EXPECT_TRUE(one(FaultEvent{Seconds(1), FaultKind::kWorkerCrash, 1, Seconds(1)})
                  .Validate(2, 2)
                  .ok());
  // Out-of-range targets.
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kWorkerCrash, 2, 0})
                   .Validate(2, 2)
                   .ok());
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kNodeCrash, -1, 0})
                   .Validate(2, 2)
                   .ok());
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kMachineCrash, 3, 0})
                   .Validate(4, 2)
                   .ok());
  // Negative time, weak brownout, duration-less drops.
  EXPECT_FALSE(one(FaultEvent{-1, FaultKind::kStoreOutage, -1, 0}).Validate(2, 2).ok());
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kStoreBrownout, -1, 0, 0.5})
                   .Validate(2, 2)
                   .ok());
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kPersistorDrop, -1, 0})
                   .Validate(2, 2)
                   .ok());
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kWebhookDrop, -1, 0})
                   .Validate(2, 2)
                   .ok());
}

TEST(FaultPlanTest, SortOrdersByTimeKindTarget) {
  FaultPlan plan;
  plan.events = {
      FaultEvent{Seconds(2), FaultKind::kNodeCrash, 1, 0},
      FaultEvent{Seconds(1), FaultKind::kStoreOutage, -1, Seconds(1)},
      FaultEvent{Seconds(2), FaultKind::kNodeCrash, 0, 0},
      FaultEvent{Seconds(2), FaultKind::kWorkerCrash, 0, 0},
  };
  plan.Sort();
  EXPECT_EQ(plan.events[0].kind, FaultKind::kStoreOutage);
  EXPECT_EQ(plan.events[1].kind, FaultKind::kWorkerCrash);
  EXPECT_EQ(plan.events[2].target, 0);
  EXPECT_EQ(plan.events[3].target, 1);
}

TEST(FaultPlanTest, RandomPlanIsDeterministicAndValid) {
  ChaosPlanOptions options;
  options.num_workers = 3;
  options.num_nodes = 3;
  Rng a(99);
  Rng b(99);
  const FaultPlan first = RandomFaultPlan(options, &a);
  const FaultPlan second = RandomFaultPlan(options, &b);
  ASSERT_EQ(first.size(), static_cast<std::size_t>(options.num_events));
  EXPECT_EQ(first.events, second.events);
  EXPECT_TRUE(first.Validate(options.num_workers, options.num_nodes).ok());
  for (const FaultEvent& event : first.events) {
    EXPECT_GE(event.at, options.start);
    EXPECT_LT(event.at, options.horizon);
    EXPECT_GE(event.duration, options.min_duration);
    EXPECT_LE(event.duration, options.max_duration);
  }
  Rng c(100);
  EXPECT_NE(RandomFaultPlan(options, &c).events, first.events);
}

TEST(FaultPlanTest, CorruptionEventsValidateTargetsSeverityAndInstantaneity) {
  auto one = [](FaultEvent event) {
    FaultPlan plan;
    plan.events = {event};
    return plan;
  };
  // Valid baselines: node-targeted cache corruption and untargeted store rot.
  EXPECT_TRUE(one(FaultEvent{Seconds(1), FaultKind::kCorruptReplica, 1, 0, 3.0})
                  .Validate(2, 2)
                  .ok());
  EXPECT_TRUE(one(FaultEvent{Seconds(1), FaultKind::kCorruptSegment, 0, 0, 1.0})
                  .Validate(2, 2)
                  .ok());
  EXPECT_TRUE(
      one(FaultEvent{Seconds(1), FaultKind::kStoreRot, -1, 0, 2.0}).Validate(2, 2).ok());
  // Out-of-range node targets.
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kCorruptReplica, 2, 0, 1.0})
                   .Validate(2, 2)
                   .ok());
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kCorruptSegment, -1, 0, 1.0})
                   .Validate(2, 2)
                   .ok());
  // Severity is a flip count: at least one.
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kCorruptReplica, 0, 0, 0.0})
                   .Validate(2, 2)
                   .ok());
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kStoreRot, -1, 0, -2.0})
                   .Validate(2, 2)
                   .ok());
  // Corruption is instantaneous: durations are rejected, not silently ignored.
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kCorruptSegment, 0, Seconds(5), 1.0})
                   .Validate(2, 2)
                   .ok());
  EXPECT_FALSE(one(FaultEvent{Seconds(1), FaultKind::kStoreRot, -1, Seconds(1), 1.0})
                   .Validate(2, 2)
                   .ok());
}

TEST(FaultPlanTest, CorruptionEventsRoundTripThroughJson) {
  FaultPlan plan;
  plan.events = {
      FaultEvent{Seconds(10), FaultKind::kCorruptSegment, 0, 0, 3.0},
      FaultEvent{Seconds(20), FaultKind::kCorruptReplica, 1, 0, 1.0},
      FaultEvent{Seconds(30), FaultKind::kStoreRot, -1, 0, 4.0},
  };
  const auto reparsed = ParseFaultPlanJson(FaultPlanToJson(plan));
  ASSERT_TRUE(reparsed.ok()) << reparsed.status().message();
  EXPECT_EQ(reparsed->events, plan.events);  // Severity (flip count) survives.
}

TEST(FaultPlanTest, RandomPlanAddsCorruptionKindsOnlyWhenOptedIn) {
  ChaosPlanOptions options;
  options.num_workers = 3;
  options.num_nodes = 3;
  options.num_events = 40;
  auto has_corruption = [](const FaultPlan& plan) {
    for (const FaultEvent& event : plan.events) {
      if (event.kind == FaultKind::kCorruptReplica ||
          event.kind == FaultKind::kCorruptSegment ||
          event.kind == FaultKind::kStoreRot) {
        return true;
      }
    }
    return false;
  };
  Rng off(3);
  EXPECT_FALSE(has_corruption(RandomFaultPlan(options, &off)));

  options.include_corruption_faults = true;
  Rng on(3);
  const FaultPlan plan = RandomFaultPlan(options, &on);
  EXPECT_TRUE(has_corruption(plan));
  EXPECT_TRUE(plan.Validate(options.num_workers, options.num_nodes).ok());
}

// ---- ObjectStore fault hooks -------------------------------------------------------

class StoreFaultTest : public ::testing::Test {
 protected:
  StoreFaultTest()
      : rsds_(&loop_, sim::LatencyProfiles::SwiftRequest(), Rng(1), "swift",
              sim::LatencyProfiles::SwiftControl()) {}

  sim::EventLoop loop_;
  store::ObjectStore rsds_;
};

TEST_F(StoreFaultTest, OutageFailsEveryOperationWithUnavailable) {
  rsds_.Seed("obj", KiB(64), {});
  rsds_.SetAvailable(false);
  std::vector<StatusCode> codes;
  rsds_.Put("p", KiB(1), {}, [&](Status s) { codes.push_back(s.code()); });
  rsds_.Get("obj", [&](Result<store::ObjectMetadata> r) { codes.push_back(r.status().code()); });
  rsds_.Head("obj", [&](Result<store::ObjectMetadata> r) { codes.push_back(r.status().code()); });
  rsds_.PutShadow("obj", KiB(1),
                  [&](Result<store::ObjectMetadata> r) { codes.push_back(r.status().code()); });
  rsds_.FinalizePayload("obj", 1, KiB(1), [&](Status s) { codes.push_back(s.code()); });
  rsds_.Delete("obj", [&](Status s) { codes.push_back(s.code()); });
  loop_.Run();
  ASSERT_EQ(codes.size(), 6u);
  for (StatusCode code : codes) {
    EXPECT_EQ(code, StatusCode::kUnavailable);
  }
  EXPECT_EQ(rsds_.stats().unavailable_errors, 6u);
  EXPECT_TRUE(rsds_.Exists("obj"));  // Data survives the outage.

  rsds_.SetAvailable(true);
  bool ok = false;
  rsds_.Get("obj", [&](Result<store::ObjectMetadata> r) { ok = r.ok(); });
  loop_.Run();
  EXPECT_TRUE(ok);
}

TEST_F(StoreFaultTest, OutageErrorsArriveAfterControlLatencyNotInstantly) {
  rsds_.SetAvailable(false);
  const SimTime start = loop_.now();
  SimTime failed_at = 0;
  rsds_.Get("obj", [&](Result<store::ObjectMetadata>) { failed_at = loop_.now(); });
  loop_.Run();
  EXPECT_GT(failed_at, start);  // A fast error, but still a round-trip.
}

TEST_F(StoreFaultTest, BrownoutInflatesLatencyByFactor) {
  auto timed_get = [](double factor) {
    sim::EventLoop loop;
    store::ObjectStore rsds(&loop, sim::LatencyProfiles::SwiftRequest(), Rng(1), "swift",
                            sim::LatencyProfiles::SwiftControl());
    rsds.Seed("obj", MiB(1), {});
    rsds.SetLatencyFactor(factor);
    SimTime done_at = 0;
    rsds.Get("obj", [&](Result<store::ObjectMetadata>) { done_at = loop.now(); });
    loop.Run();
    return done_at;
  };
  const SimTime healthy = timed_get(1.0);
  const SimTime browned = timed_get(4.0);
  ASSERT_GT(healthy, 0);
  // Same store seed -> same base latency draw; the brownout scales it exactly.
  EXPECT_EQ(browned, healthy * 4);
}

TEST_F(StoreFaultTest, LatencyFactorClampsBelowOne) {
  rsds_.SetLatencyFactor(0.25);
  EXPECT_EQ(rsds_.latency_factor(), 1.0);
}

TEST_F(StoreFaultTest, WebhookDropBypassesInterposition) {
  rsds_.Seed("obj", KiB(64), {});
  int hook_calls = 0;
  rsds_.set_read_webhook([&](const std::string&, std::function<void()> resume) {
    ++hook_calls;
    resume();
  });
  bool ok = false;
  rsds_.ExternalRead("obj", [&](Result<store::ObjectMetadata> r) { ok = r.ok(); });
  loop_.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(hook_calls, 1);

  rsds_.SetWebhooksEnabled(false);
  ok = false;
  rsds_.ExternalRead("obj", [&](Result<store::ObjectMetadata> r) { ok = r.ok(); });
  loop_.Run();
  EXPECT_TRUE(ok);
  EXPECT_EQ(hook_calls, 1);  // Bypassed.
  EXPECT_EQ(rsds_.stats().webhook_bypasses, 1u);

  rsds_.SetWebhooksEnabled(true);
  rsds_.ExternalRead("obj", [&](Result<store::ObjectMetadata>) {});
  loop_.Run();
  EXPECT_EQ(hook_calls, 2);
}

TEST_F(StoreFaultTest, PutIfVersionIsCompareAndSwap) {
  bool created = false;
  rsds_.PutIfVersion("obj", 0, KiB(1), {}, [&](Status s) { created = s.ok(); });
  loop_.Run();
  EXPECT_TRUE(created);
  const auto meta = rsds_.Stat("obj");
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->IsShadow());

  // Stale expectation: the object advanced past "absent".
  Status stale = OkStatus();
  rsds_.PutIfVersion("obj", 0, KiB(2), {}, [&](Status s) { stale = s; });
  loop_.Run();
  EXPECT_EQ(stale.code(), StatusCode::kAborted);
  EXPECT_EQ(rsds_.Stat("obj")->size, KiB(1));  // Untouched.

  // Matching expectation swaps in the new payload.
  Status swapped = InternalError("unset");
  rsds_.PutIfVersion("obj", meta->latest_version, KiB(2), {},
                     [&](Status s) { swapped = s; });
  loop_.Run();
  EXPECT_TRUE(swapped.ok());
  EXPECT_EQ(rsds_.Stat("obj")->size, KiB(2));

  // The check runs when the write *lands*: a shadow write issued later but
  // completing first (control vs payload latency) must defeat the swap.
  const store::ObjectVersion current = rsds_.Stat("obj")->latest_version;
  Status raced = OkStatus();
  rsds_.PutIfVersion("obj", current, KiB(4), {}, [&](Status s) { raced = s; });
  rsds_.PutShadow("obj", KiB(8), [](Result<store::ObjectMetadata>) {});
  loop_.Run();
  EXPECT_EQ(raced.code(), StatusCode::kAborted);
  EXPECT_EQ(rsds_.Stat("obj")->size, KiB(2));
}

// ---- Proxy degradation path --------------------------------------------------------

class ProxyFaultTest : public ::testing::Test {
 protected:
  ProxyFaultTest()
      : rsds_(&loop_, sim::LatencyProfiles::SwiftRequest(), Rng(1), "swift",
              sim::LatencyProfiles::SwiftControl()),
        cluster_(&loop_, 2, MakeClusterOptions(), Rng(2)),
        proxy_(&loop_, &cluster_, &rsds_, MakeProxyOptions()) {}

  static rc::ClusterOptions MakeClusterOptions() {
    rc::ClusterOptions options;
    options.default_capacity = GiB(1);
    options.replication_factor = 1;
    return options;
  }

  static core::ProxyOptions MakeProxyOptions() {
    core::ProxyOptions options;
    options.rsds_deadline = Seconds(5);
    options.rsds_max_retries = 4;
    options.persistor_max_retries = 6;
    return options;
  }

  faas::InvocationContext Ctx(bool should_cache = true) {
    faas::InvocationContext ctx;
    ctx.worker = 0;
    ctx.function = "f";
    ctx.should_cache = should_cache;
    return ctx;
  }

  workloads::MediaDescriptor Media(Bytes size) {
    workloads::MediaDescriptor media;
    media.kind = workloads::InputKind::kImage;
    media.byte_size = size;
    return media;
  }

  sim::EventLoop loop_;
  store::ObjectStore rsds_;
  rc::Cluster cluster_;
  core::Proxy proxy_;
};

TEST_F(ProxyFaultTest, ReadRetriesThroughShortOutage) {
  rsds_.Seed("obj", KiB(64), {});
  rsds_.SetAvailable(false);
  loop_.ScheduleAfter(Millis(120), [this] { rsds_.SetAvailable(true); });
  Result<Bytes> out = InternalError("unset");
  proxy_.Read(Ctx(), "obj", [&](Result<Bytes> r) { out = std::move(r); });
  loop_.Run();
  ASSERT_TRUE(out.ok()) << out.status().message();
  EXPECT_EQ(*out, KiB(64));
  EXPECT_GT(proxy_.stats().rsds_retries, 0u);
  EXPECT_EQ(proxy_.stats().read_deadlines, 0u);
}

TEST_F(ProxyFaultTest, ReadFailsDeadlineWhenOutagePersists) {
  rsds_.Seed("obj", KiB(64), {});
  rsds_.SetAvailable(false);
  Result<Bytes> out = InternalError("unset");
  proxy_.Read(Ctx(), "obj", [&](Result<Bytes> r) { out = std::move(r); });
  loop_.Run();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kDeadlineExceeded);
  EXPECT_EQ(proxy_.stats().read_deadlines, 1u);
  EXPECT_EQ(proxy_.stats().rsds_retries, 4u);  // Full retry budget spent.
}

TEST_F(ProxyFaultTest, CacheHitServesReadsDuringOutage) {
  rsds_.Seed("obj", KiB(64), {});
  Result<Bytes> warm = InternalError("unset");
  proxy_.Read(Ctx(), "obj", [&](Result<Bytes> r) { warm = std::move(r); });
  loop_.Run();
  ASSERT_TRUE(warm.ok());
  ASSERT_TRUE(cluster_.Contains("obj"));

  rsds_.SetAvailable(false);
  Result<Bytes> hit = InternalError("unset");
  proxy_.Read(Ctx(), "obj", [&](Result<Bytes> r) { hit = std::move(r); });
  loop_.Run();
  ASSERT_TRUE(hit.ok());  // The cache masks the outage entirely.
  EXPECT_EQ(proxy_.stats().cache_hits, 1u);
  EXPECT_EQ(proxy_.stats().rsds_retries, 0u);
}

TEST_F(ProxyFaultTest, WriteFallsBackToDurableCacheDuringOutage) {
  rsds_.SetAvailable(false);
  loop_.ScheduleAfter(Seconds(2), [this] { rsds_.SetAvailable(true); });
  Status ack = InternalError("unset");
  proxy_.Write(Ctx(), "out", MiB(1), Media(MiB(1)), [&](Status s) { ack = s; });
  loop_.Run();
  ASSERT_TRUE(ack.ok());  // Acknowledged from the replicated cache copy.
  EXPECT_EQ(proxy_.stats().fallback_writes, 1u);
  // Once the store heals, the degraded persistor pushes the full payload.
  const auto meta = rsds_.Stat("out");
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->IsShadow());
  EXPECT_EQ(meta->size, MiB(1));
  EXPECT_GT(proxy_.stats().persistor_retries, 0u);
  EXPECT_FALSE(cluster_.Contains("out"));  // Final output dropped after persist.
}

TEST_F(ProxyFaultTest, WriteFailsWhenFallbackImpossible) {
  // Not cacheable -> no durable cache copy -> the outage must surface.
  rsds_.SetAvailable(false);
  Status ack = InternalError("unset");
  proxy_.Write(Ctx(/*should_cache=*/false), "out", MiB(1), Media(MiB(1)),
               [&](Status s) { ack = s; });
  loop_.Run();
  ASSERT_FALSE(ack.ok());
  EXPECT_EQ(ack.code(), StatusCode::kUnavailable);
  EXPECT_EQ(proxy_.stats().fallback_writes, 0u);
}

// Regression: a write acknowledged *after* the store healed must not be
// clobbered by the earlier write's retried fallback push (the degraded
// persistor stands down when its epoch goes stale).
TEST_F(ProxyFaultTest, StaleFallbackDoesNotClobberNewerWrite) {
  rsds_.SetAvailable(false);
  loop_.ScheduleAfter(Seconds(1), [this] { rsds_.SetAvailable(true); });
  Status first = InternalError("unset");
  proxy_.Write(Ctx(), "out", MiB(1), Media(MiB(1)), [&](Status s) { first = s; });
  loop_.RunUntil(Millis(500));
  ASSERT_TRUE(first.ok());  // Acked from the cache; fallback push still pending.
  EXPECT_EQ(proxy_.stats().fallback_writes, 1u);

  // A second write to the same key lands after heal, before the retried
  // fallback push fires.
  Status second = InternalError("unset");
  loop_.ScheduleAt(Seconds(1) + Millis(50), [&, this] {
    proxy_.Write(Ctx(), "out", MiB(2), Media(MiB(2)), [&](Status s) { second = s; });
  });
  loop_.Run();
  ASSERT_TRUE(second.ok());
  const auto meta = rsds_.Stat("out");
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->IsShadow());
  EXPECT_EQ(meta->size, MiB(2));  // The newer write won.
  EXPECT_GE(proxy_.stats().persistor_conflicts, 1u);  // Fallback stood down.
  EXPECT_FALSE(cluster_.Contains("out"));  // Dropped by the *newer* persistor.
}

// ISSUE 9 satellite: the degraded-mode fallback path carries the payload
// fingerprint end to end — the durable-cache ack, the retried CAS push, and
// the winning object all verify, whether the fallback lands or stands down.
TEST_F(ProxyFaultTest, FallbackWritesCarryChecksumsEndToEnd) {
  rsds_.SetAvailable(false);
  loop_.ScheduleAfter(Seconds(1), [this] { rsds_.SetAvailable(true); });
  Status ack = InternalError("unset");
  proxy_.Write(Ctx(), "out", MiB(1), Media(MiB(1)), [&](Status s) { ack = s; });
  loop_.RunUntil(Millis(500));
  ASSERT_TRUE(ack.ok());
  // The durable cache copy acked under the outage already verifies.
  const auto cached = cluster_.Inspect("out");
  ASSERT_TRUE(cached.ok());
  EXPECT_EQ(cached->checksum, ExpectedChecksum("out", cached->size, cached->version));

  loop_.Run();  // Heal; the retried fallback push lands through PutIfVersion.
  const auto meta = rsds_.Stat("out");
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->IsShadow());
  EXPECT_EQ(meta->checksum, ExpectedChecksum("out", meta->size, meta->rsds_version));
  EXPECT_EQ(rsds_.stats().checksum_failures, 0u);
  EXPECT_EQ(proxy_.stats().corrupt_acked, 0u);
}

// And when a newer write beats the stale fallback, the winner's checksum is
// the one that survives — the losing CAS never half-stamps the object.
TEST_F(ProxyFaultTest, NewerWriteBeatingStaleFallbackKeepsVerifiableChecksum) {
  rsds_.SetAvailable(false);
  loop_.ScheduleAfter(Seconds(1), [this] { rsds_.SetAvailable(true); });
  Status first = InternalError("unset");
  proxy_.Write(Ctx(), "out", MiB(1), Media(MiB(1)), [&](Status s) { first = s; });
  loop_.RunUntil(Millis(500));
  ASSERT_TRUE(first.ok());
  Status second = InternalError("unset");
  loop_.ScheduleAt(Seconds(1) + Millis(50), [&, this] {
    proxy_.Write(Ctx(), "out", MiB(2), Media(MiB(2)), [&](Status s) { second = s; });
  });
  loop_.Run();
  ASSERT_TRUE(second.ok());
  const auto meta = rsds_.Stat("out");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->size, MiB(2));
  EXPECT_EQ(meta->checksum, ExpectedChecksum("out", meta->size, meta->rsds_version));
  EXPECT_EQ(rsds_.stats().checksum_failures, 0u);  // No corrupt push was attempted.
}

// Regression: an external client's write after heal beats the stale fallback
// through the store-side compare-and-swap (no proxy epoch involved).
TEST_F(ProxyFaultTest, ExternalWriteAfterHealBeatsStaleFallback) {
  proxy_.InstallWebhooks();
  rsds_.SetAvailable(false);
  loop_.ScheduleAfter(Seconds(1), [this] { rsds_.SetAvailable(true); });
  Status ack = InternalError("unset");
  proxy_.Write(Ctx(), "out", MiB(1), Media(MiB(1)), [&](Status s) { ack = s; });
  Status external = InternalError("unset");
  loop_.ScheduleAt(Seconds(1) + Millis(50), [&, this] {
    rsds_.ExternalWrite("out", KiB(512), [&](Status s) { external = s; });
  });
  loop_.Run();
  ASSERT_TRUE(ack.ok());
  ASSERT_TRUE(external.ok());
  const auto meta = rsds_.Stat("out");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->size, KiB(512));  // The external overwrite is preserved.
  EXPECT_GE(proxy_.stats().persistor_conflicts, 1u);  // CAS aborted the push.
  EXPECT_EQ(proxy_.stats().external_write_invalidations, 1u);
}

// Regression: two fallback writes to one key during the same outage converge
// on the newest acknowledged payload, not on whichever persistor fires last.
TEST_F(ProxyFaultTest, ConcurrentFallbacksConvergeToNewestWrite) {
  rsds_.SetAvailable(false);
  loop_.ScheduleAfter(Seconds(2), [this] { rsds_.SetAvailable(true); });
  Status first = InternalError("unset");
  proxy_.Write(Ctx(), "out", MiB(1), Media(MiB(1)), [&](Status s) { first = s; });
  Status second = InternalError("unset");
  loop_.ScheduleAt(Millis(100), [&, this] {
    proxy_.Write(Ctx(), "out", MiB(3), Media(MiB(3)), [&](Status s) { second = s; });
  });
  loop_.Run();
  ASSERT_TRUE(first.ok());
  ASSERT_TRUE(second.ok());
  EXPECT_EQ(proxy_.stats().fallback_writes, 2u);
  const auto meta = rsds_.Stat("out");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->size, MiB(3));  // Newest ack wins.
  EXPECT_GE(proxy_.stats().persistor_conflicts, 1u);
  EXPECT_FALSE(cluster_.Contains("out"));
}

// Regression: with retries disabled (deadline 0) the store's own kUnavailable
// must surface — not a fabricated kDeadlineExceeded for a budget never spent.
TEST_F(ProxyFaultTest, DisabledRetriesSurfaceUnavailable) {
  core::ProxyOptions options = MakeProxyOptions();
  options.rsds_deadline = 0;  // Documented: disables retries.
  core::Proxy proxy(&loop_, &cluster_, &rsds_, options);
  rsds_.Seed("obj", KiB(64), {});
  rsds_.SetAvailable(false);
  Result<Bytes> out = InternalError("unset");
  proxy.Read(Ctx(), "obj", [&](Result<Bytes> r) { out = std::move(r); });
  loop_.Run();
  ASSERT_FALSE(out.ok());
  EXPECT_EQ(out.status().code(), StatusCode::kUnavailable);
  EXPECT_EQ(proxy.stats().read_deadlines, 0u);
  EXPECT_EQ(proxy.stats().rsds_retries, 0u);
}

// Regression: an overlapping drop window that ends earlier must not shorten a
// longer window already in force.
TEST_F(ProxyFaultTest, ShorterDropWindowDoesNotShortenLongerOne) {
  proxy_.InjectPersistorDropUntil(Seconds(5));
  proxy_.InjectPersistorDropUntil(Seconds(1));  // Overlap ending earlier.
  Status ack = InternalError("unset");
  proxy_.Write(Ctx(), "out", MiB(1), Media(MiB(1)), [&](Status s) { ack = s; });
  loop_.ScheduleAt(Seconds(3), [this] {
    const auto mid = rsds_.Stat("out");
    ASSERT_TRUE(mid.ok());
    EXPECT_TRUE(mid->IsShadow());  // Long window still open: no push landed.
  });
  loop_.Run();
  ASSERT_TRUE(ack.ok());
  const auto meta = rsds_.Stat("out");
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->IsShadow());  // Converged once the *longer* window closed.
  EXPECT_EQ(proxy_.stats().persistor_abandons, 0u);
}

TEST_F(ProxyFaultTest, PersistorDropWindowRetriesAfterExpiry) {
  proxy_.InjectPersistorDropUntil(loop_.now() + Seconds(1));
  Status ack = InternalError("unset");
  proxy_.Write(Ctx(), "out", MiB(1), Media(MiB(1)), [&](Status s) { ack = s; });
  loop_.Run();
  ASSERT_TRUE(ack.ok());
  EXPECT_GT(proxy_.stats().persistor_drops, 0u);
  EXPECT_GT(proxy_.stats().persistor_retries, 0u);
  const auto meta = rsds_.Stat("out");
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->IsShadow());  // Converged after the window closed.
  EXPECT_EQ(proxy_.stats().persistor_abandons, 0u);
}

TEST_F(ProxyFaultTest, PersistorAbandonsAfterRetryBudgetButStaysDirty) {
  rsds_.SetAvailable(false);  // Permanent outage.
  Status ack = InternalError("unset");
  proxy_.Write(Ctx(), "out", MiB(1), Media(MiB(1)), [&](Status s) { ack = s; });
  loop_.Run();  // Terminates: the retry budget is bounded.
  ASSERT_TRUE(ack.ok());
  EXPECT_EQ(proxy_.stats().persistor_abandons, 1u);
  // The payload is not lost — it stays dirty in the cache for the CacheAgent's
  // write-back sweep to retry later.
  const auto cached = cluster_.Inspect("out");
  ASSERT_TRUE(cached.ok());
  EXPECT_TRUE(cached->dirty);
}

TEST_F(ProxyFaultTest, BackoffIsDeterministicAcrossRuns) {
  auto run_once = [] {
    sim::EventLoop loop;
    store::ObjectStore rsds(&loop, sim::LatencyProfiles::SwiftRequest(), Rng(1), "swift",
                            sim::LatencyProfiles::SwiftControl());
    rc::Cluster cluster(&loop, 2, MakeClusterOptions(), Rng(2));
    core::Proxy proxy(&loop, &cluster, &rsds, MakeProxyOptions());
    rsds.Seed("obj", KiB(64), {});
    rsds.SetAvailable(false);
    SimTime failed_at = 0;
    faas::InvocationContext ctx;
    ctx.worker = 0;
    ctx.function = "f";
    proxy.Read(ctx, "obj", [&](Result<Bytes>) { failed_at = loop.now(); });
    loop.Run();
    return failed_at;
  };
  const SimTime first = run_once();
  EXPECT_GT(first, 0);
  EXPECT_EQ(first, run_once());  // No jitter: byte-identical replay.
}

// ---- FaultInjector -----------------------------------------------------------------

TEST(FaultInjectorTest, ScheduleRejectsUnwiredTargets) {
  sim::EventLoop loop;
  store::ObjectStore rsds(&loop, sim::LatencyProfiles::SwiftRequest(), Rng(1), "swift");
  FaultInjector injector(&loop, FaultInjectorTargets{nullptr, nullptr, &rsds, nullptr});
  FaultPlan plan;
  plan.events = {FaultEvent{Seconds(1), FaultKind::kWorkerCrash, 0, Seconds(1)}};
  EXPECT_EQ(injector.Schedule(plan).code(), StatusCode::kInvalidArgument);
  plan.events = {FaultEvent{Seconds(1), FaultKind::kPersistorDrop, -1, Seconds(1)}};
  EXPECT_EQ(injector.Schedule(plan).code(), StatusCode::kFailedPrecondition);
  plan.events = {FaultEvent{Seconds(1), FaultKind::kStoreOutage, -1, Seconds(1)}};
  EXPECT_TRUE(injector.Schedule(plan).ok());
}

TEST(FaultInjectorTest, OverlappingOutagesHealWhenLastWindowCloses) {
  sim::EventLoop loop;
  store::ObjectStore rsds(&loop, sim::LatencyProfiles::SwiftRequest(), Rng(1), "swift");
  FaultInjector injector(&loop, FaultInjectorTargets{nullptr, nullptr, &rsds, nullptr});
  FaultPlan plan;
  plan.events = {
      FaultEvent{Seconds(1), FaultKind::kStoreOutage, -1, Seconds(2)},   // Heals at 3.
      FaultEvent{Seconds(2), FaultKind::kStoreOutage, -1, Seconds(3)},   // Heals at 5.
  };
  ASSERT_TRUE(injector.Schedule(plan).ok());
  loop.RunUntil(Seconds(2) + Millis(500));
  EXPECT_FALSE(rsds.available());
  loop.RunUntil(Seconds(3) + Millis(500));
  EXPECT_FALSE(rsds.available());  // The first heal must not end the second window.
  loop.RunUntil(Seconds(5) + Millis(500));
  EXPECT_TRUE(rsds.available());
  EXPECT_EQ(injector.stats().injected, 2u);
  EXPECT_EQ(injector.stats().healed, 2u);
}

TEST(FaultInjectorTest, OverlappingBrownoutsRestoreHealthyFactor) {
  sim::EventLoop loop;
  store::ObjectStore rsds(&loop, sim::LatencyProfiles::SwiftRequest(), Rng(1), "swift");
  FaultInjector injector(&loop, FaultInjectorTargets{nullptr, nullptr, &rsds, nullptr});
  FaultPlan plan;
  plan.events = {
      FaultEvent{Seconds(1), FaultKind::kStoreBrownout, -1, Seconds(4), 2.0},
      FaultEvent{Seconds(2), FaultKind::kStoreBrownout, -1, Seconds(1), 8.0},
  };
  ASSERT_TRUE(injector.Schedule(plan).ok());
  loop.RunUntil(Seconds(2) + Millis(500));
  EXPECT_EQ(rsds.latency_factor(), 8.0);
  loop.RunUntil(Seconds(3) + Millis(500));
  EXPECT_EQ(rsds.latency_factor(), 8.0);  // Still one window open.
  loop.RunUntil(Seconds(6));
  EXPECT_EQ(rsds.latency_factor(), 1.0);
}

TEST(FaultInjectorTest, WorkerCrashHealsIntoRestore) {
  faasload::EnvironmentOptions env_options;
  env_options.platform.num_workers = 2;
  env_options.seed = 5;
  faasload::Environment env(faasload::Mode::kOfc, env_options);
  FaultInjector injector(&env.loop(),
                         FaultInjectorTargets{&env.platform(), env.cluster(), &env.rsds(),
                                              &env.ofc()->proxy()},
                         FaultInjectorOptions{&env.metrics(), &env.trace()});
  FaultPlan plan;
  plan.events = {FaultEvent{Seconds(1), FaultKind::kWorkerCrash, 1, Seconds(2)}};
  ASSERT_TRUE(injector.Schedule(plan).ok());
  env.loop().RunUntil(Seconds(2));
  EXPECT_FALSE(env.platform().WorkerAlive(1));
  env.loop().RunUntil(Seconds(4));
  EXPECT_TRUE(env.platform().WorkerAlive(1));
  EXPECT_EQ(env.platform().stats().worker_crashes, 1u);
  EXPECT_EQ(env.platform().stats().worker_restores, 1u);
}

// Regression: overlapping crash windows on the same target nest by depth — the
// first window's heal must not restore the target while the second is open.
TEST(FaultInjectorTest, OverlappingCrashWindowsRestoreAtLastClose) {
  faasload::EnvironmentOptions env_options;
  env_options.platform.num_workers = 2;
  env_options.seed = 7;
  faasload::Environment env(faasload::Mode::kOfc, env_options);
  FaultInjector injector(&env.loop(),
                         FaultInjectorTargets{&env.platform(), env.cluster(), &env.rsds(),
                                              &env.ofc()->proxy()},
                         FaultInjectorOptions{&env.metrics(), &env.trace()});
  FaultPlan plan;
  plan.events = {
      FaultEvent{Seconds(1), FaultKind::kWorkerCrash, 1, Seconds(2)},  // Heals at 3.
      FaultEvent{Seconds(2), FaultKind::kWorkerCrash, 1, Seconds(3)},  // Heals at 5.
      FaultEvent{Seconds(1), FaultKind::kNodeCrash, 0, Seconds(2)},
      FaultEvent{Seconds(2), FaultKind::kNodeCrash, 0, Seconds(3)},
  };
  ASSERT_TRUE(injector.Schedule(plan).ok());
  env.loop().RunUntil(Seconds(3) + Millis(500));
  EXPECT_FALSE(env.platform().WorkerAlive(1));  // First heal must not restore.
  EXPECT_FALSE(env.cluster()->Alive(0));
  env.loop().RunUntil(Seconds(5) + Millis(500));
  EXPECT_TRUE(env.platform().WorkerAlive(1));
  EXPECT_TRUE(env.cluster()->Alive(0));
  // The overlapped crash is injected/restored once: no double-counting.
  EXPECT_EQ(env.platform().stats().worker_crashes, 1u);
  EXPECT_EQ(env.platform().stats().worker_restores, 1u);
  EXPECT_EQ(env.cluster()->stats().node_crashes, 1u);
  EXPECT_EQ(env.cluster()->stats().node_restarts, 1u);
  EXPECT_EQ(injector.stats().injected, 4u);
  EXPECT_EQ(injector.stats().healed, 4u);
}

TEST(FaultInjectorTest, MachineCrashTakesDownWorkerAndNode) {
  faasload::EnvironmentOptions env_options;
  env_options.platform.num_workers = 2;
  env_options.seed = 6;
  faasload::Environment env(faasload::Mode::kOfc, env_options);
  FaultInjector injector(&env.loop(),
                         FaultInjectorTargets{&env.platform(), env.cluster(), &env.rsds(),
                                              &env.ofc()->proxy()},
                         FaultInjectorOptions{&env.metrics(), &env.trace()});
  FaultPlan plan;
  plan.events = {FaultEvent{Seconds(1), FaultKind::kMachineCrash, 0, Seconds(2)}};
  ASSERT_TRUE(injector.Schedule(plan).ok());
  env.loop().RunUntil(Seconds(2));
  EXPECT_FALSE(env.platform().WorkerAlive(0));
  EXPECT_FALSE(env.cluster()->Alive(0));
  env.loop().RunUntil(Seconds(4));
  EXPECT_TRUE(env.platform().WorkerAlive(0));
  EXPECT_TRUE(env.cluster()->Alive(0));
  EXPECT_EQ(env.metrics().CounterTotal("ofc.fault.injected"), 1u);
  EXPECT_EQ(env.metrics().CounterTotal("ofc.fault.healed"), 1u);
}

TEST(FaultInjectorTest, CorruptionFiresInstantlyAndCountsDamagedObjects) {
  faasload::EnvironmentOptions env_options;
  env_options.platform.num_workers = 2;
  env_options.seed = 8;
  faasload::Environment env(faasload::Mode::kOfc, env_options);
  FaultInjector injector(&env.loop(),
                         FaultInjectorTargets{&env.platform(), env.cluster(), &env.rsds(),
                                              &env.ofc()->proxy()},
                         FaultInjectorOptions{&env.metrics(), &env.trace()});
  // One cache object mastered on node 0, one durable store object. The events
  // fire shortly after the write lands, before the cache agent's sweeps can
  // reclaim the untouched object.
  for (int node = 0; node < env.cluster()->num_nodes(); ++node) {
    ASSERT_TRUE(env.cluster()->SetCapacity(node, MiB(64)).ok());
  }
  Status write = InternalError("unset");
  env.cluster()->Write(0, "k", MiB(1), 1, rc::ObjectClass::kInput, false,
                       [&](Status s) { write = s; });
  env.loop().RunUntil(Millis(50));  // Environment timers never drain: bounded run.
  ASSERT_TRUE(write.ok());
  env.rsds().Seed("c/x", KiB(64), {});

  FaultPlan plan;
  plan.events = {
      FaultEvent{Millis(100), FaultKind::kCorruptSegment, 0, 0, 4.0},
      FaultEvent{Millis(100), FaultKind::kStoreRot, -1, 0, 4.0},
  };
  ASSERT_TRUE(injector.Schedule(plan).ok());
  env.loop().RunUntil(Millis(200));

  // Each event flipped the one healthy object in its blast radius; severity
  // above the population does not inflate the count.
  EXPECT_EQ(env.metrics().CounterTotal("ofc.fault.objects_corrupted"), 2u);
  EXPECT_EQ(injector.stats().injected, 2u);
  // Instantaneous faults never open a heal window: the active gauge is flat
  // and no heal is pending at any future time.
  EXPECT_EQ(injector.stats().healed, 0u);
  EXPECT_EQ(env.metrics().GetGauge("ofc.fault.active")->value(), 0.0);

  // The damage itself outlives the event until scrubbed or read.
  const auto obj = env.cluster()->Inspect("k");
  ASSERT_TRUE(obj.ok());
  EXPECT_NE(obj->checksum, ExpectedChecksum("k", obj->size, obj->version));
  EXPECT_EQ(env.cluster()->ScrubObject("k").corrupt_copies, 1);
}

// ---- Cluster crash/restart mechanics ----------------------------------------------

TEST(ClusterFaultTest, CrashingDeadNodeIsNoOp) {
  sim::EventLoop loop;
  rc::ClusterOptions options;
  options.default_capacity = MiB(64);
  rc::Cluster cluster(&loop, 3, options, Rng(3));
  (void)cluster.CrashNode(1);
  EXPECT_FALSE(cluster.Alive(1));
  EXPECT_EQ(cluster.AliveNodes(), 2);
  const auto second = cluster.CrashNode(1);
  EXPECT_EQ(second.objects_recovered, 0u);
  EXPECT_EQ(second.objects_lost, 0u);
  EXPECT_EQ(cluster.stats().node_crashes, 1u);  // The no-op is not counted.
}

TEST(ClusterFaultTest, RestartReplicatesUnderReplicatedObjects) {
  sim::EventLoop loop;
  rc::ClusterOptions options;
  options.default_capacity = MiB(64);
  options.replication_factor = 2;
  rc::Cluster cluster(&loop, 3, options, Rng(4));
  for (int i = 0; i < 10; ++i) {
    cluster.Write(0, "k" + std::to_string(i), KiB(64), 1, rc::ObjectClass::kInput,
                  false, [](Status) {});
  }
  loop.Run();
  (void)cluster.CrashNode(2);
  // With two survivors, rf=2 cannot be met: every object has at most 1 backup.
  for (int i = 0; i < 10; ++i) {
    const auto obj = cluster.Inspect("k" + std::to_string(i));
    ASSERT_TRUE(obj.ok());
    EXPECT_LE(obj->backups.size(), 1u);
  }
  cluster.RestartNode(2);
  EXPECT_TRUE(cluster.Alive(2));
  EXPECT_EQ(cluster.stats().node_restarts, 1u);
  for (int i = 0; i < 10; ++i) {
    const auto obj = cluster.Inspect("k" + std::to_string(i));
    ASSERT_TRUE(obj.ok());
    EXPECT_EQ(obj->backups.size(), 2u) << "k" << i;  // rf restored.
    EXPECT_NE(obj->master, 2);                       // DRAM was lost; backup only.
  }
  cluster.RestartNode(2);  // Restarting an alive node is a no-op.
  EXPECT_EQ(cluster.stats().node_restarts, 1u);
}

// Regression: a crash racing a vertical-scaling master migration. The migration
// promotes a backup to master; crashing the *old* master immediately afterwards
// must not lose the object or leave a dead node in its replica set.
TEST(ClusterFaultTest, CrashAfterMigrationKeepsObjectConsistent) {
  sim::EventLoop loop;
  rc::ClusterOptions options;
  options.default_capacity = MiB(64);
  options.replication_factor = 2;
  rc::Cluster cluster(&loop, 3, options, Rng(5));
  cluster.Write(0, "hot", MiB(1), 1, rc::ObjectClass::kInput, false, [](Status) {});
  loop.Run();
  const auto before = cluster.Inspect("hot");
  ASSERT_TRUE(before.ok());
  const int old_master = before->master;

  const auto migration = cluster.MigrateMaster("hot");
  ASSERT_TRUE(migration.ok());
  ASSERT_EQ(migration->old_master, old_master);
  ASSERT_NE(migration->new_master, old_master);

  // Mid-scaling crash: the demoted node dies right after the promotion.
  const auto recovery = cluster.CrashNode(old_master);
  EXPECT_EQ(recovery.objects_lost, 0u);
  const auto after = cluster.Inspect("hot");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->master, migration->new_master);
  EXPECT_TRUE(cluster.Alive(after->master));
  for (int backup : after->backups) {
    EXPECT_TRUE(cluster.Alive(backup)) << "dead backup " << backup;
    EXPECT_NE(backup, after->master);
  }
  // And the reverse race: crash the *new* master right after promotion.
  const auto migration2 = cluster.MigrateMaster("hot");
  ASSERT_TRUE(migration2.ok());
  const auto recovery2 = cluster.CrashNode(migration2->new_master);
  EXPECT_EQ(recovery2.objects_lost, 0u);
  const auto final_obj = cluster.Inspect("hot");
  ASSERT_TRUE(final_obj.ok());
  EXPECT_TRUE(cluster.Alive(final_obj->master));
}

}  // namespace
}  // namespace ofc::fault
