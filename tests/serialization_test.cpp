// Tests for ML serialization (schemas, instances, J48 trees), the CouchDB-like
// metadata store, and full FunctionModel persistence through OfcSystem — the
// §5.1 "models live with the function metadata" flow.
#include <gtest/gtest.h>

#include <sstream>

#include "bench/trace_util.h"
#include "src/core/ml_service.h"
#include "src/core/ofc_system.h"
#include "src/faas/metadata_store.h"
#include "src/faasload/environment.h"
#include "src/ml/serialization.h"

namespace ofc {
namespace {

// ---- Primitives ------------------------------------------------------------------

TEST(SerializationTest, StringRoundTrip) {
  std::ostringstream out;
  ml::WriteString(out, "hello world");  // Embedded whitespace survives.
  ml::WriteString(out, "");
  std::istringstream in(out.str());
  EXPECT_EQ(*ml::ReadString(in), "hello world");
  EXPECT_EQ(*ml::ReadString(in), "");
}

TEST(SerializationTest, TruncatedStringFails) {
  std::istringstream in("42 short");
  EXPECT_FALSE(ml::ReadString(in).ok());
}

TEST(SerializationTest, SchemaRoundTrip) {
  const ml::Schema schema({ml::Attribute::Numeric("x"),
                           ml::Attribute::Nominal("fmt", {"jpeg", "png"})},
                          ml::Attribute::Nominal("cls", {"a", "b", "c"}));
  std::ostringstream out;
  ml::WriteSchema(out, schema);
  std::istringstream in(out.str());
  const auto restored = ml::ReadSchema(in);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->num_features(), 2u);
  EXPECT_EQ(restored->feature(0).name, "x");
  EXPECT_EQ(restored->feature(0).kind, ml::AttributeKind::kNumeric);
  EXPECT_EQ(restored->feature(1).values, (std::vector<std::string>{"jpeg", "png"}));
  EXPECT_EQ(restored->num_classes(), 3u);
}

TEST(SerializationTest, InstancesRoundTripExactly) {
  const ml::Schema schema({ml::Attribute::Numeric("x"), ml::Attribute::Numeric("y")},
                          ml::Attribute::Nominal("cls", {"a", "b"}));
  std::vector<ml::Instance> instances = {
      {{1.5, -2.25}, 0, 1.0},
      {{0.1 + 0.2, 1e-300}, 1, 2.5},  // Non-representable decimals round-trip.
  };
  std::ostringstream out;
  ml::WriteInstances(out, instances);
  std::istringstream in(out.str());
  const auto restored = ml::ReadInstances(in, schema);
  ASSERT_TRUE(restored.ok());
  ASSERT_EQ(restored->size(), 2u);
  for (std::size_t i = 0; i < 2; ++i) {
    EXPECT_EQ((*restored)[i].label, instances[i].label);
    EXPECT_EQ((*restored)[i].weight, instances[i].weight);
    EXPECT_EQ((*restored)[i].features, instances[i].features);  // Bit-exact.
  }
}

TEST(SerializationTest, J48RoundTripPredictsIdentically) {
  const workloads::FunctionSpec* spec = workloads::FindFunction("wand_sepia");
  const core::MemoryIntervals intervals;
  const ml::Dataset data = bench::BuildMemoryDataset(*spec, intervals, 300, 71);
  ml::J48 model;
  ASSERT_TRUE(model.Train(data).ok());

  const std::string blob = SerializeJ48(model);
  const auto restored = ml::DeserializeJ48(blob);
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->NumNodes(), model.NumNodes());
  for (const ml::Instance& inst : data.instances()) {
    ASSERT_EQ(restored->Predict(inst.features), model.Predict(inst.features));
  }
}

TEST(SerializationTest, UntrainedJ48RoundTrips) {
  ml::J48 model;
  const auto restored = ml::DeserializeJ48(SerializeJ48(model));
  ASSERT_TRUE(restored.ok());
  EXPECT_EQ(restored->NumNodes(), 0u);
}

TEST(SerializationTest, GarbageIsRejected) {
  EXPECT_FALSE(ml::DeserializeJ48("not a model").ok());
  EXPECT_FALSE(ml::DeserializeJ48("j48 1 schema garbage").ok());
  EXPECT_FALSE(ml::DeserializeJ48("").ok());
}

// ---- MetadataStore ----------------------------------------------------------------

class MetadataStoreTest : public ::testing::Test {
 protected:
  MetadataStoreTest() : store_(&loop_, Rng(1)) {}
  sim::EventLoop loop_;
  faas::MetadataStore store_;
};

TEST_F(MetadataStoreTest, CreateGetUpdate) {
  Result<std::uint64_t> rev1 = InternalError("unset");
  store_.Put("doc", "v1", 0, [&](Result<std::uint64_t> r) { rev1 = r; });
  loop_.Run();
  ASSERT_TRUE(rev1.ok());
  EXPECT_EQ(*rev1, 1u);

  Result<faas::Document> doc = InternalError("unset");
  store_.Get("doc", [&](Result<faas::Document> d) { doc = std::move(d); });
  loop_.Run();
  ASSERT_TRUE(doc.ok());
  EXPECT_EQ(doc->body, "v1");

  Result<std::uint64_t> rev2 = InternalError("unset");
  store_.Put("doc", "v2", *rev1, [&](Result<std::uint64_t> r) { rev2 = r; });
  loop_.Run();
  ASSERT_TRUE(rev2.ok());
  EXPECT_EQ(*rev2, 2u);
  EXPECT_EQ(store_.Stat("doc")->body, "v2");
}

TEST_F(MetadataStoreTest, StaleRevisionConflicts) {
  store_.Seed("doc", "v1");  // revision 1
  Result<std::uint64_t> result = InternalError("unset");
  store_.Put("doc", "v2", 0, [&](Result<std::uint64_t> r) { result = r; });
  loop_.Run();
  EXPECT_EQ(result.status().code(), StatusCode::kAborted);
  EXPECT_EQ(store_.Stat("doc")->body, "v1");  // Unchanged.
}

TEST_F(MetadataStoreTest, GetMissingIsNotFound) {
  Result<faas::Document> doc = InternalError("unset");
  store_.Get("missing", [&](Result<faas::Document> d) { doc = std::move(d); });
  loop_.Run();
  EXPECT_EQ(doc.status().code(), StatusCode::kNotFound);
}

TEST_F(MetadataStoreTest, DeleteChecksRevision) {
  store_.Seed("doc", "v1");
  Status stale = OkStatus();
  store_.Delete("doc", 99, [&](Status s) { stale = s; });
  loop_.Run();
  EXPECT_EQ(stale.code(), StatusCode::kAborted);
  Status ok_delete = InternalError("unset");
  store_.Delete("doc", 1, [&](Status s) { ok_delete = s; });
  loop_.Run();
  EXPECT_TRUE(ok_delete.ok());
  EXPECT_FALSE(store_.Exists("doc"));
}

// ---- FunctionModel persistence -------------------------------------------------------

TEST(ModelPersistenceTest, StateRoundTripPreservesBehaviour) {
  const workloads::FunctionSpec* spec = workloads::FindFunction("wand_sepia");
  core::ModelConfig config;
  core::ModelRegistry registry(config);
  core::ModelTrainer trainer(&registry, store::StoreProfile::Swift());
  Rng rng(73);
  trainer.Pretrain(*spec, 800, rng);
  core::FunctionModel& original = *registry.Find(spec->name);
  ASSERT_TRUE(original.mature());

  core::FunctionModel clone(spec->name, workloads::FeatureAttributes(*spec), config);
  ASSERT_TRUE(clone.RestoreState(original.SerializeState()).ok());
  EXPECT_TRUE(clone.mature());
  EXPECT_EQ(clone.observations(), original.observations());
  EXPECT_EQ(clone.matured_at(), original.matured_at());
  EXPECT_EQ(clone.training_set_size(), original.training_set_size());

  workloads::MediaGenerator generator(Rng(79));
  for (int i = 0; i < 100; ++i) {
    const auto media = generator.Generate(spec->kind);
    const auto args = workloads::SampleArgs(*spec, rng);
    const auto features = workloads::ExtractFeatures(*spec, media, args);
    ASSERT_EQ(clone.PredictClass(features), original.PredictClass(features));
    ASSERT_EQ(clone.PredictBenefit(features), original.PredictBenefit(features));
  }
}

TEST(ModelPersistenceTest, RestoreRejectsWrongFunction) {
  const workloads::FunctionSpec* sepia = workloads::FindFunction("wand_sepia");
  const workloads::FunctionSpec* blur = workloads::FindFunction("wand_blur");
  core::ModelConfig config;
  core::FunctionModel a(sepia->name, workloads::FeatureAttributes(*sepia), config);
  core::FunctionModel b(blur->name, workloads::FeatureAttributes(*blur), config);
  EXPECT_FALSE(b.RestoreState(a.SerializeState()).ok());
  EXPECT_FALSE(a.RestoreState("garbage").ok());
}

TEST(ModelPersistenceTest, OfcPersistAndReloadAcrossRestart) {
  // Session 1: train models, persist them into the metadata DB.
  faasload::EnvironmentOptions options;
  options.platform.num_workers = 2;
  options.seed = 81;
  faasload::Environment session1(faasload::Mode::kOfc, options);
  faas::MetadataStore db(&session1.loop(), Rng(83));
  const workloads::FunctionSpec* spec = workloads::FindFunction("wand_sepia");
  Rng rng(85);
  session1.ofc()->trainer().Pretrain(*spec, 800, rng);
  ASSERT_TRUE(session1.ofc()->registry().Find(spec->name)->mature());
  Status persisted = InternalError("unset");
  session1.ofc()->PersistModels(&db, [&](Status s) { persisted = s; });
  session1.loop().RunUntil(session1.loop().now() + Seconds(5));
  ASSERT_TRUE(persisted.ok());
  ASSERT_TRUE(db.Exists("model/wand_sepia"));
  const std::string body = db.Stat("model/wand_sepia")->body;

  // Session 2 ("restart"): a fresh OFC loads the document and is immediately
  // mature — no warm-up invocations needed.
  faasload::Environment session2(faasload::Mode::kOfc, options);
  faas::MetadataStore db2(&session2.loop(), Rng(87));
  db2.Seed("model/wand_sepia", body);
  Status loaded = InternalError("unset");
  session2.ofc()->LoadModel(&db2, *spec, [&](Status s) { loaded = s; });
  session2.loop().RunUntil(session2.loop().now() + Seconds(5));
  ASSERT_TRUE(loaded.ok());
  EXPECT_TRUE(session2.ofc()->registry().Find(spec->name)->mature());

  // And its predictor immediately hoards memory.
  workloads::MediaGenerator generator(Rng(89));
  const auto media = generator.Generate(spec->kind);
  const auto args = workloads::SampleArgs(*spec, rng);
  const auto prediction =
      session2.ofc()->predictor().Predict(*spec, media, args, GiB(2));
  EXPECT_TRUE(prediction.from_model);
  EXPECT_LT(prediction.memory, GiB(1));
}

}  // namespace
}  // namespace ofc
