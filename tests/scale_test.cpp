// Scale regression tests: a downscaled (50k-invocation) version of the
// bench/scale_stress harness run as part of the test suite, asserting the
// properties the million-invocation run relies on — exactly-once completion
// accounting, a wall-clock throughput floor, bounded peak memory, and
// byte-identical same-seed metrics output.
//
// Tagged with the `scale` ctest label so the CI fast tier can exclude it;
// the thresholds are deliberately loose (an order of magnitude below typical
// local numbers) so the test gates against pathological regressions, not
// machine noise.
#include <sys/resource.h>

#include <chrono>  // simlint: allow(wall-clock) -- asserts the simulator's real throughput, not simulated time
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/faasload/environment.h"
#include "src/faasload/injector.h"
#include "src/workloads/scale_trace.h"

namespace ofc {
namespace {

constexpr std::uint64_t kTargetInvocations = 50'000;

// Peak resident set size in MiB (ru_maxrss is KiB on Linux).
double PeakRssMb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0.0;
  }
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct ScaleRun {
  std::uint64_t fired = 0;
  std::uint64_t completed = 0;
  std::uint64_t dispatched = 0;
  SimTime final_time = 0;
  double run_wall_s = 0.0;
  std::string metrics_json;
};

// Mirrors bench/scale_stress's full-stack run at 1/20th scale: synthesized
// multi-tenant trace, full OFC stack, counters-only record retention.
ScaleRun RunScaleScenario(std::uint64_t seed) {
  workloads::ScaleTraceOptions trace_options;
  trace_options.seed = seed;
  trace_options.num_tenants = 32;
  trace_options.duration_s = 600.0;
  trace_options.target_invocations = kTargetInvocations;
  const workloads::ScaleTrace trace = workloads::GenerateScaleTrace(trace_options);

  faasload::EnvironmentOptions env_options;
  env_options.seed = seed;
  env_options.platform.num_workers = 8;
  env_options.platform.worker_memory = GiB(32);
  faasload::Environment env(faasload::Mode::kOfc, env_options);
  faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, seed);
  injector.set_max_records_per_tenant(0);
  EXPECT_TRUE(injector.AddScaleTrace(trace).ok());
  injector.PretrainModels(40);

  const auto start = std::chrono::steady_clock::now();  // simlint: allow(wall-clock) -- throughput assertion
  injector.Run(static_cast<SimDuration>(trace_options.duration_s * 1e6));
  const auto elapsed = std::chrono::steady_clock::now() - start;  // simlint: allow(wall-clock) -- throughput assertion
  const double wall = std::chrono::duration<double>(elapsed).count();

  ScaleRun run;
  run.fired = injector.invocations_fired();
  run.completed = injector.invocations_completed();
  run.dispatched = env.loop().total_dispatched();
  run.final_time = env.loop().now();
  run.run_wall_s = wall;
  run.metrics_json = env.metrics().SnapshotJson(env.loop().now());
  return run;
}

TEST(ScaleTest, FiftyThousandInvocationsCompleteExactlyOnceWithinBudgets) {
  const ScaleRun run = RunScaleScenario(/*seed=*/42);

  // Exactly-once: every fired invocation completed, none twice. The generator
  // targets 50k in expectation, so the realized count must land near it.
  EXPECT_EQ(run.fired, run.completed);
  EXPECT_GT(run.fired, kTargetInvocations / 2);
  EXPECT_LT(run.fired, kTargetInvocations * 2);

  // Throughput floor: an order of magnitude below typical local numbers
  // (~300k events/s) so only a pathological hot-path regression trips it.
  ASSERT_GT(run.run_wall_s, 0.0);
  const double events_per_sec = static_cast<double>(run.dispatched) / run.run_wall_s;
  EXPECT_GE(events_per_sec, 30'000.0)
      << "simulator throughput regressed: " << events_per_sec << " events/s over "
      << run.dispatched << " events in " << run.run_wall_s << "s";

  // Memory bound: counters-only retention means the run's footprint must not
  // scale with invocation count. 2 GiB is the same ceiling the perf-smoke
  // floor (bench/scale_floor.json) enforces for the downscaled bench.
  EXPECT_LT(PeakRssMb(), 2048.0);
}

TEST(ScaleTest, SameSeedRunsProduceByteIdenticalMetrics) {
  const ScaleRun first = RunScaleScenario(/*seed=*/7);
  const ScaleRun second = RunScaleScenario(/*seed=*/7);

  EXPECT_EQ(first.fired, second.fired);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.dispatched, second.dispatched);
  EXPECT_EQ(first.final_time, second.final_time);
  ASSERT_EQ(first.metrics_json.size(), second.metrics_json.size());
  EXPECT_TRUE(first.metrics_json == second.metrics_json)
      << "same-seed metrics snapshots diverged";
}

TEST(ScaleTest, DifferentSeedsProduceDifferentSchedules) {
  // Guards against the generator ignoring its seed (which would make the
  // byte-identical assertion above vacuous).
  workloads::ScaleTraceOptions options;
  options.num_tenants = 8;
  options.target_invocations = 1000;
  options.seed = 1;
  const workloads::ScaleTrace a = workloads::GenerateScaleTrace(options);
  options.seed = 2;
  const workloads::ScaleTrace b = workloads::GenerateScaleTrace(options);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  bool any_different = false;
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    if (a.tenants[i].mean_interval_s != b.tenants[i].mean_interval_s) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace ofc
