// Scale regression tests: a downscaled (50k-invocation) version of the
// bench/scale_stress harness run as part of the test suite, asserting the
// properties the million-invocation run relies on — exactly-once completion
// accounting, a wall-clock throughput floor, bounded peak memory, and
// byte-identical same-seed metrics output.
//
// Tagged with the `scale` ctest label so the CI fast tier can exclude it;
// the thresholds are deliberately loose (an order of magnitude below typical
// local numbers) so the test gates against pathological regressions, not
// machine noise.
#include <sys/resource.h>

#include <chrono>  // simlint: allow(wall-clock) -- asserts the simulator's real throughput, not simulated time
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/common/checksum.h"
#include "src/core/scrubber.h"
#include "src/faasload/environment.h"
#include "src/faasload/injector.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/workloads/scale_trace.h"

namespace ofc {
namespace {

constexpr std::uint64_t kTargetInvocations = 50'000;

// Peak resident set size in MiB (ru_maxrss is KiB on Linux).
double PeakRssMb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0.0;
  }
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct ScaleRun {
  std::uint64_t fired = 0;
  std::uint64_t completed = 0;
  std::uint64_t dispatched = 0;
  SimTime final_time = 0;
  double run_wall_s = 0.0;
  std::string metrics_json;
};

// Mirrors bench/scale_stress's full-stack run at 1/20th scale: synthesized
// multi-tenant trace, full OFC stack, counters-only record retention.
ScaleRun RunScaleScenario(std::uint64_t seed) {
  workloads::ScaleTraceOptions trace_options;
  trace_options.seed = seed;
  trace_options.num_tenants = 32;
  trace_options.duration_s = 600.0;
  trace_options.target_invocations = kTargetInvocations;
  const workloads::ScaleTrace trace = workloads::GenerateScaleTrace(trace_options);

  faasload::EnvironmentOptions env_options;
  env_options.seed = seed;
  env_options.platform.num_workers = 8;
  env_options.platform.worker_memory = GiB(32);
  faasload::Environment env(faasload::Mode::kOfc, env_options);
  faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, seed);
  injector.set_max_records_per_tenant(0);
  EXPECT_TRUE(injector.AddScaleTrace(trace).ok());
  injector.PretrainModels(40);

  const auto start = std::chrono::steady_clock::now();  // simlint: allow(wall-clock) -- throughput assertion
  injector.Run(static_cast<SimDuration>(trace_options.duration_s * 1e6));
  const auto elapsed = std::chrono::steady_clock::now() - start;  // simlint: allow(wall-clock) -- throughput assertion
  const double wall = std::chrono::duration<double>(elapsed).count();

  ScaleRun run;
  run.fired = injector.invocations_fired();
  run.completed = injector.invocations_completed();
  run.dispatched = env.loop().total_dispatched();
  run.final_time = env.loop().now();
  run.run_wall_s = wall;
  run.metrics_json = env.metrics().SnapshotJson(env.loop().now());
  return run;
}

TEST(ScaleTest, FiftyThousandInvocationsCompleteExactlyOnceWithinBudgets) {
  const ScaleRun run = RunScaleScenario(/*seed=*/42);

  // Exactly-once: every fired invocation completed, none twice. The generator
  // targets 50k in expectation, so the realized count must land near it.
  EXPECT_EQ(run.fired, run.completed);
  EXPECT_GT(run.fired, kTargetInvocations / 2);
  EXPECT_LT(run.fired, kTargetInvocations * 2);

  // Throughput floor: an order of magnitude below typical local numbers
  // (~300k events/s) so only a pathological hot-path regression trips it.
  ASSERT_GT(run.run_wall_s, 0.0);
  const double events_per_sec = static_cast<double>(run.dispatched) / run.run_wall_s;
  EXPECT_GE(events_per_sec, 30'000.0)
      << "simulator throughput regressed: " << events_per_sec << " events/s over "
      << run.dispatched << " events in " << run.run_wall_s << "s";

  // Memory bound: counters-only retention means the run's footprint must not
  // scale with invocation count. 2 GiB is the same ceiling the perf-smoke
  // floor (bench/scale_floor.json) enforces for the downscaled bench.
  EXPECT_LT(PeakRssMb(), 2048.0);
}

TEST(ScaleTest, SameSeedRunsProduceByteIdenticalMetrics) {
  const ScaleRun first = RunScaleScenario(/*seed=*/7);
  const ScaleRun second = RunScaleScenario(/*seed=*/7);

  EXPECT_EQ(first.fired, second.fired);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.dispatched, second.dispatched);
  EXPECT_EQ(first.final_time, second.final_time);
  ASSERT_EQ(first.metrics_json.size(), second.metrics_json.size());
  EXPECT_TRUE(first.metrics_json == second.metrics_json)
      << "same-seed metrics snapshots diverged";
}

TEST(ScaleTest, IntegrityHoldsThroughBitFlipStormAtScale) {
  // ISSUE 9 acceptance at scale: a rolling bit-flip storm (replica, segment,
  // and store rot every 20 s) rides the 50k-invocation trace with the
  // background scrubber on. I6 must hold — no corrupt payload is ever acked —
  // and after a scrub-long drain every surviving copy verifies.
  workloads::ScaleTraceOptions trace_options;
  trace_options.seed = 97;
  trace_options.num_tenants = 32;
  trace_options.duration_s = 600.0;
  trace_options.target_invocations = kTargetInvocations;
  const workloads::ScaleTrace trace = workloads::GenerateScaleTrace(trace_options);

  faasload::EnvironmentOptions env_options;
  env_options.seed = 97;
  env_options.platform.num_workers = 8;
  env_options.platform.worker_memory = GiB(32);
  faasload::Environment env(faasload::Mode::kOfc, env_options);
  faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, 97);
  injector.set_max_records_per_tenant(0);
  ASSERT_TRUE(injector.AddScaleTrace(trace).ok());
  injector.PretrainModels(40);

  const int num_nodes = env.cluster()->num_nodes();
  fault::FaultPlan plan;
  for (int i = 0; i < 24; ++i) {
    const SimTime at = Seconds(60 + i * 20);
    switch (i % 3) {
      case 0:
        plan.events.push_back(
            fault::FaultEvent{at, fault::FaultKind::kCorruptSegment, i % num_nodes, 0, 4.0});
        break;
      case 1:
        plan.events.push_back(fault::FaultEvent{
            at, fault::FaultKind::kCorruptReplica, (i + 3) % num_nodes, 0, 4.0});
        break;
      default:
        plan.events.push_back(
            fault::FaultEvent{at, fault::FaultKind::kStoreRot, -1, 0, 6.0});
        break;
    }
  }
  plan.Sort();
  fault::FaultInjector fault_injector(
      &env.loop(),
      fault::FaultInjectorTargets{&env.platform(), env.cluster(), &env.rsds(),
                                  &env.ofc()->proxy()},
      fault::FaultInjectorOptions{&env.metrics(), nullptr, nullptr});
  ASSERT_TRUE(fault_injector.Schedule(plan).ok());

  core::ScrubberOptions scrub_options;
  scrub_options.interval = Seconds(5);
  scrub_options.objects_per_cycle = 4096;  // The store accumulates ~50k outputs.
  scrub_options.quarantine_threshold = 0;  // Keep all 8 nodes for the trace.
  scrub_options.metrics = &env.metrics();
  core::Scrubber scrubber(&env.loop(), env.cluster(), &env.rsds(), scrub_options);
  scrubber.Start();

  injector.Run(static_cast<SimDuration>(trace_options.duration_s * 1e6));
  // Post-trace drain: enough full scrub passes to cover every store object
  // even if the last rot landed just before the trace ended.
  env.loop().RunUntil(env.loop().now() + Minutes(5));
  scrubber.Stop();

  EXPECT_EQ(injector.invocations_fired(), injector.invocations_completed());
  EXPECT_GT(injector.invocations_fired(), kTargetInvocations / 2);
  EXPECT_GT(env.metrics().CounterTotal("ofc.fault.objects_corrupted"), 0u);
  // I6 proper: the tripwire never moved.
  EXPECT_EQ(env.metrics().CounterTotal("ofc.integrity.corrupt_acked"), 0u);
  // Detection and repair kept up with the storm.
  EXPECT_GT(env.metrics().CounterTotal("ofc.scrub.corruptions_found") +
                env.metrics().CounterTotal("ofc.integrity.checksum_failures") +
                env.metrics().CounterTotal("ofc.integrity.store_checksum_failures"),
            0u);
  // End-state sweep: every surviving cache copy and store object verifies.
  rc::Cluster* cluster = env.cluster();
  for (int node = 0; node < cluster->num_nodes(); ++node) {
    for (const std::string& key : cluster->KeysOn(node)) {
      const auto obj = cluster->Inspect(key);
      if (!obj.ok()) {
        continue;
      }
      const Checksum expected = ExpectedChecksum(key, obj->size, obj->version);
      EXPECT_EQ(obj->checksum, expected) << "corrupt master copy survived: " << key;
      for (const Checksum backup : obj->backup_checksums) {
        EXPECT_EQ(backup, expected) << "corrupt backup copy survived: " << key;
      }
    }
  }
  int corrupt_store_objects = 0;
  for (const std::string& key : env.rsds().Keys()) {
    const auto meta = env.rsds().Stat(key);
    if (meta.ok() &&
        meta->checksum != ExpectedChecksum(key, meta->size, meta->rsds_version)) {
      ++corrupt_store_objects;
    }
  }
  EXPECT_EQ(corrupt_store_objects, 0);
}

TEST(ScaleTest, DifferentSeedsProduceDifferentSchedules) {
  // Guards against the generator ignoring its seed (which would make the
  // byte-identical assertion above vacuous).
  workloads::ScaleTraceOptions options;
  options.num_tenants = 8;
  options.target_invocations = 1000;
  options.seed = 1;
  const workloads::ScaleTrace a = workloads::GenerateScaleTrace(options);
  options.seed = 2;
  const workloads::ScaleTrace b = workloads::GenerateScaleTrace(options);
  ASSERT_EQ(a.tenants.size(), b.tenants.size());
  bool any_different = false;
  for (std::size_t i = 0; i < a.tenants.size(); ++i) {
    if (a.tenants[i].mean_interval_s != b.tenants[i].mean_interval_s) {
      any_different = true;
    }
  }
  EXPECT_TRUE(any_different);
}

}  // namespace
}  // namespace ofc
