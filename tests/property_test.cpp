// Property-based tests: invariants that must hold across randomized sweeps —
// cluster accounting under arbitrary operation sequences, interval-labeling
// algebra, latency-model monotonicity, ML coverage guarantees per function,
// and event-loop ordering under random schedules.
#include <gtest/gtest.h>

#include <algorithm>
#include <map>

#include "src/core/intervals.h"
#include "src/core/ml_service.h"
#include "src/core/proxy.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/ml/j48.h"
#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"
#include "src/sim/latency.h"
#include "src/store/object_store.h"
#include "src/workloads/functions.h"
#include "src/workloads/media.h"

namespace ofc {
namespace {

// ---- Event loop: ordering holds for any random schedule -------------------------

class EventLoopPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(EventLoopPropertyTest, CallbacksFireInNondecreasingTimeOrder) {
  sim::EventLoop loop;
  Rng rng(GetParam());
  std::vector<SimTime> fired;
  for (int i = 0; i < 200; ++i) {
    loop.ScheduleAfter(rng.UniformInt(0, 10000), [&] { fired.push_back(loop.now()); });
  }
  loop.Run();
  ASSERT_EQ(fired.size(), 200u);
  EXPECT_TRUE(std::is_sorted(fired.begin(), fired.end()));
}

TEST_P(EventLoopPropertyTest, CancelledEventsNeverFire) {
  sim::EventLoop loop;
  Rng rng(GetParam());
  int fired = 0;
  std::vector<sim::EventLoop::EventId> ids;
  for (int i = 0; i < 100; ++i) {
    ids.push_back(loop.ScheduleAfter(rng.UniformInt(0, 1000), [&] { ++fired; }));
  }
  int cancelled = 0;
  for (std::size_t i = 0; i < ids.size(); i += 2) {
    cancelled += loop.Cancel(ids[i]) ? 1 : 0;
  }
  loop.Run();
  EXPECT_EQ(fired + cancelled, 100);
}

INSTANTIATE_TEST_SUITE_P(Seeds, EventLoopPropertyTest, ::testing::Values(1, 7, 42, 1337));

// ---- Latency models: monotone in size, non-negative ------------------------------

class LatencyPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(LatencyPropertyTest, CostIsMonotoneInSize) {
  Rng rng(GetParam());
  for (int trial = 0; trial < 50; ++trial) {
    sim::LatencyModel model{rng.UniformInt(0, Millis(50)),
                            rng.Uniform(1e6, 1e10), 0.0};
    const Bytes a = rng.UniformInt(0, MiB(64));
    const Bytes b = a + rng.UniformInt(0, MiB(64));
    EXPECT_LE(model.Cost(a), model.Cost(b));
    EXPECT_GE(model.Cost(0), 0);
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, LatencyPropertyTest, ::testing::Values(3, 99));

// ---- Memory intervals: labeling algebra -------------------------------------------

class IntervalPropertyTest : public ::testing::TestWithParam<Bytes> {};

TEST_P(IntervalPropertyTest, UpperBoundCoversLabelledMemory) {
  const core::MemoryIntervals intervals(GetParam(), GiB(2));
  Rng rng(5);
  for (int i = 0; i < 2000; ++i) {
    const Bytes memory = rng.UniformInt(0, GiB(2) - 1);
    const int label = intervals.Label(memory);
    ASSERT_GE(label, 0);
    ASSERT_LT(label, intervals.num_classes());
    // The interval's upper bound always covers the memory that produced it.
    EXPECT_GE(intervals.UpperBound(label), memory + 1 - intervals.interval_size());
    EXPECT_GT(intervals.UpperBound(label), memory - intervals.interval_size());
    // The conservative allocation covers it outright (§5.3.1).
    EXPECT_GE(intervals.ConservativeAllocation(label) + intervals.interval_size(),
              memory);
    // Labels are monotone in memory.
    EXPECT_LE(intervals.Label(memory / 2), label);
  }
}

INSTANTIATE_TEST_SUITE_P(IntervalSizes, IntervalPropertyTest,
                         ::testing::Values(MiB(8), MiB(16), MiB(32)));

// ---- RAMCloud cluster: accounting invariants under random op sequences ------------

class ClusterPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ClusterPropertyTest, AccountingStaysConsistent) {
  sim::EventLoop loop;
  rc::ClusterOptions options;
  options.default_capacity = MiB(64);
  options.replication_factor = 2;
  rc::Cluster cluster(&loop, 4, options, Rng(11));
  Rng rng(GetParam());
  std::map<std::string, Bytes> live;

  for (int step = 0; step < 400; ++step) {
    const int op = static_cast<int>(rng.UniformInt(0, 3));
    const std::string key = "k" + std::to_string(rng.UniformInt(0, 30));
    if (op == 0) {
      const Bytes size = rng.UniformInt(KiB(1), MiB(4));
      cluster.Write(static_cast<int>(rng.UniformInt(0, 3)), key, size, 1,
                    rc::ObjectClass::kInput, rng.Bernoulli(0.3), [&, key, size](Status s) {
                      if (s.ok()) {
                        live[key] = size;
                      }
                    });
      loop.Run();
    } else if (op == 1) {
      if (cluster.Remove(key).ok()) {
        live.erase(key);
      }
    } else if (op == 2) {
      (void)cluster.MigrateMaster(key);
    } else {
      cluster.Read(static_cast<int>(rng.UniformInt(0, 3)), key,
                   [](Result<rc::CachedObject>) {});
      loop.Run();
    }

    // Invariant 1: total memory used equals the sum of live object sizes.
    Bytes expected = 0;
    for (const auto& [k, size] : live) {
      expected += size;
    }
    ASSERT_EQ(cluster.TotalUsed(), expected) << "step " << step;
    // Invariant 2: per-node accounting is non-negative and within capacity.
    for (int n = 0; n < 4; ++n) {
      ASSERT_GE(cluster.Used(n), 0);
      ASSERT_LE(cluster.Used(n), cluster.Capacity(n));
      ASSERT_GE(cluster.node_stats(n).disk_used, 0);
    }
    // Invariant 3: every object's master differs from all its backups, and
    // replication is preserved across migrations.
    for (const auto& [k, size] : live) {
      const auto obj = cluster.Inspect(k);
      ASSERT_TRUE(obj.ok());
      for (int b : obj->backups) {
        ASSERT_NE(b, obj->master) << k;
      }
      ASSERT_LE(obj->backups.size(), 2u);
    }
  }
}

TEST_P(ClusterPropertyTest, CrashRecoveryNeverLosesReplicatedObjects) {
  sim::EventLoop loop;
  rc::ClusterOptions options;
  options.default_capacity = MiB(256);
  options.replication_factor = 2;
  rc::Cluster cluster(&loop, 5, options, Rng(13));
  Rng rng(GetParam());
  for (int i = 0; i < 60; ++i) {
    cluster.Write(static_cast<int>(rng.UniformInt(0, 4)), "obj" + std::to_string(i),
                  rng.UniformInt(KiB(4), MiB(2)), 1, rc::ObjectClass::kInput, false,
                  [](Status) {});
  }
  loop.Run();
  const std::size_t before = cluster.NumObjects();
  const int victim = static_cast<int>(rng.UniformInt(0, 4));
  const auto recovery = cluster.CrashNode(victim);
  EXPECT_EQ(recovery.objects_lost, 0u);
  EXPECT_EQ(cluster.NumObjects(), before);
  // All objects remain readable after the crash.
  int readable = 0;
  for (int i = 0; i < 60; ++i) {
    cluster.Read((victim + 1) % 5, "obj" + std::to_string(i),
                 [&](Result<rc::CachedObject> obj) { readable += obj.ok(); });
  }
  loop.Run();
  EXPECT_EQ(readable, 60);
}

INSTANTIATE_TEST_SUITE_P(Seeds, ClusterPropertyTest, ::testing::Values(21, 22, 23));

// ---- Workload demand: positivity and monotonicity across all functions -----------

class DemandPropertyTest : public ::testing::TestWithParam<std::string> {};

TEST_P(DemandPropertyTest, DemandIsPositiveAndMonotoneInContent) {
  const workloads::FunctionSpec* spec = workloads::FindFunction(GetParam());
  ASSERT_NE(spec, nullptr);
  workloads::MediaGenerator generator(Rng(31));
  Rng rng(37);
  for (int i = 0; i < 50; ++i) {
    const auto media = generator.Generate(spec->kind);
    const auto args = workloads::SampleArgs(*spec, rng);
    const auto demand = workloads::ComputeDemand(*spec, media, args, nullptr);
    ASSERT_GT(demand.memory, 0);
    ASSERT_GT(demand.compute, 0);
    ASSERT_GT(demand.output_size, 0);
    // Doubling the content volume cannot reduce any demand (noise-free).
    workloads::MediaDescriptor bigger = media;
    switch (media.kind) {
      case workloads::InputKind::kImage:
        bigger.width *= 2;
        break;
      case workloads::InputKind::kAudio:
      case workloads::InputKind::kVideo:
        bigger.duration_s *= 2;
        break;
      case workloads::InputKind::kText:
        bigger.byte_size *= 2;
        break;
    }
    bigger.byte_size = std::max(bigger.byte_size, media.byte_size);
    const auto bigger_demand = workloads::ComputeDemand(*spec, bigger, args, nullptr);
    EXPECT_GE(bigger_demand.memory, demand.memory) << spec->name;
    EXPECT_GE(bigger_demand.compute, demand.compute) << spec->name;
  }
}

TEST_P(DemandPropertyTest, ConservativePredictionCoversDemand) {
  // End-to-end ML property: after enough training, the §5.3.1 conservative
  // allocation covers the true demand for >= 85 % of fresh inputs.
  const workloads::FunctionSpec* spec = workloads::FindFunction(GetParam());
  core::ModelConfig config;
  core::ModelRegistry registry(config);
  core::ModelTrainer trainer(&registry, store::StoreProfile::Swift());
  core::Predictor predictor(&registry);
  Rng rng(41);
  trainer.Pretrain(*spec, 1200, rng);
  if (!registry.Find(spec->name)->mature()) {
    GTEST_SKIP() << spec->name << " did not mature in 1200 invocations";
  }
  workloads::MediaGenerator generator(Rng(43));
  int covered = 0;
  const int trials = 100;
  for (int i = 0; i < trials; ++i) {
    const auto media = generator.Generate(spec->kind);
    const auto args = workloads::SampleArgs(*spec, rng);
    const auto prediction = predictor.Predict(*spec, media, args, GiB(2));
    const auto demand = workloads::ComputeDemand(*spec, media, args, &rng);
    covered += prediction.memory >= demand.memory;
  }
  EXPECT_GE(covered, 85) << spec->name;
}

INSTANTIATE_TEST_SUITE_P(AllFunctions, DemandPropertyTest,
                         ::testing::Values("wand_blur", "wand_resize", "wand_sepia",
                                           "wand_rotate", "wand_denoise", "wand_edge",
                                           "wand_grayscale", "sharp_resize", "face_blur",
                                           "audio_compress", "speech_to_text",
                                           "video_grayscale", "text_summarize"));

// ---- Shadow objects: persistence requires a completed persistor run ---------------
//
// The §6.2 write-back state machine: a transparent write creates a shadow
// (rsds_version < latest_version) and the object may only become persisted
// (rsds_version == latest_version) through a completed persistor push. Under
// randomly injected persistor failures (dropped dispatch windows), shadows may
// linger arbitrarily long — but they must never resolve without a persistor
// run, versions must never run backwards, and once the drop windows close every
// shadow must converge.
class ShadowPropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(ShadowPropertyTest, ShadowsResolveOnlyThroughPersistorRuns) {
  sim::EventLoop loop;
  store::ObjectStore rsds(&loop, sim::LatencyProfiles::SwiftRequest(), Rng(1), "swift",
                          sim::LatencyProfiles::SwiftControl());
  rc::ClusterOptions cluster_options;
  cluster_options.default_capacity = GiB(1);
  cluster_options.replication_factor = 1;
  rc::Cluster cluster(&loop, 2, cluster_options, Rng(2));
  core::ProxyOptions proxy_options;
  proxy_options.persistor_retry_backoff = Millis(100);
  core::Proxy proxy(&loop, &cluster, &rsds, proxy_options);

  // Persistor faults only: random drop windows over the write burst.
  Rng rng(GetParam());
  fault::ChaosPlanOptions plan_options;
  plan_options.start = 0;
  plan_options.horizon = Seconds(10);
  plan_options.num_events = 4;
  plan_options.min_duration = Millis(500);
  plan_options.max_duration = Seconds(3);
  plan_options.include_worker_crashes = false;
  plan_options.include_node_crashes = false;
  plan_options.include_store_faults = false;
  fault::FaultPlan plan = fault::RandomFaultPlan(plan_options, &rng);
  fault::FaultInjector injector(
      &loop, fault::FaultInjectorTargets{nullptr, nullptr, nullptr, &proxy});
  ASSERT_TRUE(injector.Schedule(plan).ok());

  const int kWrites = 20;
  std::vector<std::string> keys;
  int acked = 0;
  for (int i = 0; i < kWrites; ++i) {
    const std::string key = "o" + std::to_string(i);
    keys.push_back(key);
    const Bytes size = rng.UniformInt(KiB(16), MiB(1));
    loop.ScheduleAt(rng.UniformInt(0, Seconds(10)), [&proxy, &acked, key, size] {
      faas::InvocationContext ctx;
      ctx.worker = 0;
      ctx.function = "f";
      ctx.should_cache = true;
      workloads::MediaDescriptor media;
      media.kind = workloads::InputKind::kImage;
      media.byte_size = size;
      proxy.Write(ctx, key, size, media, [&acked](Status s) { acked += s.ok(); });
    });
  }

  // Drive the whole run step by step, auditing the state machine throughout.
  std::map<std::string, std::uint64_t> finalizes_at_shadow;
  std::map<std::string, std::uint64_t> last_rsds_version;
  int transitions = 0;
  while (loop.Step()) {
    for (const std::string& key : keys) {
      const auto meta = rsds.Stat(key);
      if (!meta.ok()) {
        continue;
      }
      // Versions never run backwards, and the RSDS copy never leads.
      ASSERT_LE(meta->rsds_version, meta->latest_version) << key;
      ASSERT_GE(meta->rsds_version, last_rsds_version[key]) << key;
      last_rsds_version[key] = meta->rsds_version;
      if (meta->IsShadow()) {
        if (!finalizes_at_shadow.contains(key)) {
          finalizes_at_shadow[key] = rsds.stats().payload_finalizes;
        }
      } else if (auto it = finalizes_at_shadow.find(key);
                 it != finalizes_at_shadow.end()) {
        // Shadow -> persisted: only a completed persistor push explains it.
        ASSERT_GT(rsds.stats().payload_finalizes, it->second)
            << key << " resolved without a persistor run";
        finalizes_at_shadow.erase(it);
        ++transitions;
      }
    }
  }

  // Every write was acknowledged, went through the shadow state, and converged
  // once the fault windows closed — nothing abandoned, nothing left dirty.
  EXPECT_EQ(acked, kWrites);
  EXPECT_EQ(transitions, kWrites);
  EXPECT_EQ(proxy.stats().persistor_abandons, 0u);
  for (const std::string& key : keys) {
    const auto meta = rsds.Stat(key);
    ASSERT_TRUE(meta.ok()) << key;
    EXPECT_FALSE(meta->IsShadow()) << key;
  }
  for (int node = 0; node < cluster.num_nodes(); ++node) {
    for (const std::string& key : cluster.KeysOn(node)) {
      const auto obj = cluster.Inspect(key);
      ASSERT_TRUE(obj.ok());
      EXPECT_FALSE(obj->dirty) << key;
    }
  }
  // The schedule actually exercised the fault path in at least one seed; keep
  // the assertion per-seed weak (a window may land before any dispatch) but
  // require the injector to have fired the whole plan.
  EXPECT_EQ(injector.stats().injected, plan.size());
}

INSTANTIATE_TEST_SUITE_P(Seeds, ShadowPropertyTest, ::testing::Values(61, 62, 63, 64));

// ---- J48 determinism: same data -> same tree ---------------------------------------

class J48PropertyTest : public ::testing::TestWithParam<std::uint64_t> {};

TEST_P(J48PropertyTest, TrainingIsDeterministic) {
  const workloads::FunctionSpec* spec = workloads::FindFunction("wand_sepia");
  const core::MemoryIntervals intervals;
  ml::Dataset data(
      ml::Schema(workloads::FeatureAttributes(*spec), intervals.ClassAttribute()));
  workloads::MediaGenerator generator{Rng(GetParam())};  // Braces: vexing parse.
  Rng rng(GetParam() + 1);
  for (int i = 0; i < 250; ++i) {
    const auto media = generator.Generate(spec->kind);
    const auto args = workloads::SampleArgs(*spec, rng);
    const auto demand = workloads::ComputeDemand(*spec, media, args, &rng);
    ASSERT_TRUE(data.Add({workloads::ExtractFeatures(*spec, media, args),
                          intervals.Label(demand.memory), 1.0})
                    .ok());
  }
  ml::J48 a;
  ml::J48 b;
  ASSERT_TRUE(a.Train(data).ok());
  ASSERT_TRUE(b.Train(data).ok());
  EXPECT_EQ(a.NumNodes(), b.NumNodes());
  for (const ml::Instance& inst : data.instances()) {
    ASSERT_EQ(a.Predict(inst.features), b.Predict(inst.features));
  }
}

INSTANTIATE_TEST_SUITE_P(Seeds, J48PropertyTest, ::testing::Values(51, 52));

}  // namespace
}  // namespace ofc
