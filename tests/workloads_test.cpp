// Unit tests for the workload models: media generation, demand models, feature
// extraction, registries, pipelines — including the Figure 2 property that
// byte size alone does not determine memory.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/workloads/functions.h"
#include "src/workloads/media.h"
#include "src/workloads/pipelines.h"

namespace ofc::workloads {
namespace {

TEST(MediaTest, ImageDescriptorsAreConsistent) {
  MediaGenerator gen(Rng(3));
  for (int i = 0; i < 200; ++i) {
    const MediaDescriptor d = gen.Generate(InputKind::kImage);
    EXPECT_GT(d.width, 0);
    EXPECT_GT(d.height, 0);
    EXPECT_GT(d.byte_size, 0);
    EXPECT_EQ(d.DecodedBytes(), static_cast<Bytes>(d.width) * d.height * 3);
    EXPECT_GE(d.format, 0);
    EXPECT_LT(d.format, static_cast<int>(ImageFormats().size()));
  }
}

TEST(MediaTest, AudioAndVideoDurationsPositive) {
  MediaGenerator gen(Rng(5));
  for (int i = 0; i < 100; ++i) {
    const MediaDescriptor audio = gen.Generate(InputKind::kAudio);
    EXPECT_GT(audio.duration_s, 0);
    EXPECT_GT(audio.channels, 0);
    const MediaDescriptor video = gen.Generate(InputKind::kVideo);
    EXPECT_GT(video.duration_s, 0);
    EXPECT_GT(video.fps, 0);
    EXPECT_GT(video.DecodedBytes(), video.byte_size);  // Video compresses well.
  }
}

TEST(MediaTest, TargetByteSizeIsApproximatelyHit) {
  MediaGenerator gen(Rng(7));
  for (Bytes target : {KiB(16), KiB(128), MiB(1), MiB(3)}) {
    const MediaDescriptor d = gen.GenerateWithByteSize(InputKind::kImage, target);
    EXPECT_GT(d.byte_size, target / 2);
    EXPECT_LT(d.byte_size, target * 2);
  }
}

TEST(MediaTest, CompressionRatiosDistinguishFormats) {
  // Same pixel content, different formats -> different byte sizes (this is the
  // hidden-variable structure behind Figure 2).
  EXPECT_LT(CompressionRatio(InputKind::kImage, 0),   // jpeg
            CompressionRatio(InputKind::kImage, 3));  // bmp
  EXPECT_LT(CompressionRatio(InputKind::kVideo, 1),   // vp9
            CompressionRatio(InputKind::kVideo, 2));  // mpeg2
}

TEST(FunctionsTest, RegistryHas19Functions) {
  EXPECT_EQ(AllFunctions().size(), 19u);
  std::set<std::string> names;
  for (const FunctionSpec& spec : AllFunctions()) {
    names.insert(spec.name);
  }
  EXPECT_EQ(names.size(), 19u);  // Unique names.
  // The six Figure 7 functions plus Figure 3's sharp_resize must exist.
  for (const char* name : {"wand_blur", "wand_resize", "wand_sepia", "wand_rotate",
                           "wand_denoise", "wand_edge", "sharp_resize"}) {
    EXPECT_TRUE(names.contains(name)) << name;
  }
}

TEST(FunctionsTest, FindFunctionCoversBothRegistries) {
  EXPECT_NE(FindFunction("wand_blur"), nullptr);
  EXPECT_NE(FindFunction("mr_map"), nullptr);
  EXPECT_EQ(FindFunction("not_a_function"), nullptr);
}

TEST(FunctionsTest, DemandScalesWithContent) {
  const FunctionSpec* blur = FindFunction("wand_blur");
  ASSERT_NE(blur, nullptr);
  MediaDescriptor small;
  small.kind = InputKind::kImage;
  small.width = 640;
  small.height = 480;
  small.byte_size = KiB(80);
  MediaDescriptor large = small;
  large.width = 4000;
  large.height = 3000;
  large.byte_size = MiB(3);
  const auto d_small = ComputeDemand(*blur, small, {3.0}, nullptr);
  const auto d_large = ComputeDemand(*blur, large, {3.0}, nullptr);
  EXPECT_GT(d_large.memory, d_small.memory);
  EXPECT_GT(d_large.compute, d_small.compute);
  EXPECT_GT(d_large.output_size, d_small.output_size);
}

TEST(FunctionsTest, DemandScalesWithArgument) {
  const FunctionSpec* blur = FindFunction("wand_blur");
  MediaDescriptor media;
  media.kind = InputKind::kImage;
  media.width = 2000;
  media.height = 1500;
  media.byte_size = MiB(1);
  const auto lo = ComputeDemand(*blur, media, {0.5}, nullptr);
  const auto hi = ComputeDemand(*blur, media, {5.5}, nullptr);
  EXPECT_GT(hi.memory, lo.memory);
  EXPECT_GT(hi.compute, lo.compute);
}

TEST(FunctionsTest, NoiseFreeDemandIsDeterministic) {
  const FunctionSpec* spec = FindFunction("wand_sepia");
  MediaDescriptor media;
  media.kind = InputKind::kImage;
  media.width = 1000;
  media.height = 1000;
  media.byte_size = KiB(300);
  const auto a = ComputeDemand(*spec, media, {0.5}, nullptr);
  const auto b = ComputeDemand(*spec, media, {0.5}, nullptr);
  EXPECT_EQ(a.memory, b.memory);
  EXPECT_EQ(a.compute, b.compute);
  EXPECT_EQ(a.output_size, b.output_size);
}

TEST(FunctionsTest, ByteSizeAloneDoesNotDetermineMemory) {
  // Figure 2's premise: two inputs with (nearly) identical byte sizes can need
  // very different memory because format/entropy hide the decoded footprint.
  const FunctionSpec* blur = FindFunction("wand_blur");
  MediaDescriptor jpeg;  // Heavily compressed: small file, big raster.
  jpeg.kind = InputKind::kImage;
  jpeg.width = 4000;
  jpeg.height = 3000;
  jpeg.format = 0;  // jpeg
  jpeg.entropy = 1.0;
  jpeg.byte_size = static_cast<Bytes>(
      static_cast<double>(jpeg.DecodedBytes()) * CompressionRatio(jpeg.kind, 0));
  MediaDescriptor bmp;  // Uncompressed: same file size, tiny raster.
  bmp.kind = InputKind::kImage;
  bmp.width = 1095;
  bmp.height = 1095;
  bmp.format = 3;  // bmp
  bmp.entropy = 1.0;
  bmp.byte_size = static_cast<Bytes>(
      static_cast<double>(bmp.DecodedBytes()) * CompressionRatio(bmp.kind, 3));
  // Byte sizes within 15% of each other...
  const double ratio = static_cast<double>(jpeg.byte_size) / static_cast<double>(bmp.byte_size);
  EXPECT_GT(ratio, 0.85);
  EXPECT_LT(ratio, 1.15);
  // ...but memory differs by many x.
  const auto mem_jpeg = ComputeDemand(*blur, jpeg, {3.0}, nullptr).memory;
  const auto mem_bmp = ComputeDemand(*blur, bmp, {3.0}, nullptr).memory;
  EXPECT_GT(static_cast<double>(mem_jpeg) / static_cast<double>(mem_bmp), 3.0);
}

TEST(FunctionsTest, FeatureSchemaMatchesExtraction) {
  for (const FunctionSpec& spec : AllFunctions()) {
    const auto attrs = FeatureAttributes(spec);
    MediaGenerator gen(Rng(11));
    Rng rng(13);
    const MediaDescriptor media = gen.Generate(spec.kind);
    const auto args = SampleArgs(spec, rng);
    const auto features = ExtractFeatures(spec, media, args);
    ASSERT_EQ(features.size(), attrs.size()) << spec.name;
    // Nominal features must be valid indexes.
    for (std::size_t i = 0; i < attrs.size(); ++i) {
      if (attrs[i].kind == ml::AttributeKind::kNominal) {
        EXPECT_GE(features[i], 0.0);
        EXPECT_LT(features[i], static_cast<double>(attrs[i].num_values()));
        EXPECT_EQ(features[i], std::floor(features[i]));
      }
    }
  }
}

TEST(FunctionsTest, SampleArgsRespectsRanges) {
  Rng rng(17);
  for (const FunctionSpec& spec : AllFunctions()) {
    for (int i = 0; i < 50; ++i) {
      const auto args = SampleArgs(spec, rng);
      ASSERT_EQ(args.size(), spec.args.size());
      for (std::size_t a = 0; a < args.size(); ++a) {
        EXPECT_GE(args[a], spec.args[a].lo);
        EXPECT_LE(args[a], spec.args[a].hi);
        if (spec.args[a].integer) {
          EXPECT_EQ(args[a], std::floor(args[a]));
        }
      }
    }
  }
}

TEST(FunctionsTest, MemoryDemandsWithinOwkRange) {
  // Everything must fit in OWK's [0, 2 GB] classification range.
  Rng rng(19);
  MediaGenerator gen(Rng(23));
  for (const FunctionSpec& spec : AllFunctions()) {
    for (int i = 0; i < 100; ++i) {
      const MediaDescriptor media = gen.Generate(spec.kind);
      const auto args = SampleArgs(spec, rng);
      const auto demand = ComputeDemand(spec, media, args, &rng);
      EXPECT_GT(demand.memory, 0) << spec.name;
      EXPECT_LT(demand.memory, GiB(2)) << spec.name;
    }
  }
}

TEST(PipelinesTest, RegistryHasFourPipelines) {
  EXPECT_EQ(AllPipelines().size(), 4u);
  for (const char* name : {"map_reduce", "THIS", "IMAD", "image_processing"}) {
    EXPECT_NE(FindPipeline(name), nullptr) << name;
  }
  EXPECT_EQ(FindPipeline("nope"), nullptr);
}

TEST(PipelinesTest, StageFunctionsResolve) {
  for (const PipelineSpec& pipeline : AllPipelines()) {
    for (const PipelineStage& stage : pipeline.stages) {
      EXPECT_NE(FindFunction(stage.function), nullptr)
          << pipeline.name << "/" << stage.function;
    }
  }
}

TEST(PipelinesTest, ChunkingCoversInput) {
  const PipelineSpec* mr = FindPipeline("map_reduce");
  EXPECT_EQ(mr->NumChunks(MiB(30)), 60);
  EXPECT_EQ(mr->NumChunks(KiB(100)), 1);
  EXPECT_EQ(mr->NumChunks(0), 1);
  EXPECT_EQ(mr->NumChunks(KiB(513)), 2);
}

TEST(PipelinesTest, LastStageIsFanIn) {
  for (const PipelineSpec& pipeline : AllPipelines()) {
    EXPECT_EQ(pipeline.stages.back().fixed_tasks, 1) << pipeline.name;
  }
}

}  // namespace
}  // namespace ofc::workloads
