// Unit tests for the RAMCloud-style cache cluster: placement, replication,
// access stats, vertical scaling, optimized migration, crash recovery.
#include <gtest/gtest.h>

#include "src/common/checksum.h"
#include "src/ramcloud/cluster.h"

namespace ofc::rc {
namespace {

ClusterOptions TestOptions() {
  ClusterOptions options;
  options.replication_factor = 2;
  options.default_capacity = MiB(256);
  return options;
}

class ClusterTest : public ::testing::Test {
 protected:
  ClusterTest() : cluster_(&loop_, 4, TestOptions(), Rng(7)) {}

  Status WriteSync(int client, const std::string& key, Bytes size,
                   ObjectClass cls = ObjectClass::kInput, bool dirty = false) {
    Status out = InternalError("unset");
    cluster_.Write(client, key, size, 1, cls, dirty, [&](Status s) { out = s; });
    loop_.Run();
    return out;
  }

  Result<CachedObject> ReadSync(int client, const std::string& key) {
    Result<CachedObject> out = InternalError("unset");
    cluster_.Read(client, key, [&](Result<CachedObject> r) { out = std::move(r); });
    loop_.Run();
    return out;
  }

  sim::EventLoop loop_;
  Cluster cluster_;
};

TEST_F(ClusterTest, WritePlacesMasterOnClientNode) {
  ASSERT_TRUE(WriteSync(2, "a", MiB(1)).ok());
  const auto master = cluster_.MasterOf("a");
  ASSERT_TRUE(master.ok());
  EXPECT_EQ(*master, 2);
  EXPECT_EQ(cluster_.Used(2), MiB(1));
}

TEST_F(ClusterTest, WriteReplicatesToBackups) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(2)).ok());
  const auto obj = cluster_.Inspect("a");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->backups.size(), 2u);
  for (int b : obj->backups) {
    EXPECT_NE(b, obj->master);
    EXPECT_EQ(cluster_.node_stats(b).disk_used, MiB(2));
  }
}

TEST_F(ClusterTest, RejectsOversizedObjects) {
  const Status status = WriteSync(0, "big", MiB(11));
  EXPECT_EQ(status.code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(cluster_.stats().write_rejects, 1u);
}

TEST_F(ClusterTest, SpillsToOtherNodeWhenClientFull) {
  SimDuration d = 0;
  ASSERT_TRUE(cluster_.SetCapacity(1, MiB(1), &d).ok());
  ASSERT_TRUE(WriteSync(1, "a", MiB(5)).ok());
  const auto master = cluster_.MasterOf("a");
  ASSERT_TRUE(master.ok());
  EXPECT_NE(*master, 1);
}

TEST_F(ClusterTest, RejectsWhenClusterFull) {
  for (int n = 0; n < 4; ++n) {
    ASSERT_TRUE(cluster_.SetCapacity(n, KiB(1)).ok());
  }
  const Status status = WriteSync(0, "a", MiB(1));
  EXPECT_EQ(status.code(), StatusCode::kResourceExhausted);
}

TEST_F(ClusterTest, ReadTracksAccessStats) {
  ASSERT_TRUE(WriteSync(0, "a", KiB(64)).ok());
  loop_.RunUntil(loop_.now() + Seconds(5));
  ASSERT_TRUE(ReadSync(0, "a").ok());
  ASSERT_TRUE(ReadSync(3, "a").ok());
  const auto obj = cluster_.Inspect("a");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->access_count, 2u);
  EXPECT_GE(obj->last_access, Seconds(5));  // Stamped when the read started.
  EXPECT_EQ(cluster_.stats().read_hits_local, 1u);
  EXPECT_EQ(cluster_.stats().read_hits_remote, 1u);
}

TEST_F(ClusterTest, LocalReadFasterThanRemote) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(4)).ok());
  const SimTime t0 = loop_.now();
  ASSERT_TRUE(ReadSync(0, "a").ok());
  const SimDuration local = loop_.now() - t0;
  const SimTime t1 = loop_.now();
  ASSERT_TRUE(ReadSync(1, "a").ok());
  const SimDuration remote = loop_.now() - t1;
  EXPECT_LT(local, remote);
}

TEST_F(ClusterTest, MissReturnsNotFound) {
  const auto result = ReadSync(0, "nothing");
  EXPECT_EQ(result.status().code(), StatusCode::kNotFound);
  EXPECT_EQ(cluster_.stats().read_misses, 1u);
}

TEST_F(ClusterTest, UpdateReusesPlacement) {
  ASSERT_TRUE(WriteSync(2, "a", MiB(1)).ok());
  ASSERT_TRUE(WriteSync(0, "a", MiB(2)).ok());  // Update from another client.
  const auto obj = cluster_.Inspect("a");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->master, 2);  // Master unchanged.
  EXPECT_EQ(obj->size, MiB(2));
  EXPECT_EQ(cluster_.Used(2), MiB(2));
  EXPECT_EQ(cluster_.NumObjects(), 1u);
}

TEST_F(ClusterTest, RemoveReleasesMemoryAndDisk) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(2)).ok());
  const auto obj = cluster_.Inspect("a");
  ASSERT_TRUE(cluster_.Remove("a").ok());
  EXPECT_EQ(cluster_.Used(0), 0);
  for (int b : obj->backups) {
    EXPECT_EQ(cluster_.node_stats(b).disk_used, 0);
  }
  EXPECT_FALSE(cluster_.Contains("a"));
  EXPECT_FALSE(cluster_.Remove("a").ok());
}

TEST_F(ClusterTest, SetCapacityBelowUsageFails) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(5)).ok());
  const Status status = cluster_.SetCapacity(0, MiB(2));
  EXPECT_EQ(status.code(), StatusCode::kFailedPrecondition);
}

TEST_F(ClusterTest, MigrationPromotesBackupWithoutTransfer) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(4)).ok());
  const auto before = cluster_.Inspect("a");
  ASSERT_TRUE(before.ok());
  const auto result = cluster_.MigrateMaster("a");
  ASSERT_TRUE(result.ok());
  EXPECT_EQ(result->old_master, 0);
  // The new master must be one of the previous backups.
  EXPECT_TRUE(std::find(before->backups.begin(), before->backups.end(),
                        result->new_master) != before->backups.end());
  const auto after = cluster_.Inspect("a");
  ASSERT_TRUE(after.ok());
  EXPECT_EQ(after->master, result->new_master);
  // The old master keeps an on-disk copy: replication factor preserved.
  EXPECT_EQ(after->backups.size(), before->backups.size());
  EXPECT_TRUE(std::find(after->backups.begin(), after->backups.end(), 0) !=
              after->backups.end());
  EXPECT_EQ(cluster_.Used(0), 0);
  EXPECT_EQ(cluster_.Used(result->new_master), MiB(4));
  EXPECT_GT(result->duration, 0);
}

TEST_F(ClusterTest, MigrationDurationScalesWithSize) {
  ASSERT_TRUE(WriteSync(0, "small", MiB(1)).ok());
  ASSERT_TRUE(WriteSync(0, "large", MiB(8)).ok());
  const auto small = cluster_.MigrateMaster("small");
  const auto large = cluster_.MigrateMaster("large");
  ASSERT_TRUE(small.ok());
  ASSERT_TRUE(large.ok());
  EXPECT_LT(small->duration, large->duration);
  // §7.2.1 calibration: 8 MB migrates in roughly 0.18 ms.
  EXPECT_NEAR(static_cast<double>(large->duration), 180.0, 120.0);
}

TEST_F(ClusterTest, CrashRecoveryPromotesBackups) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(2)).ok());
  ASSERT_TRUE(WriteSync(0, "b", MiB(3)).ok());
  const auto result = cluster_.CrashNode(0);
  EXPECT_EQ(result.objects_recovered, 2u);
  EXPECT_EQ(result.objects_lost, 0u);
  EXPECT_GT(result.duration, 0);
  for (const char* key : {"a", "b"}) {
    const auto obj = cluster_.Inspect(key);
    ASSERT_TRUE(obj.ok());
    EXPECT_NE(obj->master, 0);
    EXPECT_TRUE(cluster_.node_stats(obj->master).alive);
    // The promotion consumed one on-disk copy; the coordinator re-replicated
    // to restore the factor, on alive nodes distinct from the master.
    EXPECT_EQ(obj->backups.size(), 2u);
    for (int b : obj->backups) {
      EXPECT_NE(b, obj->master);
      EXPECT_NE(b, 0);
      EXPECT_TRUE(cluster_.node_stats(b).alive);
    }
  }
}

TEST_F(ClusterTest, CrashedBackupsAreReplaced) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(2)).ok());
  const auto before = cluster_.Inspect("a");
  const int backup = before->backups.front();
  (void)cluster_.CrashNode(backup);
  const auto after = cluster_.Inspect("a");
  ASSERT_TRUE(after.ok());
  for (int b : after->backups) {
    EXPECT_NE(b, backup);
  }
  EXPECT_EQ(after->backups.size(), 2u);
}

TEST_F(ClusterTest, TotalUsedAndCapacityAggregate) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(1)).ok());
  ASSERT_TRUE(WriteSync(1, "b", MiB(2)).ok());
  EXPECT_EQ(cluster_.TotalUsed(), MiB(3));
  EXPECT_EQ(cluster_.TotalCapacity(), 4 * MiB(256));
}

TEST_F(ClusterTest, KeysOnFiltersbyMaster) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(1)).ok());
  ASSERT_TRUE(WriteSync(1, "b", MiB(1)).ok());
  ASSERT_TRUE(WriteSync(0, "c", MiB(1)).ok());
  EXPECT_EQ(cluster_.KeysOn(0).size(), 2u);
  EXPECT_EQ(cluster_.KeysOn(1).size(), 1u);
  EXPECT_EQ(cluster_.KeysOn(3).size(), 0u);
}

TEST_F(ClusterTest, ConditionalWriteEnforcesVersions) {
  // Create (expected 0), then CAS-update, then reject a stale CAS.
  Status create = InternalError("unset");
  cluster_.ConditionalWrite(0, "a", MiB(1), 0, 5, ObjectClass::kInput, false,
                            [&](Status s) { create = s; });
  loop_.Run();
  ASSERT_TRUE(create.ok());
  EXPECT_EQ(cluster_.Inspect("a")->version, 5u);

  Status update = InternalError("unset");
  cluster_.ConditionalWrite(0, "a", MiB(2), 5, 6, ObjectClass::kInput, false,
                            [&](Status s) { update = s; });
  loop_.Run();
  ASSERT_TRUE(update.ok());
  EXPECT_EQ(cluster_.Inspect("a")->version, 6u);
  EXPECT_EQ(cluster_.Inspect("a")->size, MiB(2));

  Status stale = OkStatus();
  cluster_.ConditionalWrite(0, "a", MiB(3), 5, 7, ObjectClass::kInput, false,
                            [&](Status s) { stale = s; });
  loop_.Run();
  EXPECT_EQ(stale.code(), StatusCode::kAborted);
  EXPECT_EQ(cluster_.Inspect("a")->size, MiB(2));  // Unchanged.
  EXPECT_EQ(cluster_.stats().version_conflicts, 1u);
}

TEST_F(ClusterTest, CommitAppliesAllOrNothing) {
  ASSERT_TRUE(WriteSync(0, "x", MiB(1)).ok());  // version 1.
  // A transaction touching an existing object and creating a new one.
  Status committed = InternalError("unset");
  cluster_.Commit(0,
                  {{"x", MiB(2), 1, 2, ObjectClass::kInput, false},
                   {"y", MiB(1), 0, 1, ObjectClass::kFinalOutput, true}},
                  [&](Status s) { committed = s; });
  loop_.Run();
  ASSERT_TRUE(committed.ok());
  EXPECT_EQ(cluster_.Inspect("x")->version, 2u);
  EXPECT_TRUE(cluster_.Contains("y"));
  EXPECT_EQ(cluster_.stats().transactions_committed, 1u);

  // A conflicting transaction aborts without any side effects.
  Status aborted = OkStatus();
  cluster_.Commit(0,
                  {{"x", MiB(3), 1 /*stale*/, 3, ObjectClass::kInput, false},
                   {"z", MiB(1), 0, 1, ObjectClass::kInput, false}},
                  [&](Status s) { aborted = s; });
  loop_.Run();
  EXPECT_EQ(aborted.code(), StatusCode::kAborted);
  EXPECT_EQ(cluster_.Inspect("x")->size, MiB(2));
  EXPECT_FALSE(cluster_.Contains("z"));
}

TEST_F(ClusterTest, LogFootprintTracksFragmentation) {
  // Live bytes and physical footprint diverge under churn; the cleaner inside
  // SetCapacity reconciles them.
  for (int i = 0; i < 8; ++i) {
    ASSERT_TRUE(WriteSync(0, "k" + std::to_string(i), MiB(3)).ok());
  }
  for (int i = 0; i < 8; i += 2) {
    ASSERT_TRUE(cluster_.Remove("k" + std::to_string(i)).ok());
  }
  EXPECT_EQ(cluster_.Used(0), MiB(12));  // 4 live objects.
  EXPECT_GT(cluster_.node_log(0).footprint(), cluster_.Used(0));
  // Shrinking to just above live size forces a cleaning pass.
  SimDuration duration = 0;
  ASSERT_TRUE(cluster_.SetCapacity(0, MiB(16), &duration).ok());
  EXPECT_LE(cluster_.node_log(0).footprint(), MiB(16));
  EXPECT_EQ(cluster_.Used(0), MiB(12));  // Live data intact.
  for (int i = 1; i < 8; i += 2) {
    EXPECT_TRUE(cluster_.Contains("k" + std::to_string(i)));
  }
}

TEST_F(ClusterTest, DirtyFlagAndMarkPersisted) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(1), ObjectClass::kFinalOutput, /*dirty=*/true).ok());
  auto obj = cluster_.Inspect("a");
  ASSERT_TRUE(obj.ok());
  EXPECT_TRUE(obj->dirty);
  EXPECT_FALSE(obj->persisted);
  ASSERT_TRUE(cluster_.MarkPersisted("a").ok());
  obj = cluster_.Inspect("a");
  EXPECT_FALSE(obj->dirty);
  EXPECT_TRUE(obj->persisted);
}

// ---- Data integrity --------------------------------------------------------

TEST_F(ClusterTest, WriteStampsVerifiableChecksumOnEveryCopy) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(2)).ok());
  const auto obj = cluster_.Inspect("a");
  ASSERT_TRUE(obj.ok());
  const Checksum expected = ExpectedChecksum("a", obj->size, obj->version);
  EXPECT_EQ(obj->checksum, expected);
  ASSERT_EQ(obj->backup_checksums.size(), obj->backups.size());
  for (const Checksum backup : obj->backup_checksums) {
    EXPECT_EQ(backup, expected);
  }
}

TEST_F(ClusterTest, CorruptSegmentFlipsOnlyHealthyMasterCopies) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(1)).ok());
  ASSERT_TRUE(WriteSync(0, "b", MiB(1)).ok());
  ASSERT_TRUE(WriteSync(1, "c", MiB(1)).ok());
  // Only the two objects mastered on node 0 are eligible, however many flips
  // were requested; a second storm finds nothing healthy left to damage.
  EXPECT_EQ(cluster_.CorruptSegment(0, 10), 2);
  EXPECT_EQ(cluster_.CorruptSegment(0, 10), 0);
  const auto obj = cluster_.Inspect("a");
  ASSERT_TRUE(obj.ok());
  EXPECT_NE(obj->checksum, ExpectedChecksum("a", obj->size, obj->version));
}

TEST_F(ClusterTest, SelfHealingReadRepairsCorruptMaster) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(2)).ok());
  ASSERT_EQ(cluster_.CorruptSegment(0, 1), 1);
  const auto read = ReadSync(0, "a");
  ASSERT_TRUE(read.ok());
  EXPECT_EQ(read->size, MiB(2));
  // The served copy and the in-place repair both verify.
  const auto obj = cluster_.Inspect("a");
  ASSERT_TRUE(obj.ok());
  EXPECT_EQ(obj->checksum, ExpectedChecksum("a", obj->size, obj->version));
  EXPECT_EQ(cluster_.stats().checksum_failures, 1u);
  EXPECT_EQ(cluster_.stats().integrity_repairs, 1u);
  EXPECT_EQ(cluster_.stats().read_data_loss, 0u);
}

TEST_F(ClusterTest, ReadWithEveryCopyCorruptReportsDataLoss) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(2)).ok());
  const auto before = cluster_.Inspect("a");
  ASSERT_TRUE(before.ok());
  ASSERT_EQ(cluster_.CorruptSegment(before->master, 1), 1);
  for (int backup : before->backups) {
    ASSERT_EQ(cluster_.CorruptReplica(backup, 1), 1);
  }
  const auto read = ReadSync(1, "a");
  ASSERT_FALSE(read.ok());
  EXPECT_EQ(read.status().code(), StatusCode::kDataLoss);
  // The unrecoverable entry is dropped so the next read misses to the RSDS.
  EXPECT_FALSE(cluster_.Contains("a"));
  EXPECT_EQ(cluster_.stats().read_data_loss, 1u);
}

TEST_F(ClusterTest, ScrubObjectRepairsDivergentBackup) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(2)).ok());
  const auto before = cluster_.Inspect("a");
  ASSERT_TRUE(before.ok());
  const int sick = before->backups.front();
  ASSERT_EQ(cluster_.CorruptReplica(sick, 1), 1);

  const auto result = cluster_.ScrubObject("a");
  EXPECT_EQ(result.corrupt_copies, 1);
  ASSERT_EQ(result.corrupt_nodes.size(), 1u);
  EXPECT_EQ(result.corrupt_nodes.front(), sick);

  // Second pass is clean, and unknown keys are an empty no-op.
  EXPECT_EQ(cluster_.ScrubObject("a").corrupt_copies, 0);
  EXPECT_EQ(cluster_.ScrubObject("missing").corrupt_copies, 0);
  EXPECT_EQ(cluster_.stats().integrity_repairs, 1u);
}

TEST_F(ClusterTest, KeysAfterWalksCursorInKeyOrder) {
  for (const char* key : {"b", "d", "a", "c"}) {
    ASSERT_TRUE(WriteSync(0, key, MiB(1)).ok());
  }
  const auto first = cluster_.KeysAfter("", 2);
  ASSERT_EQ(first.size(), 2u);
  EXPECT_EQ(first[0], "a");
  EXPECT_EQ(first[1], "b");
  const auto rest = cluster_.KeysAfter(first.back(), 10);
  ASSERT_EQ(rest.size(), 2u);
  EXPECT_EQ(rest[0], "c");
  EXPECT_EQ(rest[1], "d");
  EXPECT_TRUE(cluster_.KeysAfter("d", 10).empty());
}

TEST_F(ClusterTest, QuarantineNodeDrainsWithoutDataLoss) {
  ASSERT_TRUE(WriteSync(1, "a", MiB(2)).ok());
  ASSERT_TRUE(WriteSync(1, "b", MiB(2)).ok());
  ASSERT_TRUE(WriteSync(0, "c", MiB(2)).ok());
  // Even with every master copy on the sick node corrupt, the drain restores
  // verified copies elsewhere — quarantine never loses data by itself.
  ASSERT_EQ(cluster_.CorruptSegment(1, 10), 2);

  const auto result = cluster_.QuarantineNode(1);
  EXPECT_EQ(result.objects_lost, 0u);
  EXPECT_FALSE(cluster_.Alive(1));
  EXPECT_EQ(cluster_.stats().nodes_quarantined, 1u);
  for (const char* key : {"a", "b", "c"}) {
    const auto obj = cluster_.Inspect(key);
    ASSERT_TRUE(obj.ok()) << key;
    EXPECT_NE(obj->master, 1);
    const Checksum expected = ExpectedChecksum(key, obj->size, obj->version);
    EXPECT_EQ(obj->checksum, expected) << key;
    for (std::size_t i = 0; i < obj->backups.size(); ++i) {
      EXPECT_NE(obj->backups[i], 1) << key;
      EXPECT_EQ(obj->backup_checksums[i], expected) << key;
    }
  }
  // The drained node rejoins empty, like a restarted one.
  cluster_.RestartNode(1);
  EXPECT_TRUE(cluster_.Alive(1));
}

TEST_F(ClusterTest, QuarantineRefusesDeadAndLastAliveNodes) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(1)).ok());
  (void)cluster_.CrashNode(3);
  EXPECT_EQ(cluster_.QuarantineNode(3).objects_recovered, 0u);  // Already down.
  (void)cluster_.CrashNode(2);
  (void)cluster_.CrashNode(1);
  ASSERT_EQ(cluster_.AliveNodes(), 1);
  const auto last = cluster_.QuarantineNode(0);
  EXPECT_EQ(last.objects_lost, 0u);
  EXPECT_TRUE(cluster_.Alive(0));  // Last alive node is never drained.
  EXPECT_EQ(cluster_.stats().nodes_quarantined, 0u);
}

TEST_F(ClusterTest, CrashRecoveryPrefersHealthyReplicaOverCorruptOne) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(2)).ok());
  const auto before = cluster_.Inspect("a");
  ASSERT_TRUE(before.ok());
  // One backup copy is rotten when the master dies; recovery must promote a
  // verified copy — never the corrupt bits — into the new master.
  ASSERT_EQ(cluster_.CorruptReplica(before->backups.front(), 1), 1);
  const auto result = cluster_.CrashNode(before->master);
  EXPECT_EQ(result.objects_recovered, 1u);
  EXPECT_EQ(result.objects_lost, 0u);

  const auto after = cluster_.Inspect("a");
  ASSERT_TRUE(after.ok());
  const Checksum expected = ExpectedChecksum("a", after->size, after->version);
  EXPECT_EQ(after->checksum, expected);
  // A corrupt copy may survive as a backup — recovery only verifies what it
  // loads; divergent replicas are the scrubber's to mop up.
  (void)cluster_.ScrubObject("a");
  const auto scrubbed = cluster_.Inspect("a");
  ASSERT_TRUE(scrubbed.ok());
  EXPECT_EQ(scrubbed->checksum, expected);
  for (const Checksum backup : scrubbed->backup_checksums) {
    EXPECT_EQ(backup, expected);
  }
}

TEST_F(ClusterTest, ChecksumsSurviveMigrationAndRestart) {
  ASSERT_TRUE(WriteSync(0, "a", MiB(4)).ok());
  ASSERT_TRUE(cluster_.MigrateMaster("a").ok());
  (void)cluster_.CrashNode(0);
  cluster_.RestartNode(0);
  const auto obj = cluster_.Inspect("a");
  ASSERT_TRUE(obj.ok());
  const Checksum expected = ExpectedChecksum("a", obj->size, obj->version);
  EXPECT_EQ(obj->checksum, expected);
  ASSERT_EQ(obj->backup_checksums.size(), obj->backups.size());
  for (const Checksum backup : obj->backup_checksums) {
    EXPECT_EQ(backup, expected);
  }
}

}  // namespace
}  // namespace ofc::rc
