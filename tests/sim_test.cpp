// Unit tests for the discrete-event simulation core.
#include <gtest/gtest.h>

#include <vector>

#include "src/sim/event_loop.h"
#include "src/sim/latency.h"
#include "src/sim/periodic.h"

namespace ofc::sim {
namespace {

TEST(EventLoopTest, RunsEventsInTimeOrder) {
  EventLoop loop;
  std::vector<int> order;
  loop.ScheduleAfter(Millis(30), [&] { order.push_back(3); });
  loop.ScheduleAfter(Millis(10), [&] { order.push_back(1); });
  loop.ScheduleAfter(Millis(20), [&] { order.push_back(2); });
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{1, 2, 3}));
  EXPECT_EQ(loop.now(), Millis(30));
}

TEST(EventLoopTest, EqualTimestampsRunInScheduleOrder) {
  EventLoop loop;
  std::vector<int> order;
  for (int i = 0; i < 5; ++i) {
    loop.ScheduleAfter(Millis(10), [&order, i] { order.push_back(i); });
  }
  loop.Run();
  EXPECT_EQ(order, (std::vector<int>{0, 1, 2, 3, 4}));
}

TEST(EventLoopTest, NestedScheduling) {
  EventLoop loop;
  std::vector<SimTime> times;
  loop.ScheduleAfter(Millis(5), [&] {
    times.push_back(loop.now());
    loop.ScheduleAfter(Millis(5), [&] { times.push_back(loop.now()); });
  });
  loop.Run();
  ASSERT_EQ(times.size(), 2u);
  EXPECT_EQ(times[0], Millis(5));
  EXPECT_EQ(times[1], Millis(10));
}

TEST(EventLoopTest, CancelPreventsExecution) {
  EventLoop loop;
  int ran = 0;
  const auto id = loop.ScheduleAfter(Millis(5), [&] { ++ran; });
  EXPECT_TRUE(loop.Cancel(id));
  EXPECT_FALSE(loop.Cancel(id));  // Second cancel is a no-op.
  loop.Run();
  EXPECT_EQ(ran, 0);
}

TEST(EventLoopTest, RunUntilAdvancesClockToDeadline) {
  EventLoop loop;
  int ran = 0;
  loop.ScheduleAfter(Seconds(10), [&] { ++ran; });
  loop.RunUntil(Seconds(5));
  EXPECT_EQ(ran, 0);
  EXPECT_EQ(loop.now(), Seconds(5));
  loop.RunUntil(Seconds(20));
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.now(), Seconds(20));
}

TEST(EventLoopTest, StepRunsExactlyOneEvent) {
  EventLoop loop;
  int ran = 0;
  loop.ScheduleAfter(Millis(1), [&] { ++ran; });
  loop.ScheduleAfter(Millis(2), [&] { ++ran; });
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(ran, 1);
  EXPECT_TRUE(loop.Step());
  EXPECT_EQ(ran, 2);
  EXPECT_FALSE(loop.Step());
}

TEST(EventLoopTest, PendingEventsTracksCancelBookkeeping) {
  EventLoop loop;
  int ran = 0;
  const auto a = loop.ScheduleAfter(Millis(1), [&] { ++ran; });
  const auto b = loop.ScheduleAfter(Millis(2), [&] { ++ran; });
  loop.ScheduleAfter(Millis(3), [&] { ++ran; });
  EXPECT_EQ(loop.pending_events(), 3u);

  // A cancelled event keeps its queue slot but must not count as pending, and
  // a double cancel must not double-decrement the bookkeeping.
  EXPECT_TRUE(loop.Cancel(b));
  EXPECT_EQ(loop.pending_events(), 2u);
  EXPECT_FALSE(loop.Cancel(b));
  EXPECT_EQ(loop.pending_events(), 2u);

  EXPECT_TRUE(loop.Step());  // Runs a.
  EXPECT_EQ(ran, 1);
  EXPECT_EQ(loop.pending_events(), 1u);
  EXPECT_TRUE(loop.Step());  // Skips b's dead slot, runs the third event.
  EXPECT_EQ(ran, 2);
  EXPECT_EQ(loop.pending_events(), 0u);
  EXPECT_FALSE(loop.Step());

  EXPECT_FALSE(loop.Cancel(a));  // Already ran.
  loop.Run();                    // Dead slots must not resurrect anything.
  EXPECT_EQ(ran, 2);
}

TEST(EventLoopTest, StepSkipsCancelledEvents) {
  EventLoop loop;
  int ran = 0;
  const auto id = loop.ScheduleAfter(Millis(1), [&] { ++ran; });
  loop.ScheduleAfter(Millis(2), [&] { ++ran; });
  loop.Cancel(id);
  EXPECT_TRUE(loop.Step());  // Skips the cancelled one, runs the live one.
  EXPECT_EQ(ran, 1);
  EXPECT_FALSE(loop.Step());
}

TEST(PeriodicTaskTest, FiresEveryIntervalUntilStopped) {
  EventLoop loop;
  int ticks = 0;
  PeriodicTask task(&loop, Millis(10), [&](SimTime) { ++ticks; });
  task.Start();
  loop.RunFor(Millis(35));
  EXPECT_EQ(ticks, 3);
  EXPECT_TRUE(task.running());
  task.Stop();
  EXPECT_FALSE(task.running());
  // A stopped task leaves no pending events: the loop is quiescent.
  loop.Run();
  EXPECT_EQ(ticks, 3);
}

TEST(PeriodicTaskTest, ScopedDestructionBeforeNextTickCancelsPendingEvent) {
  // Regression: a PeriodicTask destroyed while its next tick is still pending
  // must cancel that event. The re-arming callback captures [this], so a
  // missed cancellation would have the loop call into a destroyed task —
  // under ASan this test would report heap-use-after-free.
  EventLoop loop;
  int ticks = 0;
  {
    PeriodicTask task(&loop, Millis(10), [&](SimTime) { ++ticks; });
    task.Start();
    loop.RunFor(Millis(25));  // Two ticks fired; the third is pending.
    EXPECT_EQ(ticks, 2);
    EXPECT_TRUE(task.running());
  }
  // The destructor cancelled the pending tick: draining the loop runs nothing
  // further and the tick count is frozen.
  EXPECT_EQ(loop.pending_events(), 0u);
  loop.Run();
  EXPECT_EQ(ticks, 2);
}

TEST(PeriodicTaskTest, DestructionOfNeverStartedTaskIsInert) {
  EventLoop loop;
  {
    PeriodicTask task(&loop, Millis(10), [](SimTime) {});
    EXPECT_FALSE(task.running());
  }
  EXPECT_EQ(loop.pending_events(), 0u);
}

TEST(LatencyModelTest, BaseOnly) {
  LatencyModel m{Millis(10), 0.0, 0.0};
  EXPECT_EQ(m.Cost(MiB(100)), Millis(10));
}

TEST(LatencyModelTest, BandwidthProportional) {
  LatencyModel m{0, 1e6, 0.0};  // 1 MB/s
  EXPECT_EQ(m.Cost(1000000), Seconds(1));
  EXPECT_EQ(m.Cost(500000), Millis(500));
}

TEST(LatencyModelTest, JitterBoundsHold) {
  LatencyModel m{Millis(10), 0.0, 0.2};
  Rng rng(3);
  for (int i = 0; i < 500; ++i) {
    const SimDuration c = m.Cost(0, &rng);
    EXPECT_GE(c, Millis(8) - 1);
    EXPECT_LE(c, Millis(12) + 1);
  }
}

TEST(LatencyModelTest, ProfilesOrderedByHierarchy) {
  // Local RAM < remote RAM < Redis-style IMOC < Swift < S3 for a 64 KiB object.
  Bytes size = KiB(64);
  const auto local = LatencyProfiles::RamcloudLocal().Cost(size);
  const auto remote = LatencyProfiles::RamcloudRemote().Cost(size);
  const auto redis = LatencyProfiles::RedisRequest().Cost(size);
  const auto swift = LatencyProfiles::SwiftRequest().Cost(size);
  const auto s3 = LatencyProfiles::S3Request().Cost(size);
  EXPECT_LT(local, remote);
  EXPECT_LT(remote, redis);
  EXPECT_LT(redis, swift);
  EXPECT_LT(swift, s3);
}

}  // namespace
}  // namespace ofc::sim
