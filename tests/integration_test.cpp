// Integration tests: the full OFC stack (platform + hooks + proxy + cache +
// RSDS) driven end-to-end, plus the FAASLOAD injector.
#include <gtest/gtest.h>

#include "src/faasload/environment.h"
#include "src/faasload/injector.h"

namespace ofc {
namespace {

using faasload::Environment;
using faasload::EnvironmentOptions;
using faasload::Mode;

EnvironmentOptions SmallEnv(std::uint64_t seed) {
  EnvironmentOptions options;
  options.platform.num_workers = 2;
  options.platform.worker_memory = GiB(8);
  options.seed = seed;
  return options;
}

// Drives the loop until `done` or the (simulated) deadline; OFC's periodic
// timers keep the loop non-empty forever, so Run() is not an option.
template <typename DoneFn>
void DriveUntil(Environment& env, SimDuration budget, DoneFn done) {
  const SimTime deadline = env.loop().now() + budget;
  while (!done() && env.loop().now() < deadline && env.loop().Step()) {
  }
}

faas::InvocationRecord InvokeSync(Environment& env, const std::string& function,
                                  const std::string& key,
                                  const workloads::MediaDescriptor& media,
                                  std::vector<double> args = {}) {
  faas::InvocationRecord record;
  bool done = false;
  env.platform().Invoke(function, {faas::InputObject{key, media}}, std::move(args),
                        [&](const faas::InvocationRecord& r) {
                          record = r;
                          done = true;
                        });
  DriveUntil(env, Minutes(10), [&] { return done; });
  EXPECT_TRUE(done);
  return record;
}

void RegisterAndPretrain(Environment& env, const std::string& function, Bytes booked) {
  faas::FunctionConfig config;
  config.spec = *workloads::FindFunction(function);
  config.booked_memory = booked;
  ASSERT_TRUE(env.platform().RegisterFunction(config).ok());
  if (env.ofc() != nullptr) {
    Rng rng(1234);
    env.ofc()->trainer().Pretrain(config.spec, 1000, rng);
  }
}

TEST(EnvironmentTest, ConstructsAllModes) {
  for (Mode mode : {Mode::kOwkSwift, Mode::kOwkRedis, Mode::kOfc}) {
    Environment env(mode, SmallEnv(1));
    EXPECT_EQ(env.mode(), mode);
    EXPECT_EQ(env.cluster() != nullptr, mode == Mode::kOfc);
    EXPECT_EQ(env.ofc() != nullptr, mode == Mode::kOfc);
  }
}

TEST(OfcEndToEndTest, SecondInvocationHitsCache) {
  Environment env(Mode::kOfc, SmallEnv(2));
  RegisterAndPretrain(env, "wand_sepia", GiB(2));
  workloads::MediaGenerator generator(Rng(3));
  const auto media = generator.GenerateWithByteSize(workloads::InputKind::kImage, KiB(256));
  env.rsds().Seed("img", media.byte_size, faas::MediaToTags(media));

  const auto first = InvokeSync(env, "wand_sepia", "img", media, {0.5});
  const auto second = InvokeSync(env, "wand_sepia", "img", media, {0.5});
  EXPECT_FALSE(first.failed);
  EXPECT_FALSE(second.failed);
  EXPECT_EQ(env.ofc()->proxy().stats().cache_hits, 1u);
  EXPECT_LT(second.extract_time, first.extract_time / 5);
  EXPECT_LT(second.total, first.total);  // No cold start, cache hit.
}

TEST(OfcEndToEndTest, PredictionShrinksSandboxBelowBooked) {
  Environment env(Mode::kOfc, SmallEnv(4));
  RegisterAndPretrain(env, "wand_sepia", GiB(2));
  workloads::MediaGenerator generator(Rng(5));
  const auto media = generator.GenerateWithByteSize(workloads::InputKind::kImage, KiB(512));
  env.rsds().Seed("img", media.byte_size, faas::MediaToTags(media));
  const auto record = InvokeSync(env, "wand_sepia", "img", media, {0.5});
  EXPECT_FALSE(record.failed);
  EXPECT_LT(record.memory_limit, GiB(2) / 4);  // Far below the booking.
  EXPECT_GE(record.memory_limit, record.memory_used);
  EXPECT_GE(env.ofc()->prediction_stats().model_predictions, 1u);
}

TEST(OfcEndToEndTest, HoardedCacheTracksSandboxes) {
  Environment env(Mode::kOfc, SmallEnv(6));
  RegisterAndPretrain(env, "wand_sepia", GiB(2));
  EXPECT_EQ(env.cluster()->TotalCapacity(), 0);  // No sandboxes yet.
  workloads::MediaGenerator generator(Rng(7));
  const auto media = generator.GenerateWithByteSize(workloads::InputKind::kImage, KiB(128));
  env.rsds().Seed("img", media.byte_size, faas::MediaToTags(media));
  const auto record = InvokeSync(env, "wand_sepia", "img", media, {0.5});
  // The idle sandbox's booked-but-unused memory now feeds the cache.
  const Bytes hoard = GiB(2) - record.memory_limit;
  EXPECT_GT(env.cluster()->TotalCapacity(), hoard / 2);
  EXPECT_LE(env.cluster()->TotalCapacity(), hoard);
}

TEST(OfcEndToEndTest, OutputIsWrittenBackAndDroppedFromCache) {
  Environment env(Mode::kOfc, SmallEnv(8));
  RegisterAndPretrain(env, "wand_sepia", GiB(2));
  workloads::MediaGenerator generator(Rng(9));
  const auto media = generator.GenerateWithByteSize(workloads::InputKind::kImage, KiB(256));
  env.rsds().Seed("img", media.byte_size, faas::MediaToTags(media));
  const auto record = InvokeSync(env, "wand_sepia", "img", media, {0.5});
  ASSERT_FALSE(record.failed);
  // Let the persistor finish.
  DriveUntil(env, Seconds(5), [] { return false; });
  const auto meta = env.rsds().Stat(record.output_key);
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->IsShadow());
  EXPECT_EQ(meta->size, record.output_bytes);
  EXPECT_FALSE(env.cluster()->Contains(record.output_key));  // §6.3 drop.
}

TEST(OfcEndToEndTest, PipelineIntermediatesStayOutOfRsds) {
  Environment env(Mode::kOfc, SmallEnv(10));
  const workloads::PipelineSpec* pipeline = workloads::FindPipeline("map_reduce");
  for (const auto& stage : pipeline->stages) {
    RegisterAndPretrain(env, stage.function, GiB(1));
  }
  workloads::MediaGenerator generator(Rng(11));
  std::vector<faas::InputObject> chunks;
  for (int c = 0; c < 6; ++c) {
    const auto media = generator.GenerateWithByteSize(workloads::InputKind::kText, KiB(512));
    const std::string key = "chunk" + std::to_string(c);
    env.rsds().Seed(key, media.byte_size, faas::MediaToTags(media));
    chunks.push_back(faas::InputObject{key, media});
  }
  faas::PipelineRecord record;
  bool done = false;
  env.platform().InvokePipeline(*pipeline, chunks, [&](const faas::PipelineRecord& r) {
    record = r;
    done = true;
  });
  DriveUntil(env, Minutes(30), [&] { return done; });
  ASSERT_TRUE(done);
  EXPECT_FALSE(record.failed);
  EXPECT_EQ(record.num_tasks, 7u);  // 6 map + 1 reduce.
  // Map outputs (stage-0 intermediates) were cached, never persisted, and
  // dropped at pipeline completion.
  EXPECT_GE(env.ofc()->proxy().stats().intermediates_cached, 1u);
  EXPECT_EQ(env.ofc()->proxy().stats().intermediates_cached,
            env.ofc()->proxy().stats().intermediates_dropped);
  for (std::size_t t = 0; t < 6; ++t) {
    const std::string key = "pipe/1/s0/t" + std::to_string(t);
    EXPECT_FALSE(env.rsds().Exists(key)) << key;
    EXPECT_FALSE(env.cluster()->Contains(key)) << key;
  }
}

TEST(OfcEndToEndTest, ExternalReaderNeverSeesStalePayload) {
  Environment env(Mode::kOfc, SmallEnv(12));
  RegisterAndPretrain(env, "wand_sepia", GiB(2));
  workloads::MediaGenerator generator(Rng(13));
  const auto media = generator.GenerateWithByteSize(workloads::InputKind::kImage, KiB(256));
  env.rsds().Seed("img", media.byte_size, faas::MediaToTags(media));
  const auto record = InvokeSync(env, "wand_sepia", "img", media, {0.5});
  ASSERT_FALSE(record.failed);
  // Immediately read the output externally (non-FaaS client): the webhook must
  // block until the payload is persisted, even if the persistor has not yet
  // run on its own.
  bool read_done = false;
  bool was_shadow_when_served = true;
  env.rsds().ExternalRead(record.output_key, [&](Result<store::ObjectMetadata> meta) {
    ASSERT_TRUE(meta.ok());
    was_shadow_when_served = meta->IsShadow();
    read_done = true;
  });
  DriveUntil(env, Minutes(1), [&] { return read_done; });
  ASSERT_TRUE(read_done);
  EXPECT_FALSE(was_shadow_when_served);
}

TEST(InjectorTest, MultiTenantRunCompletesWithoutFailures) {
  Environment env(Mode::kOfc, SmallEnv(14));
  faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, 15);
  for (const char* function : {"wand_sepia", "wand_thumbnail", "audio_normalize"}) {
    faasload::TenantSpec spec;
    spec.name = std::string("t-") + function;
    spec.function = function;
    spec.mean_interval_s = 10.0;
    spec.dataset_objects = 2;
    ASSERT_TRUE(injector.AddTenant(spec).ok());
  }
  injector.PretrainModels(400);
  injector.Run(Minutes(5));
  std::size_t total = 0;
  for (const auto& tenant : injector.results()) {
    total += tenant.invocations.size();
    EXPECT_EQ(tenant.FailureCount(), 0u) << tenant.name;
  }
  EXPECT_GT(total, 30u);  // ~3 tenants x ~30 invocations expected.
}

TEST(InjectorTest, BookedMemoryOrderingAcrossProfiles) {
  const workloads::FunctionSpec* spec = workloads::FindFunction("wand_blur");
  const Bytes naive =
      faasload::BookedMemoryFor(*spec, faasload::TenantProfile::kNaive, GiB(2), 1);
  const Bytes advanced =
      faasload::BookedMemoryFor(*spec, faasload::TenantProfile::kAdvanced, GiB(2), 1);
  const Bytes normal =
      faasload::BookedMemoryFor(*spec, faasload::TenantProfile::kNormal, GiB(2), 1);
  EXPECT_EQ(naive, GiB(2));
  EXPECT_LT(advanced, normal);
  EXPECT_LE(normal, naive);
  EXPECT_GT(advanced, MiB(64));
}

TEST(InjectorTest, OfcOutperformsSwiftBaseline) {
  // A small head-to-head of the macro experiment's headline claim.
  SimDuration totals[2] = {0, 0};
  int idx = 0;
  for (Mode mode : {Mode::kOwkSwift, Mode::kOfc}) {
    Environment env(mode, SmallEnv(16));
    faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, 17);
    faasload::TenantSpec spec;
    spec.name = "bench";
    spec.function = "wand_sepia";
    spec.mean_interval_s = 10.0;
    spec.dataset_objects = 2;
    spec.object_size = KiB(512);  // Cacheable (<= 10 MB admission cap).
    ASSERT_TRUE(injector.AddTenant(spec).ok());
    injector.PretrainModels(1000);
    injector.Run(Minutes(5));
    totals[idx++] = injector.results()[0].TotalExecutionTime();
  }
  EXPECT_LT(totals[1], totals[0] * 3 / 4);  // At least 25 % better.
}

TEST(OfcEndToEndTest, SurvivesSimultaneousWorkerAndCacheNodeCrash) {
  // The full fault story (§6.1): a worker fail-stops mid-run, taking its
  // sandboxes AND its cache instance with it. The platform re-dispatches the
  // in-flight invocations; the cache recovers master copies from backups; no
  // invocation fails and cached data stays readable.
  Environment env(Mode::kOfc, SmallEnv(20));
  RegisterAndPretrain(env, "wand_sepia", GiB(2));
  workloads::MediaGenerator generator(Rng(21));
  Rng rng(22);

  // Seed and prime several cacheable objects.
  std::vector<faas::InputObject> objects;
  for (int i = 0; i < 6; ++i) {
    const auto media =
        generator.GenerateWithByteSize(workloads::InputKind::kImage, KiB(512));
    const std::string key = "img" + std::to_string(i);
    env.rsds().Seed(key, media.byte_size, faas::MediaToTags(media));
    objects.push_back(faas::InputObject{key, media});
    (void)InvokeSync(env, "wand_sepia", key, media, {0.5});
  }
  ASSERT_GT(env.cluster()->NumObjects(), 0u);

  // Fire a batch of invocations, then crash worker 0 while they are in flight.
  int completed = 0;
  int failed = 0;
  for (const auto& object : objects) {
    env.platform().Invoke("wand_sepia", {object}, {0.5},
                          [&](const faas::InvocationRecord& record) {
                            ++completed;
                            failed += record.failed;
                          });
  }
  DriveUntil(env, Millis(30), [] { return false; });  // Let them get going.
  env.platform().CrashWorker(0);
  const rc::RecoveryResult recovery = env.cluster()->CrashNode(0);
  EXPECT_EQ(recovery.objects_lost, 0u);

  DriveUntil(env, Minutes(10), [&] { return completed == 6; });
  EXPECT_EQ(completed, 6);
  EXPECT_EQ(failed, 0);
  // Cached objects are all still readable from promoted masters.
  for (const auto& object : objects) {
    if (!env.cluster()->Contains(object.key)) {
      continue;  // May have been legitimately evicted.
    }
    const auto master = env.cluster()->MasterOf(object.key);
    ASSERT_TRUE(master.ok());
    EXPECT_NE(*master, 0);
  }
}

TEST(DeterminismTest, SameSeedSameResults) {
  auto run = [](std::uint64_t seed) {
    Environment env(Mode::kOfc, SmallEnv(seed));
    faas::FunctionConfig config;
    config.spec = *workloads::FindFunction("wand_sepia");
    config.booked_memory = GiB(2);
    (void)env.platform().RegisterFunction(config);
    Rng rng(42);
    env.ofc()->trainer().Pretrain(config.spec, 300, rng);
    workloads::MediaGenerator generator(Rng(43));
    const auto media =
        generator.GenerateWithByteSize(workloads::InputKind::kImage, KiB(256));
    env.rsds().Seed("img", media.byte_size, faas::MediaToTags(media));
    return InvokeSync(env, "wand_sepia", "img", media, {0.5}).total;
  };
  EXPECT_EQ(run(7), run(7));
  EXPECT_NE(run(7), run(8));  // Different seeds: different latency draws.
}

}  // namespace
}  // namespace ofc
