// Unit tests for the object store: versioning, shadow objects, webhooks,
// latency accounting.
#include <gtest/gtest.h>

#include "src/sim/event_loop.h"
#include "src/store/object_store.h"

namespace ofc::store {
namespace {

class StoreTest : public ::testing::Test {
 protected:
  StoreTest()
      : store_(&loop_, sim::LatencyModel{Millis(10), 100e6, 0.0}, Rng(1), "test",
               sim::LatencyModel{Millis(2), 0.0, 0.0}) {}

  sim::EventLoop loop_;
  ObjectStore store_;
};

TEST_F(StoreTest, PutThenGet) {
  Status put_status = InternalError("unset");
  store_.Put("c/a", KiB(100), {{"kind", "image"}}, [&](Status s) { put_status = s; });
  loop_.Run();
  EXPECT_TRUE(put_status.ok());

  Result<ObjectMetadata> meta = NotFoundError("unset");
  store_.Get("c/a", [&](Result<ObjectMetadata> m) { meta = std::move(m); });
  loop_.Run();
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->size, KiB(100));
  EXPECT_EQ(meta->tags.at("kind"), "image");
  EXPECT_FALSE(meta->IsShadow());
}

TEST_F(StoreTest, GetMissingReturnsNotFound) {
  Result<ObjectMetadata> meta = OkStatus().ok() ? Result<ObjectMetadata>(InternalError("u"))
                                                : Result<ObjectMetadata>(InternalError("u"));
  store_.Get("c/missing", [&](Result<ObjectMetadata> m) { meta = std::move(m); });
  loop_.Run();
  EXPECT_FALSE(meta.ok());
  EXPECT_EQ(meta.status().code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, PutLatencyScalesWithSize) {
  SimTime small_done = 0;
  store_.Put("c/small", KiB(1), {}, [&](Status) { small_done = loop_.now(); });
  loop_.Run();
  sim::EventLoop loop2;
  ObjectStore store2(&loop2, sim::LatencyModel{Millis(10), 100e6, 0.0}, Rng(1), "t2");
  SimTime big_done = 0;
  store2.Put("c/big", MiB(50), {}, [&](Status) { big_done = loop2.now(); });
  loop2.Run();
  EXPECT_GT(big_done, small_done);
  // 50 MiB at 100 MB/s is ~524 ms of transfer plus 10 ms base.
  EXPECT_NEAR(static_cast<double>(big_done), 10'000 + 524'288, 2000);
}

TEST_F(StoreTest, ShadowLifecycle) {
  // Shadow write creates a placeholder version; FinalizePayload installs it.
  Result<ObjectMetadata> shadow = InternalError("unset");
  store_.PutShadow("c/obj", MiB(1), [&](Result<ObjectMetadata> m) { shadow = std::move(m); });
  loop_.Run();
  ASSERT_TRUE(shadow.ok());
  EXPECT_TRUE(shadow->IsShadow());
  EXPECT_EQ(shadow->pending_size, MiB(1));
  EXPECT_EQ(shadow->size, 0);

  Status fin = InternalError("unset");
  store_.FinalizePayload("c/obj", shadow->latest_version, MiB(1), [&](Status s) { fin = s; });
  loop_.Run();
  EXPECT_TRUE(fin.ok());
  const auto meta = store_.Stat("c/obj");
  ASSERT_TRUE(meta.ok());
  EXPECT_FALSE(meta->IsShadow());
  EXPECT_EQ(meta->size, MiB(1));
}

TEST_F(StoreTest, FinalizeOutOfOrderAborts) {
  Result<ObjectMetadata> v1 = InternalError("unset");
  Result<ObjectMetadata> v2 = InternalError("unset");
  store_.PutShadow("c/obj", KiB(10), [&](Result<ObjectMetadata> m) { v1 = std::move(m); });
  loop_.Run();
  store_.PutShadow("c/obj", KiB(20), [&](Result<ObjectMetadata> m) { v2 = std::move(m); });
  loop_.Run();
  ASSERT_TRUE(v1.ok());
  ASSERT_TRUE(v2.ok());
  ASSERT_GT(v2->latest_version, v1->latest_version);

  // Newer version lands first...
  Status fin2 = InternalError("unset");
  store_.FinalizePayload("c/obj", v2->latest_version, KiB(20), [&](Status s) { fin2 = s; });
  loop_.Run();
  EXPECT_TRUE(fin2.ok());
  // ...so the stale push must be rejected to preserve propagation order.
  Status fin1 = OkStatus();
  store_.FinalizePayload("c/obj", v1->latest_version, KiB(10), [&](Status s) { fin1 = s; });
  loop_.Run();
  EXPECT_EQ(fin1.code(), StatusCode::kAborted);
  EXPECT_EQ(store_.Stat("c/obj")->size, KiB(20));
}

TEST_F(StoreTest, FinalizeUnknownKeyNotFound) {
  Status fin = OkStatus();
  store_.FinalizePayload("c/nothing", 1, KiB(1), [&](Status s) { fin = s; });
  loop_.Run();
  EXPECT_EQ(fin.code(), StatusCode::kNotFound);
}

TEST_F(StoreTest, DeleteRemovesObject) {
  store_.Seed("c/x", KiB(5), {});
  Status del = InternalError("unset");
  store_.Delete("c/x", [&](Status s) { del = s; });
  loop_.Run();
  EXPECT_TRUE(del.ok());
  EXPECT_FALSE(store_.Exists("c/x"));
}

TEST_F(StoreTest, ReadWebhookBlocksExternalRead) {
  store_.Seed("c/a", KiB(1), {});
  bool webhook_ran = false;
  std::function<void()> saved_resume;
  store_.set_read_webhook([&](const std::string& key, std::function<void()> resume) {
    EXPECT_EQ(key, "c/a");
    webhook_ran = true;
    saved_resume = std::move(resume);  // Hold the read until we allow it.
  });
  bool read_done = false;
  store_.ExternalRead("c/a", [&](Result<ObjectMetadata>) { read_done = true; });
  loop_.Run();
  EXPECT_TRUE(webhook_ran);
  EXPECT_FALSE(read_done);  // Still blocked on the webhook.
  saved_resume();
  loop_.Run();
  EXPECT_TRUE(read_done);
}

TEST_F(StoreTest, WriteWebhookRunsBeforeExternalWrite) {
  int order = 0;
  int webhook_at = 0;
  store_.set_write_webhook([&](const std::string&, std::function<void()> resume) {
    webhook_at = ++order;
    resume();
  });
  store_.ExternalWrite("c/b", KiB(2), [&](Status) { ++order; });
  loop_.Run();
  EXPECT_EQ(webhook_at, 1);
  EXPECT_EQ(order, 2);
  EXPECT_TRUE(store_.Exists("c/b"));
}

TEST_F(StoreTest, StatsTrackOperations) {
  store_.Put("c/1", KiB(4), {}, [](Status) {});
  loop_.Run();
  store_.Get("c/1", [](Result<ObjectMetadata>) {});
  loop_.Run();
  EXPECT_EQ(store_.stats().writes, 1u);
  EXPECT_EQ(store_.stats().reads, 1u);
  EXPECT_EQ(store_.stats().bytes_written, KiB(4));
  EXPECT_EQ(store_.stats().bytes_read, KiB(4));
}

TEST_F(StoreTest, SeedBypassesLatency) {
  store_.Seed("c/seeded", MiB(3), {{"kind", "video"}});
  EXPECT_TRUE(store_.Exists("c/seeded"));
  EXPECT_EQ(store_.TotalBytes(), MiB(3));
  EXPECT_EQ(store_.NumObjects(), 1u);
}

TEST_F(StoreTest, PutReplacesAndBumpsVersion) {
  store_.Put("c/v", KiB(1), {}, [](Status) {});
  loop_.Run();
  const auto v1 = store_.Stat("c/v")->latest_version;
  store_.Put("c/v", KiB(2), {}, [](Status) {});
  loop_.Run();
  const auto meta = store_.Stat("c/v");
  EXPECT_GT(meta->latest_version, v1);
  EXPECT_EQ(meta->size, KiB(2));
}

// ---- Data integrity --------------------------------------------------------

TEST_F(StoreTest, PutAndSeedStampVerifiableChecksums) {
  store_.Put("c/put", KiB(64), {}, [](Status) {});
  loop_.Run();
  store_.Seed("c/seed", MiB(1), {});
  for (const char* key : {"c/put", "c/seed"}) {
    const auto meta = store_.Stat(key);
    ASSERT_TRUE(meta.ok()) << key;
    EXPECT_EQ(meta->checksum, ExpectedChecksum(key, meta->size, meta->rsds_version))
        << key;
  }
}

TEST_F(StoreTest, RotFlipsOnlyHealthyObjects) {
  store_.Seed("c/a", KiB(1), {});
  store_.Seed("c/b", KiB(1), {});
  EXPECT_EQ(store_.Rot(10), 2);
  EXPECT_EQ(store_.Rot(10), 0);  // Nothing healthy left to damage.
  const auto meta = store_.Stat("c/a");
  ASSERT_TRUE(meta.ok());
  EXPECT_NE(meta->checksum, ExpectedChecksum("c/a", meta->size, meta->rsds_version));
}

TEST_F(StoreTest, GetSelfRepairsRottedObjectWithExtraLatency) {
  store_.Seed("c/a", MiB(4), {});
  ASSERT_EQ(store_.Rot(1), 1);

  Result<ObjectMetadata> rotted = InternalError("unset");
  SimTime rotted_done = 0;
  store_.Get("c/a", [&](Result<ObjectMetadata> m) {
    rotted = std::move(m);
    rotted_done = loop_.now();
  });
  loop_.Run();
  const SimTime rotted_cost = rotted_done;
  ASSERT_TRUE(rotted.ok());
  // The caller never sees the corrupt copy: the returned metadata verifies.
  EXPECT_EQ(rotted->checksum, ExpectedChecksum("c/a", rotted->size, rotted->rsds_version));
  EXPECT_EQ(store_.stats().checksum_failures, 1u);
  EXPECT_EQ(store_.stats().integrity_repairs, 1u);

  // A healthy read of the (now repaired) object is strictly cheaper than the
  // detect-and-repair read, which pays one extra payload read.
  const SimTime clean_start = loop_.now();
  SimTime clean_done = 0;
  store_.Get("c/a", [&](Result<ObjectMetadata>) { clean_done = loop_.now(); });
  loop_.Run();
  EXPECT_LT(clean_done - clean_start, rotted_cost);
  EXPECT_EQ(store_.stats().checksum_failures, 1u);  // No new failures.
}

TEST_F(StoreTest, ScrubKeyRepairsOnceAndIgnoresUnknownKeys) {
  store_.Seed("c/a", KiB(8), {});
  ASSERT_EQ(store_.Rot(1), 1);
  EXPECT_EQ(store_.ScrubKey("c/a"), 1);
  EXPECT_EQ(store_.ScrubKey("c/a"), 0);
  EXPECT_EQ(store_.ScrubKey("c/missing"), 0);
  const auto meta = store_.Stat("c/a");
  ASSERT_TRUE(meta.ok());
  EXPECT_EQ(meta->checksum, ExpectedChecksum("c/a", meta->size, meta->rsds_version));
  EXPECT_EQ(store_.stats().integrity_repairs, 1u);
}

TEST_F(StoreTest, PutIfVersionRejectsCorruptFingerprint) {
  store_.Put("c/a", KiB(4), {}, [](Status) {});
  loop_.Run();
  const ObjectVersion v1 = store_.Stat("c/a")->latest_version;

  // A damaged payload is refused at the landing, before the CAS check.
  Status bad = InternalError("unset");
  store_.PutIfVersion("c/a", v1, KiB(8), {},
                      CorruptChecksum(PayloadFingerprint("c/a", KiB(8))),
                      [&](Status s) { bad = s; });
  loop_.Run();
  EXPECT_EQ(bad.code(), StatusCode::kDataLoss);
  EXPECT_EQ(store_.Stat("c/a")->latest_version, v1);
  EXPECT_EQ(store_.stats().checksum_failures, 1u);

  // The healthy retry lands and stamps a verifiable checksum.
  Status good = InternalError("unset");
  store_.PutIfVersion("c/a", v1, KiB(8), {}, PayloadFingerprint("c/a", KiB(8)),
                      [&](Status s) { good = s; });
  loop_.Run();
  EXPECT_TRUE(good.ok());
  const auto meta = store_.Stat("c/a");
  EXPECT_EQ(meta->size, KiB(8));
  EXPECT_EQ(meta->checksum, ExpectedChecksum("c/a", meta->size, meta->rsds_version));
}

TEST_F(StoreTest, FinalizePayloadRejectsCorruptFingerprint) {
  Result<ObjectMetadata> shadow = InternalError("unset");
  store_.PutShadow("c/obj", MiB(1), [&](Result<ObjectMetadata> m) { shadow = std::move(m); });
  loop_.Run();
  ASSERT_TRUE(shadow.ok());

  Status bad = InternalError("unset");
  store_.FinalizePayload("c/obj", shadow->latest_version, MiB(1),
                         CorruptChecksum(PayloadFingerprint("c/obj", MiB(1))),
                         [&](Status s) { bad = s; });
  loop_.Run();
  EXPECT_EQ(bad.code(), StatusCode::kDataLoss);
  EXPECT_TRUE(store_.Stat("c/obj")->IsShadow());  // Placeholder untouched.

  Status good = InternalError("unset");
  store_.FinalizePayload("c/obj", shadow->latest_version, MiB(1),
                         PayloadFingerprint("c/obj", MiB(1)), [&](Status s) { good = s; });
  loop_.Run();
  EXPECT_TRUE(good.ok());
  const auto meta = store_.Stat("c/obj");
  EXPECT_FALSE(meta->IsShadow());
  EXPECT_EQ(meta->checksum, ExpectedChecksum("c/obj", meta->size, meta->rsds_version));
}

}  // namespace
}  // namespace ofc::store
