// Determinism tests: a (seed, workload) pair must fully determine a run's
// observable output. Each scenario is executed through a fresh
// Environment + LoadInjector and fingerprinted by its metrics JSON snapshot
// plus the event loop's final state; replays must be byte-identical —
// including with a perturbed unordered-container hash salt, which proves no
// bucket-iteration order leaks into observable state.
#include <cstdint>
#include <string>

#include <gtest/gtest.h>

#include "src/common/hash.h"
#include "src/common/sim_assert.h"
#include "src/faasload/environment.h"
#include "src/faasload/injector.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "tests/chaos_harness.h"

namespace ofc {
namespace {

using faasload::Environment;
using faasload::EnvironmentOptions;
using faasload::Mode;

struct RunFingerprint {
  std::string metrics_json;
  SimTime final_time = 0;
  std::uint64_t events_scheduled = 0;

  bool operator==(const RunFingerprint&) const = default;
};

// Runs the default mixed-tenant scenario for `sim_minutes` of simulated time
// and returns everything observable about the run.
RunFingerprint RunScenario(Mode mode, std::uint64_t seed, std::uint64_t hash_salt,
                           int sim_minutes = 5) {
  SetHashSalt(hash_salt);
  EnvironmentOptions options;
  options.platform.num_workers = 2;
  options.platform.worker_memory = GiB(8);
  options.seed = seed;
  Environment env(mode, options);
  faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, seed + 1);

  for (const char* function : {"wand_blur", "wand_sepia"}) {
    faasload::TenantSpec spec;
    spec.name = std::string("t-") + function;
    spec.function = function;
    spec.mean_interval_s = 10.0;
    spec.arrivals = faasload::ArrivalPattern::kExponential;
    EXPECT_TRUE(injector.AddTenant(spec).ok());
  }
  injector.PretrainModels(200);
  injector.Run(Minutes(sim_minutes));

  RunFingerprint fp;
  fp.metrics_json = env.metrics().SnapshotJson(env.loop().now());
  fp.final_time = env.loop().now();
  fp.events_scheduled = env.loop().total_scheduled();
  SetHashSalt(0);
  return fp;
}

// Same scenario as RunScenario, but with a fault plan replayed against the
// stack mid-run: crashes, an outage, and a persistor drop must not introduce
// any nondeterminism (the degradation paths use jitter-free backoff).
RunFingerprint RunFaultScenario(std::uint64_t seed, std::uint64_t hash_salt,
                                bool with_faults = true) {
  SetHashSalt(hash_salt);
  EnvironmentOptions options;
  options.platform.num_workers = 2;
  options.platform.worker_memory = GiB(8);
  options.seed = seed;
  Environment env(Mode::kOfc, options);
  faasload::LoadInjector load(&env, faasload::TenantProfile::kNormal, seed + 1);
  faasload::TenantSpec spec;
  spec.name = "t-chaos";
  spec.function = "wand_sepia";
  spec.mean_interval_s = 5.0;
  spec.arrivals = faasload::ArrivalPattern::kExponential;
  EXPECT_TRUE(load.AddTenant(spec).ok());

  // Parsed from JSON so the CLI ingestion path is part of the replayed bytes.
  const auto plan = fault::ParseFaultPlanJson(R"({"events": [
      {"at_ms": 40000, "kind": "store_brownout", "duration_ms": 30000, "severity": 4},
      {"at_ms": 60000, "kind": "node_crash", "target": 1, "duration_ms": 20000},
      {"at_ms": 75000, "kind": "worker_crash", "target": 0, "duration_ms": 10000},
      {"at_ms": 90000, "kind": "persistor_drop", "duration_ms": 15000},
      {"at_ms": 100000, "kind": "store_outage", "duration_ms": 8000}
  ]})");
  EXPECT_TRUE(plan.ok());
  fault::FaultInjector faults(
      &env.loop(),
      fault::FaultInjectorTargets{&env.platform(), env.cluster(), &env.rsds(),
                                  &env.ofc()->proxy()},
      fault::FaultInjectorOptions{&env.metrics(), &env.trace()});
  if (with_faults) {
    EXPECT_TRUE(faults.Schedule(*plan).ok());
  }

  load.PretrainModels(200);
  load.Run(Minutes(4));

  RunFingerprint fp;
  fp.metrics_json = env.metrics().SnapshotJson(env.loop().now());
  fp.final_time = env.loop().now();
  fp.events_scheduled = env.loop().total_scheduled();
  SetHashSalt(0);
  return fp;
}

TEST(DeterminismTest, FaultPlanReplaysAreByteIdentical) {
  const RunFingerprint first = RunFaultScenario(19, /*hash_salt=*/0);
  const RunFingerprint second = RunFaultScenario(19, /*hash_salt=*/0);
  EXPECT_EQ(first.final_time, second.final_time);
  EXPECT_EQ(first.events_scheduled, second.events_scheduled);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(DeterminismTest, FaultPlanWithPerturbedHashSaltIsIdentical) {
  const RunFingerprint baseline = RunFaultScenario(19, /*hash_salt=*/0);
  const RunFingerprint salted =
      RunFaultScenario(19, /*hash_salt=*/0x9e3779b97f4a7c15ull);
  EXPECT_TRUE(baseline == salted);
}

TEST(DeterminismTest, FaultPlanActuallyPerturbsTheRun) {
  // Guards against the fault path silently not firing: the faulted fingerprint
  // must differ from the fault-free one for the same seed.
  const RunFingerprint faulted = RunFaultScenario(19, 0);
  const RunFingerprint clean = RunFaultScenario(19, 0, /*with_faults=*/false);
  EXPECT_NE(faulted.metrics_json, clean.metrics_json);
}

TEST(DeterminismTest, SameSeedReplaysAreByteIdentical) {
  const RunFingerprint first = RunScenario(Mode::kOfc, 7, /*hash_salt=*/0);
  const RunFingerprint second = RunScenario(Mode::kOfc, 7, /*hash_salt=*/0);
  EXPECT_EQ(first.final_time, second.final_time);
  EXPECT_EQ(first.events_scheduled, second.events_scheduled);
  EXPECT_EQ(first.metrics_json, second.metrics_json);
}

TEST(DeterminismTest, PerturbedHashSaltDoesNotChangeObservableState) {
  // If any code path iterates an unordered container into observable state,
  // changing the hash salt reorders the buckets and the fingerprints diverge.
  const RunFingerprint baseline = RunScenario(Mode::kOfc, 7, /*hash_salt=*/0);
  const RunFingerprint salted = RunScenario(Mode::kOfc, 7, /*hash_salt=*/0x9e3779b97f4a7c15ull);
  EXPECT_EQ(baseline.final_time, salted.final_time);
  EXPECT_EQ(baseline.events_scheduled, salted.events_scheduled);
  EXPECT_EQ(baseline.metrics_json, salted.metrics_json);
}

TEST(DeterminismTest, BaselineModesAreAlsoDeterministic) {
  for (Mode mode : {Mode::kOwkSwift, Mode::kOwkRedis}) {
    const RunFingerprint first = RunScenario(mode, 11, 0, /*sim_minutes=*/2);
    const RunFingerprint second = RunScenario(mode, 11, 0x1234u, /*sim_minutes=*/2);
    EXPECT_TRUE(first == second) << "mode " << static_cast<int>(mode);
  }
}

TEST(DeterminismTest, DifferentSeedsDiverge) {
  // Sanity check that the fingerprint is sensitive at all — otherwise the
  // identical-replay assertions above would be vacuous.
  const RunFingerprint a = RunScenario(Mode::kOfc, 7, 0, /*sim_minutes=*/3);
  const RunFingerprint b = RunScenario(Mode::kOfc, 8, 0, /*sim_minutes=*/3);
  EXPECT_NE(a.metrics_json, b.metrics_json);
}

TEST(DeterminismTest, OverloadShedReplayIsByteIdentical) {
  // A burst over a queue-limited platform with a degraded cache sheds some
  // requests and trips the breaker; the shed/complete split and every metric
  // must replay byte-identically, including under a perturbed hash salt.
  const auto run = [](std::uint64_t hash_salt) {
    SetHashSalt(hash_salt);
    chaos::ChaosScenarioOptions options;
    options.seed = 29;
    options.num_invocations = 10;
    options.mean_interval_s = 6.0;
    options.queue_limit = 4;
    options.queue_deadline = Seconds(1);
    options.breaker_threshold = 2;
    options.burst_count = 25;
    options.burst_at = Seconds(40);
    options.plan.events.push_back(
        {Seconds(35), fault::FaultKind::kCacheDegraded, -1, Seconds(30), 1.0});
    chaos::ChaosReport report = chaos::RunChaosScenario(options);
    SetHashSalt(0);
    return report;
  };
  const chaos::ChaosReport first = run(0);
  const chaos::ChaosReport second = run(0);
  const chaos::ChaosReport salted = run(0x9e3779b97f4a7c15ull);
  EXPECT_TRUE(first.ok()) << first.ViolationSummary();
  EXPECT_GT(first.shed, 0);  // The scenario actually exercises shedding.
  EXPECT_EQ(first.shed, second.shed);
  EXPECT_EQ(first.completed, second.completed);
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint());
  EXPECT_EQ(first.Fingerprint(), salted.Fingerprint());
}

#ifdef OFC_SIM_ASSERTS
TEST(DeterminismDeathTest, SimAssertAbortsWithDiagnostics) {
  EXPECT_DEATH(SIM_ASSERT(1 == 2) << "custom context", "SIM_ASSERT failed: 1 == 2");
}
#endif

TEST(SimAssertTest, PassingAssertHasNoSideEffects) {
  int evaluations = 0;
  auto count = [&] {
    ++evaluations;
    return true;
  };
  SIM_ASSERT(count());
  SIM_DCHECK(count());
#ifdef OFC_SIM_ASSERTS
#ifndef NDEBUG
  EXPECT_EQ(evaluations, 2);
#else
  EXPECT_EQ(evaluations, 1);  // SIM_DCHECK compiled out in NDEBUG builds.
#endif
#else
  EXPECT_EQ(evaluations, 0);  // Both compiled out.
#endif
}

}  // namespace
}  // namespace ofc
