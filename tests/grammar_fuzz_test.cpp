// Grammar property/fuzz tests for the two user-facing text formats:
//
//  * FaultPlan JSON (`ofc-sim --fault-plan=...`, src/fault/fault_plan.h)
//  * SLO spec strings (`ofc-sim --slo=...`, src/obs/slo.h)
//
// Three layers per grammar, driven by checked-in corpora under
// tests/testdata/{fault_plans,slo_specs}/:
//
//  1. valid corpus: every file parses, and serialization is a fixed point
//     (format -> parse -> format is byte-stable);
//  2. hostile corpus: every file is rejected cleanly — a structured error, a
//     failed Validate(), never a crash;
//  3. deterministic mutation fuzz: seeded byte mutations of the valid corpus
//     must never crash the parser, whatever they return.
//
// The corpora are data so a future grammar change that invalidates an input
// shows up as a reviewable testdata diff, not a silent behavior shift.
#include <algorithm>
#include <cstdint>
#include <cstdio>
#include <filesystem>
#include <fstream>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/common/rng.h"
#include "src/fault/fault_plan.h"
#include "src/obs/slo.h"

namespace ofc {
namespace {

namespace fs = std::filesystem;

std::string ReadFileOrDie(const fs::path& path) {
  std::ifstream in(path, std::ios::binary);
  EXPECT_TRUE(in.good()) << "cannot open " << path;
  std::ostringstream body;
  body << in.rdbuf();
  return body.str();
}

// Corpus files in deterministic (sorted) order; fails the test when the
// directory is missing or empty so a lost corpus cannot pass vacuously.
std::vector<fs::path> Corpus(const std::string& subdir) {
  const fs::path dir = fs::path(OFC_TESTDATA_DIR) / subdir;
  std::vector<fs::path> files;
  for (const auto& entry : fs::directory_iterator(dir)) {
    if (entry.is_regular_file()) {
      files.push_back(entry.path());
    }
  }
  std::sort(files.begin(), files.end());
  EXPECT_FALSE(files.empty()) << "empty corpus: " << dir;
  return files;
}

// Seeded in-place byte mutations: 1-4 positions replaced with bytes drawn
// from a pool of structural characters, digits, and raw bytes — the inputs
// most likely to confuse a hand-rolled lexer.
std::string Mutate(const std::string& body, Rng* rng) {
  static constexpr char kPool[] = "{}[]\":,.-+eE0123456789 \n\t\\/xp=;#\x00\x7f\xff";
  std::string mutated = body;
  if (mutated.empty()) {
    mutated.push_back('{');
  }
  const int edits = static_cast<int>(rng->UniformInt(1, 4));
  for (int i = 0; i < edits; ++i) {
    const std::size_t pos = rng->Index(mutated.size());
    mutated[pos] = kPool[rng->Index(sizeof(kPool) - 1)];
  }
  return mutated;
}

// ---- FaultPlan JSON --------------------------------------------------------

TEST(FaultPlanGrammarTest, ValidCorpusParsesAndRoundTrips) {
  for (const fs::path& file : Corpus("fault_plans/valid")) {
    SCOPED_TRACE(file.filename().string());
    const std::string body = ReadFileOrDie(file);
    const auto plan = fault::ParseFaultPlanJson(body);
    ASSERT_TRUE(plan.ok()) << plan.status().message();

    // Round trip: serialize and re-parse; the corpus is authored in whole
    // milliseconds, so the event lists must compare equal exactly.
    const std::string json = fault::FaultPlanToJson(*plan);
    const auto replayed = fault::ParseFaultPlanJson(json);
    ASSERT_TRUE(replayed.ok()) << replayed.status().message();
    EXPECT_EQ(plan->events, replayed->events);
  }
}

TEST(FaultPlanGrammarTest, HostileCorpusRejectedCleanly) {
  for (const fs::path& file : Corpus("fault_plans/hostile")) {
    SCOPED_TRACE(file.filename().string());
    const std::string body = ReadFileOrDie(file);
    const auto plan = fault::ParseFaultPlanJson(body);
    if (plan.ok()) {
      // Structurally well-formed but semantically bogus (negative times,
      // out-of-range targets): Validate is the layer that must reject it.
      EXPECT_FALSE(plan->Validate(/*num_workers=*/8, /*num_nodes=*/8).ok())
          << "hostile input accepted end-to-end";
    } else {
      EXPECT_FALSE(plan.status().message().empty()) << "rejection carries no message";
    }
  }
}

TEST(FaultPlanGrammarTest, SerializationIsAFixedPoint) {
  // Randomly synthesized plans carry sub-millisecond times, which truncate on
  // the first serialization; after one parse the representation must be
  // byte-stable forever.
  for (std::uint64_t seed = 1; seed <= 25; ++seed) {
    SCOPED_TRACE("seed=" + std::to_string(seed));
    Rng rng(seed);
    fault::ChaosPlanOptions options;
    options.num_events = 8;
    options.include_cache_faults = (seed % 2) == 0;
    options.include_corruption_faults = (seed % 3) == 0;
    const fault::FaultPlan plan = fault::RandomFaultPlan(options, &rng);

    const std::string once = fault::FaultPlanToJson(plan);
    const auto parsed = fault::ParseFaultPlanJson(once);
    ASSERT_TRUE(parsed.ok()) << parsed.status().message();
    const std::string twice = fault::FaultPlanToJson(*parsed);
    EXPECT_EQ(once, twice);
  }
}

TEST(FaultPlanGrammarTest, MutationFuzzNeverCrashes) {
  Rng rng(0xFA51'F00D);
  for (const fs::path& file : Corpus("fault_plans/valid")) {
    const std::string body = ReadFileOrDie(file);
    for (int i = 0; i < 300; ++i) {
      const std::string mutated = Mutate(body, &rng);
      const auto plan = fault::ParseFaultPlanJson(mutated);
      if (plan.ok()) {
        // Whatever survives parsing must also survive the rest of the
        // pipeline: validation and re-serialization.
        (void)plan->Validate(8, 8);
        (void)fault::FaultPlanToJson(*plan);
      }
    }
  }
}

// ---- SLO spec grammar ------------------------------------------------------

// Canonical formatter for a parsed spec: every field spelled out, so
// format -> parse -> format is a fixed point even for specs that relied on
// defaults or derived fields.
std::string FormatSpec(const obs::SloSpec& spec) {
  char buf[512];
  if (spec.type == obs::SloSpec::Type::kLatency) {
    std::snprintf(buf, sizeof(buf), "%s=lat:%s:p%.6g:%.6g", spec.name.c_str(),
                  spec.series.c_str(), spec.quantile * 100.0, spec.target_ms);
  } else {
    std::snprintf(buf, sizeof(buf), "%s=rate:%s/%s:%.6g", spec.name.c_str(),
                  spec.numerator.c_str(), spec.denominator.c_str(), spec.budget);
  }
  std::string out = buf;
  std::snprintf(buf, sizeof(buf), ":fast=%.6g:slow=%.6g:fastburn=%.6g:slowburn=%.6g",
                spec.fast_window_s, spec.slow_window_s, spec.fast_burn_threshold,
                spec.slow_burn_threshold);
  return out + buf;
}

std::string FormatSpecs(const std::vector<obs::SloSpec>& specs) {
  std::string out;
  for (const obs::SloSpec& spec : specs) {
    out += FormatSpec(spec);
    out.push_back('\n');
  }
  return out;
}

TEST(SloGrammarTest, ValidCorpusParsesAndRoundTrips) {
  for (const fs::path& file : Corpus("slo_specs/valid")) {
    SCOPED_TRACE(file.filename().string());
    std::vector<obs::SloSpec> specs;
    std::string error;
    ASSERT_TRUE(obs::ParseSloSpecs(ReadFileOrDie(file), &specs, &error)) << error;
    EXPECT_FALSE(specs.empty());

    const std::string canonical = FormatSpecs(specs);
    std::vector<obs::SloSpec> replayed;
    ASSERT_TRUE(obs::ParseSloSpecs(canonical, &replayed, &error)) << error;
    EXPECT_EQ(canonical, FormatSpecs(replayed));
  }
}

TEST(SloGrammarTest, HostileCorpusRejectedCleanly) {
  for (const fs::path& file : Corpus("slo_specs/hostile")) {
    SCOPED_TRACE(file.filename().string());
    std::vector<obs::SloSpec> specs;
    std::string error;
    EXPECT_FALSE(obs::ParseSloSpecs(ReadFileOrDie(file), &specs, &error));
    EXPECT_FALSE(error.empty()) << "rejection carries no message";
  }
}

TEST(SloGrammarTest, MutationFuzzNeverCrashes) {
  Rng rng(0x510'FA22);
  for (const fs::path& file : Corpus("slo_specs/valid")) {
    const std::string body = ReadFileOrDie(file);
    for (int i = 0; i < 300; ++i) {
      const std::string mutated = Mutate(body, &rng);
      std::vector<obs::SloSpec> specs;
      std::string error;
      if (obs::ParseSloSpecs(mutated, &specs, &error)) {
        // Accepted mutants must survive re-serialization and re-parsing.
        std::vector<obs::SloSpec> replayed;
        (void)obs::ParseSloSpecs(FormatSpecs(specs), &replayed, &error);
      } else {
        EXPECT_FALSE(error.empty());
      }
    }
  }
}

}  // namespace
}  // namespace ofc
