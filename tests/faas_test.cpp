// Unit tests for the FaaS platform: sandbox lifecycle, cold/warm starts,
// keep-alive, OOM semantics, capacity reclaim, pipelines.
#include <gtest/gtest.h>

#include "src/faas/direct_data_service.h"
#include "src/faas/platform.h"
#include "src/sim/event_loop.h"
#include "src/store/object_store.h"

namespace ofc::faas {
namespace {

workloads::FunctionSpec TinySpec(const std::string& name, double base_mem_mb = 100,
                                 double compute_us_per_mb = 50) {
  workloads::FunctionSpec spec;
  spec.name = name;
  spec.kind = workloads::InputKind::kImage;
  spec.base_mem_mb = base_mem_mb;
  spec.mem_copies = 5.0;
  spec.mem_noise = 0.0;
  spec.compute_us_per_mb = compute_us_per_mb;
  return spec;
}

workloads::MediaDescriptor TinyImage(Bytes byte_size = KiB(64), int side = 800) {
  workloads::MediaDescriptor media;
  media.kind = workloads::InputKind::kImage;
  media.width = side;
  media.height = side;
  media.byte_size = byte_size;
  return media;
}

class PlatformTest : public ::testing::Test {
 protected:
  PlatformTest()
      : rsds_(&loop_, sim::LatencyModel{Millis(5), 200e6, 0.0}, Rng(1), "rsds"),
        data_(&rsds_) {}

  void MakePlatform(PlatformOptions options, PlatformHooks* hooks = nullptr) {
    platform_ = std::make_unique<Platform>(&loop_, options, &data_, hooks, Rng(2));
  }

  void RegisterTiny(const std::string& name, Bytes booked = MiB(512)) {
    FunctionConfig config;
    config.spec = TinySpec(name);
    config.booked_memory = booked;
    ASSERT_TRUE(platform_->RegisterFunction(config).ok());
  }

  InvocationRecord InvokeSync(const std::string& fn, Bytes input_size = KiB(64)) {
    rsds_.Seed("in/obj", input_size, {});
    InvocationRecord out;
    bool done = false;
    platform_->Invoke(fn, {InputObject{"in/obj", TinyImage(input_size)}}, {},
                      [&](const InvocationRecord& r) {
                        out = r;
                        done = true;
                      });
    // Step (not Run): draining the whole queue would also fire the sandbox
    // keep-alive timer and destroy the warm sandbox under test.
    while (!done && loop_.Step()) {
    }
    EXPECT_TRUE(done);
    return out;
  }

  sim::EventLoop loop_;
  store::ObjectStore rsds_;
  DirectDataService data_;
  std::unique_ptr<Platform> platform_;
};

TEST_F(PlatformTest, RegisterRejectsDuplicates) {
  MakePlatform({});
  RegisterTiny("f");
  FunctionConfig config;
  config.spec = TinySpec("f");
  EXPECT_EQ(platform_->RegisterFunction(config).code(), StatusCode::kAlreadyExists);
}

TEST_F(PlatformTest, UnknownFunctionFails) {
  MakePlatform({});
  InvocationRecord record = InvokeSync("nope");
  EXPECT_TRUE(record.failed);
}

TEST_F(PlatformTest, FirstInvocationIsColdSecondIsWarm) {
  MakePlatform({});
  RegisterTiny("f");
  const InvocationRecord first = InvokeSync("f");
  EXPECT_TRUE(first.cold_start);
  EXPECT_FALSE(first.failed);
  const InvocationRecord second = InvokeSync("f");
  EXPECT_FALSE(second.cold_start);
  EXPECT_LT(second.startup_time, first.startup_time);
  EXPECT_EQ(platform_->stats().cold_starts, 1u);
  EXPECT_EQ(platform_->stats().warm_starts, 1u);
}

TEST_F(PlatformTest, PhasesAreMeasured) {
  MakePlatform({});
  RegisterTiny("f");
  const InvocationRecord record = InvokeSync("f", MiB(1));
  EXPECT_GT(record.extract_time, 0);
  EXPECT_GT(record.compute_time, 0);
  EXPECT_GT(record.load_time, 0);
  EXPECT_GE(record.total,
            record.startup_time + record.extract_time + record.compute_time + record.load_time);
  EXPECT_EQ(record.input_bytes, MiB(1));
  EXPECT_GT(record.output_bytes, 0);
  EXPECT_TRUE(rsds_.Exists(record.output_key));
}

TEST_F(PlatformTest, KeepAliveDestroysIdleSandbox) {
  PlatformOptions options;
  options.keep_alive = Seconds(600);
  MakePlatform(options);
  RegisterTiny("f");
  (void)InvokeSync("f");
  EXPECT_EQ(platform_->NumSandboxes(0) + platform_->NumSandboxes(1) +
                platform_->NumSandboxes(2) + platform_->NumSandboxes(3),
            1u);
  loop_.RunUntil(loop_.now() + Seconds(601));
  std::size_t total = 0;
  for (int w = 0; w < platform_->num_workers(); ++w) {
    total += platform_->NumSandboxes(w);
  }
  EXPECT_EQ(total, 0u);
}

TEST_F(PlatformTest, SandboxReservationTracksBookedMemory) {
  MakePlatform({});
  RegisterTiny("f", MiB(512));
  const InvocationRecord record = InvokeSync("f");
  EXPECT_EQ(platform_->SandboxReserved(record.worker), MiB(512));
  EXPECT_EQ(record.memory_limit, MiB(512));
}

TEST_F(PlatformTest, OomKillTriggersRetryWithBookedMemory) {
  MakePlatform({});
  // Booked 2 GB, but the hook below will underprovision the first run.
  struct UnderpredictHooks : PlatformHooks {
    Sizing SizeInvocation(const FunctionConfig& fn, const std::vector<InputObject>&,
                          const std::vector<double>&) override {
      ++calls;
      if (calls == 1) {
        return Sizing{MiB(64), false};  // Way below the ~115 MB actual demand.
      }
      return Sizing{fn.booked_memory, false};
    }
    int calls = 0;
  } hooks;
  MakePlatform({}, &hooks);
  FunctionConfig config;
  config.spec = TinySpec("f");
  config.booked_memory = GiB(1);
  ASSERT_TRUE(platform_->RegisterFunction(config).ok());

  const InvocationRecord record = InvokeSync("f", MiB(1));
  EXPECT_FALSE(record.failed);
  EXPECT_TRUE(record.oom_killed);
  EXPECT_EQ(record.retries, 1);
  EXPECT_EQ(record.memory_limit, GiB(1));  // Retried with the booked amount.
  EXPECT_EQ(platform_->stats().oom_kills, 1u);
  EXPECT_EQ(platform_->stats().retries, 1u);
}

TEST_F(PlatformTest, MonitorRescueAvoidsOomKill) {
  struct RescueHooks : PlatformHooks {
    Sizing SizeInvocation(const FunctionConfig&, const std::vector<InputObject>&,
                          const std::vector<double>&) override {
      return Sizing{MiB(64), false};
    }
    bool TryRaiseMemory(int, Bytes, Bytes, SimDuration expected_compute) override {
      // §5.3.1: rescue only long-running invocations.
      return expected_compute >= Seconds(3);
    }
  } hooks;
  MakePlatform({}, &hooks);
  // Long compute: 100 ms/decoded-MB over a ~45 MB raster -> > 3 s.
  FunctionConfig config;
  config.spec = TinySpec("slow", /*base_mem_mb=*/100, /*compute_us_per_mb=*/100000);
  config.booked_memory = GiB(1);
  ASSERT_TRUE(platform_->RegisterFunction(config).ok());

  rsds_.Seed("in/obj", MiB(2), {});
  InvocationRecord record;
  platform_->Invoke("slow", {InputObject{"in/obj", TinyImage(MiB(2), 4000)}}, {},
                    [&](const InvocationRecord& r) { record = r; });
  loop_.Run();
  EXPECT_FALSE(record.failed);
  EXPECT_FALSE(record.oom_killed);
  EXPECT_TRUE(record.oom_rescued);
  EXPECT_EQ(record.retries, 0);
  EXPECT_GE(record.memory_limit, record.memory_used);
  EXPECT_EQ(platform_->stats().oom_rescues, 1u);
}

TEST_F(PlatformTest, CapacityPressureReclaimsIdleSandboxes) {
  PlatformOptions options;
  options.num_workers = 1;
  options.worker_memory = GiB(1);
  MakePlatform(options);
  RegisterTiny("a", MiB(512));
  FunctionConfig config;
  config.spec = TinySpec("b");
  config.booked_memory = MiB(768);
  ASSERT_TRUE(platform_->RegisterFunction(config).ok());

  (void)InvokeSync("a");  // Leaves one idle 512 MiB sandbox.
  const InvocationRecord record = InvokeSync("b");  // Needs 768 MiB: must reclaim.
  EXPECT_FALSE(record.failed);
  EXPECT_EQ(platform_->stats().sandbox_reclaims, 1u);
  EXPECT_EQ(platform_->NumIdleSandboxes("a"), 0u);
}

TEST_F(PlatformTest, HooksObserveSandboxMemoryChanges) {
  struct TrackingHooks : PlatformHooks {
    void OnSandboxMemoryChange(const SandboxMemoryEvent& event) override {
      delta += event.new_limit - event.old_limit;
      booked = event.booked;
      ++events;
    }
    Bytes delta = 0;
    Bytes booked = 0;
    int events = 0;
  } hooks;
  MakePlatform({}, &hooks);
  RegisterTiny("f", MiB(256));
  (void)InvokeSync("f");
  EXPECT_EQ(hooks.delta, MiB(256));  // Creation (default sizing = booked).
  EXPECT_EQ(hooks.booked, MiB(256));
  loop_.RunUntil(loop_.now() + Seconds(601));  // Keep-alive expiry.
  EXPECT_EQ(hooks.delta, 0);         // Destruction released it.
  EXPECT_GE(hooks.events, 2);
}

TEST_F(PlatformTest, PipelineRunsAllStages) {
  MakePlatform({});
  for (const char* name : {"s1", "s2", "s3"}) {
    FunctionConfig config;
    config.spec = TinySpec(name);
    config.spec.kind = workloads::InputKind::kText;
    config.booked_memory = MiB(256);
    ASSERT_TRUE(platform_->RegisterFunction(config).ok());
  }
  workloads::PipelineSpec pipeline;
  pipeline.name = "test_pipe";
  pipeline.input_kind = workloads::InputKind::kText;
  pipeline.stages = {{"s1", 0}, {"s2", 0}, {"s3", 1}};

  std::vector<InputObject> chunks;
  for (int c = 0; c < 4; ++c) {
    const std::string key = "in/chunk" + std::to_string(c);
    rsds_.Seed(key, KiB(256), {});
    workloads::MediaDescriptor media;
    media.kind = workloads::InputKind::kText;
    media.byte_size = KiB(256);
    chunks.push_back(InputObject{key, media});
  }
  PipelineRecord record;
  bool done = false;
  platform_->InvokePipeline(pipeline, chunks, [&](const PipelineRecord& r) {
    record = r;
    done = true;
  });
  loop_.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(record.failed);
  // 4 fan-out tasks x 2 stages + 1 merge task.
  EXPECT_EQ(record.num_tasks, 9u);
  EXPECT_GT(record.extract_time, 0);
  EXPECT_GT(record.compute_time, 0);
  EXPECT_GT(record.load_time, 0);
  EXPECT_GT(record.total, 0);
}

TEST_F(PlatformTest, AggregateMediaSumsBytes) {
  std::vector<InputObject> inputs;
  inputs.push_back(InputObject{"a", TinyImage(KiB(100))});
  inputs.push_back(InputObject{"b", TinyImage(KiB(200))});
  const auto media = Platform::AggregateMedia(inputs);
  EXPECT_EQ(media.byte_size, KiB(300));
  EXPECT_EQ(Platform::AggregateMedia({}).byte_size, KiB(1));
}

TEST_F(PlatformTest, WorkerCrashRetriesInFlightInvocations) {
  PlatformOptions options;
  options.num_workers = 2;
  MakePlatform(options);
  // Slow compute so the crash lands mid-transform.
  FunctionConfig config;
  config.spec = TinySpec("slow", 100, /*compute_us_per_mb=*/200000);
  config.booked_memory = GiB(1);
  ASSERT_TRUE(platform_->RegisterFunction(config).ok());

  rsds_.Seed("in/obj", MiB(1), {});
  InvocationRecord record;
  bool done = false;
  platform_->Invoke("slow", {InputObject{"in/obj", TinyImage(MiB(1), 3000)}}, {},
                    [&](const InvocationRecord& r) {
                      record = r;
                      done = true;
                    });
  // Let it get into the transform phase, then crash its worker.
  loop_.RunUntil(loop_.now() + Millis(400));
  ASSERT_FALSE(done);
  int victim = -1;
  for (int w = 0; w < 2; ++w) {
    if (platform_->NumSandboxes(w) > 0) {
      victim = w;
    }
  }
  ASSERT_GE(victim, 0);
  platform_->CrashWorker(victim);
  EXPECT_FALSE(platform_->WorkerAlive(victim));
  EXPECT_EQ(platform_->NumSandboxes(victim), 0u);

  while (!done && loop_.Step()) {
  }
  ASSERT_TRUE(done);
  EXPECT_FALSE(record.failed);  // Retried on the surviving worker.
  EXPECT_NE(record.worker, victim);
  EXPECT_GE(record.retries, 1);
  EXPECT_EQ(platform_->stats().worker_crashes, 1u);
  EXPECT_EQ(platform_->stats().crash_retries, 1u);
  // Exactly one completion (no stale double-fire from the dead execution).
  loop_.RunUntil(loop_.now() + Seconds(30));
  EXPECT_EQ(platform_->stats().failed_invocations, 0u);
}

TEST_F(PlatformTest, CrashedWorkerReceivesNoPlacements) {
  PlatformOptions options;
  options.num_workers = 2;
  MakePlatform(options);
  RegisterTiny("f");
  platform_->CrashWorker(0);
  for (int i = 0; i < 4; ++i) {
    const InvocationRecord record = InvokeSync("f");
    EXPECT_FALSE(record.failed);
    EXPECT_EQ(record.worker, 1);
  }
  platform_->RestoreWorker(0);
  EXPECT_TRUE(platform_->WorkerAlive(0));
}

TEST_F(PlatformTest, CrashReleasesReservations) {
  PlatformOptions options;
  options.num_workers = 1;
  MakePlatform(options);
  RegisterTiny("f", MiB(512));
  (void)InvokeSync("f");
  ASSERT_EQ(platform_->SandboxReserved(0), MiB(512));
  platform_->CrashWorker(0);
  EXPECT_EQ(platform_->SandboxReserved(0), 0);
}

TEST_F(PlatformTest, DispatchOverheadAppliesToWarmStart) {
  PlatformOptions options;
  options.dispatch_overhead = Millis(8);
  options.cold_start = Millis(180);
  MakePlatform(options);
  RegisterTiny("f");
  const InvocationRecord cold = InvokeSync("f");
  EXPECT_EQ(cold.startup_time, Millis(188));
  const InvocationRecord warm = InvokeSync("f");
  EXPECT_EQ(warm.startup_time, Millis(8));
}

}  // namespace
}  // namespace ofc::faas
