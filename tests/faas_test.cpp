// Unit tests for the FaaS platform: sandbox lifecycle, cold/warm starts,
// keep-alive, OOM semantics, capacity reclaim, pipelines.
#include <gtest/gtest.h>

#include "src/faas/direct_data_service.h"
#include "src/faas/platform.h"
#include "src/sim/event_loop.h"
#include "src/store/object_store.h"

namespace ofc::faas {
namespace {

workloads::FunctionSpec TinySpec(const std::string& name, double base_mem_mb = 100,
                                 double compute_us_per_mb = 50) {
  workloads::FunctionSpec spec;
  spec.name = name;
  spec.kind = workloads::InputKind::kImage;
  spec.base_mem_mb = base_mem_mb;
  spec.mem_copies = 5.0;
  spec.mem_noise = 0.0;
  spec.compute_us_per_mb = compute_us_per_mb;
  return spec;
}

workloads::MediaDescriptor TinyImage(Bytes byte_size = KiB(64), int side = 800) {
  workloads::MediaDescriptor media;
  media.kind = workloads::InputKind::kImage;
  media.width = side;
  media.height = side;
  media.byte_size = byte_size;
  return media;
}

class PlatformTest : public ::testing::Test {
 protected:
  PlatformTest()
      : rsds_(&loop_, sim::LatencyModel{Millis(5), 200e6, 0.0}, Rng(1), "rsds"),
        data_(&rsds_) {}

  void MakePlatform(PlatformOptions options, PlatformHooks* hooks = nullptr) {
    platform_ = std::make_unique<Platform>(&loop_, options, &data_, hooks, Rng(2));
  }

  void RegisterTiny(const std::string& name, Bytes booked = MiB(512)) {
    FunctionConfig config;
    config.spec = TinySpec(name);
    config.booked_memory = booked;
    ASSERT_TRUE(platform_->RegisterFunction(config).ok());
  }

  InvocationRecord InvokeSync(const std::string& fn, Bytes input_size = KiB(64)) {
    rsds_.Seed("in/obj", input_size, {});
    InvocationRecord out;
    bool done = false;
    platform_->Invoke(fn, {InputObject{"in/obj", TinyImage(input_size)}}, {},
                      [&](const InvocationRecord& r) {
                        out = r;
                        done = true;
                      });
    // Step (not Run): draining the whole queue would also fire the sandbox
    // keep-alive timer and destroy the warm sandbox under test.
    while (!done && loop_.Step()) {
    }
    EXPECT_TRUE(done);
    return out;
  }

  sim::EventLoop loop_;
  store::ObjectStore rsds_;
  DirectDataService data_;
  std::unique_ptr<Platform> platform_;
};

TEST_F(PlatformTest, RegisterRejectsDuplicates) {
  MakePlatform({});
  RegisterTiny("f");
  FunctionConfig config;
  config.spec = TinySpec("f");
  EXPECT_EQ(platform_->RegisterFunction(config).code(), StatusCode::kAlreadyExists);
}

TEST_F(PlatformTest, UnknownFunctionFails) {
  MakePlatform({});
  InvocationRecord record = InvokeSync("nope");
  EXPECT_TRUE(record.failed);
}

TEST_F(PlatformTest, FirstInvocationIsColdSecondIsWarm) {
  MakePlatform({});
  RegisterTiny("f");
  const InvocationRecord first = InvokeSync("f");
  EXPECT_TRUE(first.cold_start);
  EXPECT_FALSE(first.failed);
  const InvocationRecord second = InvokeSync("f");
  EXPECT_FALSE(second.cold_start);
  EXPECT_LT(second.startup_time, first.startup_time);
  EXPECT_EQ(platform_->stats().cold_starts, 1u);
  EXPECT_EQ(platform_->stats().warm_starts, 1u);
}

TEST_F(PlatformTest, PhasesAreMeasured) {
  MakePlatform({});
  RegisterTiny("f");
  const InvocationRecord record = InvokeSync("f", MiB(1));
  EXPECT_GT(record.extract_time, 0);
  EXPECT_GT(record.compute_time, 0);
  EXPECT_GT(record.load_time, 0);
  EXPECT_GE(record.total,
            record.startup_time + record.extract_time + record.compute_time + record.load_time);
  EXPECT_EQ(record.input_bytes, MiB(1));
  EXPECT_GT(record.output_bytes, 0);
  EXPECT_TRUE(rsds_.Exists(record.output_key));
}

TEST_F(PlatformTest, KeepAliveDestroysIdleSandbox) {
  PlatformOptions options;
  options.keep_alive = Seconds(600);
  MakePlatform(options);
  RegisterTiny("f");
  (void)InvokeSync("f");
  EXPECT_EQ(platform_->NumSandboxes(0) + platform_->NumSandboxes(1) +
                platform_->NumSandboxes(2) + platform_->NumSandboxes(3),
            1u);
  loop_.RunUntil(loop_.now() + Seconds(601));
  std::size_t total = 0;
  for (int w = 0; w < platform_->num_workers(); ++w) {
    total += platform_->NumSandboxes(w);
  }
  EXPECT_EQ(total, 0u);
}

TEST_F(PlatformTest, SandboxReservationTracksBookedMemory) {
  MakePlatform({});
  RegisterTiny("f", MiB(512));
  const InvocationRecord record = InvokeSync("f");
  EXPECT_EQ(platform_->SandboxReserved(record.worker), MiB(512));
  EXPECT_EQ(record.memory_limit, MiB(512));
}

TEST_F(PlatformTest, OomKillTriggersRetryWithBookedMemory) {
  MakePlatform({});
  // Booked 2 GB, but the hook below will underprovision the first run.
  struct UnderpredictHooks : PlatformHooks {
    Sizing SizeInvocation(const FunctionConfig& fn, const std::vector<InputObject>&,
                          const std::vector<double>&) override {
      ++calls;
      if (calls == 1) {
        return Sizing{MiB(64), false};  // Way below the ~115 MB actual demand.
      }
      return Sizing{fn.booked_memory, false};
    }
    int calls = 0;
  } hooks;
  MakePlatform({}, &hooks);
  FunctionConfig config;
  config.spec = TinySpec("f");
  config.booked_memory = GiB(1);
  ASSERT_TRUE(platform_->RegisterFunction(config).ok());

  const InvocationRecord record = InvokeSync("f", MiB(1));
  EXPECT_FALSE(record.failed);
  EXPECT_TRUE(record.oom_killed);
  EXPECT_EQ(record.retries, 1);
  EXPECT_EQ(record.memory_limit, GiB(1));  // Retried with the booked amount.
  EXPECT_EQ(platform_->stats().oom_kills, 1u);
  EXPECT_EQ(platform_->stats().retries, 1u);
}

TEST_F(PlatformTest, MonitorRescueAvoidsOomKill) {
  struct RescueHooks : PlatformHooks {
    Sizing SizeInvocation(const FunctionConfig&, const std::vector<InputObject>&,
                          const std::vector<double>&) override {
      return Sizing{MiB(64), false};
    }
    bool TryRaiseMemory(int, Bytes, Bytes, SimDuration expected_compute) override {
      // §5.3.1: rescue only long-running invocations.
      return expected_compute >= Seconds(3);
    }
  } hooks;
  MakePlatform({}, &hooks);
  // Long compute: 100 ms/decoded-MB over a ~45 MB raster -> > 3 s.
  FunctionConfig config;
  config.spec = TinySpec("slow", /*base_mem_mb=*/100, /*compute_us_per_mb=*/100000);
  config.booked_memory = GiB(1);
  ASSERT_TRUE(platform_->RegisterFunction(config).ok());

  rsds_.Seed("in/obj", MiB(2), {});
  InvocationRecord record;
  platform_->Invoke("slow", {InputObject{"in/obj", TinyImage(MiB(2), 4000)}}, {},
                    [&](const InvocationRecord& r) { record = r; });
  loop_.Run();
  EXPECT_FALSE(record.failed);
  EXPECT_FALSE(record.oom_killed);
  EXPECT_TRUE(record.oom_rescued);
  EXPECT_EQ(record.retries, 0);
  EXPECT_GE(record.memory_limit, record.memory_used);
  EXPECT_EQ(platform_->stats().oom_rescues, 1u);
}

TEST_F(PlatformTest, CapacityPressureReclaimsIdleSandboxes) {
  PlatformOptions options;
  options.num_workers = 1;
  options.worker_memory = GiB(1);
  MakePlatform(options);
  RegisterTiny("a", MiB(512));
  FunctionConfig config;
  config.spec = TinySpec("b");
  config.booked_memory = MiB(768);
  ASSERT_TRUE(platform_->RegisterFunction(config).ok());

  (void)InvokeSync("a");  // Leaves one idle 512 MiB sandbox.
  const InvocationRecord record = InvokeSync("b");  // Needs 768 MiB: must reclaim.
  EXPECT_FALSE(record.failed);
  EXPECT_EQ(platform_->stats().sandbox_reclaims, 1u);
  EXPECT_EQ(platform_->NumIdleSandboxes("a"), 0u);
}

TEST_F(PlatformTest, HooksObserveSandboxMemoryChanges) {
  struct TrackingHooks : PlatformHooks {
    void OnSandboxMemoryChange(const SandboxMemoryEvent& event) override {
      delta += event.new_limit - event.old_limit;
      booked = event.booked;
      ++events;
    }
    Bytes delta = 0;
    Bytes booked = 0;
    int events = 0;
  } hooks;
  MakePlatform({}, &hooks);
  RegisterTiny("f", MiB(256));
  (void)InvokeSync("f");
  EXPECT_EQ(hooks.delta, MiB(256));  // Creation (default sizing = booked).
  EXPECT_EQ(hooks.booked, MiB(256));
  loop_.RunUntil(loop_.now() + Seconds(601));  // Keep-alive expiry.
  EXPECT_EQ(hooks.delta, 0);         // Destruction released it.
  EXPECT_GE(hooks.events, 2);
}

TEST_F(PlatformTest, PipelineRunsAllStages) {
  MakePlatform({});
  for (const char* name : {"s1", "s2", "s3"}) {
    FunctionConfig config;
    config.spec = TinySpec(name);
    config.spec.kind = workloads::InputKind::kText;
    config.booked_memory = MiB(256);
    ASSERT_TRUE(platform_->RegisterFunction(config).ok());
  }
  workloads::PipelineSpec pipeline;
  pipeline.name = "test_pipe";
  pipeline.input_kind = workloads::InputKind::kText;
  pipeline.stages = {{"s1", 0}, {"s2", 0}, {"s3", 1}};

  std::vector<InputObject> chunks;
  for (int c = 0; c < 4; ++c) {
    const std::string key = "in/chunk" + std::to_string(c);
    rsds_.Seed(key, KiB(256), {});
    workloads::MediaDescriptor media;
    media.kind = workloads::InputKind::kText;
    media.byte_size = KiB(256);
    chunks.push_back(InputObject{key, media});
  }
  PipelineRecord record;
  bool done = false;
  platform_->InvokePipeline(pipeline, chunks, [&](const PipelineRecord& r) {
    record = r;
    done = true;
  });
  loop_.Run();
  ASSERT_TRUE(done);
  EXPECT_FALSE(record.failed);
  // 4 fan-out tasks x 2 stages + 1 merge task.
  EXPECT_EQ(record.num_tasks, 9u);
  EXPECT_GT(record.extract_time, 0);
  EXPECT_GT(record.compute_time, 0);
  EXPECT_GT(record.load_time, 0);
  EXPECT_GT(record.total, 0);
}

TEST_F(PlatformTest, AggregateMediaSumsBytes) {
  std::vector<InputObject> inputs;
  inputs.push_back(InputObject{"a", TinyImage(KiB(100))});
  inputs.push_back(InputObject{"b", TinyImage(KiB(200))});
  const auto media = Platform::AggregateMedia(inputs);
  EXPECT_EQ(media.byte_size, KiB(300));
  EXPECT_EQ(Platform::AggregateMedia({}).byte_size, KiB(1));
}

TEST_F(PlatformTest, WorkerCrashRetriesInFlightInvocations) {
  PlatformOptions options;
  options.num_workers = 2;
  MakePlatform(options);
  // Slow compute so the crash lands mid-transform.
  FunctionConfig config;
  config.spec = TinySpec("slow", 100, /*compute_us_per_mb=*/200000);
  config.booked_memory = GiB(1);
  ASSERT_TRUE(platform_->RegisterFunction(config).ok());

  rsds_.Seed("in/obj", MiB(1), {});
  InvocationRecord record;
  bool done = false;
  platform_->Invoke("slow", {InputObject{"in/obj", TinyImage(MiB(1), 3000)}}, {},
                    [&](const InvocationRecord& r) {
                      record = r;
                      done = true;
                    });
  // Let it get into the transform phase, then crash its worker.
  loop_.RunUntil(loop_.now() + Millis(400));
  ASSERT_FALSE(done);
  int victim = -1;
  for (int w = 0; w < 2; ++w) {
    if (platform_->NumSandboxes(w) > 0) {
      victim = w;
    }
  }
  ASSERT_GE(victim, 0);
  platform_->CrashWorker(victim);
  EXPECT_FALSE(platform_->WorkerAlive(victim));
  EXPECT_EQ(platform_->NumSandboxes(victim), 0u);

  while (!done && loop_.Step()) {
  }
  ASSERT_TRUE(done);
  EXPECT_FALSE(record.failed);  // Retried on the surviving worker.
  EXPECT_NE(record.worker, victim);
  EXPECT_GE(record.retries, 1);
  EXPECT_EQ(platform_->stats().worker_crashes, 1u);
  EXPECT_EQ(platform_->stats().crash_retries, 1u);
  // Exactly one completion (no stale double-fire from the dead execution).
  loop_.RunUntil(loop_.now() + Seconds(30));
  EXPECT_EQ(platform_->stats().failed_invocations, 0u);
}

TEST_F(PlatformTest, CrashedWorkerReceivesNoPlacements) {
  PlatformOptions options;
  options.num_workers = 2;
  MakePlatform(options);
  RegisterTiny("f");
  platform_->CrashWorker(0);
  for (int i = 0; i < 4; ++i) {
    const InvocationRecord record = InvokeSync("f");
    EXPECT_FALSE(record.failed);
    EXPECT_EQ(record.worker, 1);
  }
  platform_->RestoreWorker(0);
  EXPECT_TRUE(platform_->WorkerAlive(0));
}

TEST_F(PlatformTest, CrashReleasesReservations) {
  PlatformOptions options;
  options.num_workers = 1;
  MakePlatform(options);
  RegisterTiny("f", MiB(512));
  (void)InvokeSync("f");
  ASSERT_EQ(platform_->SandboxReserved(0), MiB(512));
  platform_->CrashWorker(0);
  EXPECT_EQ(platform_->SandboxReserved(0), 0);
}

TEST_F(PlatformTest, DispatchOverheadAppliesToWarmStart) {
  PlatformOptions options;
  options.dispatch_overhead = Millis(8);
  options.cold_start = Millis(180);
  MakePlatform(options);
  RegisterTiny("f");
  const InvocationRecord cold = InvokeSync("f");
  EXPECT_EQ(cold.startup_time, Millis(188));
  const InvocationRecord warm = InvokeSync("f");
  EXPECT_EQ(warm.startup_time, Millis(8));
}

// ---- Overload protection ------------------------------------------------------

TEST_F(PlatformTest, QueueDepthLimitShedsWithResourceExhausted) {
  PlatformOptions options;
  options.num_workers = 1;
  options.worker_memory = MiB(512);  // Exactly one 512 MiB-booked sandbox fits.
  options.max_queue_depth = 1;
  MakePlatform(options);
  RegisterTiny("f");
  rsds_.Seed("in/obj", KiB(64), {});

  std::vector<InvocationRecord> records;
  for (int i = 0; i < 3; ++i) {
    platform_->Invoke("f", {InputObject{"in/obj", TinyImage()}}, {},
                      [&records](const InvocationRecord& r) { records.push_back(r); });
  }
  // The first runs, the second queues; the third finds the queue full and is
  // shed synchronously-exactly-once, before either of the others completes.
  while (records.size() < 3 && loop_.Step()) {
  }
  ASSERT_EQ(records.size(), 3u);
  const InvocationRecord& shed = records.front();  // Shed completes first.
  EXPECT_TRUE(shed.shed);
  EXPECT_TRUE(shed.failed);
  EXPECT_EQ(shed.final_status, StatusCode::kResourceExhausted);
  int shed_count = 0;
  int succeeded = 0;
  for (const InvocationRecord& r : records) {
    shed_count += r.shed ? 1 : 0;
    succeeded += r.failed ? 0 : 1;
  }
  EXPECT_EQ(shed_count, 1);
  EXPECT_EQ(succeeded, 2);  // The queued request still ran to completion.
  EXPECT_EQ(platform_->stats().shed_requests, 1u);
  EXPECT_EQ(platform_->metrics().CounterValue("ofc.overload.shed", "queue_full"), 1u);
}

TEST_F(PlatformTest, QueueDeadlineShedsLongWaiters) {
  PlatformOptions options;
  options.num_workers = 1;
  options.worker_memory = MiB(512);
  options.queue_deadline = Millis(50);  // Far below the 180 ms cold start.
  MakePlatform(options);
  RegisterTiny("f");
  rsds_.Seed("in/obj", KiB(64), {});

  std::vector<InvocationRecord> records;
  for (int i = 0; i < 2; ++i) {
    platform_->Invoke("f", {InputObject{"in/obj", TinyImage()}}, {},
                      [&records](const InvocationRecord& r) { records.push_back(r); });
  }
  const SimTime start = loop_.now();
  while (records.size() < 2 && loop_.Step()) {
  }
  ASSERT_EQ(records.size(), 2u);
  const InvocationRecord& shed = records.front();
  EXPECT_TRUE(shed.shed);
  EXPECT_EQ(shed.final_status, StatusCode::kResourceExhausted);
  // The shed fires at the deadline, not when the running invocation finishes.
  EXPECT_EQ(shed.total, Millis(50));
  EXPECT_FALSE(records.back().failed);
  EXPECT_EQ(platform_->metrics().CounterValue("ofc.overload.shed", "deadline"), 1u);
  // Queue residence never exceeds the deadline.
  const obs::Series* wait = platform_->metrics().FindSeries("ofc.platform.queue_wait_ms");
  ASSERT_NE(wait, nullptr);
  EXPECT_LE(wait->running().max(), ToMillis(options.queue_deadline));
  (void)start;
}

TEST_F(PlatformTest, ConcurrencyLimitQueuesWithoutShedding) {
  PlatformOptions options;
  options.max_concurrency_per_function = 1;  // Plenty of memory and workers.
  MakePlatform(options);
  RegisterTiny("f");
  rsds_.Seed("in/obj", KiB(64), {});

  std::vector<InvocationRecord> records;
  for (int i = 0; i < 3; ++i) {
    platform_->Invoke("f", {InputObject{"in/obj", TinyImage()}}, {},
                      [&records](const InvocationRecord& r) { records.push_back(r); });
  }
  while (records.size() < 3 && loop_.Step()) {
  }
  ASSERT_EQ(records.size(), 3u);
  for (const InvocationRecord& r : records) {
    EXPECT_FALSE(r.failed);
    EXPECT_FALSE(r.shed);
  }
  EXPECT_EQ(platform_->stats().shed_requests, 0u);
  EXPECT_GE(platform_->stats().queued_requests, 2u);
}

TEST_F(PlatformTest, TenantConcurrencyLimitSpansFunctions) {
  PlatformOptions options;
  options.max_concurrency_per_tenant = 1;
  MakePlatform(options);
  RegisterTiny("f1");
  RegisterTiny("f2");  // Same default tenant as f1.
  rsds_.Seed("in/obj", KiB(64), {});

  std::vector<InvocationRecord> records;
  for (const char* fn : {"f1", "f2"}) {
    platform_->Invoke(fn, {InputObject{"in/obj", TinyImage()}}, {},
                      [&records](const InvocationRecord& r) { records.push_back(r); });
  }
  while (records.size() < 2 && loop_.Step()) {
  }
  ASSERT_EQ(records.size(), 2u);
  EXPECT_FALSE(records[0].failed);
  EXPECT_FALSE(records[1].failed);
  // The second function queued behind the tenant cap despite free capacity.
  EXPECT_GE(platform_->stats().queued_requests, 1u);
}

TEST_F(PlatformTest, OomReleaseReprobesWaitQueue) {
  // Regression: a queued request whose function had no live sandboxes used to
  // wait out the whole OOM-retry window, because the OOM path released its
  // sandbox without re-probing the wait queue. With the ReleaseSandbox drain,
  // the waiter reclaims the idle sandbox the moment the OOM kill releases it —
  // before the killed invocation's retry fires — so it must finish first.
  struct UnderpredictA : PlatformHooks {
    Sizing SizeInvocation(const FunctionConfig& fn, const std::vector<InputObject>&,
                          const std::vector<double>&) override {
      if (fn.spec.name == "a" && calls++ == 0) {
        return Sizing{MiB(64), false};  // Forces an OOM kill on a's first run.
      }
      return Sizing{fn.booked_memory, false};
    }
    int calls = 0;
  } hooks;
  PlatformOptions options;
  options.num_workers = 1;
  options.worker_memory = MiB(512);
  MakePlatform(options, &hooks);
  RegisterTiny("a");
  RegisterTiny("b");
  rsds_.Seed("in/obj", MiB(1), {});

  std::vector<std::string> completion_order;
  InvocationRecord record_a;
  InvocationRecord record_b;
  platform_->Invoke("a", {InputObject{"in/obj", TinyImage(MiB(1))}}, {},
                    [&](const InvocationRecord& r) {
                      record_a = r;
                      completion_order.push_back("a");
                    });
  platform_->Invoke("b", {InputObject{"in/obj", TinyImage(MiB(1))}}, {},
                    [&](const InvocationRecord& r) {
                      record_b = r;
                      completion_order.push_back("b");
                    });
  while (completion_order.size() < 2 && loop_.Step()) {
  }
  ASSERT_EQ(completion_order.size(), 2u);
  EXPECT_TRUE(record_a.oom_killed);
  EXPECT_FALSE(record_a.failed);
  EXPECT_FALSE(record_b.failed);
  EXPECT_EQ(completion_order.front(), "b");
}

TEST_F(PlatformTest, QueuedRequestDispatchesAfterWorkerRestore) {
  PlatformOptions options;
  options.num_workers = 1;
  MakePlatform(options);
  RegisterTiny("f");
  rsds_.Seed("in/obj", KiB(64), {});

  platform_->CrashWorker(0);
  InvocationRecord record;
  bool done = false;
  platform_->Invoke("f", {InputObject{"in/obj", TinyImage()}}, {},
                    [&](const InvocationRecord& r) {
                      record = r;
                      done = true;
                    });
  loop_.RunUntil(loop_.now() + Seconds(5));
  EXPECT_FALSE(done);  // Nowhere to run: the request waits (unbounded queue).
  platform_->RestoreWorker(0);
  while (!done && loop_.Step()) {
  }
  EXPECT_TRUE(done);
  EXPECT_FALSE(record.failed);
}

}  // namespace
}  // namespace ofc::faas
