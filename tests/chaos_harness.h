// Chaos harness: runs a Poisson invocation workload against the full OFC stack
// (platform + proxy + cache + RSDS) while a fault::FaultInjector replays a
// FaultPlan, then audits the end state against six invariants:
//
//   I1 — no acknowledged write is lost: every successful invocation's output
//        object is present, fully persisted, and has the acknowledged size;
//   I2 — cache and store converge once persistors drain: no dirty cached
//        object remains, and no shadow survives except for writes the platform
//        reported as failed (an unacknowledged write may leave a placeholder);
//   I3 — every invocation completes exactly once (crash re-dispatch must
//        neither drop nor duplicate completions);
//   I4 — recovery re-establishes the replication factor: every cached object
//        has an alive master and min(rf, alive-1) distinct alive backups;
//   I5 — overload resolves explicitly: every submission is either completed or
//        shed with kResourceExhausted (never parked forever), and no request
//        waits in the queue past its configured deadline;
//   I6 — no corrupt payload is ever acked: the proxy's corrupt-acked tripwire
//        stays at zero, and (when the scrubber runs) every surviving cache
//        copy and store object verifies against its expected checksum after
//        the drain — injected corruption was detected and repaired.
//
// Everything is deterministic: (seed, options, plan) fully determine the run,
// so ChaosReport::Fingerprint() must be byte-identical across replays.
#ifndef OFC_TESTS_CHAOS_HARNESS_H_
#define OFC_TESTS_CHAOS_HARNESS_H_

#include <algorithm>
#include <cstdint>
#include <map>
#include <memory>
#include <set>
#include <sstream>
#include <string>
#include <vector>

#include "src/common/checksum.h"
#include "src/common/rng.h"
#include "src/core/scrubber.h"
#include "src/faas/direct_data_service.h"
#include "src/faas/platform.h"
#include "src/faasload/environment.h"
#include "src/fault/fault_injector.h"
#include "src/fault/fault_plan.h"
#include "src/obs/slo.h"
#include "src/obs/timeline.h"
#include "src/sim/periodic.h"
#include "src/workloads/functions.h"
#include "src/workloads/media.h"

namespace ofc::chaos {

struct ChaosScenarioOptions {
  std::uint64_t seed = 1;
  int num_workers = 3;        // Also the RAMCloud cluster size in kOfc.
  int num_objects = 6;        // Seeded input objects.
  int num_invocations = 30;   // Poisson arrivals over the fault horizon.
  double mean_interval_s = 5.0;
  std::string function = "wand_sepia";
  Bytes input_bytes = KiB(256);
  SimTime fault_horizon = Minutes(5);  // Faults and arrivals land before this.
  SimDuration drain = Minutes(10);     // Post-quiesce persistor drain budget.
  fault::FaultPlan plan;

  // ---- Overload scenario knobs (all default off = legacy behaviour) ----------
  std::size_t queue_limit = 0;           // Platform wait-queue depth bound.
  SimDuration queue_deadline = 0;        // Shed-if-queued-longer-than deadline.
  int max_concurrency_per_function = 0;  // Per-function running-invocation cap.
  int breaker_threshold = 0;             // Proxy cache breaker (0 = disabled).
  SimDuration breaker_open = Seconds(10);
  int breaker_probes = 2;
  SimDuration breaker_latency_slo = 0;
  // Baseline mode for breaker-bypass comparisons: the OFC stack runs but no
  // object is cacheable, so every read/write goes straight to the RSDS.
  bool disable_cache = false;
  // Cache eviction/sweep policy spec (src/core/cache_policy.h); the invariants
  // must hold no matter which policy picks eviction victims.
  std::string cache_policy = "lru";
  // Arrival burst: `burst_count` extra invocations land back-to-back starting
  // at `burst_at` (1 ms apart), on top of the Poisson arrivals.
  int burst_count = 0;
  SimTime burst_at = Seconds(60);

  // ---- Integrity knobs (all default off = legacy behaviour) ------------------
  // Background scrubber sweeping cluster + store copies; 0 = no scrubber. It
  // runs through the drain window, so injected corruption must be repaired by
  // the time the I6 end-state sweep runs.
  SimDuration scrub_interval = 0;
  int scrub_objects_per_cycle = 64;
  int scrub_quarantine_threshold = 8;  // Corrupt copies per node before drain.

  // ---- Observability knobs (all default off = legacy behaviour) --------------
  // Black-box ring recording every causal lifecycle event of the run.
  bool flight_recorder = false;
  std::size_t flight_capacity = 4096;
  // When any invariant violates, dump the flight ring here (the violation
  // summary becomes the dump reason) — post-mortem triage for chaos failures.
  std::string dump_on_violation;
  // Windowed telemetry scrapes; on when `timeline` is set or SLOs are declared.
  bool timeline = false;
  SimDuration scrape_interval = Seconds(10);
  std::vector<obs::SloSpec> slos;
};

struct ChaosReport {
  int scheduled = 0;
  int completed = 0;
  int succeeded = 0;
  int failed = 0;   // Includes shed requests (they complete as failures).
  int shed = 0;     // Rejected by overload protection with kResourceExhausted.
  // Mean extract+load latency (ms) over successful invocations — the data-path
  // cost a breaker-bypass run is compared against the no-cache baseline on.
  double mean_el_ms = 0.0;
  std::vector<std::string> violations;
  std::string metrics_json;
  std::string timeline_json;  // Empty unless timeline/SLO scraping was on.
  std::string health_json;    // Empty unless scraping was on.
  std::string flight_json;    // Empty unless the flight recorder was on.
  std::uint64_t slo_alerts_fired = 0;
  double worst_burn = 0.0;
  // Timeline bracketing for acceptance audits: start of the first and end of
  // the last retained window whose shed / breaker-open counter delta was
  // nonzero (all 0 when scraping was off or the counter never moved). A
  // correct timeline localizes the fault: these windows must bracket the
  // injected fault/overload interval, not the whole run.
  SimTime shed_first_window_start = 0;
  SimTime shed_last_window_end = 0;
  SimTime breaker_first_window_start = 0;
  SimTime breaker_last_window_end = 0;
  // Selected fault-path counters (summed over labels), snapshotted before the
  // environment is torn down so tests can assert on them.
  std::map<std::string, std::uint64_t> counters;
  SimTime final_time = 0;
  std::uint64_t events_scheduled = 0;

  bool ok() const { return violations.empty(); }
  std::uint64_t counter(const std::string& name) const {
    auto it = counters.find(name);
    return it == counters.end() ? 0 : it->second;
  }
  // Everything observable about the run; replays must match byte-for-byte.
  std::string Fingerprint() const {
    std::ostringstream out;
    out << scheduled << "/" << completed << "/" << succeeded << "/" << failed
        << "/" << shed << "@" << final_time << "#" << events_scheduled << "\n"
        << metrics_json << "\n"
        << timeline_json << "\n"
        << health_json << "\n"
        << flight_json;
    return out.str();
  }
  std::string ViolationSummary() const {
    std::ostringstream out;
    for (const std::string& v : violations) {
      out << v << "\n";
    }
    return out.str();
  }
};

// Runs one chaos scenario to quiescence and audits the six invariants.
inline ChaosReport RunChaosScenario(const ChaosScenarioOptions& options) {
  ChaosReport report;
  auto violate = [&report](const std::string& what) {
    report.violations.push_back(what);
  };

  faasload::EnvironmentOptions env_options;
  env_options.platform.num_workers = options.num_workers;
  env_options.platform.worker_memory = GiB(8);
  env_options.platform.max_queue_depth = options.queue_limit;
  env_options.platform.queue_deadline = options.queue_deadline;
  env_options.platform.max_concurrency_per_function = options.max_concurrency_per_function;
  env_options.ofc.proxy.breaker_failure_threshold = options.breaker_threshold;
  env_options.ofc.proxy.breaker_open_duration = options.breaker_open;
  env_options.ofc.proxy.breaker_half_open_probes = options.breaker_probes;
  env_options.ofc.proxy.breaker_latency_slo = options.breaker_latency_slo;
  if (options.disable_cache) {
    env_options.ofc.proxy.max_cacheable_size = 0;  // Everything bypasses cache.
  }
  env_options.ofc.cache_policy = options.cache_policy;
  env_options.seed = options.seed;
  faasload::Environment env(faasload::Mode::kOfc, env_options);
  if (options.flight_recorder) {
    env.flight().set_capacity(options.flight_capacity);
    env.flight().set_enabled(true);
  }
  // Post-mortem hook shared by every exit path (setup failures included):
  // preserve the causal chain that led up to the breach.
  auto finalize = [&]() -> ChaosReport& {
    if (!report.ok() && !options.dump_on_violation.empty() && options.flight_recorder) {
      (void)env.flight().WriteJson(options.dump_on_violation, report.ViolationSummary());
    }
    return report;
  };

  // ---- Telemetry scrape loop -------------------------------------------------
  const bool scraping = options.timeline || !options.slos.empty();
  std::unique_ptr<obs::SloMonitor> slo;
  std::unique_ptr<obs::TimelineRecorder> timeline;
  std::unique_ptr<sim::PeriodicTask> scraper;
  if (scraping) {
    slo = std::make_unique<obs::SloMonitor>(&env.metrics(), /*trace=*/nullptr, options.slos);
    timeline = std::make_unique<obs::TimelineRecorder>(&env.metrics());
    scraper = std::make_unique<sim::PeriodicTask>(
        &env.loop(), options.scrape_interval, [&slo, &timeline](SimTime now) {
          slo->Evaluate(now);
          timeline->Scrape(now);
        });
    scraper->Start();
  }

  // ---- Workload setup --------------------------------------------------------
  faas::FunctionConfig config;
  config.spec = *workloads::FindFunction(options.function);
  config.booked_memory = GiB(2);
  if (!env.platform().RegisterFunction(config).ok()) {
    violate("setup: RegisterFunction failed");
    return finalize();
  }
  Rng pretrain_rng(options.seed + 17);
  env.ofc()->trainer().Pretrain(config.spec, 1000, pretrain_rng);

  Rng rng(options.seed * 7919 + 1);
  workloads::MediaGenerator generator(rng.Fork());
  std::vector<faas::InputObject> inputs;
  for (int i = 0; i < options.num_objects; ++i) {
    const auto media =
        generator.GenerateWithByteSize(workloads::InputKind::kImage, options.input_bytes);
    const std::string key = "in/" + std::to_string(i);
    env.rsds().Seed(key, media.byte_size, faas::MediaToTags(media));
    inputs.push_back(faas::InputObject{key, media});
  }

  // ---- Fault plan ------------------------------------------------------------
  fault::FaultInjector injector(
      &env.loop(),
      fault::FaultInjectorTargets{&env.platform(), env.cluster(), &env.rsds(),
                                  &env.ofc()->proxy()},
      fault::FaultInjectorOptions{&env.metrics(), &env.trace(), &env.flight()});
  if (Status plan_status = injector.Schedule(options.plan); !plan_status.ok()) {
    violate("setup: fault plan rejected: " + plan_status.message());
    return finalize();
  }
  SimTime quiesce_at = options.fault_horizon;
  for (const fault::FaultEvent& event : options.plan.events) {
    quiesce_at = std::max(quiesce_at, event.at + event.duration);
  }

  // ---- Background scrubber ---------------------------------------------------
  std::unique_ptr<core::Scrubber> scrubber;
  if (options.scrub_interval > 0) {
    core::ScrubberOptions scrub_options;
    scrub_options.interval = options.scrub_interval;
    scrub_options.objects_per_cycle = options.scrub_objects_per_cycle;
    scrub_options.quarantine_threshold = options.scrub_quarantine_threshold;
    scrub_options.metrics = &env.metrics();
    scrubber = std::make_unique<core::Scrubber>(&env.loop(), env.cluster(), &env.rsds(),
                                                scrub_options);
    scrubber->Start();
  }

  // ---- Poisson arrivals + optional burst -------------------------------------
  const int total_invocations = options.num_invocations + options.burst_count;
  std::vector<faas::InvocationRecord> records(
      static_cast<std::size_t>(total_invocations));
  std::vector<int> completions(static_cast<std::size_t>(total_invocations), 0);
  const auto submit_at = [&](SimTime at, std::size_t slot,
                             const faas::InputObject& input) {
    env.loop().ScheduleAt(at, [&env, &records, &completions, &report, input,
                               slot, function = options.function] {
      ++report.scheduled;
      env.platform().Invoke(function, {input}, {0.5},
                            [&records, &completions, &report,
                             slot](const faas::InvocationRecord& r) {
                              records[slot] = r;
                              if (++completions[slot] == 1) {
                                ++report.completed;
                                if (r.failed) {
                                  ++report.failed;
                                } else {
                                  ++report.succeeded;
                                }
                              }
                            });
    });
  };
  SimTime arrival = 0;
  for (int i = 0; i < options.num_invocations; ++i) {
    const double gap_us = rng.Exponential(options.mean_interval_s * 1e6);
    arrival += static_cast<SimDuration>(gap_us);
    submit_at(arrival, static_cast<std::size_t>(i), inputs[rng.Index(inputs.size())]);
  }
  quiesce_at = std::max(quiesce_at, arrival);
  for (int i = 0; i < options.burst_count; ++i) {
    const SimTime at = options.burst_at + i * Millis(1);
    submit_at(at, static_cast<std::size_t>(options.num_invocations + i),
              inputs[rng.Index(inputs.size())]);
    quiesce_at = std::max(quiesce_at, at);
  }

  // ---- Drive to quiescence ---------------------------------------------------
  const SimTime work_deadline = quiesce_at + options.drain;
  while (report.completed < total_invocations &&
         env.loop().now() < work_deadline && env.loop().Step()) {
  }
  // All faults have healed by quiesce_at; give persistor retries a full drain
  // window beyond whatever point the workload finished at.
  env.loop().RunUntil(std::max(env.loop().now(), quiesce_at) + options.drain);
  if (scraper != nullptr) {
    scraper->Stop();
    // Final partial window covering the tail of the drain.
    slo->Evaluate(env.loop().now());
    timeline->Scrape(env.loop().now());
  }
  if (scrubber != nullptr) {
    scrubber->Stop();
  }

  // ---- I3: exactly-once completion -------------------------------------------
  if (report.completed != total_invocations) {
    violate("I3: " + std::to_string(total_invocations - report.completed) +
            " invocations never completed");
  }
  for (std::size_t i = 0; i < completions.size(); ++i) {
    if (completions[i] > 1) {
      violate("I3: invocation slot " + std::to_string(i) + " completed " +
              std::to_string(completions[i]) + " times");
    }
  }

  // ---- I1: no acknowledged write lost ----------------------------------------
  std::set<std::string> failed_keys;
  for (const faas::InvocationRecord& record : records) {
    if (record.id == 0) {
      continue;  // Never completed (already an I3 violation).
    }
    if (record.failed) {
      if (!record.output_key.empty()) {
        failed_keys.insert(record.output_key);
      }
      continue;
    }
    const auto meta = env.rsds().Stat(record.output_key);
    if (!meta.ok()) {
      violate("I1: acknowledged output " + record.output_key + " missing from RSDS");
      continue;
    }
    if (meta->IsShadow()) {
      violate("I1: acknowledged output " + record.output_key +
              " still a shadow after drain");
    } else if (meta->size != record.output_bytes) {
      violate("I1: output " + record.output_key + " has size " +
              std::to_string(meta->size) + ", acknowledged " +
              std::to_string(record.output_bytes));
    }
  }

  // ---- I2: cache/store convergence -------------------------------------------
  rc::Cluster* cluster = env.cluster();
  for (int node = 0; node < cluster->num_nodes(); ++node) {
    for (const std::string& key : cluster->KeysOn(node)) {
      const auto obj = cluster->Inspect(key);
      if (obj.ok() && obj->dirty) {
        violate("I2: cached object " + key + " still dirty after drain");
      }
    }
  }
  for (const std::string& key : env.rsds().Keys()) {
    const auto meta = env.rsds().Stat(key);
    if (meta.ok() && meta->IsShadow() && !failed_keys.contains(key)) {
      violate("I2: shadow " + key + " survived drain without a failed write");
    }
  }

  // ---- I4: replication factor re-established ---------------------------------
  const int alive = cluster->AliveNodes();
  const int want_backups =
      std::min(cluster->options().replication_factor, std::max(alive - 1, 0));
  for (int node = 0; node < cluster->num_nodes(); ++node) {
    for (const std::string& key : cluster->KeysOn(node)) {
      const auto obj = cluster->Inspect(key);
      if (!obj.ok()) {
        continue;
      }
      if (!cluster->Alive(obj->master)) {
        violate("I4: object " + key + " mastered on dead node " +
                std::to_string(obj->master));
      }
      std::set<int> backups(obj->backups.begin(), obj->backups.end());
      if (backups.size() != obj->backups.size() || backups.contains(obj->master)) {
        violate("I4: object " + key + " has duplicate or self-referential backups");
      }
      for (int backup : obj->backups) {
        if (!cluster->Alive(backup)) {
          violate("I4: object " + key + " has backup on dead node " +
                  std::to_string(backup));
        }
      }
      if (static_cast<int>(obj->backups.size()) < want_backups) {
        violate("I4: object " + key + " under-replicated: " +
                std::to_string(obj->backups.size()) + " < " +
                std::to_string(want_backups));
      }
    }
  }

  // ---- I5: overload resolves explicitly --------------------------------------
  for (std::size_t i = 0; i < records.size(); ++i) {
    const faas::InvocationRecord& record = records[i];
    if (record.id == 0) {
      continue;  // Never completed (already an I3 violation).
    }
    if (record.shed) {
      ++report.shed;
      if (!record.failed || record.final_status != StatusCode::kResourceExhausted) {
        violate("I5: shed invocation slot " + std::to_string(i) +
                " lacks the kResourceExhausted disposition");
      }
    } else if (record.failed && record.final_status == StatusCode::kOk) {
      violate("I5: failed invocation slot " + std::to_string(i) +
              " reports final status kOk");
    } else if (!record.failed && record.final_status != StatusCode::kOk) {
      violate("I5: successful invocation slot " + std::to_string(i) +
              " reports a non-kOk final status");
    }
  }
  if (options.queue_deadline > 0) {
    if (const obs::Series* wait =
            env.metrics().FindSeries("ofc.platform.queue_wait_ms");
        wait != nullptr && wait->count() > 0 &&
        wait->running().max() > ToMillis(options.queue_deadline)) {
      violate("I5: a request waited " + std::to_string(wait->running().max()) +
              " ms in the queue, past the " +
              std::to_string(ToMillis(options.queue_deadline)) + " ms deadline");
    }
  }

  // ---- I6: no corrupt payload ever acked -------------------------------------
  if (env.metrics().CounterTotal("ofc.integrity.corrupt_acked") > 0) {
    violate("I6: " +
            std::to_string(env.metrics().CounterTotal("ofc.integrity.corrupt_acked")) +
            " corrupt payloads were acked to functions");
  }
  if (options.scrub_interval > 0) {
    // End-state convergence sweep: with the scrubber running through the drain,
    // every injected corruption must have been found and repaired by now.
    for (int node = 0; node < cluster->num_nodes(); ++node) {
      for (const std::string& key : cluster->KeysOn(node)) {
        const auto obj = cluster->Inspect(key);
        if (!obj.ok()) {
          continue;
        }
        const Checksum expected = ExpectedChecksum(key, obj->size, obj->version);
        if (obj->checksum != expected) {
          violate("I6: cached object " + key + " master copy still corrupt after drain");
        }
        for (std::size_t b = 0; b < obj->backup_checksums.size(); ++b) {
          if (obj->backup_checksums[b] != expected) {
            violate("I6: cached object " + key + " backup copy on node " +
                    std::to_string(obj->backups[b]) + " still corrupt after drain");
          }
        }
      }
    }
    for (const std::string& key : env.rsds().Keys()) {
      const auto meta = env.rsds().Stat(key);
      if (meta.ok() &&
          meta->checksum != ExpectedChecksum(key, meta->size, meta->rsds_version)) {
        violate("I6: store object " + key + " still corrupt after drain");
      }
    }
  }

  // Mean extract+load over successes (breaker-bypass vs no-cache comparisons).
  double el_sum_ms = 0.0;
  int el_count = 0;
  for (const faas::InvocationRecord& record : records) {
    if (record.id != 0 && !record.failed) {
      el_sum_ms += ToMillis(record.extract_time + record.load_time);
      ++el_count;
    }
  }
  report.mean_el_ms = el_count > 0 ? el_sum_ms / el_count : 0.0;

  report.metrics_json = env.metrics().SnapshotJson(env.loop().now());
  for (const char* name :
       {"ofc.fault.injected", "ofc.fault.healed", "ofc.proxy.fallback_writes",
        "ofc.proxy.rsds_retries", "ofc.proxy.read_deadlines", "ofc.proxy.persistor_drops",
        "ofc.proxy.persistor_retries", "ofc.proxy.persistor_abandons",
        "ofc.platform.worker_crashes", "ofc.platform.worker_restores",
        "ofc.platform.crash_retries", "ofc.ramcloud.node_crashes",
        "ofc.ramcloud.node_restarts", "ofc.ramcloud.objects_recovered",
        "ofc.ramcloud.objects_lost", "ofc.store.unavailable_errors",
        "ofc.store.webhook_bypasses", "ofc.overload.shed",
        "ofc.overload.admission_deferred", "ofc.breaker.opens", "ofc.breaker.closes",
        "ofc.breaker.bypassed_reads", "ofc.breaker.bypassed_writes",
        "ofc.cache_agent.writebacks_throttled", "ofc.fault.objects_corrupted",
        "ofc.integrity.checksum_failures", "ofc.integrity.repairs",
        "ofc.integrity.read_data_loss", "ofc.integrity.corrupt_acked",
        "ofc.integrity.reread_from_rsds", "ofc.integrity.store_checksum_failures",
        "ofc.integrity.store_repairs", "ofc.ramcloud.nodes_quarantined",
        "ofc.scrub.cycles", "ofc.scrub.objects_scanned", "ofc.scrub.corruptions_found",
        "ofc.scrub.repairs", "ofc.scrub.quarantines"}) {
    report.counters[name] = env.metrics().CounterTotal(name);
  }
  if (timeline != nullptr) {
    report.timeline_json = timeline->ToJson();
    auto bracket = [&timeline](const std::string& family, SimTime* first_start,
                               SimTime* last_end) {
      for (const obs::TimelineWindow& window : timeline->windows()) {
        for (const obs::TimelineCounter& cell : window.counters) {
          if (cell.name == family && cell.delta > 0) {
            if (*last_end == 0) {
              *first_start = window.start;
            }
            *last_end = window.end;
            break;
          }
        }
      }
    };
    bracket("ofc.overload.shed", &report.shed_first_window_start,
            &report.shed_last_window_end);
    bracket("ofc.breaker.opens", &report.breaker_first_window_start,
            &report.breaker_last_window_end);
  }
  if (slo != nullptr) {
    report.health_json = slo->HealthJson(env.loop().now());
    report.slo_alerts_fired = slo->alerts_fired();
    report.worst_burn = slo->worst_burn();
  }
  if (options.flight_recorder) {
    report.flight_json = env.flight().ToJson("end_of_run");
  }
  report.final_time = env.loop().now();
  report.events_scheduled = env.loop().total_scheduled();
  return finalize();
}

}  // namespace ofc::chaos

#endif  // OFC_TESTS_CHAOS_HARNESS_H_
