// Unit tests for the FAASLOAD harness: environment factory, tenant setup,
// dataset preparation, booking profiles, arrival processes.
#include <gtest/gtest.h>

#include "src/faasload/environment.h"
#include "src/faasload/injector.h"

namespace ofc::faasload {
namespace {

EnvironmentOptions SmallEnv(std::uint64_t seed) {
  EnvironmentOptions options;
  options.platform.num_workers = 2;
  options.seed = seed;
  return options;
}

TEST(EnvironmentTest, ModeNames) {
  EXPECT_EQ(ModeName(Mode::kOwkSwift), "OWK-Swift");
  EXPECT_EQ(ModeName(Mode::kOwkRedis), "OWK-Redis");
  EXPECT_EQ(ModeName(Mode::kOfc), "OFC");
}

TEST(EnvironmentTest, RedisModeUsesFasterStore) {
  Environment swift(Mode::kOwkSwift, SmallEnv(1));
  Environment redis(Mode::kOwkRedis, SmallEnv(1));
  swift.rsds().Seed("x", MiB(1), {});
  redis.rsds().Seed("x", MiB(1), {});
  SimTime swift_done = 0;
  SimTime redis_done = 0;
  swift.rsds().Get("x", [&](Result<store::ObjectMetadata>) { swift_done = swift.loop().now(); });
  redis.rsds().Get("x", [&](Result<store::ObjectMetadata>) { redis_done = redis.loop().now(); });
  swift.loop().Run();
  redis.loop().Run();
  EXPECT_LT(redis_done, swift_done);
}

TEST(EnvironmentTest, ProfileOverrideApplies) {
  EnvironmentOptions options = SmallEnv(2);
  options.rsds_profile = store::StoreProfile::S3();
  Environment env(Mode::kOwkSwift, options);
  env.rsds().Seed("x", KiB(1), {});
  SimTime done = 0;
  env.rsds().Get("x", [&](Result<store::ObjectMetadata>) { done = env.loop().now(); });
  env.loop().Run();
  // S3 reads carry a ~28 ms base latency vs Swift's ~18 ms.
  EXPECT_GT(done, Millis(24));
}

TEST(InjectorTest, AddTenantRejectsUnknownFunction) {
  Environment env(Mode::kOwkSwift, SmallEnv(3));
  LoadInjector injector(&env, TenantProfile::kNormal, 4);
  TenantSpec spec;
  spec.name = "t";
  spec.function = "no_such_function";
  EXPECT_EQ(injector.AddTenant(spec).code(), StatusCode::kNotFound);
  spec.is_pipeline = true;
  spec.function = "no_such_pipeline";
  EXPECT_EQ(injector.AddTenant(spec).code(), StatusCode::kNotFound);
}

TEST(InjectorTest, DatasetIsSeededInRsds) {
  Environment env(Mode::kOwkSwift, SmallEnv(5));
  LoadInjector injector(&env, TenantProfile::kNormal, 6);
  TenantSpec spec;
  spec.name = "alice";
  spec.function = "wand_blur";
  spec.dataset_objects = 5;
  ASSERT_TRUE(injector.AddTenant(spec).ok());
  EXPECT_EQ(env.rsds().NumObjects(), 5u);
  for (int i = 0; i < 5; ++i) {
    EXPECT_TRUE(env.rsds().Exists("data/alice/obj" + std::to_string(i)));
  }
  EXPECT_NE(env.platform().GetFunction("wand_blur"), nullptr);
}

TEST(InjectorTest, ObjectSizeTargetIsRespected) {
  Environment env(Mode::kOwkSwift, SmallEnv(7));
  LoadInjector injector(&env, TenantProfile::kNormal, 8);
  TenantSpec spec;
  spec.name = "bob";
  spec.function = "wand_blur";
  spec.dataset_objects = 8;
  spec.object_size = KiB(256);
  ASSERT_TRUE(injector.AddTenant(spec).ok());
  for (int i = 0; i < 8; ++i) {
    const auto meta = env.rsds().Stat("data/bob/obj" + std::to_string(i));
    ASSERT_TRUE(meta.ok());
    EXPECT_GT(meta->size, KiB(128));
    EXPECT_LT(meta->size, KiB(512));
  }
}

TEST(InjectorTest, PipelineTenantSeedsChunksAndRegistersStages) {
  Environment env(Mode::kOwkSwift, SmallEnv(9));
  LoadInjector injector(&env, TenantProfile::kNormal, 10);
  TenantSpec spec;
  spec.name = "carol";
  spec.function = "map_reduce";
  spec.is_pipeline = true;
  spec.pipeline_input_size = MiB(5);
  ASSERT_TRUE(injector.AddTenant(spec).ok());
  EXPECT_EQ(env.rsds().NumObjects(), 10u);  // 5 MiB / 512 KiB chunks.
  EXPECT_NE(env.platform().GetFunction("mr_map"), nullptr);
  EXPECT_NE(env.platform().GetFunction("mr_reduce"), nullptr);
}

TEST(InjectorTest, FanInStagesGetLargerBookings) {
  // The reduce stage aggregates every map output, so a profile-aware booking
  // must exceed the map stage's for a large enough input.
  Environment env(Mode::kOwkSwift, SmallEnv(11));
  LoadInjector injector(&env, TenantProfile::kAdvanced, 12);
  TenantSpec spec;
  spec.name = "dave";
  spec.function = "map_reduce";
  spec.is_pipeline = true;
  spec.pipeline_input_size = MiB(30);
  ASSERT_TRUE(injector.AddTenant(spec).ok());
  const Bytes map_booked = env.platform().GetFunction("mr_map")->booked_memory;
  const Bytes reduce_booked = env.platform().GetFunction("mr_reduce")->booked_memory;
  EXPECT_GT(reduce_booked, map_booked / 2);
  EXPECT_GE(map_booked, MiB(64));  // Clamped up to OWK's minimum.
}

TEST(InjectorTest, NaiveProfileBooksPlatformMax) {
  Environment env(Mode::kOwkSwift, SmallEnv(13));
  LoadInjector injector(&env, TenantProfile::kNaive, 14);
  TenantSpec spec;
  spec.name = "erin";
  spec.function = "wand_sepia";
  ASSERT_TRUE(injector.AddTenant(spec).ok());
  EXPECT_EQ(env.platform().GetFunction("wand_sepia")->booked_memory,
            env.platform().options().max_sandbox_memory);
}

TEST(InjectorTest, PeriodicArrivalsAreRegular) {
  Environment env(Mode::kOwkSwift, SmallEnv(15));
  LoadInjector injector(&env, TenantProfile::kNormal, 16);
  TenantSpec spec;
  spec.name = "frank";
  spec.function = "wand_thumbnail";
  spec.mean_interval_s = 30.0;
  spec.arrivals = ArrivalPattern::kPeriodic;
  spec.dataset_objects = 1;
  spec.object_size = KiB(64);
  ASSERT_TRUE(injector.AddTenant(spec).ok());
  injector.Run(Minutes(5));
  // 300 s / 30 s = 10 invocations, minus edge effects.
  const auto& result = injector.results()[0];
  EXPECT_GE(result.invocations.size(), 9u);
  EXPECT_LE(result.invocations.size(), 10u);
}

TEST(InjectorTest, ExponentialArrivalCountIsPlausible) {
  Environment env(Mode::kOwkSwift, SmallEnv(17));
  LoadInjector injector(&env, TenantProfile::kNormal, 18);
  TenantSpec spec;
  spec.name = "grace";
  spec.function = "wand_thumbnail";
  spec.mean_interval_s = 10.0;
  spec.dataset_objects = 1;
  spec.object_size = KiB(64);
  ASSERT_TRUE(injector.AddTenant(spec).ok());
  injector.Run(Minutes(30));
  // Poisson with mean 180 arrivals: within +-40 % is a safe deterministic-seed
  // bound.
  const auto& result = injector.results()[0];
  EXPECT_GE(result.invocations.size(), 108u);
  EXPECT_LE(result.invocations.size(), 252u);
}

TEST(InjectorTest, BurstyArrivalsComeInTrains) {
  Environment env(Mode::kOwkSwift, SmallEnv(19));
  LoadInjector injector(&env, TenantProfile::kNormal, 20);
  TenantSpec spec;
  spec.name = "heidi";
  spec.function = "wand_thumbnail";
  spec.arrivals = ArrivalPattern::kBursty;
  spec.mean_interval_s = 120.0;
  spec.burst_size = 6;
  spec.burst_spacing_s = 1.0;
  spec.dataset_objects = 1;
  spec.object_size = KiB(64);
  ASSERT_TRUE(injector.AddTenant(spec).ok());
  injector.Run(Minutes(30));
  const auto& result = injector.results()[0];
  // Roughly 15 bursts x 6 invocations.
  EXPECT_GE(result.invocations.size(), 30u);
  // Bursts mean multiples of burst_size cluster in time: verify the total is
  // consistent with whole trains (within edge-of-horizon truncation).
  EXPECT_LE(result.invocations.size() % 6, 5u);
}

TEST(TenantResultTest, AggregationHelpers) {
  TenantResult result;
  result.name = "t";
  faas::InvocationRecord a;
  a.total = Seconds(2);
  faas::InvocationRecord b;
  b.total = Seconds(3);
  b.failed = true;
  result.invocations = {a, b};
  faas::PipelineRecord p;
  p.total = Seconds(5);
  result.pipelines = {p};
  EXPECT_EQ(result.TotalExecutionTime(), Seconds(10));
  EXPECT_EQ(result.FailureCount(), 1u);
}

}  // namespace
}  // namespace ofc::faasload
