// Cache policy subsystem tests (src/core/cache_policy.h, DESIGN.md §14):
// spec parsing, per-policy victim ordering and cold tests, engine accounting
// and per-function routing, same-seed byte-identical replays for every
// policy, default-vs-explicit-lru equivalence, and a crash+corruption chaos
// scenario under gdsf proving the I1–I6 invariants hold no matter which
// policy picks eviction victims.
#include <memory>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/core/cache_policy.h"
#include "src/faasload/environment.h"
#include "src/faasload/injector.h"
#include "src/obs/metrics.h"
#include "tests/chaos_harness.h"

namespace ofc {
namespace {

using core::CachePolicyEngine;
using core::CachePolicyEngineOptions;
using core::CachePolicySpec;
using core::EvictionReason;
using core::KnownCachePolicies;
using core::ParseCachePolicySpec;

// ---- Spec parsing ----------------------------------------------------------------

TEST(CachePolicySpecTest, EmptySpecIsThePaperDefault) {
  const auto spec = ParseCachePolicySpec("");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->default_policy, "lru");
  EXPECT_TRUE(spec->per_function.empty());
}

TEST(CachePolicySpecTest, EveryKnownPolicyParsesAlone) {
  for (const std::string& name : KnownCachePolicies()) {
    const auto spec = ParseCachePolicySpec(name);
    ASSERT_TRUE(spec.ok()) << name;
    EXPECT_EQ(spec->default_policy, name);
  }
  EXPECT_EQ(KnownCachePolicies().size(), 4u);
}

TEST(CachePolicySpecTest, PerFunctionOverrides) {
  const auto spec = ParseCachePolicySpec("gdsf,wand_blur=lru,map_reduce=cost-aware");
  ASSERT_TRUE(spec.ok());
  EXPECT_EQ(spec->default_policy, "gdsf");
  ASSERT_EQ(spec->per_function.size(), 2u);
  EXPECT_EQ(spec->per_function[0].first, "wand_blur");
  EXPECT_EQ(spec->per_function[0].second, "lru");
  EXPECT_EQ(spec->per_function[1].first, "map_reduce");
  EXPECT_EQ(spec->per_function[1].second, "cost-aware");
}

TEST(CachePolicySpecTest, RejectsUnknownNamesAndMalformedOverrides) {
  EXPECT_FALSE(ParseCachePolicySpec("mru").ok());
  EXPECT_FALSE(ParseCachePolicySpec("lru,wand_blur=arc").ok());
  EXPECT_FALSE(ParseCachePolicySpec("lru,wand_blur").ok());      // No '='.
  EXPECT_FALSE(ParseCachePolicySpec("lru,=gdsf").ok());          // Empty function.
  EXPECT_FALSE(ParseCachePolicySpec("lru,wand_blur=").ok());     // Empty policy.
  EXPECT_FALSE(ParseCachePolicySpec("wand_blur=lru").ok());      // Override first.
}

// ---- Engine construction ---------------------------------------------------------

std::unique_ptr<CachePolicyEngine> MakeEngine(const std::string& spec,
                                              obs::MetricsRegistry* metrics = nullptr,
                                              core::BenefitFn benefit = nullptr) {
  CachePolicyEngineOptions options;
  options.metrics = metrics;
  options.benefit = std::move(benefit);
  auto engine = CachePolicyEngine::Create(spec, std::move(options));
  EXPECT_TRUE(engine.ok()) << spec;
  return std::move(*engine);
}

TEST(CachePolicyEngineTest, CreateRejectsInvalidSpecs) {
  EXPECT_FALSE(CachePolicyEngine::Create("mru", {}).ok());
  EXPECT_FALSE(CachePolicyEngine::Create("lru,f=", {}).ok());
}

TEST(CachePolicyEngineTest, ReportsSpecAndMode) {
  const auto single = MakeEngine("gdsf");
  EXPECT_STREQ(single->default_policy_name(), "gdsf");
  EXPECT_TRUE(single->single_policy());
  const auto mixed = MakeEngine("gdsf,wand_blur=lru");
  EXPECT_FALSE(mixed->single_policy());
  EXPECT_EQ(mixed->spec(), "gdsf,wand_blur=lru");
}

// ---- Victim ordering & cold tests ------------------------------------------------

rc::CachedObject Obj(const std::string& key, Bytes size, std::uint32_t accesses,
                     SimTime last_access) {
  rc::CachedObject obj;
  obj.key = key;
  obj.size = size;
  obj.access_count = accesses;
  obj.last_access = last_access;
  return obj;
}

TEST(CachePolicyEngineTest, LruRanksByLastAccess) {
  const auto engine = MakeEngine("lru");
  std::vector<rc::CachedObject> candidates = {
      Obj("c", MiB(1), 50, Minutes(9)),
      Obj("a", MiB(1), 1, Minutes(1)),
      Obj("b", MiB(1), 99, Minutes(5)),
  };
  engine->RankEvictionCandidates(&candidates, Minutes(10));
  EXPECT_EQ(candidates[0].key, "a");  // Oldest access goes first...
  EXPECT_EQ(candidates[1].key, "b");
  EXPECT_EQ(candidates[2].key, "c");  // ...regardless of frequency or size.
}

TEST(CachePolicyEngineTest, LruSweepMatchesThePaperThresholds) {
  const auto engine = MakeEngine("lru");
  const SimTime now = Minutes(60);
  // Hot and recent: kept. Cold count: swept. Long idle: swept.
  EXPECT_FALSE(engine->SweepCold(Obj("hot", MiB(1), 9, now - Minutes(5)), now));
  EXPECT_TRUE(engine->SweepCold(Obj("rare", MiB(1), 4, now - Minutes(5)), now));
  EXPECT_TRUE(engine->SweepCold(Obj("idle", MiB(1), 9, now - Minutes(31)), now));
}

TEST(CachePolicyEngineTest, GdsfProtectsSmallHotObjects) {
  const auto engine = MakeEngine("gdsf");
  const SimTime now = Minutes(10);
  // Equal recency; gdsf must prefer evicting the big rarely-hit object over
  // the small hot one (higher freq * cost / size priority), where lru would
  // tie-break on input order.
  std::vector<rc::CachedObject> candidates = {
      Obj("small-hot", KiB(64), 40, Minutes(9)),
      Obj("big-cold", MiB(8), 2, Minutes(9)),
  };
  engine->RankEvictionCandidates(&candidates, now);
  EXPECT_EQ(candidates[0].key, "big-cold");
  EXPECT_EQ(candidates[1].key, "small-hot");
}

TEST(CachePolicyEngineTest, LfuDecayForgetsYesterdaysHotObject) {
  const auto engine = MakeEngine("lfu-decay");
  // 40 accesses, but 50 half-lives ago: the decayed frequency is ~0, so the
  // sweep treats it as cold even though the raw count clears the paper's bar.
  const rc::CachedObject stale = Obj("stale", MiB(1), 40, Minutes(60));
  EXPECT_TRUE(engine->SweepCold(stale, Minutes(560)));
  // The same object observed right after its burst is still hot.
  EXPECT_FALSE(engine->SweepCold(stale, Minutes(61)));
}

TEST(CachePolicyEngineTest, CostAwareDiscountsByBenefitConfidence) {
  // Two identical engines, one told the ml_service has zero confidence that
  // caching f-low's objects helps: its objects must rank evict-first against
  // an otherwise-equal object of a full-confidence function.
  obs::MetricsRegistry metrics;
  const auto engine = MakeEngine("cost-aware", &metrics,
                                 [](const std::string& function) {
                                   return function == "f-low" ? 0.0 : 1.0;
                                 });
  engine->OnAdmit("k-low", MiB(1), "f-low", Minutes(1));
  engine->OnAdmit("k-high", MiB(1), "f-high", Minutes(1));
  std::vector<rc::CachedObject> candidates = {
      Obj("k-high", MiB(1), 10, Minutes(9)),
      Obj("k-low", MiB(1), 10, Minutes(9)),
  };
  engine->RankEvictionCandidates(&candidates, Minutes(10));
  EXPECT_EQ(candidates[0].key, "k-low");
  EXPECT_EQ(candidates[1].key, "k-high");
}

// ---- Accounting & routing state --------------------------------------------------

TEST(CachePolicyEngineTest, NoteEvictionLabelsReasonCells) {
  obs::MetricsRegistry metrics;
  const auto engine = MakeEngine("lru", &metrics);
  engine->NoteEviction(Obj("a", MiB(2), 1, 0), EvictionReason::kCapacity, 0, Seconds(1));
  engine->NoteEviction(Obj("b", MiB(3), 1, 0), EvictionReason::kSweep, 1, Seconds(2));
  engine->NoteEviction(Obj("c", MiB(5), 1, 0), EvictionReason::kPersistedDiscard, 0,
                       Seconds(3));
  EXPECT_EQ(metrics.GetCounter("ofc.policy.evictions", "capacity")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("ofc.policy.evictions", "sweep")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("ofc.policy.evictions", "persisted_discard")->value(), 1u);
  EXPECT_EQ(metrics.GetCounter("ofc.policy.bytes_evicted", "capacity")->value(), MiB(2));
  EXPECT_EQ(metrics.GetCounter("ofc.policy.bytes_evicted", "sweep")->value(), MiB(3));
  EXPECT_EQ(metrics.GetGauge("ofc.policy.selected", "lru")->value(), 1.0);
}

TEST(CachePolicyEngineTest, MixedModeRoutesAndPrunesKeys) {
  obs::MetricsRegistry metrics;
  const auto engine = MakeEngine("gdsf,wand_blur=lru", &metrics);
  engine->OnAdmit("k1", MiB(1), "wand_blur", Seconds(1));
  engine->OnAdmit("k2", MiB(1), "wand_edge", Seconds(2));
  EXPECT_EQ(metrics.GetGauge("ofc.policy.tracked_keys")->value(), 2.0);
  engine->OnRemove("k1");
  EXPECT_EQ(metrics.GetGauge("ofc.policy.tracked_keys")->value(), 1.0);
  engine->Prune({});  // k2 is no longer live anywhere.
  EXPECT_EQ(metrics.GetGauge("ofc.policy.tracked_keys")->value(), 0.0);
}

// ---- Same-seed determinism per policy --------------------------------------------

// Small-worker scenario so capacity evictions and sweeps actually exercise
// the policy before the fingerprint is taken.
std::string RunScenario(const std::string& policy, std::uint64_t seed) {
  faasload::EnvironmentOptions options;
  options.platform.num_workers = 2;
  options.platform.worker_memory = GiB(6);
  options.ofc.cache_policy = policy;
  options.seed = seed;
  faasload::Environment env(faasload::Mode::kOfc, options);
  faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, seed + 1);
  for (const char* function : {"wand_blur", "wand_sepia", "wand_edge"}) {
    faasload::TenantSpec spec;
    spec.name = std::string("t-") + function;
    spec.function = function;
    spec.mean_interval_s = 5.0;
    spec.dataset_objects = 6;
    EXPECT_TRUE(injector.AddTenant(spec).ok());
  }
  injector.PretrainModels(300);
  injector.Run(Minutes(4));
  return env.metrics().SnapshotJson(env.loop().now());
}

TEST(CachePolicyDeterminismTest, SameSeedReplaysByteIdenticalPerPolicy) {
  for (const std::string& policy : KnownCachePolicies()) {
    const std::string first = RunScenario(policy, 7);
    const std::string second = RunScenario(policy, 7);
    EXPECT_EQ(first, second) << policy;
  }
}

TEST(CachePolicyDeterminismTest, MixedSpecReplaysByteIdentical) {
  const std::string spec = "gdsf,wand_blur=lru,wand_edge=cost-aware";
  EXPECT_EQ(RunScenario(spec, 11), RunScenario(spec, 11));
}

TEST(CachePolicyDeterminismTest, ExplicitLruEqualsTheDefault) {
  // OfcOptions defaults to "lru"; spelling it out must change nothing — this
  // is the plumbing half of the golden tests' paper-faithfulness guarantee.
  faasload::EnvironmentOptions options;
  options.platform.num_workers = 2;
  options.platform.worker_memory = GiB(6);
  options.seed = 7;
  EXPECT_EQ(options.ofc.cache_policy, "lru");
  EXPECT_EQ(RunScenario("lru", 7), RunScenario(options.ofc.cache_policy, 7));
}

// ---- Chaos under a non-default policy --------------------------------------------

// Crash + corruption storm with gdsf picking victims: all six invariants
// (docs/invariants.md) must hold, and the run must replay byte-identically.
chaos::ChaosScenarioOptions GdsfChaosScenario(std::uint64_t seed) {
  chaos::ChaosScenarioOptions options;
  options.seed = seed;
  options.cache_policy = "gdsf";
  options.num_invocations = 40;
  options.mean_interval_s = 4.0;
  options.scrub_interval = Seconds(5);
  options.scrub_quarantine_threshold = 0;
  options.flight_recorder = true;
  options.plan.events = {
      fault::FaultEvent{Seconds(25), fault::FaultKind::kNodeCrash, 1, Seconds(30)},
      fault::FaultEvent{Seconds(40), fault::FaultKind::kCorruptSegment, 0, 0, 3.0},
      fault::FaultEvent{Seconds(70), fault::FaultKind::kStoreRot, -1, 0, 3.0},
      fault::FaultEvent{Seconds(95), fault::FaultKind::kPersistorDrop, -1, Seconds(15)},
  };
  options.plan.Sort();
  return options;
}

TEST(CachePolicyChaosTest, InvariantsHoldUnderGdsf) {
  const chaos::ChaosReport report = chaos::RunChaosScenario(GdsfChaosScenario(13));
  EXPECT_TRUE(report.ok()) << report.ViolationSummary();
  EXPECT_EQ(report.scheduled, report.completed);
  EXPECT_EQ(report.counter("ofc.integrity.corrupt_acked"), 0u);
}

TEST(CachePolicyChaosTest, GdsfChaosReplaysByteIdentical) {
  const chaos::ChaosReport first = chaos::RunChaosScenario(GdsfChaosScenario(13));
  const chaos::ChaosReport second = chaos::RunChaosScenario(GdsfChaosScenario(13));
  EXPECT_EQ(first.Fingerprint(), second.Fingerprint());
}

}  // namespace
}  // namespace ofc
