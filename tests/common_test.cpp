// Unit tests for src/common: Status/Result, units, RNG, stats.
#include <gtest/gtest.h>

#include <cmath>
#include <set>

#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace ofc {
namespace {

TEST(StatusTest, DefaultIsOk) {
  Status s;
  EXPECT_TRUE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kOk);
  EXPECT_EQ(s.ToString(), "OK");
}

TEST(StatusTest, ErrorCarriesCodeAndMessage) {
  Status s = NotFoundError("no such object");
  EXPECT_FALSE(s.ok());
  EXPECT_EQ(s.code(), StatusCode::kNotFound);
  EXPECT_EQ(s.ToString(), "NOT_FOUND: no such object");
}

TEST(StatusTest, AllErrorConstructorsSetDistinctCodes) {
  std::set<StatusCode> codes = {
      NotFoundError("").code(),           AlreadyExistsError("").code(),
      InvalidArgumentError("").code(),    FailedPreconditionError("").code(),
      ResourceExhaustedError("").code(),  UnavailableError("").code(),
      AbortedError("").code(),            DeadlineExceededError("").code(),
      InternalError("").code()};
  EXPECT_EQ(codes.size(), 9u);
}

TEST(ResultTest, HoldsValue) {
  Result<int> r = 42;
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(*r, 42);
  EXPECT_EQ(r.value_or(7), 42);
}

TEST(ResultTest, HoldsError) {
  Result<int> r = InvalidArgumentError("bad");
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.status().code(), StatusCode::kInvalidArgument);
  EXPECT_EQ(r.value_or(7), 7);
}

TEST(ResultTest, MoveOnlyValue) {
  Result<std::unique_ptr<int>> r = std::make_unique<int>(5);
  ASSERT_TRUE(r.ok());
  std::unique_ptr<int> v = std::move(r).value();
  EXPECT_EQ(*v, 5);
}

TEST(UnitsTest, ByteHelpers) {
  EXPECT_EQ(KiB(1), 1024);
  EXPECT_EQ(MiB(1), 1024 * 1024);
  EXPECT_EQ(GiB(2), 2LL * 1024 * 1024 * 1024);
}

TEST(UnitsTest, TimeHelpers) {
  EXPECT_EQ(Millis(1), 1000);
  EXPECT_EQ(Seconds(1), 1000000);
  EXPECT_EQ(Minutes(2), 120 * 1000000LL);
  EXPECT_DOUBLE_EQ(ToSeconds(Seconds(3)), 3.0);
  EXPECT_DOUBLE_EQ(ToMillis(Millis(5)), 5.0);
}

TEST(UnitsTest, Formatting) {
  EXPECT_EQ(FormatBytes(512), "512 B");
  EXPECT_EQ(FormatBytes(MiB(10)), "10 MiB");
  EXPECT_EQ(FormatDuration(Micros(250)), "250 us");
  EXPECT_EQ(FormatDuration(Millis(12)), "12 ms");
}

TEST(RngTest, Deterministic) {
  Rng a(123);
  Rng b(123);
  for (int i = 0; i < 100; ++i) {
    EXPECT_EQ(a.NextU64(), b.NextU64());
  }
}

TEST(RngTest, DifferentSeedsDiffer) {
  Rng a(1);
  Rng b(2);
  int equal = 0;
  for (int i = 0; i < 100; ++i) {
    equal += a.NextU64() == b.NextU64();
  }
  EXPECT_LT(equal, 3);
}

TEST(RngTest, UniformIntBoundsInclusive) {
  Rng rng(7);
  bool saw_lo = false;
  bool saw_hi = false;
  for (int i = 0; i < 2000; ++i) {
    const auto v = rng.UniformInt(3, 8);
    ASSERT_GE(v, 3);
    ASSERT_LE(v, 8);
    saw_lo |= v == 3;
    saw_hi |= v == 8;
  }
  EXPECT_TRUE(saw_lo);
  EXPECT_TRUE(saw_hi);
}

TEST(RngTest, DoubleInUnitInterval) {
  Rng rng(9);
  for (int i = 0; i < 1000; ++i) {
    const double d = rng.NextDouble();
    ASSERT_GE(d, 0.0);
    ASSERT_LT(d, 1.0);
  }
}

TEST(RngTest, GaussianMoments) {
  Rng rng(11);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(rng.Gaussian(10.0, 2.0));
  }
  EXPECT_NEAR(stat.mean(), 10.0, 0.1);
  EXPECT_NEAR(stat.stddev(), 2.0, 0.1);
}

TEST(RngTest, ExponentialMean) {
  Rng rng(13);
  RunningStat stat;
  for (int i = 0; i < 20000; ++i) {
    stat.Add(rng.Exponential(60.0));
  }
  EXPECT_NEAR(stat.mean(), 60.0, 2.0);
}

TEST(RngTest, WeightedIndexRespectsWeights) {
  Rng rng(17);
  std::vector<double> weights = {0.0, 1.0, 3.0};
  int counts[3] = {0, 0, 0};
  for (int i = 0; i < 8000; ++i) {
    ++counts[rng.WeightedIndex(weights)];
  }
  EXPECT_EQ(counts[0], 0);
  EXPECT_NEAR(static_cast<double>(counts[2]) / counts[1], 3.0, 0.4);
}

TEST(RngTest, ForkIsIndependent) {
  Rng parent(21);
  Rng child = parent.Fork();
  // The child stream must not simply replay the parent.
  int equal = 0;
  for (int i = 0; i < 50; ++i) {
    equal += parent.NextU64() == child.NextU64();
  }
  EXPECT_LT(equal, 2);
}

TEST(RunningStatTest, Basics) {
  RunningStat s;
  for (double x : {2.0, 4.0, 4.0, 4.0, 5.0, 5.0, 7.0, 9.0}) {
    s.Add(x);
  }
  EXPECT_EQ(s.count(), 8u);
  EXPECT_DOUBLE_EQ(s.mean(), 5.0);
  EXPECT_DOUBLE_EQ(s.min(), 2.0);
  EXPECT_DOUBLE_EQ(s.max(), 9.0);
  EXPECT_NEAR(s.stddev(), 2.1380899, 1e-6);
}

TEST(SamplesTest, Percentiles) {
  Samples s;
  for (int i = 1; i <= 100; ++i) {
    s.Add(static_cast<double>(i));
  }
  EXPECT_DOUBLE_EQ(s.Min(), 1.0);
  EXPECT_DOUBLE_EQ(s.Max(), 100.0);
  EXPECT_NEAR(s.Median(), 50.5, 1e-9);
  EXPECT_NEAR(s.Percentile(0.99), 99.01, 0.01);
}

TEST(SamplesTest, PercentilesRefreshAfterLaterAdds) {
  // Regression: Add() must invalidate the sorted-percentile cache. Querying a
  // percentile (which builds the cache) and then adding more samples used to
  // keep serving the stale sorted copy.
  Samples s;
  s.Add(10.0);
  EXPECT_DOUBLE_EQ(s.Median(), 10.0);  // Builds the sorted cache.
  s.Add(30.0);
  s.Add(20.0);
  EXPECT_DOUBLE_EQ(s.Median(), 20.0);
  EXPECT_DOUBLE_EQ(s.Percentile(1.0), 30.0);
  EXPECT_DOUBLE_EQ(s.Min(), 10.0);
}

TEST(SamplesTest, EmptyIsZero) {
  Samples s;
  EXPECT_EQ(s.count(), 0u);
  EXPECT_DOUBLE_EQ(s.Median(), 0.0);
}

TEST(HistogramTest, BucketsAndClamping) {
  Histogram h(0.0, 10.0, 5);
  h.Add(-1.0);   // clamps to bucket 0
  h.Add(0.5);
  h.Add(9.9);
  h.Add(25.0);   // clamps to last bucket
  EXPECT_EQ(h.total(), 4u);
  EXPECT_EQ(h.count(0), 2u);
  EXPECT_EQ(h.count(4), 2u);
  EXPECT_DOUBLE_EQ(h.BucketLow(1), 2.0);
  EXPECT_DOUBLE_EQ(h.BucketHigh(1), 4.0);
  EXPECT_FALSE(h.ToString("test").empty());
}

TEST(SlidingTimeWindowTest, ExpiresOldSamples) {
  SlidingTimeWindow w(Seconds(60));
  w.Add(Seconds(0), 100.0);
  w.Add(Seconds(30), 50.0);
  EXPECT_DOUBLE_EQ(w.MeanAt(Seconds(30)), 75.0);
  // At t=90s the t=0 sample is outside the 60 s window.
  EXPECT_DOUBLE_EQ(w.MeanAt(Seconds(90)), 50.0);
  EXPECT_EQ(w.CountAt(Seconds(200)), 0u);
}

TEST(SlidingTimeWindowTest, MaxTracksWindow) {
  SlidingTimeWindow w(Seconds(10));
  w.Add(Seconds(1), 5.0);
  w.Add(Seconds(2), 9.0);
  w.Add(Seconds(3), 3.0);
  EXPECT_DOUBLE_EQ(w.MaxAt(Seconds(3)), 9.0);
  EXPECT_DOUBLE_EQ(w.MaxAt(Seconds(13)), 3.0);
}

}  // namespace
}  // namespace ofc
