// Golden-file regression tests for every exporter artifact: the end-of-run
// metrics snapshot (JSON and CSV), the windowed timeline, the SLO health
// summary, and the flight-recorder dump.
//
// A fixed scenario (seed 42, three tenants, five simulated minutes) runs
// in-process and each artifact is compared byte-for-byte against
// tests/testdata/goldens/. The simulator's determinism guarantee is what
// makes this sound: the selfcheck harness proves these artifacts are
// byte-identical across replays, so any diff here is a real format or
// behavior change — either a regression, or an intentional change that must
// be re-blessed with tools/update_goldens.py (set OFC_UPDATE_GOLDENS=1 to
// rewrite the files in place).
#include <cstdlib>
#include <filesystem>
#include <fstream>
#include <memory>
#include <sstream>
#include <string>
#include <vector>

#include <gtest/gtest.h>

#include "src/faasload/environment.h"
#include "src/faasload/injector.h"
#include "src/obs/slo.h"
#include "src/obs/timeline.h"
#include "src/sim/periodic.h"

namespace ofc {
namespace {

namespace fs = std::filesystem;

bool UpdateMode() {
  const char* env = std::getenv("OFC_UPDATE_GOLDENS");
  return env != nullptr && env[0] != '\0' && env[0] != '0';
}

struct Artifacts {
  std::string metrics_json;
  std::string metrics_csv;
  std::string timeline_json;
  std::string health_json;
  std::string flight_json;
};

// The fixed scenario. Anything touched here invalidates the goldens, which is
// the point: the blessed files pin scenario + exporter behavior together.
Artifacts RunGoldenScenario() {
  faasload::EnvironmentOptions options;
  options.seed = 42;
  faasload::Environment env(faasload::Mode::kOfc, options);
  env.flight().set_capacity(128);
  env.flight().set_enabled(true);

  std::vector<obs::SloSpec> slo_specs;
  std::string error;
  EXPECT_TRUE(obs::ParseSloSpecs(
      "warm=lat:ofc.platform.total_ms:p99:250\n"
      "shed=rate:ofc.overload.shed/ofc.platform.invocations:0.01",
      &slo_specs, &error))
      << error;

  faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, /*seed=*/43);
  for (const char* function : {"wand_blur", "wand_sepia", "wand_edge"}) {
    faasload::TenantSpec spec;
    spec.name = std::string("t-") + function;
    spec.function = function;
    spec.mean_interval_s = 20.0;
    EXPECT_TRUE(injector.AddTenant(spec).ok());
  }

  obs::SloMonitor slo(&env.metrics(), /*trace=*/nullptr, slo_specs);
  obs::TimelineRecorder timeline(&env.metrics());
  sim::PeriodicTask scraper(&env.loop(), Seconds(30), [&slo, &timeline](SimTime now) {
    slo.Evaluate(now);
    timeline.Scrape(now);
  });
  scraper.Start();

  injector.PretrainModels(100);
  injector.Run(Minutes(5));
  scraper.Stop();
  slo.Evaluate(env.loop().now());
  timeline.Scrape(env.loop().now());

  Artifacts artifacts;
  artifacts.metrics_json = env.metrics().SnapshotJson(env.loop().now());
  artifacts.metrics_csv = env.metrics().SnapshotCsv(env.loop().now());
  artifacts.timeline_json = timeline.ToJson();
  artifacts.health_json = slo.HealthJson(env.loop().now());
  artifacts.flight_json = env.flight().ToJson("golden scenario end-of-run dump");
  return artifacts;
}

// Shared across tests: the scenario runs once, each artifact gets its own
// test so a diff names the exporter that moved.
const Artifacts& GoldenArtifacts() {
  static const Artifacts artifacts = RunGoldenScenario();
  return artifacts;
}

void CompareOrUpdate(const std::string& name, const std::string& actual) {
  const fs::path path = fs::path(OFC_TESTDATA_DIR) / "goldens" / name;
  if (UpdateMode()) {
    std::ofstream out(path, std::ios::binary | std::ios::trunc);
    ASSERT_TRUE(out.good()) << "cannot write " << path;
    out << actual;
    GTEST_SKIP() << "golden updated: " << path;
  }
  std::ifstream in(path, std::ios::binary);
  ASSERT_TRUE(in.good()) << "missing golden " << path
                         << " — run tools/update_goldens.py to bless it";
  std::ostringstream expected;
  expected << in.rdbuf();
  if (expected.str() == actual) {
    return;
  }
  // Point at the first differing line so the failure is debuggable without
  // dumping two multi-kilobyte artifacts.
  const std::string& want = expected.str();
  std::size_t pos = 0;
  int line = 1;
  while (pos < want.size() && pos < actual.size() && want[pos] == actual[pos]) {
    if (want[pos] == '\n') {
      ++line;
    }
    ++pos;
  }
  const auto context = [](const std::string& s, std::size_t at) {
    const std::size_t begin = s.rfind('\n', at == 0 ? 0 : at - 1);
    const std::size_t start = begin == std::string::npos ? 0 : begin + 1;
    const std::size_t end = s.find('\n', at);
    return s.substr(start, (end == std::string::npos ? s.size() : end) - start);
  };
  FAIL() << name << " diverged from its golden at line " << line << " (byte " << pos
         << ")\n  golden: " << context(want, pos) << "\n  actual: " << context(actual, pos)
         << "\nIf the change is intentional, re-bless with tools/update_goldens.py";
}

TEST(GoldenTest, MetricsJson) { CompareOrUpdate("metrics.json", GoldenArtifacts().metrics_json); }

TEST(GoldenTest, MetricsCsv) { CompareOrUpdate("metrics.csv", GoldenArtifacts().metrics_csv); }

TEST(GoldenTest, TimelineJson) {
  CompareOrUpdate("timeline.json", GoldenArtifacts().timeline_json);
}

TEST(GoldenTest, HealthJson) { CompareOrUpdate("health.json", GoldenArtifacts().health_json); }

TEST(GoldenTest, FlightJson) { CompareOrUpdate("flight.json", GoldenArtifacts().flight_json); }

}  // namespace
}  // namespace ofc
