// Million-invocation scale harness: drives the full OFC stack (platform +
// RAMCloud cache + ML sizing + RSDS) under a synthesized Azure-style
// multi-tenant trace and reports the simulator's own performance — wall-clock
// events/sec, invocations/sec, peak RSS, and per-phase time shares — as
// BENCH_scale.json.
//
// It also microbenchmarks the optimized sim::EventLoop against the checked-in
// pre-overhaul snapshot (bench/legacy_event_loop.h) on an identical synthetic
// event pattern, so the JSON carries both sides of the hot-path comparison
// (the README perf table's before/after column).
//
// Usage:
//   scale_stress [--invocations=N] [--tenants=N] [--duration-s=S] [--seed=N]
//                [--mode=ofc|owk-swift|owk-redis] [--out=BENCH_scale.json]
//                [--loop-events=N] [--skip-loop-compare] [--progress]
//
// The default 1M-invocation run finishes in minutes; CI's perf-smoke tier runs
// a downscaled --invocations=50000 pass and gates on
// tools/check_scale_bench.py against bench/scale_floor.json.
#include <sys/resource.h>

#include <chrono>  // simlint: allow(wall-clock) -- this bench measures the simulator's real throughput, not simulated time
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/legacy_event_loop.h"
#include "src/faasload/environment.h"
#include "src/faasload/injector.h"
#include "src/obs/export_util.h"
#include "src/sim/event_loop.h"
#include "src/workloads/scale_trace.h"

namespace ofc {
namespace {

using WallClock = std::chrono::steady_clock;  // simlint: allow(wall-clock) -- harness self-timing

double SecondsSince(WallClock::time_point start) {
  return std::chrono::duration<double>(WallClock::now() - start).count();  // simlint: allow(wall-clock) -- harness self-timing
}

// Peak resident set size in MiB (ru_maxrss is KiB on Linux).
double PeakRssMb() {
  struct rusage usage{};
  if (getrusage(RUSAGE_SELF, &usage) != 0) {
    return 0.0;
  }
  return static_cast<double>(usage.ru_maxrss) / 1024.0;
}

struct Flags {
  std::uint64_t invocations = 1'000'000;
  std::size_t tenants = 64;
  double duration_s = 3600.0;
  std::uint64_t seed = 42;
  std::string mode = "ofc";
  std::string out = "BENCH_scale.json";
  std::uint64_t loop_events = 2'000'000;  // Per side of the loop comparison.
  bool skip_loop_compare = false;
  bool progress = false;
};

// The synthetic scenario both event loops run for the before/after comparison:
// `actors` self-re-arming chains (the dominant simulator pattern — a completion
// schedules the next step), each hop also cancelling and re-arming a long-dated
// keep-alive timer (the churn pattern sandbox keep-alives produce). Callbacks
// capture a shared_ptr plus a couple of words, matching the platform's typical
// capture size. Returns dispatched events per wall-clock second.
template <typename Loop>
double MeasureLoopEps(std::uint64_t total_events, std::size_t actors) {
  Loop loop;
  struct Shared {
    std::uint64_t dispatched = 0;
    std::uint64_t budget = 0;
  };
  auto shared = std::make_shared<Shared>();
  shared->budget = total_events;
  std::vector<typename Loop::EventId> keepalive(actors, 0);

  // Recursive hop as a self-contained callable: value-captures keep it safe to
  // move between slots.
  struct Hop {
    Loop* loop;
    std::shared_ptr<Shared> shared;
    std::vector<typename Loop::EventId>* keepalive;
    std::size_t actor;
    void operator()() const {
      Shared& s = *shared;
      ++s.dispatched;
      if (s.dispatched + (*keepalive).size() >= s.budget) {
        return;  // Leave only the keep-alives outstanding.
      }
      // Keep-alive churn: cancel the previous timer, arm a fresh one.
      if ((*keepalive)[actor] != 0) {
        loop->Cancel((*keepalive)[actor]);
      }
      (*keepalive)[actor] = loop->ScheduleAfter(Seconds(600), [] {});
      loop->ScheduleAfter(Millis(1) + static_cast<SimDuration>(actor),
                          Hop{loop, shared, keepalive, actor});
    }
  };

  const auto start = WallClock::now();  // simlint: allow(wall-clock) -- measuring loop throughput
  for (std::size_t a = 0; a < actors; ++a) {
    loop.ScheduleAfter(static_cast<SimDuration>(a), Hop{&loop, shared, &keepalive, a});
  }
  loop.Run();
  const double wall = SecondsSince(start);
  return wall > 0 ? static_cast<double>(shared->dispatched) / wall : 0.0;
}

faasload::Mode ParseMode(const std::string& mode) {
  if (mode == "owk-swift") {
    return faasload::Mode::kOwkSwift;
  }
  if (mode == "owk-redis") {
    return faasload::Mode::kOwkRedis;
  }
  return faasload::Mode::kOfc;
}

int Main(int argc, char** argv) {
  Flags flags;
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    auto value = [&](const char* name) -> const char* {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
        return arg + len + 1;
      }
      return nullptr;
    };
    if (const char* v = value("--invocations")) {
      flags.invocations = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--tenants")) {
      flags.tenants = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--duration-s")) {
      flags.duration_s = std::strtod(v, nullptr);
    } else if (const char* v = value("--seed")) {
      flags.seed = std::strtoull(v, nullptr, 10);
    } else if (const char* v = value("--mode")) {
      flags.mode = v;
    } else if (const char* v = value("--out")) {
      flags.out = v;
    } else if (const char* v = value("--loop-events")) {
      flags.loop_events = std::strtoull(v, nullptr, 10);
    } else if (std::strcmp(arg, "--skip-loop-compare") == 0) {
      flags.skip_loop_compare = true;
    } else if (std::strcmp(arg, "--progress") == 0) {
      flags.progress = true;
    } else {
      std::fprintf(stderr, "unknown flag: %s\n", arg);
      return 2;
    }
  }

  bench::Banner("Scale stress: " + std::to_string(flags.invocations) +
                    " invocations, " + std::to_string(flags.tenants) + " tenants",
                "simulator scalability harness (not a paper figure)");

  // ---- Event-loop before/after microbenchmark ------------------------------
  double legacy_eps = 0.0;
  double optimized_eps = 0.0;
  if (!flags.skip_loop_compare) {
    constexpr std::size_t kActors = 256;
    legacy_eps = MeasureLoopEps<bench::LegacyEventLoop>(flags.loop_events, kActors);
    optimized_eps = MeasureLoopEps<sim::EventLoop>(flags.loop_events, kActors);
    std::printf("event loop: legacy %.0f ev/s, optimized %.0f ev/s (%.2fx)\n",
                legacy_eps, optimized_eps,
                legacy_eps > 0 ? optimized_eps / legacy_eps : 0.0);
  }

  // ---- Full-stack scale run ------------------------------------------------
  const auto setup_start = WallClock::now();  // simlint: allow(wall-clock) -- phase timing
  workloads::ScaleTraceOptions trace_options;
  trace_options.seed = flags.seed;
  trace_options.num_tenants = flags.tenants;
  trace_options.duration_s = flags.duration_s;
  trace_options.target_invocations = flags.invocations;
  const workloads::ScaleTrace trace = workloads::GenerateScaleTrace(trace_options);

  faasload::EnvironmentOptions env_options;
  env_options.seed = flags.seed;
  env_options.platform.num_workers = 8;
  env_options.platform.worker_memory = GiB(32);
  faasload::Environment env(ParseMode(flags.mode), env_options);
  faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, flags.seed);
  injector.set_max_records_per_tenant(0);  // Counters only; no per-record retention.
  if (Status status = injector.AddScaleTrace(trace); !status.ok()) {
    std::fprintf(stderr, "trace setup failed: %s\n", status.ToString().c_str());
    return 1;
  }
  injector.PretrainModels(40);
  const double setup_wall = SecondsSince(setup_start);

  if (flags.progress) {
    // Progress heartbeat in simulated time (one line per 10% of the horizon).
    const SimDuration step = static_cast<SimDuration>(flags.duration_s * 1e6 / 10.0);
    injector.AddSampler(step, [&env, &injector] {
      std::printf("  t=%.0fs: %llu fired, %llu completed, %llu events\n",
                  static_cast<double>(env.loop().now()) / 1e6,
                  static_cast<unsigned long long>(injector.invocations_fired()),
                  static_cast<unsigned long long>(injector.invocations_completed()),
                  static_cast<unsigned long long>(env.loop().total_dispatched()));
      std::fflush(stdout);
    });
  }

  const auto run_start = WallClock::now();  // simlint: allow(wall-clock) -- phase timing
  injector.Run(static_cast<SimDuration>(flags.duration_s * 1e6));
  const double run_wall = SecondsSince(run_start);

  // ---- Report --------------------------------------------------------------
  const auto export_start = WallClock::now();  // simlint: allow(wall-clock) -- phase timing
  const std::uint64_t dispatched = env.loop().total_dispatched();
  const std::uint64_t scheduled = env.loop().total_scheduled();
  const std::uint64_t fired = injector.invocations_fired();
  const std::uint64_t completed = injector.invocations_completed();
  const double events_per_sec = run_wall > 0 ? static_cast<double>(dispatched) / run_wall : 0;
  const double inv_per_sec = run_wall > 0 ? static_cast<double>(completed) / run_wall : 0;

  // Simulated-time E/T/L shares (where simulated work went; the wall-clock
  // phase split above says where the *simulator's* time went).
  const double extract_ms = env.metrics().GetSeries("ofc.platform.extract_ms")->sum();
  const double transform_ms = env.metrics().GetSeries("ofc.platform.transform_ms")->sum();
  const double load_ms = env.metrics().GetSeries("ofc.platform.load_ms")->sum();
  const double etl_total = extract_ms + transform_ms + load_ms;

  bench::Table table({"metric", "value"});
  table.AddRow({"invocations fired", std::to_string(fired)});
  table.AddRow({"invocations completed", std::to_string(completed)});
  table.AddRow({"events dispatched", std::to_string(dispatched)});
  table.AddRow({"run wall (s)", bench::Fmt("%.2f", run_wall)});
  table.AddRow({"events/sec", bench::Fmt("%.0f", events_per_sec)});
  table.AddRow({"invocations/sec", bench::Fmt("%.0f", inv_per_sec)});
  table.AddRow({"peak RSS (MiB)", bench::Fmt("%.1f", PeakRssMb())});
  table.Print();

  std::string json = "{\n";
  json += "  \"target_invocations\": " + std::to_string(flags.invocations) + ",\n";
  json += "  \"tenants\": " + std::to_string(flags.tenants) + ",\n";
  json += "  \"duration_s\": " + obs::JsonNumber(flags.duration_s) + ",\n";
  json += "  \"seed\": " + std::to_string(flags.seed) + ",\n";
  json += "  \"mode\": \"" + flags.mode + "\",\n";
  json += "  \"expected_invocations\": " + obs::JsonNumber(trace.expected_invocations) + ",\n";
  json += "  \"invocations_fired\": " + std::to_string(fired) + ",\n";
  json += "  \"invocations_completed\": " + std::to_string(completed) + ",\n";
  json += "  \"events_scheduled\": " + std::to_string(scheduled) + ",\n";
  json += "  \"events_dispatched\": " + std::to_string(dispatched) + ",\n";
  json += "  \"wall_seconds\": {\"setup\": " + obs::JsonNumber(setup_wall) +
          ", \"run\": " + obs::JsonNumber(run_wall) + "},\n";
  json += "  \"events_per_sec\": " + obs::JsonNumber(events_per_sec) + ",\n";
  json += "  \"invocations_per_sec\": " + obs::JsonNumber(inv_per_sec) + ",\n";
  json += "  \"peak_rss_mb\": " + obs::JsonNumber(PeakRssMb()) + ",\n";
  json += "  \"sim_time_share\": {";
  if (etl_total > 0) {
    json += "\"extract\": " + obs::JsonNumber(extract_ms / etl_total) +
            ", \"transform\": " + obs::JsonNumber(transform_ms / etl_total) +
            ", \"load\": " + obs::JsonNumber(load_ms / etl_total);
  }
  json += "},\n";
  json += "  \"event_loop_compare\": {\"legacy_events_per_sec\": " +
          obs::JsonNumber(legacy_eps) +
          ", \"optimized_events_per_sec\": " + obs::JsonNumber(optimized_eps) +
          ", \"speedup\": " +
          obs::JsonNumber(legacy_eps > 0 ? optimized_eps / legacy_eps : 0.0) + "}\n";
  json += "}\n";

  std::FILE* f = std::fopen(flags.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  const double export_wall = SecondsSince(export_start);
  std::printf("wrote %s (setup %.2fs, run %.2fs, export %.2fs)\n", flags.out.c_str(),
              setup_wall, run_wall, export_wall);

  if (fired != completed) {
    std::fprintf(stderr, "exactly-once violation: fired=%llu completed=%llu\n",
                 static_cast<unsigned long long>(fired),
                 static_cast<unsigned long long>(completed));
    return 1;
  }
  return 0;
}

}  // namespace
}  // namespace ofc

int main(int argc, char** argv) { return ofc::Main(argc, argv); }
