// Synthetic invocation-trace datasets for the ML benches (Table 1, Figures 5
// and 6, maturation): per-function labelled datasets built from the workload
// generative models, mirroring the training data the FaaSLoad monitoring
// pipeline produces in the artifact.
#ifndef OFC_BENCH_TRACE_UTIL_H_
#define OFC_BENCH_TRACE_UTIL_H_

#include "src/core/intervals.h"
#include "src/ml/dataset.h"
#include "src/sim/latency.h"
#include "src/store/object_store.h"
#include "src/workloads/functions.h"
#include "src/workloads/media.h"

namespace ofc::bench {

// Dataset labelled with memory intervals.
inline ml::Dataset BuildMemoryDataset(const workloads::FunctionSpec& spec,
                                      const core::MemoryIntervals& intervals, int n,
                                      std::uint64_t seed) {
  ml::Dataset data(
      ml::Schema(workloads::FeatureAttributes(spec), intervals.ClassAttribute()));
  Rng rng(seed);
  workloads::MediaGenerator generator(rng.Fork());
  for (int i = 0; i < n; ++i) {
    const workloads::MediaDescriptor media = generator.Generate(spec.kind);
    const std::vector<double> args = workloads::SampleArgs(spec, rng);
    const workloads::InvocationDemand demand =
        workloads::ComputeDemand(spec, media, args, &rng);
    ml::Instance instance;
    instance.features = workloads::ExtractFeatures(spec, media, args);
    instance.label = intervals.Label(demand.memory);
    (void)data.Add(std::move(instance));
  }
  return data;
}

// Dataset labelled with the §5.2 caching-benefit boolean.
inline ml::Dataset BuildBenefitDataset(const workloads::FunctionSpec& spec,
                                       const store::StoreProfile& rsds, int n,
                                       std::uint64_t seed) {
  ml::Dataset data(ml::Schema(workloads::FeatureAttributes(spec),
                              ml::Attribute::Nominal("benefit", {"no", "yes"})));
  Rng rng(seed);
  workloads::MediaGenerator generator(rng.Fork());
  for (int i = 0; i < n; ++i) {
    const workloads::MediaDescriptor media = generator.Generate(spec.kind);
    const std::vector<double> args = workloads::SampleArgs(spec, rng);
    const workloads::InvocationDemand demand =
        workloads::ComputeDemand(spec, media, args, &rng);
    const SimDuration e = rsds.read.Cost(media.byte_size);
    const SimDuration l = rsds.write.Cost(demand.output_size);
    const double total = static_cast<double>(e + demand.compute + l);
    ml::Instance instance;
    instance.features = workloads::ExtractFeatures(spec, media, args);
    instance.label = total > 0 && static_cast<double>(e + l) / total > 0.5 ? 1 : 0;
    (void)data.Add(std::move(instance));
  }
  return data;
}

}  // namespace ofc::bench

#endif  // OFC_BENCH_TRACE_UTIL_H_
