// Cache-policy comparison: runs the same workloads under every registered
// cache eviction/sweep policy (src/core/cache_policy.h) and reports, per
// policy, the cache hit ratio, the E+L milliseconds saved versus an OWK-Swift
// baseline, the evictions taken, and the bytes churned out of the cache.
//
// Two workloads are exercised:
//   * fig7-steady — the six Figure 7 wand_* functions under steady Poisson
//     arrivals (the §7.2.1 shape, many invocations per object);
//   * fig9-macro  — the §7.2.2 FAASLOAD macro mix (functions + pipelines)
//     via bench/macro_common.h.
// Both run with deliberately small workers so the capacity-eviction and
// cold-sweep paths actually fire; the paper's policy (`lru`) is the reference
// row, the alternatives show what the pluggable subsystem buys or costs.
//
// Usage:
//   policy_comparison [--out=BENCH_policies.json] [--duration-min=N] [--seed=N]
//
// The JSON artifact is consumed by CI (perf-smoke uploads it) and quoted in
// README.md's "Cache policies" section.
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "bench/macro_common.h"
#include "src/core/cache_policy.h"
#include "src/obs/export_util.h"

namespace ofc {
namespace {

struct Flags {
  std::string out = "BENCH_policies.json";
  int duration_min = 15;
  std::uint64_t seed = 2021;
};

// One (workload, policy) run reduced to the comparison quantities.
struct RunStats {
  std::string workload;
  std::string policy;  // "owk-swift" for the baseline row.
  std::uint64_t invocations = 0;
  double hit_ratio = 0.0;
  double el_ms_total = 0.0;   // Sum of E+L across all records, in ms.
  double el_ms_saved = 0.0;   // Baseline el_ms_total minus this run's.
  std::uint64_t evictions = 0;      // ofc.policy.evictions, all reasons.
  std::uint64_t bytes_churned = 0;  // ofc.policy.bytes_evicted, all reasons.
  std::uint64_t sweep_evictions = 0;
  double p95_ms = 0.0;  // Whole-invocation p95 across single-stage records.
};

// Sums E+L over every invocation and pipeline record of a finished run.
double SumElMs(const std::vector<faasload::TenantResult>& tenants) {
  SimDuration el = 0;
  for (const faasload::TenantResult& tenant : tenants) {
    for (const auto& record : tenant.invocations) {
      el += record.extract_time + record.load_time;
    }
    for (const auto& record : tenant.pipelines) {
      el += record.extract_time + record.load_time;
    }
  }
  return ToMillis(el);
}

double P95Ms(const std::vector<faasload::TenantResult>& tenants) {
  Samples latencies;
  for (const faasload::TenantResult& tenant : tenants) {
    for (const auto& record : tenant.invocations) {
      latencies.Add(ToMillis(record.total));
    }
    for (const auto& record : tenant.pipelines) {
      latencies.Add(ToMillis(record.total));
    }
  }
  return latencies.Percentile(0.95);
}

// Reads the engine's eviction accounting out of the run's metrics registry.
// The cells exist for every OFC run (registered eagerly at engine creation);
// baseline modes leave them absent and the getter returns fresh zeros.
void ReadPolicyCells(obs::MetricsRegistry* metrics, RunStats* stats) {
  const char* kReasons[] = {"capacity", "sweep", "persisted_discard"};
  for (const char* reason : kReasons) {
    stats->evictions += metrics->GetCounter("ofc.policy.evictions", reason)->value();
    stats->bytes_churned +=
        metrics->GetCounter("ofc.policy.bytes_evicted", reason)->value();
  }
  stats->sweep_evictions = metrics->GetCounter("ofc.policy.evictions", "sweep")->value();
}

// ---- fig7-steady: six wand_* tenants, steady Poisson arrivals -------------------

RunStats RunSteady(faasload::Mode mode, const std::string& policy, const Flags& flags) {
  auto metrics = std::make_unique<obs::MetricsRegistry>();
  faasload::EnvironmentOptions env_options;
  env_options.metrics = metrics.get();
  env_options.platform.num_workers = 2;
  // Small workers: the wand datasets oversubscribe the hoardable cache, so the
  // policies must actually choose victims.
  env_options.platform.worker_memory = GiB(6);
  env_options.ofc.cache_policy = policy;
  env_options.seed = flags.seed;
  faasload::Environment env(mode, env_options);
  faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, flags.seed + 1);

  const char* kFunctions[] = {"wand_blur",   "wand_resize",  "wand_sepia",
                              "wand_rotate", "wand_denoise", "wand_edge"};
  for (const char* function : kFunctions) {
    faasload::TenantSpec spec;
    spec.name = std::string("t-") + function;
    spec.function = function;
    spec.mean_interval_s = 6.0;
    spec.dataset_objects = 8;
    const Status status = injector.AddTenant(spec);
    if (!status.ok()) {
      std::fprintf(stderr, "AddTenant(%s): %s\n", function, status.ToString().c_str());
    }
  }
  injector.PretrainModels(400);
  injector.Run(Minutes(flags.duration_min));

  RunStats stats;
  stats.workload = "fig7-steady";
  stats.policy = mode == faasload::Mode::kOwkSwift ? "owk-swift" : policy;
  stats.invocations = injector.invocations_completed();
  stats.el_ms_total = SumElMs(injector.results());
  stats.p95_ms = P95Ms(injector.results());
  if (env.ofc() != nullptr) {
    stats.hit_ratio = env.ofc()->proxy().stats().HitRatio();
  }
  ReadPolicyCells(metrics.get(), &stats);
  return stats;
}

// ---- fig9-macro: the §7.2.2 FAASLOAD mix via macro_common.h ---------------------

RunStats RunMacroWorkload(faasload::Mode mode, const std::string& policy,
                          const Flags& flags) {
  bench::MacroConfig config;
  config.mode = mode;
  config.cache_policy = policy;
  config.duration = Minutes(flags.duration_min);
  config.seed = flags.seed;
  // Small enough that the macro mix's pipelines put the cache under shrink
  // pressure, large enough that the 2 GiB-booked sandboxes never queue.
  config.worker_memory = GiB(24);
  const bench::MacroResult result = bench::RunMacro(config);

  RunStats stats;
  stats.workload = "fig9-macro";
  stats.policy = mode == faasload::Mode::kOwkSwift ? "owk-swift" : policy;
  stats.invocations = result.platform_stats.invocations;
  stats.el_ms_total = SumElMs(result.tenants);
  stats.p95_ms = P95Ms(result.tenants);
  stats.hit_ratio = result.proxy_stats.HitRatio();
  ReadPolicyCells(result.metrics.get(), &stats);
  return stats;
}

std::string ToJson(const std::vector<RunStats>& rows, const Flags& flags) {
  std::string json = "{\n";
  json += "  \"duration_min\": " + std::to_string(flags.duration_min) + ",\n";
  json += "  \"seed\": " + std::to_string(flags.seed) + ",\n";
  json += "  \"policies\": [";
  bool first = true;
  for (const std::string& name : core::KnownCachePolicies()) {
    json += std::string(first ? "" : ", ") + "\"" + name + "\"";
    first = false;
  }
  json += "],\n";
  json += "  \"runs\": [\n";
  for (std::size_t i = 0; i < rows.size(); ++i) {
    const RunStats& row = rows[i];
    json += "    {\"workload\": \"" + row.workload + "\", \"policy\": \"" + row.policy +
            "\", \"invocations\": " + std::to_string(row.invocations) +
            ", \"hit_ratio\": " + obs::JsonNumber(row.hit_ratio) +
            ", \"el_ms_total\": " + obs::JsonNumber(row.el_ms_total) +
            ", \"el_ms_saved\": " + obs::JsonNumber(row.el_ms_saved) +
            ", \"evictions\": " + std::to_string(row.evictions) +
            ", \"sweep_evictions\": " + std::to_string(row.sweep_evictions) +
            ", \"bytes_churned\": " + std::to_string(row.bytes_churned) +
            ", \"p95_ms\": " + obs::JsonNumber(row.p95_ms) + "}";
    json += i + 1 < rows.size() ? ",\n" : "\n";
  }
  json += "  ]\n}\n";
  return json;
}

int Run(const Flags& flags) {
  std::vector<RunStats> rows;
  const std::vector<std::string> policies = core::KnownCachePolicies();

  struct Workload {
    const char* name;
    RunStats (*run)(faasload::Mode, const std::string&, const Flags&);
  };
  const Workload kWorkloads[] = {
      {"fig7-steady", &RunSteady},
      {"fig9-macro", &RunMacroWorkload},
  };

  for (const Workload& workload : kWorkloads) {
    std::printf("\n--- workload: %s ---\n", workload.name);
    const RunStats baseline =
        workload.run(faasload::Mode::kOwkSwift, "lru", flags);
    bench::Table table({"Policy", "Invocations", "Hit ratio (%)", "E+L saved (s)",
                        "Evictions", "Swept", "Bytes churned", "p95 (ms)"});
    table.AddRow({baseline.policy, std::to_string(baseline.invocations), "-", "-",
                  "-", "-", "-", bench::Fmt("%.1f", baseline.p95_ms)});
    rows.push_back(baseline);
    for (const std::string& policy : policies) {
      RunStats stats = workload.run(faasload::Mode::kOfc, policy, flags);
      stats.el_ms_saved = baseline.el_ms_total - stats.el_ms_total;
      table.AddRow({stats.policy, std::to_string(stats.invocations),
                    bench::Fmt("%.1f", 100.0 * stats.hit_ratio),
                    bench::Fmt("%.2f", stats.el_ms_saved / 1e3),
                    std::to_string(stats.evictions), std::to_string(stats.sweep_evictions),
                    FormatBytes(static_cast<Bytes>(stats.bytes_churned)),
                    bench::Fmt("%.1f", stats.p95_ms)});
      rows.push_back(stats);
    }
    table.Print();
  }

  const std::string json = ToJson(rows, flags);
  std::FILE* f = std::fopen(flags.out.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", flags.out.c_str());
    return 1;
  }
  std::fwrite(json.data(), 1, json.size(), f);
  std::fclose(f);
  std::printf("\nwrote %s\n", flags.out.c_str());
  return 0;
}

}  // namespace
}  // namespace ofc

int main(int argc, char** argv) {
  ofc::Flags flags;
  for (int i = 1; i < argc; ++i) {
    const auto parse = [&](const char* name, std::string* out) {
      const std::size_t len = std::strlen(name);
      if (std::strncmp(argv[i], name, len) == 0 && argv[i][len] == '=') {
        *out = argv[i] + len + 1;
        return true;
      }
      return false;
    };
    std::string value;
    if (parse("--out", &flags.out)) {
    } else if (parse("--duration-min", &value)) {
      flags.duration_min = std::atoi(value.c_str());
    } else if (parse("--seed", &value)) {
      flags.seed = std::strtoull(value.c_str(), nullptr, 10);
    } else {
      std::fprintf(stderr,
                   "usage: policy_comparison [--out=PATH] [--duration-min=N] [--seed=N]\n");
      return 2;
    }
  }
  ofc::bench::Banner(
      "Cache eviction/sweep policies under the Figure 7 and Figure 9 workloads",
      "extension of §6.3/§6.4 (policy subsystem; lru = the paper's behaviour)");
  return ofc::Run(flags);
}
