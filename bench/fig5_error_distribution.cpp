// Figure 5: distribution of memory-prediction errors for J48 with 16 MB
// intervals, all functions combined (raw predictions, before the conservative
// next-interval bump). The paper reports that 90 % of overpredictions fall
// within 3 intervals of the truth, for an average waste of only 26.8 MB.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/trace_util.h"
#include "src/common/stats.h"
#include "src/ml/evaluation.h"
#include "src/ml/j48.h"

namespace ofc {
namespace {

void Run() {
  bench::Banner("J48 memory-prediction error distribution (16 MB intervals)",
                "Figure 5 (§7.1.1): 90 % of overpredictions within 3 intervals; "
                "average waste ~27 MB");

  const core::MemoryIntervals intervals(MiB(16), GiB(2));
  std::vector<int> all_errors;
  int function_index = 0;
  for (const workloads::FunctionSpec& spec : workloads::AllFunctions()) {
    const ml::Dataset data =
        bench::BuildMemoryDataset(spec, intervals, 400, 3000 + function_index++);
    Rng rng(55);
    const auto result = ml::CrossValidate(
        [] { return std::make_unique<ml::J48>(); }, data, 10, rng);
    all_errors.insert(all_errors.end(), result.errors.begin(), result.errors.end());
  }

  Histogram histogram(-8.5 * 16, 8.5 * 16, 17);  // +-8 intervals in MB.
  std::size_t exact = 0;
  std::size_t over = 0;
  std::size_t over_within3 = 0;
  std::size_t under = 0;
  RunningStat over_waste_mb;
  for (int err : all_errors) {
    histogram.Add(static_cast<double>(err) * 16.0);
    if (err == 0) {
      ++exact;
    } else if (err > 0) {
      ++over;
      if (err <= 3) {
        ++over_within3;
      }
      over_waste_mb.Add(static_cast<double>(err) * 16.0);
    } else {
      ++under;
    }
  }

  std::printf("%s\n", histogram.ToString("Error distribution (MB to truth)").c_str());
  bench::Table table({"Metric", "Value"});
  const double n = static_cast<double>(all_errors.size());
  table.AddRow({"Predictions", std::to_string(all_errors.size())});
  table.AddRow({"Exact (%)", bench::Fmt("%.1f", 100.0 * static_cast<double>(exact) / static_cast<double>(n))});
  table.AddRow({"Over (%)", bench::Fmt("%.1f", 100.0 * static_cast<double>(over) / static_cast<double>(n))});
  table.AddRow({"Under (%)", bench::Fmt("%.1f", 100.0 * static_cast<double>(under) / static_cast<double>(n))});
  table.AddRow({"Overpredictions within 3 intervals (%)",
                bench::Fmt("%.1f", over == 0 ? 100.0 : 100.0 * static_cast<double>(over_within3) / static_cast<double>(over))});
  table.AddRow({"Average overprediction waste (MB)",
                bench::Fmt("%.1f", over_waste_mb.mean())});
  table.Print();
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::Run();
  return 0;
}
