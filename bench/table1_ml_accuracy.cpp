// Table 1: exact and exact-or-over (EO) prediction accuracy of four decision
// tree algorithms (HoeffdingTree, J48, RandomForest, RandomTree) across memory
// interval sizes {32, 16, 8} MB, averaged over all 19 functions, via 10-fold
// cross-validation. Also reproduces the §7.1.1 cache-benefit model metrics
// (precision / recall / F-measure for J48).
//
// Expected shape (paper): J48 ~ RandomForest > RandomTree > HoeffdingTree;
// accuracy decreases as intervals shrink; benefit model P/R/F near 99 %.
#include <cstdio>
#include <memory>

#include "bench/bench_util.h"
#include "bench/trace_util.h"
#include "src/ml/evaluation.h"
#include "src/ml/hoeffding_tree.h"
#include "src/ml/j48.h"
#include "src/ml/random_forest.h"
#include "src/ml/random_tree.h"

namespace ofc {
namespace {

constexpr int kInvocationsPerFunction = 400;
constexpr int kFolds = 10;

ml::ClassifierFactory MakeFactory(const std::string& algorithm) {
  if (algorithm == "J48") {
    return [] { return std::make_unique<ml::J48>(); };
  }
  if (algorithm == "RandomForest") {
    return [] {
      return std::make_unique<ml::RandomForest>(
          ml::RandomForestOptions{.num_trees = 20, .seed = 7});
    };
  }
  if (algorithm == "RandomTree") {
    return [] { return std::make_unique<ml::RandomTree>(ml::RandomTreeOptions{.seed = 7}); };
  }
  return [] {
    return std::make_unique<ml::HoeffdingTree>(ml::HoeffdingTreeOptions{.grace_period = 25});
  };
}

void MemoryAccuracy() {
  bench::Banner("ML memory-prediction accuracy", "Table 1 (§7.1.1)");
  bench::Table table({"Interval size", "Algorithm", "Exact (%)", "Exact-or-over (%)"});
  for (Bytes interval : {MiB(32), MiB(16), MiB(8)}) {
    const core::MemoryIntervals intervals(interval, GiB(2));
    for (const char* algorithm :
         {"HoeffdingTree", "J48", "RandomForest", "RandomTree"}) {
      double exact_sum = 0;
      double eo_sum = 0;
      int functions = 0;
      for (const workloads::FunctionSpec& spec : workloads::AllFunctions()) {
        const ml::Dataset data = bench::BuildMemoryDataset(
            spec, intervals, kInvocationsPerFunction, 1000 + functions);
        Rng rng(77);
        const auto result = ml::CrossValidate(MakeFactory(algorithm), data, kFolds, rng);
        exact_sum += result.confusion.Accuracy();
        eo_sum += result.confusion.ExactOrOverAccuracy();
        ++functions;
      }
      table.AddRow({FormatBytes(interval), algorithm,
                    bench::Fmt("%.2f", 100.0 * exact_sum / functions),
                    bench::Fmt("%.2f", 100.0 * eo_sum / functions)});
    }
  }
  table.Print();
}

void BenefitAccuracy() {
  bench::Banner("Cache-benefit prediction (J48 binary classifier)",
                "§7.1.1 'Prediction of cache benefit' (precision 98.8 %, recall 98.6 %)");
  double precision_sum = 0;
  double recall_sum = 0;
  double f_sum = 0;
  int functions = 0;
  for (const workloads::FunctionSpec& spec : workloads::AllFunctions()) {
    const ml::Dataset data = bench::BuildBenefitDataset(
        spec, store::StoreProfile::Swift(), kInvocationsPerFunction, 2000 + functions);
    // Skip functions whose benefit label is constant (always / never useful):
    // a binary classifier is trivially right there.
    const auto dist = data.ClassDistribution();
    if (dist[0] == 0.0 || dist[1] == 0.0) {
      continue;
    }
    Rng rng(99);
    const auto result =
        ml::CrossValidate([] { return std::make_unique<ml::J48>(); }, data, kFolds, rng);
    precision_sum += result.confusion.Precision(1);
    recall_sum += result.confusion.Recall(1);
    f_sum += result.confusion.FMeasure(1);
    ++functions;
  }
  bench::Table table({"Metric", "Value (%)"});
  table.AddRow({"Precision", bench::Fmt("%.1f", 100.0 * precision_sum / functions)});
  table.AddRow({"Recall", bench::Fmt("%.1f", 100.0 * recall_sum / functions)});
  table.AddRow({"F-measure", bench::Fmt("%.1f", 100.0 * f_sum / functions)});
  table.Print();
  std::printf("(averaged over %d functions with non-trivial benefit labels)\n", functions);
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::MemoryAccuracy();
  ofc::BenefitAccuracy();
  return 0;
}
