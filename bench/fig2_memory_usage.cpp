// Figure 2: memory usage of an image-blurring function plotted against (top)
// the byte size of the input and (bottom) the function-specific argument
// (blurring sigma). The paper's point — reproduced here — is that neither
// single feature correlates cleanly with memory usage, while the full feature
// set (dimensions + format + argument) does, which motivates the ML models.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/rng.h"
#include "src/common/stats.h"
#include "src/workloads/functions.h"
#include "src/workloads/media.h"

namespace ofc {
namespace {

void Run() {
  bench::Banner("Memory usage vs. single input features (wand_blur)",
                "Figure 2 + §2.2.2 (why single features cannot predict memory)");

  const workloads::FunctionSpec* blur = workloads::FindFunction("wand_blur");
  Rng rng(2024);
  workloads::MediaGenerator generator(rng.Fork());

  const int kSamples = 600;
  std::vector<double> byte_sizes_mb;
  std::vector<double> sigmas;
  std::vector<double> decoded_mb;
  std::vector<double> memories_mb;
  for (int i = 0; i < kSamples; ++i) {
    const workloads::MediaDescriptor media = generator.Generate(blur->kind);
    const std::vector<double> args = workloads::SampleArgs(*blur, rng);
    const workloads::InvocationDemand demand =
        workloads::ComputeDemand(*blur, media, args, &rng);
    byte_sizes_mb.push_back(static_cast<double>(media.byte_size) / 1e6);
    sigmas.push_back(args[0]);
    decoded_mb.push_back(static_cast<double>(media.DecodedBytes()) / 1e6);
    memories_mb.push_back(static_cast<double>(demand.memory) / 1e6);
  }

  // Scatter summaries: memory distribution per byte-size band (top plot) and
  // per sigma band (bottom plot).
  auto band_table = [&](const std::vector<double>& feature, double lo, double hi, int bands,
                        const char* label, const char* unit) {
    std::printf("\nMemory usage by %s band:\n", label);
    bench::Table table({std::string(label) + " (" + unit + ")", "n", "mem min (MB)",
                        "mem mean (MB)", "mem max (MB)"});
    const double width = (hi - lo) / bands;
    for (int b = 0; b < bands; ++b) {
      RunningStat stat;
      for (int i = 0; i < kSamples; ++i) {
        if (feature[i] >= lo + b * width && feature[i] < lo + (b + 1) * width) {
          stat.Add(memories_mb[i]);
        }
      }
      if (stat.count() == 0) {
        continue;
      }
      char range[64];
      std::snprintf(range, sizeof(range), "%.1f-%.1f", lo + b * width, lo + (b + 1) * width);
      table.AddRow({range, std::to_string(stat.count()), bench::Fmt("%.0f", stat.min()),
                    bench::Fmt("%.0f", stat.mean()), bench::Fmt("%.0f", stat.max())});
    }
    table.Print();
  };

  band_table(byte_sizes_mb, 0.0, 6.0, 8, "input byte size", "MB");
  band_table(sigmas, 0.0, 6.0, 6, "sigma", "blur radius arg");

  std::printf("\nCorrelation of memory usage with individual vs combined features:\n");
  bench::Table corr({"feature", "Pearson r with memory"});
  corr.AddRow({"input byte size alone", bench::Fmt("%.3f", bench::Pearson(byte_sizes_mb,
                                                                          memories_mb))});
  corr.AddRow({"sigma alone", bench::Fmt("%.3f", bench::Pearson(sigmas, memories_mb))});
  // The full feature set captures the decoded footprint x argument structure.
  std::vector<double> combined;
  for (int i = 0; i < kSamples; ++i) {
    combined.push_back(decoded_mb[i] * (6.0 + 2.0 * sigmas[i] / 6.0));
  }
  corr.AddRow({"decoded dims x arg (model features)",
               bench::Fmt("%.3f", bench::Pearson(combined, memories_mb))});
  corr.Print();

  std::printf(
      "\nPaper's claim: no precise correlation from byte size or the argument alone;\n"
      "ML over the full per-category feature set is required (§2.2.2). Expected shape:\n"
      "low |r| for the single features, r ~ 1 for the combined model features.\n");
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::Run();
  return 0;
}
