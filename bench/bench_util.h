// Shared helpers for the reproduction benches: fixed-width table printing and
// simple correlation statistics. Every bench binary regenerates one table or
// figure from the paper and prints it in a comparable textual form.
#ifndef OFC_BENCH_BENCH_UTIL_H_
#define OFC_BENCH_BENCH_UTIL_H_

#include <algorithm>
#include <cmath>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"

namespace ofc::bench {

// Observability export flags shared by the bench binaries. Any bench that
// threads a MetricsRegistry/TraceRecorder through its runs can accept
//   --metrics-json=PATH --metrics-csv=PATH --trace-json=PATH --trace-sample=N
// and dump machine-readable snapshots next to its textual table.
struct ObsFlags {
  std::string metrics_json;
  std::string metrics_csv;
  std::string trace_json;
  std::uint64_t trace_sample = 1;

  bool TraceRequested() const { return !trace_json.empty(); }
};

inline ObsFlags ParseObsFlags(int argc, char** argv) {
  ObsFlags flags;
  auto match = [](const char* arg, const char* name, std::string* out) {
    const std::size_t len = std::strlen(name);
    if (std::strncmp(arg, name, len) == 0 && arg[len] == '=') {
      *out = arg + len + 1;
      return true;
    }
    return false;
  };
  for (int i = 1; i < argc; ++i) {
    std::string value;
    if (match(argv[i], "--metrics-json", &flags.metrics_json) ||
        match(argv[i], "--metrics-csv", &flags.metrics_csv) ||
        match(argv[i], "--trace-json", &flags.trace_json)) {
      continue;
    }
    if (match(argv[i], "--trace-sample", &value)) {
      flags.trace_sample = std::strtoull(value.c_str(), nullptr, 10);
    }
  }
  return flags;
}

// Writes the requested snapshots; unset paths are skipped.
inline void ExportObs(const ObsFlags& flags, const obs::MetricsRegistry& metrics,
                      const obs::TraceRecorder* trace, SimTime now) {
  auto write = [](const std::string& path, const std::string& body) {
    std::FILE* f = std::fopen(path.c_str(), "w");
    if (f == nullptr) {
      std::fprintf(stderr, "cannot write %s\n", path.c_str());
      return;
    }
    std::fwrite(body.data(), 1, body.size(), f);
    std::fclose(f);
  };
  if (!flags.metrics_json.empty()) {
    write(flags.metrics_json, metrics.SnapshotJson(now));
  }
  if (!flags.metrics_csv.empty()) {
    write(flags.metrics_csv, metrics.SnapshotCsv(now));
  }
  if (!flags.trace_json.empty() && trace != nullptr) {
    trace->WriteJson(flags.trace_json);
    std::printf("trace: %zu events (%zu dropped) -> %s\n", trace->num_events(),
                trace->num_dropped(), flags.trace_json.c_str());
  }
}

// Prints a banner naming the experiment being reproduced.
inline void Banner(const std::string& title, const std::string& paper_ref) {
  std::printf("\n================================================================\n");
  std::printf("%s\n", title.c_str());
  std::printf("Reproduces: %s\n", paper_ref.c_str());
  std::printf("================================================================\n");
}

class Table {
 public:
  explicit Table(std::vector<std::string> headers) : headers_(std::move(headers)) {}

  void AddRow(std::vector<std::string> row) { rows_.push_back(std::move(row)); }

  void Print() const {
    std::vector<std::size_t> widths(headers_.size(), 0);
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      widths[c] = headers_[c].size();
    }
    for (const auto& row : rows_) {
      for (std::size_t c = 0; c < row.size() && c < widths.size(); ++c) {
        widths[c] = std::max(widths[c], row[c].size());
      }
    }
    auto print_row = [&](const std::vector<std::string>& row) {
      for (std::size_t c = 0; c < row.size(); ++c) {
        std::printf("%-*s  ", static_cast<int>(widths[c]), row[c].c_str());
      }
      std::printf("\n");
    };
    print_row(headers_);
    std::string rule;
    for (std::size_t c = 0; c < headers_.size(); ++c) {
      rule.append(widths[c], '-');
      rule.append("  ");
    }
    std::printf("%s\n", rule.c_str());
    for (const auto& row : rows_) {
      print_row(row);
    }
  }

 private:
  std::vector<std::string> headers_;
  std::vector<std::vector<std::string>> rows_;
};

inline std::string Fmt(const char* format, double value) {
  char buf[64];
  std::snprintf(buf, sizeof(buf), format, value);
  return buf;
}

// Pearson correlation coefficient; 0 when degenerate.
inline double Pearson(const std::vector<double>& x, const std::vector<double>& y) {
  if (x.size() != y.size() || x.size() < 2) {
    return 0.0;
  }
  const double n = static_cast<double>(x.size());
  double sx = 0;
  double sy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sx += x[i];
    sy += y[i];
  }
  const double mx = sx / n;
  const double my = sy / n;
  double sxy = 0;
  double sxx = 0;
  double syy = 0;
  for (std::size_t i = 0; i < x.size(); ++i) {
    sxy += (x[i] - mx) * (y[i] - my);
    sxx += (x[i] - mx) * (x[i] - mx);
    syy += (y[i] - my) * (y[i] - my);
  }
  if (sxx <= 0 || syy <= 0) {
    return 0.0;
  }
  return sxy / std::sqrt(sxx * syy);
}

}  // namespace ofc::bench

#endif  // OFC_BENCH_BENCH_UTIL_H_
