// google-benchmark microbenchmarks for the hot paths: critical-path ML
// prediction (the §5.1.1 1 ms budget), event-loop throughput, cache cluster
// read/write, and the log allocator — for performance-regression tracking
// rather than paper reproduction.
#include <benchmark/benchmark.h>

#include "bench/trace_util.h"
#include "src/ml/j48.h"
#include "src/ml/random_forest.h"
#include "src/ramcloud/cluster.h"
#include "src/ramcloud/segmented_log.h"
#include "src/sim/event_loop.h"

namespace ofc {
namespace {

const ml::Dataset& BenchDataset() {
  static const ml::Dataset data = bench::BuildMemoryDataset(
      *workloads::FindFunction("wand_sepia"), core::MemoryIntervals(), 400, 12345);
  return data;
}

void BM_J48Predict(benchmark::State& state) {
  ml::J48 model;
  if (!model.Train(BenchDataset()).ok()) {
    state.SkipWithError("training failed");
    return;
  }
  std::size_t i = 0;
  const auto& instances = BenchDataset().instances();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(instances[i].features));
    i = (i + 1) % instances.size();
  }
}
BENCHMARK(BM_J48Predict);

void BM_J48PredictWithMissingFeature(benchmark::State& state) {
  ml::J48 model;
  if (!model.Train(BenchDataset()).ok()) {
    state.SkipWithError("training failed");
    return;
  }
  std::vector<double> features = BenchDataset().instance(0).features;
  features[0] = std::numeric_limits<double>::quiet_NaN();  // Blend path.
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(features));
  }
}
BENCHMARK(BM_J48PredictWithMissingFeature);

void BM_J48Train(benchmark::State& state) {
  for (auto _ : state) {
    ml::J48 model;
    benchmark::DoNotOptimize(model.Train(BenchDataset()).ok());
  }
}
BENCHMARK(BM_J48Train);

void BM_RandomForestPredict(benchmark::State& state) {
  ml::RandomForest model(ml::RandomForestOptions{.num_trees = 20, .seed = 3});
  if (!model.Train(BenchDataset()).ok()) {
    state.SkipWithError("training failed");
    return;
  }
  std::size_t i = 0;
  const auto& instances = BenchDataset().instances();
  for (auto _ : state) {
    benchmark::DoNotOptimize(model.Predict(instances[i].features));
    i = (i + 1) % instances.size();
  }
}
BENCHMARK(BM_RandomForestPredict);

void BM_EventLoopScheduleAndRun(benchmark::State& state) {
  for (auto _ : state) {
    sim::EventLoop loop;
    int sink = 0;
    for (int i = 0; i < 1000; ++i) {
      loop.ScheduleAfter(i, [&sink] { ++sink; });
    }
    loop.Run();
    benchmark::DoNotOptimize(sink);
  }
  state.SetItemsProcessed(state.iterations() * 1000);
}
BENCHMARK(BM_EventLoopScheduleAndRun);

void BM_ClusterWriteRead(benchmark::State& state) {
  sim::EventLoop loop;
  rc::ClusterOptions options;
  options.default_capacity = GiB(4);
  rc::Cluster cluster(&loop, 4, options, Rng(7));
  std::uint64_t i = 0;
  for (auto _ : state) {
    const std::string key = "k" + std::to_string(i % 512);
    cluster.Write(static_cast<int>(i % 4), key, KiB(64), 1, rc::ObjectClass::kInput,
                  false, [](Status) {});
    cluster.Read(static_cast<int>((i + 1) % 4), key, [](Result<rc::CachedObject>) {});
    loop.Run();
    ++i;
  }
  state.SetItemsProcessed(state.iterations() * 2);
}
BENCHMARK(BM_ClusterWriteRead);

void BM_SegmentedLogChurn(benchmark::State& state) {
  rc::SegmentedLog log;
  Rng rng(11);
  std::vector<rc::SegmentedLog::EntryId> live;
  for (auto _ : state) {
    if (live.size() < 256 || rng.Bernoulli(0.6)) {
      const auto id = log.Append(rng.UniformInt(KiB(1), KiB(512)), GiB(1));
      if (id.ok()) {
        live.push_back(*id);
      }
    } else {
      const std::size_t pick = rng.Index(live.size());
      (void)log.Free(live[pick]);
      live[pick] = live.back();
      live.pop_back();
    }
  }
  state.SetItemsProcessed(state.iterations());
}
BENCHMARK(BM_SegmentedLogChurn);

}  // namespace
}  // namespace ofc

BENCHMARK_MAIN();
