// Overload & graceful degradation bench: sweeps offered load from well under
// to well past the platform's sustainable rate while the cache path degrades
// mid-run, and reports what bounded admission + the circuit breaker deliver:
// goodput, explicit shed rate, end-to-end P50/P99, and cumulative breaker open
// time. Writes the series as machine-readable JSON (default
// BENCH_overload.json, override with --json=PATH) so CI can track the
// degradation envelope across commits.
//
// Expected shape: goodput rises with offered load until the concurrency wall,
// then plateaus while the shed rate absorbs the excess; P99 stays bounded by
// the queue deadline instead of growing with the backlog; breaker open time is
// roughly the injected cache-fault window at every load point.
#include <algorithm>
#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

#include "bench/bench_util.h"
#include "src/faasload/environment.h"
#include "src/workloads/functions.h"
#include "src/workloads/media.h"

namespace ofc {
namespace {

constexpr SimTime kHorizon = Seconds(60);       // Arrivals land before this.
constexpr SimDuration kDrain = Minutes(5);      // Completion budget past it.
constexpr SimTime kFaultStart = Seconds(20);    // Cache-path brownout window:
constexpr SimTime kFaultEnd = Seconds(40);      // breaker must trip and bypass.

struct LoadPoint {
  double offered_rps = 0;
  int scheduled = 0;
  int succeeded = 0;
  int shed = 0;
  double goodput_rps = 0;
  double shed_rate = 0;  // Fraction of submissions shed explicitly.
  double p50_ms = 0;
  double p99_ms = 0;
  double breaker_open_s = 0;
};

double Percentile(std::vector<double> values, double q) {
  if (values.empty()) {
    return 0.0;
  }
  std::sort(values.begin(), values.end());
  const double pos = q * static_cast<double>(values.size() - 1);
  return values[static_cast<std::size_t>(pos + 0.5)];
}

LoadPoint RunPoint(SimDuration interarrival, std::uint64_t seed) {
  faasload::EnvironmentOptions env_options;
  env_options.seed = seed;
  // One worker with room for two 2 GiB sandboxes: a small, known concurrency
  // wall so the sweep crosses saturation within a few load points.
  env_options.platform.num_workers = 1;
  env_options.platform.worker_memory = GiB(4);
  env_options.platform.max_queue_depth = 8;
  env_options.platform.queue_deadline = Seconds(2);
  env_options.ofc.proxy.breaker_failure_threshold = 3;
  env_options.ofc.proxy.breaker_open_duration = Seconds(5);
  env_options.ofc.proxy.breaker_half_open_probes = 2;
  faasload::Environment env(faasload::Mode::kOfc, env_options);

  faas::FunctionConfig config;
  config.spec = *workloads::FindFunction("wand_sepia");
  config.booked_memory = GiB(2);
  if (!env.platform().RegisterFunction(config).ok()) {
    std::fprintf(stderr, "RegisterFunction failed\n");
    return {};
  }
  Rng pretrain_rng(seed + 17);
  env.ofc()->trainer().Pretrain(config.spec, 1000, pretrain_rng);

  Rng rng(seed * 7919 + 1);
  workloads::MediaGenerator generator(rng.Fork());
  std::vector<faas::InputObject> inputs;
  for (int i = 0; i < 4; ++i) {
    const auto media =
        generator.GenerateWithByteSize(workloads::InputKind::kImage, KiB(256));
    const std::string key = "in/" + std::to_string(i);
    env.rsds().Seed(key, media.byte_size, faas::MediaToTags(media));
    inputs.push_back(faas::InputObject{key, media});
  }

  // Cache-path brownout mid-sweep: every cache read/write fails until the
  // window closes, so the breaker opens and routes around it.
  env.loop().ScheduleAt(kFaultStart, [&env] {
    env.ofc()->proxy().InjectCacheFaultUntil(kFaultEnd);
  });

  LoadPoint point;
  point.offered_rps = 1e6 / static_cast<double>(interarrival);
  std::vector<double> latencies_ms;
  int completed = 0;
  for (SimTime at = 0; at < kHorizon; at += interarrival) {
    ++point.scheduled;
    env.loop().ScheduleAt(at, [&env, &point, &latencies_ms, &completed, &rng,
                               &inputs] {
      env.platform().Invoke("wand_sepia", {inputs[rng.Index(inputs.size())]},
                            {0.5}, [&point, &latencies_ms,
                                    &completed](const faas::InvocationRecord& r) {
                              ++completed;
                              if (r.shed) {
                                ++point.shed;
                              } else if (!r.failed) {
                                ++point.succeeded;
                                latencies_ms.push_back(ToMillis(r.total));
                              }
                            });
    });
  }
  const SimTime deadline = kHorizon + kDrain;
  while (completed < point.scheduled && env.loop().now() < deadline &&
         env.loop().Step()) {
  }

  point.goodput_rps = point.succeeded / ToSeconds(kHorizon);
  point.shed_rate =
      point.scheduled == 0 ? 0.0 : static_cast<double>(point.shed) / point.scheduled;
  point.p50_ms = Percentile(latencies_ms, 0.50);
  point.p99_ms = Percentile(latencies_ms, 0.99);
  point.breaker_open_s =
      env.metrics().GaugeValue("ofc.breaker.open_time_us") / 1e6;
  return point;
}

void WriteJson(const std::string& path, const std::vector<LoadPoint>& points) {
  std::FILE* f = std::fopen(path.c_str(), "w");
  if (f == nullptr) {
    std::fprintf(stderr, "cannot write %s\n", path.c_str());
    return;
  }
  std::fprintf(f, "{\n  \"bench\": \"overload_degradation\",\n  \"points\": [\n");
  for (std::size_t i = 0; i < points.size(); ++i) {
    const LoadPoint& p = points[i];
    std::fprintf(f,
                 "    {\"offered_rps\": %.3f, \"scheduled\": %d, \"succeeded\": %d, "
                 "\"shed\": %d, \"goodput_rps\": %.3f, \"shed_rate\": %.4f, "
                 "\"p50_ms\": %.3f, \"p99_ms\": %.3f, \"breaker_open_s\": %.3f}%s\n",
                 p.offered_rps, p.scheduled, p.succeeded, p.shed, p.goodput_rps,
                 p.shed_rate, p.p50_ms, p.p99_ms, p.breaker_open_s,
                 i + 1 < points.size() ? "," : "");
  }
  std::fprintf(f, "  ]\n}\n");
  std::fclose(f);
  std::printf("\nwrote %zu load points -> %s\n", points.size(), path.c_str());
}

void Run(const std::string& json_path) {
  bench::Banner("Overload protection & graceful degradation",
                "robustness extension (bounded admission + cache breaker)");

  // wand_sepia runs ~21 ms warm and the worker fits two sandboxes, so the
  // concurrency wall sits near 75 req/s; the sweep brackets it from 20 to 200.
  const SimDuration kIntervals[] = {Millis(50), Millis(20), Millis(12),
                                    Millis(8), Millis(5)};
  std::vector<LoadPoint> points;
  for (SimDuration interval : kIntervals) {
    points.push_back(RunPoint(interval, /*seed=*/2021));
  }

  bench::Table table({"Offered (req/s)", "Scheduled", "Succeeded", "Shed",
                      "Goodput (req/s)", "Shed rate", "P50 (ms)", "P99 (ms)",
                      "Breaker open (s)"});
  for (const LoadPoint& p : points) {
    table.AddRow({bench::Fmt("%.2f", p.offered_rps), bench::Fmt("%.0f", p.scheduled),
                  bench::Fmt("%.0f", p.succeeded), bench::Fmt("%.0f", p.shed),
                  bench::Fmt("%.2f", p.goodput_rps), bench::Fmt("%.3f", p.shed_rate),
                  bench::Fmt("%.1f", p.p50_ms), bench::Fmt("%.1f", p.p99_ms),
                  bench::Fmt("%.2f", p.breaker_open_s)});
  }
  table.Print();

  std::printf(
      "\nExpected shape: goodput plateaus at the concurrency wall while the shed\n"
      "rate absorbs the excess; P99 stays bounded by the 2 s queue deadline; the\n"
      "breaker is open for roughly the injected 20 s cache-fault window.\n");

  WriteJson(json_path, points);
}

}  // namespace
}  // namespace ofc

int main(int argc, char** argv) {
  std::string json_path = "BENCH_overload.json";
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--json=", 7) == 0) {
      json_path = argv[i] + 7;
    }
  }
  ofc::Run(json_path);
  return 0;
}
