// Figure 3 (§2.2.3): contribution of the E/T/L phases for a single-stage image
// function (sharp_resize) and a pipeline (MapReduce word count), with the data
// in an S3-style RSDS vs. in a Redis IMOC.
//
// Expected shape: with the RSDS, E&L dominates small-object functions (up to
// ~97 % at 128 kB) and is a large share of the pipeline (~52 % at 30 MB); with
// Redis, the E&L contribution becomes negligible.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/micro_common.h"

namespace ofc {
namespace {

// The §2.2.3 motivation experiment runs on AWS: S3 as the RSDS. Swap the
// environment's store profile by measuring the baselines only (no OFC).
void Run() {
  bench::Banner("ETL phase breakdown: RSDS (S3-style) vs IMOC (Redis)",
                "Figure 3 (§2.2.3)");

  std::printf("\n(a) sharp_resize, single-stage image processing\n");
  bench::Table image_table({"Input size", "Backend", "E (s)", "T (s)", "L (s)",
                            "E&L share (%)"});
  for (Bytes size : {KiB(1), KiB(16), KiB(32), KiB(64), KiB(128), KiB(512), KiB(1024),
                     KiB(3072)}) {
    for (faasload::Mode mode : {faasload::Mode::kOwkSwift, faasload::Mode::kOwkRedis}) {
      const bench::EtlBreakdown etl = bench::RunSingleFunction(
          mode, bench::CacheScenario::kMiss, "sharp_resize", size, 42,
          mode == faasload::Mode::kOwkSwift ? std::optional(store::StoreProfile::S3())
                                            : std::nullopt);
      image_table.AddRow(
          {FormatBytes(size), mode == faasload::Mode::kOwkSwift ? "RSDS" : "Redis",
           bench::Fmt("%.4f", etl.extract_s), bench::Fmt("%.4f", etl.compute_s),
           bench::Fmt("%.4f", etl.load_s), bench::Fmt("%.1f", 100.0 * etl.EOverTotal())});
    }
  }
  image_table.Print();

  std::printf("\n(b) map_reduce word count, multi-stage pipeline\n");
  bench::Table mr_table({"Input size", "Backend", "E (s)", "T (s)", "L (s)",
                         "E&L share (%)"});
  for (Bytes size : {MiB(1), MiB(5), MiB(10), MiB(20), MiB(30)}) {
    for (faasload::Mode mode : {faasload::Mode::kOwkSwift, faasload::Mode::kOwkRedis}) {
      const bench::EtlBreakdown etl = bench::RunPipeline(
          mode, bench::CacheScenario::kMiss, "map_reduce", size, 43,
          mode == faasload::Mode::kOwkSwift ? std::optional(store::StoreProfile::S3())
                                            : std::nullopt);
      mr_table.AddRow(
          {FormatBytes(size), mode == faasload::Mode::kOwkSwift ? "RSDS" : "Redis",
           bench::Fmt("%.3f", etl.extract_s), bench::Fmt("%.3f", etl.compute_s),
           bench::Fmt("%.3f", etl.load_s), bench::Fmt("%.1f", 100.0 * etl.EOverTotal())});
    }
  }
  mr_table.Print();

  std::printf(
      "\nExpected shape: E&L dominates with the RSDS (up to ~97%% for small images,\n"
      "~half the pipeline time in absolute seconds); with Redis the absolute E&L\n"
      "cost drops by an order of magnitude and stops limiting the functions.\n");
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::Run();
  return 0;
}
