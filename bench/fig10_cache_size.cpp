// Figure 10 (§7.2.2): evolution of OFC's cache size over the 30-minute macro
// experiment, for the three tenant profiles.
//
// Expected shape: the cache capacity tracks the hoardable (booked-but-unused)
// memory, so naive > normal > advanced, fluctuating as sandboxes come and go.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/macro_common.h"

namespace ofc {
namespace {

void Run() {
  bench::Banner("OFC cache size over time, per tenant profile", "Figure 10 (§7.2.2)");

  struct Series {
    faasload::TenantProfile profile;
    std::vector<bench::CacheSample> samples;
    double mean_capacity_gb = 0;
  };
  std::vector<Series> all;
  for (faasload::TenantProfile profile :
       {faasload::TenantProfile::kNormal, faasload::TenantProfile::kNaive,
        faasload::TenantProfile::kAdvanced}) {
    bench::MacroConfig config;
    config.mode = faasload::Mode::kOfc;
    config.profile = profile;
    const bench::MacroResult result = bench::RunMacro(config);
    Series series;
    series.profile = profile;
    series.samples = result.cache_series;
    double sum = 0;
    for (const bench::CacheSample& sample : result.cache_series) {
      sum += static_cast<double>(sample.capacity) / 1e9;
    }
    series.mean_capacity_gb =
        result.cache_series.empty() ? 0 : sum / static_cast<double>(result.cache_series.size());
    all.push_back(std::move(series));
  }

  bench::Table table({"minute", "normal cap (GB)", "naive cap (GB)", "advanced cap (GB)",
                      "normal used (GB)", "naive used (GB)", "advanced used (GB)"});
  const std::size_t n =
      std::min({all[0].samples.size(), all[1].samples.size(), all[2].samples.size()});
  for (std::size_t i = 0; i < n; i += 2) {  // Every minute (samples are 30 s apart).
    table.AddRow({bench::Fmt("%.1f", all[0].samples[i].minute),
                  bench::Fmt("%.2f", static_cast<double>(all[0].samples[i].capacity) / 1e9),
                  bench::Fmt("%.2f", static_cast<double>(all[1].samples[i].capacity) / 1e9),
                  bench::Fmt("%.2f", static_cast<double>(all[2].samples[i].capacity) / 1e9),
                  bench::Fmt("%.3f", static_cast<double>(all[0].samples[i].used) / 1e9),
                  bench::Fmt("%.3f", static_cast<double>(all[1].samples[i].used) / 1e9),
                  bench::Fmt("%.3f", static_cast<double>(all[2].samples[i].used) / 1e9)});
  }
  table.Print();

  bench::Table summary({"Profile", "mean cache capacity (GB)"});
  for (const Series& series : all) {
    summary.AddRow({faasload::TenantProfileName(series.profile),
                    bench::Fmt("%.2f", series.mean_capacity_gb)});
  }
  summary.Print();
  std::printf(
      "\nExpected shape: naive books 2 GB everywhere so it hoards the most;\n"
      "advanced books tight so it hoards the least; normal sits in between\n"
      "(paper Figure 10: roughly 5-25 GB over the run, ordered the same way).\n");
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::Run();
  return 0;
}
