// Figure 6: wall-clock time of a single memory-requirement prediction, for
// varying interval sizes (8/16/32 MB), all functions; plus the J48 vs
// RandomForest comparison of §7.1.2. These are *real* measured nanoseconds on
// this repo's tree implementations (the one experiment that is not simulated).
//
// Expected shape: microsecond-scale J48 predictions, well under the 1 ms
// budget; RandomForest an order of magnitude (or more) slower at similar
// accuracy, which is why the paper selects J48.
#include <chrono>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "bench/trace_util.h"
#include "src/common/stats.h"
#include "src/ml/j48.h"
#include "src/ml/random_forest.h"

namespace ofc {
namespace {

// simlint: allow(wall-clock) -- benchmarks real ML inference latency (paper Fig. 6), not simulated time
using Clock = std::chrono::steady_clock;

// Measures per-prediction latency of `model` over the dataset's feature rows.
Samples MeasurePredictions(const ml::Classifier& model, const ml::Dataset& data,
                           int rounds) {
  Samples out;
  int sink = 0;
  for (int r = 0; r < rounds; ++r) {
    for (const ml::Instance& inst : data.instances()) {
      const auto start = Clock::now();
      sink += model.Predict(inst.features);
      const auto end = Clock::now();
      out.Add(std::chrono::duration<double, std::micro>(end - start).count());
    }
  }
  // Defeat dead-code elimination of the measured call.
  asm volatile("" : : "r"(sink));
  return out;
}

void Run() {
  bench::Banner("Memory-prediction latency (real wall clock)",
                "Figure 6 + §7.1.2 (J48 median ~3 us, p99 ~13 us at 16 MB intervals; "
                "RandomForest ~106 us median)");

  bench::Table table(
      {"Interval size", "Algorithm", "median (us)", "p90 (us)", "p99 (us)", "max (us)"});
  for (Bytes interval : {MiB(8), MiB(16), MiB(32)}) {
    const core::MemoryIntervals intervals(interval, GiB(2));
    Samples j48_samples;
    Samples forest_samples;
    int function_index = 0;
    for (const workloads::FunctionSpec& spec : workloads::AllFunctions()) {
      const ml::Dataset data =
          bench::BuildMemoryDataset(spec, intervals, 400, 4000 + function_index++);
      ml::J48 j48;
      if (!j48.Train(data).ok()) {
        continue;
      }
      const Samples s = MeasurePredictions(j48, data, 2);
      for (double v : s.values()) {
        j48_samples.Add(v);
      }
      if (interval == MiB(16)) {  // The paper's RandomForest reference point.
        ml::RandomForest forest(ml::RandomForestOptions{.num_trees = 20, .seed = 3});
        if (forest.Train(data).ok()) {
          const Samples f = MeasurePredictions(forest, data, 1);
          for (double v : f.values()) {
            forest_samples.Add(v);
          }
        }
      }
    }
    table.AddRow({FormatBytes(interval), "J48", bench::Fmt("%.2f", j48_samples.Median()),
                  bench::Fmt("%.2f", j48_samples.Percentile(0.9)),
                  bench::Fmt("%.2f", j48_samples.Percentile(0.99)),
                  bench::Fmt("%.2f", j48_samples.Max())});
    if (forest_samples.count() > 0) {
      table.AddRow({FormatBytes(interval), "RandomForest",
                    bench::Fmt("%.2f", forest_samples.Median()),
                    bench::Fmt("%.2f", forest_samples.Percentile(0.9)),
                    bench::Fmt("%.2f", forest_samples.Percentile(0.99)),
                    bench::Fmt("%.2f", forest_samples.Max())});
    }
  }
  table.Print();
  std::printf(
      "\nBudget check: the paper requires predictions well under 1 ms on the\n"
      "invocation critical path (§5.1.1). J48 should sit in the microsecond range\n"
      "with RandomForest 1-2 orders of magnitude slower.\n");
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::Run();
  return 0;
}
