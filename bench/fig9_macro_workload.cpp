// Figure 9 (§7.2.2): total execution time of all invocations per function,
// for the three tenant booking profiles (normal / naive / advanced), comparing
// OWK-Swift and OFC. Pass --tenants-per-function=3 for the 24-tenant variant.
//
// Expected shape: OFC always beats OWK-Swift, by roughly 24-80 % with 8
// tenants; with 24 tenants the hit ratio drops and the improvement shrinks.
#include <cstdio>
#include <cstring>
#include <map>

#include "bench/bench_util.h"
#include "bench/macro_common.h"

namespace ofc {
namespace {

// Sums the execution time across all tenants of each function.
std::map<std::string, double> TotalsByFunction(const bench::MacroResult& result) {
  std::map<std::string, double> totals;
  for (const faasload::TenantResult& tenant : result.tenants) {
    totals[tenant.function] += ToSeconds(tenant.TotalExecutionTime());
  }
  return totals;
}

std::size_t TotalFailures(const bench::MacroResult& result) {
  std::size_t failures = 0;
  for (const faasload::TenantResult& tenant : result.tenants) {
    failures += tenant.FailureCount();
  }
  return failures;
}

void Run(int tenants_per_function) {
  bench::Banner("Macro workload: total execution time per function, OWK-Swift vs OFC",
                "Figure 9 (§7.2.2); --tenants-per-function=3 gives the 24-tenant variant");
  std::printf("Tenants per function: %d\n", tenants_per_function);

  for (faasload::TenantProfile profile :
       {faasload::TenantProfile::kNormal, faasload::TenantProfile::kNaive,
        faasload::TenantProfile::kAdvanced}) {
    bench::MacroConfig config;
    config.profile = profile;
    config.tenants_per_function = tenants_per_function;

    config.mode = faasload::Mode::kOwkSwift;
    const bench::MacroResult swift = bench::RunMacro(config);
    config.mode = faasload::Mode::kOfc;
    const bench::MacroResult ofc_run = bench::RunMacro(config);

    std::printf("\n--- profile: %s ---\n",
                faasload::TenantProfileName(profile).c_str());
    bench::Table table(
        {"Function", "OWK-Swift total (s)", "OFC total (s)", "improvement (%)"});
    const auto swift_totals = TotalsByFunction(swift);
    const auto ofc_totals = TotalsByFunction(ofc_run);
    double improvement_sum = 0;
    int rows = 0;
    for (const auto& [function, swift_total] : swift_totals) {
      const double ofc_total = ofc_totals.count(function) ? ofc_totals.at(function) : 0;
      const double gain =
          swift_total <= 0 ? 0 : 100.0 * (swift_total - ofc_total) / swift_total;
      improvement_sum += gain;
      ++rows;
      table.AddRow({function, bench::Fmt("%.1f", swift_total),
                    bench::Fmt("%.1f", ofc_total), bench::Fmt("%+.1f", gain)});
    }
    table.Print();
    std::printf("Average improvement: %.1f %% | hit ratio: %.1f %% | failures: "
                "swift=%zu ofc=%zu\n",
                rows == 0 ? 0.0 : improvement_sum / rows,
                100.0 * ofc_run.proxy_stats.HitRatio(), TotalFailures(swift),
                TotalFailures(ofc_run));
  }
  std::printf(
      "\nExpected shape: OFC improves every function (paper: 23.9-79.8%%, avg 54.6%%\n"
      "with 8 tenants; 4.5-44.9%% with 24 tenants as the hit ratio drops).\n");
}

}  // namespace
}  // namespace ofc

int main(int argc, char** argv) {
  int tenants_per_function = 1;
  for (int i = 1; i < argc; ++i) {
    if (std::strncmp(argv[i], "--tenants-per-function=", 23) == 0) {
      tenants_per_function = std::atoi(argv[i] + 23);
    }
  }
  ofc::Run(tenants_per_function < 1 ? 1 : tenants_per_function);
  return 0;
}
