// §2.2.1 + Figure 1 motivation: how much worker memory do over-provisioning
// and sandbox keep-alive actually waste?
//
// A vanilla OWK-Swift deployment runs all 19 functions for 30 minutes with a
// realistic arrival mix (steady Poisson + rare + bursty tenants, per the
// Serverless-in-the-Wild characterization the paper cites). The bench reports
// the two waste sources the paper quantifies:
//   * over-booking: the AWS survey's "54 % of sandboxes configured with 512 MB
//     or more, but average/median used memory of 65 MB / 29 MB";
//   * keep-alive: sandboxes stay resident for 600 s between invocations, so
//     the busy fraction of sandbox lifetime is tiny.
// The final row is the punchline: the average hoardable memory — exactly the
// pool OFC's cache runs on.
#include <cstdio>

#include "bench/bench_util.h"
#include "src/common/stats.h"
#include "src/faasload/environment.h"
#include "src/faasload/injector.h"

namespace ofc {
namespace {

struct WasteResult {
  double booked_512_share = 0;   // Share of sandboxes booked >= 512 MB.
  double used_mean_mb = 0;
  double used_median_mb = 0;
  double overbooking_factor = 0;  // mean(booked / used).
  double busy_fraction = 0;       // exec time / sandbox uptime.
  double hoardable_gb_mean = 0;   // mean over samples of (reserved - predicted need).
};

WasteResult RunProfile(faasload::TenantProfile profile) {
  faasload::EnvironmentOptions options;
  options.platform.num_workers = 4;
  options.platform.worker_memory = GiB(64);
  options.seed = 7331;
  faasload::Environment env(faasload::Mode::kOwkSwift, options);
  faasload::LoadInjector injector(&env, profile, 11);

  int index = 0;
  for (const workloads::FunctionSpec& spec : workloads::AllFunctions()) {
    faasload::TenantSpec tenant;
    tenant.name = "t-" + spec.name;
    tenant.function = spec.name;
    tenant.dataset_objects = 3;
    switch (index++ % 3) {
      case 0:  // Steady.
        tenant.arrivals = faasload::ArrivalPattern::kExponential;
        tenant.mean_interval_s = 60;
        break;
      case 1:  // Rare ("invoked once per 10 minutes or less").
        tenant.arrivals = faasload::ArrivalPattern::kExponential;
        tenant.mean_interval_s = 600;
        break;
      case 2:  // Bursty.
        tenant.arrivals = faasload::ArrivalPattern::kBursty;
        tenant.mean_interval_s = 300;
        tenant.burst_size = 8;
        tenant.burst_spacing_s = 2.0;
        break;
    }
    if (!injector.AddTenant(tenant).ok()) {
      std::fprintf(stderr, "tenant setup failed for %s\n", spec.name.c_str());
    }
  }

  // Sample sandbox occupancy every 15 s.
  Samples reserved_gb;
  Samples sandbox_count;
  injector.AddSampler(Seconds(15), [&env, &reserved_gb, &sandbox_count] {
    Bytes reserved = 0;
    std::size_t sandboxes = 0;
    for (int w = 0; w < env.platform().num_workers(); ++w) {
      reserved += env.platform().SandboxReserved(w);
      sandboxes += env.platform().NumSandboxes(w);
    }
    reserved_gb.Add(static_cast<double>(reserved) / 1e9);
    sandbox_count.Add(static_cast<double>(sandboxes));
  });

  const SimDuration duration = Minutes(30);
  injector.Run(duration);

  WasteResult result;
  Samples used_mb;
  RunningStat overbooking;
  SimDuration busy_time = 0;
  std::size_t booked_512 = 0;
  std::size_t invocations = 0;
  for (const faasload::TenantResult& tenant : injector.results()) {
    const Bytes booked = env.platform().GetFunction(tenant.function)->booked_memory;
    for (const auto& record : tenant.invocations) {
      used_mb.Add(static_cast<double>(record.memory_used) / 1e6);
      overbooking.Add(static_cast<double>(booked) /
                      std::max<double>(1.0, static_cast<double>(record.memory_used)));
      busy_time += record.startup_time + record.extract_time + record.compute_time +
                   record.load_time;
      booked_512 += booked >= MiB(512);
      ++invocations;
    }
  }
  result.booked_512_share =
      invocations == 0 ? 0 : static_cast<double>(booked_512) / static_cast<double>(invocations);
  result.used_mean_mb = used_mb.Mean();
  result.used_median_mb = used_mb.Median();
  result.overbooking_factor = overbooking.mean();
  // Sandbox uptime from the occupancy samples (count x sampling period).
  const double uptime_s = sandbox_count.Mean() * ToSeconds(duration);
  result.busy_fraction = uptime_s <= 0 ? 0 : ToSeconds(busy_time) / uptime_s;
  // Hoardable: booked-but-unused memory while sandboxes are resident. The
  // resident need is approximated by the mean used memory per sandbox.
  const double resident_need_gb =
      sandbox_count.Mean() * result.used_mean_mb / 1e3;
  result.hoardable_gb_mean = std::max(0.0, reserved_gb.Mean() - resident_need_gb);
  return result;
}

void Run() {
  bench::Banner("Memory waste from over-booking and keep-alive",
                "§2.2.1 + Figure 1 (AWS survey: 54% of sandboxes >= 512 MB, "
                "65 MB mean / 29 MB median used)");

  bench::Table table({"Metric", "naive", "normal", "advanced"});
  WasteResult results[3];
  const faasload::TenantProfile profiles[] = {faasload::TenantProfile::kNaive,
                                              faasload::TenantProfile::kNormal,
                                              faasload::TenantProfile::kAdvanced};
  for (int i = 0; i < 3; ++i) {
    results[i] = RunProfile(profiles[i]);
  }
  auto row = [&](const std::string& name, auto getter, const char* format) {
    table.AddRow({name, bench::Fmt(format, getter(results[0])),
                  bench::Fmt(format, getter(results[1])),
                  bench::Fmt(format, getter(results[2]))});
  };
  row("Sandboxes booked >= 512 MB (%)",
      [](const WasteResult& r) { return 100.0 * r.booked_512_share; }, "%.0f");
  row("Used memory, mean (MB)", [](const WasteResult& r) { return r.used_mean_mb; },
      "%.0f");
  row("Used memory, median (MB)", [](const WasteResult& r) { return r.used_median_mb; },
      "%.0f");
  row("Over-booking factor (booked/used)",
      [](const WasteResult& r) { return r.overbooking_factor; }, "%.1f");
  row("Sandbox busy fraction (%)",
      [](const WasteResult& r) { return 100.0 * r.busy_fraction; }, "%.2f");
  row("Hoardable memory, mean (GB)",
      [](const WasteResult& r) { return r.hoardable_gb_mean; }, "%.1f");
  table.Print();

  std::printf(
      "\nExpected shape: most booked memory goes unused (the naive profile books\n"
      "2 GB everywhere for ~100-400 MB of actual use), and sandboxes are busy for\n"
      "well under 10%% of their kept-alive lifetime — the idle remainder is the\n"
      "pool OFC's opportunistic cache repurposes.\n");
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::Run();
  return 0;
}
