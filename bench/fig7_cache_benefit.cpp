// Figure 7 (§7.2.1): end-to-end ETL durations of 6 single-stage image functions
// and 4 multi-stage pipelines under five configurations: OWK-Swift, OWK-Redis,
// and OFC in the LocalHit / Miss / RemoteHit cache scenarios.
//
// Expected shape:
//   * OFC-LH beats OWK-Swift by up to ~82 % (single-stage) / ~60 % (pipelines)
//     and closely tracks OWK-Redis;
//   * OFC-M still beats OWK-Swift (outputs are write-back buffered) but loses
//     to OWK-Redis;
//   * OFC-RH costs slightly more than OFC-LH (remote RAM access), far below
//     Swift reads.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/micro_common.h"

namespace ofc {
namespace {

struct Config {
  faasload::Mode mode;
  bench::CacheScenario scenario;
};

const Config kConfigs[] = {
    {faasload::Mode::kOwkSwift, bench::CacheScenario::kMiss},
    {faasload::Mode::kOwkRedis, bench::CacheScenario::kMiss},
    {faasload::Mode::kOfc, bench::CacheScenario::kLocalHit},
    {faasload::Mode::kOfc, bench::CacheScenario::kMiss},
    {faasload::Mode::kOfc, bench::CacheScenario::kRemoteHit},
};

void SingleStage() {
  const char* kFunctions[] = {"wand_blur", "wand_resize", "wand_sepia",
                              "wand_rotate", "wand_denoise", "wand_edge"};
  for (const char* function : kFunctions) {
    std::printf("\n--- %s ---\n", function);
    bench::Table table({"Input size", "Config", "E (ms)", "T (ms)", "L (ms)",
                        "total (ms)", "vs OWK-Swift (%)"});
    for (Bytes size : {KiB(1), KiB(16), KiB(64), KiB(128), KiB(1024), KiB(3072)}) {
      double swift_total = 0;
      for (const Config& config : kConfigs) {
        const bench::EtlBreakdown etl =
            bench::RunSingleFunction(config.mode, config.scenario, function, size, 77);
        if (config.mode == faasload::Mode::kOwkSwift) {
          swift_total = etl.total_s;
        }
        const double gain =
            swift_total <= 0 ? 0 : 100.0 * (swift_total - etl.total_s) / swift_total;
        table.AddRow({FormatBytes(size), bench::ScenarioName(config.mode, config.scenario),
                      bench::Fmt("%.2f", etl.extract_s * 1e3),
                      bench::Fmt("%.2f", etl.compute_s * 1e3),
                      bench::Fmt("%.2f", etl.load_s * 1e3),
                      bench::Fmt("%.2f", etl.total_s * 1e3), bench::Fmt("%+.1f", gain)});
      }
    }
    table.Print();
  }
}

void Pipelines() {
  struct PipelineCase {
    const char* name;
    std::vector<Bytes> sizes;
  };
  const PipelineCase kCases[] = {
      {"map_reduce", {MiB(5), MiB(15), MiB(30)}},
      {"THIS", {MiB(30), MiB(60), MiB(125)}},
      {"IMAD", {MiB(5), MiB(15), MiB(30)}},
      {"image_processing", {MiB(1), MiB(3), MiB(8)}},
  };
  for (const PipelineCase& pipeline_case : kCases) {
    std::printf("\n--- pipeline: %s ---\n", pipeline_case.name);
    bench::Table table({"Input size", "Config", "E (s)", "T (s)", "L (s)", "total (s)",
                        "vs OWK-Swift (%)"});
    for (Bytes size : pipeline_case.sizes) {
      double swift_total = 0;
      for (const Config& config : kConfigs) {
        const bench::EtlBreakdown etl = bench::RunPipeline(
            config.mode, config.scenario, pipeline_case.name, size, 78);
        if (config.mode == faasload::Mode::kOwkSwift) {
          swift_total = etl.total_s;
        }
        const double gain =
            swift_total <= 0 ? 0 : 100.0 * (swift_total - etl.total_s) / swift_total;
        table.AddRow({FormatBytes(size), bench::ScenarioName(config.mode, config.scenario),
                      bench::Fmt("%.3f", etl.extract_s), bench::Fmt("%.3f", etl.compute_s),
                      bench::Fmt("%.3f", etl.load_s), bench::Fmt("%.3f", etl.total_s),
                      bench::Fmt("%+.1f", gain)});
      }
    }
    table.Print();
  }
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::bench::Banner(
      "End-to-end ETL durations under OWK-Swift / OWK-Redis / OFC-{LH,M,RH}",
      "Figure 7 (§7.2.1)");
  ofc::SingleStage();
  ofc::Pipelines();
  return 0;
}
