// Scenario runner shared by the Figure 3 and Figure 7 benches: executes one
// function (or pipeline) at a controlled input size under a given
// mode x cache-state scenario and reports the measured ETL breakdown.
//
// Scenarios (§7.2.1): LH (local hit — the input's master copy is cached on the
// worker that runs the function), M (miss — input only in the RSDS), RH
// (remote hit — cached, but mastered on a different worker). Baselines ignore
// the scenario (they have no cache). All runs measure a *warm-sandbox*
// invocation so cold-start noise does not pollute the E/T/L comparison.
#ifndef OFC_BENCH_MICRO_COMMON_H_
#define OFC_BENCH_MICRO_COMMON_H_

#include <memory>
#include <string>

#include "src/faasload/environment.h"
#include "src/faasload/injector.h"
#include "src/workloads/media.h"
#include "src/workloads/pipelines.h"

namespace ofc::bench {

enum class CacheScenario { kLocalHit, kMiss, kRemoteHit };

inline std::string ScenarioName(faasload::Mode mode, CacheScenario scenario) {
  if (mode != faasload::Mode::kOfc) {
    return faasload::ModeName(mode);
  }
  switch (scenario) {
    case CacheScenario::kLocalHit:
      return "OFC-LH";
    case CacheScenario::kMiss:
      return "OFC-M";
    case CacheScenario::kRemoteHit:
      return "OFC-RH";
  }
  return "OFC";
}

struct EtlBreakdown {
  double extract_s = 0;
  double compute_s = 0;
  double load_s = 0;
  double total_s = 0;  // Wall clock (tasks overlap in pipelines).
  // Share of E&L among the summed phase times (Figure 3's stacked bars).
  double EOverTotal() const {
    const double phases = extract_s + compute_s + load_s;
    return phases <= 0 ? 0 : (extract_s + load_s) / phases;
  }
};

inline faasload::EnvironmentOptions MicroEnvOptions(
    std::uint64_t seed, const std::optional<store::StoreProfile>& rsds_profile) {
  faasload::EnvironmentOptions options;
  options.platform.num_workers = 4;
  options.platform.worker_memory = GiB(8);
  options.seed = seed;
  options.rsds_profile = rsds_profile;
  return options;
}

// Runs `function` on an input of ~`input_size` bytes; returns the breakdown of
// the measured (second, warm) invocation. `rsds_profile` optionally overrides
// the store latency (the Figure 3 motivation uses S3).
inline EtlBreakdown RunSingleFunction(
    faasload::Mode mode, CacheScenario scenario, const std::string& function,
    Bytes input_size, std::uint64_t seed,
    std::optional<store::StoreProfile> rsds_profile = std::nullopt) {
  const workloads::FunctionSpec* spec = workloads::FindFunction(function);
  faasload::Environment env(mode, MicroEnvOptions(seed, rsds_profile));
  faas::FunctionConfig config;
  config.spec = *spec;
  config.booked_memory = GiB(2);
  (void)env.platform().RegisterFunction(config);

  Rng rng(seed);
  if (env.ofc() != nullptr) {
    Rng pretrain_rng = rng.Fork();
    env.ofc()->trainer().Pretrain(*spec, 1000, pretrain_rng);
  }

  workloads::MediaGenerator generator(rng.Fork());
  const workloads::MediaDescriptor warm_media =
      generator.GenerateWithByteSize(spec->kind, input_size);
  const workloads::MediaDescriptor target_media =
      generator.GenerateWithByteSize(spec->kind, input_size);
  env.rsds().Seed("bench/warm", warm_media.byte_size, faas::MediaToTags(warm_media));
  env.rsds().Seed("bench/target", target_media.byte_size, faas::MediaToTags(target_media));
  const std::vector<double> args = workloads::SampleArgs(*spec, rng);

  auto invoke = [&](const std::string& key, const workloads::MediaDescriptor& media) {
    faas::InvocationRecord out;
    bool done = false;
    env.platform().Invoke(function, {faas::InputObject{key, media}}, args,
                          [&](const faas::InvocationRecord& r) {
                            out = r;
                            done = true;
                          });
    // Bounded drive: periodic OFC timers keep the loop non-empty forever.
    const SimTime deadline = env.loop().now() + Minutes(10);
    while (!done && env.loop().now() < deadline && env.loop().Step()) {
    }
    return out;
  };

  // Warm the sandbox with a different object (keeps the target uncached).
  const faas::InvocationRecord warmup = invoke("bench/warm", warm_media);

  if (mode == faasload::Mode::kOfc) {
    if (scenario == CacheScenario::kLocalHit) {
      // Prime: a first access admits the target on the sandbox's worker.
      (void)invoke("bench/target", target_media);
    } else if (scenario == CacheScenario::kRemoteHit) {
      // Admit the target with its master on a *different* node than the warm
      // sandbox's worker. That node has no sandboxes (hence no hoard), so give
      // its cache instance explicit capacity for the staged object.
      const int other = (warmup.worker + 1) % env.platform().num_workers();
      const auto meta = env.rsds().Stat("bench/target");
      (void)env.cluster()->SetCapacity(other, meta->size + MiB(64));
      bool done = false;
      env.cluster()->Write(other, "bench/target", meta->size, meta->latest_version,
                           rc::ObjectClass::kInput, /*dirty=*/false,
                           [&](Status) { done = true; });
      while (!done && env.loop().Step()) {
      }
    }
  }

  const faas::InvocationRecord measured = invoke("bench/target", target_media);
  EtlBreakdown out;
  out.extract_s = ToSeconds(measured.extract_time);
  out.compute_s = ToSeconds(measured.compute_time);
  out.load_s = ToSeconds(measured.load_time);
  out.total_s = ToSeconds(measured.total);
  return out;
}

// Runs a pipeline over ~`input_size` bytes of chunked input.
inline EtlBreakdown RunPipeline(
    faasload::Mode mode, CacheScenario scenario, const std::string& pipeline_name,
    Bytes input_size, std::uint64_t seed,
    std::optional<store::StoreProfile> rsds_profile = std::nullopt) {
  const workloads::PipelineSpec* pipeline = workloads::FindPipeline(pipeline_name);
  faasload::Environment env(mode, MicroEnvOptions(seed, rsds_profile));
  Rng rng(seed);
  for (const workloads::PipelineStage& stage : pipeline->stages) {
    const workloads::FunctionSpec* fn = workloads::FindFunction(stage.function);
    if (env.platform().GetFunction(fn->name) == nullptr) {
      faas::FunctionConfig config;
      config.spec = *fn;
      config.booked_memory = GiB(2);
      (void)env.platform().RegisterFunction(config);
      if (env.ofc() != nullptr) {
        Rng pretrain_rng = rng.Fork();
        env.ofc()->trainer().Pretrain(*fn, 1000, pretrain_rng);
      }
    }
  }

  workloads::MediaGenerator generator(rng.Fork());
  auto make_chunks = [&](const std::string& prefix) {
    std::vector<faas::InputObject> chunks;
    const int n = pipeline->NumChunks(input_size);
    const Bytes chunk_size = input_size / n;
    for (int c = 0; c < n; ++c) {
      const workloads::MediaDescriptor media =
          generator.GenerateWithByteSize(pipeline->input_kind, chunk_size);
      const std::string key = prefix + std::to_string(c);
      env.rsds().Seed(key, media.byte_size, faas::MediaToTags(media));
      chunks.push_back(faas::InputObject{key, media});
    }
    return chunks;
  };
  const auto warm_chunks = make_chunks("bench/warm");
  const auto target_chunks = make_chunks("bench/target");

  auto run = [&](const std::vector<faas::InputObject>& chunks) {
    faas::PipelineRecord out;
    bool done = false;
    env.platform().InvokePipeline(*pipeline, chunks, [&](const faas::PipelineRecord& r) {
      out = r;
      done = true;
    });
    const SimTime deadline = env.loop().now() + Minutes(60);
    while (!done && env.loop().now() < deadline && env.loop().Step()) {
    }
    return out;
  };

  // Warm sandboxes for every stage on a disjoint chunk set.
  (void)run(warm_chunks);

  if (mode == faasload::Mode::kOfc) {
    if (scenario == CacheScenario::kLocalHit) {
      (void)run(target_chunks);  // Primes the target chunks near their readers.
    } else if (scenario == CacheScenario::kRemoteHit) {
      for (const faas::InputObject& chunk : target_chunks) {
        const auto meta = env.rsds().Stat(chunk.key);
        bool done = false;
        env.cluster()->Write(0, chunk.key, meta->size, meta->latest_version,
                             rc::ObjectClass::kInput, /*dirty=*/false,
                             [&](Status) { done = true; });
        while (!done && env.loop().Step()) {
        }
      }
    }
  }

  const faas::PipelineRecord measured = run(target_chunks);
  EtlBreakdown out;
  out.extract_s = ToSeconds(measured.extract_time);
  out.compute_s = ToSeconds(measured.compute_time);
  out.load_s = ToSeconds(measured.load_time);
  out.total_s = ToSeconds(measured.total);
  return out;
}

}  // namespace ofc::bench

#endif  // OFC_BENCH_MICRO_COMMON_H_
