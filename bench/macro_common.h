// Macro-experiment runner (§7.2.2) shared by the Figure 9, Figure 10 and
// Table 2 benches: FAASLOAD drives one tenant per function — the six Figure 7
// wand_* functions plus the map_reduce and THIS pipelines — for 30 simulated
// minutes with exponential(60 s) arrivals, under a tenant booking profile, on
// either vanilla OWK-Swift or OFC.
#ifndef OFC_BENCH_MACRO_COMMON_H_
#define OFC_BENCH_MACRO_COMMON_H_

#include <memory>
#include <string>
#include <vector>

#include "src/faasload/environment.h"
#include "src/faasload/injector.h"

namespace ofc::bench {

struct MacroConfig {
  faasload::Mode mode = faasload::Mode::kOwkSwift;
  faasload::TenantProfile profile = faasload::TenantProfile::kNormal;
  int tenants_per_function = 1;  // 3 reproduces the 24-tenant variant.
  SimDuration duration = Minutes(30);
  double mean_interval_s = 60.0;  // Exponential arrivals, lambda = 60 s.
  std::uint64_t seed = 2021;
  int pretrain_invocations = 1000;  // Offline ML stage (artifact ships this).
  SimDuration cache_sample_period = Seconds(30);
  // Cache eviction/sweep policy spec (OFC mode; see src/core/cache_policy.h).
  std::string cache_policy = "lru";
  // Memory per worker. The paper's machines are 512 GB; the policy-comparison
  // bench shrinks this to put the cache under real eviction pressure.
  Bytes worker_memory = GiB(160);
  // Optional lifecycle tracing for this run (null = off, zero overhead).
  obs::TraceRecorder* trace = nullptr;
};

struct CacheSample {
  double minute = 0;
  Bytes capacity = 0;
  Bytes used = 0;
};

struct MacroResult {
  MacroConfig config;
  std::vector<faasload::TenantResult> tenants;
  faas::PlatformStats platform_stats;
  // OFC-only internals (zeroed for baselines).
  core::CacheScalingStats cache_stats;
  core::OfcPredictionStats prediction_stats;
  core::ProxyStats proxy_stats;
  std::vector<CacheSample> cache_series;
  Bytes ephemeral_bytes = 0;  // Data produced by all invocations.
  // The registry every component of the run reported into (shared_ptr: the
  // environment dies inside RunMacro, the metrics outlive it with the result).
  std::shared_ptr<obs::MetricsRegistry> metrics;
  SimTime end_time = 0;  // Simulated clock when the run finished.
};

inline MacroResult RunMacro(const MacroConfig& config) {
  auto metrics = std::make_shared<obs::MetricsRegistry>();
  faasload::EnvironmentOptions env_options;
  env_options.metrics = metrics.get();
  env_options.trace = config.trace;
  env_options.platform.num_workers = 4;
  // Default 160 GiB: the paper's workers are 512 GB machines; the invoker
  // pools must absorb the pipeline fan-outs' concurrent 2 GB-booked sandboxes
  // under the naive profile without queueing.
  env_options.platform.worker_memory = config.worker_memory;
  env_options.ofc.cache_policy = config.cache_policy;
  env_options.seed = config.seed;
  faasload::Environment env(config.mode, env_options);

  faasload::LoadInjector injector(&env, config.profile, config.seed);

  struct TenantTemplate {
    const char* function;
    bool pipeline;
    Bytes input;
  };
  const TenantTemplate kTemplates[] = {
      {"wand_blur", false, 0},   {"wand_resize", false, 0}, {"wand_sepia", false, 0},
      {"wand_rotate", false, 0}, {"wand_denoise", false, 0}, {"wand_edge", false, 0},
      {"map_reduce", true, MiB(30)}, {"THIS", true, MiB(125)},
  };
  for (int copy = 0; copy < config.tenants_per_function; ++copy) {
    for (const TenantTemplate& tmpl : kTemplates) {
      faasload::TenantSpec spec;
      spec.name = std::string(tmpl.function) + "#" + std::to_string(copy);
      spec.function = tmpl.function;
      spec.is_pipeline = tmpl.pipeline;
      spec.mean_interval_s = config.mean_interval_s;
      // More tenants -> more distinct inputs per function (FAASLOAD prepares a
      // dataset per tenant), which pressures the cache as in the 24-tenant run.
      spec.dataset_objects = config.tenants_per_function == 1 ? 3 : 12;
      spec.pipeline_input_size = tmpl.input;
      const Status status = injector.AddTenant(spec);
      if (!status.ok()) {
        std::fprintf(stderr, "AddTenant(%s): %s\n", spec.name.c_str(),
                     status.ToString().c_str());
      }
    }
  }

  injector.PretrainModels(config.pretrain_invocations);

  MacroResult result;
  result.config = config;
  if (env.ofc() != nullptr) {
    injector.AddSampler(config.cache_sample_period, [&env, &result] {
      CacheSample sample;
      sample.minute = ToSeconds(env.loop().now()) / 60.0;
      sample.capacity = env.cluster()->TotalCapacity();
      sample.used = env.cluster()->TotalUsed();
      result.cache_series.push_back(sample);
    });
  }

  injector.Run(config.duration);

  result.tenants = injector.results();
  result.metrics = std::move(metrics);
  result.end_time = env.loop().now();
  result.platform_stats = env.platform().stats();
  if (env.ofc() != nullptr) {
    result.cache_stats = env.ofc()->cache_agent().stats();
    result.prediction_stats = env.ofc()->prediction_stats();
    result.proxy_stats = env.ofc()->proxy().stats();
  }
  for (const faasload::TenantResult& tenant : result.tenants) {
    for (const auto& record : tenant.invocations) {
      result.ephemeral_bytes += record.output_bytes;
    }
  }
  return result;
}

}  // namespace ofc::bench

#endif  // OFC_BENCH_MACRO_COMMON_H_
