// §7.1.3 model maturation quickness: for every function, feed the online
// training loop (ModelTrainer) with a stream of invocations and record how
// many invocations it takes to satisfy the §5.3.1 maturation criterion.
//
// Expected shape (paper): maturity checks start at 100 invocations; the median
// function matures at ~100, 75 % under 250, 95 % under 450.
#include <algorithm>
#include <cstdio>
#include <vector>

#include "bench/bench_util.h"
#include "src/core/ml_service.h"

namespace ofc {
namespace {

void Run() {
  bench::Banner("Model maturation quickness (invocations until the §5.3.1 criterion)",
                "§7.1.3 (median ~100, 75% < 250, 95% < 450)");

  core::ModelConfig config;  // Production defaults (100-invocation floor).
  std::vector<int> matured_at;
  bench::Table table({"Function", "Matured after (invocations)"});
  for (const workloads::FunctionSpec& spec : workloads::AllFunctions()) {
    core::ModelRegistry registry(config);
    core::ModelTrainer trainer(&registry, store::StoreProfile::Swift());
    Rng rng(900 + matured_at.size());
    // Stream invocations in chunks until maturity (cap at 2000).
    core::FunctionModel& model = registry.GetOrCreate(spec);
    while (!model.mature() && model.observations() < 2000) {
      trainer.Pretrain(spec, 25, rng);
    }
    const int at = model.mature() ? model.matured_at() : -1;
    matured_at.push_back(at);
    table.AddRow({spec.name, at < 0 ? "did not mature (cap 2000)" : std::to_string(at)});
  }
  table.Print();

  std::vector<int> ok;
  for (int at : matured_at) {
    if (at >= 0) {
      ok.push_back(at);
    }
  }
  std::sort(ok.begin(), ok.end());
  auto quantile = [&](double q) {
    return ok.empty() ? 0 : ok[std::min(ok.size() - 1,
                                        static_cast<std::size_t>(q * static_cast<double>(ok.size())))];
  };
  bench::Table summary({"Metric", "Value"});
  summary.AddRow({"Functions matured", std::to_string(ok.size()) + " / " +
                                            std::to_string(matured_at.size())});
  summary.AddRow({"Median maturation (invocations)", std::to_string(quantile(0.5))});
  summary.AddRow({"75th percentile", std::to_string(quantile(0.75))});
  summary.AddRow({"95th percentile", std::to_string(quantile(0.95))});
  summary.Print();
  std::printf(
      "\nPaper reference: checks begin at 100 invocations (so 100 is the floor);\n"
      "median 100, 75%% of functions < 250, 95%% < 450 invocations.\n");
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::Run();
  return 0;
}
