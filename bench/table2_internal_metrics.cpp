// Table 2 (§7.2.2): OFC's internal metrics during the macro workload with
// 8 tenants, for the three tenant profiles — cache scale-up/down counts and
// cumulative times, prediction quality, failed invocations, hit ratio, and
// ephemeral data volume.
//
// Expected shape: frequent scale operations (input variability) but negligible
// total scaling time; almost all predictions good; zero failed invocations;
// high cache hit ratio (90+ %) with naive the highest.
//
// Every row is read from the unified MetricsRegistry the run reported into
// (the same cells behind the legacy stats structs), so the table is exactly
// what --metrics-json would export. Accepts --metrics-json/--metrics-csv to
// dump the final (Advanced-profile) run's full snapshot.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/macro_common.h"

namespace ofc {
namespace {

void Run(const bench::ObsFlags& obs_flags) {
  bench::Banner("OFC internal metrics during the macro workload", "Table 2 (§7.2.2)");

  bench::Table table({"Metric", "Normal", "Naive", "Advanced"});
  std::vector<bench::MacroResult> results;
  for (faasload::TenantProfile profile :
       {faasload::TenantProfile::kNormal, faasload::TenantProfile::kNaive,
        faasload::TenantProfile::kAdvanced}) {
    bench::MacroConfig config;
    config.mode = faasload::Mode::kOfc;
    config.profile = profile;
    results.push_back(bench::RunMacro(config));
  }

  auto row = [&](const std::string& name, auto getter, const char* format) {
    std::vector<std::string> cells = {name};
    for (const bench::MacroResult& result : results) {
      cells.push_back(bench::Fmt(format, getter(*result.metrics)));
    }
    table.AddRow(std::move(cells));
  };
  auto count = [](const obs::MetricsRegistry& m, const char* name) {
    return static_cast<double>(m.CounterValue(name));
  };

  row("# Scale up",
      [&](const auto& m) { return count(m, "ofc.cache_agent.scale_ups"); }, "%.0f");
  row("Total scale up time (s)",
      [](const auto& m) { return m.GaugeValue("ofc.cache_agent.scale_up_time_us") / 1e6; },
      "%.3f");
  row("# Scale down (no eviction)",
      [&](const auto& m) { return count(m, "ofc.cache_agent.scale_downs_plain"); }, "%.0f");
  row("# Scale down (migration)",
      [&](const auto& m) { return count(m, "ofc.cache_agent.scale_downs_migration"); }, "%.0f");
  row("# Scale down (eviction)",
      [&](const auto& m) { return count(m, "ofc.cache_agent.scale_downs_eviction"); }, "%.0f");
  row("Total scale down time (s)",
      [](const auto& m) { return m.GaugeValue("ofc.cache_agent.scale_down_time_us") / 1e6; },
      "%.3f");
  row("# Bad predictions",
      [&](const auto& m) { return count(m, "ofc.predictor.bad_predictions"); }, "%.0f");
  row("# Good predictions",
      [&](const auto& m) { return count(m, "ofc.predictor.good_predictions"); }, "%.0f");
  row("# Failed invocations",
      [&](const auto& m) { return count(m, "ofc.platform.failed_invocations"); }, "%.0f");
  row("Cache hit ratio (%)",
      [&](const auto& m) {
        const double hits = count(m, "ofc.proxy.cache_hits");
        const double total = hits + count(m, "ofc.proxy.cache_misses");
        return total == 0 ? 0.0 : 100.0 * hits / total;
      },
      "%.2f");
  row("Ephemeral data generated (GB)",
      [&](const auto& m) { return count(m, "ofc.platform.output_bytes") / 1e9; }, "%.2f");
  // Overload-protection health: with defaults (no queue bound, breaker off)
  // every row below must read zero — a nonzero cell flags config drift.
  auto wait_stat = [](const obs::MetricsRegistry& m, auto pick) {
    const obs::Series* wait = m.FindSeries("ofc.platform.queue_wait_ms");
    return wait == nullptr || wait->count() == 0 ? 0.0 : pick(wait->running());
  };
  row("Queue wait mean (ms)",
      [&](const auto& m) {
        return wait_stat(m, [](const auto& s) { return s.mean(); });
      },
      "%.3f");
  row("Queue wait max (ms)",
      [&](const auto& m) {
        return wait_stat(m, [](const auto& s) { return s.max(); });
      },
      "%.3f");
  row("# Shed (overload)",
      [](const auto& m) { return static_cast<double>(m.CounterTotal("ofc.overload.shed")); },
      "%.0f");
  row("# Breaker opens",
      [&](const auto& m) { return count(m, "ofc.breaker.opens"); }, "%.0f");
  row("# Breaker bypassed ops",
      [&](const auto& m) {
        return count(m, "ofc.breaker.bypassed_reads") +
               count(m, "ofc.breaker.bypassed_writes");
      },
      "%.0f");
  table.Print();

  std::printf(
      "\nExpected shape (paper, 8 tenants): ~95 scale-ups and ~230 scale-downs with\n"
      "seconds of cumulative scaling time, ~7 bad vs ~230 good predictions, zero\n"
      "failed invocations, hit ratio 93-99%% (naive highest).\n");

  const bench::MacroResult& last = results.back();
  bench::ExportObs(obs_flags, *last.metrics, /*trace=*/nullptr, last.end_time);
}

}  // namespace
}  // namespace ofc

int main(int argc, char** argv) {
  ofc::Run(ofc::bench::ParseObsFlags(argc, argv));
  return 0;
}
