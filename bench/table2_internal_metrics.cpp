// Table 2 (§7.2.2): OFC's internal metrics during the macro workload with
// 8 tenants, for the three tenant profiles — cache scale-up/down counts and
// cumulative times, prediction quality, failed invocations, hit ratio, and
// ephemeral data volume.
//
// Expected shape: frequent scale operations (input variability) but negligible
// total scaling time; almost all predictions good; zero failed invocations;
// high cache hit ratio (90+ %) with naive the highest.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/macro_common.h"

namespace ofc {
namespace {

void Run() {
  bench::Banner("OFC internal metrics during the macro workload", "Table 2 (§7.2.2)");

  bench::Table table({"Metric", "Normal", "Naive", "Advanced"});
  std::vector<bench::MacroResult> results;
  for (faasload::TenantProfile profile :
       {faasload::TenantProfile::kNormal, faasload::TenantProfile::kNaive,
        faasload::TenantProfile::kAdvanced}) {
    bench::MacroConfig config;
    config.mode = faasload::Mode::kOfc;
    config.profile = profile;
    results.push_back(bench::RunMacro(config));
  }

  auto row = [&](const std::string& name, auto getter, const char* format) {
    std::vector<std::string> cells = {name};
    for (const bench::MacroResult& result : results) {
      cells.push_back(bench::Fmt(format, static_cast<double>(getter(result))));
    }
    table.AddRow(std::move(cells));
  };

  row("# Scale up", [](const auto& r) { return r.cache_stats.scale_ups; }, "%.0f");
  row("Total scale up time (s)",
      [](const auto& r) { return ToSeconds(r.cache_stats.scale_up_time); }, "%.3f");
  row("# Scale down (no eviction)",
      [](const auto& r) { return r.cache_stats.scale_downs_plain; }, "%.0f");
  row("# Scale down (migration)",
      [](const auto& r) { return r.cache_stats.scale_downs_migration; }, "%.0f");
  row("# Scale down (eviction)",
      [](const auto& r) { return r.cache_stats.scale_downs_eviction; }, "%.0f");
  row("Total scale down time (s)",
      [](const auto& r) { return ToSeconds(r.cache_stats.scale_down_time); }, "%.3f");
  row("# Bad predictions",
      [](const auto& r) { return r.prediction_stats.bad_predictions; }, "%.0f");
  row("# Good predictions",
      [](const auto& r) { return r.prediction_stats.good_predictions; }, "%.0f");
  row("# Failed invocations",
      [](const auto& r) { return r.platform_stats.failed_invocations; }, "%.0f");
  row("Cache hit ratio (%)",
      [](const auto& r) { return 100.0 * r.proxy_stats.HitRatio(); }, "%.2f");
  row("Ephemeral data generated (GB)",
      [](const auto& r) { return static_cast<double>(r.ephemeral_bytes) / 1e9; }, "%.2f");
  table.Print();

  std::printf(
      "\nExpected shape (paper, 8 tenants): ~95 scale-ups and ~230 scale-downs with\n"
      "seconds of cumulative scaling time, ~7 bad vs ~230 good predictions, zero\n"
      "failed invocations, hit ratio 93-99%% (naive highest).\n");
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::Run();
  return 0;
}
