// The pre-overhaul EventLoop, preserved verbatim (modulo inlining) as the
// baseline side of the scale-stress event-loop comparison. It is the
// implementation the simulator shipped with before the hot-path rewrite:
// per-event std::function callbacks kept in a hash map keyed by event id, a
// std::priority_queue of (when, seq, id) entries, and lazy tombstones for
// cancellation. bench/scale_stress drives this and the optimized
// sim::EventLoop through an identical synthetic scenario and reports both
// events/sec figures in BENCH_scale.json — the "pre-PR baseline" column of the
// README's perf table.
//
// Do NOT modernize this file: its value is being a faithful snapshot of the
// old cost model.
#ifndef OFC_BENCH_LEGACY_EVENT_LOOP_H_
#define OFC_BENCH_LEGACY_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <utility>
#include <vector>

#include "src/common/hash.h"
#include "src/common/sim_assert.h"
#include "src/common/units.h"

namespace ofc::bench {

class LegacyEventLoop {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  LegacyEventLoop() = default;
  LegacyEventLoop(const LegacyEventLoop&) = delete;
  LegacyEventLoop& operator=(const LegacyEventLoop&) = delete;

  SimTime now() const { return now_; }

  EventId ScheduleAfter(SimDuration delay, Callback cb) {
    SIM_ASSERT(delay >= 0) << "; scheduling into the past, delay=" << delay;
    return ScheduleAt(now_ + delay, std::move(cb));
  }

  EventId ScheduleAt(SimTime when, Callback cb) {
    SIM_ASSERT(when >= now_) << "; scheduling into the past, when=" << when
                             << " now=" << now_;
    const EventId id = next_id_++;
    queue_.push(Event{when, next_seq_++, id});
    callbacks_.emplace(id, std::move(cb));
    return id;
  }

  bool Cancel(EventId id) {
    auto it = callbacks_.find(id);
    if (it == callbacks_.end()) {
      return false;
    }
    callbacks_.erase(it);
    ++cancelled_;
    return true;
  }

  void Run() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      Dispatch(ev);
    }
  }

  void RunUntil(SimTime deadline) {
    while (!queue_.empty() && queue_.top().when <= deadline) {
      Event ev = queue_.top();
      queue_.pop();
      Dispatch(ev);
    }
    if (now_ < deadline) {
      now_ = deadline;
    }
  }

  void RunFor(SimDuration duration) { RunUntil(now_ + duration); }

  bool Step() {
    while (!queue_.empty()) {
      Event ev = queue_.top();
      queue_.pop();
      const bool live = callbacks_.contains(ev.id);
      Dispatch(ev);
      if (live) {
        return true;
      }
    }
    return false;
  }

  std::size_t pending_events() const { return queue_.size() - cancelled_; }
  std::uint64_t total_scheduled() const { return next_seq_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    friend bool operator>(const Event& a, const Event& b) {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void Dispatch(const Event& ev) {
    auto it = callbacks_.find(ev.id);
    if (it == callbacks_.end()) {
      --cancelled_;  // Cancelled event: drop its queue slot.
      return;
    }
    Callback cb = std::move(it->second);
    callbacks_.erase(it);
    SIM_ASSERT(ev.when >= now_) << "; event at " << ev.when << " dispatched at " << now_;
    now_ = ev.when;
    cb();
  }

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  std::unordered_map<EventId, Callback, DetHash<EventId>> callbacks_;
  std::size_t cancelled_ = 0;
};

}  // namespace ofc::bench

#endif  // OFC_BENCH_LEGACY_EVENT_LOOP_H_
