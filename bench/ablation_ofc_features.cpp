// Ablation study (beyond the paper's tables): contribution of OFC's individual
// design choices, isolated by disabling one mechanism at a time on the same
// multi-tenant workload.
//
//   * full            — OFC as evaluated in §7;
//   * no-bump         — no §5.3.1 conservative next-interval allocation
//                       (expect OOM rescues/retries to appear);
//   * no-locality     — vanilla OWK routing instead of §6.5
//                       (expect remote hits to replace local hits);
//   * no-write-back   — synchronous output persistence instead of §6.2's
//                       shadow + persistor (expect Load phases to balloon);
//   * relaxed         — §6.2 opt-out: no shadow objects, lazy persistence
//                       (expect the fastest writes; external consistency is
//                       the tenant's problem).
#include <cstdio>

#include "bench/bench_util.h"
#include "src/faasload/environment.h"
#include "src/faasload/injector.h"

namespace ofc {
namespace {

struct Variant {
  const char* name;
  bool conservative_bump = true;
  bool locality_routing = true;
  bool write_back = true;
  bool transparent = true;
};

struct VariantResult {
  double total_s = 0;
  double mean_load_ms = 0;
  std::uint64_t oom_events = 0;
  double hit_ratio = 0;
  double local_hit_share = 0;
};

VariantResult RunVariant(const Variant& variant) {
  faasload::EnvironmentOptions options;
  options.platform.num_workers = 4;
  // Tight worker pools: sandboxes get reclaimed between invocations, so new
  // sandboxes are created regularly and placement (locality) matters.
  options.platform.worker_memory = MiB(1536);
  options.seed = 321;
  options.ofc.model.conservative_bump = variant.conservative_bump;
  options.ofc.locality_routing = variant.locality_routing;
  options.ofc.proxy.write_back = variant.write_back;
  options.ofc.proxy.transparent_consistency = variant.transparent;
  faasload::Environment env(faasload::Mode::kOfc, options);

  faasload::LoadInjector injector(&env, faasload::TenantProfile::kNormal, 654);
  for (const char* function :
       {"wand_blur", "wand_sepia", "wand_edge", "sharp_resize", "wand_thumbnail",
        "wand_rotate", "wand_denoise", "img_watermark"}) {
    faasload::TenantSpec spec;
    spec.name = std::string("t-") + function;
    spec.function = function;
    spec.mean_interval_s = 15.0;
    spec.dataset_objects = 3;
    spec.object_size = MiB(1);
    if (!injector.AddTenant(spec).ok()) {
      std::fprintf(stderr, "tenant setup failed for %s\n", function);
    }
  }
  injector.PretrainModels(1000);
  injector.Run(Minutes(15));

  VariantResult result;
  std::size_t invocations = 0;
  double load_ms_sum = 0;
  for (const auto& tenant : injector.results()) {
    for (const auto& record : tenant.invocations) {
      result.total_s += ToSeconds(record.total);
      load_ms_sum += ToMillis(record.load_time);
      result.oom_events += record.oom_killed || record.oom_rescued;
      ++invocations;
    }
  }
  result.mean_load_ms = invocations == 0 ? 0 : load_ms_sum / static_cast<double>(invocations);
  result.hit_ratio = env.ofc()->proxy().stats().HitRatio();
  const auto& cluster_stats = env.cluster()->stats();
  const double hits = static_cast<double>(cluster_stats.read_hits_local +
                                          cluster_stats.read_hits_remote);
  result.local_hit_share =
      hits <= 0 ? 0 : static_cast<double>(cluster_stats.read_hits_local) / hits;
  return result;
}

void Run() {
  bench::Banner("Ablation: contribution of OFC's design choices",
                "DESIGN.md design-choice index (extends the paper's evaluation)");

  const Variant kVariants[] = {
      {"full"},
      {"no-bump", /*bump=*/false, true, true, true},
      {"no-locality", true, /*locality=*/false, true, true},
      {"no-write-back", true, true, /*write_back=*/false, true},
      {"relaxed", true, true, true, /*transparent=*/false},
  };
  bench::Table table({"Variant", "total exec (s)", "mean L (ms)", "OOM events",
                      "hit ratio (%)", "local-hit share (%)"});
  for (const Variant& variant : kVariants) {
    const VariantResult result = RunVariant(variant);
    table.AddRow({variant.name, bench::Fmt("%.1f", result.total_s),
                  bench::Fmt("%.1f", result.mean_load_ms),
                  bench::Fmt("%.0f", static_cast<double>(result.oom_events)),
                  bench::Fmt("%.1f", 100.0 * result.hit_ratio),
                  bench::Fmt("%.1f", 100.0 * result.local_hit_share)});
  }
  table.Print();
  std::printf(
      "\nExpected shape: no-bump introduces OOM events (and their retries scatter\n"
      "sandboxes, wrecking the local-hit share); no-write-back inflates the Load\n"
      "phase ~5x; relaxed is the fastest write path (no shadow round-trip) at the\n"
      "cost of external consistency. Note on no-locality: with stable per-function\n"
      "home-worker hashing, objects are admitted on the home worker and stay local\n"
      "even without the §6.5 policy — its benefit materializes only when the home\n"
      "worker is under memory pressure and placement must move (as the no-bump row\n"
      "shows from the opposite direction).\n");
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::Run();
  return 0;
}
