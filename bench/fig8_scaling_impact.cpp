// Figure 8 + §7.2.1: impact of OFC's cache scaling on function latency
// (wand_sepia) under four worker states:
//   Sc0 — no cache shrink needed;
//   Sc1 — shrink without data migration/eviction (capacity adjustment only);
//   Sc2 — shrink with master migration to another node;
//   Sc3 — shrink with eviction (no node can absorb migrations).
// Also reproduces the §7.2.1 migration-time curve (8 MB .. 1 GB).
//
// Expected shape: cgroup resize is a ~24 ms constant; Sc1/Sc3 scaling costs are
// sub-millisecond; Sc2 grows with the migrated volume; worst-case total scaling
// is a large share of a tiny (1 kB) invocation and negligible for larger ones.
#include <cstdio>

#include "bench/bench_util.h"
#include "bench/micro_common.h"

namespace ofc {
namespace {

enum class ShrinkScenario { kSc0, kSc1, kSc2, kSc3 };

const char* ScenarioLabel(ShrinkScenario scenario) {
  switch (scenario) {
    case ShrinkScenario::kSc0:
      return "Sc0 (no shrink)";
    case ShrinkScenario::kSc1:
      return "Sc1 (plain shrink)";
    case ShrinkScenario::kSc2:
      return "Sc2 (migration)";
    case ShrinkScenario::kSc3:
      return "Sc3 (eviction)";
  }
  return "?";
}

struct ScalingResult {
  double scaling_ms = 0;
  double cgroup_ms = 0;
  double exec_ms = 0;
};

ScalingResult RunScenario(ShrinkScenario scenario, Bytes input_size) {
  faasload::EnvironmentOptions env_options;
  env_options.platform.num_workers = 2;
  // Small workers so a sandbox growth puts real pressure on the cache.
  env_options.platform.worker_memory = MiB(1024);
  env_options.seed = 99;
  faasload::Environment env(faasload::Mode::kOfc, env_options);

  const workloads::FunctionSpec* spec = workloads::FindFunction("wand_sepia");
  faas::FunctionConfig config;
  config.spec = *spec;
  // Booked within the (small) worker pool; the hoard is booked - predicted.
  config.booked_memory = MiB(512);
  (void)env.platform().RegisterFunction(config);
  Rng rng(7);
  Rng pretrain_rng = rng.Fork();
  env.ofc()->trainer().Pretrain(*spec, 1000, pretrain_rng);

  // Warm a minimal (64 MB) sandbox with a 1 kB input.
  workloads::MediaGenerator generator(rng.Fork());
  const workloads::MediaDescriptor tiny =
      generator.GenerateWithByteSize(spec->kind, KiB(1));
  env.rsds().Seed("bench/tiny", tiny.byte_size, faas::MediaToTags(tiny));
  auto invoke = [&](const std::string& key, const workloads::MediaDescriptor& media) {
    faas::InvocationRecord out;
    bool done = false;
    env.platform().Invoke("wand_sepia", {faas::InputObject{key, media}},
                          workloads::SampleArgs(*spec, rng),
                          [&](const faas::InvocationRecord& r) {
                            out = r;
                            done = true;
                          });
    // Bounded drive: the CacheAgent's periodic timers keep the loop non-empty
    // forever, so cap the simulated wait.
    const SimTime deadline = env.loop().now() + Minutes(5);
    while (!done && env.loop().now() < deadline && env.loop().Step()) {
    }
    return out;
  };
  const faas::InvocationRecord warmup = invoke("bench/tiny", tiny);
  const int worker = warmup.worker;
  const int other = (worker + 1) % 2;

  // Stage the cache state for the scenario. Clean 8 MiB input objects fill the
  // target worker; Sc3 additionally fills the other worker so migration is
  // impossible. In Sc0 the cache stays nearly empty (shrink target is still
  // above usage), in Sc1 usage is low enough that no object must move.
  auto fill_node = [&](int node, int objects) {
    for (int i = 0; i < objects; ++i) {
      bool done = false;
      env.cluster()->Write(node, "fill/" + std::to_string(node) + "/" + std::to_string(i),
                           MiB(8), 1, rc::ObjectClass::kInput, /*dirty=*/false,
                           [&](Status) { done = true; });
      while (!done && env.loop().Step()) {
      }
    }
  };
  switch (scenario) {
    case ShrinkScenario::kSc0:
    case ShrinkScenario::kSc1:
      break;  // Cache (nearly) empty.
    case ShrinkScenario::kSc2:
      // Fill the target node with clean inputs whose backups live on the other
      // node, and give that node spare capacity: the shrink migrates masters
      // there instead of evicting.
      (void)env.cluster()->SetCapacity(other, MiB(512));
      fill_node(worker, static_cast<int>(env.cluster()->FreeMemory(worker) / MiB(8)));
      break;
    case ShrinkScenario::kSc3:
      // Same pressure, but the other node has no spare capacity (its own
      // sandboxes hoard nothing): migration is impossible, objects are evicted.
      fill_node(worker, static_cast<int>(env.cluster()->FreeMemory(worker) / MiB(8)));
      break;
  }

  const workloads::MediaDescriptor target =
      generator.GenerateWithByteSize(spec->kind, input_size);
  env.rsds().Seed("bench/target", target.byte_size, faas::MediaToTags(target));

  // Sc0: the warm sandbox is already sized for this invocation (a previous run
  // of the same input resized it), so no shrink happens on the measured run.
  Bytes limit_before = warmup.memory_limit;
  if (scenario == ShrinkScenario::kSc0) {
    limit_before = invoke("bench/target", target).memory_limit;
  }

  const auto stats_before = env.ofc()->cache_agent().stats();
  const faas::InvocationRecord measured = invoke("bench/target", target);
  const auto stats_after = env.ofc()->cache_agent().stats();

  ScalingResult out;
  out.scaling_ms = ToMillis(stats_after.scale_down_time - stats_before.scale_down_time);
  // The docker-update cost applies only when the invocation actually resized
  // the container.
  out.cgroup_ms = measured.memory_limit == limit_before
                      ? 0.0
                      : ToMillis(env.platform().options().cgroup_resize);
  out.exec_ms = ToMillis(measured.total);
  return out;
}

void ScalingImpact() {
  bench::Banner("Cache-scaling impact on wand_sepia latency", "Figure 8 (§7.2.1)");
  bench::Table table({"Input size", "Scenario", "scaling (ms)", "cgroup-sys (ms)",
                      "exec time (ms)", "scaling share (%)"});
  for (Bytes size : {KiB(1), KiB(256), KiB(1024), KiB(3072)}) {
    for (ShrinkScenario scenario : {ShrinkScenario::kSc0, ShrinkScenario::kSc1,
                                    ShrinkScenario::kSc2, ShrinkScenario::kSc3}) {
      const ScalingResult result = RunScenario(scenario, size);
      const double share =
          result.exec_ms <= 0
              ? 0
              : 100.0 * (result.scaling_ms + result.cgroup_ms) / result.exec_ms;
      table.AddRow({FormatBytes(size), ScenarioLabel(scenario),
                    bench::Fmt("%.3f", result.scaling_ms),
                    bench::Fmt("%.1f", result.cgroup_ms), bench::Fmt("%.1f", result.exec_ms),
                    bench::Fmt("%.1f", share)});
    }
  }
  table.Print();
  std::printf(
      "\nExpected shape: cgroup-sys ~23.8 ms whenever the container resizes (at 1 kB\n"
      "the predicted size matches the warm 64 MB container, so nothing moves);\n"
      "Sc1 scaling is sub-ms, Sc2/Sc3 grow with the migrated/evicted volume; the\n"
      "overhead is a large share only for small, fast invocations (§7.2.1: 50.4%%\n"
      "worst case) and amortizes away with input size.\n");
}

void MigrationTimes() {
  bench::Banner("Optimized master-migration times vs object size",
                "§7.2.1 (0.18 ms @ 8 MB ... 13.5 ms @ 1 GB)");
  sim::EventLoop loop;
  rc::ClusterOptions options;
  options.max_object_size = GiB(1);
  options.default_capacity = GiB(4);
  rc::Cluster cluster(&loop, 3, options, Rng(5));
  bench::Table table({"Object size", "Migration time (ms)", "Paper (ms)"});
  struct Point {
    Bytes size;
    const char* paper;
  };
  for (const Point& point : {Point{MiB(8), "0.18"}, Point{MiB(64), "1.2"},
                             Point{MiB(256), "3.8"}, Point{MiB(512), "7.5"},
                             Point{GiB(1), "13.5"}}) {
    const std::string key = "obj" + std::to_string(point.size);
    bool done = false;
    cluster.Write(0, key, point.size, 1, rc::ObjectClass::kInput, false,
                  [&](Status) { done = true; });
    loop.Run();
    const auto result = cluster.MigrateMaster(key);
    table.AddRow({FormatBytes(point.size),
                  result.ok() ? bench::Fmt("%.2f", ToMillis(result->duration)) : "failed",
                  point.paper});
    (void)done;
  }
  table.Print();
}

}  // namespace
}  // namespace ofc

int main() {
  ofc::ScalingImpact();
  ofc::MigrationTimes();
  return 0;
}
