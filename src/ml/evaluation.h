// Model evaluation: confusion matrices, the paper's exact-or-over (EO) metric
// for ordered interval classes (§5.3.1), precision/recall/F-measure for the
// cache-benefit model (§7.1.1), and stratified k-fold cross-validation (the
// paper uses cross-validation against overfitting, §7.1.1).
#ifndef OFC_ML_EVALUATION_H_
#define OFC_ML_EVALUATION_H_

#include <functional>
#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/ml/classifier.h"

namespace ofc::ml {

class ConfusionMatrix {
 public:
  explicit ConfusionMatrix(std::size_t num_classes);

  void Add(int truth, int predicted, double weight = 1.0);

  std::size_t num_classes() const { return n_; }
  double count(int truth, int predicted) const;
  double total() const { return total_; }

  // Fraction of exactly correct predictions.
  double Accuracy() const;

  // Exact-or-over: predicted index >= true index. Meaningful only when class
  // indices are ordered (memory intervals).
  double ExactOrOverAccuracy() const;

  // Among underpredictions (predicted < truth), the fraction with
  // truth - predicted <= k. Returns 1.0 when there are no underpredictions.
  double UnderpredictionsWithin(int k) const;

  double UnderpredictionRate() const;
  double OverpredictionRate() const;

  // One-vs-rest metrics for `positive_class`.
  double Precision(int positive_class) const;
  double Recall(int positive_class) const;
  double FMeasure(int positive_class) const;

  // Merges another matrix of the same arity (fold aggregation).
  void Merge(const ConfusionMatrix& other);

 private:
  std::size_t n_;
  std::vector<double> cells_;  // row-major [truth][predicted]
  double total_ = 0.0;
};

using ClassifierFactory = std::function<std::unique_ptr<Classifier>()>;

struct CrossValidationResult {
  ConfusionMatrix confusion;
  // Signed prediction errors in class-index units (predicted - truth), one per
  // test instance; feeds the Figure 5 error distribution.
  std::vector<int> errors;
};

// Stratified k-fold cross-validation. The factory builds a fresh classifier per
// fold. Folds are stratified by class so small classes appear in every fold.
CrossValidationResult CrossValidate(const ClassifierFactory& factory, const Dataset& data,
                                    int folds, Rng& rng);

}  // namespace ofc::ml

#endif  // OFC_ML_EVALUATION_H_
