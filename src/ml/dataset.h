// Tabular dataset representation for the OFC decision-tree classifiers.
//
// Mirrors the paper's setting (§5.1.2): features are either numeric (file size,
// pixel dimensions, durations, function arguments...) or nominal (media format,
// codec, discrete argument values...). The class attribute is nominal; for the
// memory model the class values are *ordered* memory intervals, which is what
// makes exact-or-over (EO) accuracy meaningful.
#ifndef OFC_ML_DATASET_H_
#define OFC_ML_DATASET_H_

#include <cstddef>
#include <string>
#include <vector>

#include "src/common/status.h"

namespace ofc::ml {

enum class AttributeKind { kNumeric, kNominal };

struct Attribute {
  std::string name;
  AttributeKind kind = AttributeKind::kNumeric;
  // For nominal attributes: the ensemble of values (§5.1.2 — learned from the
  // retained training set). Feature vectors store the index into this list.
  std::vector<std::string> values;

  static Attribute Numeric(std::string name) {
    return Attribute{std::move(name), AttributeKind::kNumeric, {}};
  }
  static Attribute Nominal(std::string name, std::vector<std::string> values) {
    return Attribute{std::move(name), AttributeKind::kNominal, std::move(values)};
  }

  std::size_t num_values() const { return values.size(); }
};

// Feature schema plus the class attribute. Shared (by value; it is small) between
// a Dataset and the classifiers trained from it.
class Schema {
 public:
  Schema() = default;
  Schema(std::vector<Attribute> features, Attribute class_attribute)
      : features_(std::move(features)), class_attribute_(std::move(class_attribute)) {}

  std::size_t num_features() const { return features_.size(); }
  const Attribute& feature(std::size_t i) const { return features_[i]; }
  const std::vector<Attribute>& features() const { return features_; }
  const Attribute& class_attribute() const { return class_attribute_; }
  std::size_t num_classes() const { return class_attribute_.values.size(); }

  // Index of the named feature, or -1.
  int FeatureIndex(const std::string& name) const;

 private:
  std::vector<Attribute> features_;
  Attribute class_attribute_;
};

// One labelled example. Nominal features hold the value index as a double.
struct Instance {
  std::vector<double> features;
  int label = 0;
  double weight = 1.0;
};

class Dataset {
 public:
  Dataset() = default;
  explicit Dataset(Schema schema) : schema_(std::move(schema)) {}

  const Schema& schema() const { return schema_; }
  std::size_t size() const { return instances_.size(); }
  bool empty() const { return instances_.empty(); }
  const Instance& instance(std::size_t i) const { return instances_[i]; }
  const std::vector<Instance>& instances() const { return instances_; }

  // Validates feature arity and nominal ranges before accepting the instance.
  Status Add(Instance instance);

  // Total instance weight.
  double TotalWeight() const;

  // Per-class weight distribution.
  std::vector<double> ClassDistribution() const;

  // Keeps only instances for which `keep(instance)` is true.
  template <typename Pred>
  Dataset Filter(Pred keep) const {
    Dataset out(schema_);
    for (const Instance& inst : instances_) {
      if (keep(inst)) {
        out.instances_.push_back(inst);
      }
    }
    return out;
  }

  void Clear() { instances_.clear(); }

 private:
  Schema schema_;
  std::vector<Instance> instances_;
};

}  // namespace ofc::ml

#endif  // OFC_ML_DATASET_H_
