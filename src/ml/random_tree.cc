#include "src/ml/random_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>

#include "src/ml/tree_math.h"

namespace ofc::ml {

namespace {

std::vector<double> DistributionOf(const Dataset& data, const std::vector<std::size_t>& indices) {
  std::vector<double> dist(data.schema().num_classes(), 0.0);
  for (std::size_t i : indices) {
    const Instance& inst = data.instance(i);
    dist[static_cast<std::size_t>(inst.label)] += inst.weight;
  }
  return dist;
}

double SumOf(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) {
    s += x;
  }
  return s;
}

}  // namespace

Status RandomTree::Train(const Dataset& data) {
  if (data.empty()) {
    return InvalidArgumentError("RandomTree: empty training set");
  }
  schema_ = data.schema();
  std::vector<std::size_t> indices(data.size());
  for (std::size_t i = 0; i < indices.size(); ++i) {
    indices[i] = i;
  }
  Rng rng(options_.seed);
  const std::vector<double> dist = DistributionOf(data, indices);
  root_ = Build(data, indices, 0, rng, dist);
  trained_ = true;
  return OkStatus();
}

std::unique_ptr<RandomTree::Node> RandomTree::Build(const Dataset& data,
                                                    const std::vector<std::size_t>& indices,
                                                    int depth, Rng& rng,
                                                    const std::vector<double>& parent_dist) {
  auto node = std::make_unique<Node>();
  if (indices.empty()) {
    node->class_dist.assign(parent_dist.size(), 0.0);
    node->majority = static_cast<int>(ArgMax(parent_dist));
    return node;
  }
  node->class_dist = DistributionOf(data, indices);
  node->majority = static_cast<int>(ArgMax(node->class_dist));
  node->weight = SumOf(node->class_dist);

  const double node_entropy = Entropy(node->class_dist);
  if (node->weight < 2.0 * options_.min_leaf_weight || node_entropy <= 0.0 ||
      depth >= options_.max_depth) {
    return node;
  }

  // Sample K candidate attributes without replacement.
  const std::size_t num_features = schema_.num_features();
  std::size_t k = options_.num_attributes > 0
                      ? static_cast<std::size_t>(options_.num_attributes)
                      : static_cast<std::size_t>(
                            std::floor(std::log2(static_cast<double>(num_features)))) +
                            1;
  k = std::min(k, num_features);
  std::vector<std::size_t> attrs(num_features);
  for (std::size_t i = 0; i < num_features; ++i) {
    attrs[i] = i;
  }
  // Partial Fisher-Yates for the first k slots.
  for (std::size_t i = 0; i < k; ++i) {
    std::swap(attrs[i], attrs[i + rng.Index(num_features - i)]);
  }

  double best_gain = 1e-9;
  int best_attr = -1;
  bool best_numeric = false;
  double best_threshold = 0.0;
  for (std::size_t slot = 0; slot < k; ++slot) {
    const std::size_t a = attrs[slot];
    const Attribute& attr = schema_.feature(a);
    if (attr.kind == AttributeKind::kNominal) {
      std::vector<std::vector<double>> branches(attr.num_values(),
                                                std::vector<double>(node->class_dist.size(), 0.0));
      for (std::size_t i : indices) {
        const Instance& inst = data.instance(i);
        if (std::isnan(inst.features[a])) {
          continue;  // Missing values carry no evidence for this split.
        }
        branches[static_cast<std::size_t>(inst.features[a])]
                [static_cast<std::size_t>(inst.label)] += inst.weight;
      }
      const double gain = node_entropy - PartitionEntropy(branches);
      if (gain > best_gain) {
        best_gain = gain;
        best_attr = static_cast<int>(a);
        best_numeric = false;
      }
    } else {
      std::vector<std::size_t> sorted;
      for (std::size_t i : indices) {
        if (!std::isnan(data.instance(i).features[a])) {
          sorted.push_back(i);
        }
      }
      std::sort(sorted.begin(), sorted.end(), [&](std::size_t x, std::size_t y) {
        return data.instance(x).features[a] < data.instance(y).features[a];
      });
      std::vector<double> left(node->class_dist.size(), 0.0);
      std::vector<double> right = node->class_dist;
      for (std::size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
        const Instance& inst = data.instance(sorted[pos]);
        left[static_cast<std::size_t>(inst.label)] += inst.weight;
        right[static_cast<std::size_t>(inst.label)] -= inst.weight;
        const double v = inst.features[a];
        const double v_next = data.instance(sorted[pos + 1]).features[a];
        if (v_next <= v) {
          continue;
        }
        const double gain = node_entropy - PartitionEntropy({left, right});
        if (gain > best_gain) {
          best_gain = gain;
          best_attr = static_cast<int>(a);
          best_numeric = true;
          best_threshold = (v + v_next) / 2.0;
        }
      }
    }
  }
  if (best_attr < 0) {
    return node;
  }

  node->attr = best_attr;
  node->numeric_split = best_numeric;
  node->threshold = best_threshold;
  const std::size_t a = static_cast<std::size_t>(best_attr);
  std::vector<std::vector<std::size_t>> partitions;
  // Simplified missing-value routing (unlike J48's fractional instances):
  // numeric NaN goes left; nominal NaN goes to branch 0.
  if (best_numeric) {
    partitions.resize(2);
    for (std::size_t i : indices) {
      const double v = data.instance(i).features[a];
      partitions[!std::isnan(v) && v > best_threshold ? 1 : 0].push_back(i);
    }
  } else {
    partitions.resize(schema_.feature(a).num_values());
    for (std::size_t i : indices) {
      const double v = data.instance(i).features[a];
      partitions[std::isnan(v) ? 0 : static_cast<std::size_t>(v)].push_back(i);
    }
  }
  // A degenerate "split" that keeps everything in one branch would recurse
  // forever; treat it as a leaf.
  std::size_t populated = 0;
  for (const auto& part : partitions) {
    if (!part.empty()) {
      ++populated;
    }
  }
  if (populated < 2) {
    node->attr = -1;
    return node;
  }
  for (const auto& part : partitions) {
    node->children.push_back(Build(data, part, depth + 1, rng, node->class_dist));
  }
  return node;
}

const RandomTree::Node* RandomTree::Descend(const std::vector<double>& features) const {
  assert(trained_);
  const Node* node = root_.get();
  while (!node->IsLeaf()) {
    const std::size_t a = static_cast<std::size_t>(node->attr);
    std::size_t branch;
    const double value = features[a];
    if (node->numeric_split) {
      branch = !std::isnan(value) && value > node->threshold ? 1 : 0;
    } else {
      if (std::isnan(value)) {
        break;  // Missing nominal: answer from this node's distribution.
      }
      branch = static_cast<std::size_t>(value);
      if (branch >= node->children.size()) {
        break;
      }
    }
    const Node* child = node->children[branch].get();
    if (child->weight <= 0.0) {
      break;
    }
    node = child;
  }
  return node;
}

int RandomTree::Predict(const std::vector<double>& features) const {
  return Descend(features)->majority;
}

std::vector<double> RandomTree::PredictDistribution(const std::vector<double>& features) const {
  const Node* node = Descend(features);
  std::vector<double> dist = node->class_dist;
  const double total = SumOf(dist);
  if (total > 0.0) {
    for (double& d : dist) {
      d /= total;
    }
  } else {
    dist.assign(schema_.num_classes(), 0.0);
    dist[static_cast<std::size_t>(node->majority)] = 1.0;
  }
  return dist;
}

std::size_t RandomTree::CountNodes(const Node* node) {
  if (node == nullptr) {
    return 0;
  }
  std::size_t n = 1;
  for (const auto& child : node->children) {
    n += CountNodes(child.get());
  }
  return n;
}

std::size_t RandomTree::NumNodes() const { return CountNodes(root_.get()); }

}  // namespace ofc::ml
