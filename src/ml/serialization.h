// Serialization for schemas, datasets and J48 models.
//
// The paper stores each function's models in OpenWhisk's metadata database
// (CouchDB, §5.1): when a function is invoked and OWK fetches its metadata, the
// model comes along. This module provides the compact text encoding those
// documents use — token-based, whitespace-separated, with length-prefixed
// strings, so round trips are exact and the format is diffable.
#ifndef OFC_ML_SERIALIZATION_H_
#define OFC_ML_SERIALIZATION_H_

#include <iosfwd>
#include <string>

#include "src/common/status.h"
#include "src/ml/dataset.h"
#include "src/ml/j48.h"

namespace ofc::ml {

// ---- Primitives ------------------------------------------------------------------

// Length-prefixed string ("4 jpeg"); survives embedded whitespace.
void WriteString(std::ostream& out, const std::string& value);
Result<std::string> ReadString(std::istream& in);

// ---- Schema ----------------------------------------------------------------------

void WriteSchema(std::ostream& out, const Schema& schema);
Result<Schema> ReadSchema(std::istream& in);

// ---- Instances (training-set persistence) ------------------------------------------

void WriteInstances(std::ostream& out, const std::vector<Instance>& instances);
Result<std::vector<Instance>> ReadInstances(std::istream& in, const Schema& schema);

// ---- J48 --------------------------------------------------------------------------

// Serializes a trained model (schema + tree). Untrained models serialize to a
// marker that deserializes back into an untrained model.
std::string SerializeJ48(const J48& model);
Result<J48> DeserializeJ48(const std::string& data);

void WriteJ48(std::ostream& out, const J48& model);
Result<J48> ReadJ48(std::istream& in);

}  // namespace ofc::ml

#endif  // OFC_ML_SERIALIZATION_H_
