// Shared information-theory and statistics helpers for the tree learners.
#ifndef OFC_ML_TREE_MATH_H_
#define OFC_ML_TREE_MATH_H_

#include <cstddef>
#include <vector>

namespace ofc::ml {

// Shannon entropy (bits) of a weight distribution. Zero-weight distributions
// have zero entropy.
double Entropy(const std::vector<double>& class_weights);

// Entropy of a partition: sum over branches of (w_branch / w_total) * H(branch).
double PartitionEntropy(const std::vector<std::vector<double>>& branch_class_weights);

// Split information term used by the C4.5 gain ratio: entropy of branch sizes.
double SplitInformation(const std::vector<std::vector<double>>& branch_class_weights);

// Inverse of the standard normal CDF (Acklam's rational approximation; relative
// error < 1.15e-9). Used by the pessimistic error estimate.
double NormalInverse(double p);

// Weka-compatible pessimistic additional-error estimate: given a leaf covering
// N (weighted) instances with e (weighted) errors, returns the extra errors to
// add so the estimate is an upper confidence bound at level (1 - confidence).
// C4.5's default confidence factor is 0.25.
double PessimisticExtraErrors(double n, double e, double confidence);

// argmax over a distribution (first index on ties).
std::size_t ArgMax(const std::vector<double>& values);

}  // namespace ofc::ml

#endif  // OFC_ML_TREE_MATH_H_
