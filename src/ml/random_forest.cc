#include "src/ml/random_forest.h"

#include "src/common/rng.h"
#include "src/ml/tree_math.h"

namespace ofc::ml {

Status RandomForest::Train(const Dataset& data) {
  if (data.empty()) {
    return InvalidArgumentError("RandomForest: empty training set");
  }
  schema_ = data.schema();
  trees_.clear();
  Rng rng(options_.seed);
  for (int t = 0; t < options_.num_trees; ++t) {
    // Bootstrap sample (with replacement, same size as the original).
    Dataset bag(data.schema());
    for (std::size_t i = 0; i < data.size(); ++i) {
      const Instance& inst = data.instance(rng.Index(data.size()));
      OFC_RETURN_IF_ERROR(bag.Add(inst));
    }
    RandomTreeOptions tree_options = options_.tree;
    tree_options.seed = rng.NextU64();
    auto tree = std::make_unique<RandomTree>(tree_options);
    OFC_RETURN_IF_ERROR(tree->Train(bag));
    trees_.push_back(std::move(tree));
  }
  trained_ = true;
  return OkStatus();
}

std::vector<double> RandomForest::PredictDistribution(
    const std::vector<double>& features) const {
  std::vector<double> votes(schema_.num_classes(), 0.0);
  for (const auto& tree : trees_) {
    const std::vector<double> dist = tree->PredictDistribution(features);
    for (std::size_t c = 0; c < votes.size(); ++c) {
      votes[c] += dist[c];
    }
  }
  if (!trees_.empty()) {
    for (double& v : votes) {
      v /= static_cast<double>(trees_.size());
    }
  }
  return votes;
}

int RandomForest::Predict(const std::vector<double>& features) const {
  return static_cast<int>(ArgMax(PredictDistribution(features)));
}

std::size_t RandomForest::NumNodes() const {
  std::size_t n = 0;
  for (const auto& tree : trees_) {
    n += tree->NumNodes();
  }
  return n;
}

}  // namespace ofc::ml
