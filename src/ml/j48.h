// J48: a C4.5 decision-tree learner (Quinlan 1993), matching the Weka variant the
// paper uses (§5.1.1): gain-ratio attribute selection with the average-gain
// guard, binary splits with MDL correction on numeric attributes, multiway splits
// on nominal attributes, pessimistic error pruning (confidence factor 0.25), and
// C4.5's fractional-instance treatment of missing values (encode a missing
// feature as NaN): during training, instances with an unknown split attribute
// descend every branch with proportional weight and the gain is scaled by the
// known fraction; during prediction, a missing attribute blends the children's
// distributions by their training weights.
//
// Decision trees fit OFC's constraints: prediction is a handful of comparisons
// (Figure 6 budget of ~1 ms is beaten by orders of magnitude), nominal argument
// values need no semantic preprocessing, and full retraining on the curated
// training set (§5.3.3) is cheap.
#ifndef OFC_ML_J48_H_
#define OFC_ML_J48_H_

#include <iosfwd>
#include <memory>
#include <vector>

#include "src/ml/classifier.h"

namespace ofc::ml {

struct J48Options {
  double confidence = 0.25;      // Pessimistic-pruning confidence factor.
  double min_leaf_weight = 2.0;  // Minimum weighted instances per leaf.
  bool prune = true;
  int max_depth = 60;  // Safety guard; C4.5 has no explicit limit.
};

class J48 : public Classifier {
 public:
  explicit J48(J48Options options = {}) : options_(options) {}

  Status Train(const Dataset& data) override;
  int Predict(const std::vector<double>& features) const override;
  std::vector<double> PredictDistribution(const std::vector<double>& features) const override;
  std::string Name() const override { return "J48"; }
  std::size_t NumNodes() const override;

  // Depth of the learned tree (leaves have depth 1); 0 before training.
  std::size_t Depth() const;

  // Serialization (src/ml/serialization.h): models travel with the function
  // metadata in OWK's database (§5.1).
  friend void WriteJ48(std::ostream& out, const J48& model);
  friend Result<J48> ReadJ48(std::istream& in);

 private:
  struct Node {
    // Leaf payload (also kept on internal nodes for empty-branch fallbacks and
    // for pruning-time error estimates).
    std::vector<double> class_dist;
    int majority = 0;
    double weight = 0.0;  // Weighted training instances reaching this node.

    // Split payload; attr < 0 means leaf.
    int attr = -1;
    bool numeric_split = false;
    double threshold = 0.0;  // For numeric splits: left branch is value <= threshold.
    std::vector<std::unique_ptr<Node>> children;

    bool IsLeaf() const { return attr < 0; }
  };

  // (index, accumulated path weight) — fractions arise from missing values.
  struct WeightedIndex {
    std::size_t index;
    double weight;
  };

  std::unique_ptr<Node> Build(const Dataset& data, const std::vector<WeightedIndex>& items,
                              int depth, const std::vector<double>& parent_dist);
  std::unique_ptr<Node> MakeLeaf(const std::vector<double>& dist) const;
  // Returns the estimated (pessimistic) error count of the subtree, pruning it
  // in place to a leaf where that lowers the estimate.
  double Prune(Node* node);
  // Adds `weight` x the subtree's class distribution for `features` into
  // `dist`, blending across branches when the split attribute is missing.
  void Accumulate(const Node* node, const std::vector<double>& features, double weight,
                  std::vector<double>& dist) const;
  static std::size_t CountNodes(const Node* node);
  static std::size_t MaxDepth(const Node* node);

  J48Options options_;
  std::unique_ptr<Node> root_;
};

}  // namespace ofc::ml

#endif  // OFC_ML_J48_H_
