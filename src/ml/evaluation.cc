#include "src/ml/evaluation.h"

#include <algorithm>
#include <cassert>

namespace ofc::ml {

ConfusionMatrix::ConfusionMatrix(std::size_t num_classes)
    : n_(num_classes), cells_(num_classes * num_classes, 0.0) {}

void ConfusionMatrix::Add(int truth, int predicted, double weight) {
  assert(truth >= 0 && static_cast<std::size_t>(truth) < n_);
  assert(predicted >= 0 && static_cast<std::size_t>(predicted) < n_);
  cells_[static_cast<std::size_t>(truth) * n_ + static_cast<std::size_t>(predicted)] += weight;
  total_ += weight;
}

double ConfusionMatrix::count(int truth, int predicted) const {
  return cells_[static_cast<std::size_t>(truth) * n_ + static_cast<std::size_t>(predicted)];
}

double ConfusionMatrix::Accuracy() const {
  if (total_ <= 0.0) {
    return 0.0;
  }
  double correct = 0.0;
  for (std::size_t c = 0; c < n_; ++c) {
    correct += cells_[c * n_ + c];
  }
  return correct / total_;
}

double ConfusionMatrix::ExactOrOverAccuracy() const {
  if (total_ <= 0.0) {
    return 0.0;
  }
  double eo = 0.0;
  for (std::size_t t = 0; t < n_; ++t) {
    for (std::size_t p = t; p < n_; ++p) {
      eo += cells_[t * n_ + p];
    }
  }
  return eo / total_;
}

double ConfusionMatrix::UnderpredictionsWithin(int k) const {
  double under = 0.0;
  double within = 0.0;
  for (std::size_t t = 0; t < n_; ++t) {
    for (std::size_t p = 0; p < t; ++p) {
      under += cells_[t * n_ + p];
      if (static_cast<int>(t - p) <= k) {
        within += cells_[t * n_ + p];
      }
    }
  }
  return under <= 0.0 ? 1.0 : within / under;
}

double ConfusionMatrix::UnderpredictionRate() const {
  if (total_ <= 0.0) {
    return 0.0;
  }
  double under = 0.0;
  for (std::size_t t = 0; t < n_; ++t) {
    for (std::size_t p = 0; p < t; ++p) {
      under += cells_[t * n_ + p];
    }
  }
  return under / total_;
}

double ConfusionMatrix::OverpredictionRate() const {
  if (total_ <= 0.0) {
    return 0.0;
  }
  double over = 0.0;
  for (std::size_t t = 0; t < n_; ++t) {
    for (std::size_t p = t + 1; p < n_; ++p) {
      over += cells_[t * n_ + p];
    }
  }
  return over / total_;
}

double ConfusionMatrix::Precision(int positive_class) const {
  const std::size_t p = static_cast<std::size_t>(positive_class);
  double predicted_positive = 0.0;
  for (std::size_t t = 0; t < n_; ++t) {
    predicted_positive += cells_[t * n_ + p];
  }
  return predicted_positive <= 0.0 ? 0.0 : count(positive_class, positive_class) /
                                               predicted_positive;
}

double ConfusionMatrix::Recall(int positive_class) const {
  const std::size_t t = static_cast<std::size_t>(positive_class);
  double actual_positive = 0.0;
  for (std::size_t p = 0; p < n_; ++p) {
    actual_positive += cells_[t * n_ + p];
  }
  return actual_positive <= 0.0 ? 0.0 : count(positive_class, positive_class) / actual_positive;
}

double ConfusionMatrix::FMeasure(int positive_class) const {
  const double precision = Precision(positive_class);
  const double recall = Recall(positive_class);
  return precision + recall <= 0.0 ? 0.0 : 2.0 * precision * recall / (precision + recall);
}

void ConfusionMatrix::Merge(const ConfusionMatrix& other) {
  assert(n_ == other.n_);
  for (std::size_t i = 0; i < cells_.size(); ++i) {
    cells_[i] += other.cells_[i];
  }
  total_ += other.total_;
}

CrossValidationResult CrossValidate(const ClassifierFactory& factory, const Dataset& data,
                                    int folds, Rng& rng) {
  assert(folds >= 2);
  const std::size_t k = static_cast<std::size_t>(folds);
  CrossValidationResult result{ConfusionMatrix(data.schema().num_classes()), {}};

  // Stratified fold assignment: shuffle indices within each class, then deal
  // them round-robin across folds.
  std::vector<std::vector<std::size_t>> by_class(data.schema().num_classes());
  for (std::size_t i = 0; i < data.size(); ++i) {
    by_class[static_cast<std::size_t>(data.instance(i).label)].push_back(i);
  }
  std::vector<std::size_t> fold_of(data.size(), 0);
  std::size_t deal = 0;
  for (auto& members : by_class) {
    for (std::size_t i = members.size(); i > 1; --i) {
      std::swap(members[i - 1], members[rng.Index(i)]);
    }
    for (std::size_t idx : members) {
      fold_of[idx] = deal++ % k;
    }
  }

  for (std::size_t fold = 0; fold < k; ++fold) {
    Dataset train(data.schema());
    std::vector<std::size_t> test_indices;
    for (std::size_t i = 0; i < data.size(); ++i) {
      if (fold_of[i] == fold) {
        test_indices.push_back(i);
      } else {
        (void)train.Add(data.instance(i));
      }
    }
    if (train.empty() || test_indices.empty()) {
      continue;
    }
    std::unique_ptr<Classifier> model = factory();
    if (!model->Train(train).ok()) {
      continue;
    }
    for (std::size_t i : test_indices) {
      const Instance& inst = data.instance(i);
      const int predicted = model->Predict(inst.features);
      result.confusion.Add(inst.label, predicted, 1.0);
      result.errors.push_back(predicted - inst.label);
    }
  }
  return result;
}

}  // namespace ofc::ml
