#include "src/ml/dataset.h"

#include <cmath>

namespace ofc::ml {

int Schema::FeatureIndex(const std::string& name) const {
  for (std::size_t i = 0; i < features_.size(); ++i) {
    if (features_[i].name == name) {
      return static_cast<int>(i);
    }
  }
  return -1;
}

Status Dataset::Add(Instance instance) {
  if (instance.features.size() != schema_.num_features()) {
    return InvalidArgumentError("instance arity mismatch");
  }
  if (instance.label < 0 || static_cast<std::size_t>(instance.label) >= schema_.num_classes()) {
    return InvalidArgumentError("label out of range");
  }
  for (std::size_t i = 0; i < instance.features.size(); ++i) {
    const Attribute& attr = schema_.feature(i);
    const double v = instance.features[i];
    if (std::isnan(v)) {
      continue;  // NaN encodes a missing value (handled by C4.5's fractional split).
    }
    if (attr.kind == AttributeKind::kNominal) {
      if (v != std::floor(v) || v < 0 || static_cast<std::size_t>(v) >= attr.num_values()) {
        return InvalidArgumentError("nominal value out of range for " + attr.name);
      }
    }
  }
  if (instance.weight <= 0) {
    return InvalidArgumentError("non-positive instance weight");
  }
  instances_.push_back(std::move(instance));
  return OkStatus();
}

double Dataset::TotalWeight() const {
  double total = 0.0;
  for (const Instance& inst : instances_) {
    total += inst.weight;
  }
  return total;
}

std::vector<double> Dataset::ClassDistribution() const {
  std::vector<double> dist(schema_.num_classes(), 0.0);
  for (const Instance& inst : instances_) {
    dist[static_cast<std::size_t>(inst.label)] += inst.weight;
  }
  return dist;
}

}  // namespace ofc::ml
