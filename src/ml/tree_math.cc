#include "src/ml/tree_math.h"

#include <cassert>
#include <cmath>

namespace ofc::ml {

namespace {
double Log2(double x) { return std::log(x) * 1.4426950408889634; }
}  // namespace

double Entropy(const std::vector<double>& class_weights) {
  double total = 0.0;
  for (double w : class_weights) {
    total += w;
  }
  if (total <= 0.0) {
    return 0.0;
  }
  double h = 0.0;
  for (double w : class_weights) {
    if (w > 0.0) {
      const double p = w / total;
      h -= p * Log2(p);
    }
  }
  return h;
}

double PartitionEntropy(const std::vector<std::vector<double>>& branch_class_weights) {
  double total = 0.0;
  for (const auto& branch : branch_class_weights) {
    for (double w : branch) {
      total += w;
    }
  }
  if (total <= 0.0) {
    return 0.0;
  }
  double h = 0.0;
  for (const auto& branch : branch_class_weights) {
    double branch_total = 0.0;
    for (double w : branch) {
      branch_total += w;
    }
    if (branch_total > 0.0) {
      h += branch_total / total * Entropy(branch);
    }
  }
  return h;
}

double SplitInformation(const std::vector<std::vector<double>>& branch_class_weights) {
  double total = 0.0;
  std::vector<double> branch_totals;
  branch_totals.reserve(branch_class_weights.size());
  for (const auto& branch : branch_class_weights) {
    double branch_total = 0.0;
    for (double w : branch) {
      branch_total += w;
    }
    branch_totals.push_back(branch_total);
    total += branch_total;
  }
  if (total <= 0.0) {
    return 0.0;
  }
  double si = 0.0;
  for (double bt : branch_totals) {
    if (bt > 0.0) {
      const double p = bt / total;
      si -= p * Log2(p);
    }
  }
  return si;
}

double NormalInverse(double p) {
  assert(p > 0.0 && p < 1.0);
  // Acklam's algorithm.
  static const double a[] = {-3.969683028665376e+01, 2.209460984245205e+02,
                             -2.759285104469687e+02, 1.383577518672690e+02,
                             -3.066479806614716e+01, 2.506628277459239e+00};
  static const double b[] = {-5.447609879822406e+01, 1.615858368580409e+02,
                             -1.556989798598866e+02, 6.680131188771972e+01,
                             -1.328068155288572e+01};
  static const double c[] = {-7.784894002430293e-03, -3.223964580411365e-01,
                             -2.400758277161838e+00, -2.549732539343734e+00,
                             4.374664141464968e+00,  2.938163982698783e+00};
  static const double d[] = {7.784695709041462e-03, 3.224671290700398e-01,
                             2.445134137142996e+00, 3.754408661907416e+00};
  constexpr double kLow = 0.02425;
  constexpr double kHigh = 1.0 - kLow;
  double q;
  double r;
  if (p < kLow) {
    q = std::sqrt(-2.0 * std::log(p));
    return (((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
           ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
  }
  if (p <= kHigh) {
    q = p - 0.5;
    r = q * q;
    return (((((a[0] * r + a[1]) * r + a[2]) * r + a[3]) * r + a[4]) * r + a[5]) * q /
           (((((b[0] * r + b[1]) * r + b[2]) * r + b[3]) * r + b[4]) * r + 1.0);
  }
  q = std::sqrt(-2.0 * std::log(1.0 - p));
  return -(((((c[0] * q + c[1]) * q + c[2]) * q + c[3]) * q + c[4]) * q + c[5]) /
         ((((d[0] * q + d[1]) * q + d[2]) * q + d[3]) * q + 1.0);
}

double PessimisticExtraErrors(double n, double e, double confidence) {
  if (n <= 0.0) {
    return 0.0;
  }
  // Mirrors Weka's weka.core.Utils-style Stats.addErrs.
  if (e < 1.0) {
    const double base = n * (1.0 - std::pow(confidence, 1.0 / n));
    if (e == 0.0) {
      return base;
    }
    return base + e * (PessimisticExtraErrors(n, 1.0, confidence) - base);
  }
  if (e + 0.5 >= n) {
    return std::max(n - e, 0.0);
  }
  const double z = NormalInverse(1.0 - confidence);
  const double f = (e + 0.5) / n;
  const double r =
      (f + z * z / (2.0 * n) + z * std::sqrt(f / n - f * f / n + z * z / (4.0 * n * n))) /
      (1.0 + z * z / n);
  return r * n - e;
}

std::size_t ArgMax(const std::vector<double>& values) {
  std::size_t best = 0;
  for (std::size_t i = 1; i < values.size(); ++i) {
    if (values[i] > values[best]) {
      best = i;
    }
  }
  return best;
}

}  // namespace ofc::ml
