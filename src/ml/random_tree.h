// RandomTree: an unpruned decision tree that considers a random subset of
// K = floor(log2(#features)) + 1 attributes at each node (Weka's RandomTree
// default), selecting by information gain. Used standalone (Table 1 row) and as
// the base learner of RandomForest.
#ifndef OFC_ML_RANDOM_TREE_H_
#define OFC_ML_RANDOM_TREE_H_

#include <memory>
#include <vector>

#include "src/common/rng.h"
#include "src/ml/classifier.h"

namespace ofc::ml {

struct RandomTreeOptions {
  int num_attributes = 0;  // <=0: floor(log2(F)) + 1.
  double min_leaf_weight = 1.0;
  int max_depth = 60;
  std::uint64_t seed = 1;
};

class RandomTree : public Classifier {
 public:
  explicit RandomTree(RandomTreeOptions options = {}) : options_(options) {}

  Status Train(const Dataset& data) override;
  int Predict(const std::vector<double>& features) const override;
  std::vector<double> PredictDistribution(const std::vector<double>& features) const override;
  std::string Name() const override { return "RandomTree"; }
  std::size_t NumNodes() const override;

 private:
  struct Node {
    std::vector<double> class_dist;
    int majority = 0;
    double weight = 0.0;
    int attr = -1;
    bool numeric_split = false;
    double threshold = 0.0;
    std::vector<std::unique_ptr<Node>> children;
    bool IsLeaf() const { return attr < 0; }
  };

  std::unique_ptr<Node> Build(const Dataset& data, const std::vector<std::size_t>& indices,
                              int depth, Rng& rng, const std::vector<double>& parent_dist);
  const Node* Descend(const std::vector<double>& features) const;
  static std::size_t CountNodes(const Node* node);

  RandomTreeOptions options_;
  std::unique_ptr<Node> root_;
};

}  // namespace ofc::ml

#endif  // OFC_ML_RANDOM_TREE_H_
