#include "src/ml/hoeffding_tree.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/ml/tree_math.h"

namespace ofc::ml {

namespace {

double SumOf(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) {
    s += x;
  }
  return s;
}

}  // namespace

void HoeffdingTree::GaussianEstimator::Add(double x, double w) {
  weight += w;
  const double delta = x - mean;
  mean += delta * w / weight;
  m2 += w * delta * (x - mean);
}

double HoeffdingTree::GaussianEstimator::CdfBelow(double x) const {
  if (weight <= 0.0) {
    return 0.0;
  }
  const double var = variance();
  if (var <= 1e-12) {
    return x >= mean ? 1.0 : 0.0;
  }
  return 0.5 * std::erfc((mean - x) / std::sqrt(2.0 * var));
}

Status HoeffdingTree::Reset(const Schema& schema) {
  if (schema.num_classes() < 2) {
    return InvalidArgumentError("HoeffdingTree: need at least two classes");
  }
  schema_ = schema;
  root_ = MakeLeaf();
  num_nodes_ = 1;
  trained_ = true;
  return OkStatus();
}

Status HoeffdingTree::Train(const Dataset& data) {
  if (data.empty()) {
    return InvalidArgumentError("HoeffdingTree: empty training set");
  }
  OFC_RETURN_IF_ERROR(Reset(data.schema()));
  for (const Instance& inst : data.instances()) {
    OFC_RETURN_IF_ERROR(Observe(inst));
  }
  return OkStatus();
}

std::unique_ptr<HoeffdingTree::Node> HoeffdingTree::MakeLeaf() {
  auto node = std::make_unique<Node>();
  node->stats = std::make_unique<LeafStats>();
  LeafStats& stats = *node->stats;
  stats.class_counts.assign(schema_.num_classes(), 0.0);
  stats.gaussians.resize(schema_.num_features());
  stats.attr_min.assign(schema_.num_features(), std::numeric_limits<double>::infinity());
  stats.attr_max.assign(schema_.num_features(), -std::numeric_limits<double>::infinity());
  stats.nominal_counts.resize(schema_.num_features());
  for (std::size_t a = 0; a < schema_.num_features(); ++a) {
    const Attribute& attr = schema_.feature(a);
    if (attr.kind == AttributeKind::kNumeric) {
      stats.gaussians[a].resize(schema_.num_classes());
    } else {
      stats.nominal_counts[a].assign(attr.num_values(),
                                     std::vector<double>(schema_.num_classes(), 0.0));
    }
  }
  return node;
}

double HoeffdingTree::TotalWeight(const LeafStats& stats) const {
  return SumOf(stats.class_counts);
}

Status HoeffdingTree::Observe(const Instance& instance) {
  if (!trained_) {
    return FailedPreconditionError("HoeffdingTree: call Reset()/Train() first");
  }
  if (instance.features.size() != schema_.num_features()) {
    return InvalidArgumentError("HoeffdingTree: instance arity mismatch");
  }
  Node* leaf = DescendMutable(instance.features);
  LeafStats& stats = *leaf->stats;
  const auto label = static_cast<std::size_t>(instance.label);
  // Adaptive leaf prediction: score both strategies on this instance *before*
  // absorbing it (prequential evaluation).
  if (options_.leaf_prediction == LeafPrediction::kNaiveBayesAdaptive &&
      SumOf(stats.class_counts) > 0.0) {
    if (static_cast<int>(ArgMax(stats.class_counts)) == instance.label) {
      stats.majority_correct += instance.weight;
    }
    if (NaiveBayesPredict(stats, instance.features) == instance.label) {
      stats.nb_correct += instance.weight;
    }
  }
  stats.class_counts[label] += instance.weight;
  for (std::size_t a = 0; a < schema_.num_features(); ++a) {
    const Attribute& attr = schema_.feature(a);
    const double v = instance.features[a];
    if (std::isnan(v)) {
      continue;  // Missing values update no per-attribute statistics.
    }
    if (attr.kind == AttributeKind::kNumeric) {
      stats.gaussians[a][label].Add(v, instance.weight);
      stats.attr_min[a] = std::min(stats.attr_min[a], v);
      stats.attr_max[a] = std::max(stats.attr_max[a], v);
    } else {
      stats.nominal_counts[a][static_cast<std::size_t>(v)][label] += instance.weight;
    }
  }
  const double weight = TotalWeight(stats);
  if (weight - stats.weight_at_last_attempt >= options_.grace_period &&
      num_nodes_ < static_cast<std::size_t>(options_.max_nodes)) {
    stats.weight_at_last_attempt = weight;
    MaybeSplit(leaf);
  }
  return OkStatus();
}

void HoeffdingTree::MaybeSplit(Node* leaf) {
  LeafStats& stats = *leaf->stats;
  const double total = TotalWeight(stats);
  const double node_entropy = Entropy(stats.class_counts);
  if (node_entropy <= 0.0 || total <= 0.0) {
    return;
  }

  // Best split candidate (highest info gain) per attribute.
  struct Candidate {
    double gain = 0.0;
    int attr = -1;
    bool numeric = false;
    double threshold = 0.0;
  };
  std::vector<Candidate> candidates;
  for (std::size_t a = 0; a < schema_.num_features(); ++a) {
    const Attribute& attr = schema_.feature(a);
    Candidate cand;
    cand.attr = static_cast<int>(a);
    if (attr.kind == AttributeKind::kNominal) {
      cand.gain = node_entropy - PartitionEntropy(stats.nominal_counts[a]);
      cand.numeric = false;
      candidates.push_back(cand);
    } else {
      if (!(stats.attr_min[a] < stats.attr_max[a])) {
        continue;
      }
      cand.numeric = true;
      double best_gain = -1.0;
      double best_threshold = 0.0;
      for (int b = 1; b < options_.numeric_bins; ++b) {
        const double t = stats.attr_min[a] + (stats.attr_max[a] - stats.attr_min[a]) *
                                                 static_cast<double>(b) /
                                                 static_cast<double>(options_.numeric_bins);
        std::vector<double> left(schema_.num_classes(), 0.0);
        std::vector<double> right(schema_.num_classes(), 0.0);
        for (std::size_t c = 0; c < schema_.num_classes(); ++c) {
          const GaussianEstimator& g = stats.gaussians[a][c];
          const double below = g.weight * g.CdfBelow(t);
          left[c] = below;
          right[c] = g.weight - below;
        }
        const double gain = node_entropy - PartitionEntropy({left, right});
        if (gain > best_gain) {
          best_gain = gain;
          best_threshold = t;
        }
      }
      cand.gain = best_gain;
      cand.threshold = best_threshold;
      candidates.push_back(cand);
    }
  }
  if (candidates.empty()) {
    return;
  }
  std::sort(candidates.begin(), candidates.end(),
            [](const Candidate& x, const Candidate& y) { return x.gain > y.gain; });
  const Candidate& best = candidates[0];
  const double second_gain = candidates.size() > 1 ? candidates[1].gain : 0.0;
  if (best.gain <= 1e-9) {
    return;
  }

  // Hoeffding bound over the info-gain range. Information gain at this leaf is
  // bounded by the entropy of its class distribution, itself bounded by
  // log2(#classes actually observed here) — far tighter than log2(#classes)
  // when the schema has many intervals but the function's memory only spans a
  // few (the common case for the 128-interval memory models).
  std::size_t observed_classes = 0;
  for (double count : stats.class_counts) {
    observed_classes += count > 0.0;
  }
  const double range =
      std::log2(static_cast<double>(std::max<std::size_t>(2, observed_classes)));
  const double epsilon =
      std::sqrt(range * range * std::log(1.0 / options_.delta) / (2.0 * total));
  if (best.gain - second_gain <= epsilon && epsilon >= options_.tie_threshold) {
    return;
  }

  // Convert the leaf into a split node with fresh leaves.
  leaf->attr = best.attr;
  leaf->numeric_split = best.numeric;
  leaf->threshold = best.threshold;
  leaf->class_counts_snapshot = stats.class_counts;
  const std::size_t branches =
      best.numeric ? 2 : schema_.feature(static_cast<std::size_t>(best.attr)).num_values();
  for (std::size_t b = 0; b < branches; ++b) {
    leaf->children.push_back(MakeLeaf());
  }
  num_nodes_ += branches;
  leaf->stats.reset();
}

HoeffdingTree::Node* HoeffdingTree::DescendMutable(const std::vector<double>& features) {
  Node* node = root_.get();
  while (!node->IsLeaf()) {
    const std::size_t a = static_cast<std::size_t>(node->attr);
    const double value = features[a];
    // Missing values descend the left/first branch.
    const std::size_t branch =
        std::isnan(value) ? 0u
                          : (node->numeric_split ? (value <= node->threshold ? 0u : 1u)
                                                 : static_cast<std::size_t>(value));
    assert(branch < node->children.size());
    node = node->children[branch].get();
  }
  return node;
}

const HoeffdingTree::Node* HoeffdingTree::Descend(const std::vector<double>& features) const {
  const Node* node = root_.get();
  const Node* last_informed = node;
  while (!node->IsLeaf()) {
    const std::size_t a = static_cast<std::size_t>(node->attr);
    const double value = features[a];
    const std::size_t branch =
        std::isnan(value) ? 0u
                          : (node->numeric_split ? (value <= node->threshold ? 0u : 1u)
                                                 : static_cast<std::size_t>(value));
    if (branch >= node->children.size()) {
      return last_informed;
    }
    node = node->children[branch].get();
    if (node->IsLeaf() && SumOf(node->stats->class_counts) > 0.0) {
      last_informed = node;
    } else if (!node->IsLeaf()) {
      last_informed = node;
    }
  }
  return node->IsLeaf() && SumOf(node->stats->class_counts) > 0.0 ? node : last_informed;
}

int HoeffdingTree::NaiveBayesPredict(const LeafStats& stats,
                                     const std::vector<double>& features) const {
  const double total = SumOf(stats.class_counts);
  if (total <= 0.0) {
    return 0;
  }
  const std::size_t num_classes = schema_.num_classes();
  double best_score = -std::numeric_limits<double>::infinity();
  int best_class = static_cast<int>(ArgMax(stats.class_counts));
  for (std::size_t c = 0; c < num_classes; ++c) {
    if (stats.class_counts[c] <= 0.0) {
      continue;  // Unseen classes cannot win under NB anyway.
    }
    double log_score = std::log(stats.class_counts[c] / total);
    for (std::size_t a = 0; a < schema_.num_features(); ++a) {
      const Attribute& attr = schema_.feature(a);
      const double v = features[a];
      if (std::isnan(v)) {
        continue;  // Missing feature: contributes no evidence.
      }
      if (attr.kind == AttributeKind::kNominal) {
        const auto& counts = stats.nominal_counts[a][static_cast<std::size_t>(v)];
        // Laplace smoothing over the attribute's value ensemble.
        log_score += std::log((counts[c] + 1.0) /
                              (stats.class_counts[c] +
                               static_cast<double>(attr.num_values())));
      } else {
        const GaussianEstimator& g = stats.gaussians[a][c];
        if (g.weight <= 1.0) {
          continue;  // Not enough evidence for a density estimate.
        }
        const double var = std::max(g.variance(), 1e-6);
        const double diff = v - g.mean;
        log_score += -0.5 * (std::log(2.0 * 3.141592653589793 * var) + diff * diff / var);
      }
    }
    if (log_score > best_score) {
      best_score = log_score;
      best_class = static_cast<int>(c);
    }
  }
  return best_class;
}

int HoeffdingTree::LeafPredict(const LeafStats& stats,
                               const std::vector<double>& features) const {
  if (options_.leaf_prediction == LeafPrediction::kNaiveBayesAdaptive &&
      stats.nb_correct > stats.majority_correct) {
    return NaiveBayesPredict(stats, features);
  }
  return static_cast<int>(ArgMax(stats.class_counts));
}

int HoeffdingTree::Predict(const std::vector<double>& features) const {
  assert(trained_);
  const Node* node = Descend(features);
  if (node->IsLeaf() && SumOf(node->stats->class_counts) > 0.0) {
    return LeafPredict(*node->stats, features);
  }
  const std::vector<double>& counts =
      node->IsLeaf() ? node->stats->class_counts : node->class_counts_snapshot;
  if (SumOf(counts) <= 0.0) {
    return 0;
  }
  return static_cast<int>(ArgMax(counts));
}

std::vector<double> HoeffdingTree::PredictDistribution(
    const std::vector<double>& features) const {
  const Node* node = Descend(features);
  std::vector<double> dist =
      node->IsLeaf() ? node->stats->class_counts : node->class_counts_snapshot;
  const double total = SumOf(dist);
  if (total > 0.0) {
    for (double& d : dist) {
      d /= total;
    }
  } else {
    dist.assign(schema_.num_classes(), 1.0 / static_cast<double>(schema_.num_classes()));
  }
  return dist;
}

}  // namespace ofc::ml
