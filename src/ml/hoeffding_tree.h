// HoeffdingTree (VFDT, Domingos & Hulten 2000; stress-tested by Holmes et al.
// 2005, the paper's reference [20]): an incremental decision tree that splits a
// leaf once the Hoeffding bound guarantees the observed best attribute is the
// true best with probability 1 - delta.
//
// Leaf prediction strategy: kNaiveBayesAdaptive (MOA's default) tracks, per
// leaf, whether the majority-class vote or a naive-Bayes model over the leaf's
// sufficient statistics has been more accurate on the training stream, and
// predicts with the winner — usually a large accuracy gain on small streams.
//
// Included because Table 1 evaluates it as the natural "incremental model
// update" candidate (§5.1.1); it loses to J48-with-retraining on accuracy, which
// is why OFC keeps a curated training set and retrains instead.
#ifndef OFC_ML_HOEFFDING_TREE_H_
#define OFC_ML_HOEFFDING_TREE_H_

#include <memory>
#include <vector>

#include "src/ml/classifier.h"

namespace ofc::ml {

// Per-leaf prediction strategy (see the file comment).
enum class LeafPrediction { kMajorityClass, kNaiveBayesAdaptive };

struct HoeffdingTreeOptions {
  // Split confidence / tie parameters. The MOA defaults (delta = 1e-7,
  // tie = 0.05) assume millions-of-instances streams; a leaf would need >3000
  // instances per split decision. OFC datasets are function-invocation logs in
  // the hundreds-to-thousands (§7.1.3), so we default to a more eager bound.
  double delta = 0.01;
  // Split anyway once the bound is this tight. Far larger than MOA's 0.05:
  // the OFC feature sets contain strongly correlated attributes (file size vs
  // content volume), whose near-equal gains would otherwise block splitting
  // forever on invocation-log-sized data (the classic VFDT tie problem).
  double tie_threshold = 0.5;
  int grace_period = 15;   // Instances between split attempts at a leaf.
  int numeric_bins = 16;   // Candidate thresholds per numeric attribute.
  int max_nodes = 8192;    // Growth cap.
  LeafPrediction leaf_prediction = LeafPrediction::kNaiveBayesAdaptive;
};

class HoeffdingTree : public Classifier {
 public:
  explicit HoeffdingTree(HoeffdingTreeOptions options = {}) : options_(options) {}

  // Batch training = one incremental pass, matching the MOA/Weka adapter.
  Status Train(const Dataset& data) override;
  Status Observe(const Instance& instance) override;
  int Predict(const std::vector<double>& features) const override;
  std::vector<double> PredictDistribution(const std::vector<double>& features) const override;
  std::string Name() const override { return "HoeffdingTree"; }
  std::size_t NumNodes() const override { return num_nodes_; }

  // Prepares an empty tree for Observe() streams with the given schema.
  Status Reset(const Schema& schema);

 private:
  // Per-class Gaussian sufficient statistics for one numeric attribute.
  struct GaussianEstimator {
    double weight = 0.0;
    double mean = 0.0;
    double m2 = 0.0;
    void Add(double x, double w);
    double variance() const { return weight <= 1.0 ? 0.0 : m2 / (weight - 1.0); }
    // Probability mass of this Gaussian at or below x.
    double CdfBelow(double x) const;
  };

  struct LeafStats {
    std::vector<double> class_counts;
    // [numeric attr slot][class] Gaussian; attribute-global observed range.
    std::vector<std::vector<GaussianEstimator>> gaussians;
    std::vector<double> attr_min;
    std::vector<double> attr_max;
    // [nominal attr slot][value][class] counts.
    std::vector<std::vector<std::vector<double>>> nominal_counts;
    double weight_at_last_attempt = 0.0;
    // Adaptive leaf-prediction bookkeeping: training-stream accuracy of the
    // majority-class vote vs the naive-Bayes model at this leaf.
    double majority_correct = 0.0;
    double nb_correct = 0.0;
  };

  struct Node {
    // Split payload (attr < 0 => leaf).
    int attr = -1;
    bool numeric_split = false;
    double threshold = 0.0;
    std::vector<std::unique_ptr<Node>> children;
    // Leaf payload.
    std::unique_ptr<LeafStats> stats;
    // Retained majority info for prediction at internal nodes / unseen values.
    std::vector<double> class_counts_snapshot;
    bool IsLeaf() const { return attr < 0; }
  };

  std::unique_ptr<Node> MakeLeaf();
  void MaybeSplit(Node* leaf);
  const Node* Descend(const std::vector<double>& features) const;
  Node* DescendMutable(const std::vector<double>& features);
  double TotalWeight(const LeafStats& stats) const;
  // Naive-Bayes class prediction from a leaf's sufficient statistics.
  int NaiveBayesPredict(const LeafStats& stats, const std::vector<double>& features) const;
  // The leaf's prediction under the configured strategy.
  int LeafPredict(const LeafStats& stats, const std::vector<double>& features) const;

  HoeffdingTreeOptions options_;
  std::unique_ptr<Node> root_;
  std::size_t num_nodes_ = 0;
};

}  // namespace ofc::ml

#endif  // OFC_ML_HOEFFDING_TREE_H_
