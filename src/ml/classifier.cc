#include "src/ml/classifier.h"

namespace ofc::ml {

std::vector<double> Classifier::PredictDistribution(const std::vector<double>& features) const {
  std::vector<double> dist(schema_.num_classes(), 0.0);
  const int label = Predict(features);
  if (label >= 0 && static_cast<std::size_t>(label) < dist.size()) {
    dist[static_cast<std::size_t>(label)] = 1.0;
  }
  return dist;
}

Status Classifier::Observe(const Instance&) {
  return FailedPreconditionError(Name() + " is not an incremental learner");
}

}  // namespace ofc::ml
