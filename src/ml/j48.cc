#include "src/ml/j48.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <limits>

#include "src/ml/tree_math.h"

namespace ofc::ml {

namespace {

double Log2(double x) { return std::log(x) * 1.4426950408889634; }

bool IsMissing(double value) { return std::isnan(value); }

double SumOf(const std::vector<double>& v) {
  double s = 0.0;
  for (double x : v) {
    s += x;
  }
  return s;
}

// Weighted training errors if this distribution is predicted by majority.
double LeafErrors(const std::vector<double>& dist) {
  return SumOf(dist) - dist[ArgMax(dist)];
}

struct CandidateSplit {
  int attr = -1;
  bool numeric = false;
  double threshold = 0.0;
  double gain = 0.0;
  double gain_ratio = 0.0;
  bool valid = false;
};

}  // namespace

Status J48::Train(const Dataset& data) {
  if (data.empty()) {
    return InvalidArgumentError("J48: empty training set");
  }
  if (data.schema().num_classes() < 2) {
    return InvalidArgumentError("J48: need at least two classes");
  }
  schema_ = data.schema();
  std::vector<WeightedIndex> items(data.size());
  for (std::size_t i = 0; i < items.size(); ++i) {
    items[i] = WeightedIndex{i, data.instance(i).weight};
  }
  std::vector<double> dist(schema_.num_classes(), 0.0);
  for (const WeightedIndex& item : items) {
    dist[static_cast<std::size_t>(data.instance(item.index).label)] += item.weight;
  }
  root_ = Build(data, items, 0, dist);
  if (options_.prune) {
    Prune(root_.get());
  }
  trained_ = true;
  return OkStatus();
}

std::unique_ptr<J48::Node> J48::MakeLeaf(const std::vector<double>& dist) const {
  auto node = std::make_unique<Node>();
  node->class_dist = dist;
  node->majority = static_cast<int>(ArgMax(dist));
  node->weight = SumOf(dist);
  return node;
}

std::unique_ptr<J48::Node> J48::Build(const Dataset& data,
                                      const std::vector<WeightedIndex>& items, int depth,
                                      const std::vector<double>& parent_dist) {
  if (items.empty()) {
    // Empty branch: inherit the parent's majority but carry zero weight so
    // pruning-time error estimates do not double-count the parent's instances.
    auto leaf = std::make_unique<Node>();
    leaf->class_dist.assign(parent_dist.size(), 0.0);
    leaf->majority = static_cast<int>(ArgMax(parent_dist));
    leaf->weight = 0.0;
    return leaf;
  }
  std::vector<double> dist(schema_.num_classes(), 0.0);
  for (const WeightedIndex& item : items) {
    dist[static_cast<std::size_t>(data.instance(item.index).label)] += item.weight;
  }
  const double total = SumOf(dist);

  // Stopping conditions: too small, pure, or depth guard.
  const double node_entropy = Entropy(dist);
  if (total < 2.0 * options_.min_leaf_weight || node_entropy <= 0.0 ||
      depth >= options_.max_depth) {
    return MakeLeaf(dist);
  }

  // Evaluate one candidate split per attribute. Instances whose value for the
  // attribute is missing are excluded from the gain computation; the gain is
  // scaled by the known fraction (C4.5).
  const std::size_t num_features = schema_.num_features();
  std::vector<CandidateSplit> candidates(num_features);
  for (std::size_t a = 0; a < num_features; ++a) {
    const Attribute& attr = schema_.feature(a);
    CandidateSplit& cand = candidates[a];
    cand.attr = static_cast<int>(a);

    std::vector<WeightedIndex> known;
    known.reserve(items.size());
    double known_weight = 0.0;
    std::vector<double> known_dist(dist.size(), 0.0);
    for (const WeightedIndex& item : items) {
      const double value = data.instance(item.index).features[a];
      if (!IsMissing(value)) {
        known.push_back(item);
        known_weight += item.weight;
        known_dist[static_cast<std::size_t>(data.instance(item.index).label)] +=
            item.weight;
      }
    }
    if (known_weight < 2.0 * options_.min_leaf_weight) {
      continue;
    }
    const double known_fraction = known_weight / total;
    const double known_entropy = Entropy(known_dist);

    if (attr.kind == AttributeKind::kNominal) {
      // Multiway split, one branch per nominal value.
      std::vector<std::vector<double>> branches(attr.num_values(),
                                                std::vector<double>(dist.size(), 0.0));
      for (const WeightedIndex& item : known) {
        const Instance& inst = data.instance(item.index);
        branches[static_cast<std::size_t>(inst.features[a])]
                [static_cast<std::size_t>(inst.label)] += item.weight;
      }
      // C4.5 requires at least two branches with min_leaf weight.
      std::size_t sufficient = 0;
      for (const auto& branch : branches) {
        if (SumOf(branch) >= options_.min_leaf_weight) {
          ++sufficient;
        }
      }
      if (sufficient < 2) {
        continue;
      }
      cand.numeric = false;
      cand.gain = known_fraction * (known_entropy - PartitionEntropy(branches));
      const double si = SplitInformation(branches);
      if (cand.gain > 1e-9 && si > 1e-9) {
        cand.gain_ratio = cand.gain / si;
        cand.valid = true;
      }
    } else {
      // Numeric: scan sorted known values for the best binary threshold.
      std::vector<WeightedIndex> sorted = known;
      std::sort(sorted.begin(), sorted.end(), [&](const WeightedIndex& x,
                                                  const WeightedIndex& y) {
        return data.instance(x.index).features[a] < data.instance(y.index).features[a];
      });
      std::vector<double> left(dist.size(), 0.0);
      std::vector<double> right = known_dist;
      double left_total = 0.0;
      double best_gain = -1.0;
      double best_threshold = 0.0;
      double best_split_info = 0.0;
      std::size_t num_boundaries = 0;
      for (std::size_t pos = 0; pos + 1 < sorted.size(); ++pos) {
        const Instance& inst = data.instance(sorted[pos].index);
        left[static_cast<std::size_t>(inst.label)] += sorted[pos].weight;
        left_total += sorted[pos].weight;
        right[static_cast<std::size_t>(inst.label)] -= sorted[pos].weight;
        const double v = inst.features[a];
        const double v_next = data.instance(sorted[pos + 1].index).features[a];
        if (v_next <= v) {
          continue;  // Not a boundary between distinct values.
        }
        ++num_boundaries;
        if (left_total < options_.min_leaf_weight ||
            known_weight - left_total < options_.min_leaf_weight) {
          continue;
        }
        const std::vector<std::vector<double>> branches = {left, right};
        const double gain = known_entropy - PartitionEntropy(branches);
        if (gain > best_gain) {
          best_gain = gain;
          best_threshold = (v + v_next) / 2.0;
          best_split_info = SplitInformation(branches);
        }
      }
      if (best_gain <= 1e-9 || num_boundaries == 0) {
        continue;
      }
      // C4.5's MDL correction: distributing log2(#candidate thresholds) bits of
      // threshold-choice cost over the instances.
      const double corrected =
          known_fraction * best_gain -
          Log2(static_cast<double>(num_boundaries)) / total;
      if (corrected <= 1e-9 || best_split_info <= 1e-9) {
        continue;
      }
      cand.numeric = true;
      cand.threshold = best_threshold;
      cand.gain = corrected;
      cand.gain_ratio = corrected / best_split_info;
      cand.valid = true;
    }
  }

  // C4.5 selection: best gain ratio among splits with at-least-average gain.
  double gain_sum = 0.0;
  std::size_t gain_count = 0;
  for (const CandidateSplit& cand : candidates) {
    if (cand.valid) {
      gain_sum += cand.gain;
      ++gain_count;
    }
  }
  if (gain_count == 0) {
    return MakeLeaf(dist);
  }
  const double avg_gain = gain_sum / static_cast<double>(gain_count);
  const CandidateSplit* best = nullptr;
  for (const CandidateSplit& cand : candidates) {
    if (!cand.valid || cand.gain + 1e-9 < avg_gain) {
      continue;
    }
    if (best == nullptr || cand.gain_ratio > best->gain_ratio) {
      best = &cand;
    }
  }
  if (best == nullptr) {
    return MakeLeaf(dist);
  }

  // Partition known instances by branch; missing-valued instances descend
  // every non-empty branch with proportional fractional weight.
  auto node = std::make_unique<Node>();
  node->class_dist = dist;
  node->majority = static_cast<int>(ArgMax(dist));
  node->weight = total;
  node->attr = best->attr;
  node->numeric_split = best->numeric;
  node->threshold = best->threshold;

  const std::size_t a = static_cast<std::size_t>(best->attr);
  const std::size_t num_branches =
      best->numeric ? 2 : schema_.feature(a).num_values();
  std::vector<std::vector<WeightedIndex>> partitions(num_branches);
  std::vector<double> branch_weights(num_branches, 0.0);
  std::vector<WeightedIndex> missing;
  for (const WeightedIndex& item : items) {
    const double value = data.instance(item.index).features[a];
    if (IsMissing(value)) {
      missing.push_back(item);
      continue;
    }
    const std::size_t branch =
        best->numeric ? (value <= best->threshold ? 0u : 1u)
                      : static_cast<std::size_t>(value);
    partitions[branch].push_back(item);
    branch_weights[branch] += item.weight;
  }
  const double known_total = SumOf(branch_weights);
  if (known_total > 0.0) {
    constexpr double kMinFraction = 1e-4;  // Drop negligible fractions.
    for (const WeightedIndex& item : missing) {
      for (std::size_t b = 0; b < num_branches; ++b) {
        const double fraction = branch_weights[b] / known_total;
        if (fraction > kMinFraction) {
          partitions[b].push_back(WeightedIndex{item.index, item.weight * fraction});
        }
      }
    }
  }
  for (const auto& part : partitions) {
    node->children.push_back(Build(data, part, depth + 1, dist));
  }
  return node;
}

double J48::Prune(Node* node) {
  const double leaf_estimate =
      LeafErrors(node->class_dist) +
      PessimisticExtraErrors(SumOf(node->class_dist), LeafErrors(node->class_dist),
                             options_.confidence);
  if (node->IsLeaf()) {
    return leaf_estimate;
  }
  double subtree_estimate = 0.0;
  for (const auto& child : node->children) {
    subtree_estimate += Prune(child.get());
  }
  // Subtree replacement: collapse when a leaf is (pessimistically) no worse.
  if (leaf_estimate <= subtree_estimate + 0.1) {
    node->attr = -1;
    node->children.clear();
    return leaf_estimate;
  }
  return subtree_estimate;
}

void J48::Accumulate(const Node* node, const std::vector<double>& features, double weight,
                     std::vector<double>& dist) const {
  while (!node->IsLeaf()) {
    const std::size_t a = static_cast<std::size_t>(node->attr);
    const double value = features[a];
    if (IsMissing(value)) {
      // Blend the children's answers by their training weights.
      double child_total = 0.0;
      for (const auto& child : node->children) {
        child_total += child->weight;
      }
      if (child_total <= 0.0) {
        break;  // Degenerate: answer from this node's own distribution.
      }
      for (const auto& child : node->children) {
        if (child->weight > 0.0) {
          Accumulate(child.get(), features, weight * child->weight / child_total, dist);
        }
      }
      return;
    }
    std::size_t branch;
    if (node->numeric_split) {
      branch = value <= node->threshold ? 0 : 1;
    } else {
      branch = static_cast<std::size_t>(value);
      if (branch >= node->children.size()) {
        break;  // Unseen nominal value: fall back to this node's distribution.
      }
    }
    const Node* child = node->children[branch].get();
    if (child->weight <= 0.0) {
      break;  // Empty branch: the parent distribution is the best evidence.
    }
    node = child;
  }
  // Contribute this node's (normalized) class distribution.
  const double total = SumOf(node->class_dist);
  if (total > 0.0) {
    for (std::size_t c = 0; c < dist.size(); ++c) {
      dist[c] += weight * node->class_dist[c] / total;
    }
  } else if (!dist.empty()) {
    dist[static_cast<std::size_t>(node->majority)] += weight;
  }
}

int J48::Predict(const std::vector<double>& features) const {
  assert(trained_);
  // Fast path: fully observed features descend a single path, allocation-free
  // (prediction sits on the invocation critical path, Figure 6).
  bool has_missing = false;
  for (double value : features) {
    if (IsMissing(value)) {
      has_missing = true;
      break;
    }
  }
  if (!has_missing) {
    const Node* node = root_.get();
    while (!node->IsLeaf()) {
      const std::size_t a = static_cast<std::size_t>(node->attr);
      std::size_t branch;
      if (node->numeric_split) {
        branch = features[a] <= node->threshold ? 0 : 1;
      } else {
        branch = static_cast<std::size_t>(features[a]);
        if (branch >= node->children.size()) {
          break;
        }
      }
      const Node* child = node->children[branch].get();
      if (child->weight <= 0.0) {
        break;
      }
      node = child;
    }
    return node->majority;
  }
  std::vector<double> dist(schema_.num_classes(), 0.0);
  Accumulate(root_.get(), features, 1.0, dist);
  return static_cast<int>(ArgMax(dist));
}

std::vector<double> J48::PredictDistribution(const std::vector<double>& features) const {
  assert(trained_);
  std::vector<double> dist(schema_.num_classes(), 0.0);
  Accumulate(root_.get(), features, 1.0, dist);
  return dist;
}

std::size_t J48::CountNodes(const Node* node) {
  if (node == nullptr) {
    return 0;
  }
  std::size_t n = 1;
  for (const auto& child : node->children) {
    n += CountNodes(child.get());
  }
  return n;
}

std::size_t J48::MaxDepth(const Node* node) {
  if (node == nullptr) {
    return 0;
  }
  std::size_t deepest = 0;
  for (const auto& child : node->children) {
    deepest = std::max(deepest, MaxDepth(child.get()));
  }
  return deepest + 1;
}

std::size_t J48::NumNodes() const { return CountNodes(root_.get()); }

std::size_t J48::Depth() const { return MaxDepth(root_.get()); }

}  // namespace ofc::ml
