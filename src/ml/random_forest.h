// RandomForest (Breiman 2001): bagged RandomTrees with majority voting over the
// trees' class distributions. Accuracy is on par with J48 on the OFC workloads
// (Table 1) but prediction walks every tree, which is why the paper rejects it
// on latency grounds (Figure 6: ~106 µs vs ~3 µs medians).
#ifndef OFC_ML_RANDOM_FOREST_H_
#define OFC_ML_RANDOM_FOREST_H_

#include <memory>
#include <vector>

#include "src/ml/random_tree.h"

namespace ofc::ml {

struct RandomForestOptions {
  int num_trees = 30;
  RandomTreeOptions tree;
  std::uint64_t seed = 1;
};

class RandomForest : public Classifier {
 public:
  explicit RandomForest(RandomForestOptions options = {}) : options_(options) {}

  Status Train(const Dataset& data) override;
  int Predict(const std::vector<double>& features) const override;
  std::vector<double> PredictDistribution(const std::vector<double>& features) const override;
  std::string Name() const override { return "RandomForest"; }
  std::size_t NumNodes() const override;

 private:
  RandomForestOptions options_;
  std::vector<std::unique_ptr<RandomTree>> trees_;
};

}  // namespace ofc::ml

#endif  // OFC_ML_RANDOM_FOREST_H_
