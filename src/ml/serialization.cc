#include "src/ml/serialization.h"

#include <cmath>
#include <istream>
#include <limits>
#include <ostream>
#include <sstream>

namespace ofc::ml {

namespace {

// Doubles are written in round-trippable hex-float form.
void WriteDouble(std::ostream& out, double value) {
  out << std::hexfloat << value << std::defaultfloat << ' ';
}

Result<double> ReadDouble(std::istream& in) {
  // std::hexfloat extraction is unreliable across standard libraries; parse a
  // token with strtod, which accepts hex floats.
  std::string token;
  if (!(in >> token)) {
    return InvalidArgumentError("truncated double");
  }
  char* end = nullptr;
  const double value = std::strtod(token.c_str(), &end);
  if (end == token.c_str()) {
    return InvalidArgumentError("malformed double: " + token);
  }
  return value;
}

Result<std::int64_t> ReadInt(std::istream& in) {
  std::int64_t value = 0;
  if (!(in >> value)) {
    return InvalidArgumentError("truncated integer");
  }
  return value;
}

}  // namespace

void WriteString(std::ostream& out, const std::string& value) {
  out << value.size() << ' ' << value << ' ';
}

Result<std::string> ReadString(std::istream& in) {
  std::size_t length = 0;
  if (!(in >> length)) {
    return InvalidArgumentError("truncated string length");
  }
  if (length > (1u << 20)) {
    return InvalidArgumentError("string too long");
  }
  in.get();  // The separating space.
  std::string value(length, '\0');
  in.read(value.data(), static_cast<std::streamsize>(length));
  if (in.gcount() != static_cast<std::streamsize>(length)) {
    return InvalidArgumentError("truncated string body");
  }
  return value;
}

namespace {

void WriteAttribute(std::ostream& out, const Attribute& attribute) {
  out << (attribute.kind == AttributeKind::kNominal ? 1 : 0) << ' ';
  WriteString(out, attribute.name);
  out << attribute.values.size() << ' ';
  for (const std::string& value : attribute.values) {
    WriteString(out, value);
  }
}

Result<Attribute> ReadAttribute(std::istream& in) {
  const auto kind = ReadInt(in);
  if (!kind.ok()) {
    return kind.status();
  }
  auto name = ReadString(in);
  if (!name.ok()) {
    return name.status();
  }
  const auto count = ReadInt(in);
  if (!count.ok()) {
    return count.status();
  }
  if (*count < 0 || *count > (1 << 20)) {
    return InvalidArgumentError("implausible nominal value count");
  }
  std::vector<std::string> values;
  values.reserve(static_cast<std::size_t>(*count));
  for (std::int64_t i = 0; i < *count; ++i) {
    auto value = ReadString(in);
    if (!value.ok()) {
      return value.status();
    }
    values.push_back(std::move(*value));
  }
  Attribute attribute;
  attribute.kind = *kind == 1 ? AttributeKind::kNominal : AttributeKind::kNumeric;
  attribute.name = std::move(*name);
  attribute.values = std::move(values);
  return attribute;
}

}  // namespace

void WriteSchema(std::ostream& out, const Schema& schema) {
  out << "schema " << schema.num_features() << ' ';
  for (const Attribute& attribute : schema.features()) {
    WriteAttribute(out, attribute);
  }
  WriteAttribute(out, schema.class_attribute());
}

Result<Schema> ReadSchema(std::istream& in) {
  std::string tag;
  if (!(in >> tag) || tag != "schema") {
    return InvalidArgumentError("missing schema tag");
  }
  const auto count = ReadInt(in);
  if (!count.ok()) {
    return count.status();
  }
  if (*count < 0 || *count > (1 << 16)) {
    return InvalidArgumentError("implausible feature count");
  }
  std::vector<Attribute> features;
  for (std::int64_t i = 0; i < *count; ++i) {
    auto attribute = ReadAttribute(in);
    if (!attribute.ok()) {
      return attribute.status();
    }
    features.push_back(std::move(*attribute));
  }
  auto class_attribute = ReadAttribute(in);
  if (!class_attribute.ok()) {
    return class_attribute.status();
  }
  return Schema(std::move(features), std::move(*class_attribute));
}

void WriteInstances(std::ostream& out, const std::vector<Instance>& instances) {
  out << "instances " << instances.size() << ' ';
  for (const Instance& instance : instances) {
    out << instance.label << ' ';
    WriteDouble(out, instance.weight);
    for (double feature : instance.features) {
      WriteDouble(out, feature);
    }
  }
}

Result<std::vector<Instance>> ReadInstances(std::istream& in, const Schema& schema) {
  std::string tag;
  if (!(in >> tag) || tag != "instances") {
    return InvalidArgumentError("missing instances tag");
  }
  const auto count = ReadInt(in);
  if (!count.ok()) {
    return count.status();
  }
  if (*count < 0 || *count > (1 << 24)) {
    return InvalidArgumentError("implausible instance count");
  }
  std::vector<Instance> instances;
  instances.reserve(static_cast<std::size_t>(*count));
  for (std::int64_t i = 0; i < *count; ++i) {
    Instance instance;
    const auto label = ReadInt(in);
    if (!label.ok()) {
      return label.status();
    }
    instance.label = static_cast<int>(*label);
    const auto weight = ReadDouble(in);
    if (!weight.ok()) {
      return weight.status();
    }
    instance.weight = *weight;
    instance.features.resize(schema.num_features());
    for (double& feature : instance.features) {
      const auto value = ReadDouble(in);
      if (!value.ok()) {
        return value.status();
      }
      feature = *value;
    }
    instances.push_back(std::move(instance));
  }
  return instances;
}

void WriteJ48(std::ostream& out, const J48& model) {
  out << "j48 " << (model.root_ != nullptr ? 1 : 0) << ' ';
  if (model.root_ == nullptr) {
    return;
  }
  WriteSchema(out, model.schema_);
  // Preorder tree dump.
  struct Writer {
    std::ostream& out;
    void Visit(const J48::Node* node) {
      out << node->attr << ' ' << (node->numeric_split ? 1 : 0) << ' ';
      WriteDouble(out, node->threshold);
      out << node->majority << ' ';
      WriteDouble(out, node->weight);
      out << node->class_dist.size() << ' ';
      for (double d : node->class_dist) {
        WriteDouble(out, d);
      }
      out << node->children.size() << ' ';
      for (const auto& child : node->children) {
        Visit(child.get());
      }
    }
  };
  Writer{out}.Visit(model.root_.get());
}

Result<J48> ReadJ48(std::istream& in) {
  std::string tag;
  if (!(in >> tag) || tag != "j48") {
    return InvalidArgumentError("missing j48 tag");
  }
  const auto trained = ReadInt(in);
  if (!trained.ok()) {
    return trained.status();
  }
  J48 model;
  if (*trained == 0) {
    return model;
  }
  auto schema = ReadSchema(in);
  if (!schema.ok()) {
    return schema.status();
  }

  struct Reader {
    std::istream& in;
    Status error;
    std::unique_ptr<J48::Node> Visit(int depth) {
      if (!error.ok() || depth > 256) {
        if (error.ok()) {
          error = InvalidArgumentError("tree too deep");
        }
        return nullptr;
      }
      auto node = std::make_unique<J48::Node>();
      std::int64_t numeric = 0;
      std::size_t dist_size = 0;
      std::size_t child_count = 0;
      if (!(in >> node->attr >> numeric)) {
        error = InvalidArgumentError("truncated node header");
        return nullptr;
      }
      const auto threshold = ReadDouble(in);
      if (!threshold.ok()) {
        error = threshold.status();
        return nullptr;
      }
      node->numeric_split = numeric == 1;
      node->threshold = *threshold;
      if (!(in >> node->majority)) {
        error = InvalidArgumentError("truncated node majority");
        return nullptr;
      }
      const auto weight = ReadDouble(in);
      if (!weight.ok()) {
        error = weight.status();
        return nullptr;
      }
      node->weight = *weight;
      if (!(in >> dist_size) || dist_size > (1u << 16)) {
        error = InvalidArgumentError("bad class distribution size");
        return nullptr;
      }
      node->class_dist.resize(dist_size);
      for (double& d : node->class_dist) {
        const auto value = ReadDouble(in);
        if (!value.ok()) {
          error = value.status();
          return nullptr;
        }
        d = *value;
      }
      if (!(in >> child_count) || child_count > (1u << 16)) {
        error = InvalidArgumentError("bad child count");
        return nullptr;
      }
      for (std::size_t c = 0; c < child_count; ++c) {
        auto child = Visit(depth + 1);
        if (!error.ok()) {
          return nullptr;
        }
        node->children.push_back(std::move(child));
      }
      return node;
    }
  };
  Reader reader{in, OkStatus()};
  auto root = reader.Visit(0);
  if (!reader.error.ok()) {
    return reader.error;
  }
  model.schema_ = std::move(*schema);
  model.trained_ = true;
  model.root_ = std::move(root);
  return model;
}

std::string SerializeJ48(const J48& model) {
  std::ostringstream out;
  WriteJ48(out, model);
  return out.str();
}

Result<J48> DeserializeJ48(const std::string& data) {
  std::istringstream in(data);
  return ReadJ48(in);
}

}  // namespace ofc::ml
