// Common interface for the four tree classifiers evaluated in Table 1.
#ifndef OFC_ML_CLASSIFIER_H_
#define OFC_ML_CLASSIFIER_H_

#include <memory>
#include <string>
#include <vector>

#include "src/common/status.h"
#include "src/ml/dataset.h"

namespace ofc::ml {

class Classifier {
 public:
  virtual ~Classifier() = default;

  // Builds the model from scratch. Must be callable repeatedly (retraining).
  virtual Status Train(const Dataset& data) = 0;

  // Predicted class index for a feature vector matching the training schema.
  // Requires a successful Train() (or, for incremental learners, Observe()).
  virtual int Predict(const std::vector<double>& features) const = 0;

  // Class-probability distribution; default implementation puts all mass on
  // Predict()'s answer.
  virtual std::vector<double> PredictDistribution(const std::vector<double>& features) const;

  // Incremental learners override this; batch learners return
  // kFailedPrecondition and rely on Train().
  virtual Status Observe(const Instance& instance);

  virtual std::string Name() const = 0;

  // Rough model size (node count) for reporting.
  virtual std::size_t NumNodes() const = 0;

 protected:
  // Stored schema for prediction-time checks.
  Schema schema_;
  bool trained_ = false;
};

}  // namespace ofc::ml

#endif  // OFC_ML_CLASSIFIER_H_
