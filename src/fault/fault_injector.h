// FaultInjector: replays a FaultPlan against the live system.
//
// The injector owns no system state — it holds raw pointers to the components
// it perturbs and schedules the plan's events on the shared event loop. Every
// fault with a positive duration schedules its own heal (worker restore, node
// restart, store recovery, ...), so a plan describes bounded outages as single
// entries. Injection is fully deterministic: the plan plus the event loop's
// scheduling order determine exactly when each fault and heal fires.
//
// Overlapping window semantics: outages / brownouts / webhook drops nest by
// depth — the condition clears only when the last overlapping window closes
// (a heal from an earlier, shorter window must not cancel a later one). Crash
// windows nest the same way, per target: a worker/node is crashed when its
// first window opens and restored only when its last overlapping window
// closes, so a target never comes back alive during a declared crash.
#ifndef OFC_FAULT_FAULT_INJECTOR_H_
#define OFC_FAULT_FAULT_INJECTOR_H_

#include <map>
#include <memory>

#include "src/core/proxy.h"
#include "src/faas/platform.h"
#include "src/fault/fault_plan.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"
#include "src/store/object_store.h"

namespace ofc::fault {

// Components a plan may target. Null pointers are allowed; scheduling a plan
// that addresses a missing component fails fast in Schedule().
struct FaultInjectorTargets {
  faas::Platform* platform = nullptr;
  rc::Cluster* cluster = nullptr;
  store::ObjectStore* rsds = nullptr;
  core::Proxy* proxy = nullptr;
};

struct FaultInjectorOptions {
  // Observability sinks (src/obs/). Null `metrics` -> private registry; null
  // `trace` -> fault events leave no spans; null `flight` -> inject/heal pairs
  // leave no black-box records.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  obs::FlightRecorder* flight = nullptr;
};

// Snapshot view over the injector's `ofc.fault.*` registry counters.
struct FaultStats {
  std::uint64_t injected = 0;  // Faults fired.
  std::uint64_t healed = 0;    // Heal events fired.
};

class FaultInjector {
 public:
  FaultInjector(sim::EventLoop* loop, FaultInjectorTargets targets,
                FaultInjectorOptions options = {});

  // Validates the plan against the wired targets and schedules every event.
  // Rejects (without scheduling anything) when an event addresses a component
  // that is not wired or a target index out of range.
  Status Schedule(const FaultPlan& plan);

  // Fires one event immediately (tests drive precise interleavings with this).
  void Fire(const FaultEvent& event);

  FaultStats stats() const;
  obs::MetricsRegistry& metrics() { return *metrics_; }

 private:
  void Heal(const FaultEvent& event, std::uint64_t fault_id);
  void TraceFault(const FaultEvent& event, const char* phase);
  bool FlightOn() const { return flight_ != nullptr && flight_->enabled(); }

  sim::EventLoop* loop_;
  FaultInjectorTargets targets_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // When none injected.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  // Monotonic id shared by an inject record and its heal record, so the flight
  // recorder's ChainFor() groups the pair as one causal fault window.
  std::uint64_t next_fault_id_ = 1;
  // Overlap depths for store-wide conditions (see header comment).
  int outage_depth_ = 0;
  int brownout_depth_ = 0;
  int webhook_drop_depth_ = 0;
  // Per-target overlap depths for crash windows (machine crashes share both:
  // the invoker and its collocated storage server). Ordered so no path ever
  // depends on hash iteration order.
  std::map<int, int> worker_crash_depth_;
  std::map<int, int> node_crash_depth_;
  obs::Counter* injected_ = nullptr;
  obs::Counter* healed_ = nullptr;
  obs::Gauge* active_ = nullptr;
};

}  // namespace ofc::fault

#endif  // OFC_FAULT_FAULT_INJECTOR_H_
