// FaultPlan: a declarative, serializable schedule of faults to inject.
//
// A plan is a list of `{at, kind, target, duration, severity}` entries that the
// FaultInjector replays on the event loop. Plans are data, not code: they load
// from JSON (`ofc-sim --fault-plan=plan.json`), round-trip back to JSON, and
// can be synthesized deterministically from a seed (RandomFaultPlan), which is
// how the chaos test suite generates randomized-but-replayable schedules.
//
// JSON schema (times in milliseconds of simulated time):
//   {"events": [
//     {"at_ms": 30000, "kind": "node_crash", "target": 1, "duration_ms": 60000},
//     {"at_ms": 45000, "kind": "store_brownout", "duration_ms": 20000,
//      "severity": 4.0}
//   ]}
#ifndef OFC_FAULT_FAULT_PLAN_H_
#define OFC_FAULT_FAULT_PLAN_H_

#include <string>
#include <string_view>
#include <vector>

#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"

namespace ofc::fault {

enum class FaultKind {
  kWorkerCrash,    // Platform::CrashWorker; heal = RestoreWorker.
  kNodeCrash,      // Cluster::CrashNode; heal = RestartNode.
  kMachineCrash,   // Co-located worker + RAMCloud node fail together (OFC
                   // collocates a storage server with every invoker, §6.1).
  kStoreOutage,    // RSDS rejects every op with kUnavailable.
  kStoreBrownout,  // RSDS latencies inflated by `severity`.
  kPersistorDrop,  // Persistor dispatches are lost for `duration`.
  kWebhookDrop,    // External ops bypass the consistency webhooks.
  kCacheDegraded,  // Proxy cache-path ops fail for `duration` (breaker trips).
  // Data-corruption kinds: instantaneous (duration must be 0 — damage persists
  // until a read self-heals it or the scrubber repairs it, not until a heal
  // event). `severity` carries the integral flip count (>= 1).
  kCorruptReplica,  // Cluster::CorruptReplica: rot backup copies on `target`.
  kCorruptSegment,  // Cluster::CorruptSegment: rot master copies on `target`.
  kStoreRot,        // ObjectStore::Rot: rot RSDS objects (no target).
};

std::string_view FaultKindName(FaultKind kind);
Result<FaultKind> FaultKindFromName(std::string_view name);

struct FaultEvent {
  SimTime at = 0;            // Absolute simulated injection time.
  FaultKind kind = FaultKind::kWorkerCrash;
  int target = -1;           // Worker/node index; ignored by store-wide kinds.
  SimDuration duration = 0;  // 0 = permanent (no heal scheduled).
  double severity = 2.0;     // Brownout latency multiplier; ignored otherwise.

  bool operator==(const FaultEvent&) const = default;
};

struct FaultPlan {
  std::vector<FaultEvent> events;

  bool empty() const { return events.empty(); }
  std::size_t size() const { return events.size(); }

  // Orders events by (at, kind, target) — the injector requires a
  // deterministic firing order for equal timestamps.
  void Sort();

  // Structural checks: non-negative times/durations, targets within range for
  // the kinds that address a worker or node, severity >= 1 for brownouts.
  Status Validate(int num_workers, int num_nodes) const;
};

// Parses the JSON schema above. Unknown keys are rejected (a typo silently
// ignored would make a chaos scenario vacuous).
Result<FaultPlan> ParseFaultPlanJson(const std::string& json);

// Round-trip serialization (ParseFaultPlanJson(FaultPlanToJson(p)) == p up to
// millisecond truncation; plans authored in whole milliseconds are exact).
std::string FaultPlanToJson(const FaultPlan& plan);

// Deterministic random plan synthesis for the chaos harness: `rng` fully
// determines the schedule.
struct ChaosPlanOptions {
  SimTime start = Seconds(30);     // Warm-up before the first fault.
  SimTime horizon = Minutes(5);    // Faults fire in [start, horizon).
  int num_events = 6;
  int num_workers = 2;
  int num_nodes = 2;
  SimDuration min_duration = Seconds(5);
  SimDuration max_duration = Seconds(45);
  bool include_worker_crashes = true;
  bool include_node_crashes = true;
  bool include_store_faults = true;
  bool include_persistor_faults = true;
  // Default off: adding a kind to the pool would reshuffle every existing
  // seeded random plan. Overload scenarios opt in explicitly.
  bool include_cache_faults = false;
  // Default off for the same reshuffle reason: corruption kinds join the pool
  // only when a scenario opts in (integrity/scrub chaos runs).
  bool include_corruption_faults = false;
};
FaultPlan RandomFaultPlan(const ChaosPlanOptions& options, Rng* rng);

}  // namespace ofc::fault

#endif  // OFC_FAULT_FAULT_PLAN_H_
