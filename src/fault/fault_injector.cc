#include "src/fault/fault_injector.h"

#include <string>

#include "src/common/logging.h"

namespace ofc::fault {

FaultInjector::FaultInjector(sim::EventLoop* loop, FaultInjectorTargets targets,
                             FaultInjectorOptions options)
    : loop_(loop), targets_(targets) {
  metrics_ = options.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  trace_ = options.trace;
  flight_ = options.flight;
  injected_ = metrics_->GetCounter("ofc.fault.injected");
  healed_ = metrics_->GetCounter("ofc.fault.healed");
  active_ = metrics_->GetGauge("ofc.fault.active");
  if (trace_ != nullptr) {
    trace_->SetProcessName(obs::kPidFaults, "fault-injector");
  }
}

FaultStats FaultInjector::stats() const {
  FaultStats stats;
  stats.injected = injected_->value();
  stats.healed = healed_->value();
  return stats;
}

Status FaultInjector::Schedule(const FaultPlan& plan) {
  const int num_workers = targets_.platform != nullptr ? targets_.platform->num_workers() : 0;
  const int num_nodes = targets_.cluster != nullptr ? targets_.cluster->num_nodes() : 0;
  OFC_RETURN_IF_ERROR(plan.Validate(num_workers, num_nodes));
  for (const FaultEvent& event : plan.events) {
    switch (event.kind) {
      case FaultKind::kWorkerCrash:
        if (targets_.platform == nullptr) {
          return FailedPreconditionError("plan crashes a worker but no platform is wired");
        }
        break;
      case FaultKind::kNodeCrash:
        if (targets_.cluster == nullptr) {
          return FailedPreconditionError("plan crashes a node but no cluster is wired");
        }
        break;
      case FaultKind::kMachineCrash:
        if (targets_.platform == nullptr || targets_.cluster == nullptr) {
          return FailedPreconditionError(
              "plan crashes a machine but platform/cluster are not both wired");
        }
        break;
      case FaultKind::kStoreOutage:
      case FaultKind::kStoreBrownout:
      case FaultKind::kWebhookDrop:
        if (targets_.rsds == nullptr) {
          return FailedPreconditionError("plan perturbs the store but no RSDS is wired");
        }
        break;
      case FaultKind::kPersistorDrop:
        if (targets_.proxy == nullptr) {
          return FailedPreconditionError("plan drops persistors but no proxy is wired");
        }
        break;
      case FaultKind::kCacheDegraded:
        if (targets_.proxy == nullptr) {
          return FailedPreconditionError("plan degrades the cache but no proxy is wired");
        }
        break;
      case FaultKind::kCorruptReplica:
      case FaultKind::kCorruptSegment:
        if (targets_.cluster == nullptr) {
          return FailedPreconditionError(
              "plan corrupts cache copies but no cluster is wired");
        }
        break;
      case FaultKind::kStoreRot:
        if (targets_.rsds == nullptr) {
          return FailedPreconditionError("plan rots the store but no RSDS is wired");
        }
        break;
    }
  }
  for (const FaultEvent& event : plan.events) {
    loop_->ScheduleAt(event.at, [this, event] { Fire(event); });
  }
  return OkStatus();
}

void FaultInjector::TraceFault(const FaultEvent& event, const char* phase) {
  if (trace_ == nullptr || !trace_->enabled()) {
    return;
  }
  trace_->Instant(std::string(FaultKindName(event.kind)) + ":" + phase, "fault",
                  loop_->now(), obs::kPidFaults, /*tid=*/0,
                  {{"target", std::to_string(event.target)}});
}

void FaultInjector::Fire(const FaultEvent& event) {
  const std::uint64_t fault_id = next_fault_id_++;
  ++*injected_;
  metrics_->GetCounter("ofc.fault.injected_by_kind",
                       std::string(FaultKindName(event.kind)))
      ->Add(1);
  active_->Add(1.0);
  TraceFault(event, "inject");
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kFaultInject, 0, fault_id,
                    event.target, std::string(FaultKindName(event.kind)));
  }
  switch (event.kind) {
    case FaultKind::kWorkerCrash:
      if (++worker_crash_depth_[event.target] == 1) {
        targets_.platform->CrashWorker(event.target);
      }
      break;
    case FaultKind::kNodeCrash:
      if (++node_crash_depth_[event.target] == 1) {
        (void)targets_.cluster->CrashNode(event.target);
      }
      break;
    case FaultKind::kMachineCrash:
      // Invoker first (in-flight work re-dispatches), then its storage server.
      if (++worker_crash_depth_[event.target] == 1) {
        targets_.platform->CrashWorker(event.target);
      }
      if (++node_crash_depth_[event.target] == 1) {
        (void)targets_.cluster->CrashNode(event.target);
      }
      break;
    case FaultKind::kStoreOutage:
      ++outage_depth_;
      targets_.rsds->SetAvailable(false);
      break;
    case FaultKind::kStoreBrownout:
      ++brownout_depth_;
      targets_.rsds->SetLatencyFactor(event.severity);
      break;
    case FaultKind::kPersistorDrop:
      targets_.proxy->InjectPersistorDropUntil(loop_->now() + event.duration);
      break;
    case FaultKind::kCacheDegraded:
      targets_.proxy->InjectCacheFaultUntil(loop_->now() + event.duration);
      break;
    case FaultKind::kWebhookDrop:
      ++webhook_drop_depth_;
      targets_.rsds->SetWebhooksEnabled(false);
      break;
    case FaultKind::kCorruptReplica:
      metrics_->GetCounter("ofc.fault.objects_corrupted")
          ->Add(static_cast<std::uint64_t>(targets_.cluster->CorruptReplica(
              event.target, static_cast<int>(event.severity))));
      break;
    case FaultKind::kCorruptSegment:
      metrics_->GetCounter("ofc.fault.objects_corrupted")
          ->Add(static_cast<std::uint64_t>(targets_.cluster->CorruptSegment(
              event.target, static_cast<int>(event.severity))));
      break;
    case FaultKind::kStoreRot:
      metrics_->GetCounter("ofc.fault.objects_corrupted")
          ->Add(static_cast<std::uint64_t>(
              targets_.rsds->Rot(static_cast<int>(event.severity))));
      break;
  }
  if (event.kind == FaultKind::kCorruptReplica ||
      event.kind == FaultKind::kCorruptSegment || event.kind == FaultKind::kStoreRot) {
    // Corruption fires and completes in the same instant — the damage outlives
    // the event, but there is no open window for `ofc.fault.active` to track.
    active_->Add(-1.0);
  }
  if (event.duration > 0) {
    loop_->ScheduleAfter(event.duration, [this, event, fault_id] { Heal(event, fault_id); });
  }
}

void FaultInjector::Heal(const FaultEvent& event, std::uint64_t fault_id) {
  ++*healed_;
  active_->Add(-1.0);
  TraceFault(event, "heal");
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kFaultHeal, 0, fault_id,
                    event.target, std::string(FaultKindName(event.kind)));
  }
  switch (event.kind) {
    case FaultKind::kWorkerCrash:
      if (--worker_crash_depth_[event.target] == 0) {
        targets_.platform->RestoreWorker(event.target);
      }
      break;
    case FaultKind::kNodeCrash:
      if (--node_crash_depth_[event.target] == 0) {
        targets_.cluster->RestartNode(event.target);
      }
      break;
    case FaultKind::kMachineCrash:
      if (--node_crash_depth_[event.target] == 0) {
        targets_.cluster->RestartNode(event.target);
      }
      if (--worker_crash_depth_[event.target] == 0) {
        targets_.platform->RestoreWorker(event.target);
      }
      break;
    case FaultKind::kStoreOutage:
      if (--outage_depth_ == 0) {
        targets_.rsds->SetAvailable(true);
      }
      break;
    case FaultKind::kStoreBrownout:
      if (--brownout_depth_ == 0) {
        targets_.rsds->SetLatencyFactor(1.0);
      }
      break;
    case FaultKind::kPersistorDrop:
    case FaultKind::kCacheDegraded:
      break;  // The window expires on its own.
    case FaultKind::kWebhookDrop:
      if (--webhook_drop_depth_ == 0) {
        targets_.rsds->SetWebhooksEnabled(true);
      }
      break;
    case FaultKind::kCorruptReplica:
    case FaultKind::kCorruptSegment:
    case FaultKind::kStoreRot:
      // Unreachable: Validate rejects corruption events with a duration, so no
      // heal is ever scheduled — repair belongs to scrub/self-healing reads.
      break;
  }
}

}  // namespace ofc::fault
