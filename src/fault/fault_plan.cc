#include "src/fault/fault_plan.h"

#include <algorithm>
#include <cctype>
#include <cstdlib>
#include <sstream>

namespace ofc::fault {

namespace {

struct KindNamePair {
  FaultKind kind;
  std::string_view name;
};

constexpr KindNamePair kKindNames[] = {
    {FaultKind::kWorkerCrash, "worker_crash"},
    {FaultKind::kNodeCrash, "node_crash"},
    {FaultKind::kMachineCrash, "machine_crash"},
    {FaultKind::kStoreOutage, "store_outage"},
    {FaultKind::kStoreBrownout, "store_brownout"},
    {FaultKind::kPersistorDrop, "persistor_drop"},
    {FaultKind::kWebhookDrop, "webhook_drop"},
    {FaultKind::kCacheDegraded, "cache_degraded"},
    {FaultKind::kCorruptReplica, "corrupt_replica"},
    {FaultKind::kCorruptSegment, "corrupt_segment"},
    {FaultKind::kStoreRot, "store_rot"},
};

// Minimal recursive-descent parser for the fault-plan JSON subset: objects,
// arrays, strings (no escapes beyond \" and \\), and numbers. The repo bakes in
// no JSON dependency, and the schema is small enough that a scanner beats one.
class JsonCursor {
 public:
  explicit JsonCursor(const std::string& text) : text_(text) {}

  void SkipSpace() {
    while (pos_ < text_.size() &&
           std::isspace(static_cast<unsigned char>(text_[pos_])) != 0) {
      ++pos_;
    }
  }

  bool Consume(char c) {
    SkipSpace();
    if (pos_ < text_.size() && text_[pos_] == c) {
      ++pos_;
      return true;
    }
    return false;
  }

  bool Peek(char c) {
    SkipSpace();
    return pos_ < text_.size() && text_[pos_] == c;
  }

  bool AtEnd() {
    SkipSpace();
    return pos_ >= text_.size();
  }

  Result<std::string> ParseString() {
    if (!Consume('"')) {
      return Error("expected string");
    }
    std::string out;
    while (pos_ < text_.size() && text_[pos_] != '"') {
      char c = text_[pos_++];
      if (c == '\\' && pos_ < text_.size()) {
        c = text_[pos_++];
      }
      out.push_back(c);
    }
    if (pos_ >= text_.size()) {
      return Error("unterminated string");
    }
    ++pos_;  // Closing quote.
    return out;
  }

  Result<double> ParseNumber() {
    SkipSpace();
    const char* begin = text_.c_str() + pos_;
    char* end = nullptr;
    const double value = std::strtod(begin, &end);
    if (end == begin) {
      return Error("expected number");
    }
    pos_ += static_cast<std::size_t>(end - begin);
    return value;
  }

  Status Error(const std::string& message) const {
    return InvalidArgumentError("fault plan JSON: " + message + " at offset " +
                                std::to_string(pos_));
  }

 private:
  const std::string& text_;
  std::size_t pos_ = 0;
};

Result<FaultEvent> ParseEvent(JsonCursor* cur) {
  if (!cur->Consume('{')) {
    return cur->Error("expected event object");
  }
  FaultEvent event;
  bool have_at = false;
  bool have_kind = false;
  bool first = true;
  while (!cur->Peek('}')) {
    if (!first && !cur->Consume(',')) {
      return cur->Error("expected ',' between event fields");
    }
    first = false;
    auto key = cur->ParseString();
    if (!key.ok()) {
      return key.status();
    }
    if (!cur->Consume(':')) {
      return cur->Error("expected ':' after key \"" + *key + "\"");
    }
    if (*key == "kind") {
      auto name = cur->ParseString();
      if (!name.ok()) {
        return name.status();
      }
      auto kind = FaultKindFromName(*name);
      if (!kind.ok()) {
        return kind.status();
      }
      event.kind = *kind;
      have_kind = true;
      continue;
    }
    auto number = cur->ParseNumber();
    if (!number.ok()) {
      return number.status();
    }
    if (*key == "at_ms") {
      event.at = static_cast<SimTime>(*number * 1000.0);
      have_at = true;
    } else if (*key == "target") {
      event.target = static_cast<int>(*number);
    } else if (*key == "duration_ms") {
      event.duration = static_cast<SimDuration>(*number * 1000.0);
    } else if (*key == "severity") {
      event.severity = *number;
    } else {
      return cur->Error("unknown event key \"" + *key + "\"");
    }
  }
  (void)cur->Consume('}');
  if (!have_at || !have_kind) {
    return cur->Error("event requires \"at_ms\" and \"kind\"");
  }
  return event;
}

}  // namespace

std::string_view FaultKindName(FaultKind kind) {
  for (const KindNamePair& pair : kKindNames) {
    if (pair.kind == kind) {
      return pair.name;
    }
  }
  return "unknown";
}

Result<FaultKind> FaultKindFromName(std::string_view name) {
  for (const KindNamePair& pair : kKindNames) {
    if (pair.name == name) {
      return pair.kind;
    }
  }
  return InvalidArgumentError("unknown fault kind: " + std::string(name));
}

void FaultPlan::Sort() {
  std::stable_sort(events.begin(), events.end(),
                   [](const FaultEvent& a, const FaultEvent& b) {
                     if (a.at != b.at) {
                       return a.at < b.at;
                     }
                     if (a.kind != b.kind) {
                       return static_cast<int>(a.kind) < static_cast<int>(b.kind);
                     }
                     return a.target < b.target;
                   });
}

Status FaultPlan::Validate(int num_workers, int num_nodes) const {
  for (std::size_t i = 0; i < events.size(); ++i) {
    const FaultEvent& event = events[i];
    const std::string at_event = " (event " + std::to_string(i) + ")";
    if (event.at < 0 || event.duration < 0) {
      return InvalidArgumentError("negative time or duration" + at_event);
    }
    switch (event.kind) {
      case FaultKind::kWorkerCrash:
        if (event.target < 0 || event.target >= num_workers) {
          return InvalidArgumentError("worker target out of range" + at_event);
        }
        break;
      case FaultKind::kNodeCrash:
        if (event.target < 0 || event.target >= num_nodes) {
          return InvalidArgumentError("node target out of range" + at_event);
        }
        break;
      case FaultKind::kMachineCrash:
        if (event.target < 0 || event.target >= num_workers ||
            event.target >= num_nodes) {
          return InvalidArgumentError("machine target out of range" + at_event);
        }
        break;
      case FaultKind::kStoreBrownout:
        if (event.severity < 1.0) {
          return InvalidArgumentError("brownout severity must be >= 1.0" + at_event);
        }
        break;
      case FaultKind::kPersistorDrop:
      case FaultKind::kWebhookDrop:
      case FaultKind::kCacheDegraded:
        if (event.duration <= 0) {
          return InvalidArgumentError("drop faults require a positive duration" +
                                      at_event);
        }
        break;
      case FaultKind::kStoreOutage:
        break;
      case FaultKind::kCorruptReplica:
      case FaultKind::kCorruptSegment:
        if (event.target < 0 || event.target >= num_nodes) {
          return InvalidArgumentError("corruption node target out of range" + at_event);
        }
        [[fallthrough]];
      case FaultKind::kStoreRot:
        if (event.severity < 1.0) {
          return InvalidArgumentError("corruption flip count must be >= 1" + at_event);
        }
        if (event.duration != 0) {
          // Corruption is instantaneous damage: scrub/self-healing repairs it,
          // not a scheduled heal. A duration here means the plan author expects
          // an un-corrupt event that will never come.
          return InvalidArgumentError("corruption events must have duration 0" +
                                      at_event);
        }
        break;
    }
  }
  return OkStatus();
}

Result<FaultPlan> ParseFaultPlanJson(const std::string& json) {
  JsonCursor cur(json);
  if (!cur.Consume('{')) {
    return cur.Error("expected top-level object");
  }
  auto key = cur.ParseString();
  if (!key.ok()) {
    return key.status();
  }
  if (*key != "events" || !cur.Consume(':')) {
    return cur.Error("expected \"events\": [...]");
  }
  if (!cur.Consume('[')) {
    return cur.Error("expected event array");
  }
  FaultPlan plan;
  bool first = true;
  while (!cur.Peek(']')) {
    if (!first && !cur.Consume(',')) {
      return cur.Error("expected ',' between events");
    }
    first = false;
    auto event = ParseEvent(&cur);
    if (!event.ok()) {
      return event.status();
    }
    plan.events.push_back(*event);
  }
  (void)cur.Consume(']');
  if (!cur.Consume('}')) {
    return cur.Error("expected closing '}'");
  }
  if (!cur.AtEnd()) {
    return cur.Error("trailing content after plan");
  }
  plan.Sort();
  return plan;
}

std::string FaultPlanToJson(const FaultPlan& plan) {
  std::ostringstream out;
  out << "{\"events\": [";
  for (std::size_t i = 0; i < plan.events.size(); ++i) {
    const FaultEvent& event = plan.events[i];
    if (i > 0) {
      out << ", ";
    }
    out << "{\"at_ms\": " << event.at / 1000 << ", \"kind\": \""
        << FaultKindName(event.kind) << "\"";
    if (event.target >= 0) {
      out << ", \"target\": " << event.target;
    }
    if (event.duration > 0) {
      out << ", \"duration_ms\": " << event.duration / 1000;
    }
    if (event.kind == FaultKind::kStoreBrownout ||
        event.kind == FaultKind::kCorruptReplica ||
        event.kind == FaultKind::kCorruptSegment ||
        event.kind == FaultKind::kStoreRot) {
      out << ", \"severity\": " << event.severity;
    }
    out << "}";
  }
  out << "]}";
  return out.str();
}

FaultPlan RandomFaultPlan(const ChaosPlanOptions& options, Rng* rng) {
  std::vector<FaultKind> kinds;
  if (options.include_worker_crashes && options.num_workers > 0) {
    kinds.push_back(FaultKind::kWorkerCrash);
  }
  if (options.include_node_crashes && options.num_nodes > 0) {
    kinds.push_back(FaultKind::kNodeCrash);
    if (options.num_workers > 0) {
      kinds.push_back(FaultKind::kMachineCrash);
    }
  }
  if (options.include_store_faults) {
    kinds.push_back(FaultKind::kStoreOutage);
    kinds.push_back(FaultKind::kStoreBrownout);
    kinds.push_back(FaultKind::kWebhookDrop);
  }
  if (options.include_persistor_faults) {
    kinds.push_back(FaultKind::kPersistorDrop);
  }
  if (options.include_cache_faults) {
    kinds.push_back(FaultKind::kCacheDegraded);
  }
  if (options.include_corruption_faults) {
    if (options.num_nodes > 0) {
      kinds.push_back(FaultKind::kCorruptReplica);
      kinds.push_back(FaultKind::kCorruptSegment);
    }
    kinds.push_back(FaultKind::kStoreRot);
  }

  FaultPlan plan;
  if (kinds.empty() || options.horizon <= options.start) {
    return plan;
  }
  for (int i = 0; i < options.num_events; ++i) {
    FaultEvent event;
    event.at = rng->UniformInt(options.start, options.horizon - 1);
    event.kind = kinds[rng->Index(kinds.size())];
    event.duration = rng->UniformInt(options.min_duration, options.max_duration);
    switch (event.kind) {
      case FaultKind::kWorkerCrash:
        event.target = static_cast<int>(rng->UniformInt(0, options.num_workers - 1));
        break;
      case FaultKind::kNodeCrash:
        event.target = static_cast<int>(rng->UniformInt(0, options.num_nodes - 1));
        break;
      case FaultKind::kMachineCrash:
        event.target = static_cast<int>(rng->UniformInt(
            0, std::min(options.num_workers, options.num_nodes) - 1));
        break;
      case FaultKind::kStoreBrownout:
        // Discrete severities keep the plan exactly serializable.
        event.severity = static_cast<double>(1 << rng->UniformInt(1, 3));
        break;
      case FaultKind::kStoreOutage:
      case FaultKind::kPersistorDrop:
      case FaultKind::kWebhookDrop:
      case FaultKind::kCacheDegraded:
        break;
      case FaultKind::kCorruptReplica:
      case FaultKind::kCorruptSegment:
        event.target = static_cast<int>(rng->UniformInt(0, options.num_nodes - 1));
        [[fallthrough]];
      case FaultKind::kStoreRot:
        // Integral flip count rides in `severity`; duration must be 0
        // (corruption persists until scrub/self-healing, not a heal event).
        event.duration = 0;
        event.severity = static_cast<double>(rng->UniformInt(1, 4));
        break;
    }
    plan.events.push_back(event);
  }
  plan.Sort();
  return plan;
}

}  // namespace ofc::fault
