#include "src/core/scrubber.h"

#include <algorithm>
#include <vector>

namespace ofc::core {

Scrubber::Scrubber(sim::EventLoop* loop, rc::Cluster* cluster, store::ObjectStore* rsds,
                   ScrubberOptions options)
    : loop_(loop), cluster_(cluster), rsds_(rsds), options_(options) {
  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  cycles_ = metrics_->GetCounter("ofc.scrub.cycles");
  objects_scanned_ = metrics_->GetCounter("ofc.scrub.objects_scanned");
  corruptions_found_ = metrics_->GetCounter("ofc.scrub.corruptions_found");
  repairs_ = metrics_->GetCounter("ofc.scrub.repairs");
  quarantines_ = metrics_->GetCounter("ofc.scrub.quarantines");
  task_ = std::make_unique<sim::PeriodicTask>(loop_, options_.interval,
                                              [this](SimTime) { Tick(); });
}

void Scrubber::Start() { task_->Start(); }

void Scrubber::Stop() { task_->Stop(); }

ScrubberStats Scrubber::stats() const {
  ScrubberStats stats;
  stats.cycles = cycles_->value();
  stats.objects_scanned = objects_scanned_->value();
  stats.corruptions_found = corruptions_found_->value();
  stats.repairs = repairs_->value();
  stats.quarantines = quarantines_->value();
  return stats;
}

void Scrubber::Tick() {
  ScrubClusterSlice();
  if (options_.scrub_store && rsds_ != nullptr) {
    ScrubStoreSlice();
  }
}

void Scrubber::ScrubClusterSlice() {
  const std::size_t budget = options_.objects_per_cycle <= 0
                                 ? 0
                                 : static_cast<std::size_t>(options_.objects_per_cycle);
  const std::vector<std::string> keys = cluster_->KeysAfter(cluster_cursor_, budget);
  for (const std::string& key : keys) {
    ++*objects_scanned_;
    NoteCorruptCopies(cluster_->ScrubObject(key));
    cluster_cursor_ = key;
  }
  if (keys.size() < budget || budget == 0) {
    // Reached the end of the keyspace: one full pass done, wrap around.
    ++*cycles_;
    cluster_cursor_.clear();
  }
}

void Scrubber::ScrubStoreSlice() {
  // The store exposes no cursor API; slice its sorted key listing the same
  // way. O(N) per tick, fine at simulation scale.
  const std::vector<std::string> keys = rsds_->Keys();
  auto it = std::upper_bound(keys.begin(), keys.end(), store_cursor_);
  int scanned = 0;
  for (; it != keys.end() && scanned < options_.objects_per_cycle; ++it, ++scanned) {
    ++*objects_scanned_;
    const int repaired = rsds_->ScrubKey(*it);
    corruptions_found_->Add(static_cast<std::uint64_t>(repaired));
    repairs_->Add(static_cast<std::uint64_t>(repaired));
    store_cursor_ = *it;
  }
  if (it == keys.end()) {
    store_cursor_.clear();
  }
}

void Scrubber::NoteCorruptCopies(const rc::Cluster::ScrubResult& result) {
  corruptions_found_->Add(static_cast<std::uint64_t>(result.corrupt_copies));
  repairs_->Add(static_cast<std::uint64_t>(result.corrupt_copies));
  if (options_.quarantine_threshold <= 0) {
    return;
  }
  for (const int node : result.corrupt_nodes) {
    ++node_corruption_[node];
  }
  for (const int node : result.corrupt_nodes) {
    if (node_corruption_[node] < options_.quarantine_threshold) {
      continue;
    }
    if (cluster_->AliveNodes() <= 1) {
      // Never drain the last node: a corrupt-prone cache still beats no cache,
      // and every copy it holds keeps getting repaired each pass.
      continue;
    }
    (void)cluster_->QuarantineNode(node);
    ++*quarantines_;
    node_corruption_[node] = 0;  // Fresh ledger if the node ever rejoins.
  }
}

}  // namespace ofc::core
