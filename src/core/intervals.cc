#include "src/core/intervals.h"

#include <algorithm>
#include <cassert>

namespace ofc::core {

MemoryIntervals::MemoryIntervals(Bytes interval_size, Bytes max_memory)
    : interval_size_(interval_size),
      max_memory_(max_memory),
      num_classes_(static_cast<int>((max_memory + interval_size - 1) / interval_size)) {
  assert(interval_size > 0);
  assert(num_classes_ >= 2);
}

int MemoryIntervals::Label(Bytes memory) const {
  if (memory < 0) {
    return 0;
  }
  const Bytes cls = memory / interval_size_;
  return static_cast<int>(std::min<Bytes>(cls, num_classes_ - 1));
}

Bytes MemoryIntervals::UpperBound(int cls) const {
  cls = std::clamp(cls, 0, num_classes_ - 1);
  return static_cast<Bytes>(cls + 1) * interval_size_;
}

Bytes MemoryIntervals::ConservativeAllocation(int cls) const {
  return UpperBound(std::min(cls + 1, num_classes_ - 1));
}

ml::Attribute MemoryIntervals::ClassAttribute() const {
  std::vector<std::string> names;
  names.reserve(static_cast<std::size_t>(num_classes_));
  for (int c = 0; c < num_classes_; ++c) {
    names.push_back("m" + std::to_string(c));
  }
  return ml::Attribute::Nominal("mem_interval", std::move(names));
}

}  // namespace ofc::core
