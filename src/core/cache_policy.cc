#include "src/core/cache_policy.h"

#include <algorithm>
#include <cmath>
#include <tuple>

namespace ofc::core {

const char* EvictionReasonName(EvictionReason reason) {
  switch (reason) {
    case EvictionReason::kPersistedDiscard:
      return "persisted_discard";
    case EvictionReason::kCapacity:
      return "capacity";
    case EvictionReason::kSweep:
      return "sweep";
  }
  return "unknown";
}

void CachePolicy::OnAdmit(const std::string&, Bytes, const std::string&, SimTime) {}
void CachePolicy::OnAccess(const std::string&, Bytes, const std::string&, SimTime) {}
void CachePolicy::OnRemove(const std::string&) {}
void CachePolicy::Prune(const std::vector<std::string>&) {}

void CachePolicy::OnEvictCandidates(std::vector<rc::CachedObject>* candidates,
                                    SimTime now) const {
  // (score, key) is a strict total order, so mixed-policy candidate lists rank
  // identically on every same-seed replay.
  std::sort(candidates->begin(), candidates->end(),
            [this, now](const rc::CachedObject& a, const rc::CachedObject& b) {
              const double sa = EvictScore(a, now);
              const double sb = EvictScore(b, now);
              return sa != sb ? sa < sb : a.key < b.key;
            });
}

namespace {

// ---- lru: the paper's policy, byte-for-byte --------------------------------------

class LruPolicy final : public CachePolicy {
 public:
  using CachePolicy::CachePolicy;
  const char* name() const override { return "lru"; }

  void OnEvictCandidates(std::vector<rc::CachedObject>* candidates,
                         SimTime) const override {
    // Exactly the pre-subsystem CacheAgent sort: ascending last_access, ties
    // left in input order. Replays of the PR 1..9 goldens depend on this.
    std::sort(candidates->begin(), candidates->end(),
              [](const rc::CachedObject& a, const rc::CachedObject& b) {
                return a.last_access < b.last_access;
              });
  }

  bool OnSweep(const rc::CachedObject& obj, SimTime now) const override {
    return obj.access_count < config_.sweep_min_access ||
           now - obj.last_access > config_.sweep_max_idle;
  }

  double EvictScore(const rc::CachedObject& obj, SimTime) const override {
    return static_cast<double>(obj.last_access);
  }
};

// ---- gdsf: GreedyDual-Size-Frequency ---------------------------------------------

class GdsfPolicy final : public CachePolicy {
 public:
  using CachePolicy::CachePolicy;
  const char* name() const override { return "gdsf"; }

  void OnAdmit(const std::string& key, Bytes size, const std::string&,
               SimTime) override {
    entries_[key] = Entry{1, clock_ + CostPerByte(size)};
  }

  void OnAccess(const std::string& key, Bytes size, const std::string&,
                SimTime) override {
    Entry& e = entries_[key];
    ++e.freq;
    e.priority = clock_ + static_cast<double>(e.freq) * CostPerByte(size);
  }

  void OnRemove(const std::string& key) override {
    auto it = entries_.find(key);
    if (it == entries_.end()) {
      return;
    }
    // The inflation clock rises to the evicted priority, so long-resident
    // objects cannot coast on stale high priorities forever.
    clock_ = std::max(clock_, it->second.priority);
    entries_.erase(it);
  }

  bool OnSweep(const rc::CachedObject& obj, SimTime now) const override {
    // Size/frequency pressure is the ranking's job; the sweep only reclaims
    // objects that are plainly idle, or never earned their keep over a full
    // period (same thresholds as the paper's sweep, idle test relaxed).
    return now - obj.last_access > config_.sweep_max_idle ||
           (obj.access_count < config_.sweep_min_access &&
            now - obj.last_access > config_.sweep_period);
  }

  double EvictScore(const rc::CachedObject& obj, SimTime) const override {
    auto it = entries_.find(obj.key);
    if (it != entries_.end()) {
      return it->second.priority;
    }
    // Untracked (admitted outside the proxy path): price it from the cluster's
    // own access count.
    return clock_ + static_cast<double>(obj.access_count) * CostPerByte(obj.size);
  }

  void Prune(const std::vector<std::string>& live_keys) override {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (std::binary_search(live_keys.begin(), live_keys.end(), it->first)) {
        ++it;
      } else {
        it = entries_.erase(it);
      }
    }
  }

 private:
  struct Entry {
    std::uint64_t freq = 0;
    double priority = 0.0;
  };

  // Reload cost (jitter-free RSDS read, microseconds) per cached byte: the
  // classic H = L + F * C / S with C priced from the store latency profile.
  double CostPerByte(Bytes size) const {
    const SimDuration cost = config_.store_profile.read.Cost(size, nullptr);
    return static_cast<double>(cost) / static_cast<double>(std::max<Bytes>(1, size));
  }

  double clock_ = 0.0;  // Inflation clock L (rises on eviction).
  std::map<std::string, Entry> entries_;
};

// ---- lfu-decay: frequency with sim-time exponential decay ------------------------

class LfuDecayPolicy final : public CachePolicy {
 public:
  using CachePolicy::CachePolicy;
  const char* name() const override { return "lfu-decay"; }

  void OnAdmit(const std::string& key, Bytes, const std::string&, SimTime now) override {
    entries_[key] = Entry{1.0, now};
  }

  void OnAccess(const std::string& key, Bytes, const std::string&, SimTime now) override {
    Entry& e = entries_[key];
    e.score = Decayed(e.score, now - e.touched) + 1.0;
    e.touched = now;
  }

  void OnRemove(const std::string& key) override { entries_.erase(key); }

  bool OnSweep(const rc::CachedObject& obj, SimTime now) const override {
    // The paper's cold test with the raw access count replaced by the decayed
    // frequency: a once-hot object decays below the threshold and is swept.
    return EvictScore(obj, now) < static_cast<double>(config_.sweep_min_access) ||
           now - obj.last_access > config_.sweep_max_idle;
  }

  double EvictScore(const rc::CachedObject& obj, SimTime now) const override {
    auto it = entries_.find(obj.key);
    if (it != entries_.end()) {
      return Decayed(it->second.score, now - it->second.touched);
    }
    return Decayed(static_cast<double>(obj.access_count), now - obj.last_access);
  }

  void Prune(const std::vector<std::string>& live_keys) override {
    for (auto it = entries_.begin(); it != entries_.end();) {
      if (std::binary_search(live_keys.begin(), live_keys.end(), it->first)) {
        ++it;
      } else {
        it = entries_.erase(it);
      }
    }
  }

 private:
  struct Entry {
    double score = 0.0;
    SimTime touched = 0;
  };

  double Decayed(double score, SimDuration age) const {
    if (config_.lfu_half_life <= 0) {
      return score;
    }
    return score * std::exp2(-static_cast<double>(age) /
                             static_cast<double>(config_.lfu_half_life));
  }

  std::map<std::string, Entry> entries_;
};

// ---- cost-aware: expected (E + L) saved per byte ---------------------------------

class CostAwarePolicy final : public CachePolicy {
 public:
  CostAwarePolicy(CachePolicyConfig config, BenefitFn benefit)
      : CachePolicy(config), benefit_(std::move(benefit)) {}
  const char* name() const override { return "cost-aware"; }

  void OnAdmit(const std::string& key, Bytes, const std::string& function,
               SimTime) override {
    key_function_[key] = function;
  }

  void OnAccess(const std::string& key, Bytes, const std::string& function,
                SimTime) override {
    key_function_[key] = function;
  }

  void OnRemove(const std::string& key) override { key_function_.erase(key); }

  bool OnSweep(const rc::CachedObject& obj, SimTime now) const override {
    // Cold when idle too long, or when the observed rate projects less than one
    // access over the next period and the raw count is below the paper's bar.
    return now - obj.last_access > config_.sweep_max_idle ||
           (AccessRate(obj, now) < 1.0 &&
            obj.access_count < config_.sweep_min_access);
  }

  double EvictScore(const rc::CachedObject& obj, SimTime now) const override {
    // Expected E+L microseconds the cache saves per byte over the next sweep
    // period: access rate times the full RSDS round trip (the read the next
    // miss would pay plus the write the §6.2 write-back path absorbed),
    // discounted by the ml_service's per-function benefit confidence.
    const SimDuration roundtrip =
        config_.store_profile.read.Cost(obj.size, nullptr) +
        config_.store_profile.write.Cost(obj.size, nullptr);
    return Confidence(obj.key) * AccessRate(obj, now) *
           static_cast<double>(roundtrip) /
           static_cast<double>(std::max<Bytes>(1, obj.size));
  }

  void Prune(const std::vector<std::string>& live_keys) override {
    for (auto it = key_function_.begin(); it != key_function_.end();) {
      if (std::binary_search(live_keys.begin(), live_keys.end(), it->first)) {
        ++it;
      } else {
        it = key_function_.erase(it);
      }
    }
  }

 private:
  // Observed accesses per sweep period since admission (>= one period assumed:
  // freshly admitted objects are shielded by the CacheAgent's residency guard).
  double AccessRate(const rc::CachedObject& obj, SimTime now) const {
    const double periods =
        std::max(1.0, static_cast<double>(now - obj.created_at) /
                          static_cast<double>(std::max<SimDuration>(1, config_.sweep_period)));
    return static_cast<double>(obj.access_count) / periods;
  }

  double Confidence(const std::string& key) const {
    if (!benefit_) {
      return 0.5;
    }
    auto it = key_function_.find(key);
    return it == key_function_.end() ? 0.5 : benefit_(it->second);
  }

  BenefitFn benefit_;
  std::map<std::string, std::string> key_function_;  // key -> owning function.
};

std::unique_ptr<CachePolicy> MakePolicy(const std::string& name,
                                        const CachePolicyConfig& config,
                                        const BenefitFn& benefit) {
  if (name == "lru") {
    return std::make_unique<LruPolicy>(config);
  }
  if (name == "gdsf") {
    return std::make_unique<GdsfPolicy>(config);
  }
  if (name == "lfu-decay") {
    return std::make_unique<LfuDecayPolicy>(config);
  }
  if (name == "cost-aware") {
    return std::make_unique<CostAwarePolicy>(config, benefit);
  }
  return nullptr;
}

bool KnownPolicy(const std::string& name) {
  return name == "lru" || name == "gdsf" || name == "lfu-decay" || name == "cost-aware";
}

}  // namespace

std::vector<std::string> KnownCachePolicies() {
  return {"cost-aware", "gdsf", "lfu-decay", "lru"};
}

Result<CachePolicySpec> ParseCachePolicySpec(const std::string& text) {
  CachePolicySpec spec;
  if (text.empty()) {
    return spec;  // Empty spec = the paper's default (lru everywhere).
  }
  std::size_t start = 0;
  bool first = true;
  while (start <= text.size()) {
    const std::size_t comma = text.find(',', start);
    const std::string part =
        text.substr(start, comma == std::string::npos ? std::string::npos : comma - start);
    start = comma == std::string::npos ? text.size() + 1 : comma + 1;
    const std::size_t eq = part.find('=');
    if (first) {
      first = false;
      if (eq != std::string::npos) {
        return InvalidArgumentError(
            "cache-policy spec must start with the default policy name, got '" + part + "'");
      }
      if (!KnownPolicy(part)) {
        return InvalidArgumentError("unknown cache policy '" + part + "'");
      }
      spec.default_policy = part;
      continue;
    }
    if (eq == std::string::npos || eq == 0 || eq + 1 >= part.size()) {
      return InvalidArgumentError(
          "per-function cache-policy override must be function=policy, got '" + part + "'");
    }
    const std::string function = part.substr(0, eq);
    const std::string policy = part.substr(eq + 1);
    if (!KnownPolicy(policy)) {
      return InvalidArgumentError("unknown cache policy '" + policy + "' for function '" +
                                  function + "'");
    }
    spec.per_function.emplace_back(function, policy);
  }
  return spec;
}

// ---- CachePolicyEngine -----------------------------------------------------------

Result<std::unique_ptr<CachePolicyEngine>> CachePolicyEngine::Create(
    const std::string& spec_text, CachePolicyEngineOptions options) {
  auto spec = ParseCachePolicySpec(spec_text);
  if (!spec.ok()) {
    return spec.status();
  }
  return std::make_unique<CachePolicyEngine>(*spec, spec_text, std::move(options));
}

CachePolicyEngine::CachePolicyEngine(CachePolicySpec spec, std::string spec_text,
                                     CachePolicyEngineOptions options)
    : spec_(spec_text.empty() ? spec.default_policy : std::move(spec_text)),
      options_(std::move(options)) {
  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  flight_ = options_.flight;

  auto ensure = [this](const std::string& name) -> CachePolicy* {
    auto it = policies_.find(name);
    if (it == policies_.end()) {
      it = policies_.emplace(name, MakePolicy(name, options_.config, options_.benefit))
               .first;
    }
    return it->second.get();
  };
  default_policy_ = ensure(spec.default_policy);
  for (const auto& [function, policy] : spec.per_function) {
    overrides_[function] = ensure(policy);  // Later spec entries win.
  }

  m_.admits = metrics_->GetCounter("ofc.policy.admits");
  m_.accesses = metrics_->GetCounter("ofc.policy.accesses");
  m_.removals = metrics_->GetCounter("ofc.policy.removals");
  m_.evictions_capacity = metrics_->GetCounter("ofc.policy.evictions", "capacity");
  m_.evictions_sweep = metrics_->GetCounter("ofc.policy.evictions", "sweep");
  m_.evictions_persisted = metrics_->GetCounter("ofc.policy.evictions", "persisted_discard");
  m_.bytes_evicted_capacity = metrics_->GetCounter("ofc.policy.bytes_evicted", "capacity");
  m_.bytes_evicted_sweep = metrics_->GetCounter("ofc.policy.bytes_evicted", "sweep");
  m_.bytes_evicted_persisted =
      metrics_->GetCounter("ofc.policy.bytes_evicted", "persisted_discard");
  m_.tracked_keys = metrics_->GetGauge("ofc.policy.tracked_keys");
  m_.selected = metrics_->GetGauge("ofc.policy.selected", default_policy_->name());
  m_.selected->Set(1.0);
}

CachePolicy* CachePolicyEngine::PolicyForFunction(const std::string& function) {
  auto it = overrides_.find(function);
  return it == overrides_.end() ? default_policy_ : it->second;
}

CachePolicy* CachePolicyEngine::PolicyForKey(const std::string& key) {
  if (single_policy()) {
    return default_policy_;
  }
  auto it = key_policy_.find(key);
  return it == key_policy_.end() ? default_policy_ : it->second;
}

void CachePolicyEngine::OnAdmit(const std::string& key, Bytes size,
                                const std::string& function, SimTime now) {
  ++*m_.admits;
  CachePolicy* policy = PolicyForFunction(function);
  if (!single_policy()) {
    key_policy_[key] = policy;
    m_.tracked_keys->Set(static_cast<double>(key_policy_.size()));
  }
  policy->OnAdmit(key, size, function, now);
}

void CachePolicyEngine::OnAccess(const std::string& key, Bytes size,
                                 const std::string& function, SimTime now) {
  ++*m_.accesses;
  CachePolicy* policy = PolicyForFunction(function);
  if (!single_policy()) {
    key_policy_[key] = policy;
    m_.tracked_keys->Set(static_cast<double>(key_policy_.size()));
  }
  policy->OnAccess(key, size, function, now);
}

void CachePolicyEngine::OnRemove(const std::string& key) {
  ++*m_.removals;
  PolicyForKey(key)->OnRemove(key);
  if (!single_policy()) {
    key_policy_.erase(key);
    m_.tracked_keys->Set(static_cast<double>(key_policy_.size()));
  }
}

void CachePolicyEngine::RankEvictionCandidates(std::vector<rc::CachedObject>* candidates,
                                               SimTime now) {
  if (single_policy()) {
    default_policy_->OnEvictCandidates(candidates, now);
    return;
  }
  // Mixed mode: one total order across policies — each object scored by its
  // own policy, ties broken by key so replays are byte-identical.
  std::sort(candidates->begin(), candidates->end(),
            [this, now](const rc::CachedObject& a, const rc::CachedObject& b) {
              const double sa = PolicyForKey(a.key)->EvictScore(a, now);
              const double sb = PolicyForKey(b.key)->EvictScore(b, now);
              return sa != sb ? sa < sb : a.key < b.key;
            });
}

bool CachePolicyEngine::SweepCold(const rc::CachedObject& obj, SimTime now) {
  return PolicyForKey(obj.key)->OnSweep(obj, now);
}

void CachePolicyEngine::NoteEviction(const rc::CachedObject& obj, EvictionReason reason,
                                     int worker, SimTime now) {
  const std::uint64_t bytes = static_cast<std::uint64_t>(std::max<Bytes>(0, obj.size));
  switch (reason) {
    case EvictionReason::kPersistedDiscard:
      ++*m_.evictions_persisted;
      m_.bytes_evicted_persisted->Add(bytes);
      break;
    case EvictionReason::kCapacity:
      ++*m_.evictions_capacity;
      m_.bytes_evicted_capacity->Add(bytes);
      break;
    case EvictionReason::kSweep:
      ++*m_.evictions_sweep;
      m_.bytes_evicted_sweep->Add(bytes);
      break;
  }
  if (FlightOn()) {
    flight_->Record(now, obs::FlightEventKind::kEvict, 0, 0, worker, obj.key,
                    EvictionReasonName(reason));
  }
  OnRemove(obj.key);
}

void CachePolicyEngine::Prune(std::vector<std::string> live_keys) {
  std::sort(live_keys.begin(), live_keys.end());
  if (!single_policy()) {
    for (auto it = key_policy_.begin(); it != key_policy_.end();) {
      if (std::binary_search(live_keys.begin(), live_keys.end(), it->first)) {
        ++it;
      } else {
        it = key_policy_.erase(it);
      }
    }
    m_.tracked_keys->Set(static_cast<double>(key_policy_.size()));
  }
  for (auto& [name, policy] : policies_) {
    policy->Prune(live_keys);
  }
}

}  // namespace ofc::core
