// Scrubber: background integrity sweep over the cache cluster and the RSDS.
//
// Corruption that no read ever touches would otherwise sit latent until the
// object is evicted or recovered through it. The scrubber closes that window:
// a PeriodicTask walks the cluster's objects (and optionally the store's) in
// incremental lexicographic slices, verifies every copy against its expected
// checksum, and repairs divergence on the spot — from a healthy replica when
// one exists, otherwise from the authoritative RSDS.
//
// Placement policy rides on top: the scrubber keeps a per-node count of
// corrupt copies it has found. A node whose count crosses
// `quarantine_threshold` is assumed to have sick memory/disk and is gracefully
// drained (Cluster::QuarantineNode): every copy it held is re-established
// verified elsewhere, and the node leaves the placement pool. Quarantine never
// fires on the last alive node — a degraded cache beats no cache.
//
// All work happens on the shared event loop in deterministic key order, so a
// scrubbed chaos run replays byte-identically.
#ifndef OFC_CORE_SCRUBBER_H_
#define OFC_CORE_SCRUBBER_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"
#include "src/sim/periodic.h"
#include "src/store/object_store.h"

namespace ofc::core {

struct ScrubberOptions {
  SimDuration interval = Seconds(10);  // Time between incremental slices.
  // Objects verified per slice (per target): bounds the work a single tick
  // injects into the loop, so scrubbing never stalls foreground traffic.
  int objects_per_cycle = 64;
  // Corrupt copies found on one node before it is quarantined. 0 disables
  // quarantining (scrub repairs but never drains).
  int quarantine_threshold = 8;
  bool scrub_store = true;  // Also sweep the RSDS's objects.
  // Observability sink; null -> private registry.
  obs::MetricsRegistry* metrics = nullptr;
};

// Snapshot view over the scrubber's `ofc.scrub.*` registry counters.
struct ScrubberStats {
  std::uint64_t cycles = 0;             // Full passes completed over the cluster.
  std::uint64_t objects_scanned = 0;    // Objects verified (cluster + store).
  std::uint64_t corruptions_found = 0;  // Corrupt copies detected.
  std::uint64_t repairs = 0;            // Corrupt copies repaired.
  std::uint64_t quarantines = 0;        // Nodes drained for crossing the threshold.
};

class Scrubber {
 public:
  // `rsds` may be null (cluster-only scrubbing regardless of scrub_store).
  Scrubber(sim::EventLoop* loop, rc::Cluster* cluster, store::ObjectStore* rsds,
           ScrubberOptions options = {});

  void Start();
  void Stop();

  ScrubberStats stats() const;
  obs::MetricsRegistry& metrics() { return *metrics_; }

 private:
  void Tick();
  void ScrubClusterSlice();
  void ScrubStoreSlice();
  // Applies one ScrubObject result to the per-node ledger; quarantines any
  // node that crossed the threshold.
  void NoteCorruptCopies(const rc::Cluster::ScrubResult& result);

  sim::EventLoop* loop_;
  rc::Cluster* cluster_;
  store::ObjectStore* rsds_;
  ScrubberOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // When none injected.
  obs::MetricsRegistry* metrics_ = nullptr;
  std::unique_ptr<sim::PeriodicTask> task_;
  // Incremental cursors: last key verified; "" = pass starts from the top.
  std::string cluster_cursor_;
  std::string store_cursor_;
  // Corrupt copies found per node since its last quarantine. Ordered so the
  // threshold check never depends on hash iteration order.
  std::map<int, int> node_corruption_;
  obs::Counter* cycles_ = nullptr;
  obs::Counter* objects_scanned_ = nullptr;
  obs::Counter* corruptions_found_ = nullptr;
  obs::Counter* repairs_ = nullptr;
  obs::Counter* quarantines_ = nullptr;
};

}  // namespace ofc::core

#endif  // OFC_CORE_SCRUBBER_H_
