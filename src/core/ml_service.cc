#include "src/core/ml_service.h"

#include "src/workloads/media.h"

namespace ofc::core {

FunctionModel& ModelRegistry::GetOrCreate(const workloads::FunctionSpec& spec) {
  auto it = models_.find(spec.name);
  if (it == models_.end()) {
    it = models_
             .emplace(spec.name, std::make_unique<FunctionModel>(
                                     spec.name, workloads::FeatureAttributes(spec), config_))
             .first;
  }
  return *it->second;
}

FunctionModel* ModelRegistry::Find(const std::string& function) {
  auto it = models_.find(function);
  return it == models_.end() ? nullptr : it->second.get();
}

const FunctionModel* ModelRegistry::Find(const std::string& function) const {
  auto it = models_.find(function);
  return it == models_.end() ? nullptr : it->second.get();
}

double ModelRegistry::CachingBenefitConfidence(const std::string& function) const {
  const FunctionModel* model = Find(function);
  if (model == nullptr || !model->mature()) {
    return 0.5;
  }
  return model->BenefitConfidence();
}

std::vector<const FunctionModel*> ModelRegistry::AllModels() const {
  std::vector<const FunctionModel*> out;
  out.reserve(models_.size());
  for (const auto& [name, model] : models_) {
    out.push_back(model.get());
  }
  return out;
}

Prediction Predictor::Predict(const workloads::FunctionSpec& spec,
                              const workloads::MediaDescriptor& media,
                              const std::vector<double>& args, Bytes booked) {
  Prediction prediction;
  prediction.memory = booked;
  FunctionModel& model = registry_->GetOrCreate(spec);
  const auto fallback = [this, &prediction] {
    if (booked_fallbacks_ != nullptr) {
      ++*booked_fallbacks_;
    }
    return prediction;
  };
  if (!model.mature()) {
    return fallback();
  }
  const std::vector<double> features = workloads::ExtractFeatures(spec, media, args);
  const std::optional<int> cls = model.PredictClass(features);
  if (!cls.has_value()) {
    return fallback();
  }
  const MemoryIntervals& intervals = registry_->config().intervals;
  prediction.memory = registry_->config().conservative_bump
                          ? intervals.ConservativeAllocation(*cls)
                          : intervals.UpperBound(*cls);
  prediction.from_model = true;
  prediction.should_cache = model.PredictBenefit(features).value_or(false);
  if (model_predictions_ != nullptr) {
    ++*model_predictions_;
  }
  return prediction;
}

void ModelTrainer::RecordInvocation(const workloads::FunctionSpec& spec,
                                    const workloads::MediaDescriptor& media,
                                    const std::vector<double>& args, Bytes actual_memory,
                                    SimDuration compute_time, Bytes input_bytes,
                                    Bytes output_bytes) {
  FunctionModel& model = registry_->GetOrCreate(spec);
  const std::vector<double> features = workloads::ExtractFeatures(spec, media, args);
  // Estimate the E and L phases against the RSDS (jitter-free expectation);
  // caching is beneficial when they would dominate (§5.2).
  const SimDuration e_est = rsds_estimate_.read.Cost(input_bytes);
  const SimDuration l_est = rsds_estimate_.write.Cost(output_bytes);
  const double total = static_cast<double>(e_est + compute_time + l_est);
  const bool benefit = total > 0 && static_cast<double>(e_est + l_est) / total > 0.5;
  const bool was_mature = model.mature();
  model.Learn(features, actual_memory, benefit);
  if (samples_ != nullptr) {
    ++*samples_;
    if (!was_mature && model.mature()) {
      ++*models_matured_;
    }
  }
}

void ModelTrainer::Pretrain(const workloads::FunctionSpec& spec, int invocations, Rng& rng) {
  workloads::MediaGenerator generator(rng.Fork());
  for (int i = 0; i < invocations; ++i) {
    const workloads::MediaDescriptor media = generator.Generate(spec.kind);
    const std::vector<double> args = workloads::SampleArgs(spec, rng);
    const workloads::InvocationDemand demand =
        workloads::ComputeDemand(spec, media, args, &rng);
    RecordInvocation(spec, media, args, demand.memory, demand.compute, media.byte_size,
                     demand.output_size);
  }
}

}  // namespace ofc::core
