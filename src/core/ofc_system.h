// OfcSystem: the top-level OFC assembly (Figure 4).
//
// Owns the color-filled boxes the paper adds to OpenWhisk — Predictor,
// ModelTrainer, CacheAgent, Proxy — wired against the RAMCloud cluster and the
// RSDS, and implements the platform hooks:
//
//   * SizeInvocation   = Predictor + Sizer (per-invocation M_p, shouldBeCached);
//   * PickSandbox / PickWorkerForNewSandbox = the §6.5 locality-aware routing;
//   * OnSandboxMemoryChange = CacheAgent hoarding (vertical scaling, §6.4);
//   * TryRaiseMemory   = Monitor rescue of under-predicted sandboxes (§5.3.1);
//   * OnInvocationComplete = Monitor -> ModelTrainer feedback loop.
#ifndef OFC_CORE_OFC_SYSTEM_H_
#define OFC_CORE_OFC_SYSTEM_H_

#include <memory>
#include <string>
#include <vector>

#include "src/core/cache_agent.h"
#include "src/core/ml_service.h"
#include "src/core/proxy.h"
#include "src/faas/metadata_store.h"
#include "src/faas/platform.h"
#include "src/ramcloud/cluster.h"
#include "src/store/object_store.h"

namespace ofc::core {

struct OfcOptions {
  ModelConfig model;
  CacheAgentOptions cache_agent;
  ProxyOptions proxy;
  // §5.3.1: only invocations expected to run >= 3 s are monitored closely
  // enough for a mid-flight memory raise.
  SimDuration monitor_min_compute = Seconds(3);
  // §6.5 locality-aware routing; disabling it (ablation) falls back to vanilla
  // OWK placement (home-worker hashing, most-recently-used sandbox).
  bool locality_routing = true;
  // RSDS latency estimate used for the caching-benefit labels (§5.2).
  store::StoreProfile rsds_estimate = store::StoreProfile::Swift();
  // Cache admission/eviction policy spec (cache_policy.h):
  // "NAME[,function=NAME...]". The default `lru` reproduces the paper's
  // eviction and cold-sweep behaviour byte-for-byte. An invalid spec logs a
  // warning and falls back to lru (callers wanting a hard error should run
  // ParseCachePolicySpec() first, as ofc-sim does).
  std::string cache_policy = "lru";
  // Observability sinks (src/obs/), propagated into the CacheAgent and Proxy
  // sub-options so the whole assembly shares one registry. Null `metrics` ->
  // the system owns a private registry; null `flight` -> no black-box records.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  obs::FlightRecorder* flight = nullptr;
};

// Snapshot view over the `ofc.predictor.*` registry counters.
struct OfcPredictionStats {
  std::uint64_t model_predictions = 0;  // Sized from a mature model.
  std::uint64_t booked_fallbacks = 0;   // Immature model: tenant booking used.
  std::uint64_t good_predictions = 0;   // Completed within the predicted size.
  std::uint64_t bad_predictions = 0;    // Needed a rescue or an OOM retry.
};

class OfcSystem : public faas::PlatformHooks {
 public:
  OfcSystem(sim::EventLoop* loop, rc::Cluster* cluster, store::ObjectStore* rsds,
            OfcOptions options);

  // Arms the CacheAgent timers and installs the RSDS webhooks.
  void Start();

  faas::DataService* data_service() { return &proxy_; }
  faas::PlatformHooks* hooks() { return this; }

  // ---- Model persistence (§5.1: models live in OWK's metadata database) -------

  // Writes every function's model document ("model/<function>") into `store`;
  // `done` fires once all puts acknowledged.
  void PersistModels(faas::MetadataStore* store, std::function<void(Status)> done);

  // Loads the model document for `spec` (if present) into the registry, so a
  // restarted platform resumes with mature predictors.
  void LoadModel(faas::MetadataStore* store, const workloads::FunctionSpec& spec,
                 std::function<void(Status)> done);

  ModelRegistry& registry() { return registry_; }
  Predictor& predictor() { return predictor_; }
  ModelTrainer& trainer() { return trainer_; }
  CacheAgent& cache_agent() { return cache_agent_; }
  Proxy& proxy() { return proxy_; }
  // The shared eviction-policy engine (fed by the Proxy's data-plane
  // notifications, consulted by the CacheAgent's shrink/sweep paths).
  CachePolicyEngine& policy_engine() { return *policy_engine_; }
  // Assembled on demand from the metrics registry.
  OfcPredictionStats prediction_stats() const;
  void ResetStats();
  obs::MetricsRegistry& metrics() { return *metrics_; }

  // ---- faas::PlatformHooks -------------------------------------------------------

  Sizing SizeInvocation(const faas::FunctionConfig& fn,
                        const std::vector<faas::InputObject>& inputs,
                        const std::vector<double>& args) override;
  std::size_t PickSandbox(const std::vector<faas::SandboxInfo>& candidates,
                          Bytes wanted_limit,
                          const std::vector<faas::InputObject>& inputs) override;
  int PickWorkerForNewSandbox(const faas::FunctionConfig& fn,
                              const std::vector<faas::InputObject>& inputs,
                              const std::vector<int>& candidates) override;
  void OnSandboxMemoryChange(const faas::SandboxMemoryEvent& event) override;
  bool TryRaiseMemory(int worker, Bytes current_limit, Bytes needed,
                      SimDuration expected_compute) override;
  void OnInvocationComplete(const faas::FunctionConfig& fn,
                            const std::vector<faas::InputObject>& inputs,
                            const std::vector<double>& args,
                            const faas::InvocationRecord& record) override;

 private:
  // Registry cells behind OfcPredictionStats. The Predictor bumps the first two
  // itself (shared registry); the system judges good/bad on completion.
  struct Metrics {
    obs::Counter* model_predictions = nullptr;
    obs::Counter* booked_fallbacks = nullptr;
    obs::Counter* good_predictions = nullptr;
    obs::Counter* bad_predictions = nullptr;
  };

  rc::Cluster* cluster_;
  OfcOptions options_;
  // Declared before the sub-components: the resolved registry pointer feeds
  // their constructors.
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // When none injected.
  obs::MetricsRegistry* metrics_ = nullptr;
  ModelRegistry registry_;
  Predictor predictor_;
  ModelTrainer trainer_;
  // Declared before the CacheAgent and Proxy: both hold a raw pointer to it.
  std::unique_ptr<CachePolicyEngine> policy_engine_;
  CacheAgent cache_agent_;
  Proxy proxy_;
  Metrics m_;
};

}  // namespace ofc::core

#endif  // OFC_CORE_OFC_SYSTEM_H_
