// Pluggable cache admission/eviction policies for the CacheAgent (§6.3, §6.4).
//
// The paper evaluates a single policy — LRU eviction under capacity pressure
// plus a periodic cold sweep (n_access < 5 or idle > 30 min) — and PR 1..9
// hard-coded exactly that inside CacheAgent. Faa$T (ASPLOS'21) and the
// keep-alive literature show the *choice* of policy materially moves hit ratio
// and E+L savings in FaaS object caches, so this subsystem factors the policy
// decisions behind an interface the CacheAgent and Proxy consult:
//
//   * OnAdmit / OnAccess / OnRemove — data-plane lifecycle notifications from
//     the Proxy (admissions, hits) and the reclamation paths;
//   * OnEvictCandidates — orders the §6.4 phase-3 input candidates, evict-first
//     first (the CacheAgent still owns the migrate-before-evict preference);
//   * OnSweep — the §6.3 cold test for objects resident >= one sweep period
//     (the residency guard itself stays in the CacheAgent: no policy may purge
//     freshly admitted objects).
//
// Four deterministic implementations ship:
//
//   lru         The paper's policy, byte-for-byte: candidates ordered by
//               last_access, cold = n_access < 5 or idle > 30 min. Default.
//   gdsf        GreedyDual-Size-Frequency: H = clock + freq * cost / size with
//               the reload cost priced from the RSDS latency profile, so small,
//               hot, expensive-to-refetch objects survive longest.
//   lfu-decay   Frequency with sim-time exponential decay (half-life), so
//               yesterday's hot object cannot squat on today's memory.
//   cost-aware  Expected (E + L) saved per byte: observed access rate times the
//               RSDS round-trip the next miss would pay, discounted by the
//               ml_service's per-function caching-benefit confidence.
//
// All state is keyed by object and updated only along deterministic event
// paths; same-seed replays take identical eviction decisions (the determinism
// selfcheck covers every policy). A CachePolicyEngine composes one default
// policy with optional per-function overrides ("gdsf,wand_blur=lru"), owns the
// `ofc.policy.*` metrics, and emits flight-recorder eviction-reason events.
#ifndef OFC_CORE_CACHE_POLICY_H_
#define OFC_CORE_CACHE_POLICY_H_

#include <functional>
#include <map>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/ramcloud/cluster.h"
#include "src/store/object_store.h"

namespace ofc::core {

// Why an object left the cache; labels the `ofc.policy.evictions` /
// `ofc.policy.bytes_evicted` cells and the flight recorder's eviction events.
enum class EvictionReason {
  kPersistedDiscard,  // §6.4 phase 1: persisted output discarded under shrink.
  kCapacity,          // §6.4 phase 3: input evicted to meet the capacity target.
  kSweep,             // §6.3 periodic sweep: cold object purged.
};
// Stable wire name ("persisted_discard", "capacity", "sweep").
const char* EvictionReasonName(EvictionReason reason);

// Thresholds shared by every policy. The CacheAgent's own option values are
// copied in at engine construction so the two never drift.
struct CachePolicyConfig {
  std::uint32_t sweep_min_access = 5;        // §6.3: cold when n_access < 5 ...
  SimDuration sweep_max_idle = Minutes(30);  // ... or idle > 30 min.
  SimDuration sweep_period = Seconds(300);
  // lfu-decay: half-life of the exponentially decayed frequency score.
  SimDuration lfu_half_life = Minutes(10);
  // gdsf / cost-aware: the RSDS profile pricing what a re-fetch (read) and the
  // avoided write-back (write) would cost. Jitter-free Cost() calls only.
  store::StoreProfile store_profile = store::StoreProfile::Swift();
};

// Per-function caching-benefit confidence in [0, 1] from the ml_service
// (cost-aware discounts each object's expected saving by it). Null-equivalent
// default: 0.5 (no opinion).
using BenefitFn = std::function<double(const std::string& function)>;

class CachePolicy {
 public:
  explicit CachePolicy(CachePolicyConfig config) : config_(config) {}
  virtual ~CachePolicy() = default;
  CachePolicy(const CachePolicy&) = delete;
  CachePolicy& operator=(const CachePolicy&) = delete;

  // Spec name this policy registers under ("lru", "gdsf", ...).
  virtual const char* name() const = 0;

  // ---- Data-plane notifications (Proxy) -----------------------------------------
  // Defaults are no-ops: lru derives everything it needs from the cluster's
  // per-object access stats (n_access, T_access), exactly like the paper.
  virtual void OnAdmit(const std::string& key, Bytes size, const std::string& function,
                       SimTime now);
  virtual void OnAccess(const std::string& key, Bytes size, const std::string& function,
                        SimTime now);
  // The object left the cache (evicted, swept, persisted-and-dropped, external
  // invalidation). Policies drop per-key state here.
  virtual void OnRemove(const std::string& key);

  // ---- Reclamation decisions (CacheAgent) ----------------------------------------

  // §6.4 phase 3: orders the candidate inputs in place, evict-first first. The
  // default sorts ascending by (EvictScore, key) — a deterministic total order;
  // lru overrides it with the exact legacy comparator.
  virtual void OnEvictCandidates(std::vector<rc::CachedObject>* candidates,
                                 SimTime now) const;

  // §6.3 sweep: true when `obj` (already resident >= one sweep period) is cold
  // and should be purged.
  virtual bool OnSweep(const rc::CachedObject& obj, SimTime now) const = 0;

  // Retention value behind the default candidate order: lower = evict first.
  // Also the cross-policy ordering when per-function overrides mix policies in
  // one candidate list.
  virtual double EvictScore(const rc::CachedObject& obj, SimTime now) const = 0;

  // Drops per-key state for keys absent from `live_keys` (sorted ascending);
  // called from the sweep so policy state tracks the live object population.
  virtual void Prune(const std::vector<std::string>& live_keys);

 protected:
  CachePolicyConfig config_;
};

// Parsed `--cache-policy` spec: a default policy plus per-function overrides.
// Grammar: NAME[,function=NAME]...   e.g. "gdsf" or "lru,wand_blur=gdsf".
struct CachePolicySpec {
  std::string default_policy = "lru";
  // (function, policy) pairs in spec order (later entries win on duplicates).
  std::vector<std::pair<std::string, std::string>> per_function;
};
// Validates names against the known policies; kInvalidArgument on anything else.
Result<CachePolicySpec> ParseCachePolicySpec(const std::string& text);
// The registered policy names, sorted ("cost-aware", "gdsf", ...).
std::vector<std::string> KnownCachePolicies();

struct CachePolicyEngineOptions {
  CachePolicyConfig config;
  BenefitFn benefit;  // Null: cost-aware assumes confidence 0.5 everywhere.
  // Observability sinks. Null `metrics` -> private registry; null `flight` ->
  // eviction-reason records are skipped.
  obs::MetricsRegistry* metrics = nullptr;
  obs::FlightRecorder* flight = nullptr;
};

// Composes the configured policies and owns the `ofc.policy.*` metric cells.
// Keys are routed to their function's policy (tagged at OnAdmit/OnAccess);
// unattributed keys fall back to the default policy, so a single-policy engine
// degenerates to exactly that policy with zero per-key routing state.
class CachePolicyEngine {
 public:
  static Result<std::unique_ptr<CachePolicyEngine>> Create(
      const std::string& spec_text, CachePolicyEngineOptions options);

  // Prefer Create(): it validates the spec text. Public only so the factory
  // can make_unique an engine from an already-parsed spec.
  CachePolicyEngine(CachePolicySpec spec, std::string spec_text,
                    CachePolicyEngineOptions options);

  // ---- Data-plane notifications (Proxy) -----------------------------------------
  void OnAdmit(const std::string& key, Bytes size, const std::string& function,
               SimTime now);
  void OnAccess(const std::string& key, Bytes size, const std::string& function,
                SimTime now);
  void OnRemove(const std::string& key);

  // ---- Reclamation decisions (CacheAgent) ----------------------------------------

  // Orders §6.4 phase-3 candidates evict-first first. Single-policy engines
  // delegate wholesale (lru keeps its byte-identical legacy sort); mixed
  // engines order by each object's own policy score for one total order.
  void RankEvictionCandidates(std::vector<rc::CachedObject>* candidates, SimTime now);

  // §6.3 cold test for one resident object, via the object's policy.
  bool SweepCold(const rc::CachedObject& obj, SimTime now);

  // Accounts one eviction (metrics + flight event) and drops policy state.
  void NoteEviction(const rc::CachedObject& obj, EvictionReason reason, int worker,
                    SimTime now);

  // Sweep-time GC: drops routing + policy state for dead keys. `live_keys`
  // need not be sorted; the engine sorts its own copy.
  void Prune(std::vector<std::string> live_keys);

  const std::string& spec() const { return spec_; }
  const char* default_policy_name() const { return default_policy_->name(); }
  bool single_policy() const { return overrides_.empty(); }

 private:
  CachePolicy* PolicyForKey(const std::string& key);
  CachePolicy* PolicyForFunction(const std::string& function);

  std::string spec_;
  CachePolicyEngineOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // When none injected.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  bool FlightOn() const { return flight_ != nullptr && flight_->enabled(); }

  // Owned policy instances: the default plus one per distinct override name.
  // Ordered by name; iterated only along deterministic paths (Prune).
  std::map<std::string, std::unique_ptr<CachePolicy>> policies_;
  CachePolicy* default_policy_ = nullptr;
  std::map<std::string, CachePolicy*> overrides_;  // function -> policy.
  std::map<std::string, CachePolicy*> key_policy_;  // key -> policy (mixed mode).

  struct Metrics {
    obs::Counter* admits = nullptr;
    obs::Counter* accesses = nullptr;
    obs::Counter* removals = nullptr;
    obs::Counter* evictions_capacity = nullptr;
    obs::Counter* evictions_sweep = nullptr;
    obs::Counter* evictions_persisted = nullptr;
    obs::Counter* bytes_evicted_capacity = nullptr;
    obs::Counter* bytes_evicted_sweep = nullptr;
    obs::Counter* bytes_evicted_persisted = nullptr;
    obs::Gauge* tracked_keys = nullptr;  // Mixed-mode routing entries.
    obs::Gauge* selected = nullptr;      // 1, labeled by the default policy.
  };
  Metrics m_;
};

}  // namespace ofc::core

#endif  // OFC_CORE_CACHE_POLICY_H_
