// Memory-interval classification (§5.1.1): OWK permits sandbox memory in
// [0, 2 GB]; OFC divides this range into fixed-size intervals and formulates
// memory prediction as classification over interval indexes. The allocated
// amount is the upper bound of the predicted interval — conservatively bumped
// to the *next* interval once the model is mature (§5.3.1).
#ifndef OFC_CORE_INTERVALS_H_
#define OFC_CORE_INTERVALS_H_

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/ml/dataset.h"

namespace ofc::core {

class MemoryIntervals {
 public:
  explicit MemoryIntervals(Bytes interval_size = MiB(16), Bytes max_memory = GiB(2));

  Bytes interval_size() const { return interval_size_; }
  Bytes max_memory() const { return max_memory_; }
  int num_classes() const { return num_classes_; }

  // Interval index containing `memory` (clamped to the last class).
  int Label(Bytes memory) const;

  // Upper bound of interval `cls`: (cls + 1) x interval_size.
  Bytes UpperBound(int cls) const;

  // §5.3.1 conservative allocation: the upper bound of the next interval.
  Bytes ConservativeAllocation(int cls) const;

  // Nominal class attribute ("m0".."m127") for building training datasets. The
  // value order matches interval order, which makes EO-accuracy meaningful.
  ml::Attribute ClassAttribute() const;

 private:
  Bytes interval_size_;
  Bytes max_memory_;
  int num_classes_;
};

}  // namespace ofc::core

#endif  // OFC_CORE_INTERVALS_H_
