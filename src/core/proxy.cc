#include "src/core/proxy.h"

#include <memory>

#include "src/common/logging.h"
#include "src/faas/direct_data_service.h"

namespace ofc::core {

Proxy::Proxy(sim::EventLoop* loop, rc::Cluster* cluster, store::ObjectStore* rsds,
             ProxyOptions options)
    : loop_(loop), cluster_(cluster), rsds_(rsds), options_(options) {}

void Proxy::InstallWebhooks() {
  rsds_->set_read_webhook([this](const std::string& key, std::function<void()> resume) {
    HandleExternalRead(key, std::move(resume));
  });
  rsds_->set_write_webhook([this](const std::string& key, std::function<void()> resume) {
    HandleExternalWrite(key, std::move(resume));
  });
}

void Proxy::Read(const faas::InvocationContext& ctx, const std::string& key,
                 std::function<void(Result<Bytes>)> done) {
  cluster_->Read(ctx.worker, key,
                 [this, ctx, key, done = std::move(done)](Result<rc::CachedObject> hit) {
    if (hit.ok()) {
      ++stats_.cache_hits;
      done(hit->size);
      return;
    }
    ++stats_.cache_misses;
    // Miss: fetch from the RSDS, then admit off the critical path.
    rsds_->Get(key, [this, ctx, key, done = std::move(done)](
                        Result<store::ObjectMetadata> meta) {
      if (!meta.ok()) {
        done(meta.status());
        return;
      }
      const Bytes size = meta->size;
      const store::ObjectVersion version = meta->rsds_version;
      // Shadow objects are not admitted: the RSDS payload just read is the
      // *previous* version, and caching it as current would serve stale data
      // after the in-flight persistor lands.
      if (ctx.should_cache && !meta->IsShadow() && size > 0 &&
          size <= options_.max_cacheable_size) {
        cluster_->Write(ctx.worker, key, size, version, rc::ObjectClass::kInput,
                        /*dirty=*/false, [this](Status status) {
                          if (status.ok()) {
                            ++stats_.admissions;
                          } else {
                            ++stats_.admission_failures;
                          }
                        });
      }
      done(size);  // The function proceeds without waiting for the admission.
    });
  });
}

void Proxy::Write(const faas::InvocationContext& ctx, const std::string& key, Bytes size,
                  const workloads::MediaDescriptor& media,
                  std::function<void(Status)> done) {
  const bool intermediate = ctx.pipeline_id != 0 && !ctx.final_stage;

  // Uncacheable or predicted-unhelpful: plain synchronous RSDS write.
  if (!ctx.should_cache || size <= 0 || size > options_.max_cacheable_size) {
    ++stats_.direct_writes;
    rsds_->Put(key, size, faas::MediaToTags(media), std::move(done));
    return;
  }

  if (intermediate) {
    // Pipeline intermediates never touch the RSDS (§6.3): they are consumed by
    // the next stage and dropped when the pipeline ends. Marked persisted so
    // reclamation may drop them without a write-back (the RSDS never needs
    // them), but tracked as intermediates for the end-of-pipeline cleanup.
    cluster_->Write(ctx.worker, key, size, /*version=*/0, rc::ObjectClass::kIntermediate,
                    /*dirty=*/false,
                    [this, ctx, key, size, media, done = std::move(done)](Status status) {
                      if (!status.ok()) {
                        // Cache full: fall back to the RSDS so the pipeline
                        // still makes progress.
                        ++stats_.direct_writes;
                        rsds_->Put(key, size, faas::MediaToTags(media), std::move(done));
                        return;
                      }
                      ++stats_.intermediates_cached;
                      pipeline_intermediates_[ctx.pipeline_id].push_back(key);
                      done(OkStatus());
                    });
    return;
  }

  if (!options_.write_back) {
    // Ablation: synchronous persistence. The payload goes straight to the
    // RSDS; a clean copy is cached for future reads.
    ++stats_.direct_writes;
    rsds_->Put(key, size, faas::MediaToTags(media),
               [this, ctx, key, size, done = std::move(done)](Status status) mutable {
                 if (!status.ok()) {
                   done(status);
                   return;
                 }
                 cluster_->Write(ctx.worker, key, size, /*version=*/0,
                                 rc::ObjectClass::kFinalOutput, /*dirty=*/false,
                                 [](Status) {});
                 done(OkStatus());
               });
    return;
  }

  if (!options_.transparent_consistency) {
    // Relaxed mode: payload goes to the cache only; persistence is lazy (on
    // eviction), relying on RAMCloud's on-disk replication for durability.
    cluster_->Write(ctx.worker, key, size, /*version=*/0, rc::ObjectClass::kFinalOutput,
                    /*dirty=*/true,
                    [this, key, size, media, done = std::move(done)](Status status) {
                      if (!status.ok()) {
                        ++stats_.direct_writes;
                        rsds_->Put(key, size, faas::MediaToTags(media), std::move(done));
                        return;
                      }
                      ++stats_.cached_writes;
                      done(OkStatus());
                    });
    return;
  }

  // Transparent mode: shadow object in the RSDS + durable cache write run in
  // parallel; acknowledge when both are done, then schedule the persistor.
  struct JoinState {
    int remaining = 2;
    Status failure;
    store::ObjectVersion version = 0;
    bool cache_ok = true;
  };
  auto join = std::make_shared<JoinState>();
  auto finish = [this, join, key, size, media, done = std::move(done)]() mutable {
    if (--join->remaining > 0) {
      return;
    }
    if (!join->failure.ok()) {
      done(join->failure);
      return;
    }
    if (!join->cache_ok) {
      // Shadow exists but the payload could not be cached: push the payload
      // directly so the RSDS converges (degenerates to a plain write).
      ++stats_.direct_writes;
      rsds_->FinalizePayload(key, join->version, size, std::move(done));
      return;
    }
    ++stats_.cached_writes;
    SchedulePersistor(key, join->version, size, /*drop_after=*/true);
    done(OkStatus());
  };

  ++stats_.shadow_writes;
  rsds_->PutShadow(key, size, [join, finish](Result<store::ObjectMetadata> meta) mutable {
    if (!meta.ok()) {
      join->failure = meta.status();
    } else {
      join->version = meta->latest_version;
    }
    finish();
  });
  cluster_->Write(ctx.worker, key, size, /*version=*/0, rc::ObjectClass::kFinalOutput,
                  /*dirty=*/true, [join, finish](Status status) mutable {
                    join->cache_ok = status.ok();
                    finish();
                  });
}

void Proxy::SchedulePersistor(const std::string& key, store::ObjectVersion version, Bytes size,
                              bool drop_after) {
  // The persistor runs as a helper FaaS function: one dispatch delay, then the
  // payload push to the RSDS.
  loop_->ScheduleAfter(options_.persistor_dispatch, [this, key, version, size, drop_after] {
    ++stats_.persistor_runs;
    rsds_->FinalizePayload(key, version, size, [this, key, drop_after](Status status) {
      if (!status.ok()) {
        // kAborted: a newer version already reached the RSDS; propagation
        // order is preserved by dropping the stale push.
        ++stats_.persistor_conflicts;
        return;
      }
      (void)cluster_->MarkPersisted(key);
      if (drop_after) {
        // §6.3: final outputs leave the cache once written back.
        (void)cluster_->Remove(key);
      }
    });
  });
}

void Proxy::OnPipelineComplete(std::uint64_t pipeline_id) {
  auto it = pipeline_intermediates_.find(pipeline_id);
  if (it == pipeline_intermediates_.end()) {
    return;
  }
  for (const std::string& key : it->second) {
    if (cluster_->Remove(key).ok()) {
      ++stats_.intermediates_dropped;
    }
  }
  pipeline_intermediates_.erase(it);
}

void Proxy::Writeback(const std::string& key, std::function<void(Status)> done) {
  const auto obj = cluster_->Inspect(key);
  if (!obj.ok()) {
    loop_->ScheduleAfter(0, [done = std::move(done), status = obj.status()] { done(status); });
    return;
  }
  if (!obj->dirty) {
    loop_->ScheduleAfter(0, [done = std::move(done)] { done(OkStatus()); });
    return;
  }
  const Bytes size = obj->size;
  // Determine the target version from the RSDS shadow when one exists;
  // otherwise create the object outright (relaxed mode / intermediates).
  const auto meta = rsds_->Stat(key);
  ++stats_.persistor_runs;
  if (meta.ok() && meta->IsShadow()) {
    rsds_->FinalizePayload(key, meta->latest_version, size,
                           [this, key, done = std::move(done)](Status status) {
                             if (status.ok()) {
                               (void)cluster_->MarkPersisted(key);
                             }
                             done(status);
                           });
    return;
  }
  rsds_->Put(key, size, {}, [this, key, done = std::move(done)](Status status) {
    if (status.ok()) {
      (void)cluster_->MarkPersisted(key);
    }
    done(status);
  });
}

void Proxy::HandleExternalRead(const std::string& key, std::function<void()> resume) {
  const auto meta = rsds_->Stat(key);
  if (!meta.ok() || !meta->IsShadow()) {
    resume();
    return;
  }
  // Boost the persistor: the external read completes only once the latest
  // payload is in the RSDS (§6.2).
  ++stats_.external_read_boosts;
  Writeback(key, [resume = std::move(resume)](Status) { resume(); });
}

void Proxy::HandleExternalWrite(const std::string& key, std::function<void()> resume) {
  if (cluster_->Contains(key)) {
    ++stats_.external_write_invalidations;
    (void)cluster_->Remove(key);
  }
  resume();
}

}  // namespace ofc::core
