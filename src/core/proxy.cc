#include "src/core/proxy.h"

#include <memory>

#include "src/common/logging.h"
#include "src/faas/direct_data_service.h"

namespace ofc::core {

Proxy::Proxy(sim::EventLoop* loop, rc::Cluster* cluster, store::ObjectStore* rsds,
             ProxyOptions options)
    : loop_(loop), cluster_(cluster), rsds_(rsds), options_(options) {
  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  trace_ = options_.trace;
  flight_ = options_.flight;
  m_.cache_hits = metrics_->GetCounter("ofc.proxy.cache_hits");
  m_.cache_misses = metrics_->GetCounter("ofc.proxy.cache_misses");
  m_.admissions = metrics_->GetCounter("ofc.proxy.admissions");
  m_.admission_failures = metrics_->GetCounter("ofc.proxy.admission_failures");
  m_.shadow_writes = metrics_->GetCounter("ofc.proxy.shadow_writes");
  m_.cached_writes = metrics_->GetCounter("ofc.proxy.cached_writes");
  m_.direct_writes = metrics_->GetCounter("ofc.proxy.direct_writes");
  m_.persistor_runs = metrics_->GetCounter("ofc.proxy.persistor_runs");
  m_.persistor_conflicts = metrics_->GetCounter("ofc.proxy.persistor_conflicts");
  m_.intermediates_cached = metrics_->GetCounter("ofc.proxy.intermediates_cached");
  m_.intermediates_dropped = metrics_->GetCounter("ofc.proxy.intermediates_dropped");
  m_.external_read_boosts = metrics_->GetCounter("ofc.proxy.external_read_boosts");
  m_.external_write_invalidations =
      metrics_->GetCounter("ofc.proxy.external_write_invalidations");
  m_.fallback_writes = metrics_->GetCounter("ofc.proxy.fallback_writes");
  m_.rsds_retries = metrics_->GetCounter("ofc.proxy.rsds_retries");
  m_.read_deadlines = metrics_->GetCounter("ofc.proxy.read_deadlines");
  m_.persistor_retries = metrics_->GetCounter("ofc.proxy.persistor_retries");
  m_.persistor_drops = metrics_->GetCounter("ofc.proxy.persistor_drops");
  m_.persistor_abandons = metrics_->GetCounter("ofc.proxy.persistor_abandons");
  m_.breaker_opens = metrics_->GetCounter("ofc.breaker.opens");
  m_.breaker_closes = metrics_->GetCounter("ofc.breaker.closes");
  m_.breaker_probes = metrics_->GetCounter("ofc.breaker.probes");
  m_.breaker_probe_failures = metrics_->GetCounter("ofc.breaker.probe_failures");
  m_.breaker_bypassed_reads = metrics_->GetCounter("ofc.breaker.bypassed_reads");
  m_.breaker_bypassed_writes = metrics_->GetCounter("ofc.breaker.bypassed_writes");
  m_.admission_deferred = metrics_->GetCounter("ofc.overload.admission_deferred");
  m_.corrupt_acked = metrics_->GetCounter("ofc.integrity.corrupt_acked");
  m_.reread_from_rsds = metrics_->GetCounter("ofc.integrity.reread_from_rsds");
  m_.breaker_state = metrics_->GetGauge("ofc.breaker.state");
  m_.breaker_open_time_us = metrics_->GetGauge("ofc.breaker.open_time_us");
  m_.persistor_ms = metrics_->GetSeries("ofc.proxy.persistor_ms");
  if (trace_ != nullptr) {
    trace_->SetProcessName(obs::kPidStore, "rsds-writeback");
  }
}

void Proxy::PolicyAdmit(const std::string& key, Bytes size, const std::string& function) {
  if (options_.policy != nullptr) {
    options_.policy->OnAdmit(key, size, function, loop_->now());
  }
}

void Proxy::PolicyAccess(const std::string& key, Bytes size, const std::string& function) {
  if (options_.policy != nullptr) {
    options_.policy->OnAccess(key, size, function, loop_->now());
  }
}

void Proxy::PolicyRemove(const std::string& key) {
  if (options_.policy != nullptr) {
    options_.policy->OnRemove(key);
  }
}

Proxy::FnMetrics& Proxy::FnMetricsFor(const std::string& function) {
  auto it = fn_metrics_.find(function);
  if (it == fn_metrics_.end()) {
    FnMetrics cells;
    cells.hits = metrics_->GetCounter("ofc.proxy.cache_hits_by_function", function);
    cells.misses = metrics_->GetCounter("ofc.proxy.cache_misses_by_function", function);
    it = fn_metrics_.emplace(function, cells).first;
  }
  return it->second;
}

Proxy::FnMetrics& Proxy::FnMetricsForCtx(const faas::InvocationContext& ctx) {
  const std::uint32_t idx = ctx.fn_index;
  if (idx == 0 || idx >= kMaxFnIndexCache) {
    return FnMetricsFor(ctx.function);
  }
  if (idx < fn_metrics_by_index_.size()) {
    IndexedFnCells& slot = fn_metrics_by_index_[idx];
    if (slot.cells != nullptr && slot.function == ctx.function) {
      return *slot.cells;
    }
  }
  FnMetrics& cells = FnMetricsFor(ctx.function);
  if (idx >= fn_metrics_by_index_.size()) {
    fn_metrics_by_index_.resize(idx + 1);
  }
  fn_metrics_by_index_[idx] = IndexedFnCells{ctx.function, &cells};
  return cells;
}

ProxyStats Proxy::stats() const {
  ProxyStats stats;
  stats.cache_hits = m_.cache_hits->value();
  stats.cache_misses = m_.cache_misses->value();
  stats.admissions = m_.admissions->value();
  stats.admission_failures = m_.admission_failures->value();
  stats.shadow_writes = m_.shadow_writes->value();
  stats.cached_writes = m_.cached_writes->value();
  stats.direct_writes = m_.direct_writes->value();
  stats.persistor_runs = m_.persistor_runs->value();
  stats.persistor_conflicts = m_.persistor_conflicts->value();
  stats.intermediates_cached = m_.intermediates_cached->value();
  stats.intermediates_dropped = m_.intermediates_dropped->value();
  stats.external_read_boosts = m_.external_read_boosts->value();
  stats.external_write_invalidations = m_.external_write_invalidations->value();
  stats.fallback_writes = m_.fallback_writes->value();
  stats.rsds_retries = m_.rsds_retries->value();
  stats.read_deadlines = m_.read_deadlines->value();
  stats.persistor_retries = m_.persistor_retries->value();
  stats.persistor_drops = m_.persistor_drops->value();
  stats.persistor_abandons = m_.persistor_abandons->value();
  stats.breaker_opens = m_.breaker_opens->value();
  stats.breaker_closes = m_.breaker_closes->value();
  stats.breaker_probes = m_.breaker_probes->value();
  stats.breaker_probe_failures = m_.breaker_probe_failures->value();
  stats.breaker_bypassed_reads = m_.breaker_bypassed_reads->value();
  stats.breaker_bypassed_writes = m_.breaker_bypassed_writes->value();
  stats.admission_deferred = m_.admission_deferred->value();
  stats.corrupt_acked = m_.corrupt_acked->value();
  stats.reread_from_rsds = m_.reread_from_rsds->value();
  return stats;
}

void Proxy::ResetStats() {
  m_.cache_hits->Reset();
  m_.cache_misses->Reset();
  m_.admissions->Reset();
  m_.admission_failures->Reset();
  m_.shadow_writes->Reset();
  m_.cached_writes->Reset();
  m_.direct_writes->Reset();
  m_.persistor_runs->Reset();
  m_.persistor_conflicts->Reset();
  m_.intermediates_cached->Reset();
  m_.intermediates_dropped->Reset();
  m_.external_read_boosts->Reset();
  m_.external_write_invalidations->Reset();
  m_.fallback_writes->Reset();
  m_.rsds_retries->Reset();
  m_.read_deadlines->Reset();
  m_.persistor_retries->Reset();
  m_.persistor_drops->Reset();
  m_.persistor_abandons->Reset();
  m_.breaker_opens->Reset();
  m_.breaker_closes->Reset();
  m_.breaker_probes->Reset();
  m_.breaker_probe_failures->Reset();
  m_.breaker_bypassed_reads->Reset();
  m_.breaker_bypassed_writes->Reset();
  m_.admission_deferred->Reset();
  m_.corrupt_acked->Reset();
  m_.reread_from_rsds->Reset();
  m_.breaker_open_time_us->Reset();
  // The state gauge reflects live state, not a window: re-assert it.
  m_.breaker_state->Reset();
  m_.breaker_state->Set(breaker_ == BreakerState::kClosed ? 0.0
                        : breaker_ == BreakerState::kOpen ? 1.0
                                                          : 2.0);
  m_.persistor_ms->Reset();
  for (auto& [function, cells] : fn_metrics_) {
    cells.hits->Reset();
    cells.misses->Reset();
  }
}

void Proxy::InstallWebhooks() {
  rsds_->set_read_webhook([this](const std::string& key, std::function<void()> resume) {
    HandleExternalRead(key, std::move(resume));
  });
  rsds_->set_write_webhook([this](const std::string& key, std::function<void()> resume) {
    HandleExternalWrite(key, std::move(resume));
  });
}

void Proxy::Read(const faas::InvocationContext& ctx, const std::string& key,
                 std::function<void(Result<Bytes>)> done) {
  if (BreakerBypasses()) {
    // Open breaker: the cache path is sick; go straight to the RSDS exactly
    // like the no-cache baseline (no admission either — nothing may touch the
    // cluster until probes succeed).
    ++*m_.breaker_bypassed_reads;
    const SimTime read_deadline = loop_->now() + options_.rsds_deadline;
    GetWithRetry(key, read_deadline, /*attempt=*/0,
                 [done = std::move(done)](Result<store::ObjectMetadata> meta) {
                   if (!meta.ok()) {
                     done(meta.status());
                     return;
                   }
                   done(meta->size);
                 });
    return;
  }
  const SimTime issued = loop_->now();
  CacheRead(ctx.worker, key,
            [this, ctx, key, issued, done = std::move(done)](Result<rc::CachedObject> hit) {
    FnMetrics& fn = FnMetricsForCtx(ctx);
    if (hit.ok()) {
      // A hit slower than the latency SLO counts against the breaker even
      // though it is served — a crawling cache is a sick cache.
      const SimDuration elapsed = loop_->now() - issued;
      BreakerReport(options_.breaker_latency_slo == 0 ||
                    elapsed <= options_.breaker_latency_slo);
      ++*m_.cache_hits;
      ++*fn.hits;
      PolicyAccess(key, hit->size, ctx.function);
      if (hit->checksum != ExpectedChecksum(key, hit->size, hit->version)) {
        // I6 tripwire: the cluster's self-healing read must never surface a
        // corrupt payload. Counted (the chaos audit asserts zero), not fatal.
        ++*m_.corrupt_acked;
      }
      if (FlightOn()) {
        flight_->Record(loop_->now(), obs::FlightEventKind::kCacheHit,
                        ctx.invocation_id, 0, ctx.worker, key);
      }
      done(hit->size);
      return;
    }
    const bool data_loss = hit.status().code() == StatusCode::kDataLoss;
    if (data_loss) {
      // Every cache copy was corrupt: the cluster dropped the object and this
      // read falls through to the RSDS below, re-admitting a good copy. The
      // detection is the integrity machinery working, not a sick cache path,
      // so the breaker sees it as a plain miss.
      ++*m_.reread_from_rsds;
    }
    // A plain miss is a healthy cache answering "not here"; any other error
    // (injected fault, cluster trouble) is a cache-path failure.
    BreakerReport(data_loss || hit.status().code() == StatusCode::kNotFound);
    ++*m_.cache_misses;
    ++*fn.misses;
    if (FlightOn()) {
      flight_->Record(loop_->now(), obs::FlightEventKind::kCacheMiss,
                      ctx.invocation_id, 0, ctx.worker, key);
    }
    // Miss: fetch from the RSDS (with bounded kUnavailable retries), then admit
    // off the critical path.
    const SimTime read_deadline = loop_->now() + options_.rsds_deadline;
    GetWithRetry(key, read_deadline, /*attempt=*/0,
                 [this, ctx, key, done = std::move(done)](
                        Result<store::ObjectMetadata> meta) {
      if (!meta.ok()) {
        done(meta.status());
        return;
      }
      const Bytes size = meta->size;
      const store::ObjectVersion version = meta->rsds_version;
      // Shadow objects are not admitted: the RSDS payload just read is the
      // *previous* version, and caching it as current would serve stale data
      // after the in-flight persistor lands.
      if (ctx.should_cache && !meta->IsShadow() && size > 0 &&
          size <= options_.max_cacheable_size) {
        if (admission_gate_ != nullptr && !admission_gate_(ctx.worker)) {
          // Memory pressure on this worker: shrink is reclaiming the cache, so
          // admitting would only force more eviction work. Defer (skip); the
          // object stays fetchable from the RSDS.
          ++*m_.admission_deferred;
        } else {
          CacheWrite(ctx.worker, key, size, version, rc::ObjectClass::kInput,
                     /*dirty=*/false, [this, ctx, key, size](Status status) {
                       if (status.ok()) {
                         ++*m_.admissions;
                         PolicyAdmit(key, size, ctx.function);
                         if (FlightOn()) {
                           flight_->Record(loop_->now(),
                                           obs::FlightEventKind::kCacheAdmit,
                                           ctx.invocation_id, 0, ctx.worker, key);
                         }
                       } else {
                         ++*m_.admission_failures;
                       }
                     });
        }
      }
      done(size);  // The function proceeds without waiting for the admission.
    });
  });
}

SimDuration Proxy::Backoff(SimDuration base, int attempt) const {
  constexpr SimDuration kCap = Seconds(30);
  SimDuration backoff = base;
  for (int i = 0; i < attempt && backoff < kCap; ++i) {
    backoff *= 2;
  }
  return backoff < kCap ? backoff : kCap;
}

void Proxy::GetWithRetry(const std::string& key, SimTime deadline, int attempt,
                         store::ObjectStore::MetaCallback done) {
  rsds_->Get(key, [this, key, deadline, attempt, done = std::move(done)](
                      Result<store::ObjectMetadata> meta) mutable {
    if (meta.ok() || meta.status().code() != StatusCode::kUnavailable) {
      done(std::move(meta));
      return;
    }
    const SimDuration backoff = Backoff(options_.rsds_retry_backoff, attempt);
    if (attempt + 1 > options_.rsds_max_retries || loop_->now() + backoff > deadline) {
      if (attempt == 0) {
        // No retry was ever attempted (retries disabled, or the first backoff
        // already overshoots the deadline): the store's own kUnavailable is
        // the truth — callers distinguish it from a spent retry budget.
        done(std::move(meta));
        return;
      }
      ++*m_.read_deadlines;
      done(DeadlineExceededError("rsds read retry budget exhausted: " + key));
      return;
    }
    ++*m_.rsds_retries;
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Instant("rsds-read-retry", "degradation", loop_->now(), obs::kPidStore,
                      /*tid=*/0, {{"key", key}});
    }
    loop_->ScheduleAfter(backoff,
                         [this, key, deadline, attempt, done = std::move(done)]() mutable {
                           GetWithRetry(key, deadline, attempt + 1, std::move(done));
                         });
  });
}

void Proxy::Write(const faas::InvocationContext& ctx, const std::string& key, Bytes size,
                  const workloads::MediaDescriptor& media,
                  std::function<void(Status)> done) {
  const bool intermediate = ctx.pipeline_id != 0 && !ctx.final_stage;

  // Uncacheable or predicted-unhelpful: plain synchronous RSDS write.
  if (!ctx.should_cache || size <= 0 || size > options_.max_cacheable_size) {
    ++*m_.direct_writes;
    rsds_->Put(key, size, faas::MediaToTags(media), std::move(done));
    return;
  }

  if (BreakerBypasses()) {
    // Open breaker: skip the cache entirely and write through to the RSDS —
    // the no-cache baseline write path, so open-state latency matches it.
    // Intermediates included: the next stage's read will miss and fetch here.
    ++*m_.breaker_bypassed_writes;
    ++*m_.direct_writes;
    rsds_->Put(key, size, faas::MediaToTags(media), std::move(done));
    return;
  }

  if (intermediate) {
    // Pipeline intermediates never touch the RSDS (§6.3): they are consumed by
    // the next stage and dropped when the pipeline ends. Marked persisted so
    // reclamation may drop them without a write-back (the RSDS never needs
    // them), but tracked as intermediates for the end-of-pipeline cleanup.
    CacheWrite(ctx.worker, key, size, /*version=*/0, rc::ObjectClass::kIntermediate,
               /*dirty=*/false,
               [this, ctx, key, size, media, done = std::move(done)](Status status) {
                      BreakerReport(WriteHealthy(status));
                      if (!status.ok()) {
                        // Cache full: fall back to the RSDS so the pipeline
                        // still makes progress.
                        ++*m_.direct_writes;
                        rsds_->Put(key, size, faas::MediaToTags(media), std::move(done));
                        return;
                      }
                      ++*m_.intermediates_cached;
                      PolicyAdmit(key, size, ctx.function);
                      pipeline_intermediates_[ctx.pipeline_id].push_back(key);
                      done(OkStatus());
                    });
    return;
  }

  if (!options_.write_back) {
    // Ablation: synchronous persistence. The payload goes straight to the
    // RSDS; a clean copy is cached for future reads.
    ++*m_.direct_writes;
    rsds_->Put(key, size, faas::MediaToTags(media),
               [this, ctx, key, size, done = std::move(done)](Status status) mutable {
                 if (!status.ok()) {
                   done(status);
                   return;
                 }
                 CacheWrite(ctx.worker, key, size, /*version=*/0,
                            rc::ObjectClass::kFinalOutput, /*dirty=*/false,
                            [this, ctx, key, size](Status status) {
                              if (status.ok()) {
                                PolicyAdmit(key, size, ctx.function);
                              }
                            });
                 done(OkStatus());
               });
    return;
  }

  if (!options_.transparent_consistency) {
    // Relaxed mode: payload goes to the cache only; persistence is lazy (on
    // eviction), relying on RAMCloud's on-disk replication for durability.
    CacheWrite(ctx.worker, key, size, /*version=*/0, rc::ObjectClass::kFinalOutput,
               /*dirty=*/true,
               [this, ctx, key, size, media, done = std::move(done)](Status status) {
                 BreakerReport(WriteHealthy(status));
                 if (!status.ok()) {
                   ++*m_.direct_writes;
                   rsds_->Put(key, size, faas::MediaToTags(media), std::move(done));
                   return;
                 }
                 ++*m_.cached_writes;
                 PolicyAdmit(key, size, ctx.function);
                 if (FlightOn()) {
                   flight_->Record(loop_->now(), obs::FlightEventKind::kCacheWrite,
                                   ctx.invocation_id, 0, ctx.worker, key);
                 }
                 done(OkStatus());
               });
    return;
  }

  // Transparent mode: shadow object in the RSDS + durable cache write run in
  // parallel; acknowledge when both are done, then schedule the persistor.
  struct JoinState {
    int remaining = 2;
    Status failure;
    store::ObjectVersion version = 0;
    bool cache_ok = true;
  };
  auto join = std::make_shared<JoinState>();
  auto finish = [this, ctx, join, key, size, media, done = std::move(done)]() mutable {
    if (--join->remaining > 0) {
      return;
    }
    if (!join->failure.ok()) {
      if (join->failure.code() == StatusCode::kUnavailable && join->cache_ok) {
        // RSDS outage: the replicated cache copy is durable, so the write is
        // acknowledged from the cache alone (no shadow exists yet — §6.2's
        // guarantee degrades to cache-durability). A version-0 persistor pushes
        // the full payload once the store heals.
        ++*m_.fallback_writes;
        ++*m_.cached_writes;
        PolicyAdmit(key, size, ctx.function);
        if (trace_ != nullptr && trace_->enabled()) {
          trace_->Instant("write-fallback", "degradation", loop_->now(), obs::kPidStore,
                          /*tid=*/0, {{"key", key}});
        }
        if (FlightOn()) {
          flight_->Record(loop_->now(), obs::FlightEventKind::kWriteFallback,
                          ctx.invocation_id, 0, ctx.worker, key);
        }
        PersistorJob job;
        job.key = key;
        job.size = size;
        job.drop_after = true;
        job.invocation_id = ctx.invocation_id;
        job.checksum = PayloadFingerprint(key, size);
        // The store version this fallback supersedes, read through the
        // management plane (the data plane is down): the If-Match ETag for the
        // eventual compare-and-swap push. Anything newer landing after heal
        // wins over the fallback.
        const auto prior = rsds_->Stat(key);
        job.fallback_base = prior.ok() ? prior->latest_version : 0;
        job.epoch = write_epoch_[key] = next_write_epoch_++;
        SchedulePersistor(std::move(job));
        done(OkStatus());
        return;
      }
      done(join->failure);
      return;
    }
    if (!join->cache_ok) {
      // Shadow exists but the payload could not be cached: push the payload
      // directly so the RSDS converges (degenerates to a plain write).
      ++*m_.direct_writes;
      rsds_->FinalizePayload(key, join->version, size, std::move(done));
      return;
    }
    ++*m_.cached_writes;
    PolicyAdmit(key, size, ctx.function);
    if (FlightOn()) {
      flight_->Record(loop_->now(), obs::FlightEventKind::kCacheWrite,
                      ctx.invocation_id, 0, ctx.worker, key);
    }
    PersistorJob job;
    job.key = key;
    job.version = join->version;
    job.size = size;
    job.drop_after = true;
    job.invocation_id = ctx.invocation_id;
    job.checksum = PayloadFingerprint(key, size);
    job.epoch = write_epoch_[key] = next_write_epoch_++;
    SchedulePersistor(std::move(job));
    done(OkStatus());
  };

  ++*m_.shadow_writes;
  rsds_->PutShadow(key, size, [join, finish](Result<store::ObjectMetadata> meta) mutable {
    if (!meta.ok()) {
      join->failure = meta.status();
    } else {
      join->version = meta->latest_version;
    }
    finish();
  });
  CacheWrite(ctx.worker, key, size, /*version=*/0, rc::ObjectClass::kFinalOutput,
             /*dirty=*/true, [this, join, finish](Status status) mutable {
               BreakerReport(WriteHealthy(status));
               join->cache_ok = status.ok();
               finish();
             });
}

// ---- Circuit breaker & cache-fault injection ----------------------------------------

void Proxy::CacheRead(int worker, const std::string& key, rc::Cluster::ReadCallback done) {
  if (CacheFaulted()) {
    loop_->ScheduleAfter(0, [done = std::move(done)] {
      done(UnavailableError("cache path degraded (injected fault)"));
    });
    return;
  }
  cluster_->Read(worker, key, std::move(done));
}

void Proxy::CacheWrite(int worker, const std::string& key, Bytes size,
                       store::ObjectVersion version, rc::ObjectClass object_class,
                       bool dirty, rc::Cluster::Callback done) {
  if (CacheFaulted()) {
    loop_->ScheduleAfter(0, [done = std::move(done)] {
      done(UnavailableError("cache path degraded (injected fault)"));
    });
    return;
  }
  // Every proxy-side cache write carries the payload fingerprint, so the
  // replica checksums stamped by the cluster are verifiable end to end.
  cluster_->Write(worker, key, size, version, object_class, dirty,
                  PayloadFingerprint(key, size), std::move(done));
}

bool Proxy::BreakerBypasses() {
  if (!BreakerEnabled()) {
    return false;
  }
  if (breaker_ == BreakerState::kOpen) {
    if (loop_->now() < breaker_open_until_) {
      return true;
    }
    // Open window elapsed: go half-open and admit probe operations.
    breaker_ = BreakerState::kHalfOpen;
    breaker_successes_ = 0;
    m_.breaker_state->Set(2.0);
    m_.breaker_open_time_us->Add(static_cast<double>(loop_->now() - breaker_opened_at_));
    TraceBreaker("breaker-half-open");
  }
  if (breaker_ == BreakerState::kHalfOpen) {
    ++*m_.breaker_probes;
  }
  return false;
}

void Proxy::BreakerReport(bool success) {
  if (!BreakerEnabled()) {
    return;
  }
  switch (breaker_) {
    case BreakerState::kClosed:
      if (success) {
        breaker_failures_ = 0;
      } else if (++breaker_failures_ >= options_.breaker_failure_threshold) {
        BreakerTrip();
      }
      return;
    case BreakerState::kHalfOpen:
      if (!success) {
        ++*m_.breaker_probe_failures;
        BreakerTrip();
      } else if (++breaker_successes_ >= options_.breaker_half_open_probes) {
        BreakerClose();
      }
      return;
    case BreakerState::kOpen:
      return;  // Completion from before the trip; the open window is authoritative.
  }
}

void Proxy::BreakerTrip() {
  breaker_ = BreakerState::kOpen;
  breaker_failures_ = 0;
  breaker_successes_ = 0;
  breaker_opened_at_ = loop_->now();
  breaker_open_until_ = loop_->now() + options_.breaker_open_duration;
  ++*m_.breaker_opens;
  m_.breaker_state->Set(1.0);
  TraceBreaker("breaker-open");
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kBreakerOpen, 0, 0, -1, "breaker");
  }
}

void Proxy::BreakerClose() {
  breaker_ = BreakerState::kClosed;
  breaker_failures_ = 0;
  breaker_successes_ = 0;
  ++*m_.breaker_closes;
  m_.breaker_state->Set(0.0);
  TraceBreaker("breaker-close");
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kBreakerClose, 0, 0, -1, "breaker");
  }
}

void Proxy::TraceBreaker(const char* what) {
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Instant(what, "overload", loop_->now(), obs::kPidCache, /*tid=*/0);
  }
}

void Proxy::SchedulePersistor(PersistorJob job, int attempt) {
  // The persistor runs as a helper FaaS function: one dispatch delay, then the
  // payload push to the RSDS.
  const SimTime scheduled = loop_->now();
  if (attempt == 0 && FlightOn()) {
    flight_->Record(scheduled, obs::FlightEventKind::kPersistorDispatch, 0,
                    job.invocation_id, -1, job.key);
  }
  loop_->ScheduleAfter(options_.persistor_dispatch,
                       [this, job = std::move(job), scheduled, attempt]() mutable {
                         RunPersistor(std::move(job), scheduled, attempt);
                       });
}

bool Proxy::EpochCurrent(const PersistorJob& job) const {
  auto it = write_epoch_.find(job.key);
  return it == write_epoch_.end() || it->second == job.epoch;
}

void Proxy::RunPersistor(PersistorJob job, SimTime scheduled, int attempt) {
  if (loop_->now() < persistor_drop_until_) {
    // Fault injection: the helper function was lost mid-flight. The dispatch is
    // retried with backoff so the acknowledged write still converges.
    ++*m_.persistor_drops;
    RetryPersistor(std::move(job), attempt);
    return;
  }
  if (job.version == 0 && !EpochCurrent(job)) {
    // A newer acknowledged write owns this key now; its own persistor (or the
    // shadow version ordering) converges the store, and pushing the stale
    // fallback payload would clobber it.
    ++*m_.persistor_conflicts;
    if (FlightOn()) {
      flight_->Record(loop_->now(), obs::FlightEventKind::kPersistorConflict, 0,
                      job.invocation_id, -1, job.key, "stale_epoch");
    }
    return;
  }
  ++*m_.persistor_runs;
  auto on_pushed = [this, job, scheduled, attempt](Status status) {
    if (!status.ok()) {
      if (status.code() == StatusCode::kUnavailable) {
        RetryPersistor(job, attempt);
        return;
      }
      // kAborted: a newer version already reached the RSDS; propagation
      // order is preserved by dropping the stale push.
      ++*m_.persistor_conflicts;
      if (FlightOn()) {
        flight_->Record(loop_->now(), obs::FlightEventKind::kPersistorConflict, 0,
                        job.invocation_id, -1, job.key, "newer_version");
      }
      return;
    }
    m_.persistor_ms->Observe(ToMillis(loop_->now() - scheduled));
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Span("persistor", "writeback", scheduled, loop_->now() - scheduled,
                   obs::kPidStore, /*tid=*/0, {{"key", job.key}});
    }
    if (FlightOn()) {
      flight_->Record(loop_->now(), obs::FlightEventKind::kPersistorDone, 0,
                      job.invocation_id, -1, job.key);
    }
    if (!EpochCurrent(job)) {
      // The push landed, but a newer acknowledged write took over the cached
      // copy while it was in flight — its persistor cleans up; dropping the
      // copy here would lose a dirty, not-yet-persisted payload.
      return;
    }
    (void)cluster_->MarkPersisted(job.key);
    if (job.drop_after) {
      // §6.3: final outputs leave the cache once written back.
      (void)cluster_->Remove(job.key);
      PolicyRemove(job.key);
    }
  };
  if (job.version == 0) {
    // Degraded write (no shadow was ever created): push the full payload, but
    // only if the store still holds what the fallback ack superseded — any
    // write that landed after heal is newer and must win (kAborted here).
    rsds_->PutIfVersion(job.key, job.fallback_base, job.size, {}, job.checksum,
                        std::move(on_pushed));
    return;
  }
  rsds_->FinalizePayload(job.key, job.version, job.size, job.checksum,
                         std::move(on_pushed));
}

void Proxy::RetryPersistor(PersistorJob job, int attempt) {
  if (attempt + 1 > options_.persistor_max_retries) {
    // Budget exhausted: the object stays dirty in the cache; the CacheAgent's
    // reclamation write-back is the backstop.
    ++*m_.persistor_abandons;
    return;
  }
  ++*m_.persistor_retries;
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kPersistorRetry, 0,
                    job.invocation_id, -1, job.key);
  }
  const SimDuration backoff = Backoff(options_.persistor_retry_backoff, attempt);
  const SimTime scheduled = loop_->now();
  loop_->ScheduleAfter(backoff, [this, job = std::move(job), scheduled, attempt]() mutable {
    RunPersistor(std::move(job), scheduled, attempt + 1);
  });
}

void Proxy::OnPipelineComplete(std::uint64_t pipeline_id) {
  auto it = pipeline_intermediates_.find(pipeline_id);
  if (it == pipeline_intermediates_.end()) {
    return;
  }
  for (const std::string& key : it->second) {
    if (cluster_->Remove(key).ok()) {
      ++*m_.intermediates_dropped;
      PolicyRemove(key);
    }
  }
  pipeline_intermediates_.erase(it);
}

void Proxy::Writeback(const std::string& key, std::function<void(Status)> done) {
  const auto obj = cluster_->Inspect(key);
  if (!obj.ok()) {
    loop_->ScheduleAfter(0, [done = std::move(done), status = obj.status()] { done(status); });
    return;
  }
  if (!obj->dirty) {
    loop_->ScheduleAfter(0, [done = std::move(done)] { done(OkStatus()); });
    return;
  }
  const Bytes size = obj->size;
  // Determine the target version from the RSDS shadow when one exists;
  // otherwise create the object outright (relaxed mode / intermediates).
  const auto meta = rsds_->Stat(key);
  ++*m_.persistor_runs;
  if (FlightOn()) {
    flight_->Record(loop_->now(), obs::FlightEventKind::kWriteback, 0, 0, -1, key);
  }
  if (meta.ok() && meta->IsShadow()) {
    rsds_->FinalizePayload(key, meta->latest_version, size, PayloadFingerprint(key, size),
                           [this, key, done = std::move(done)](Status status) {
                             if (status.ok()) {
                               (void)cluster_->MarkPersisted(key);
                             }
                             done(status);
                           });
    return;
  }
  rsds_->Put(key, size, {}, [this, key, done = std::move(done)](Status status) {
    if (status.ok()) {
      (void)cluster_->MarkPersisted(key);
    }
    done(status);
  });
}

void Proxy::HandleExternalRead(const std::string& key, std::function<void()> resume) {
  const auto meta = rsds_->Stat(key);
  if (!meta.ok() || !meta->IsShadow()) {
    resume();
    return;
  }
  // Boost the persistor: the external read completes only once the latest
  // payload is in the RSDS (§6.2).
  ++*m_.external_read_boosts;
  if (trace_ != nullptr && trace_->enabled()) {
    trace_->Instant("external-read-boost", "webhook", loop_->now(), obs::kPidStore,
                    /*tid=*/0, {{"key", key}});
  }
  Writeback(key, [resume = std::move(resume)](Status) { resume(); });
}

void Proxy::HandleExternalWrite(const std::string& key, std::function<void()> resume) {
  if (cluster_->Contains(key)) {
    ++*m_.external_write_invalidations;
    (void)cluster_->Remove(key);
    PolicyRemove(key);
  }
  resume();
}

}  // namespace ofc::core
