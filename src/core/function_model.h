// FunctionModel: per-function ML state shared by the Predictor and the
// ModelTrainer (§5).
//
// Holds the two J48 models (memory intervals, §5.1; caching benefit, §5.2), the
// curated training sets (§5.3.3), and the maturation tracking of §5.3.1:
//
//   * predictions are not used until >= 90 % of (shadow) predictions are
//     exact-or-over AND >= 50 % of underpredictions land within one interval of
//     the truth, evaluated from 100 observed invocations onward;
//   * after maturation, only underpredictions (upweighted) and extreme
//     overpredictions (k - k* > 6) are retained for retraining, keeping the
//     training set small but valuable.
#ifndef OFC_CORE_FUNCTION_MODEL_H_
#define OFC_CORE_FUNCTION_MODEL_H_

#include <deque>
#include <optional>
#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/core/intervals.h"
#include "src/ml/dataset.h"
#include "src/ml/j48.h"

namespace ofc::core {

struct ModelConfig {
  MemoryIntervals intervals;
  // §5.3.1 conservative next-interval allocation. Disabling it (ablation)
  // allocates the predicted interval's own upper bound, trading ~5 % of
  // EO-coverage for tighter memory.
  bool conservative_bump = true;
  int min_train = 10;        // Invocations before the first training.
  int retrain_every = 25;    // New curated samples between retrainings.
  std::size_t max_training_set = 1500;
  double under_weight = 2.0;  // §5.3.3: upweight underprediction samples.
  int maturity_min_invocations = 100;  // §7.1.3: checks start at 100.
  double maturity_eo_threshold = 0.90;
  double maturity_under_within_one = 0.50;
  // Maturity rates are computed over the most recent evaluations (the early,
  // barely-trained model's errors must not penalize it forever).
  int maturity_window = 100;
  int way_over_threshold = 6;  // Retain overpredictions with k - k* > 6.
};

class FunctionModel {
 public:
  FunctionModel(std::string function, std::vector<ml::Attribute> features,
                ModelConfig config);

  const std::string& function() const { return function_; }
  const ModelConfig& config() const { return config_; }

  // ---- Inference (Predictor side) ---------------------------------------------

  bool trained() const { return trained_; }
  bool mature() const { return mature_; }

  // Predicted memory interval; nullopt before the first training.
  std::optional<int> PredictClass(const std::vector<double>& features) const;

  // Predicted caching benefit; nullopt before the first training.
  std::optional<bool> PredictBenefit(const std::vector<double>& features) const;

  // Aggregate caching-benefit confidence in [0, 1]: the fraction of curated
  // benefit samples labeled "caching helps". 0.5 (no opinion) until the
  // benefit tree has trained. The cost-aware cache policy uses this as the
  // per-function prior on an object's expected E+L saving.
  double BenefitConfidence() const;

  // ---- Learning (ModelTrainer side) ---------------------------------------------

  // Feeds one completed invocation: extracted features, the actual peak memory
  // (from the Monitor's cgroup statistics), and the ground-truth benefit label
  // ((E+L)/total > 0.5 on estimated RSDS timings).
  void Learn(const std::vector<double>& features, Bytes actual_memory, bool benefit_label);

  // ---- Introspection -----------------------------------------------------------

  int observations() const { return observations_; }
  int evaluated() const { return evaluated_; }
  double eo_rate() const;
  double under_within_one_rate() const;
  std::size_t training_set_size() const { return memory_samples_.size(); }
  // Invocation count at which the model matured; -1 while immature (§7.1.3
  // maturation-quickness metric).
  int matured_at() const { return matured_at_; }

  // ---- Persistence (models live in OWK's metadata database, §5.1) ---------------

  // Full state: both trees, curated training sets, maturity counters.
  std::string SerializeState() const;
  // Restores a state produced by SerializeState(); schemas must match this
  // model's function (feature arity is validated).
  Status RestoreState(const std::string& data);

 private:
  void MaybeRetrain();
  void UpdateMaturity(int predicted, int truth);

  std::string function_;
  std::vector<ml::Attribute> feature_attrs_;
  ModelConfig config_;

  ml::J48 memory_model_;
  ml::J48 benefit_model_;
  bool trained_ = false;
  bool benefit_trained_ = false;

  // Curated training samples (deques so the cap can drop the oldest).
  std::deque<ml::Instance> memory_samples_;
  std::deque<ml::Instance> benefit_samples_;
  int new_samples_since_train_ = 0;

  // Maturity tracking: sliding window of (predicted, truth) shadow evaluations.
  int observations_ = 0;
  int evaluated_ = 0;
  std::deque<std::pair<int, int>> recent_evals_;
  bool mature_ = false;
  int matured_at_ = -1;
};

}  // namespace ofc::core

#endif  // OFC_CORE_FUNCTION_MODEL_H_
