#include "src/core/cache_agent.h"

#include <algorithm>

#include "src/common/logging.h"
#include "src/common/sim_assert.h"

namespace ofc::core {

CacheAgent::CacheAgent(sim::EventLoop* loop, rc::Cluster* cluster, CacheAgentOptions options)
    : loop_(loop), cluster_(cluster), options_(options) {
  const std::size_t n = static_cast<std::size_t>(cluster_->num_nodes());
  hoard_.assign(n, 0);
  limits_.assign(n, 0);
  slack_.assign(n, options_.initial_slack);
  churn_accum_.assign(n, 0);
  churn_windows_.assign(n, SlidingTimeWindow(options_.churn_window));
  inflight_writebacks_.assign(n, 0);
  writeback_backlog_.assign(n, {});
  writeback_pending_.assign(n, {});
  under_pressure_.assign(n, false);

  metrics_ = options_.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  trace_ = options_.trace;
  flight_ = options_.flight;
  policy_ = options_.policy;
  if (policy_ == nullptr) {
    // Standalone agent (tests, benches without an OfcSystem): own a default
    // lru engine so there is exactly one reclamation code path.
    CachePolicyEngineOptions peo;
    peo.config.sweep_min_access = options_.sweep_min_access;
    peo.config.sweep_max_idle = options_.sweep_max_idle;
    peo.config.sweep_period = options_.sweep_period;
    peo.metrics = metrics_;
    peo.flight = flight_;
    auto engine = CachePolicyEngine::Create("lru", std::move(peo));
    owned_policy_ = std::move(*engine);  // "lru" always parses.
    policy_ = owned_policy_.get();
  }
  m_.scale_ups = metrics_->GetCounter("ofc.cache_agent.scale_ups");
  m_.scale_downs_plain = metrics_->GetCounter("ofc.cache_agent.scale_downs_plain");
  m_.scale_downs_migration = metrics_->GetCounter("ofc.cache_agent.scale_downs_migration");
  m_.scale_downs_eviction = metrics_->GetCounter("ofc.cache_agent.scale_downs_eviction");
  m_.objects_migrated = metrics_->GetCounter("ofc.cache_agent.objects_migrated");
  m_.objects_evicted = metrics_->GetCounter("ofc.cache_agent.objects_evicted");
  m_.objects_swept = metrics_->GetCounter("ofc.cache_agent.objects_swept");
  m_.writebacks_triggered = metrics_->GetCounter("ofc.cache_agent.writebacks_triggered");
  m_.writebacks_throttled = metrics_->GetCounter("ofc.cache_agent.writebacks_throttled");
  pressure_gauges_.reserve(n);
  for (std::size_t w = 0; w < n; ++w) {
    pressure_gauges_.push_back(
        metrics_->GetGauge("ofc.overload.cache_pressure", std::to_string(w)));
  }
  m_.scale_up_time_us = metrics_->GetGauge("ofc.cache_agent.scale_up_time_us");
  m_.scale_down_time_us = metrics_->GetGauge("ofc.cache_agent.scale_down_time_us");
  m_.migration_ms = metrics_->GetSeries("ofc.cache_agent.migration_ms");
  if (trace_ != nullptr) {
    trace_->SetProcessName(obs::kPidCache, "cache-agent");
  }
}

CacheScalingStats CacheAgent::stats() const {
  CacheScalingStats stats;
  stats.scale_ups = m_.scale_ups->value();
  stats.scale_up_time = static_cast<SimDuration>(m_.scale_up_time_us->value());
  stats.scale_downs_plain = m_.scale_downs_plain->value();
  stats.scale_downs_migration = m_.scale_downs_migration->value();
  stats.scale_downs_eviction = m_.scale_downs_eviction->value();
  stats.scale_down_time = static_cast<SimDuration>(m_.scale_down_time_us->value());
  stats.objects_migrated = m_.objects_migrated->value();
  stats.objects_evicted = m_.objects_evicted->value();
  stats.objects_swept = m_.objects_swept->value();
  stats.writebacks_triggered = m_.writebacks_triggered->value();
  stats.writebacks_throttled = m_.writebacks_throttled->value();
  return stats;
}

void CacheAgent::ResetStats() {
  m_.scale_ups->Reset();
  m_.scale_downs_plain->Reset();
  m_.scale_downs_migration->Reset();
  m_.scale_downs_eviction->Reset();
  m_.objects_migrated->Reset();
  m_.objects_evicted->Reset();
  m_.objects_swept->Reset();
  m_.writebacks_triggered->Reset();
  m_.writebacks_throttled->Reset();
  m_.scale_up_time_us->Reset();
  m_.scale_down_time_us->Reset();
  m_.migration_ms->Reset();
}

Bytes CacheAgent::CapacityTarget(int worker) const {
  const std::size_t w = static_cast<std::size_t>(worker);
  // The hoardable amount, bounded by the physically free memory on the node.
  const Bytes physical = options_.worker_memory - limits_[w];
  return std::max<Bytes>(0, std::min(hoard_[w], physical) - slack_[w]);
}

void CacheAgent::Start() {
  if (started_) {
    return;
  }
  started_ = true;
  ApplyAllTargets();
  loop_->ScheduleAfter(options_.sweep_period, [this] { SweepTick(); });
  loop_->ScheduleAfter(options_.churn_sample_period, [this] { ChurnSampleTick(); });
  loop_->ScheduleAfter(options_.slack_adjust_period, [this] { SlackAdjustTick(); });
}

void CacheAgent::SweepTick() {
  SweepOnce();
  loop_->ScheduleAfter(options_.sweep_period, [this] { SweepTick(); });
}

void CacheAgent::ChurnSampleTick() {
  // §6.4: the local memory churn is measured every 60 s.
  for (std::size_t w = 0; w < churn_accum_.size(); ++w) {
    churn_windows_[w].Add(loop_->now(), static_cast<double>(churn_accum_[w]));
    churn_accum_[w] = 0;
  }
  loop_->ScheduleAfter(options_.churn_sample_period, [this] { ChurnSampleTick(); });
}

void CacheAgent::SlackAdjustTick() {
  // §6.4: the slack pool is re-estimated every 120 s from the churn window.
  for (std::size_t w = 0; w < slack_.size(); ++w) {
    const double mean_churn = churn_windows_[w].MeanAt(loop_->now());
    const Bytes estimate = static_cast<Bytes>(mean_churn);
    slack_[w] = std::clamp(std::max(estimate, options_.initial_slack / 2), options_.min_slack,
                           options_.max_slack);
    ApplyTarget(static_cast<int>(w));
  }
  loop_->ScheduleAfter(options_.slack_adjust_period, [this] { SlackAdjustTick(); });
}

void CacheAgent::SweepOnce() {
  const SimTime now = loop_->now();
  std::vector<std::string> live;
  live.reserve(cluster_->NumObjects());
  for (int node = 0; node < cluster_->num_nodes(); ++node) {
    for (const rc::CachedObject& obj : cluster_->ObjectsOn(node)) {
      live.push_back(obj.key);
      // Only consider objects that have been resident for at least one sweep
      // period; otherwise every freshly admitted object would be purged. This
      // residency guard is policy-independent.
      if (now - obj.created_at < options_.sweep_period) {
        continue;
      }
      if (!policy_->SweepCold(obj, now)) {
        continue;
      }
      if (obj.dirty) {
        LaunchWriteback(node, obj.key, /*count_swept=*/true);
        continue;
      }
      (void)cluster_->Remove(obj.key);
      ++*m_.objects_swept;
      policy_->NoteEviction(obj, EvictionReason::kSweep, node, now);
    }
  }
  // GC per-key policy state down to the live object population (keys removed
  // above were already dropped via NoteEviction; stragglers go here).
  policy_->Prune(std::move(live));
}

void CacheAgent::OnSandboxMemoryChange(const faas::SandboxMemoryEvent& event) {
  const std::size_t w = static_cast<std::size_t>(event.worker);
  hoard_[w] += event.new_hoard() - event.old_hoard();
  limits_[w] += event.new_limit - event.old_limit;
  // Hoard/limit accounting mirrors sandbox lifecycle events; going negative
  // means a create/resize/destroy event was double-counted or dropped.
  SIM_ASSERT(hoard_[w] >= 0) << "; hoard underflow on worker " << event.worker;
  SIM_ASSERT(limits_[w] >= 0) << "; cgroup-limit underflow on worker " << event.worker;
  SIM_ASSERT(limits_[w] <= options_.worker_memory)
      << "; cgroup limits " << limits_[w] << " exceed worker memory "
      << options_.worker_memory << " on worker " << event.worker;
  churn_accum_[w] += std::abs(event.new_limit - event.old_limit);
  ApplyTarget(event.worker);
}

void CacheAgent::ApplyAllTargets() {
  for (int w = 0; w < cluster_->num_nodes(); ++w) {
    ApplyTarget(w);
  }
}

void CacheAgent::ApplyTarget(int worker) {
  const Bytes target = CapacityTarget(worker);
  const Bytes current = cluster_->Capacity(worker);
  if (target == current) {
    return;
  }
  SimDuration duration = 0;
  if (target > current) {
    // Scale up: capacity grows, nothing to reclaim.
    if (cluster_->SetCapacity(worker, target, &duration).ok()) {
      ++*m_.scale_ups;
      m_.scale_up_time_us->Add(static_cast<double>(duration));
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->Span("scale-up", "cache", loop_->now(), duration, obs::kPidCache,
                     static_cast<std::uint64_t>(worker),
                     {{"target_bytes", std::to_string(target)}});
      }
      if (FlightOn()) {
        flight_->Record(loop_->now(), obs::FlightEventKind::kScaleUp, 0, 0, worker, "",
                        std::to_string(target) + "B");
      }
    }
    return;
  }
  // Scale down.
  const Bytes used = cluster_->Used(worker);
  bool migrated = false;
  bool evicted = false;
  if (used > target) {
    const Bytes freed = FreeBytes(worker, used - target, &migrated, &evicted);
    if (cluster_->Used(worker) > target) {
      // Could not free enough synchronously (e.g. everything dirty, write-backs
      // in flight): shrink to what is feasible now and retry shortly.
      (void)freed;
      const Bytes feasible = std::max(target, cluster_->Used(worker));
      SimDuration partial = 0;
      if (cluster_->SetCapacity(worker, feasible, &partial).ok()) {
        AddScaleDownTime(partial);
      }
      loop_->ScheduleAfter(Millis(50), [this, worker] { ApplyTarget(worker); });
      return;
    }
  }
  if (cluster_->SetCapacity(worker, target, &duration).ok()) {
    AddScaleDownTime(duration);
    if (migrated) {
      ++*m_.scale_downs_migration;
    } else if (evicted) {
      ++*m_.scale_downs_eviction;
    } else {
      ++*m_.scale_downs_plain;
    }
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Span("scale-down", "cache", loop_->now(), duration, obs::kPidCache,
                   static_cast<std::uint64_t>(worker),
                   {{"target_bytes", std::to_string(target)},
                    {"mode", migrated ? "migration" : (evicted ? "eviction" : "plain")}});
    }
    if (FlightOn()) {
      flight_->Record(loop_->now(), obs::FlightEventKind::kScaleDown, 0, 0, worker, "",
                      migrated ? "migration" : (evicted ? "eviction" : "plain"));
    }
  }
}

Bytes CacheAgent::FreeBytes(int worker, Bytes needed, bool* migrated, bool* evicted) {
  const SimTime now = loop_->now();
  Bytes freed = 0;
  // One bulk snapshot of the worker's mastered objects feeds all three phases.
  // The phases run synchronously (no event-loop yield), so the only state the
  // snapshot can miss is our own phase-1 removals — and those are persisted
  // clean outputs, which phases 2 and 3 skip by class/dirty tests anyway.
  const std::vector<rc::CachedObject> objects = cluster_->ObjectsOn(worker);

  // Phase 1: discard persisted output objects (final outputs first, §6.4).
  for (const rc::CachedObject& obj : objects) {
    if (freed >= needed) {
      return freed;
    }
    const bool output = obj.object_class != rc::ObjectClass::kInput;
    if (output && obj.persisted && !obj.dirty) {
      freed += obj.size;
      (void)cluster_->Remove(obj.key);
      ++*m_.objects_evicted;
      *evicted = true;
      AddScaleDownTime(options_.eviction_op_cost);
      policy_->NoteEviction(obj, EvictionReason::kPersistedDiscard, worker, now);
    }
  }

  // Phase 2: trigger write-back of dirty outputs; they free memory when the
  // persistor completes (asynchronous, so not counted in `freed`). The
  // in-flight budget (max_inflight_writebacks) bounds the storm a large shrink
  // would otherwise unleash on the RSDS.
  for (const rc::CachedObject& obj : objects) {
    if (!obj.dirty || obj.object_class == rc::ObjectClass::kInput) {
      continue;
    }
    LaunchWriteback(worker, obj.key, /*count_swept=*/false);
  }

  // Phase 3: input objects, in the policy's eviction order (the default lru
  // policy ranks by last_access, the paper's order). Prefer migrating the
  // master copy to a backup node (keeps the object cached, no data transfer);
  // evict when no backup can host it.
  std::vector<rc::CachedObject> inputs;
  for (const rc::CachedObject& obj : objects) {
    if (obj.master == worker && obj.object_class == rc::ObjectClass::kInput) {
      inputs.push_back(obj);
    }
  }
  policy_->RankEvictionCandidates(&inputs, now);
  for (const rc::CachedObject& obj : inputs) {
    if (freed >= needed) {
      break;
    }
    const auto migration = cluster_->MigrateMaster(obj.key);
    if (migration.ok()) {
      freed += obj.size;
      ++*m_.objects_migrated;
      *migrated = true;
      AddScaleDownTime(migration->duration);
      m_.migration_ms->Observe(ToMillis(migration->duration));
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->Span("migrate-master", "cache", loop_->now(), migration->duration,
                     obs::kPidCache, static_cast<std::uint64_t>(worker),
                     {{"key", obj.key}});
      }
      if (FlightOn()) {
        flight_->Record(loop_->now(), obs::FlightEventKind::kMigration, 0, 0, worker,
                        obj.key, "to_" + std::to_string(migration->new_master));
      }
      continue;
    }
    freed += obj.size;
    (void)cluster_->Remove(obj.key);
    ++*m_.objects_evicted;
    *evicted = true;
    AddScaleDownTime(options_.eviction_op_cost);
    policy_->NoteEviction(obj, EvictionReason::kCapacity, worker, now);
  }
  return freed;
}

// ---- Overload protection ------------------------------------------------------------

void CacheAgent::LaunchWriteback(int worker, const std::string& key, bool count_swept) {
  if (!writeback_) {
    return;
  }
  if (options_.max_inflight_writebacks <= 0) {
    // Unbounded legacy path: fire immediately (possibly redundantly — the
    // budget below exists to bound exactly this).
    ++*m_.writebacks_triggered;
    const std::string k = key;
    writeback_(k, [this, k, count_swept](Status status) {
      if (status.ok()) {
        const auto obj = cluster_->Inspect(k);
        (void)cluster_->Remove(k);
        if (count_swept) {
          ++*m_.objects_swept;
        }
        if (obj.ok()) {
          policy_->NoteEviction(*obj,
                                count_swept ? EvictionReason::kSweep
                                            : EvictionReason::kCapacity,
                                obj->master, loop_->now());
        }
      }
    });
    return;
  }
  const std::size_t w = static_cast<std::size_t>(worker);
  if (!writeback_pending_[w].insert(key).second) {
    return;  // Already in flight or queued.
  }
  if (inflight_writebacks_[w] >= options_.max_inflight_writebacks) {
    ++*m_.writebacks_throttled;
    writeback_backlog_[w].push_back(PendingWriteback{key, count_swept});
    return;
  }
  StartWriteback(worker, key, count_swept);
}

void CacheAgent::StartWriteback(int worker, const std::string& key, bool count_swept) {
  const std::size_t w = static_cast<std::size_t>(worker);
  ++inflight_writebacks_[w];
  ++*m_.writebacks_triggered;
  writeback_(key, [this, worker, key, count_swept](Status status) {
    const std::size_t idx = static_cast<std::size_t>(worker);
    --inflight_writebacks_[idx];
    writeback_pending_[idx].erase(key);
    if (status.ok()) {
      const auto obj = cluster_->Inspect(key);
      (void)cluster_->Remove(key);
      if (count_swept) {
        ++*m_.objects_swept;
      }
      if (obj.ok()) {
        policy_->NoteEviction(*obj,
                              count_swept ? EvictionReason::kSweep
                                          : EvictionReason::kCapacity,
                              obj->master, loop_->now());
      }
    }
    DrainWritebackBacklog(worker);
  });
}

void CacheAgent::DrainWritebackBacklog(int worker) {
  const std::size_t w = static_cast<std::size_t>(worker);
  while (!writeback_backlog_[w].empty() &&
         inflight_writebacks_[w] < options_.max_inflight_writebacks) {
    PendingWriteback next = std::move(writeback_backlog_[w].front());
    writeback_backlog_[w].pop_front();
    // The object may have been persisted, evicted or rewritten while queued.
    const auto obj = cluster_->Inspect(next.key);
    if (!obj.ok() || !obj->dirty) {
      writeback_pending_[w].erase(next.key);
      continue;
    }
    StartWriteback(worker, next.key, next.count_swept);
  }
}

bool CacheAgent::UnderPressure(int worker) {
  if (options_.pressure_high_watermark > 1.0) {
    return false;  // Disabled.
  }
  const std::size_t w = static_cast<std::size_t>(worker);
  const Bytes capacity = cluster_->Capacity(worker);
  const Bytes used = cluster_->Used(worker);
  // Capacity 0 with residue still cached (mid-shrink) is full pressure.
  const double ratio = capacity > 0
                           ? static_cast<double>(used) / static_cast<double>(capacity)
                           : (used > 0 ? 1.0 : 0.0);
  if (under_pressure_[w]) {
    if (ratio < options_.pressure_low_watermark) {
      under_pressure_[w] = false;
      pressure_gauges_[w]->Set(0.0);
      if (trace_ != nullptr && trace_->enabled()) {
        trace_->Instant("pressure-exit", "overload", loop_->now(), obs::kPidCache,
                        static_cast<std::uint64_t>(worker));
      }
      if (FlightOn()) {
        flight_->Record(loop_->now(), obs::FlightEventKind::kPressureExit, 0, 0, worker);
      }
    }
  } else if (ratio >= options_.pressure_high_watermark) {
    under_pressure_[w] = true;
    pressure_gauges_[w]->Set(1.0);
    if (trace_ != nullptr && trace_->enabled()) {
      trace_->Instant("pressure-enter", "overload", loop_->now(), obs::kPidCache,
                      static_cast<std::uint64_t>(worker));
    }
    if (FlightOn()) {
      flight_->Record(loop_->now(), obs::FlightEventKind::kPressureEnter, 0, 0, worker);
    }
  }
  return under_pressure_[w];
}

bool CacheAgent::ReleaseForSandbox(int worker, Bytes bytes) {
  const std::size_t w = static_cast<std::size_t>(worker);
  // The monitor needs `bytes` more for sandboxes: permanently move the target
  // down by raising the mirrored reservation (the platform will report the
  // actual sandbox change right after; reconciliation happens in
  // OnSandboxMemoryChange, so here we only make room).
  const Bytes target = std::max<Bytes>(0, CapacityTarget(worker) - bytes);
  const Bytes used = cluster_->Used(worker);
  bool migrated = false;
  bool evicted = false;
  if (used > target) {
    FreeBytes(worker, used - target, &migrated, &evicted);
    if (cluster_->Used(worker) > target) {
      return false;
    }
  }
  SimDuration duration = 0;
  if (!cluster_->SetCapacity(worker, target, &duration).ok()) {
    return false;
  }
  AddScaleDownTime(duration);
  if (migrated) {
    ++*m_.scale_downs_migration;
  } else if (evicted) {
    ++*m_.scale_downs_eviction;
  } else {
    ++*m_.scale_downs_plain;
  }
  (void)w;
  return true;
}

}  // namespace ofc::core
