#include "src/core/ofc_system.h"

#include <algorithm>
#include <cstdlib>

#include "src/common/logging.h"

namespace ofc::core {

namespace {

CacheAgentOptions WithObs(CacheAgentOptions o, obs::MetricsRegistry* metrics,
                          obs::TraceRecorder* trace, obs::FlightRecorder* flight) {
  o.metrics = metrics;
  o.trace = trace;
  o.flight = flight;
  return o;
}

ProxyOptions WithObs(ProxyOptions o, obs::MetricsRegistry* metrics, obs::TraceRecorder* trace,
                     obs::FlightRecorder* flight) {
  o.metrics = metrics;
  o.trace = trace;
  o.flight = flight;
  return o;
}

CacheAgentOptions WithPolicy(CacheAgentOptions o, CachePolicyEngine* policy) {
  o.policy = policy;
  return o;
}

ProxyOptions WithPolicy(ProxyOptions o, CachePolicyEngine* policy) {
  o.policy = policy;
  return o;
}

// Builds the shared policy engine from the options. An invalid spec downgrades
// to the paper-faithful lru default (with a warning) rather than failing the
// whole assembly; ofc-sim validates the flag up front for a hard error.
std::unique_ptr<CachePolicyEngine> MakePolicyEngine(const OfcOptions& options,
                                                    ModelRegistry* registry,
                                                    obs::MetricsRegistry* metrics) {
  CachePolicyEngineOptions engine_options;
  engine_options.config.sweep_min_access = options.cache_agent.sweep_min_access;
  engine_options.config.sweep_max_idle = options.cache_agent.sweep_max_idle;
  engine_options.config.sweep_period = options.cache_agent.sweep_period;
  engine_options.config.store_profile = options.rsds_estimate;
  engine_options.benefit = [registry](const std::string& function) {
    return registry->CachingBenefitConfidence(function);
  };
  engine_options.metrics = metrics;
  engine_options.flight = options.flight;
  auto engine = CachePolicyEngine::Create(options.cache_policy, engine_options);
  if (!engine.ok()) {
    OFC_LOG(Warning) << "invalid cache policy spec '" << options.cache_policy << "' ("
                     << engine.status().message() << "); falling back to lru";
    engine = CachePolicyEngine::Create("lru", engine_options);
  }
  return std::move(*engine);
}

}  // namespace

OfcSystem::OfcSystem(sim::EventLoop* loop, rc::Cluster* cluster, store::ObjectStore* rsds,
                     OfcOptions options)
    : cluster_(cluster),
      options_(options),
      owned_metrics_(options.metrics == nullptr ? std::make_unique<obs::MetricsRegistry>()
                                                : nullptr),
      metrics_(options.metrics != nullptr ? options.metrics : owned_metrics_.get()),
      registry_(options.model),
      predictor_(&registry_, metrics_),
      trainer_(&registry_, options.rsds_estimate, metrics_),
      policy_engine_(MakePolicyEngine(options, &registry_, metrics_)),
      cache_agent_(loop, cluster,
                   WithPolicy(WithObs(options.cache_agent, metrics_, options.trace,
                                      options.flight),
                              policy_engine_.get())),
      proxy_(loop, cluster, rsds,
             WithPolicy(WithObs(options.proxy, metrics_, options.trace, options.flight),
                        policy_engine_.get())) {
  m_.model_predictions = metrics_->GetCounter("ofc.predictor.model_predictions");
  m_.booked_fallbacks = metrics_->GetCounter("ofc.predictor.booked_fallbacks");
  m_.good_predictions = metrics_->GetCounter("ofc.predictor.good_predictions");
  m_.bad_predictions = metrics_->GetCounter("ofc.predictor.bad_predictions");
  cache_agent_.set_writeback([this](const std::string& key, std::function<void(Status)> done) {
    proxy_.Writeback(key, std::move(done));
  });
  // Memory-pressure backpressure: while a worker's cache is shrinking under
  // load, new admissions are deferred rather than queued behind eviction work.
  proxy_.set_admission_gate([this](int worker) {
    return !cache_agent_.UnderPressure(worker);
  });
}

void OfcSystem::Start() {
  cache_agent_.Start();
  proxy_.InstallWebhooks();
}

OfcPredictionStats OfcSystem::prediction_stats() const {
  OfcPredictionStats stats;
  stats.model_predictions = m_.model_predictions->value();
  stats.booked_fallbacks = m_.booked_fallbacks->value();
  stats.good_predictions = m_.good_predictions->value();
  stats.bad_predictions = m_.bad_predictions->value();
  return stats;
}

void OfcSystem::ResetStats() {
  m_.model_predictions->Reset();
  m_.booked_fallbacks->Reset();
  m_.good_predictions->Reset();
  m_.bad_predictions->Reset();
  proxy_.ResetStats();
  cache_agent_.ResetStats();
}

faas::PlatformHooks::Sizing OfcSystem::SizeInvocation(
    const faas::FunctionConfig& fn, const std::vector<faas::InputObject>& inputs,
    const std::vector<double>& args) {
  const workloads::MediaDescriptor media = faas::Platform::AggregateMedia(inputs);
  // The Predictor itself counts model-vs-fallback into the shared registry.
  const Prediction prediction =
      predictor_.Predict(fn.spec, media, args, fn.booked_memory);
  return Sizing{prediction.memory, prediction.should_cache};
}

std::size_t OfcSystem::PickSandbox(const std::vector<faas::SandboxInfo>& candidates,
                                   Bytes wanted_limit,
                                   const std::vector<faas::InputObject>& inputs) {
  if (!options_.locality_routing) {
    return PlatformHooks::PickSandbox(candidates, wanted_limit, inputs);
  }
  // §6.5, decreasing priority: (i) smallest |current - wanted| memory delta,
  // (ii) headroom is enforced by the platform, (iii) data locality with the
  // master cached copy, (iv) most recently used.
  int master = -1;
  if (!inputs.empty()) {
    const auto result = cluster_->MasterOf(inputs.front().key);
    if (result.ok()) {
      master = *result;
    }
  }
  std::size_t best = 0;
  for (std::size_t i = 1; i < candidates.size(); ++i) {
    const auto delta = [&](std::size_t j) {
      return std::llabs(candidates[j].current_limit - wanted_limit);
    };
    if (delta(i) != delta(best)) {
      if (delta(i) < delta(best)) {
        best = i;
      }
      continue;
    }
    const bool i_local = candidates[i].worker == master;
    const bool best_local = candidates[best].worker == master;
    if (i_local != best_local) {
      if (i_local) {
        best = i;
      }
      continue;
    }
    if (candidates[i].last_used > candidates[best].last_used) {
      best = i;
    }
  }
  return best;
}

int OfcSystem::PickWorkerForNewSandbox(const faas::FunctionConfig&,
                                       const std::vector<faas::InputObject>& inputs,
                                       const std::vector<int>& candidates) {
  // §6.5: a new sandbox preferably lands on the node holding the master
  // (in-memory) copy of the requested object.
  if (options_.locality_routing && !inputs.empty()) {
    const auto master = cluster_->MasterOf(inputs.front().key);
    if (master.ok() &&
        std::find(candidates.begin(), candidates.end(), *master) != candidates.end()) {
      return *master;
    }
  }
  return candidates.empty() ? -1 : candidates.front();
}

void OfcSystem::PersistModels(faas::MetadataStore* store,
                              std::function<void(Status)> done) {
  const auto models = registry_.AllModels();
  auto state = std::make_shared<std::pair<std::size_t, Status>>(models.size(), OkStatus());
  if (models.empty()) {
    done(OkStatus());
    return;
  }
  for (const FunctionModel* model : models) {
    const std::string id = "model/" + model->function();
    // Last-writer-wins for the trainer: read the current revision, then put.
    const auto current = store->Stat(id);
    const std::uint64_t revision = current.ok() ? current->revision : 0;
    store->Put(id, model->SerializeState(), revision,
               [state, done](Result<std::uint64_t> put) {
                 if (!put.ok()) {
                   state->second = put.status();
                 }
                 if (--state->first == 0) {
                   done(state->second);
                 }
               });
  }
}

void OfcSystem::LoadModel(faas::MetadataStore* store, const workloads::FunctionSpec& spec,
                          std::function<void(Status)> done) {
  FunctionModel& model = registry_.GetOrCreate(spec);
  store->Get("model/" + spec.name, [&model, done = std::move(done)](Result<faas::Document> doc) {
    if (!doc.ok()) {
      done(doc.status());
      return;
    }
    done(model.RestoreState(doc->body));
  });
}

void OfcSystem::OnSandboxMemoryChange(const faas::SandboxMemoryEvent& event) {
  cache_agent_.OnSandboxMemoryChange(event);
}

bool OfcSystem::TryRaiseMemory(int worker, Bytes current_limit, Bytes needed,
                               SimDuration expected_compute) {
  if (expected_compute < options_.monitor_min_compute) {
    return false;  // Short invocations are not monitored (§5.3.1).
  }
  return cache_agent_.ReleaseForSandbox(worker, needed - current_limit);
}

void OfcSystem::OnInvocationComplete(const faas::FunctionConfig& fn,
                                     const std::vector<faas::InputObject>& inputs,
                                     const std::vector<double>& args,
                                     const faas::InvocationRecord& record) {
  const workloads::MediaDescriptor media = faas::Platform::AggregateMedia(inputs);
  const FunctionModel* model = registry_.Find(fn.spec.name);
  const bool from_model = model != nullptr && model->mature();
  if (from_model) {
    if (record.oom_rescued || record.oom_killed) {
      ++*m_.bad_predictions;
    } else {
      ++*m_.good_predictions;
    }
  }
  trainer_.RecordInvocation(fn.spec, media, args, record.memory_used, record.compute_time,
                            record.input_bytes, record.output_bytes);
}

}  // namespace ofc::core
