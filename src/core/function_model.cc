#include "src/core/function_model.h"

#include <sstream>
#include <utility>

#include "src/common/logging.h"
#include "src/ml/serialization.h"

namespace ofc::core {

namespace {

const std::vector<std::string>& BenefitClassNames() {
  static const std::vector<std::string> kNames = {"no", "yes"};
  return kNames;
}

}  // namespace

FunctionModel::FunctionModel(std::string function, std::vector<ml::Attribute> features,
                             ModelConfig config)
    : function_(std::move(function)), feature_attrs_(std::move(features)), config_(config) {}

std::optional<int> FunctionModel::PredictClass(const std::vector<double>& features) const {
  if (!trained_) {
    return std::nullopt;
  }
  return memory_model_.Predict(features);
}

std::optional<bool> FunctionModel::PredictBenefit(const std::vector<double>& features) const {
  if (!benefit_trained_) {
    return std::nullopt;
  }
  return benefit_model_.Predict(features) == 1;
}

double FunctionModel::BenefitConfidence() const {
  if (!benefit_trained_ || benefit_samples_.empty()) {
    return 0.5;
  }
  std::size_t helpful = 0;
  for (const ml::Instance& inst : benefit_samples_) {
    if (inst.label == 1) {
      ++helpful;
    }
  }
  return static_cast<double>(helpful) / static_cast<double>(benefit_samples_.size());
}

double FunctionModel::eo_rate() const {
  if (recent_evals_.empty()) {
    return 0.0;
  }
  int eo = 0;
  for (const auto& [predicted, truth] : recent_evals_) {
    eo += predicted >= truth;
  }
  return static_cast<double>(eo) / static_cast<double>(recent_evals_.size());
}

double FunctionModel::under_within_one_rate() const {
  int under = 0;
  int within = 0;
  for (const auto& [predicted, truth] : recent_evals_) {
    if (predicted < truth) {
      ++under;
      within += truth - predicted == 1;
    }
  }
  return under == 0 ? 1.0 : static_cast<double>(within) / static_cast<double>(under);
}

void FunctionModel::UpdateMaturity(int predicted, int truth) {
  ++evaluated_;
  recent_evals_.emplace_back(predicted, truth);
  while (recent_evals_.size() > static_cast<std::size_t>(config_.maturity_window)) {
    recent_evals_.pop_front();
  }
  if (!mature_ && observations_ >= config_.maturity_min_invocations &&
      eo_rate() >= config_.maturity_eo_threshold &&
      under_within_one_rate() >= config_.maturity_under_within_one) {
    mature_ = true;
    matured_at_ = observations_;
    OFC_LOG(Info) << function_ << " model matured after " << observations_ << " invocations "
                  << "(EO " << eo_rate() << ", under-within-1 " << under_within_one_rate()
                  << ")";
  }
}

void FunctionModel::Learn(const std::vector<double>& features, Bytes actual_memory,
                          bool benefit_label) {
  ++observations_;
  const int truth = config_.intervals.Label(actual_memory);

  // Shadow-evaluate the current model to drive maturation (§5.3.1) and decide
  // what to retain (§5.3.3).
  std::optional<int> predicted = PredictClass(features);
  if (predicted.has_value()) {
    UpdateMaturity(*predicted, truth);
  }

  bool keep = true;
  double weight = 1.0;
  if (mature_ && predicted.has_value()) {
    const int k = *predicted;
    const bool under = k < truth;
    const bool way_over = k - truth > config_.way_over_threshold;
    keep = under || way_over;
    if (under) {
      weight = config_.under_weight;
    }
  } else if (predicted.has_value() && *predicted < truth) {
    weight = config_.under_weight;
  }

  if (keep) {
    memory_samples_.push_back(ml::Instance{features, truth, weight});
    while (memory_samples_.size() > config_.max_training_set) {
      memory_samples_.pop_front();
    }
    ++new_samples_since_train_;
  }

  benefit_samples_.push_back(ml::Instance{features, benefit_label ? 1 : 0, 1.0});
  while (benefit_samples_.size() > config_.max_training_set) {
    benefit_samples_.pop_front();
  }

  MaybeRetrain();
}

std::string FunctionModel::SerializeState() const {
  std::ostringstream out;
  out << "fnmodel 1 ";
  ml::WriteString(out, function_);
  out << observations_ << ' ' << evaluated_ << ' ' << (mature_ ? 1 : 0) << ' '
      << matured_at_ << ' ' << new_samples_since_train_ << ' ';
  out << recent_evals_.size() << ' ';
  for (const auto& [predicted, truth] : recent_evals_) {
    out << predicted << ' ' << truth << ' ';
  }
  ml::WriteJ48(out, memory_model_);
  ml::WriteJ48(out, benefit_model_);
  // Training sets (schemas first, for instance arity).
  const ml::Schema memory_schema(feature_attrs_, config_.intervals.ClassAttribute());
  ml::WriteSchema(out, memory_schema);
  ml::WriteInstances(out, {memory_samples_.begin(), memory_samples_.end()});
  ml::WriteInstances(out, {benefit_samples_.begin(), benefit_samples_.end()});
  return out.str();
}

Status FunctionModel::RestoreState(const std::string& data) {
  std::istringstream in(data);
  std::string tag;
  int version = 0;
  if (!(in >> tag >> version) || tag != "fnmodel" || version != 1) {
    return InvalidArgumentError("not a fnmodel v1 document");
  }
  auto name = ml::ReadString(in);
  if (!name.ok()) {
    return name.status();
  }
  if (*name != function_) {
    return InvalidArgumentError("model document is for function " + *name);
  }
  int observations = 0;
  int evaluated = 0;
  int mature_flag = 0;
  int matured_at = -1;
  int pending = 0;
  std::size_t eval_count = 0;
  if (!(in >> observations >> evaluated >> mature_flag >> matured_at >> pending >>
        eval_count) ||
      eval_count > (1u << 20)) {
    return InvalidArgumentError("truncated fnmodel counters");
  }
  std::deque<std::pair<int, int>> evals;
  for (std::size_t i = 0; i < eval_count; ++i) {
    int predicted = 0;
    int truth = 0;
    if (!(in >> predicted >> truth)) {
      return InvalidArgumentError("truncated maturity window");
    }
    evals.emplace_back(predicted, truth);
  }
  auto memory_model = ml::ReadJ48(in);
  if (!memory_model.ok()) {
    return memory_model.status();
  }
  auto benefit_model = ml::ReadJ48(in);
  if (!benefit_model.ok()) {
    return benefit_model.status();
  }
  auto schema = ml::ReadSchema(in);
  if (!schema.ok()) {
    return schema.status();
  }
  if (schema->num_features() != feature_attrs_.size()) {
    return InvalidArgumentError("feature arity mismatch in model document");
  }
  auto memory_samples = ml::ReadInstances(in, *schema);
  if (!memory_samples.ok()) {
    return memory_samples.status();
  }
  auto benefit_samples = ml::ReadInstances(in, *schema);
  if (!benefit_samples.ok()) {
    return benefit_samples.status();
  }

  observations_ = observations;
  evaluated_ = evaluated;
  mature_ = mature_flag == 1;
  matured_at_ = matured_at;
  new_samples_since_train_ = pending;
  recent_evals_ = std::move(evals);
  trained_ = memory_model->NumNodes() > 0;
  benefit_trained_ = benefit_model->NumNodes() > 0;
  memory_model_ = std::move(*memory_model);
  benefit_model_ = std::move(*benefit_model);
  memory_samples_.assign(memory_samples->begin(), memory_samples->end());
  benefit_samples_.assign(benefit_samples->begin(), benefit_samples->end());
  return OkStatus();
}

void FunctionModel::MaybeRetrain() {
  const bool first_train =
      !trained_ && static_cast<int>(memory_samples_.size()) >= config_.min_train;
  const bool periodic = trained_ && new_samples_since_train_ >= config_.retrain_every;
  if (!first_train && !periodic) {
    return;
  }
  new_samples_since_train_ = 0;

  // J48 is not incremental (§5.3.3): rebuild both models from the curated sets.
  ml::Dataset memory_data(ml::Schema(feature_attrs_, config_.intervals.ClassAttribute()));
  for (const ml::Instance& inst : memory_samples_) {
    (void)memory_data.Add(inst);
  }
  if (!memory_data.empty()) {
    trained_ = memory_model_.Train(memory_data).ok() || trained_;
  }

  ml::Dataset benefit_data(
      ml::Schema(feature_attrs_, ml::Attribute::Nominal("benefit", BenefitClassNames())));
  for (const ml::Instance& inst : benefit_samples_) {
    (void)benefit_data.Add(inst);
  }
  if (!benefit_data.empty()) {
    benefit_trained_ = benefit_model_.Train(benefit_data).ok() || benefit_trained_;
  }
}

}  // namespace ofc::core
