// Predictor and ModelTrainer (Figure 4): the two ML-facing components of OFC.
//
// The Predictor answers, per invocation and on the critical path, (i) how much
// memory the sandbox needs (M_p) and (ii) whether caching the invocation's
// objects is beneficial (shouldBeCached). The ModelTrainer consumes completion
// reports from the Monitor and keeps the per-function models fresh. Both share
// a ModelRegistry, mirroring the paper's setup where models are stored with the
// function metadata (CouchDB) and fetched on invocation.
#ifndef OFC_CORE_ML_SERVICE_H_
#define OFC_CORE_ML_SERVICE_H_

#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/core/function_model.h"
#include "src/obs/metrics.h"
#include "src/sim/latency.h"
#include "src/store/object_store.h"
#include "src/workloads/functions.h"

namespace ofc::core {

class ModelRegistry {
 public:
  explicit ModelRegistry(ModelConfig config) : config_(config) {}

  // Looks up the model for `spec`, creating a blank one on first sight (models
  // are blank when a function is uploaded, §5.1.1).
  FunctionModel& GetOrCreate(const workloads::FunctionSpec& spec);
  FunctionModel* Find(const std::string& function);
  const FunctionModel* Find(const std::string& function) const;
  const ModelConfig& config() const { return config_; }

  // Per-function caching-benefit confidence for the cost-aware cache policy:
  // the function's FunctionModel::BenefitConfidence(), or 0.5 (no opinion)
  // while the model is unknown or immature.
  double CachingBenefitConfidence(const std::string& function) const;

  std::vector<const FunctionModel*> AllModels() const;

 private:
  ModelConfig config_;
  std::map<std::string, std::unique_ptr<FunctionModel>> models_;
};

struct Prediction {
  Bytes memory = 0;           // Sandbox allocation (conservative upper bound).
  bool should_cache = false;  // Caching-benefit call (§5.2).
  bool from_model = false;    // False: immature model, booked memory returned.
};

class Predictor {
 public:
  // `metrics` (optional): registers `ofc.predictor.model_predictions` /
  // `ofc.predictor.booked_fallbacks`, bumped per Predict() call.
  explicit Predictor(ModelRegistry* registry, obs::MetricsRegistry* metrics = nullptr)
      : registry_(registry) {
    if (metrics != nullptr) {
      model_predictions_ = metrics->GetCounter("ofc.predictor.model_predictions");
      booked_fallbacks_ = metrics->GetCounter("ofc.predictor.booked_fallbacks");
    }
  }

  // Critical-path prediction. Falls back to `booked` until the function's
  // model is mature (§5.3.1); the benefit model is subordinated to the memory
  // model's maturity (§7.1.3).
  Prediction Predict(const workloads::FunctionSpec& spec,
                     const workloads::MediaDescriptor& media, const std::vector<double>& args,
                     Bytes booked);

 private:
  ModelRegistry* registry_;
  obs::Counter* model_predictions_ = nullptr;  // Null when metrics not wired.
  obs::Counter* booked_fallbacks_ = nullptr;
};

class ModelTrainer {
 public:
  // `rsds_estimate` prices what E (read) and L (write) would cost against the
  // remote store; the benefit label is (E + L) / (E + T + L) > 0.5 (§5.2).
  // `metrics` (optional): registers `ofc.trainer.samples` /
  // `ofc.trainer.models_matured`.
  ModelTrainer(ModelRegistry* registry, store::StoreProfile rsds_estimate,
               obs::MetricsRegistry* metrics = nullptr)
      : registry_(registry), rsds_estimate_(rsds_estimate) {
    if (metrics != nullptr) {
      samples_ = metrics->GetCounter("ofc.trainer.samples");
      models_matured_ = metrics->GetCounter("ofc.trainer.models_matured");
    }
  }

  // Completion feedback from the Monitor: actual peak memory (cgroup), the
  // measured transform time, and the observed input/output sizes.
  void RecordInvocation(const workloads::FunctionSpec& spec,
                        const workloads::MediaDescriptor& media,
                        const std::vector<double>& args, Bytes actual_memory,
                        SimDuration compute_time, Bytes input_bytes, Bytes output_bytes);

  // Offline pretraining from a synthetic invocation trace (the artifact ships
  // offline ML scripts and initial datasets; used to warm up macro workloads).
  void Pretrain(const workloads::FunctionSpec& spec, int invocations, Rng& rng);

 private:
  ModelRegistry* registry_;
  store::StoreProfile rsds_estimate_;
  obs::Counter* samples_ = nullptr;  // Null when metrics not wired.
  obs::Counter* models_matured_ = nullptr;
};

}  // namespace ofc::core

#endif  // OFC_CORE_ML_SERVICE_H_
