// Proxy + rclib (§4, §6.2): OFC's transparent data-plane interposition.
//
// Reads and writes issued by function code are captured here and redirected to
// the RAMCloud cache, with the RSDS kept consistent:
//
//   * Read: cache hit (local or remote master) -> serve from RAM. Miss -> read
//     from the RSDS, then admit the object into the cache off the critical
//     path, when the benefit model said caching helps and the object fits.
//   * Write (cached): a *shadow object* — an empty-payload placeholder with a
//     new version number — is created synchronously in the RSDS while the
//     payload is written (durably, i.e. replicated) into RAMCloud; the write
//     is acknowledged when both complete. A *persistor* helper function then
//     pushes the payload to the RSDS asynchronously; version numbers enforce
//     in-order propagation. This write-back mechanism is constant-cost in the
//     output size and "always beneficial even for small payloads".
//   * Pipeline intermediates are cached but never persisted; the whole set is
//     dropped when the pipeline completes (§6.3).
//   * Final outputs are dropped from the cache as soon as they are written
//     back (§6.3).
//   * External (non-FaaS) clients keep strong consistency via the RSDS
//     webhooks: external reads of a shadow object block until a boosted
//     persistor catches up; external writes invalidate the cached copy first.
#ifndef OFC_CORE_PROXY_H_
#define OFC_CORE_PROXY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/checksum.h"
#include "src/common/hash.h"
#include "src/core/cache_policy.h"
#include "src/faas/platform.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"
#include "src/store/object_store.h"

namespace ofc::core {

struct ProxyOptions {
  Bytes max_cacheable_size = MiB(10);  // §6.3 admission cap.
  // Scheduling cost of the persistor helper function (an empty-function pass
  // through the platform, §6.4's ~8 ms end-to-end).
  SimDuration persistor_dispatch = Millis(8);
  // When false, tenants opted out of transparent consistency (§6.2 last
  // paragraph): no shadow objects, writes propagate lazily on eviction only.
  bool transparent_consistency = true;
  // §6.2 write-back: acknowledge after shadow + durable cache write, persist
  // asynchronously. Disabling it (ablation) writes the full payload to the
  // RSDS synchronously (the cache still serves subsequent reads).
  bool write_back = true;
  // ---- Degradation path (fault tolerance) --------------------------------------
  // When the RSDS reports kUnavailable the proxy retries with a deterministic
  // exponential backoff (base * 2^attempt, no jitter — replays stay
  // byte-identical) bounded by a per-operation deadline. Reads that exhaust the
  // budget fail with kDeadlineExceeded (a read that never had retry budget —
  // deadline 0 or a backoff that already overshoots — surfaces the store's own
  // kUnavailable unchanged); acknowledged writes instead fall back to the
  // durable (replicated) cache copy and converge through persistor retries once
  // the store heals. The degraded push is a compare-and-swap against the store
  // version observed at ack time, so a stale fallback can never clobber a write
  // acknowledged later.
  SimDuration rsds_deadline = Seconds(10);      // Per-read deadline; 0 disables retries.
  int rsds_max_retries = 6;                     // Read-path retry budget.
  SimDuration rsds_retry_backoff = Millis(50);  // Base; doubles per attempt.
  int persistor_max_retries = 20;               // Persistor push retry budget.
  SimDuration persistor_retry_backoff = Millis(250);
  // ---- Cache-path circuit breaker (overload protection) --------------------------
  // After `breaker_failure_threshold` consecutive cache-path failures — cluster
  // errors other than a plain miss or capacity rejection, or (when
  // `breaker_latency_slo` > 0) hits slower than the SLO — the breaker opens:
  // reads and writes bypass the cache straight to the RSDS for
  // `breaker_open_duration`, exactly the no-cache baseline path. The breaker
  // then goes half-open and admits probe operations through the cache;
  // `breaker_half_open_probes` consecutive successes re-close it, any probe
  // failure re-opens. Threshold 0 disables the breaker entirely (default).
  int breaker_failure_threshold = 0;
  SimDuration breaker_latency_slo = 0;  // 0 = latency never counts as failure.
  SimDuration breaker_open_duration = Seconds(5);
  int breaker_half_open_probes = 3;
  // Observability sinks (src/obs/). Null `metrics` -> private registry; null
  // `trace` -> persistor/webhook events are skipped; null `flight` -> black-box
  // cache/persistor records are skipped.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  obs::FlightRecorder* flight = nullptr;
  // Cache policy engine (cache_policy.h) fed with data-plane lifecycle events:
  // admissions and cached writes (OnAdmit), hits (OnAccess), and proxy-driven
  // removals (OnRemove). Null (default): notifications are skipped — the lru
  // policy needs none of them, so standalone proxies lose nothing.
  CachePolicyEngine* policy = nullptr;
};

// Snapshot view over the proxy's `ofc.proxy.*` registry counters.
struct ProxyStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t admissions = 0;
  std::uint64_t admission_failures = 0;
  std::uint64_t shadow_writes = 0;
  std::uint64_t cached_writes = 0;
  std::uint64_t direct_writes = 0;
  std::uint64_t persistor_runs = 0;
  std::uint64_t persistor_conflicts = 0;  // Out-of-order pushes skipped.
  std::uint64_t intermediates_cached = 0;
  std::uint64_t intermediates_dropped = 0;
  std::uint64_t external_read_boosts = 0;
  std::uint64_t external_write_invalidations = 0;
  std::uint64_t fallback_writes = 0;       // Acked from the cache during an outage.
  std::uint64_t rsds_retries = 0;          // Read-path retries after kUnavailable.
  std::uint64_t read_deadlines = 0;        // Reads that exhausted the retry budget.
  std::uint64_t persistor_retries = 0;     // Re-dispatched persistor pushes.
  std::uint64_t persistor_drops = 0;       // Dispatches lost to fault injection.
  std::uint64_t persistor_abandons = 0;    // Retry budget exhausted (stays dirty).
  std::uint64_t breaker_opens = 0;           // Closed/half-open -> open trips.
  std::uint64_t breaker_closes = 0;          // Half-open -> closed recoveries.
  std::uint64_t breaker_probes = 0;          // Operations admitted half-open.
  std::uint64_t breaker_probe_failures = 0;  // Probes that re-opened the breaker.
  std::uint64_t breaker_bypassed_reads = 0;  // Reads served RSDS-direct while open.
  std::uint64_t breaker_bypassed_writes = 0; // Writes sent RSDS-direct while open.
  std::uint64_t admission_deferred = 0;      // Admissions skipped under memory pressure.
  std::uint64_t corrupt_acked = 0;           // I6 tripwire: must stay 0 forever.
  std::uint64_t reread_from_rsds = 0;        // Cache data loss healed via RSDS re-read.

  double HitRatio() const {
    const double total = static_cast<double>(cache_hits + cache_misses);
    return total <= 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

class Proxy : public faas::DataService {
 public:
  Proxy(sim::EventLoop* loop, rc::Cluster* cluster, store::ObjectStore* rsds,
        ProxyOptions options);

  // Installs the read/write webhooks on the RSDS (§6.2).
  void InstallWebhooks();

  // ---- faas::DataService --------------------------------------------------------

  void Read(const faas::InvocationContext& ctx, const std::string& key,
            std::function<void(Result<Bytes>)> done) override;
  void Write(const faas::InvocationContext& ctx, const std::string& key, Bytes size,
             const workloads::MediaDescriptor& media,
             std::function<void(Status)> done) override;
  void OnPipelineComplete(std::uint64_t pipeline_id) override;

  // ---- CacheAgent integration ----------------------------------------------------

  // Pushes a dirty cached object's payload to the RSDS (persistor boost). The
  // callback fires once the RSDS holds the payload (object stays cached; the
  // caller decides whether to drop it).
  void Writeback(const std::string& key, std::function<void(Status)> done);

  // ---- Fault-injection hooks (src/fault/) ----------------------------------------

  // Persistor dispatches that fire before `until` are lost (the helper function
  // crashed mid-flight); the proxy's bounded retry re-launches them, so
  // acknowledged writes still converge after the window closes. Windows nest:
  // an overlapping window that ends earlier must not shorten a longer one
  // still in force (mirrors the injector's depth counters).
  void InjectPersistorDropUntil(SimTime until) {
    if (until > persistor_drop_until_) {
      persistor_drop_until_ = until;
    }
  }

  // Cache-path degradation: cluster reads/writes issued before `until` fail
  // with kUnavailable without touching the cluster, as if the local RAMCloud
  // ensemble had gone sick. The circuit breaker observes these failures and
  // trips; data keeps flowing via the RSDS. Windows nest like persistor drops.
  void InjectCacheFaultUntil(SimTime until) {
    if (until > cache_fault_until_) {
      cache_fault_until_ = until;
    }
  }

  // ---- Overload protection -------------------------------------------------------

  enum class BreakerState { kClosed, kOpen, kHalfOpen };
  BreakerState breaker_state() const { return breaker_; }

  // Admission gate consulted before a read miss populates the cache; OfcSystem
  // wires it to the CacheAgent's memory-pressure watermarks so admissions are
  // deferred (counted, not queued) while the worker's cache shrinks under
  // pressure. Null (default) admits everything.
  using AdmissionGate = std::function<bool(int worker)>;
  void set_admission_gate(AdmissionGate gate) { admission_gate_ = std::move(gate); }

  // Assembled on demand from the metrics registry.
  ProxyStats stats() const;
  void ResetStats();
  obs::MetricsRegistry& metrics() { return *metrics_; }

 private:
  // Registry cells behind ProxyStats; bumped through cached pointers.
  struct Metrics {
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* admissions = nullptr;
    obs::Counter* admission_failures = nullptr;
    obs::Counter* shadow_writes = nullptr;
    obs::Counter* cached_writes = nullptr;
    obs::Counter* direct_writes = nullptr;
    obs::Counter* persistor_runs = nullptr;
    obs::Counter* persistor_conflicts = nullptr;
    obs::Counter* intermediates_cached = nullptr;
    obs::Counter* intermediates_dropped = nullptr;
    obs::Counter* external_read_boosts = nullptr;
    obs::Counter* external_write_invalidations = nullptr;
    obs::Counter* fallback_writes = nullptr;
    obs::Counter* rsds_retries = nullptr;
    obs::Counter* read_deadlines = nullptr;
    obs::Counter* persistor_retries = nullptr;
    obs::Counter* persistor_drops = nullptr;
    obs::Counter* persistor_abandons = nullptr;
    obs::Counter* breaker_opens = nullptr;
    obs::Counter* breaker_closes = nullptr;
    obs::Counter* breaker_probes = nullptr;
    obs::Counter* breaker_probe_failures = nullptr;
    obs::Counter* breaker_bypassed_reads = nullptr;
    obs::Counter* breaker_bypassed_writes = nullptr;
    obs::Counter* admission_deferred = nullptr;
    obs::Counter* corrupt_acked = nullptr;
    obs::Counter* reread_from_rsds = nullptr;
    obs::Gauge* breaker_state = nullptr;        // 0 closed / 1 open / 2 half-open.
    obs::Gauge* breaker_open_time_us = nullptr; // Cumulative open time (on exit).
    obs::Series* persistor_ms = nullptr;  // Dispatch to RSDS-converged latency.
  };
  // Per-function hit/miss label cells, cached for the hot read path.
  struct FnMetrics {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
  };
  FnMetrics& FnMetricsFor(const std::string& function);
  // Fast path keyed on ctx.fn_index (the platform's dense function index).
  // Unlike the platform the proxy cannot trust the index alone — contexts may
  // be hand-built by tests or come from a foreign platform — so each cached
  // slot revalidates the function name and falls back to the map on mismatch.
  FnMetrics& FnMetricsForCtx(const faas::InvocationContext& ctx);
  struct IndexedFnCells {
    std::string function;
    FnMetrics* cells = nullptr;
  };
  // Bounds fn_index-cache growth against absurd indices (slots are ~48 bytes).
  static constexpr std::uint32_t kMaxFnIndexCache = 1u << 16;

  // One pending write-back. `version` 0 means the write degraded during an
  // outage and never got a shadow; `fallback_base` then carries the store
  // version observed at ack time, so the eventual push is a compare-and-swap
  // (PutIfVersion) instead of a blind Put that could clobber a write
  // acknowledged after the store healed. `epoch` is the key's write_epoch_ at
  // ack time: a persistor whose epoch went stale must not touch the cached
  // copy (a newer acknowledged write owns it now).
  struct PersistorJob {
    std::string key;
    store::ObjectVersion version = 0;
    Bytes size = 0;
    bool drop_after = false;
    store::ObjectVersion fallback_base = 0;  // Meaningful when version == 0.
    std::uint64_t epoch = 0;
    // Payload fingerprint stamped when the write was acknowledged; the RSDS
    // verifies it at landing so a payload damaged in the cache after ack is
    // rejected (kDataLoss) instead of silently persisted.
    Checksum checksum = 0;
    // Invocation whose write spawned this job; links the persistor chain back
    // to its causal parent in the flight recorder (0 = cache-agent writeback).
    std::uint64_t invocation_id = 0;
  };

  // Deterministic exponential backoff: base * 2^attempt, capped at 30 s.
  SimDuration Backoff(SimDuration base, int attempt) const;
  // RSDS Get with bounded kUnavailable retries; `deadline` is absolute.
  void GetWithRetry(const std::string& key, SimTime deadline, int attempt,
                    store::ObjectStore::MetaCallback done);
  void SchedulePersistor(PersistorJob job, int attempt = 0);
  // Persistor body: drop-window check, then the payload push.
  void RunPersistor(PersistorJob job, SimTime scheduled, int attempt);
  void RetryPersistor(PersistorJob job, int attempt);
  // True while `job` still represents the newest acknowledged write for its
  // key — only then may its persistor mark the cached copy clean or drop it.
  bool EpochCurrent(const PersistorJob& job) const;
  void HandleExternalRead(const std::string& key, std::function<void()> resume);
  void HandleExternalWrite(const std::string& key, std::function<void()> resume);

  // ---- Circuit breaker (see ProxyOptions) -----------------------------------------
  bool BreakerEnabled() const { return options_.breaker_failure_threshold > 0; }
  bool CacheFaulted() const { return loop_->now() < cache_fault_until_; }
  // True when cache-path operations must bypass the cluster entirely. Drives
  // the open -> half-open transition lazily off the simulated clock and counts
  // probes admitted while half-open.
  bool BreakerBypasses();
  // Reports one cache-path outcome to the breaker state machine.
  void BreakerReport(bool success);
  void BreakerTrip();
  void BreakerClose();
  void TraceBreaker(const char* what);
  // A capacity rejection is a healthy cache saying "full" (backpressure owns
  // that), not a sick cache path; only other errors feed the breaker.
  static bool WriteHealthy(const Status& status) {
    return status.ok() || status.code() == StatusCode::kResourceExhausted;
  }
  // Cluster entry points with the injected cache-fault window applied: inside
  // the window every operation fails with kUnavailable without touching the
  // cluster (so a sick cache never absorbs or serves data).
  void CacheRead(int worker, const std::string& key, rc::Cluster::ReadCallback done);
  void CacheWrite(int worker, const std::string& key, Bytes size,
                  store::ObjectVersion version, rc::ObjectClass object_class, bool dirty,
                  rc::Cluster::Callback done);

  // Policy-engine notification helpers; no-ops when no engine is wired.
  void PolicyAdmit(const std::string& key, Bytes size, const std::string& function);
  void PolicyAccess(const std::string& key, Bytes size, const std::string& function);
  void PolicyRemove(const std::string& key);

  sim::EventLoop* loop_;
  rc::Cluster* cluster_;
  store::ObjectStore* rsds_;
  ProxyOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // When none injected.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  bool FlightOn() const { return flight_ != nullptr && flight_->enabled(); }
  SimTime persistor_drop_until_ = 0;  // Fault injection: dispatches before this are lost.
  SimTime cache_fault_until_ = 0;     // Fault injection: cluster ops before this fail.
  // Circuit-breaker state (all transitions are clock/counter-driven, so
  // same-seed replays take identical paths).
  BreakerState breaker_ = BreakerState::kClosed;
  int breaker_failures_ = 0;   // Consecutive failures while closed.
  int breaker_successes_ = 0;  // Consecutive probe successes while half-open.
  SimTime breaker_open_until_ = 0;
  SimTime breaker_opened_at_ = 0;
  AdmissionGate admission_gate_;
  Metrics m_;
  // Ordered: ResetStats() and future per-function exports iterate this map, so
  // its order must not depend on hashing.
  std::map<std::string, FnMetrics> fn_metrics_;
  std::vector<IndexedFnCells> fn_metrics_by_index_;  // ctx.fn_index fast path.
  // Intermediate objects written per in-flight pipeline (§6.3 cleanup). Looked
  // up by id, never iterated; salted hashing keeps that honest under test.
  std::unordered_map<std::uint64_t, std::vector<std::string>, DetHash<std::uint64_t>>
      pipeline_intermediates_;
  // Monotonic id handed to each acknowledged write-back; the per-key entry
  // remembers the newest (entries are never erased, so ids never repeat and a
  // stale persistor can never alias a fresh write). Looked up by key, never
  // iterated.
  std::uint64_t next_write_epoch_ = 1;
  std::unordered_map<std::string, std::uint64_t, DetHash<std::string>> write_epoch_;
};

}  // namespace ofc::core

#endif  // OFC_CORE_PROXY_H_
