// Proxy + rclib (§4, §6.2): OFC's transparent data-plane interposition.
//
// Reads and writes issued by function code are captured here and redirected to
// the RAMCloud cache, with the RSDS kept consistent:
//
//   * Read: cache hit (local or remote master) -> serve from RAM. Miss -> read
//     from the RSDS, then admit the object into the cache off the critical
//     path, when the benefit model said caching helps and the object fits.
//   * Write (cached): a *shadow object* — an empty-payload placeholder with a
//     new version number — is created synchronously in the RSDS while the
//     payload is written (durably, i.e. replicated) into RAMCloud; the write
//     is acknowledged when both complete. A *persistor* helper function then
//     pushes the payload to the RSDS asynchronously; version numbers enforce
//     in-order propagation. This write-back mechanism is constant-cost in the
//     output size and "always beneficial even for small payloads".
//   * Pipeline intermediates are cached but never persisted; the whole set is
//     dropped when the pipeline completes (§6.3).
//   * Final outputs are dropped from the cache as soon as they are written
//     back (§6.3).
//   * External (non-FaaS) clients keep strong consistency via the RSDS
//     webhooks: external reads of a shadow object block until a boosted
//     persistor catches up; external writes invalidate the cached copy first.
#ifndef OFC_CORE_PROXY_H_
#define OFC_CORE_PROXY_H_

#include <functional>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/faas/platform.h"
#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"
#include "src/store/object_store.h"

namespace ofc::core {

struct ProxyOptions {
  Bytes max_cacheable_size = MiB(10);  // §6.3 admission cap.
  // Scheduling cost of the persistor helper function (an empty-function pass
  // through the platform, §6.4's ~8 ms end-to-end).
  SimDuration persistor_dispatch = Millis(8);
  // When false, tenants opted out of transparent consistency (§6.2 last
  // paragraph): no shadow objects, writes propagate lazily on eviction only.
  bool transparent_consistency = true;
  // §6.2 write-back: acknowledge after shadow + durable cache write, persist
  // asynchronously. Disabling it (ablation) writes the full payload to the
  // RSDS synchronously (the cache still serves subsequent reads).
  bool write_back = true;
};

struct ProxyStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t admissions = 0;
  std::uint64_t admission_failures = 0;
  std::uint64_t shadow_writes = 0;
  std::uint64_t cached_writes = 0;
  std::uint64_t direct_writes = 0;
  std::uint64_t persistor_runs = 0;
  std::uint64_t persistor_conflicts = 0;  // Out-of-order pushes skipped.
  std::uint64_t intermediates_cached = 0;
  std::uint64_t intermediates_dropped = 0;
  std::uint64_t external_read_boosts = 0;
  std::uint64_t external_write_invalidations = 0;

  double HitRatio() const {
    const double total = static_cast<double>(cache_hits + cache_misses);
    return total <= 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

class Proxy : public faas::DataService {
 public:
  Proxy(sim::EventLoop* loop, rc::Cluster* cluster, store::ObjectStore* rsds,
        ProxyOptions options);

  // Installs the read/write webhooks on the RSDS (§6.2).
  void InstallWebhooks();

  // ---- faas::DataService --------------------------------------------------------

  void Read(const faas::InvocationContext& ctx, const std::string& key,
            std::function<void(Result<Bytes>)> done) override;
  void Write(const faas::InvocationContext& ctx, const std::string& key, Bytes size,
             const workloads::MediaDescriptor& media,
             std::function<void(Status)> done) override;
  void OnPipelineComplete(std::uint64_t pipeline_id) override;

  // ---- CacheAgent integration ----------------------------------------------------

  // Pushes a dirty cached object's payload to the RSDS (persistor boost). The
  // callback fires once the RSDS holds the payload (object stays cached; the
  // caller decides whether to drop it).
  void Writeback(const std::string& key, std::function<void(Status)> done);

  const ProxyStats& stats() const { return stats_; }
  void ResetStats() { stats_ = {}; }

 private:
  void SchedulePersistor(const std::string& key, store::ObjectVersion version, Bytes size,
                         bool drop_after);
  void HandleExternalRead(const std::string& key, std::function<void()> resume);
  void HandleExternalWrite(const std::string& key, std::function<void()> resume);

  sim::EventLoop* loop_;
  rc::Cluster* cluster_;
  store::ObjectStore* rsds_;
  ProxyOptions options_;
  ProxyStats stats_;
  // Intermediate objects written per in-flight pipeline (§6.3 cleanup).
  std::unordered_map<std::uint64_t, std::vector<std::string>> pipeline_intermediates_;
};

}  // namespace ofc::core

#endif  // OFC_CORE_PROXY_H_
