// Proxy + rclib (§4, §6.2): OFC's transparent data-plane interposition.
//
// Reads and writes issued by function code are captured here and redirected to
// the RAMCloud cache, with the RSDS kept consistent:
//
//   * Read: cache hit (local or remote master) -> serve from RAM. Miss -> read
//     from the RSDS, then admit the object into the cache off the critical
//     path, when the benefit model said caching helps and the object fits.
//   * Write (cached): a *shadow object* — an empty-payload placeholder with a
//     new version number — is created synchronously in the RSDS while the
//     payload is written (durably, i.e. replicated) into RAMCloud; the write
//     is acknowledged when both complete. A *persistor* helper function then
//     pushes the payload to the RSDS asynchronously; version numbers enforce
//     in-order propagation. This write-back mechanism is constant-cost in the
//     output size and "always beneficial even for small payloads".
//   * Pipeline intermediates are cached but never persisted; the whole set is
//     dropped when the pipeline completes (§6.3).
//   * Final outputs are dropped from the cache as soon as they are written
//     back (§6.3).
//   * External (non-FaaS) clients keep strong consistency via the RSDS
//     webhooks: external reads of a shadow object block until a boosted
//     persistor catches up; external writes invalidate the cached copy first.
#ifndef OFC_CORE_PROXY_H_
#define OFC_CORE_PROXY_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/faas/platform.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"
#include "src/store/object_store.h"

namespace ofc::core {

struct ProxyOptions {
  Bytes max_cacheable_size = MiB(10);  // §6.3 admission cap.
  // Scheduling cost of the persistor helper function (an empty-function pass
  // through the platform, §6.4's ~8 ms end-to-end).
  SimDuration persistor_dispatch = Millis(8);
  // When false, tenants opted out of transparent consistency (§6.2 last
  // paragraph): no shadow objects, writes propagate lazily on eviction only.
  bool transparent_consistency = true;
  // §6.2 write-back: acknowledge after shadow + durable cache write, persist
  // asynchronously. Disabling it (ablation) writes the full payload to the
  // RSDS synchronously (the cache still serves subsequent reads).
  bool write_back = true;
  // ---- Degradation path (fault tolerance) --------------------------------------
  // When the RSDS reports kUnavailable the proxy retries with a deterministic
  // exponential backoff (base * 2^attempt, no jitter — replays stay
  // byte-identical) bounded by a per-operation deadline. Reads that exhaust the
  // budget fail with kDeadlineExceeded (a read that never had retry budget —
  // deadline 0 or a backoff that already overshoots — surfaces the store's own
  // kUnavailable unchanged); acknowledged writes instead fall back to the
  // durable (replicated) cache copy and converge through persistor retries once
  // the store heals. The degraded push is a compare-and-swap against the store
  // version observed at ack time, so a stale fallback can never clobber a write
  // acknowledged later.
  SimDuration rsds_deadline = Seconds(10);      // Per-read deadline; 0 disables retries.
  int rsds_max_retries = 6;                     // Read-path retry budget.
  SimDuration rsds_retry_backoff = Millis(50);  // Base; doubles per attempt.
  int persistor_max_retries = 20;               // Persistor push retry budget.
  SimDuration persistor_retry_backoff = Millis(250);
  // Observability sinks (src/obs/). Null `metrics` -> private registry; null
  // `trace` -> persistor/webhook events are skipped.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
};

// Snapshot view over the proxy's `ofc.proxy.*` registry counters.
struct ProxyStats {
  std::uint64_t cache_hits = 0;
  std::uint64_t cache_misses = 0;
  std::uint64_t admissions = 0;
  std::uint64_t admission_failures = 0;
  std::uint64_t shadow_writes = 0;
  std::uint64_t cached_writes = 0;
  std::uint64_t direct_writes = 0;
  std::uint64_t persistor_runs = 0;
  std::uint64_t persistor_conflicts = 0;  // Out-of-order pushes skipped.
  std::uint64_t intermediates_cached = 0;
  std::uint64_t intermediates_dropped = 0;
  std::uint64_t external_read_boosts = 0;
  std::uint64_t external_write_invalidations = 0;
  std::uint64_t fallback_writes = 0;       // Acked from the cache during an outage.
  std::uint64_t rsds_retries = 0;          // Read-path retries after kUnavailable.
  std::uint64_t read_deadlines = 0;        // Reads that exhausted the retry budget.
  std::uint64_t persistor_retries = 0;     // Re-dispatched persistor pushes.
  std::uint64_t persistor_drops = 0;       // Dispatches lost to fault injection.
  std::uint64_t persistor_abandons = 0;    // Retry budget exhausted (stays dirty).

  double HitRatio() const {
    const double total = static_cast<double>(cache_hits + cache_misses);
    return total <= 0 ? 0.0 : static_cast<double>(cache_hits) / total;
  }
};

class Proxy : public faas::DataService {
 public:
  Proxy(sim::EventLoop* loop, rc::Cluster* cluster, store::ObjectStore* rsds,
        ProxyOptions options);

  // Installs the read/write webhooks on the RSDS (§6.2).
  void InstallWebhooks();

  // ---- faas::DataService --------------------------------------------------------

  void Read(const faas::InvocationContext& ctx, const std::string& key,
            std::function<void(Result<Bytes>)> done) override;
  void Write(const faas::InvocationContext& ctx, const std::string& key, Bytes size,
             const workloads::MediaDescriptor& media,
             std::function<void(Status)> done) override;
  void OnPipelineComplete(std::uint64_t pipeline_id) override;

  // ---- CacheAgent integration ----------------------------------------------------

  // Pushes a dirty cached object's payload to the RSDS (persistor boost). The
  // callback fires once the RSDS holds the payload (object stays cached; the
  // caller decides whether to drop it).
  void Writeback(const std::string& key, std::function<void(Status)> done);

  // ---- Fault-injection hooks (src/fault/) ----------------------------------------

  // Persistor dispatches that fire before `until` are lost (the helper function
  // crashed mid-flight); the proxy's bounded retry re-launches them, so
  // acknowledged writes still converge after the window closes. Windows nest:
  // an overlapping window that ends earlier must not shorten a longer one
  // still in force (mirrors the injector's depth counters).
  void InjectPersistorDropUntil(SimTime until) {
    if (until > persistor_drop_until_) {
      persistor_drop_until_ = until;
    }
  }

  // Assembled on demand from the metrics registry.
  ProxyStats stats() const;
  void ResetStats();
  obs::MetricsRegistry& metrics() { return *metrics_; }

 private:
  // Registry cells behind ProxyStats; bumped through cached pointers.
  struct Metrics {
    obs::Counter* cache_hits = nullptr;
    obs::Counter* cache_misses = nullptr;
    obs::Counter* admissions = nullptr;
    obs::Counter* admission_failures = nullptr;
    obs::Counter* shadow_writes = nullptr;
    obs::Counter* cached_writes = nullptr;
    obs::Counter* direct_writes = nullptr;
    obs::Counter* persistor_runs = nullptr;
    obs::Counter* persistor_conflicts = nullptr;
    obs::Counter* intermediates_cached = nullptr;
    obs::Counter* intermediates_dropped = nullptr;
    obs::Counter* external_read_boosts = nullptr;
    obs::Counter* external_write_invalidations = nullptr;
    obs::Counter* fallback_writes = nullptr;
    obs::Counter* rsds_retries = nullptr;
    obs::Counter* read_deadlines = nullptr;
    obs::Counter* persistor_retries = nullptr;
    obs::Counter* persistor_drops = nullptr;
    obs::Counter* persistor_abandons = nullptr;
    obs::Series* persistor_ms = nullptr;  // Dispatch to RSDS-converged latency.
  };
  // Per-function hit/miss label cells, cached for the hot read path.
  struct FnMetrics {
    obs::Counter* hits = nullptr;
    obs::Counter* misses = nullptr;
  };
  FnMetrics& FnMetricsFor(const std::string& function);

  // One pending write-back. `version` 0 means the write degraded during an
  // outage and never got a shadow; `fallback_base` then carries the store
  // version observed at ack time, so the eventual push is a compare-and-swap
  // (PutIfVersion) instead of a blind Put that could clobber a write
  // acknowledged after the store healed. `epoch` is the key's write_epoch_ at
  // ack time: a persistor whose epoch went stale must not touch the cached
  // copy (a newer acknowledged write owns it now).
  struct PersistorJob {
    std::string key;
    store::ObjectVersion version = 0;
    Bytes size = 0;
    bool drop_after = false;
    store::ObjectVersion fallback_base = 0;  // Meaningful when version == 0.
    std::uint64_t epoch = 0;
  };

  // Deterministic exponential backoff: base * 2^attempt, capped at 30 s.
  SimDuration Backoff(SimDuration base, int attempt) const;
  // RSDS Get with bounded kUnavailable retries; `deadline` is absolute.
  void GetWithRetry(const std::string& key, SimTime deadline, int attempt,
                    store::ObjectStore::MetaCallback done);
  void SchedulePersistor(PersistorJob job, int attempt = 0);
  // Persistor body: drop-window check, then the payload push.
  void RunPersistor(PersistorJob job, SimTime scheduled, int attempt);
  void RetryPersistor(PersistorJob job, int attempt);
  // True while `job` still represents the newest acknowledged write for its
  // key — only then may its persistor mark the cached copy clean or drop it.
  bool EpochCurrent(const PersistorJob& job) const;
  void HandleExternalRead(const std::string& key, std::function<void()> resume);
  void HandleExternalWrite(const std::string& key, std::function<void()> resume);

  sim::EventLoop* loop_;
  rc::Cluster* cluster_;
  store::ObjectStore* rsds_;
  ProxyOptions options_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // When none injected.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  SimTime persistor_drop_until_ = 0;  // Fault injection: dispatches before this are lost.
  Metrics m_;
  // Ordered: ResetStats() and future per-function exports iterate this map, so
  // its order must not depend on hashing.
  std::map<std::string, FnMetrics> fn_metrics_;
  // Intermediate objects written per in-flight pipeline (§6.3 cleanup). Looked
  // up by id, never iterated; salted hashing keeps that honest under test.
  std::unordered_map<std::uint64_t, std::vector<std::string>, DetHash<std::uint64_t>>
      pipeline_intermediates_;
  // Monotonic id handed to each acknowledged write-back; the per-key entry
  // remembers the newest (entries are never erased, so ids never repeat and a
  // stale persistor can never alias a fresh write). Looked up by key, never
  // iterated.
  std::uint64_t next_write_epoch_ = 1;
  std::unordered_map<std::string, std::uint64_t, DetHash<std::string>> write_epoch_;
};

}  // namespace ofc::core

#endif  // OFC_CORE_PROXY_H_
