// CacheAgent (§6.3, §6.4): manages each worker's share of the cache.
//
// The agent hoards the memory booked-but-unused by the worker's sandboxes
// (including idle, kept-alive ones — §2.2.1's two waste sources): the
// per-worker cache capacity target is
//
//     min( sum over sandboxes of (booked - cgroup limit),
//          worker_memory - sum of cgroup limits )  -  slack_pool
//
// re-applied on every sandbox creation/resize/destruction (per-invocation
// resizes run asynchronously, off the critical path). The slack pool guards
// against capacity violations from in-flight asynchronous scale-ups: it starts
// at 100 MB and is re-estimated every 120 s from a sliding window of 60 s
// memory-churn samples.
//
// Shrinking follows the paper's reclamation order:
//   1. discard output objects already persisted to the RSDS;
//   2. trigger write-back of dirty output objects (discarded on completion);
//   3. evict input objects in the order the configured cache policy ranks
//      them (the default `lru` policy reproduces the paper byte-for-byte) —
//      but first try to keep hot inputs cached by migrating their master copy
//      to a backup node (§6.4's no-transfer promotion).
//
// Independently, a periodic sweep (every 300 s) evicts objects the policy
// deems cold — under `lru`, the paper's n_access < 5 or idle > 30 min test
// (§6.3). The residency guard (objects younger than one sweep period are
// never swept) is policy-independent and stays here. Which objects to drop is
// delegated to the CachePolicyEngine (cache_policy.h); *how* to drop them
// (write-back of dirty objects, migration preference, capacity bookkeeping)
// remains this agent's job.
#ifndef OFC_CORE_CACHE_AGENT_H_
#define OFC_CORE_CACHE_AGENT_H_

#include <deque>
#include <functional>
#include <memory>
#include <set>
#include <string>
#include <vector>

#include "src/common/stats.h"
#include "src/common/units.h"
#include "src/core/cache_policy.h"
#include "src/faas/platform.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"

namespace ofc::core {

struct CacheAgentOptions {
  Bytes worker_memory = GiB(8);
  Bytes initial_slack = MiB(100);
  Bytes min_slack = MiB(64);
  Bytes max_slack = GiB(1);
  SimDuration churn_sample_period = Seconds(60);
  SimDuration slack_adjust_period = Seconds(120);
  SimDuration churn_window = Seconds(300);
  SimDuration sweep_period = Seconds(300);
  std::uint32_t sweep_min_access = 5;     // Evict when n_access < 5 ...
  SimDuration sweep_max_idle = Minutes(30);  // ... or idle > 30 min.
  SimDuration eviction_op_cost = Micros(120);  // Per-object eviction overhead.
  // ---- Overload protection (memory pressure & write-back throttling) ------------
  // Cap on concurrently in-flight reclamation write-backs per worker; further
  // dirty objects queue FIFO and launch as completions free budget, bounding
  // the §6.4 shrink-time write-back storm. 0 = unbounded (legacy behaviour).
  int max_inflight_writebacks = 0;
  // Memory-pressure hysteresis on used/capacity: a worker enters pressure at
  // >= high and leaves below low. While under pressure the proxy's admission
  // gate defers new cache admissions, so shrink degrades admission rather than
  // latency. high > 1.0 disables pressure signalling (the default).
  double pressure_high_watermark = 2.0;
  double pressure_low_watermark = 0.85;
  // Eviction/sweep policy engine (cache_policy.h), normally owned by the
  // OfcSystem so the Proxy's data-plane notifications feed the same instance.
  // Null: the agent owns a private default engine (the paper's lru policy).
  CachePolicyEngine* policy = nullptr;
  // Observability sinks (src/obs/). Null `metrics` -> private registry; null
  // `trace` -> scaling/migration events are skipped; null `flight` -> no
  // black-box scale/pressure/migration records.
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  obs::FlightRecorder* flight = nullptr;
};

// Snapshot view over the agent's `ofc.cache_agent.*` registry cells.
struct CacheScalingStats {
  std::uint64_t scale_ups = 0;
  SimDuration scale_up_time = 0;
  std::uint64_t scale_downs_plain = 0;      // No eviction, no migration.
  std::uint64_t scale_downs_migration = 0;  // Required master migration.
  std::uint64_t scale_downs_eviction = 0;   // Required object eviction.
  SimDuration scale_down_time = 0;
  std::uint64_t objects_migrated = 0;
  std::uint64_t objects_evicted = 0;
  std::uint64_t objects_swept = 0;
  std::uint64_t writebacks_triggered = 0;
  std::uint64_t writebacks_throttled = 0;  // Queued behind the in-flight budget.
};

class CacheAgent {
 public:
  // Write-back trigger: asks the Proxy's persistor machinery to push a dirty
  // object to the RSDS; the completion callback reports the outcome.
  using WritebackFn =
      std::function<void(const std::string& key, std::function<void(Status)> done)>;

  CacheAgent(sim::EventLoop* loop, rc::Cluster* cluster, CacheAgentOptions options);

  // Arms the periodic sweep / slack-estimation timers and sets the initial
  // capacity of every node to the full hoardable amount.
  void Start();

  void set_writeback(WritebackFn writeback) { writeback_ = std::move(writeback); }

  // Sandbox memory change (from the platform hooks). Adjusts the hoard and
  // re-applies the cache capacity target opportunistically.
  void OnSandboxMemoryChange(const faas::SandboxMemoryEvent& event);

  // Monitor rescue support (§5.3.1): synchronously releases `bytes` of cache
  // capacity on `worker` so a struggling sandbox can grow. Returns false when
  // the cache cannot free enough.
  bool ReleaseForSandbox(int worker, Bytes bytes);

  // Reapplies the capacity target for one worker (or all).
  void ApplyTarget(int worker);
  void ApplyAllTargets();

  // One §6.3 sweep pass over every node; normally timer-driven, exposed for
  // tests and benches.
  void SweepOnce();

  // Memory-pressure watermark query (hysteresis; see the options). The proxy's
  // admission gate calls this on every read-miss admission decision.
  bool UnderPressure(int worker);

  Bytes slack(int worker) const { return slack_[static_cast<std::size_t>(worker)]; }
  // Sum of (booked - limit) across the worker's live sandboxes.
  Bytes hoard(int worker) const { return hoard_[static_cast<std::size_t>(worker)]; }
  Bytes CapacityTarget(int worker) const;
  // Assembled on demand from the metrics registry.
  CacheScalingStats stats() const;
  void ResetStats();
  obs::MetricsRegistry& metrics() { return *metrics_; }

 private:
  // Registry cells behind CacheScalingStats. The cumulative scaling times live
  // in gauges (micros, Add()ed) so the snapshot reconstructs SimDuration
  // exactly; migration latencies additionally feed a percentile series.
  struct Metrics {
    obs::Counter* scale_ups = nullptr;
    obs::Counter* scale_downs_plain = nullptr;
    obs::Counter* scale_downs_migration = nullptr;
    obs::Counter* scale_downs_eviction = nullptr;
    obs::Counter* objects_migrated = nullptr;
    obs::Counter* objects_evicted = nullptr;
    obs::Counter* objects_swept = nullptr;
    obs::Counter* writebacks_triggered = nullptr;
    obs::Counter* writebacks_throttled = nullptr;
    obs::Gauge* scale_up_time_us = nullptr;
    obs::Gauge* scale_down_time_us = nullptr;
    obs::Series* migration_ms = nullptr;
  };
  void AddScaleDownTime(SimDuration d) {
    m_.scale_down_time_us->Add(static_cast<double>(d));
  }

  // Frees at least `needed` bytes of mastered objects on `worker` following the
  // reclamation order. Returns the bytes actually freed synchronously.
  Bytes FreeBytes(int worker, Bytes needed, bool* migrated, bool* evicted);

  // One queued reclamation write-back (see max_inflight_writebacks).
  struct PendingWriteback {
    std::string key;
    bool count_swept = false;  // Sweep-triggered: counts into objects_swept.
  };
  // Write-back launch with the in-flight budget applied (dedups keys already
  // pending; over-budget launches queue in writeback_backlog_).
  void LaunchWriteback(int worker, const std::string& key, bool count_swept);
  void StartWriteback(int worker, const std::string& key, bool count_swept);
  void DrainWritebackBacklog(int worker);

  void SweepTick();
  void ChurnSampleTick();
  void SlackAdjustTick();

  sim::EventLoop* loop_;
  rc::Cluster* cluster_;
  CacheAgentOptions options_;
  WritebackFn writeback_;
  std::vector<Bytes> hoard_;   // Booked-but-unused memory, mirrored from hooks.
  std::vector<Bytes> limits_;  // Sum of cgroup limits (physical usage bound).
  std::vector<Bytes> slack_;
  std::vector<Bytes> churn_accum_;
  std::vector<SlidingTimeWindow> churn_windows_;
  // Write-back budget state, per worker. The pending set (ordered — it is
  // mutated along deterministic paths only, never iterated) covers keys both
  // in flight and queued, so one shrink storm cannot launch duplicates.
  std::vector<int> inflight_writebacks_;
  std::vector<std::deque<PendingWriteback>> writeback_backlog_;
  std::vector<std::set<std::string>> writeback_pending_;
  std::vector<bool> under_pressure_;  // Hysteresis state per worker.
  std::vector<obs::Gauge*> pressure_gauges_;  // ofc.overload.cache_pressure{w}
  std::unique_ptr<CachePolicyEngine> owned_policy_;  // When none injected.
  CachePolicyEngine* policy_ = nullptr;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // When none injected.
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  bool FlightOn() const { return flight_ != nullptr && flight_->enabled(); }
  Metrics m_;
  bool started_ = false;
};

}  // namespace ofc::core

#endif  // OFC_CORE_CACHE_AGENT_H_
