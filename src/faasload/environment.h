// Experiment environments: the three configurations compared throughout §7.
//
//   * kOwkSwift — vanilla OpenWhisk, all data in the Swift RSDS (worst case);
//   * kOwkRedis — vanilla OpenWhisk, all data in a Redis IMOC (best case);
//   * kOfc      — OpenWhisk + OFC (RAMCloud cache, ML sizing, Swift RSDS).
//
// An Environment bundles the event loop, stores, cluster, OFC assembly and
// platform with consistent seeding so that benches construct them in one call.
#ifndef OFC_FAASLOAD_ENVIRONMENT_H_
#define OFC_FAASLOAD_ENVIRONMENT_H_

#include <memory>
#include <optional>
#include <string>

#include "src/core/ofc_system.h"
#include "src/faas/direct_data_service.h"
#include "src/faas/platform.h"
#include "src/obs/flight_recorder.h"
#include "src/obs/metrics.h"
#include "src/obs/trace.h"
#include "src/ramcloud/cluster.h"
#include "src/sim/event_loop.h"
#include "src/store/object_store.h"

namespace ofc::faasload {

enum class Mode { kOwkSwift, kOwkRedis, kOfc };

std::string ModeName(Mode mode);

struct EnvironmentOptions {
  faas::PlatformOptions platform;
  rc::ClusterOptions cluster;
  core::OfcOptions ofc;
  std::uint64_t seed = 42;
  // Overrides the RSDS latency profile (default: Swift for kOwkSwift/kOfc,
  // Redis for kOwkRedis). The Figure 3 motivation experiment uses S3.
  std::optional<store::StoreProfile> rsds_profile;
  // Observability sinks injected into every layer (platform, cluster, OFC,
  // RSDS). Null `metrics` -> the environment owns a registry shared by all of
  // its components; null `trace` -> the environment owns a disabled recorder
  // (enable via trace().set_enabled(true)); null `flight` -> the environment
  // owns a disabled flight recorder (enable via flight().set_enabled(true)).
  obs::MetricsRegistry* metrics = nullptr;
  obs::TraceRecorder* trace = nullptr;
  obs::FlightRecorder* flight = nullptr;
};

class Environment {
 public:
  Environment(Mode mode, EnvironmentOptions options);

  Mode mode() const { return mode_; }
  sim::EventLoop& loop() { return loop_; }
  store::ObjectStore& rsds() { return *rsds_; }
  faas::Platform& platform() { return *platform_; }
  // Null in baseline modes.
  rc::Cluster* cluster() { return cluster_.get(); }
  core::OfcSystem* ofc() { return ofc_.get(); }
  // The registry/recorder every component of this environment reports into.
  obs::MetricsRegistry& metrics() { return *metrics_; }
  obs::TraceRecorder& trace() { return *trace_; }
  obs::FlightRecorder& flight() { return *flight_; }

 private:
  Mode mode_;
  sim::EventLoop loop_;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // When none injected.
  std::unique_ptr<obs::TraceRecorder> owned_trace_;
  std::unique_ptr<obs::FlightRecorder> owned_flight_;
  obs::MetricsRegistry* metrics_ = nullptr;
  obs::TraceRecorder* trace_ = nullptr;
  obs::FlightRecorder* flight_ = nullptr;
  std::unique_ptr<store::ObjectStore> rsds_;
  std::unique_ptr<rc::Cluster> cluster_;
  std::unique_ptr<core::OfcSystem> ofc_;
  std::unique_ptr<faas::DirectDataService> direct_;
  std::unique_ptr<faas::Platform> platform_;
};

}  // namespace ofc::faasload

#endif  // OFC_FAASLOAD_ENVIRONMENT_H_
