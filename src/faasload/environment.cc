#include "src/faasload/environment.h"

namespace ofc::faasload {

std::string ModeName(Mode mode) {
  switch (mode) {
    case Mode::kOwkSwift:
      return "OWK-Swift";
    case Mode::kOwkRedis:
      return "OWK-Redis";
    case Mode::kOfc:
      return "OFC";
  }
  return "unknown";
}

Environment::Environment(Mode mode, EnvironmentOptions options) : mode_(mode) {
  metrics_ = options.metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  trace_ = options.trace;
  if (trace_ == nullptr) {
    owned_trace_ = std::make_unique<obs::TraceRecorder>();  // Disabled by default.
    trace_ = owned_trace_.get();
  }
  flight_ = options.flight;
  if (flight_ == nullptr) {
    owned_flight_ = std::make_unique<obs::FlightRecorder>();  // Disabled by default.
    flight_ = owned_flight_.get();
  }

  Rng rng(options.seed);
  const store::StoreProfile profile = options.rsds_profile.value_or(
      mode == Mode::kOwkRedis ? store::StoreProfile::Redis() : store::StoreProfile::Swift());
  rsds_ = std::make_unique<store::ObjectStore>(
      &loop_, profile, rng.Fork(), mode == Mode::kOwkRedis ? "redis" : "swift", metrics_);

  faas::PlatformOptions platform_options = options.platform;
  platform_options.metrics = metrics_;
  platform_options.trace = trace_;
  platform_options.flight = flight_;

  if (mode == Mode::kOfc) {
    // One RAMCloud storage server per invoker node (§6.1).
    rc::ClusterOptions cluster_options = options.cluster;
    cluster_options.default_capacity = 0;  // The CacheAgent sets real targets.
    cluster_options.metrics = metrics_;
    cluster_options.flight = flight_;
    cluster_ = std::make_unique<rc::Cluster>(&loop_, options.platform.num_workers,
                                             cluster_options, rng.Fork());
    core::OfcOptions ofc_options = options.ofc;
    ofc_options.cache_agent.worker_memory = options.platform.worker_memory;
    ofc_options.metrics = metrics_;
    ofc_options.trace = trace_;
    ofc_options.flight = flight_;
    ofc_ = std::make_unique<core::OfcSystem>(&loop_, cluster_.get(), rsds_.get(), ofc_options);
    platform_ = std::make_unique<faas::Platform>(&loop_, platform_options,
                                                 ofc_->data_service(), ofc_->hooks(),
                                                 rng.Fork());
    ofc_->Start();
  } else {
    direct_ = std::make_unique<faas::DirectDataService>(rsds_.get());
    platform_ = std::make_unique<faas::Platform>(&loop_, platform_options, direct_.get(),
                                                 /*hooks=*/nullptr, rng.Fork());
  }
}

}  // namespace ofc::faasload
