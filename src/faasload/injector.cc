#include "src/faasload/injector.h"

#include <algorithm>
#include <cmath>

#include "src/common/logging.h"
#include "src/faas/direct_data_service.h"

namespace ofc::faasload {

std::string TenantProfileName(TenantProfile profile) {
  switch (profile) {
    case TenantProfile::kNormal:
      return "normal";
    case TenantProfile::kNaive:
      return "naive";
    case TenantProfile::kAdvanced:
      return "advanced";
  }
  return "unknown";
}

SimDuration TenantResult::TotalExecutionTime() const {
  SimDuration total = 0;
  for (const auto& record : invocations) {
    total += record.total;
  }
  for (const auto& record : pipelines) {
    total += record.total;
  }
  return total;
}

std::size_t TenantResult::FailureCount() const {
  std::size_t failures = 0;
  for (const auto& record : invocations) {
    failures += record.failed;
  }
  for (const auto& record : pipelines) {
    failures += record.failed;
  }
  return failures;
}

Bytes BookedMemoryFor(const workloads::FunctionSpec& spec, TenantProfile profile,
                      Bytes platform_max, std::uint64_t seed) {
  if (profile == TenantProfile::kNaive) {
    return platform_max;  // Always the maximum OWK allows.
  }
  // "Advanced": the maximum memory used across previous runs, estimated by
  // sampling the demand model over the input distribution.
  Rng rng(seed);
  workloads::MediaGenerator generator(rng.Fork());
  Bytes max_seen = 0;
  for (int i = 0; i < 400; ++i) {
    const workloads::MediaDescriptor media = generator.Generate(spec.kind);
    const std::vector<double> args = workloads::SampleArgs(spec, rng);
    max_seen = std::max(max_seen,
                        workloads::ComputeDemand(spec, media, args, &rng).memory);
  }
  // A practical "max used" reading carries measurement granularity: tenants
  // round the observed peak up a little, which also absorbs run-to-run noise
  // beyond the sampled maximum.
  max_seen = static_cast<Bytes>(static_cast<double>(max_seen) * 1.05);
  if (profile == TenantProfile::kAdvanced) {
    return std::min(max_seen, platform_max);
  }
  // "Normal": 1.7x the advanced booking.
  return std::min(static_cast<Bytes>(static_cast<double>(max_seen) * 1.7), platform_max);
}

LoadInjector::LoadInjector(Environment* env, TenantProfile profile, std::uint64_t seed)
    : env_(env), profile_(profile), rng_(seed) {}

Status LoadInjector::AddTenant(TenantSpec spec) {
  auto tenant = std::make_unique<Tenant>();
  tenant->spec = spec;
  tenant->rng = rng_.Fork();
  workloads::MediaGenerator generator(tenant->rng.Fork());

  if (spec.is_pipeline) {
    const workloads::PipelineSpec* pipeline = workloads::FindPipeline(spec.function);
    if (pipeline == nullptr) {
      return NotFoundError("no such pipeline: " + spec.function);
    }
    // Prepare the chunked input in the RSDS.
    const int chunks = pipeline->NumChunks(spec.pipeline_input_size);
    const Bytes chunk_size = spec.pipeline_input_size / chunks;
    for (int c = 0; c < chunks; ++c) {
      workloads::MediaDescriptor media =
          generator.GenerateWithByteSize(pipeline->input_kind, chunk_size);
      const std::string key = "data/" + spec.name + "/chunk" + std::to_string(c);
      env_->rsds().Seed(key, media.byte_size, faas::MediaToTags(media));
      tenant->pipeline_chunks.push_back(faas::InputObject{key, media});
    }
    // Register every stage function. A tenant who books per "previous runs"
    // knows the per-*stage* peak at their pipeline's scale (fan-in stages see
    // many objects at once), so the booking estimate walks the stages over the
    // actual chunked input.
    std::vector<workloads::MediaDescriptor> stage_inputs;
    for (const faas::InputObject& chunk : tenant->pipeline_chunks) {
      stage_inputs.push_back(chunk.media);
    }
    for (const workloads::PipelineStage& stage : pipeline->stages) {
      const workloads::FunctionSpec* fn = workloads::FindFunction(stage.function);
      if (fn == nullptr) {
        return NotFoundError("no such stage function: " + stage.function);
      }
      // Peak demand across every task of this stage (decoded footprints vary
      // per chunk, so the heaviest task is not knowable from byte sizes).
      const std::size_t num_tasks =
          stage.fixed_tasks > 0
              ? std::min<std::size_t>(static_cast<std::size_t>(stage.fixed_tasks),
                                      stage_inputs.size())
              : stage_inputs.size();
      Bytes peak = 0;
      Bytes out_size = 0;
      std::vector<workloads::MediaDescriptor> outputs;
      for (std::size_t t = 0; t < num_tasks; ++t) {
        std::vector<faas::InputObject> task_inputs;
        for (std::size_t i = t; i < stage_inputs.size(); i += num_tasks) {
          task_inputs.push_back(faas::InputObject{"", stage_inputs[i]});
        }
        const workloads::MediaDescriptor aggregate =
            faas::Platform::AggregateMedia(task_inputs);
        Bytes task_out = 0;
        for (int trial = 0; trial < 8; ++trial) {
          const auto args = workloads::SampleArgs(*fn, rng_);
          const auto demand = workloads::ComputeDemand(*fn, aggregate, args, &rng_);
          peak = std::max(peak, demand.memory);
          task_out = std::max(task_out, demand.output_size);
        }
        out_size = std::max(out_size, task_out);
        outputs.push_back(workloads::OutputMedia(*fn, aggregate, task_out));
      }
      const Bytes platform_max = env_->platform().options().max_sandbox_memory;
      Bytes booked = platform_max;  // naive
      if (profile_ == TenantProfile::kAdvanced) {
        booked = std::min(static_cast<Bytes>(static_cast<double>(peak) * 1.1), platform_max);
      } else if (profile_ == TenantProfile::kNormal) {
        booked = std::min(static_cast<Bytes>(static_cast<double>(peak) * 1.87), platform_max);
      }
      if (env_->platform().GetFunction(fn->name) == nullptr) {
        faas::FunctionConfig config;
        config.spec = *fn;
        config.tenant = spec.name;
        config.booked_memory = booked;
        OFC_RETURN_IF_ERROR(env_->platform().RegisterFunction(config));
      }
      // Feed the next stage with this stage's task outputs.
      stage_inputs = std::move(outputs);
      (void)out_size;
    }
  } else {
    const workloads::FunctionSpec* fn = workloads::FindFunction(spec.function);
    if (fn == nullptr) {
      return NotFoundError("no such function: " + spec.function);
    }
    if (env_->platform().GetFunction(fn->name) == nullptr) {
      faas::FunctionConfig config;
      config.spec = *fn;
      config.tenant = spec.name;
      config.booked_memory = BookedMemoryFor(
          *fn, profile_, env_->platform().options().max_sandbox_memory, rng_.NextU64());
      OFC_RETURN_IF_ERROR(env_->platform().RegisterFunction(config));
    }
    for (int i = 0; i < spec.dataset_objects; ++i) {
      workloads::MediaDescriptor media =
          spec.object_size > 0 ? generator.GenerateWithByteSize(fn->kind, spec.object_size)
                               : generator.Generate(fn->kind);
      const std::string key = "data/" + spec.name + "/obj" + std::to_string(i);
      env_->rsds().Seed(key, media.byte_size, faas::MediaToTags(media));
      tenant->dataset.push_back(faas::InputObject{key, media});
    }
  }

  results_.push_back(TenantResult{spec.name, spec.function, {}, {}});
  tenant->result_index = results_.size() - 1;
  tenants_.push_back(std::move(tenant));
  return OkStatus();
}

Status LoadInjector::AddScaleTrace(const workloads::ScaleTrace& trace) {
  for (const workloads::ScaleTraceTenant& t : trace.tenants) {
    TenantSpec spec;
    spec.name = t.name;
    spec.function = t.function;
    spec.mean_interval_s = t.mean_interval_s;
    spec.burst_size = t.burst_size;
    spec.burst_spacing_s = t.burst_spacing_s;
    spec.diurnal_period_s = t.diurnal_period_s;
    spec.diurnal_amplitude = t.diurnal_amplitude;
    spec.dataset_objects = t.dataset_objects;
    spec.object_size = t.object_size;
    switch (t.arrivals) {
      case workloads::ScaleArrivals::kPoisson:
        spec.arrivals = ArrivalPattern::kExponential;
        break;
      case workloads::ScaleArrivals::kDiurnal:
        spec.arrivals = ArrivalPattern::kDiurnal;
        break;
      case workloads::ScaleArrivals::kBursty:
        spec.arrivals = ArrivalPattern::kBursty;
        break;
      case workloads::ScaleArrivals::kPeriodic:
        spec.arrivals = ArrivalPattern::kPeriodic;
        break;
    }
    OFC_RETURN_IF_ERROR(AddTenant(std::move(spec)));
  }
  return OkStatus();
}

void LoadInjector::PretrainModels(int invocations_per_function) {
  core::OfcSystem* ofc = env_->ofc();
  if (ofc == nullptr) {
    return;
  }
  for (const auto& tenant : tenants_) {
    if (tenant->spec.is_pipeline) {
      const workloads::PipelineSpec* pipeline = workloads::FindPipeline(tenant->spec.function);
      for (const workloads::PipelineStage& stage : pipeline->stages) {
        const workloads::FunctionSpec* fn = workloads::FindFunction(stage.function);
        Rng rng = rng_.Fork();
        ofc->trainer().Pretrain(*fn, invocations_per_function, rng);
      }
    } else {
      const workloads::FunctionSpec* fn = workloads::FindFunction(tenant->spec.function);
      Rng rng = rng_.Fork();
      ofc->trainer().Pretrain(*fn, invocations_per_function, rng);
    }
  }
}

void LoadInjector::AddSampler(SimDuration period, std::function<void()> sampler) {
  samplers_.push_back(SamplerSpec{period, std::move(sampler)});
}

// Plants exactly one future arrival event for `tenant` — the event body
// (OnArrival) fires the invocation and re-arms. Compared to the old
// schedule-everything-up-front design this keeps the event heap at
// O(num_tenants + in-flight work) instead of O(total invocations), which is
// what makes 10M-invocation traces feasible; the cost is that a tenant's RNG
// now interleaves arrival draws with input/argument draws (a different but
// equally deterministic stream).
void LoadInjector::ScheduleNextArrival(Tenant& tenant) {
  const TenantSpec& spec = tenant.spec;
  while (true) {
    SimTime when;
    if (tenant.burst_remaining > 0) {
      // Tail of an in-progress burst: fixed spacing after the previous member.
      --tenant.burst_remaining;
      tenant.burst_next += static_cast<SimDuration>(spec.burst_spacing_s * 1e6);
      when = tenant.burst_next;
      if (when > horizon_end_) {
        tenant.burst_remaining = 0;  // Truncate the burst at the horizon...
        continue;                    // ...but keep drawing later burst gaps.
      }
    } else {
      SimTime& t = tenant.arrival_cursor;
      switch (spec.arrivals) {
        case ArrivalPattern::kExponential:
          t += static_cast<SimDuration>(tenant.rng.Exponential(spec.mean_interval_s) * 1e6);
          break;
        case ArrivalPattern::kPeriodic:
          t += static_cast<SimDuration>(spec.mean_interval_s * 1e6);
          break;
        case ArrivalPattern::kDiurnal: {
          // Thinned Poisson: draw candidates at the peak rate and accept with
          // probability rate(t)/peak — an exact simulation of the
          // inhomogeneous process, still one event per accepted arrival.
          const double amplitude = std::clamp(spec.diurnal_amplitude, 0.0, 1.0);
          const double base_rate = 1.0 / spec.mean_interval_s;
          const double peak_rate = base_rate * (1.0 + amplitude);
          while (true) {
            t += static_cast<SimDuration>(tenant.rng.Exponential(1.0 / peak_rate) * 1e6);
            const double phase =
                2.0 * 3.14159265358979323846 * (static_cast<double>(t) / 1e6) /
                spec.diurnal_period_s;
            const double rate = base_rate * (1.0 + amplitude * std::sin(phase));
            if (tenant.rng.NextDouble() * peak_rate <= rate || t > horizon_end_) {
              break;
            }
          }
          break;
        }
        case ArrivalPattern::kBursty:
          // A gap, then a train of closely spaced invocations; the first
          // member fires at the burst start.
          t += static_cast<SimDuration>(tenant.rng.Exponential(spec.mean_interval_s) * 1e6);
          tenant.burst_next = t;
          tenant.burst_remaining = std::max(0, spec.burst_size - 1);
          break;
      }
      when = spec.arrivals == ArrivalPattern::kBursty ? tenant.burst_next : t;
      if (when > horizon_end_) {
        return;  // Horizon reached: this tenant stops re-arming.
      }
    }
    // A tenant whose bursts overlap (gap shorter than the burst span) can draw
    // a next-burst start before the current burst's tail — in the past by the
    // time the tail member re-arms. Such arrivals fire immediately: the law's
    // epochs (cursor/burst_next) keep their logical values, only dispatch is
    // clamped to the present.
    if (when < env_->loop().now()) {
      when = env_->loop().now();
    }
    ++in_flight_;
    // Capture the tenant by pointer, not reference: the callback outlives this
    // frame, and `tenants_` owns the heap-allocated Tenant for the whole run.
    env_->loop().ScheduleAt(when, [this, t = &tenant] { OnArrival(*t); });
    return;
  }
}

void LoadInjector::OnArrival(Tenant& tenant) {
  FireInvocation(tenant);       // Carries this arrival's in_flight_ count.
  ScheduleNextArrival(tenant);  // Re-arm (adds its own count if within horizon).
}

void LoadInjector::RecordInvocation(TenantResult& result,
                                    const faas::InvocationRecord& record) {
  if (result.invocations.size() < max_records_per_tenant_) {
    result.invocations.push_back(record);
  }
}

void LoadInjector::RecordPipeline(TenantResult& result, const faas::PipelineRecord& record) {
  if (result.pipelines.size() < max_records_per_tenant_) {
    result.pipelines.push_back(record);
  }
}

void LoadInjector::FireInvocation(Tenant& tenant) {
  TenantResult& result = results_[tenant.result_index];
  ++fired_;
  if (tenant.spec.is_pipeline) {
    const workloads::PipelineSpec* pipeline = workloads::FindPipeline(tenant.spec.function);
    env_->platform().InvokePipeline(*pipeline, tenant.pipeline_chunks,
                                    [this, &result](const faas::PipelineRecord& record) {
                                      RecordPipeline(result, record);
                                      ++completed_;
                                      --in_flight_;
                                    });
    return;
  }
  const faas::InputObject& input =
      tenant.dataset[tenant.rng.Index(tenant.dataset.size())];
  const workloads::FunctionSpec* fn = workloads::FindFunction(tenant.spec.function);
  std::vector<double> args = workloads::SampleArgs(*fn, tenant.rng);
  env_->platform().Invoke(tenant.spec.function, {input}, std::move(args),
                          [this, &result](const faas::InvocationRecord& record) {
                            RecordInvocation(result, record);
                            ++completed_;
                            --in_flight_;
                          });
}

void LoadInjector::Run(SimDuration duration) {
  horizon_end_ = env_->loop().now() + duration;
  for (auto& tenant : tenants_) {
    tenant->arrival_cursor = env_->loop().now();
    ScheduleNextArrival(*tenant);
  }
  for (const SamplerSpec& sampler : samplers_) {
    for (SimTime t = sampler.period; t <= duration; t += sampler.period) {
      env_->loop().ScheduleAt(env_->loop().now() + t, [fn = sampler.fn] { fn(); });
    }
  }
  // Run to quiescence: all scheduled invocations (and their persistors /
  // write-backs) complete. Periodic timers (sweeps, slack estimation) re-arm
  // forever, so RunUntil with a bounded tail instead of Run(); invocations
  // stuck beyond the hard cap (e.g. a booking that can never be placed) are
  // abandoned rather than spinning forever.
  SimTime deadline = horizon_end_ + Minutes(10);
  const SimTime hard_cap = horizon_end_ + Minutes(120);
  while (in_flight_ > 0 && deadline <= hard_cap) {
    env_->loop().RunUntil(deadline);
    deadline += Minutes(10);
  }
  if (in_flight_ > 0) {
    OFC_LOG(Warning) << in_flight_ << " invocation(s) did not complete within the "
                     << "2 h drain window";
  }
}

const TenantResult* LoadInjector::ResultFor(const std::string& tenant) const {
  for (const TenantResult& result : results_) {
    if (result.name == tenant) {
      return &result;
    }
  }
  return nullptr;
}

}  // namespace ofc::faasload
