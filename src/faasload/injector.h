// FAASLOAD (§7.2.2): the multi-tenant load injector used for the macro
// experiments. Emulates tenants with one function (or pipeline) each, prepares
// their input datasets in the RSDS, fires invocations on a periodic or
// exponential (Poisson) schedule, and collects per-tenant records.
//
// Tenant memory-booking profiles (§7.2.2):
//   * naive    — always books OWK's maximum (2 GB);
//   * advanced — books the maximum usage observed in previous runs;
//   * normal   — books 1.7x the advanced amount (common practice, [39]).
#ifndef OFC_FAASLOAD_INJECTOR_H_
#define OFC_FAASLOAD_INJECTOR_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>
#include <vector>

#include "src/faasload/environment.h"
#include "src/workloads/media.h"
#include "src/workloads/pipelines.h"
#include "src/workloads/scale_trace.h"

namespace ofc::faasload {

enum class TenantProfile { kNormal, kNaive, kAdvanced };

std::string TenantProfileName(TenantProfile profile);

// Invocation arrival process. Shahrad et al. (the paper's [37]) observe that
// real FaaS traffic mixes steady Poisson-like functions with rare and bursty
// ones, and that "45 % of applications are invoked once per hour or less" —
// the source of the keep-alive waste OFC harvests.
enum class ArrivalPattern {
  kExponential,  // Poisson arrivals with the given mean interval.
  kPeriodic,     // Fixed interval.
  kBursty,       // Long exponential gaps separating short back-to-back bursts.
  kDiurnal,      // Poisson with a sinusoidally modulated rate (thinned).
};

struct TenantSpec {
  std::string name;
  std::string function;   // Single-stage function name or pipeline name.
  bool is_pipeline = false;
  // Mean inter-arrival (exponential/periodic) or mean gap between bursts.
  double mean_interval_s = 60.0;
  ArrivalPattern arrivals = ArrivalPattern::kExponential;
  // Bursty only: invocations per burst and intra-burst spacing.
  int burst_size = 5;
  double burst_spacing_s = 1.0;
  // Diurnal only: rate(t) = base * (1 + amplitude * sin(2*pi*t / period)),
  // where base = 1 / mean_interval_s. Amplitude is clamped to [0, 1].
  double diurnal_period_s = 86400.0;
  double diurnal_amplitude = 0.8;
  // Input dataset: number of distinct objects prepared in the RSDS. FAASLOAD
  // "prepares the input data for the invocations of each function".
  int dataset_objects = 3;
  // Target byte size per dataset object; 0 draws from the natural content
  // distribution.
  Bytes object_size = 0;
  // Pipelines: total input volume, split into chunk objects.
  Bytes pipeline_input_size = MiB(30);
};

struct TenantResult {
  std::string name;
  std::string function;
  std::vector<faas::InvocationRecord> invocations;
  std::vector<faas::PipelineRecord> pipelines;
  SimDuration TotalExecutionTime() const;
  std::size_t FailureCount() const;
};

// Estimates the booked memory for a function under a tenant profile. The
// "advanced" estimate samples the demand model over the input distribution,
// standing in for "previous runs" telemetry.
Bytes BookedMemoryFor(const workloads::FunctionSpec& spec, TenantProfile profile,
                      Bytes platform_max, std::uint64_t seed);

class LoadInjector {
 public:
  LoadInjector(Environment* env, TenantProfile profile, std::uint64_t seed);

  // Registers the tenant's function(s) with the platform under the profile's
  // booking and prepares its dataset in the RSDS.
  Status AddTenant(TenantSpec spec);

  // Maps every tenant of a synthesized scale trace onto AddTenant. The trace
  // carries arrival-law parameters only; concrete arrival times are drawn
  // lazily while the run progresses.
  Status AddScaleTrace(const workloads::ScaleTrace& trace);

  // Pretrains OFC models offline (no-op in baseline modes) so macro runs start
  // with mature predictors, as the artifact's offline ML stage does.
  void PretrainModels(int invocations_per_function);

  // Schedules all invocations within [0, duration] and runs the event loop
  // until every scheduled invocation completed.
  void Run(SimDuration duration);

  // Periodically samples f(now) during Run (Figure 10's cache-size series).
  void AddSampler(SimDuration period, std::function<void()> sampler);

  const std::vector<TenantResult>& results() const { return results_; }
  const TenantResult* ResultFor(const std::string& tenant) const;

  // Exactly-once accounting across the whole run: every fired invocation (or
  // pipeline) must produce exactly one completion record.
  std::uint64_t invocations_fired() const { return fired_; }
  std::uint64_t invocations_completed() const { return completed_; }

  // Record retention. Defaults to keeping every record (the macro figures
  // aggregate them afterwards); scale runs cap or disable retention so a
  // 10M-invocation run does not hold 10M InvocationRecords.
  void set_max_records_per_tenant(std::size_t n) { max_records_per_tenant_ = n; }

 private:
  struct Tenant {
    TenantSpec spec;
    std::vector<faas::InputObject> dataset;            // Single-stage pool.
    std::vector<faas::InputObject> pipeline_chunks;    // Pipeline input chunks.
    Rng rng;
    std::size_t result_index = 0;
    // Lazy arrival state: exactly one pending arrival event per tenant. The
    // cursor is the last arrival-law epoch (burst start for bursty tenants);
    // burst_remaining/burst_next walk the tail of an in-progress burst.
    SimTime arrival_cursor = 0;
    SimTime burst_next = 0;
    int burst_remaining = 0;
  };

  // Draws the tenant's next arrival instant and plants one event there (or
  // stops re-arming once the draw crosses the horizon).
  void ScheduleNextArrival(Tenant& tenant);
  // Arrival event body: fire, then re-arm.
  void OnArrival(Tenant& tenant);
  void FireInvocation(Tenant& tenant);
  void RecordInvocation(TenantResult& result, const faas::InvocationRecord& record);
  void RecordPipeline(TenantResult& result, const faas::PipelineRecord& record);

  Environment* env_;
  TenantProfile profile_;
  Rng rng_;
  std::vector<std::unique_ptr<Tenant>> tenants_;
  std::vector<TenantResult> results_;
  std::size_t in_flight_ = 0;
  struct SamplerSpec {
    SimDuration period;
    std::function<void()> fn;
  };
  std::vector<SamplerSpec> samplers_;
  SimTime horizon_end_ = 0;
  std::uint64_t fired_ = 0;
  std::uint64_t completed_ = 0;
  std::size_t max_records_per_tenant_ = SIZE_MAX;
};

}  // namespace ofc::faasload

#endif  // OFC_FAASLOAD_INJECTOR_H_
