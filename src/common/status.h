// Status and Result<T>: error handling primitives used across all OFC libraries.
//
// Library code never throws across module boundaries; fallible operations return
// Status (no payload) or Result<T> (payload or error), in the spirit of
// absl::Status / zx::result.
#ifndef OFC_COMMON_STATUS_H_
#define OFC_COMMON_STATUS_H_

#include <cassert>
#include <optional>
#include <string>
#include <string_view>
#include <utility>
#include <variant>

namespace ofc {

// Canonical error space, deliberately small: these map onto the failure modes the
// OFC design cares about (missing objects, capacity violations, races on versions).
enum class StatusCode {
  kOk = 0,
  kNotFound,
  kAlreadyExists,
  kInvalidArgument,
  kFailedPrecondition,
  kResourceExhausted,  // e.g. sandbox OOM, cache capacity violation
  kUnavailable,        // e.g. crashed server, no capacity on any node
  kAborted,            // e.g. version conflict on a conditional write
  kDeadlineExceeded,
  kInternal,
  kDataLoss,           // e.g. checksum mismatch with no healthy replica left
};

// Human-readable name for a status code ("OK", "NOT_FOUND", ...).
std::string_view StatusCodeName(StatusCode code);

// A success-or-error value. Cheap to copy on the OK path (no message allocated).
class [[nodiscard]] Status {
 public:
  Status() : code_(StatusCode::kOk) {}
  Status(StatusCode code, std::string message) : code_(code), message_(std::move(message)) {}

  static Status Ok() { return Status(); }

  bool ok() const { return code_ == StatusCode::kOk; }
  StatusCode code() const { return code_; }
  const std::string& message() const { return message_; }

  // "OK" or "NOT_FOUND: no such object".
  std::string ToString() const;

  friend bool operator==(const Status& a, const Status& b) { return a.code_ == b.code_; }

 private:
  StatusCode code_;
  std::string message_;
};

inline Status OkStatus() { return Status::Ok(); }
Status NotFoundError(std::string message);
Status AlreadyExistsError(std::string message);
Status InvalidArgumentError(std::string message);
Status FailedPreconditionError(std::string message);
Status ResourceExhaustedError(std::string message);
Status UnavailableError(std::string message);
Status AbortedError(std::string message);
Status DeadlineExceededError(std::string message);
Status InternalError(std::string message);
Status DataLossError(std::string message);

// A value of type T or an error Status. Accessing value() on an error aborts, so
// callers must test ok() first (or use value_or()).
template <typename T>
class [[nodiscard]] Result {
 public:
  Result(T value) : state_(std::move(value)) {}  // NOLINT(google-explicit-constructor)
  Result(Status status) : state_(std::move(status)) {  // NOLINT(google-explicit-constructor)
    assert(!std::get<Status>(state_).ok() && "Result constructed from OK status");
  }

  bool ok() const { return std::holds_alternative<T>(state_); }

  const Status& status() const {
    static const Status kOk;
    return ok() ? kOk : std::get<Status>(state_);
  }

  T& value() & {
    assert(ok());
    return std::get<T>(state_);
  }
  const T& value() const& {
    assert(ok());
    return std::get<T>(state_);
  }
  T&& value() && {
    assert(ok());
    return std::get<T>(std::move(state_));
  }

  T value_or(T fallback) const& { return ok() ? std::get<T>(state_) : std::move(fallback); }

  T& operator*() & { return value(); }
  const T& operator*() const& { return value(); }
  T* operator->() { return &value(); }
  const T* operator->() const { return &value(); }

 private:
  std::variant<T, Status> state_;
};

// Propagates an error Status from an expression, mirroring RETURN_IF_ERROR.
#define OFC_RETURN_IF_ERROR(expr)                   \
  do {                                              \
    ::ofc::Status ofc_status_internal_ = (expr);    \
    if (!ofc_status_internal_.ok()) {               \
      return ofc_status_internal_;                  \
    }                                               \
  } while (false)

}  // namespace ofc

#endif  // OFC_COMMON_STATUS_H_
