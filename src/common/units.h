// Byte-size and simulated-time units shared by every OFC module.
//
// Simulated time is a plain microsecond count (SimTime / SimDuration). Keeping it
// integral (rather than std::chrono) makes event-queue ordering and arithmetic in
// the discrete-event simulator trivially deterministic across platforms.
#ifndef OFC_COMMON_UNITS_H_
#define OFC_COMMON_UNITS_H_

#include <cstdint>
#include <string>

namespace ofc {

// ---- Bytes -------------------------------------------------------------------

using Bytes = std::int64_t;

constexpr Bytes KiB(std::int64_t n) { return n * 1024; }
constexpr Bytes MiB(std::int64_t n) { return n * 1024 * 1024; }
constexpr Bytes GiB(std::int64_t n) { return n * 1024 * 1024 * 1024; }

// "12.5 MB"-style rendering for logs and bench output.
std::string FormatBytes(Bytes bytes);

// ---- Simulated time ----------------------------------------------------------

// Absolute simulated time and durations, both in microseconds.
using SimTime = std::int64_t;
using SimDuration = std::int64_t;

constexpr SimDuration Micros(std::int64_t n) { return n; }
constexpr SimDuration Millis(std::int64_t n) { return n * 1000; }
constexpr SimDuration Seconds(std::int64_t n) { return n * 1000 * 1000; }
constexpr SimDuration Minutes(std::int64_t n) { return Seconds(n * 60); }

constexpr double ToMillis(SimDuration d) { return static_cast<double>(d) / 1e3; }
constexpr double ToSeconds(SimDuration d) { return static_cast<double>(d) / 1e6; }

// "1.234 ms" / "12.3 s"-style rendering.
std::string FormatDuration(SimDuration d);

}  // namespace ofc

#endif  // OFC_COMMON_UNITS_H_
