#include "src/common/stats.h"

#include <algorithm>
#include <cassert>
#include <cmath>
#include <cstdio>

namespace ofc {

void RunningStat::Add(double x) {
  if (count_ == 0) {
    min_ = max_ = x;
  } else {
    min_ = std::min(min_, x);
    max_ = std::max(max_, x);
  }
  ++count_;
  sum_ += x;
  const double delta = x - mean_;
  mean_ += delta / static_cast<double>(count_);
  m2_ += delta * (x - mean_);
}

double RunningStat::variance() const {
  return count_ < 2 ? 0.0 : m2_ / static_cast<double>(count_ - 1);
}

double RunningStat::stddev() const { return std::sqrt(variance()); }

void Samples::EnsureSorted() const {
  if (dirty_) {
    sorted_ = values_;
    std::sort(sorted_.begin(), sorted_.end());
    dirty_ = false;
  }
}

double Samples::Mean() const {
  if (values_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (double v : values_) {
    s += v;
  }
  return s / static_cast<double>(values_.size());
}

double Samples::Min() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.front();
}

double Samples::Max() const {
  EnsureSorted();
  return sorted_.empty() ? 0.0 : sorted_.back();
}

double Samples::Percentile(double q) const {
  EnsureSorted();
  if (sorted_.empty()) {
    return 0.0;
  }
  q = std::clamp(q, 0.0, 1.0);
  const double rank = q * static_cast<double>(sorted_.size() - 1);
  const std::size_t lo = static_cast<std::size_t>(std::floor(rank));
  const std::size_t hi = static_cast<std::size_t>(std::ceil(rank));
  const double frac = rank - static_cast<double>(lo);
  return sorted_[lo] + (sorted_[hi] - sorted_[lo]) * frac;
}

Histogram::Histogram(double lo, double hi, std::size_t buckets)
    : lo_(lo), hi_(hi), width_((hi - lo) / static_cast<double>(buckets)), counts_(buckets, 0) {
  assert(hi > lo);
  assert(buckets > 0);
}

void Histogram::Add(double x) {
  std::ptrdiff_t idx = static_cast<std::ptrdiff_t>((x - lo_) / width_);
  idx = std::clamp<std::ptrdiff_t>(idx, 0, static_cast<std::ptrdiff_t>(counts_.size()) - 1);
  ++counts_[static_cast<std::size_t>(idx)];
  ++total_;
}

double Histogram::BucketLow(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket);
}

double Histogram::BucketHigh(std::size_t bucket) const {
  return lo_ + width_ * static_cast<double>(bucket + 1);
}

std::string Histogram::ToString(const std::string& label) const {
  std::string out = label + " (n=" + std::to_string(total_) + ")\n";
  std::size_t max_count = 1;
  for (std::size_t c : counts_) {
    max_count = std::max(max_count, c);
  }
  char line[160];
  for (std::size_t i = 0; i < counts_.size(); ++i) {
    const int bar = static_cast<int>(40.0 * static_cast<double>(counts_[i]) /
                                     static_cast<double>(max_count));
    std::snprintf(line, sizeof(line), "  [%10.2f, %10.2f) %8zu ", BucketLow(i), BucketHigh(i),
                  counts_[i]);
    out += line;
    out.append(static_cast<std::size_t>(bar), '#');
    out += '\n';
  }
  return out;
}

void SlidingTimeWindow::Add(SimTime now, double value) {
  Expire(now);
  samples_.emplace_back(now, value);
}

void SlidingTimeWindow::Expire(SimTime now) {
  while (!samples_.empty() && samples_.front().first < now - window_) {
    samples_.pop_front();
  }
}

double SlidingTimeWindow::MeanAt(SimTime now) {
  Expire(now);
  if (samples_.empty()) {
    return 0.0;
  }
  double s = 0.0;
  for (const auto& [t, v] : samples_) {
    s += v;
  }
  return s / static_cast<double>(samples_.size());
}

double SlidingTimeWindow::MaxAt(SimTime now) {
  Expire(now);
  double m = 0.0;
  bool first = true;
  for (const auto& [t, v] : samples_) {
    m = first ? v : std::max(m, v);
    first = false;
  }
  return m;
}

std::size_t SlidingTimeWindow::CountAt(SimTime now) {
  Expire(now);
  return samples_.size();
}

}  // namespace ofc
