#include "src/common/rng.h"

#include <cassert>
#include <cmath>
#include <numbers>

namespace ofc {

namespace {

std::uint64_t SplitMix64(std::uint64_t& x) {
  x += 0x9e3779b97f4a7c15ULL;
  std::uint64_t z = x;
  z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ULL;
  z = (z ^ (z >> 27)) * 0x94d049bb133111ebULL;
  return z ^ (z >> 31);
}

std::uint64_t Rotl(std::uint64_t x, int k) { return (x << k) | (x >> (64 - k)); }

}  // namespace

Rng::Rng(std::uint64_t seed) {
  std::uint64_t s = seed;
  for (auto& word : state_) {
    word = SplitMix64(s);
  }
}

Rng Rng::Fork() { return Rng(NextU64()); }

std::uint64_t Rng::NextU64() {
  // xoshiro256**
  const std::uint64_t result = Rotl(state_[1] * 5, 7) * 9;
  const std::uint64_t t = state_[1] << 17;
  state_[2] ^= state_[0];
  state_[3] ^= state_[1];
  state_[1] ^= state_[2];
  state_[0] ^= state_[3];
  state_[2] ^= t;
  state_[3] = Rotl(state_[3], 45);
  return result;
}

double Rng::NextDouble() {
  return static_cast<double>(NextU64() >> 11) * 0x1.0p-53;
}

std::int64_t Rng::UniformInt(std::int64_t lo, std::int64_t hi) {
  assert(lo <= hi);
  const std::uint64_t range = static_cast<std::uint64_t>(hi - lo) + 1;
  if (range == 0) {  // Full 64-bit range.
    return static_cast<std::int64_t>(NextU64());
  }
  // Rejection sampling to avoid modulo bias.
  const std::uint64_t limit = UINT64_MAX - UINT64_MAX % range;
  std::uint64_t v;
  do {
    v = NextU64();
  } while (v >= limit);
  return lo + static_cast<std::int64_t>(v % range);
}

double Rng::Uniform(double lo, double hi) { return lo + (hi - lo) * NextDouble(); }

double Rng::Gaussian(double mean, double stddev) {
  double u1;
  do {
    u1 = NextDouble();
  } while (u1 <= 1e-300);
  const double u2 = NextDouble();
  const double mag = std::sqrt(-2.0 * std::log(u1));
  return mean + stddev * mag * std::cos(2.0 * std::numbers::pi * u2);
}

double Rng::Exponential(double mean) {
  double u;
  do {
    u = NextDouble();
  } while (u <= 1e-300);
  return -mean * std::log(u);
}

bool Rng::Bernoulli(double p) { return NextDouble() < p; }

std::size_t Rng::Index(std::size_t size) {
  assert(size > 0);
  return static_cast<std::size_t>(UniformInt(0, static_cast<std::int64_t>(size) - 1));
}

std::size_t Rng::WeightedIndex(const std::vector<double>& weights) {
  double total = 0.0;
  for (double w : weights) {
    assert(w >= 0.0);
    total += w;
  }
  assert(total > 0.0);
  double r = NextDouble() * total;
  for (std::size_t i = 0; i < weights.size(); ++i) {
    r -= weights[i];
    if (r < 0.0) {
      return i;
    }
  }
  return weights.size() - 1;
}

}  // namespace ofc
