// Deterministic, salt-independent payload checksums for the cache data plane.
//
// The simulator carries no real payload bytes, so a checksum over (key, size)
// stands in for a CRC over the object's contents, and mixing in the version
// models the "checksum changes when the data changes" property end-to-end:
// the proxy stamps a fingerprint at write time, Cluster replicas and
// ObjectStore objects store the version-stamped checksum, and every read path
// re-derives the expectation and compares.
//
// CRITICAL: unlike DetHash (src/common/hash.h), these functions must NOT mix
// in the global hash salt. Checksums are event-visible state — they decide
// whether a read self-heals, which replica is promoted, and when a node is
// quarantined — so they must be bit-identical under the salt perturbation that
// tests/determinism_test.cpp and `ofc-sim --selfcheck-determinism` apply.
#ifndef OFC_COMMON_CHECKSUM_H_
#define OFC_COMMON_CHECKSUM_H_

#include <cstdint>
#include <string_view>

#include "src/common/units.h"

namespace ofc {

using Checksum = std::uint64_t;

// FNV-1a over the key bytes, then the payload-size surrogate folded in. This is
// the content fingerprint: what a real system would compute as CRC(payload).
// Version-independent, so a write path can stamp it before the store assigns
// the landing version (see StampChecksum).
inline Checksum PayloadFingerprint(std::string_view key, Bytes size) {
  std::uint64_t h = 0xcbf29ce484222325ULL;  // FNV offset basis.
  for (const char c : key) {
    h ^= static_cast<std::uint64_t>(static_cast<unsigned char>(c));
    h *= 0x00000100000001b3ULL;  // FNV prime.
  }
  h ^= static_cast<std::uint64_t>(size);
  h *= 0x00000100000001b3ULL;
  return h;
}

// Folds the version into a fingerprint to produce the checksum actually stored
// alongside a replica or store object. SplitMix64-style finalizer for full
// avalanche — a corrupted (flipped) stored checksum never accidentally matches
// the expectation for any other version.
inline Checksum StampChecksum(Checksum fingerprint, std::uint64_t version) {
  std::uint64_t h = fingerprint ^ (version + 0x9e3779b97f4a7c15ULL);
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

// Convenience: the expected stored checksum for (key, size, version).
inline Checksum ExpectedChecksum(std::string_view key, Bytes size,
                                 std::uint64_t version) {
  return StampChecksum(PayloadFingerprint(key, size), version);
}

// Deterministic corruption: how a fault injector or rot event damages a stored
// checksum. XOR with a fixed pattern is its own inverse, which tests exploit,
// but the data plane never "repairs" by re-flipping — repair always re-derives
// the expected checksum from a healthy copy.
inline Checksum CorruptChecksum(Checksum checksum) {
  return checksum ^ 0xDEADBEEFDEADBEEFULL;
}

}  // namespace ofc

#endif  // OFC_COMMON_CHECKSUM_H_
