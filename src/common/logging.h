// Minimal leveled logging. Off by default so simulations stay quiet; benches and
// examples can raise the level. Not thread-safe by design: the whole simulator is
// single-threaded and deterministic.
#ifndef OFC_COMMON_LOGGING_H_
#define OFC_COMMON_LOGGING_H_

#include <functional>
#include <sstream>
#include <string>

namespace ofc {

enum class LogLevel : int { kDebug = 0, kInfo = 1, kWarning = 2, kError = 3, kOff = 4 };

// Global threshold; messages below it are discarded.
void SetLogLevel(LogLevel level);
LogLevel GetLogLevel();

// Optional prefix hook, prepended to every log line. The experiment harnesses
// install one that renders the simulated clock (e.g. "t=12.345s"), so log
// output lines up with metric snapshots and trace timestamps. The installer
// must clear the hook before anything it captures is destroyed.
void SetLogPrefixHook(std::function<std::string()> hook);
void ClearLogPrefixHook();

namespace internal {

class LogMessage {
 public:
  LogMessage(LogLevel level, const char* file, int line);
  ~LogMessage();

  std::ostream& stream() { return stream_; }

 private:
  LogLevel level_;
  std::ostringstream stream_;
};

// Swallows the streamed expression when the level is disabled.
struct LogVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace internal
}  // namespace ofc

#define OFC_LOG(level)                                                      \
  (static_cast<int>(::ofc::LogLevel::k##level) <                            \
   static_cast<int>(::ofc::GetLogLevel()))                                  \
      ? (void)0                                                             \
      : ::ofc::internal::LogVoidify() &                                     \
            ::ofc::internal::LogMessage(::ofc::LogLevel::k##level, __FILE__, __LINE__).stream()

#endif  // OFC_COMMON_LOGGING_H_
