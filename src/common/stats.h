// Small statistics toolkit: running summaries, percentile sketches over stored
// samples, fixed-bucket histograms, and sliding time windows.
//
// These back both the paper's measurements (e.g. Figure 6 percentiles, the §6.4
// memory-churn sliding window) and the bench harness output.
#ifndef OFC_COMMON_STATS_H_
#define OFC_COMMON_STATS_H_

#include <cstddef>
#include <deque>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace ofc {

// Accumulates count/mean/min/max/variance without storing samples (Welford).
class RunningStat {
 public:
  void Add(double x);

  std::size_t count() const { return count_; }
  double mean() const { return count_ == 0 ? 0.0 : mean_; }
  double min() const { return count_ == 0 ? 0.0 : min_; }
  double max() const { return count_ == 0 ? 0.0 : max_; }
  double variance() const;
  double stddev() const;
  double sum() const { return sum_; }

 private:
  std::size_t count_ = 0;
  double mean_ = 0.0;
  double m2_ = 0.0;
  double min_ = 0.0;
  double max_ = 0.0;
  double sum_ = 0.0;
};

// Stores all samples; exact percentiles. Fine for bench-scale sample counts.
class Samples {
 public:
  void Add(double x) {
    values_.push_back(x);
    dirty_ = true;
  }
  std::size_t count() const { return values_.size(); }
  double Mean() const;
  double Min() const;
  double Max() const;
  // q in [0, 1]; linear interpolation between closest ranks. Empty -> 0.
  double Percentile(double q) const;
  double Median() const { return Percentile(0.5); }
  const std::vector<double>& values() const { return values_; }

 private:
  std::vector<double> values_;
  mutable std::vector<double> sorted_;
  mutable bool dirty_ = true;
  void EnsureSorted() const;
};

// Fixed-width bucket histogram over [lo, hi); out-of-range samples clamp to the
// first/last bucket. Used to render Figure 5/6-style distributions as text.
class Histogram {
 public:
  Histogram(double lo, double hi, std::size_t buckets);

  void Add(double x);
  std::size_t bucket_count() const { return counts_.size(); }
  std::size_t count(std::size_t bucket) const { return counts_[bucket]; }
  std::size_t total() const { return total_; }
  double BucketLow(std::size_t bucket) const;
  double BucketHigh(std::size_t bucket) const;

  // Multi-line ASCII rendering with per-bucket bars, for bench output.
  std::string ToString(const std::string& label) const;

 private:
  double lo_;
  double hi_;
  double width_;
  std::vector<std::size_t> counts_;
  std::size_t total_ = 0;
};

// Sliding window of (time, value) observations; supports querying aggregate
// statistics over the last `window` of simulated time. Backs the §6.4 slack-pool
// estimator (60 s churn samples, 120 s adjustment period).
class SlidingTimeWindow {
 public:
  explicit SlidingTimeWindow(SimDuration window) : window_(window) {}

  void Add(SimTime now, double value);
  // Drops samples older than `now - window`, then reports.
  double MeanAt(SimTime now);
  double MaxAt(SimTime now);
  std::size_t CountAt(SimTime now);

 private:
  void Expire(SimTime now);
  SimDuration window_;
  std::deque<std::pair<SimTime, double>> samples_;
};

}  // namespace ofc

#endif  // OFC_COMMON_STATS_H_
