#include "src/common/units.h"

#include <cmath>
#include <cstdio>

namespace ofc {

namespace {

std::string FormatWithUnit(double value, const char* unit) {
  char buf[64];
  if (value == std::floor(value) && std::fabs(value) < 1e15) {
    std::snprintf(buf, sizeof(buf), "%.0f %s", value, unit);
  } else {
    std::snprintf(buf, sizeof(buf), "%.2f %s", value, unit);
  }
  return buf;
}

}  // namespace

std::string FormatBytes(Bytes bytes) {
  const double b = static_cast<double>(bytes);
  if (bytes < KiB(1)) {
    return FormatWithUnit(b, "B");
  }
  if (bytes < MiB(1)) {
    return FormatWithUnit(b / 1024.0, "KiB");
  }
  if (bytes < GiB(1)) {
    return FormatWithUnit(b / (1024.0 * 1024.0), "MiB");
  }
  return FormatWithUnit(b / (1024.0 * 1024.0 * 1024.0), "GiB");
}

std::string FormatDuration(SimDuration d) {
  const double us = static_cast<double>(d);
  if (d < Millis(1)) {
    return FormatWithUnit(us, "us");
  }
  if (d < Seconds(1)) {
    return FormatWithUnit(us / 1e3, "ms");
  }
  if (d < Minutes(2)) {
    return FormatWithUnit(us / 1e6, "s");
  }
  return FormatWithUnit(us / 6e7, "min");
}

}  // namespace ofc
