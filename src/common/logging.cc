#include "src/common/logging.h"

#include <cstdio>
#include <cstring>

namespace ofc {

namespace {
LogLevel g_level = LogLevel::kWarning;
std::function<std::string()> g_prefix_hook;

const char* LevelName(LogLevel level) {
  switch (level) {
    case LogLevel::kDebug:
      return "D";
    case LogLevel::kInfo:
      return "I";
    case LogLevel::kWarning:
      return "W";
    case LogLevel::kError:
      return "E";
    case LogLevel::kOff:
      return "?";
  }
  return "?";
}
}  // namespace

void SetLogLevel(LogLevel level) { g_level = level; }
LogLevel GetLogLevel() { return g_level; }

void SetLogPrefixHook(std::function<std::string()> hook) { g_prefix_hook = std::move(hook); }
void ClearLogPrefixHook() { g_prefix_hook = nullptr; }

namespace internal {

LogMessage::LogMessage(LogLevel level, const char* file, int line) : level_(level) {
  const char* base = std::strrchr(file, '/');
  stream_ << "[" << LevelName(level) << " ";
  if (g_prefix_hook) {
    stream_ << g_prefix_hook() << " ";
  }
  stream_ << (base ? base + 1 : file) << ":" << line << "] ";
}

LogMessage::~LogMessage() {
  const std::string text = stream_.str();
  std::fprintf(stderr, "%s\n", text.c_str());
  (void)level_;
}

}  // namespace internal
}  // namespace ofc
