// Deterministic, salt-perturbable hashing for unordered containers.
//
// The simulator's unordered containers are allowed only on paths whose
// *iteration order* can never reach event scheduling or exported metrics
// (enforced by tools/simlint). To prove that discipline experimentally, every
// remaining unordered container uses DetHash, whose output mixes in a global
// salt: tests/determinism_test.cpp perturbs the salt between runs and asserts
// bit-identical results, demonstrating that no container ordering leaks into
// observable state. The salt defaults to 0, so production runs are unaffected.
#ifndef OFC_COMMON_HASH_H_
#define OFC_COMMON_HASH_H_

#include <cstdint>
#include <functional>

namespace ofc {

// Global hash-order perturbation knob. Single-threaded simulator: no atomics.
// Must be set before the containers under test are populated.
void SetHashSalt(std::uint64_t salt);
std::uint64_t HashSalt();

namespace internal {

// SplitMix64 finalizer: full-avalanche mix of the salted hash.
inline std::uint64_t MixHash(std::uint64_t h) {
  h += 0x9e3779b97f4a7c15ULL;
  h = (h ^ (h >> 30)) * 0xbf58476d1ce4e5b9ULL;
  h = (h ^ (h >> 27)) * 0x94d049bb133111ebULL;
  return h ^ (h >> 31);
}

}  // namespace internal

// Drop-in replacement for std::hash<T> that perturbs bucket placement (and
// therefore iteration order) with the global salt.
template <typename T>
struct DetHash {
  std::size_t operator()(const T& value) const {
    const std::uint64_t base = static_cast<std::uint64_t>(std::hash<T>{}(value));
    return static_cast<std::size_t>(internal::MixHash(base ^ HashSalt()));
  }
};

}  // namespace ofc

#endif  // OFC_COMMON_HASH_H_
