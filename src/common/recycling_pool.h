// RecyclingPool: a free-list allocator for allocate_shared'd request records.
//
// The platform's invocation hot path used to pay one make_shared control-block
// allocation per request (plus one free at completion). At million-invocation
// scale that is two allocator round-trips per event chain for an object whose
// size never changes. RecyclingPool keeps freed control blocks (object +
// refcounts, one combined allocation) on a free list and hands them back to
// the next Make() call, so steady-state request turnover allocates nothing.
//
// Lifetime: the free list lives in shared state referenced both by the pool
// and by every outstanding allocation's embedded allocator copy. Blocks freed
// after the pool owner is destroyed (e.g. an EventLoop callback dropping the
// last shared_ptr<Request> during teardown, after the Platform is gone) land
// on the still-alive state and are released by its destructor — no
// use-after-free, no leak, regardless of destruction order.
//
// The pool only recycles the single block size allocate_shared asks for
// (n == 1 of the rebound control-block type). Anything else — array
// allocations, a second rebound type, over-aligned types — falls through to
// plain operator new/delete.
#ifndef OFC_COMMON_RECYCLING_POOL_H_
#define OFC_COMMON_RECYCLING_POOL_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <utility>
#include <vector>

namespace ofc {

template <typename T>
class RecyclingPool {
 public:
  // Blocks kept on the free list; beyond this, frees go straight to the heap.
  // Bounds pool memory to (peak in-flight) without tracking it explicitly.
  static constexpr std::size_t kMaxFreeBlocks = 65536;

  RecyclingPool() : state_(std::make_shared<State>()) {}

  // Constructs a pool-backed shared_ptr<T>; reuses a freed block when one fits.
  template <typename... Args>
  std::shared_ptr<T> Make(Args&&... args) {
    return std::allocate_shared<T>(Alloc<T>{state_}, std::forward<Args>(args)...);
  }

  // Introspection for tests and the scale bench.
  std::size_t free_blocks() const { return state_->free_list.size(); }
  std::uint64_t reuses() const { return state_->reuses; }
  std::uint64_t fresh_allocations() const { return state_->fresh; }

 private:
  struct State {
    std::vector<void*> free_list;
    std::size_t block_bytes = 0;  // Fixed on first n==1 allocation.
    std::uint64_t reuses = 0;
    std::uint64_t fresh = 0;
    ~State() {
      for (void* block : free_list) {
        ::operator delete(block);
      }
    }
  };

  template <typename U>
  struct Alloc {
    using value_type = U;

    std::shared_ptr<State> state;

    explicit Alloc(std::shared_ptr<State> s) : state(std::move(s)) {}
    template <typename V>
    // NOLINTNEXTLINE(google-explicit-constructor): rebind conversion.
    Alloc(const Alloc<V>& other) : state(other.state) {}

    U* allocate(std::size_t n) {
      if constexpr (alignof(U) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
        // Over-aligned: bypass the pool (free-list blocks use default
        // alignment and the matching plain operator delete).
        return static_cast<U*>(::operator new(n * sizeof(U), std::align_val_t{alignof(U)}));
      } else {
        const std::size_t bytes = n * sizeof(U);
        if (n == 1) {
          if (state->block_bytes == 0) {
            state->block_bytes = bytes;
          }
          if (bytes == state->block_bytes && !state->free_list.empty()) {
            void* block = state->free_list.back();
            state->free_list.pop_back();
            ++state->reuses;
            return static_cast<U*>(block);
          }
        }
        ++state->fresh;
        return static_cast<U*>(::operator new(bytes));
      }
    }

    void deallocate(U* p, std::size_t n) noexcept {
      if constexpr (alignof(U) > __STDCPP_DEFAULT_NEW_ALIGNMENT__) {
        ::operator delete(p, std::align_val_t{alignof(U)});
      } else {
        const std::size_t bytes = n * sizeof(U);
        if (n == 1 && bytes == state->block_bytes &&
            state->free_list.size() < kMaxFreeBlocks) {
          state->free_list.push_back(p);
          return;
        }
        ::operator delete(p);
      }
    }

    template <typename V>
    friend bool operator==(const Alloc& a, const Alloc<V>& b) {
      return a.state == b.state;
    }
    template <typename V>
    friend bool operator!=(const Alloc& a, const Alloc<V>& b) {
      return a.state != b.state;
    }
  };

  std::shared_ptr<State> state_;
};

}  // namespace ofc

#endif  // OFC_COMMON_RECYCLING_POOL_H_
