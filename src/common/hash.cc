#include "src/common/hash.h"

namespace ofc {
namespace {

std::uint64_t g_hash_salt = 0;

}  // namespace

void SetHashSalt(std::uint64_t salt) { g_hash_salt = salt; }

std::uint64_t HashSalt() { return g_hash_salt; }

}  // namespace ofc
