// Runtime invariant checks for the deterministic simulator.
//
// SIM_ASSERT guards cheap invariants (integer comparisons on hot paths) and is
// enabled whenever the build defines OFC_SIM_ASSERTS — on by default for every
// build type except Release (see the top-level CMakeLists; CI Release builds
// re-enable it explicitly). SIM_DCHECK guards expensive re-derivations (O(n)
// scans) and is additionally compiled out whenever NDEBUG is set, so it only
// runs in Debug builds.
//
// Both macros stream extra context:
//
//   SIM_ASSERT(used <= cap) << "segment " << index;
//
// On failure the expression, location and streamed message are printed to
// stderr and the process aborts — a violated invariant means simulation
// results can no longer be trusted, so there is no recovery path.
//
// When compiled out, the condition is parsed but not evaluated (no side
// effects, no "unused variable" warnings, zero cost).
#ifndef OFC_COMMON_SIM_ASSERT_H_
#define OFC_COMMON_SIM_ASSERT_H_

#include <functional>
#include <sstream>

namespace ofc {

// Post-mortem hook: invoked exactly once, right before a failed SIM_ASSERT
// aborts the process, with the formatted failure message. Used by the
// flight-recorder dump-on-assert path; the hook must not assume the simulation
// is in a consistent state (an invariant just failed). The hook is cleared
// before it runs, so a SIM_ASSERT failing *inside* the hook cannot recurse.
void SetSimAssertHook(std::function<void(const std::string& message)> hook);
void ClearSimAssertHook();

}  // namespace ofc

namespace ofc::internal {

// Collects the streamed message and aborts in its destructor.
class AssertMessage {
 public:
  AssertMessage(const char* file, int line, const char* expr);
  [[noreturn]] ~AssertMessage();

  std::ostream& stream() { return stream_; }

 private:
  std::ostringstream stream_;
};

// Swallows the streamed expression on the passing path.
struct AssertVoidify {
  void operator&(std::ostream&) {}
};

}  // namespace ofc::internal

// Parses-but-never-evaluates `cond`; keeps symbols referenced by the condition
// "used" so compiled-out checks do not trigger -Werror=unused.
#define OFC_SIM_ASSERT_DISABLED_(cond) \
  switch (0)                           \
  case 0:                              \
  default:                             \
    while (false && (cond))            \
  ::ofc::internal::AssertVoidify() & ::ofc::internal::AssertMessage("", 0, "").stream()

#ifdef OFC_SIM_ASSERTS
#define SIM_ASSERT(cond)               \
  (cond) ? (void)0                     \
         : ::ofc::internal::AssertVoidify() & \
               ::ofc::internal::AssertMessage(__FILE__, __LINE__, #cond).stream()
#else
#define SIM_ASSERT(cond) OFC_SIM_ASSERT_DISABLED_(cond)
#endif

#if defined(OFC_SIM_ASSERTS) && !defined(NDEBUG)
#define SIM_DCHECK(cond) SIM_ASSERT(cond)
#else
#define SIM_DCHECK(cond) OFC_SIM_ASSERT_DISABLED_(cond)
#endif

#endif  // OFC_COMMON_SIM_ASSERT_H_
