#include "src/common/sim_assert.h"

#include <cstdio>
#include <cstdlib>
#include <utility>

namespace ofc {
namespace {

std::function<void(const std::string&)>& AssertHook() {
  static std::function<void(const std::string&)> hook;
  return hook;
}

}  // namespace

void SetSimAssertHook(std::function<void(const std::string&)> hook) {
  AssertHook() = std::move(hook);
}

void ClearSimAssertHook() { AssertHook() = nullptr; }

}  // namespace ofc

namespace ofc::internal {

AssertMessage::AssertMessage(const char* file, int line, const char* expr) {
  stream_ << file << ":" << line << ": SIM_ASSERT failed: " << expr;
}

AssertMessage::~AssertMessage() {
  const std::string text = stream_.str();
  std::fprintf(stderr, "%s\n", text.c_str());
  std::fflush(stderr);
  // Hand the failure to the post-mortem hook (flight-recorder dump) before
  // aborting. Cleared first so a failure inside the hook aborts immediately
  // instead of recursing.
  auto hook = std::move(AssertHook());
  ClearSimAssertHook();
  if (hook) {
    hook(text);
  }
  std::abort();
}

}  // namespace ofc::internal
