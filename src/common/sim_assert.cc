#include "src/common/sim_assert.h"

#include <cstdio>
#include <cstdlib>

namespace ofc::internal {

AssertMessage::AssertMessage(const char* file, int line, const char* expr) {
  stream_ << file << ":" << line << ": SIM_ASSERT failed: " << expr;
}

AssertMessage::~AssertMessage() {
  const std::string text = stream_.str();
  std::fprintf(stderr, "%s\n", text.c_str());
  std::fflush(stderr);
  std::abort();
}

}  // namespace ofc::internal
