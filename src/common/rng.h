// Deterministic random number generation for workload synthesis and simulation.
//
// All stochastic behaviour in the repo flows through Rng so a (seed) fully
// determines an experiment. Rng wraps a 64-bit SplitMix-seeded xoshiro256**,
// which is fast, has good statistical quality, and is trivially reproducible.
#ifndef OFC_COMMON_RNG_H_
#define OFC_COMMON_RNG_H_

#include <cstdint>
#include <vector>

namespace ofc {

class Rng {
 public:
  explicit Rng(std::uint64_t seed = 0x9e3779b97f4a7c15ULL);

  // Derives an independent child stream; used to give each tenant / function its
  // own stream so adding one does not perturb the others.
  Rng Fork();

  std::uint64_t NextU64();

  // Uniform in [0, 1).
  double NextDouble();

  // Uniform integer in [lo, hi] inclusive. Requires lo <= hi.
  std::int64_t UniformInt(std::int64_t lo, std::int64_t hi);

  // Uniform real in [lo, hi).
  double Uniform(double lo, double hi);

  // Standard normal via Box-Muller (no cached spare: determinism over speed).
  double Gaussian(double mean = 0.0, double stddev = 1.0);

  // Exponential with the given mean (used for Poisson arrival processes).
  double Exponential(double mean);

  // True with probability p.
  bool Bernoulli(double p);

  // Uniformly chosen index into a non-empty container of the given size.
  std::size_t Index(std::size_t size);

  // Samples an index according to non-negative weights (at least one positive).
  std::size_t WeightedIndex(const std::vector<double>& weights);

 private:
  std::uint64_t state_[4];
};

}  // namespace ofc

#endif  // OFC_COMMON_RNG_H_
