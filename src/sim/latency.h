// Latency models for storage and network transfers.
//
// Every data-path cost in the simulation reduces to: fixed per-operation latency
// plus size divided by bandwidth, optionally jittered. Profiles below are
// calibrated so the baselines reproduce the paper's measurements (Figure 3 E&L
// fractions, §7.2.1 micro-latencies).
#ifndef OFC_SIM_LATENCY_H_
#define OFC_SIM_LATENCY_H_

#include "src/common/rng.h"
#include "src/common/units.h"

namespace ofc::sim {

// Fixed + size-proportional latency with multiplicative jitter.
struct LatencyModel {
  SimDuration base = 0;              // Per-operation fixed cost.
  double bytes_per_second = 1e12;    // Transfer bandwidth.
  double jitter_fraction = 0.0;      // Uniform in [1-j, 1+j] applied to the total.

  // Cost of moving `size` bytes in one operation. `rng` may be null for a
  // deterministic (jitter-free) cost.
  SimDuration Cost(Bytes size, Rng* rng = nullptr) const;
};

// Catalogue of calibrated profiles.
//
// The RSDS profiles model a Swift/S3-style object store front end: tens of
// milliseconds of request latency and modest per-stream bandwidth, which makes
// E&L dominate small-object function time (Figure 3). The Redis profile models a
// co-located ElastiCache-style IMOC. RAMCloud profiles model kernel-bypass RTTs
// from the RAMCloud paper, scaled to the testbed's 10 GbE.
struct LatencyProfiles {
  // Remote shared data store, Swift deployment used in §7 (same switch).
  static LatencyModel SwiftRequest() {
    return LatencyModel{Millis(18), 120e6, 0.05};
  }
  // AWS S3-style RSDS used in the §2.2.3 motivation experiment.
  static LatencyModel S3Request() {
    return LatencyModel{Millis(28), 80e6, 0.10};
  }
  // Metadata-only (control) operations: Swift's shadow-object persist measures
  // a constant ~11 ms (§7.2.1).
  static LatencyModel SwiftControl() { return LatencyModel{Millis(11), 0.0, 0.05}; }
  static LatencyModel S3Control() { return LatencyModel{Millis(16), 0.0, 0.10}; }
  // Redis IMOC (ElastiCache in §2.2.3, OWK-Redis baseline in §7.2).
  static LatencyModel RedisRequest() {
    return LatencyModel{Micros(350), 1.1e9, 0.05};
  }
  static LatencyModel RedisControl() { return LatencyModel{Micros(250), 0.0, 0.05}; }
  // RAMCloud access from the same node (loopback + in-memory copy).
  static LatencyModel RamcloudLocal() {
    return LatencyModel{Micros(120), 4.5e9, 0.03};
  }
  // RAMCloud access across the 10 GbE switch.
  static LatencyModel RamcloudRemote() {
    return LatencyModel{Micros(280), 1.05e9, 0.03};
  }
  // Backup (SSD) reads used during recovery / backup promotion. Calibrated to
  // the paper's migration times: 0.18 ms @ 8 MB ... 13.5 ms @ 1 GB, i.e. mostly
  // bandwidth-bound at ~75 GB/s effective (page-cache-warm reads).
  static LatencyModel BackupDiskRead() {
    return LatencyModel{Micros(70), 75e9, 0.05};
  }
  // Backup (SSD) writes on the persistence path.
  static LatencyModel BackupDiskWrite() {
    return LatencyModel{Micros(90), 1.4e9, 0.05};
  }
};

}  // namespace ofc::sim

#endif  // OFC_SIM_LATENCY_H_
