#include "src/sim/event_loop.h"

#include <utility>

#include "src/common/sim_assert.h"

namespace ofc::sim {

EventLoop::EventId EventLoop::ScheduleAfter(SimDuration delay, Callback cb) {
  SIM_ASSERT(delay >= 0) << "; scheduling into the past, delay=" << delay;
  return ScheduleAt(now_ + delay, std::move(cb));
}

EventLoop::EventId EventLoop::ScheduleAt(SimTime when, Callback cb) {
  SIM_ASSERT(when >= now_) << "; scheduling into the past, when=" << when << " now=" << now_;
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventLoop::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  ++cancelled_;
  return true;
}

void EventLoop::Dispatch(const Event& ev) {
  auto it = callbacks_.find(ev.id);
  if (it == callbacks_.end()) {
    --cancelled_;  // Cancelled event: drop its queue slot.
    return;
  }
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  // Event-loop monotonicity: simulated time never moves backwards.
  SIM_ASSERT(ev.when >= now_) << "; event at " << ev.when << " dispatched at " << now_;
  now_ = ev.when;
  cb();
}

void EventLoop::Run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    Dispatch(ev);
  }
}

void EventLoop::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    Dispatch(ev);
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool EventLoop::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    const bool live = callbacks_.contains(ev.id);
    Dispatch(ev);
    if (live) {
      return true;
    }
  }
  return false;
}

}  // namespace ofc::sim
