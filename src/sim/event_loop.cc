#include "src/sim/event_loop.h"

#include <cassert>
#include <utility>

namespace ofc::sim {

EventLoop::EventId EventLoop::ScheduleAfter(SimDuration delay, Callback cb) {
  assert(delay >= 0);
  return ScheduleAt(now_ + delay, std::move(cb));
}

EventLoop::EventId EventLoop::ScheduleAt(SimTime when, Callback cb) {
  assert(when >= now_);
  const EventId id = next_id_++;
  queue_.push(Event{when, next_seq_++, id});
  callbacks_.emplace(id, std::move(cb));
  return id;
}

bool EventLoop::Cancel(EventId id) {
  auto it = callbacks_.find(id);
  if (it == callbacks_.end()) {
    return false;
  }
  callbacks_.erase(it);
  ++cancelled_;
  return true;
}

void EventLoop::Dispatch(const Event& ev) {
  auto it = callbacks_.find(ev.id);
  if (it == callbacks_.end()) {
    --cancelled_;  // Cancelled event: drop its queue slot.
    return;
  }
  Callback cb = std::move(it->second);
  callbacks_.erase(it);
  now_ = ev.when;
  cb();
}

void EventLoop::Run() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    Dispatch(ev);
  }
}

void EventLoop::RunUntil(SimTime deadline) {
  while (!queue_.empty() && queue_.top().when <= deadline) {
    Event ev = queue_.top();
    queue_.pop();
    Dispatch(ev);
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool EventLoop::Step() {
  while (!queue_.empty()) {
    Event ev = queue_.top();
    queue_.pop();
    const bool live = callbacks_.contains(ev.id);
    Dispatch(ev);
    if (live) {
      return true;
    }
  }
  return false;
}

}  // namespace ofc::sim
