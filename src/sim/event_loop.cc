#include "src/sim/event_loop.h"

#include <utility>

#include "src/common/sim_assert.h"

namespace ofc::sim {

EventLoop::EventId EventLoop::ScheduleAfter(SimDuration delay, Callback cb) {
  SIM_ASSERT(delay >= 0) << "; scheduling into the past, delay=" << delay;
  return ScheduleAt(now_ + delay, std::move(cb));
}

EventLoop::EventId EventLoop::ScheduleAt(SimTime when, Callback cb) {
  SIM_ASSERT(when >= now_) << "; scheduling into the past, when=" << when << " now=" << now_;
  const std::uint32_t slot = AcquireSlot();
  Slot& s = slots_[slot];
  s.cb = std::move(cb);
  s.armed = true;
  HeapPush(HeapEntry{when, next_seq_++, slot});
  return MakeId(slot, s.generation);
}

bool EventLoop::Cancel(EventId id) {
  const std::uint32_t slot = static_cast<std::uint32_t>(id >> 32);
  const std::uint32_t generation = static_cast<std::uint32_t>(id);
  if (slot >= slots_.size()) {
    return false;
  }
  Slot& s = slots_[slot];
  if (!s.armed || s.generation != generation) {
    return false;  // Already ran, already cancelled, or the slot was reused.
  }
  s.cb = Callback();  // Destroy captured state now, not at pop time.
  s.armed = false;    // Tombstone: the heap entry is dropped when popped.
  ++cancelled_;
  MaybeCompact();
  return true;
}

std::uint32_t EventLoop::AcquireSlot() {
  std::uint32_t index;
  if (free_head_ != kNoSlot) {
    index = free_head_;
    free_head_ = slots_[index].next_free;
  } else {
    index = static_cast<std::uint32_t>(slots_.size());
    SIM_ASSERT(index != kNoSlot) << "; event slot slab exhausted";
    slots_.emplace_back();
  }
  Slot& s = slots_[index];
  if (++s.generation == 0) {  // Skip 0 so EventId 0 stays a "no event" sentinel.
    ++s.generation;
  }
  s.next_free = kNoSlot;
  return index;
}

void EventLoop::ReleaseSlot(std::uint32_t index) {
  Slot& s = slots_[index];
  s.armed = false;
  s.next_free = free_head_;
  free_head_ = index;
}

void EventLoop::HeapPush(HeapEntry entry) {
  // Sift up in a 4-ary min-heap: fewer levels than binary, and the four-child
  // compare in SiftDown runs over one cache line of 16-byte entries.
  std::size_t i = heap_.size();
  heap_.push_back(entry);
  while (i > 0) {
    const std::size_t parent = (i - 1) / 4;
    if (!Before(heap_[i], heap_[parent])) {
      break;
    }
    std::swap(heap_[i], heap_[parent]);
    i = parent;
  }
}

void EventLoop::SiftDown(std::size_t i) {
  const std::size_t n = heap_.size();
  while (true) {
    const std::size_t first_child = 4 * i + 1;
    if (first_child >= n) {
      return;
    }
    std::size_t best = first_child;
    const std::size_t last_child = first_child + 4 < n ? first_child + 4 : n;
    for (std::size_t c = first_child + 1; c < last_child; ++c) {
      if (Before(heap_[c], heap_[best])) {
        best = c;
      }
    }
    if (!Before(heap_[best], heap_[i])) {
      return;
    }
    std::swap(heap_[i], heap_[best]);
    i = best;
  }
}

void EventLoop::HeapPopTop() {
  heap_.front() = heap_.back();
  heap_.pop_back();
  if (!heap_.empty()) {
    SiftDown(0);
  }
}

void EventLoop::Heapify() {
  if (heap_.size() < 2) {
    return;
  }
  for (std::size_t i = (heap_.size() - 2) / 4 + 1; i-- > 0;) {
    SiftDown(i);
  }
}

void EventLoop::MaybeCompact() {
  // Compact when tombstones outnumber live entries (amortized O(1) per cancel;
  // the trigger depends only on deterministic counters, so replays compact at
  // identical points — not that order could drift: (when, seq) is total).
  if (cancelled_ < 64 || cancelled_ * 2 < heap_.size()) {
    return;
  }
  std::size_t kept = 0;
  for (std::size_t i = 0; i < heap_.size(); ++i) {
    const std::uint32_t slot = heap_[i].slot;
    if (slots_[slot].armed) {
      heap_[kept++] = heap_[i];
    } else {
      ReleaseSlot(slot);
    }
  }
  heap_.resize(kept);
  cancelled_ = 0;
  Heapify();
}

bool EventLoop::TakeTop(Callback* out) {
  const HeapEntry top = heap_.front();
  HeapPopTop();
  Slot& s = slots_[top.slot];
  if (!s.armed) {
    --cancelled_;
    ReleaseSlot(top.slot);
    return false;
  }
  *out = std::move(s.cb);
  s.cb = Callback();
  ReleaseSlot(top.slot);
  // Event-loop monotonicity: simulated time never moves backwards.
  SIM_ASSERT(top.when >= now_) << "; event at " << top.when << " dispatched at " << now_;
  now_ = top.when;
  ++dispatched_;
  return true;
}

void EventLoop::Run() {
  Callback cb;
  while (!heap_.empty()) {
    if (dispatch_budget_exhausted()) {
      return;
    }
    if (TakeTop(&cb)) {
      cb();
      cb = Callback();  // Release captured state before the next event runs.
    }
  }
}

void EventLoop::RunUntil(SimTime deadline) {
  Callback cb;
  while (!heap_.empty() && heap_.front().when <= deadline) {
    if (dispatch_budget_exhausted()) {
      return;  // Leave now() where it is: the run is resumable.
    }
    if (TakeTop(&cb)) {
      cb();
      cb = Callback();  // Release captured state before the next event runs.
    }
  }
  if (now_ < deadline) {
    now_ = deadline;
  }
}

bool EventLoop::Step() {
  Callback cb;
  while (!heap_.empty()) {
    if (dispatch_budget_exhausted()) {
      return false;
    }
    if (TakeTop(&cb)) {
      cb();
      return true;
    }
  }
  return false;
}

}  // namespace ofc::sim
