#include "src/sim/latency.h"

#include <algorithm>
#include <cmath>

namespace ofc::sim {

SimDuration LatencyModel::Cost(Bytes size, Rng* rng) const {
  double total = static_cast<double>(base);
  if (size > 0 && bytes_per_second > 0) {
    total += static_cast<double>(size) / bytes_per_second * 1e6;
  }
  if (rng != nullptr && jitter_fraction > 0.0) {
    total *= rng->Uniform(1.0 - jitter_fraction, 1.0 + jitter_fraction);
  }
  return std::max<SimDuration>(0, static_cast<SimDuration>(std::llround(total)));
}

}  // namespace ofc::sim
