// Deterministic discrete-event simulation core.
//
// Every component of the reproduced system (FaaS platform, RAMCloud cluster,
// object store, load injector) schedules callbacks on one EventLoop. Events at
// equal timestamps run in scheduling order (a monotonically increasing sequence
// number breaks ties), so a (seed, workload) pair fully determines a run.
#ifndef OFC_SIM_EVENT_LOOP_H_
#define OFC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <unordered_map>
#include <vector>

#include "src/common/hash.h"
#include "src/common/units.h"

namespace ofc::sim {

class EventLoop {
 public:
  using Callback = std::function<void()>;
  using EventId = std::uint64_t;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedules `cb` to run at now() + delay (delay >= 0). Returns an id usable
  // with Cancel().
  EventId ScheduleAfter(SimDuration delay, Callback cb);

  // Schedules `cb` at an absolute time (>= now()).
  EventId ScheduleAt(SimTime when, Callback cb);

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(EventId id);

  // Runs events until the queue is empty.
  void Run();

  // Runs events with timestamps <= deadline, then sets now() to deadline.
  void RunUntil(SimTime deadline);

  // Convenience: RunUntil(now() + duration).
  void RunFor(SimDuration duration) { RunUntil(now() + duration); }

  // Runs exactly one event if any is pending; returns whether one ran.
  bool Step();

  std::size_t pending_events() const { return queue_.size() - cancelled_; }

  // Total events ever scheduled. Together with now() this fingerprints a run:
  // two replays of the same (seed, workload) must agree on both, which the
  // --selfcheck-determinism harness relies on.
  std::uint64_t total_scheduled() const { return next_seq_; }

 private:
  struct Event {
    SimTime when;
    std::uint64_t seq;
    EventId id;
    // Ordering for a min-queue via std::greater.
    friend bool operator>(const Event& a, const Event& b) {
      if (a.when != b.when) {
        return a.when > b.when;
      }
      return a.seq > b.seq;
    }
  };

  void Dispatch(const Event& ev);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  EventId next_id_ = 1;
  std::priority_queue<Event, std::vector<Event>, std::greater<>> queue_;
  // Callbacks keyed by event id; a cancelled event keeps its queue slot but has
  // no callback entry, so Dispatch() skips it. Never iterated (dispatch order
  // comes from the queue), so bucket order cannot leak — DetHash lets
  // determinism_test prove that by perturbing the hash salt.
  std::unordered_map<EventId, Callback, DetHash<EventId>> callbacks_;
  std::size_t cancelled_ = 0;
};

}  // namespace ofc::sim

#endif  // OFC_SIM_EVENT_LOOP_H_
