// Deterministic discrete-event simulation core.
//
// Every component of the reproduced system (FaaS platform, RAMCloud cluster,
// object store, load injector) schedules callbacks on one EventLoop. Events at
// equal timestamps run in scheduling order (a monotonically increasing sequence
// number breaks ties), so a (seed, workload) pair fully determines a run.
//
// Hot-path design (the million-invocation overhaul; the pre-overhaul
// implementation survives as bench/legacy_event_loop.h for comparison):
//   * Callbacks live in a slab of recycled slots holding InlineCallback values
//     (small-buffer storage, src/sim/inline_callback.h) — no per-event heap
//     allocation and no hash-map lookup on schedule/cancel/dispatch. An
//     EventId encodes (slot index, generation); generations make stale ids
//     (already ran, already cancelled, slot since reused) miss cheaply.
//   * The ready queue is a hand-rolled 4-ary min-heap of 16-byte entries
//     ordered by (when, seq). seq is unique, so the order is total and heap
//     arity can never change dispatch order — only cache behavior.
//   * Cancellation is O(1): the slot is disarmed and its callback destroyed
//     immediately (freeing captured state), leaving a tombstone entry in the
//     heap. Tombstones are dropped when popped, and when they ever outnumber
//     live events the heap compacts in one deterministic O(n) pass — cancel
//     storms (keep-alive timers re-armed per warm hit) cannot accumulate
//     unbounded dead entries.
//   * An optional dispatch budget bounds huge runs (`ofc-sim --max-events`):
//     once the budget is spent, Run/RunUntil/Step return without dispatching
//     and without advancing now(), leaving the loop resumable.
#ifndef OFC_SIM_EVENT_LOOP_H_
#define OFC_SIM_EVENT_LOOP_H_

#include <cstdint>
#include <vector>

#include "src/common/units.h"
#include "src/sim/inline_callback.h"

namespace ofc::sim {

class EventLoop {
 public:
  using Callback = InlineCallback;
  using EventId = std::uint64_t;

  EventLoop() = default;
  EventLoop(const EventLoop&) = delete;
  EventLoop& operator=(const EventLoop&) = delete;

  SimTime now() const { return now_; }

  // Schedules `cb` to run at now() + delay (delay >= 0). Returns an id usable
  // with Cancel(). Ids are never 0, so 0 works as a "no event" sentinel.
  EventId ScheduleAfter(SimDuration delay, Callback cb);

  // Schedules `cb` at an absolute time (>= now()).
  EventId ScheduleAt(SimTime when, Callback cb);

  // Cancels a pending event. Returns false if it already ran or was cancelled.
  bool Cancel(EventId id);

  // Runs events until the queue is empty (or the dispatch budget is spent).
  void Run();

  // Runs events with timestamps <= deadline, then sets now() to deadline. If
  // the dispatch budget runs out first, returns early without advancing now().
  void RunUntil(SimTime deadline);

  // Convenience: RunUntil(now() + duration).
  void RunFor(SimDuration duration) { RunUntil(now() + duration); }

  // Runs exactly one event if any is pending; returns whether one ran.
  bool Step();

  std::size_t pending_events() const { return heap_.size() - cancelled_; }

  // Total events ever scheduled. Together with now() this fingerprints a run:
  // two replays of the same (seed, workload) must agree on both, which the
  // --selfcheck-determinism harness relies on.
  std::uint64_t total_scheduled() const { return next_seq_; }

  // Live events actually dispatched (cancelled tombstones excluded).
  std::uint64_t total_dispatched() const { return dispatched_; }

  // Bounds the number of future dispatches: after `budget` more live events
  // run, Run/RunUntil/Step stop dispatching (0 = unlimited, the default).
  // The guard behind `ofc-sim --max-events` and the scale harness.
  void set_dispatch_budget(std::uint64_t budget) {
    dispatch_stop_at_ = budget == 0 ? 0 : dispatched_ + budget;
  }
  bool dispatch_budget_exhausted() const {
    return dispatch_stop_at_ != 0 && dispatched_ >= dispatch_stop_at_;
  }

 private:
  // 16 bytes; the heap never touches slot storage until an entry is popped.
  struct HeapEntry {
    SimTime when;
    // Scheduling order, packed with the slot index: the low 40 bits of seq
    // disambiguate equal timestamps (2^40 events per equal-time cohort is
    // unreachable), the high 24 would overflow first at ~10^12 total events.
    std::uint64_t seq;
    std::uint32_t slot;
    std::uint32_t pad = 0;
  };

  struct Slot {
    Callback cb;
    std::uint32_t generation = 0;
    std::uint32_t next_free = kNoSlot;
    bool armed = false;  // Callback pending; false = tombstone or free.
  };

  static constexpr std::uint32_t kNoSlot = 0xffffffffu;

  static bool Before(const HeapEntry& a, const HeapEntry& b) {
    return a.when < b.when || (a.when == b.when && a.seq < b.seq);
  }
  static EventId MakeId(std::uint32_t slot, std::uint32_t generation) {
    return (static_cast<EventId>(slot) << 32) | generation;
  }

  std::uint32_t AcquireSlot();
  void ReleaseSlot(std::uint32_t index);

  void HeapPush(HeapEntry entry);
  void HeapPopTop();       // Removes heap_[0], restoring heap order.
  void Heapify();          // Full rebuild after compaction.
  void SiftDown(std::size_t i);
  void MaybeCompact();

  // Pops the top entry and, if live, moves its callback into `out` (advancing
  // now()). Returns false for tombstones (slot freed, nothing dispatched).
  bool TakeTop(Callback* out);

  SimTime now_ = 0;
  std::uint64_t next_seq_ = 0;
  std::uint64_t dispatched_ = 0;
  std::uint64_t dispatch_stop_at_ = 0;  // 0 = no budget.
  std::vector<HeapEntry> heap_;
  std::vector<Slot> slots_;
  std::uint32_t free_head_ = kNoSlot;
  std::size_t cancelled_ = 0;
};

}  // namespace ofc::sim

#endif  // OFC_SIM_EVENT_LOOP_H_
