// InlineCallback: a move-only, type-erased `void()` callable with small-buffer
// storage, built for the event-loop hot path.
//
// std::function heap-allocates any callable whose captures exceed its ~16-byte
// small-object buffer — and simulator callbacks routinely capture a
// shared_ptr<Request> plus a couple of values, so at million-invocation scale
// the old event loop paid one malloc/free pair per scheduled event.
// InlineCallback widens the inline buffer to `kInlineBytes` (sized to fit every
// callback the simulator schedules today) and only falls back to the heap for
// oversized or alignment-exotic callables. Combined with the event loop's slot
// slab (which recycles InlineCallback storage in place), steady-state
// scheduling allocates nothing.
//
// Semantics:
//   * move-only (the event loop never copies callbacks; dropping copyability
//     lets move-only captures like unique_ptr ride along for free);
//   * `operator()` requires an engaged callback (SIM_DCHECK'd);
//   * moved-from callbacks are empty and safely destroyable/reassignable.
#ifndef OFC_SIM_INLINE_CALLBACK_H_
#define OFC_SIM_INLINE_CALLBACK_H_

#include <cstddef>
#include <memory>
#include <new>
#include <type_traits>
#include <utility>

#include "src/common/sim_assert.h"

namespace ofc::sim {

class InlineCallback {
 public:
  // Sized for the fattest hot-path capture in the tree (shared_ptr + record
  // ids + a Sizing struct) with headroom; callables beyond this go to the heap
  // transparently, so growing a capture is a perf regression, not a build
  // break.
  static constexpr std::size_t kInlineBytes = 56;

  InlineCallback() = default;

  template <typename F, typename D = std::decay_t<F>,
            typename = std::enable_if_t<!std::is_same_v<D, InlineCallback> &&
                                        std::is_invocable_r_v<void, D&>>>
  // NOLINTNEXTLINE(google-explicit-constructor): drop-in for std::function.
  InlineCallback(F&& f) {
    if constexpr (sizeof(D) <= kInlineBytes && alignof(D) <= alignof(std::max_align_t) &&
                  std::is_nothrow_move_constructible_v<D>) {
      ::new (static_cast<void*>(storage_)) D(std::forward<F>(f));
      ops_ = &kInlineOps<D>;
    } else {
      auto owned = std::make_unique<D>(std::forward<F>(f));
      ::new (static_cast<void*>(storage_)) D*(owned.release());
      ops_ = &kHeapOps<D>;
    }
  }

  InlineCallback(InlineCallback&& other) noexcept { MoveFrom(std::move(other)); }

  InlineCallback& operator=(InlineCallback&& other) noexcept {
    if (this != &other) {
      Reset();
      MoveFrom(std::move(other));
    }
    return *this;
  }

  InlineCallback(const InlineCallback&) = delete;
  InlineCallback& operator=(const InlineCallback&) = delete;

  ~InlineCallback() { Reset(); }

  explicit operator bool() const { return ops_ != nullptr; }

  void operator()() {
    SIM_DCHECK(ops_ != nullptr) << "; invoking an empty InlineCallback";
    ops_->invoke(storage_);
  }

 private:
  struct Ops {
    void (*invoke)(void* s);
    // Move-construct `from`'s callable into `to`, then destroy `from`'s.
    void (*relocate)(void* from, void* to) noexcept;
    void (*destroy)(void* s) noexcept;
  };

  template <typename D>
  static constexpr Ops kInlineOps = {
      [](void* s) { (*std::launder(reinterpret_cast<D*>(s)))(); },
      [](void* from, void* to) noexcept {
        D* src = std::launder(reinterpret_cast<D*>(from));
        ::new (to) D(std::move(*src));
        src->~D();
      },
      [](void* s) noexcept { std::launder(reinterpret_cast<D*>(s))->~D(); },
  };

  template <typename D>
  static constexpr Ops kHeapOps = {
      [](void* s) { (**std::launder(reinterpret_cast<D**>(s)))(); },
      [](void* from, void* to) noexcept {
        // Relocating a heap-backed callable just moves the owning pointer.
        ::new (to) D*(*std::launder(reinterpret_cast<D**>(from)));
      },
      [](void* s) noexcept {
        std::unique_ptr<D> owned(*std::launder(reinterpret_cast<D**>(s)));
      },
  };

  void MoveFrom(InlineCallback&& other) noexcept {
    if (other.ops_ != nullptr) {
      other.ops_->relocate(other.storage_, storage_);
      ops_ = other.ops_;
      other.ops_ = nullptr;
    }
  }

  void Reset() noexcept {
    if (ops_ != nullptr) {
      ops_->destroy(storage_);
      ops_ = nullptr;
    }
  }

  alignas(std::max_align_t) unsigned char storage_[kInlineBytes];
  const Ops* ops_ = nullptr;
};

}  // namespace ofc::sim

#endif  // OFC_SIM_INLINE_CALLBACK_H_
