// PeriodicTask: a self-rearming sim-clock timer.
//
// Drives recurring control-plane work (telemetry scrapes, sweeps) off the
// deterministic event loop: the callback runs every `interval` of simulated
// time, starting one interval after Start(). Like the platform's keep-alive
// sweeps, a started task re-arms itself forever — the load injector's drain
// logic already tolerates ever-rearming timers, and Stop() cancels the pending
// event so the loop can go quiescent when the owner shuts down.
#ifndef OFC_SIM_PERIODIC_H_
#define OFC_SIM_PERIODIC_H_

#include <functional>

#include "src/common/units.h"
#include "src/sim/event_loop.h"

namespace ofc::sim {

class PeriodicTask {
 public:
  using Callback = std::function<void(SimTime now)>;

  // `loop` must outlive the task. `interval` must be > 0 when Start() is
  // called; the callback fires at now+interval, now+2*interval, ...
  PeriodicTask(EventLoop* loop, SimDuration interval, Callback cb);
  PeriodicTask(const PeriodicTask&) = delete;
  PeriodicTask& operator=(const PeriodicTask&) = delete;
  ~PeriodicTask();

  // Arms the timer. No-op if already running.
  void Start();
  // Cancels the pending tick. No-op if not running.
  void Stop();

  bool running() const { return event_ != 0; }
  SimDuration interval() const { return interval_; }
  std::uint64_t ticks() const { return ticks_; }

 private:
  void Arm();

  EventLoop* loop_;
  SimDuration interval_;
  Callback cb_;
  EventLoop::EventId event_ = 0;
  std::uint64_t ticks_ = 0;
};

}  // namespace ofc::sim

#endif  // OFC_SIM_PERIODIC_H_
