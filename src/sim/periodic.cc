#include "src/sim/periodic.h"

#include <cassert>
#include <utility>

namespace ofc::sim {

PeriodicTask::PeriodicTask(EventLoop* loop, SimDuration interval, Callback cb)
    : loop_(loop), interval_(interval), cb_(std::move(cb)) {}

PeriodicTask::~PeriodicTask() { Stop(); }

void PeriodicTask::Start() {
  if (event_ != 0) {
    return;
  }
  assert(interval_ > 0);
  Arm();
}

void PeriodicTask::Stop() {
  if (event_ == 0) {
    return;
  }
  loop_->Cancel(event_);
  event_ = 0;
}

void PeriodicTask::Arm() {
  event_ = loop_->ScheduleAfter(interval_, [this] {
    // Re-arm before running the callback: the callback may Stop() the task,
    // and a stop must win over the tick that requested it.
    event_ = 0;
    Arm();
    ++ticks_;
    cb_(loop_->now());
  });
}

}  // namespace ofc::sim
