#include "src/sim/periodic.h"

#include <cassert>
#include <utility>

#include "src/common/sim_assert.h"

namespace ofc::sim {

PeriodicTask::PeriodicTask(EventLoop* loop, SimDuration interval, Callback cb)
    : loop_(loop), interval_(interval), cb_(std::move(cb)) {}

PeriodicTask::~PeriodicTask() {
  // A running task always has exactly one pending event whose [this] capture
  // would dangle after this destructor; cancelling it must succeed, or the
  // loop is about to run a callback into freed memory.
  if (event_ != 0) {
    const bool cancelled = loop_->Cancel(event_);
    SIM_ASSERT(cancelled) << "; ~PeriodicTask could not cancel its pending tick (event "
                          << event_ << ") — the loop would call into a destroyed task";
    event_ = 0;
  }
}

void PeriodicTask::Start() {
  if (event_ != 0) {
    return;
  }
  assert(interval_ > 0);
  Arm();
}

void PeriodicTask::Stop() {
  if (event_ == 0) {
    return;
  }
  const bool cancelled = loop_->Cancel(event_);
  SIM_ASSERT(cancelled) << "; PeriodicTask::Stop lost its pending tick (event " << event_
                        << "); event_ bookkeeping is out of sync with the loop";
  event_ = 0;
}

void PeriodicTask::Arm() {
  event_ = loop_->ScheduleAfter(interval_, [this] {
    // Re-arm before running the callback: the callback may Stop() the task,
    // and a stop must win over the tick that requested it.
    event_ = 0;
    Arm();
    ++ticks_;
    cb_(loop_->now());
  });
}

}  // namespace ofc::sim
