#include "src/workloads/functions.h"

#include <algorithm>
#include <cmath>

namespace ofc::workloads {

std::vector<double> SampleArgs(const FunctionSpec& spec, Rng& rng) {
  std::vector<double> args;
  args.reserve(spec.args.size());
  for (const ArgSpec& arg : spec.args) {
    double v = rng.Uniform(arg.lo, arg.hi);
    if (arg.integer) {
      v = std::floor(v);
    }
    args.push_back(v);
  }
  return args;
}

namespace {

// Normalizes arg[0] into [0, 1]; functions without arguments normalize to 0.
double NormalizedArg0(const FunctionSpec& spec, const std::vector<double>& args) {
  if (spec.args.empty() || args.empty()) {
    return 0.0;
  }
  const ArgSpec& a = spec.args[0];
  if (a.hi <= a.lo) {
    return 0.0;
  }
  return std::clamp((args[0] - a.lo) / (a.hi - a.lo), 0.0, 1.0);
}

}  // namespace

InvocationDemand ComputeDemand(const FunctionSpec& spec, const MediaDescriptor& media,
                               const std::vector<double>& args, Rng* rng) {
  InvocationDemand demand;
  const double decoded_mb = static_cast<double>(media.DecodedBytes()) / (1024.0 * 1024.0);
  const double arg = NormalizedArg0(spec, args);

  double mem_mb = spec.base_mem_mb + decoded_mb * (spec.mem_copies + spec.mem_arg_coeff * arg);
  if (rng != nullptr && spec.mem_noise > 0.0) {
    mem_mb *= std::max(0.5, 1.0 + rng->Gaussian(0.0, spec.mem_noise));
  }
  demand.memory = static_cast<Bytes>(mem_mb * 1024.0 * 1024.0);

  const double processed_mb = decoded_mb * spec.work_scale;
  double compute_us = processed_mb * spec.compute_us_per_mb * (1.0 + spec.compute_arg_coeff * arg);
  compute_us += 1500.0;  // Interpreter dispatch floor.
  if (rng != nullptr) {
    compute_us *= rng->Uniform(0.95, 1.05);
  }
  demand.compute = static_cast<SimDuration>(compute_us);

  double out = static_cast<double>(media.byte_size) * spec.output_ratio;
  if (spec.output_arg_power != 0.0 && arg > 0.0) {
    out *= std::pow(arg, spec.output_arg_power);
  }
  demand.output_size = std::max<Bytes>(static_cast<Bytes>(out), 128);
  return demand;
}

MediaDescriptor OutputMedia(const FunctionSpec& spec, const MediaDescriptor& input,
                            Bytes output_size) {
  const InputKind out_kind = spec.output_kind.value_or(spec.kind);
  if (out_kind != input.kind) {
    // Modality change (decoded frames, extracted text, audio track...): the
    // downstream consumer sees opaque data of the output size.
    MediaDescriptor out;
    out.kind = out_kind;
    out.byte_size = output_size;
    out.entropy = 1.0;
    return out;
  }
  MediaDescriptor out = input;
  out.byte_size = output_size;
  if (input.byte_size > 0) {
    // Scale content volume with the byte-size change (e.g. resized images
    // carry proportionally fewer pixels).
    const double ratio =
        static_cast<double>(output_size) / static_cast<double>(input.byte_size);
    switch (out.kind) {
      case InputKind::kImage: {
        const double side = std::sqrt(std::max(ratio, 1e-6));
        out.width = std::max(8, static_cast<int>(out.width * side));
        out.height = std::max(8, static_cast<int>(out.height * side));
        break;
      }
      case InputKind::kAudio:
      case InputKind::kVideo:
        out.duration_s = std::max(0.1, out.duration_s * ratio);
        break;
      case InputKind::kText:
        break;
    }
  }
  return out;
}

std::vector<ml::Attribute> FeatureAttributes(const FunctionSpec& spec) {
  // Besides the raw descriptive metadata, each category carries a derived
  // content-volume feature (megapixels / PCM minutes / frame volume): decision
  // trees split on one attribute at a time, so exposing the product feature
  // directly is what makes interval-level accuracy reachable with few
  // invocations (§5.1.2's per-category feature engineering).
  std::vector<ml::Attribute> attrs;
  attrs.push_back(ml::Attribute::Numeric("file_kb"));
  switch (spec.kind) {
    case InputKind::kImage:
      attrs.push_back(ml::Attribute::Numeric("width"));
      attrs.push_back(ml::Attribute::Numeric("height"));
      attrs.push_back(ml::Attribute::Numeric("megapixels"));
      attrs.push_back(ml::Attribute::Nominal("format", ImageFormats()));
      break;
    case InputKind::kAudio:
      attrs.push_back(ml::Attribute::Numeric("duration_s"));
      attrs.push_back(ml::Attribute::Numeric("channels"));
      attrs.push_back(ml::Attribute::Numeric("pcm_mb"));
      attrs.push_back(ml::Attribute::Nominal("format", AudioFormats()));
      break;
    case InputKind::kVideo:
      attrs.push_back(ml::Attribute::Numeric("width"));
      attrs.push_back(ml::Attribute::Numeric("height"));
      attrs.push_back(ml::Attribute::Numeric("duration_s"));
      attrs.push_back(ml::Attribute::Numeric("fps"));
      attrs.push_back(ml::Attribute::Numeric("frame_volume_mb"));
      attrs.push_back(ml::Attribute::Nominal("format", VideoFormats()));
      break;
    case InputKind::kText:
      attrs.push_back(ml::Attribute::Nominal("format", TextFormats()));
      break;
  }
  for (const ArgSpec& arg : spec.args) {
    attrs.push_back(ml::Attribute::Numeric("arg_" + arg.name));
  }
  return attrs;
}

std::vector<double> ExtractFeatures(const FunctionSpec& spec, const MediaDescriptor& media,
                                    const std::vector<double>& args) {
  std::vector<double> features;
  features.push_back(static_cast<double>(media.byte_size) / 1024.0);
  switch (spec.kind) {
    case InputKind::kImage:
      features.push_back(media.width);
      features.push_back(media.height);
      features.push_back(static_cast<double>(media.width) * media.height / 1e6);
      features.push_back(media.format);
      break;
    case InputKind::kAudio:
      features.push_back(media.duration_s);
      features.push_back(media.channels);
      features.push_back(media.duration_s * 44100.0 * 2.0 * media.channels / 1e6);
      features.push_back(media.format);
      break;
    case InputKind::kVideo:
      features.push_back(media.width);
      features.push_back(media.height);
      features.push_back(media.duration_s);
      features.push_back(media.fps);
      features.push_back(media.duration_s * media.fps * media.width * media.height * 3.0 /
                         1e6);
      features.push_back(media.format);
      break;
    case InputKind::kText:
      features.push_back(media.format);
      break;
  }
  for (double a : args) {
    features.push_back(a);
  }
  return features;
}

namespace {

std::vector<FunctionSpec> BuildAllFunctions() {
  std::vector<FunctionSpec> fns;
  auto add = [&fns](FunctionSpec spec) { fns.push_back(std::move(spec)); };

  // ---- Image functions (ImageMagick-style: ~16 B/pixel working quantum, i.e.
  // ~5.3x the 3 B/pixel decoded raster, plus per-filter extra copies). --------
  add({.name = "wand_blur",
       .kind = InputKind::kImage,
       .args = {{"sigma", 0.0, 6.0, false}},
       .base_mem_mb = 42,
       .mem_copies = 6.0,
       .mem_arg_coeff = 2.0,
       .compute_us_per_mb = 400,
       .compute_arg_coeff = 1.5,
       .output_ratio = 1.0});
  add({.name = "wand_resize",
       .kind = InputKind::kImage,
       .args = {{"scale", 0.1, 1.0, false}},
       .base_mem_mb = 40,
       .mem_copies = 5.5,
       .mem_arg_coeff = 1.5,
       .compute_us_per_mb = 20,
       .compute_arg_coeff = 0.8,
       .output_ratio = 1.0,
       .output_arg_power = 2.0});
  add({.name = "wand_sepia",
       .kind = InputKind::kImage,
       .args = {{"threshold", 0.0, 1.0, false}},
       .base_mem_mb = 40,
       .mem_copies = 5.4,
       .mem_arg_coeff = 0.3,
       .compute_us_per_mb = 15,
       .output_ratio = 1.0});
  add({.name = "wand_rotate",
       .kind = InputKind::kImage,
       .args = {{"angle", 0.0, 360.0, false}},
       .base_mem_mb = 41,
       .mem_copies = 6.2,
       .mem_arg_coeff = 1.0,
       .compute_us_per_mb = 18,
       .output_ratio = 1.05});
  add({.name = "wand_denoise",
       .kind = InputKind::kImage,
       .args = {{"radius", 0.0, 5.0, false}},
       .base_mem_mb = 44,
       .mem_copies = 6.5,
       .mem_arg_coeff = 2.5,
       .compute_us_per_mb = 1200,
       .compute_arg_coeff = 2.0,
       .output_ratio = 1.0});
  add({.name = "wand_edge",
       .kind = InputKind::kImage,
       .args = {{"radius", 0.0, 4.0, false}},
       .base_mem_mb = 42,
       .mem_copies = 6.0,
       .mem_arg_coeff = 1.2,
       .compute_us_per_mb = 25,
       .compute_arg_coeff = 0.8,
       .output_ratio = 0.9});
  add({.name = "wand_sharpen",
       .kind = InputKind::kImage,
       .args = {{"sigma", 0.0, 5.0, false}},
       .base_mem_mb = 42,
       .mem_copies = 6.0,
       .mem_arg_coeff = 1.8,
       .compute_us_per_mb = 600,
       .compute_arg_coeff = 1.2,
       .output_ratio = 1.0});
  add({.name = "wand_grayscale",
       .kind = InputKind::kImage,
       .base_mem_mb = 38,
       .mem_copies = 4.8,
       .compute_us_per_mb = 10,
       .output_ratio = 0.6});
  add({.name = "wand_thumbnail",
       .kind = InputKind::kImage,
       .args = {{"size_px", 32.0, 512.0, true}},
       .base_mem_mb = 36,
       .mem_copies = 4.5,
       .mem_arg_coeff = 0.5,
       .compute_us_per_mb = 12,
       .output_ratio = 0.05,
       .output_arg_power = 1.0});
  add({.name = "wand_format_convert",
       .kind = InputKind::kImage,
       .args = {{"quality", 10.0, 95.0, true}},
       .base_mem_mb = 40,
       .mem_copies = 5.2,
       .mem_arg_coeff = 0.4,
       .compute_us_per_mb = 22,
       .output_ratio = 0.8,
       .output_arg_power = 1.0});
  add({.name = "sharp_resize",  // libvips-based; streaming, so fewer copies.
       .kind = InputKind::kImage,
       .args = {{"scale", 0.1, 1.0, false}},
       .base_mem_mb = 50,
       .mem_copies = 3.2,
       .mem_arg_coeff = 1.0,
       .compute_us_per_mb = 8,
       .compute_arg_coeff = 0.5,
       .output_ratio = 1.0,
       .output_arg_power = 2.0});
  add({.name = "img_watermark",
       .kind = InputKind::kImage,
       .args = {{"opacity", 0.0, 1.0, false}},
       .base_mem_mb = 43,
       .mem_copies = 5.8,
       .mem_arg_coeff = 0.3,
       .compute_us_per_mb = 16,
       .output_ratio = 1.0});
  add({.name = "face_blur",
       .kind = InputKind::kImage,
       .args = {{"strength", 1.0, 5.0, false}},
       .base_mem_mb = 90,  // Detection model resident.
       .mem_copies = 7.0,
       .mem_arg_coeff = 1.5,
       .compute_us_per_mb = 2500,
       .compute_arg_coeff = 1.0,
       .output_ratio = 1.0});

  // ---- Audio functions (decoded = PCM). ---------------------------------------
  add({.name = "audio_compress",
       .kind = InputKind::kAudio,
       .args = {{"bitrate_kbps", 32.0, 320.0, true}},
       .base_mem_mb = 35,
       .mem_copies = 2.5,
       .mem_arg_coeff = 0.5,
       .compute_us_per_mb = 2000,
       .compute_arg_coeff = 0.6,
       .output_ratio = 0.35,
       .output_arg_power = 1.0});
  add({.name = "audio_normalize",
       .kind = InputKind::kAudio,
       .args = {{"target_db", -30.0, 0.0, false}},
       .base_mem_mb = 34,
       .mem_copies = 3.0,
       .mem_arg_coeff = 0.2,
       .compute_us_per_mb = 18,
       .output_ratio = 1.0});
  add({.name = "speech_to_text",
       .kind = InputKind::kAudio,
       .args = {{"beam", 1.0, 10.0, true}},
       .base_mem_mb = 180,  // Acoustic + language model resident.
       .mem_copies = 4.0,
       .mem_arg_coeff = 1.0,
       .compute_us_per_mb = 300,
       .compute_arg_coeff = 1.5,
       .output_ratio = 0.002});

  // ---- Video functions (windowed processing: small fraction of the stream
  // volume resident at once). ---------------------------------------------------
  add({.name = "video_grayscale",
       .kind = InputKind::kVideo,
       .args = {{"quality", 1.0, 10.0, true}},
       .base_mem_mb = 60,
       .mem_copies = 0.018,
       .mem_arg_coeff = 0.010,
       .compute_us_per_mb = 300,
       .compute_arg_coeff = 0.4,
       .output_ratio = 0.8});
  add({.name = "video_extract_audio",
       .kind = InputKind::kVideo,
       .base_mem_mb = 48,
       .mem_copies = 0.008,
       .compute_us_per_mb = 1.5,
       .output_ratio = 0.05});

  // ---- Text. --------------------------------------------------------------------
  add({.name = "text_summarize",
       .kind = InputKind::kText,
       .args = {{"ratio", 0.05, 0.5, false}},
       .base_mem_mb = 120,  // NLP pipeline resident.
       .mem_copies = 9.0,   // Token/graph structures dwarf the raw text.
       .mem_arg_coeff = 2.0,
       .compute_us_per_mb = 200,
       .compute_arg_coeff = 1.0,
       .output_ratio = 0.3,
       .output_arg_power = 1.0});

  return fns;
}

std::vector<FunctionSpec> BuildPipelineStageFunctions() {
  std::vector<FunctionSpec> fns;
  auto add = [&fns](FunctionSpec spec) { fns.push_back(std::move(spec)); };

  // MapReduce word count (§7: "map_reduce"): chunked text -> per-chunk counts
  // -> merged counts.
  add({.name = "mr_map",
       .kind = InputKind::kText,
       .base_mem_mb = 48,
       .mem_copies = 6.0,
       .compute_us_per_mb = 100000,
       .output_ratio = 0.12});
  add({.name = "mr_reduce",
       .kind = InputKind::kText,
       .base_mem_mb = 52,
       .mem_copies = 5.0,
       .compute_us_per_mb = 30000,
       .output_ratio = 0.3});

  // THIS (Thousand Island Scanner): distributed video processing. Stage 1
  // decodes segment chunks, stage 2 runs per-segment analysis, stage 3 merges.
  add({.name = "this_decode",
       .kind = InputKind::kVideo,
       .base_mem_mb = 70,
       .mem_copies = 0.02,
       .compute_us_per_mb = 400,
       .output_ratio = 2.0,  // Decoded segment frames are bulkier.
       .output_kind = InputKind::kText});  // Raw frame data, not a video file.
  add({.name = "this_detect",
       .kind = InputKind::kText,  // Operates on decoded chunk objects.
       .base_mem_mb = 150,
       .mem_copies = 4.0,
       .compute_us_per_mb = 15000,
       .output_ratio = 0.05});
  add({.name = "this_merge",
       .kind = InputKind::kText,
       .base_mem_mb = 60,
       .mem_copies = 3.0,
       .compute_us_per_mb = 5000,
       .output_ratio = 0.5});

  // IMAD: Illegitimate Mobile App Detector, reimplemented as a sequence
  // (unpack -> static analysis -> verdict).
  add({.name = "imad_unpack",
       .kind = InputKind::kText,
       .base_mem_mb = 55,
       .mem_copies = 3.5,
       .compute_us_per_mb = 5000,
       .output_ratio = 1.8});
  add({.name = "imad_static_analysis",
       .kind = InputKind::kText,
       .base_mem_mb = 160,
       .mem_copies = 6.0,
       .compute_us_per_mb = 30000,
       .output_ratio = 0.08});
  add({.name = "imad_verdict",
       .kind = InputKind::kText,
       .base_mem_mb = 70,
       .mem_copies = 2.0,
       .compute_us_per_mb = 5000,
       .output_ratio = 0.02});

  // ServerlessBench Image Processing: thumbnail pipeline
  // (extract-metadata -> transform -> thumbnail).
  add({.name = "ip_extract_meta",
       .kind = InputKind::kImage,
       .base_mem_mb = 36,
       .mem_copies = 3.4,
       .compute_us_per_mb = 6,
       .output_ratio = 1.0});
  add({.name = "ip_transform",
       .kind = InputKind::kImage,
       .args = {{"scale", 0.2, 0.9, false}},
       .base_mem_mb = 40,
       .mem_copies = 5.5,
       .mem_arg_coeff = 1.2,
       .compute_us_per_mb = 18,
       .output_ratio = 1.0,
       .output_arg_power = 2.0});
  add({.name = "ip_thumbnail",
       .kind = InputKind::kImage,
       .base_mem_mb = 36,
       .mem_copies = 4.0,
       .compute_us_per_mb = 10,
       .output_ratio = 0.04});

  return fns;
}

}  // namespace

const std::vector<FunctionSpec>& AllFunctions() {
  static const std::vector<FunctionSpec> kFunctions = BuildAllFunctions();
  return kFunctions;
}

const std::vector<FunctionSpec>& PipelineStageFunctions() {
  static const std::vector<FunctionSpec> kFunctions = BuildPipelineStageFunctions();
  return kFunctions;
}

const FunctionSpec* FindFunction(const std::string& name) {
  for (const FunctionSpec& spec : AllFunctions()) {
    if (spec.name == name) {
      return &spec;
    }
  }
  for (const FunctionSpec& spec : PipelineStageFunctions()) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

}  // namespace ofc::workloads
