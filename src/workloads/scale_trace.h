// Large-trace synthesis for the million-invocation scale harness.
//
// Generates a multi-tenant arrival plan shaped like the Azure Functions trace
// observations of Shahrad et al. (the paper's [37]): a heavy-tailed rate skew
// across tenants (a few hot functions dominate, a long tail is invoked rarely),
// a diurnal cohort whose Poisson rate swings over a day-like period, and a
// bursty cohort with long gaps separating short back-to-back trains.
//
// The output is a pure description — tenant names, catalog functions, arrival
// law parameters, expected invocation counts — with no dependency on the
// injector or the platform. bench/scale_stress and tests feed it through
// LoadInjector::AddScaleTrace, which maps each entry onto a TenantSpec; the
// injector then draws concrete arrival times lazily at run time, so a
// 10M-invocation plan costs a few KiB, not millions of pre-materialized
// events.
#ifndef OFC_WORKLOADS_SCALE_TRACE_H_
#define OFC_WORKLOADS_SCALE_TRACE_H_

#include <cstdint>
#include <string>
#include <vector>

#include "src/common/units.h"

namespace ofc::workloads {

// Arrival law of one synthesized tenant. Mirrors the injector's patterns but
// stays decoupled so this layer has no faasload dependency.
enum class ScaleArrivals {
  kPoisson,   // Exponential inter-arrivals at a fixed mean.
  kDiurnal,   // Poisson with a sinusoidally modulated rate (thinned).
  kBursty,    // Exponential gaps separating back-to-back bursts.
  kPeriodic,  // Fixed interval (cron-like timers).
};

const char* ScaleArrivalsName(ScaleArrivals arrivals);

struct ScaleTraceOptions {
  std::uint64_t seed = 1;
  std::size_t num_tenants = 64;
  double duration_s = 3600.0;
  // Expected total invocations across all tenants over `duration_s`; per-tenant
  // rates are normalized so the sum of expectations lands here.
  std::uint64_t target_invocations = 1'000'000;
  // Pareto-like skew exponent for per-tenant rates: lower alpha = heavier tail
  // (hotter hot tenants). Must be > 0.
  double rate_skew_alpha = 1.2;
  // Cohort shares (fractions of tenants; remainder is plain Poisson).
  double diurnal_fraction = 0.25;
  double bursty_fraction = 0.20;
  double periodic_fraction = 0.10;
  // Diurnal cohort: rate modulation period and swing (0..1).
  double diurnal_period_s = 86400.0;
  double diurnal_amplitude = 0.8;
  // Bursty cohort: invocations per burst drawn in [2, max_burst_size].
  int max_burst_size = 8;
  double burst_spacing_s = 0.25;
  // Dataset shape per tenant.
  int dataset_objects = 4;
  Bytes object_size = 0;  // 0 = natural content distribution.
};

struct ScaleTraceTenant {
  std::string name;
  std::string function;  // A workloads catalog function (FindFunction-able).
  ScaleArrivals arrivals = ScaleArrivals::kPoisson;
  double mean_interval_s = 60.0;  // Mean inter-arrival / inter-burst gap.
  int burst_size = 1;
  double burst_spacing_s = 0.25;
  double diurnal_period_s = 86400.0;
  double diurnal_amplitude = 0.0;
  int dataset_objects = 4;
  Bytes object_size = 0;
  // Expected invocations this tenant contributes over the trace duration.
  double expected_invocations = 0.0;
};

struct ScaleTrace {
  ScaleTraceOptions options;
  std::vector<ScaleTraceTenant> tenants;
  double expected_invocations = 0.0;  // Sum over tenants.
};

// Deterministic in `options.seed` (same options => same trace).
ScaleTrace GenerateScaleTrace(const ScaleTraceOptions& options);

}  // namespace ofc::workloads

#endif  // OFC_WORKLOADS_SCALE_TRACE_H_
