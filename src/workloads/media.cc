#include "src/workloads/media.h"

#include <algorithm>
#include <cmath>

namespace ofc::workloads {

std::string InputKindName(InputKind kind) {
  switch (kind) {
    case InputKind::kImage:
      return "image";
    case InputKind::kAudio:
      return "audio";
    case InputKind::kVideo:
      return "video";
    case InputKind::kText:
      return "text";
  }
  return "unknown";
}

const std::vector<std::string>& ImageFormats() {
  static const std::vector<std::string> kFormats = {"jpeg", "png", "webp", "bmp"};
  return kFormats;
}

const std::vector<std::string>& AudioFormats() {
  static const std::vector<std::string> kFormats = {"mp3", "flac", "wav", "ogg"};
  return kFormats;
}

const std::vector<std::string>& VideoFormats() {
  static const std::vector<std::string> kFormats = {"h264", "vp9", "mpeg2"};
  return kFormats;
}

const std::vector<std::string>& TextFormats() {
  static const std::vector<std::string> kFormats = {"plain", "gz"};
  return kFormats;
}

double CompressionRatio(InputKind kind, int format) {
  switch (kind) {
    case InputKind::kImage: {
      static const double kRatios[] = {0.10, 0.42, 0.07, 1.0};  // jpeg png webp bmp
      return kRatios[format];
    }
    case InputKind::kAudio: {
      static const double kRatios[] = {0.09, 0.55, 1.0, 0.08};  // mp3 flac wav ogg
      return kRatios[format];
    }
    case InputKind::kVideo: {
      static const double kRatios[] = {0.015, 0.010, 0.035};  // h264 vp9 mpeg2
      return kRatios[format];
    }
    case InputKind::kText: {
      static const double kRatios[] = {1.0, 0.3};  // plain gz
      return kRatios[format];
    }
  }
  return 1.0;
}

Bytes MediaDescriptor::DecodedBytes() const {
  switch (kind) {
    case InputKind::kImage:
      // 3 channels, 8 bits, as decoded into a raster buffer.
      return static_cast<Bytes>(width) * height * 3;
    case InputKind::kAudio:
      // 44.1 kHz, 16-bit PCM.
      return static_cast<Bytes>(duration_s * 44100.0 * 2.0 * channels);
    case InputKind::kVideo:
      // Full decoded stream volume (frames x raster); functions typically keep
      // a working window of this, modelled per function.
      return static_cast<Bytes>(duration_s * fps * width * height * 3);
    case InputKind::kText:
      return byte_size > 0 ? byte_size : KiB(64);
  }
  return 0;
}

MediaDescriptor MediaGenerator::Generate(InputKind kind) {
  return GenerateWithByteSize(kind, 0);
}

MediaDescriptor MediaGenerator::GenerateWithByteSize(InputKind kind, Bytes target) {
  // scale = 1 draws from the natural range; a byte-size target adjusts the
  // content volume after an initial draw.
  MediaDescriptor desc;
  switch (kind) {
    case InputKind::kImage:
      desc = GenerateImage(1.0);
      break;
    case InputKind::kAudio:
      desc = GenerateAudio(1.0);
      break;
    case InputKind::kVideo:
      desc = GenerateVideo(1.0);
      break;
    case InputKind::kText:
      desc = GenerateText(1.0);
      break;
  }
  if (target > 0 && desc.byte_size > 0) {
    const double scale = static_cast<double>(target) / static_cast<double>(desc.byte_size);
    switch (kind) {
      case InputKind::kImage: {
        const double side = std::sqrt(scale);
        desc.width = std::max(16, static_cast<int>(desc.width * side));
        desc.height = std::max(16, static_cast<int>(desc.height * side));
        break;
      }
      case InputKind::kAudio:
      case InputKind::kVideo:
        desc.duration_s = std::max(0.5, desc.duration_s * scale);
        break;
      case InputKind::kText:
        break;  // byte_size set directly below.
    }
    if (kind == InputKind::kText) {
      desc.byte_size = target;
    } else {
      desc.byte_size = static_cast<Bytes>(static_cast<double>(desc.DecodedBytes()) *
                                          CompressionRatio(kind, desc.format) * desc.entropy);
      desc.byte_size = std::max<Bytes>(desc.byte_size, 256);
    }
  }
  return desc;
}

MediaDescriptor MediaGenerator::GenerateImage(double scale) {
  MediaDescriptor desc;
  desc.kind = InputKind::kImage;
  // Real-world images cluster around standard capture/display resolutions
  // (VGA, HD, 2-3 Mpx web exports, 6-12 Mpx camera sensors) with mild jitter
  // from cropping. This clustering is what makes per-function models learnable
  // from few invocations (§7.1.3).
  static const double kMpxClusters[] = {0.3, 0.5, 0.9, 2.1, 3.7, 6.0, 8.3, 12.0};
  static const double kAspects[] = {4.0 / 3.0, 3.0 / 2.0, 16.0 / 9.0, 1.0};
  const double mpx = kMpxClusters[rng_.Index(8)] * rng_.Uniform(0.92, 1.08) * scale;
  const double aspect = kAspects[rng_.Index(4)] * rng_.Uniform(0.97, 1.03);
  desc.width = std::max(16, static_cast<int>(std::sqrt(mpx * 1e6 * aspect)));
  desc.height = std::max(16, static_cast<int>(std::sqrt(mpx * 1e6 / aspect)));
  desc.format = static_cast<int>(rng_.Index(ImageFormats().size()));
  desc.entropy = rng_.Uniform(0.5, 1.5);
  desc.byte_size = std::max<Bytes>(
      static_cast<Bytes>(static_cast<double>(desc.DecodedBytes()) *
                         CompressionRatio(desc.kind, desc.format) * desc.entropy),
      256);
  return desc;
}

MediaDescriptor MediaGenerator::GenerateAudio(double scale) {
  MediaDescriptor desc;
  desc.kind = InputKind::kAudio;
  // Clips cluster around common content lengths (voice notes, songs, podcasts
  // segments) with jitter.
  static const double kDurations[] = {10.0, 30.0, 90.0, 180.0, 300.0};
  desc.duration_s = kDurations[rng_.Index(5)] * rng_.Uniform(0.85, 1.15) * scale;
  desc.channels = rng_.Bernoulli(0.8) ? 2 : 1;
  desc.format = static_cast<int>(rng_.Index(AudioFormats().size()));
  desc.entropy = rng_.Uniform(0.5, 1.5);
  desc.byte_size = std::max<Bytes>(
      static_cast<Bytes>(static_cast<double>(desc.DecodedBytes()) *
                         CompressionRatio(desc.kind, desc.format) * desc.entropy),
      256);
  return desc;
}

MediaDescriptor MediaGenerator::GenerateVideo(double scale) {
  MediaDescriptor desc;
  desc.kind = InputKind::kVideo;
  static const int kWidths[] = {640, 1280, 1920};
  static const int kHeights[] = {360, 720, 1080};
  const std::size_t res = rng_.Index(3);
  desc.width = kWidths[res];
  desc.height = kHeights[res];
  desc.fps = rng_.Bernoulli(0.5) ? 30.0 : 24.0;
  static const double kDurations[] = {6.0, 15.0, 30.0, 60.0, 120.0};
  desc.duration_s = kDurations[rng_.Index(5)] * rng_.Uniform(0.85, 1.15) * scale;
  desc.format = static_cast<int>(rng_.Index(VideoFormats().size()));
  desc.entropy = rng_.Uniform(0.5, 1.5);
  desc.byte_size = std::max<Bytes>(
      static_cast<Bytes>(static_cast<double>(desc.DecodedBytes()) *
                         CompressionRatio(desc.kind, desc.format) * desc.entropy),
      256);
  return desc;
}

MediaDescriptor MediaGenerator::GenerateText(double scale) {
  MediaDescriptor desc;
  desc.kind = InputKind::kText;
  desc.format = static_cast<int>(rng_.Index(TextFormats().size()));
  desc.entropy = rng_.Uniform(0.5, 1.5);
  desc.byte_size = static_cast<Bytes>(rng_.Uniform(64.0, 4096.0) * 1024.0 * scale);
  return desc;
}

}  // namespace ofc::workloads
