#include "src/workloads/pipelines.h"

#include <algorithm>

namespace ofc::workloads {

int PipelineSpec::NumChunks(Bytes total) const {
  if (total <= 0) {
    return 1;
  }
  return static_cast<int>(std::max<Bytes>(1, (total + chunk_size - 1) / chunk_size));
}

namespace {

std::vector<PipelineSpec> BuildPipelines() {
  std::vector<PipelineSpec> pipelines;
  pipelines.push_back({.name = "map_reduce",
                       .input_kind = InputKind::kText,
                       .chunk_size = KiB(512),
                       .stages = {{"mr_map", 0}, {"mr_reduce", 1}}});
  pipelines.push_back({.name = "THIS",
                       .input_kind = InputKind::kVideo,
                       .chunk_size = MiB(2),
                       .stages = {{"this_decode", 0}, {"this_detect", 0}, {"this_merge", 1}}});
  pipelines.push_back({.name = "IMAD",
                       .input_kind = InputKind::kText,
                       .chunk_size = MiB(1),
                       .stages = {{"imad_unpack", 0},
                                  {"imad_static_analysis", 0},
                                  {"imad_verdict", 1}}});
  pipelines.push_back({.name = "image_processing",
                       .input_kind = InputKind::kImage,
                       .chunk_size = MiB(10),
                       .stages = {{"ip_extract_meta", 1}, {"ip_transform", 1},
                                  {"ip_thumbnail", 1}}});
  return pipelines;
}

}  // namespace

const std::vector<PipelineSpec>& AllPipelines() {
  static const std::vector<PipelineSpec> kPipelines = BuildPipelines();
  return kPipelines;
}

const PipelineSpec* FindPipeline(const std::string& name) {
  for (const PipelineSpec& spec : AllPipelines()) {
    if (spec.name == name) {
      return &spec;
    }
  }
  return nullptr;
}

}  // namespace ofc::workloads
