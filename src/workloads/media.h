// Synthetic media inputs for the OFC workloads.
//
// Each input object is a MediaDescriptor: the observable metadata (byte size,
// pixel dimensions, duration, format — exactly the per-category feature sets of
// §5.1.2) plus a *hidden* content-entropy factor. Entropy drives the compressed
// byte size but is not exposed as an ML feature, which reproduces the paper's
// Figure 2 premise: byte size alone does not determine decoded footprint, so
// memory cannot be predicted from file size without the other features.
#ifndef OFC_WORKLOADS_MEDIA_H_
#define OFC_WORKLOADS_MEDIA_H_

#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"

namespace ofc::workloads {

enum class InputKind { kImage, kAudio, kVideo, kText };

std::string InputKindName(InputKind kind);

// Format tables (nominal ML features). Indexes into these lists are stored in
// MediaDescriptor::format.
const std::vector<std::string>& ImageFormats();  // jpeg, png, webp, bmp
const std::vector<std::string>& AudioFormats();  // mp3, flac, wav, ogg
const std::vector<std::string>& VideoFormats();  // h264, vp9, mpeg2
const std::vector<std::string>& TextFormats();   // plain, gz

struct MediaDescriptor {
  InputKind kind = InputKind::kImage;
  Bytes byte_size = 0;    // Compressed size as stored in the RSDS.
  int width = 0;          // Image / video.
  int height = 0;         // Image / video.
  double duration_s = 0;  // Audio / video.
  int channels = 0;       // Audio.
  double fps = 0;         // Video.
  int format = 0;         // Index into the per-kind format table.
  double entropy = 1.0;   // Hidden content-complexity factor (not a feature).

  // Decoded in-memory footprint of the raw media (bytes). This is what drives
  // function memory usage; byte_size relates to it only through format + the
  // hidden entropy.
  Bytes DecodedBytes() const;
};

// Deterministic generators; draw parameters from realistic ranges, then derive
// byte_size from the decoded content, format compression ratio, and entropy.
class MediaGenerator {
 public:
  explicit MediaGenerator(Rng rng) : rng_(rng) {}

  MediaDescriptor Generate(InputKind kind);

  // Generates with the decoded content scaled so that byte_size lands near
  // `target` (used for the input-size sweeps of Figures 3 and 7).
  MediaDescriptor GenerateWithByteSize(InputKind kind, Bytes target);

 private:
  MediaDescriptor GenerateImage(double scale);
  MediaDescriptor GenerateAudio(double scale);
  MediaDescriptor GenerateVideo(double scale);
  MediaDescriptor GenerateText(double scale);
  Rng rng_;
};

// Compression ratio (compressed bytes per decoded byte) for a kind + format.
double CompressionRatio(InputKind kind, int format);

}  // namespace ofc::workloads

#endif  // OFC_WORKLOADS_MEDIA_H_
