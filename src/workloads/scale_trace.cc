#include "src/workloads/scale_trace.h"

#include <algorithm>
#include <cmath>

#include "src/common/rng.h"
#include "src/common/sim_assert.h"
#include "src/workloads/functions.h"

namespace ofc::workloads {

const char* ScaleArrivalsName(ScaleArrivals arrivals) {
  switch (arrivals) {
    case ScaleArrivals::kPoisson:
      return "poisson";
    case ScaleArrivals::kDiurnal:
      return "diurnal";
    case ScaleArrivals::kBursty:
      return "bursty";
    case ScaleArrivals::kPeriodic:
      return "periodic";
  }
  return "unknown";
}

ScaleTrace GenerateScaleTrace(const ScaleTraceOptions& options) {
  SIM_ASSERT(options.num_tenants > 0) << "; scale trace needs at least one tenant";
  SIM_ASSERT(options.duration_s > 0.0) << "; scale trace needs a positive duration";
  SIM_ASSERT(options.rate_skew_alpha > 0.0) << "; rate skew alpha must be positive";

  ScaleTrace trace;
  trace.options = options;
  Rng rng(options.seed);
  const std::vector<FunctionSpec>& catalog = AllFunctions();

  // Heavy-tailed per-tenant weights: w = u^(-1/alpha) is Pareto(alpha)-
  // distributed for u ~ U(0,1), reproducing the "a few functions dominate,
  // 45% are invoked once an hour or less" skew from the Azure trace study.
  std::vector<double> weights(options.num_tenants);
  double weight_sum = 0.0;
  for (double& w : weights) {
    const double u = std::max(rng.NextDouble(), 1e-12);
    w = std::pow(u, -1.0 / options.rate_skew_alpha);
    weight_sum += w;
  }

  // Cohort boundaries over the (shuffled-by-weight-draw) tenant index space.
  const auto cohort_count = [&](double fraction) {
    return static_cast<std::size_t>(fraction * static_cast<double>(options.num_tenants));
  };
  const std::size_t num_diurnal = cohort_count(options.diurnal_fraction);
  const std::size_t num_bursty = cohort_count(options.bursty_fraction);
  const std::size_t num_periodic = cohort_count(options.periodic_fraction);

  trace.tenants.reserve(options.num_tenants);
  // First pass: assign shapes and per-arrival multiplicities so normalization
  // can account for bursts contributing burst_size invocations per arrival.
  double expected_per_unit_rate = 0.0;  // Σ w_i * multiplier_i
  for (std::size_t i = 0; i < options.num_tenants; ++i) {
    ScaleTraceTenant tenant;
    tenant.name = "scale-t" + std::to_string(i);
    tenant.function = catalog[i % catalog.size()].name;
    tenant.dataset_objects = options.dataset_objects;
    tenant.object_size = options.object_size;
    if (i < num_diurnal) {
      tenant.arrivals = ScaleArrivals::kDiurnal;
      tenant.diurnal_period_s = options.diurnal_period_s;
      tenant.diurnal_amplitude = std::clamp(options.diurnal_amplitude, 0.0, 1.0);
    } else if (i < num_diurnal + num_bursty) {
      tenant.arrivals = ScaleArrivals::kBursty;
      tenant.burst_size = static_cast<int>(
          rng.UniformInt(2, std::max(2, options.max_burst_size)));
      tenant.burst_spacing_s = options.burst_spacing_s;
    } else if (i < num_diurnal + num_bursty + num_periodic) {
      tenant.arrivals = ScaleArrivals::kPeriodic;
    } else {
      tenant.arrivals = ScaleArrivals::kPoisson;
    }
    const double multiplier =
        tenant.arrivals == ScaleArrivals::kBursty ? tenant.burst_size : 1.0;
    expected_per_unit_rate += weights[i] * multiplier;
    trace.tenants.push_back(std::move(tenant));
  }

  // Normalize: tenant i's arrival-event rate is weights[i] * scale, chosen so
  // Σ rate_i * multiplier_i * duration == target_invocations. The diurnal
  // modulation is rate-preserving on average (the sinusoid integrates to 0
  // over whole periods), so no cohort correction applies.
  const double scale = static_cast<double>(options.target_invocations) /
                       (expected_per_unit_rate * options.duration_s);
  for (std::size_t i = 0; i < options.num_tenants; ++i) {
    ScaleTraceTenant& tenant = trace.tenants[i];
    const double rate = weights[i] * scale;  // Arrival events per second.
    tenant.mean_interval_s = 1.0 / rate;
    const double multiplier =
        tenant.arrivals == ScaleArrivals::kBursty ? tenant.burst_size : 1.0;
    tenant.expected_invocations = rate * multiplier * options.duration_s;
    trace.expected_invocations += tenant.expected_invocations;
  }
  return trace;
}

}  // namespace ofc::workloads
