// The four multi-stage applications of the evaluation (§7): MapReduce word
// count, THIS (Thousand Island Scanner), IMAD, and the ServerlessBench Image
// Processing pipeline.
//
// Following §3, large inputs (up to hundreds of MB) are split into many small
// chunk objects; a pipeline is a barrier-synchronized sequence of stages where
// a stage either runs one task per input object (fan-out, fixed_tasks == 0) or
// a fixed number of tasks (fan-in / merge stages).
#ifndef OFC_WORKLOADS_PIPELINES_H_
#define OFC_WORKLOADS_PIPELINES_H_

#include <string>
#include <vector>

#include "src/common/units.h"
#include "src/workloads/functions.h"

namespace ofc::workloads {

struct PipelineStage {
  std::string function;  // Name resolvable via FindFunction().
  int fixed_tasks = 0;   // 0 = one task per object emitted by the previous stage.
};

struct PipelineSpec {
  std::string name;
  InputKind input_kind = InputKind::kText;
  Bytes chunk_size = KiB(512);  // Input split granularity.
  std::vector<PipelineStage> stages;

  // Number of chunk objects an input of `total` bytes is split into.
  int NumChunks(Bytes total) const;
};

const std::vector<PipelineSpec>& AllPipelines();
const PipelineSpec* FindPipeline(const std::string& name);

}  // namespace ofc::workloads

#endif  // OFC_WORKLOADS_PIPELINES_H_
