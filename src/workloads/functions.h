// Generative models of the paper's cloud functions.
//
// The artifact evaluates 19 single-stage multimedia functions (6 of them named
// in Figure 7, plus sharp_resize from Figure 3) and 4 multi-stage pipelines. We
// model each function by its resource demands:
//
//   memory  = base + decoded_footprint x (copies + arg_coeff x normalized_arg)
//             x (1 + noise)
//   compute = processed_bytes x per-MB cost x (1 + arg factor)
//   output  = input_bytes x output_ratio x arg^output_arg_power
//
// where decoded_footprint comes from the media descriptor (pixels, PCM samples,
// frame volume), NOT from the stored byte size. Combined with the hidden
// entropy factor in MediaDescriptor this yields exactly the paper's Figure 2
// structure: wide memory scatter against byte size alone, learnable structure
// against {dimensions, duration, format, argument} feature sets.
#ifndef OFC_WORKLOADS_FUNCTIONS_H_
#define OFC_WORKLOADS_FUNCTIONS_H_

#include <optional>
#include <string>
#include <vector>

#include "src/common/rng.h"
#include "src/common/units.h"
#include "src/ml/dataset.h"
#include "src/workloads/media.h"

namespace ofc::workloads {

struct ArgSpec {
  std::string name;
  double lo = 0.0;
  double hi = 1.0;
  bool integer = false;
};

struct FunctionSpec {
  std::string name;
  InputKind kind = InputKind::kImage;
  std::vector<ArgSpec> args;

  // Memory model.
  double base_mem_mb = 40.0;   // Language runtime + library baseline.
  double mem_copies = 5.0;     // Decoded-footprint multiples held at peak.
  double mem_arg_coeff = 0.0;  // Additional multiples per normalized arg[0].
  double mem_noise = 0.012;  // Relative sigma of run-to-run variation.

  // Compute model (Transform phase).
  double work_scale = 1.0;          // Fraction of decoded bytes processed.
  double compute_us_per_mb = 20.0;  // Per decoded-MB-processed cost.
  double compute_arg_coeff = 0.0;   // Multiplier per normalized arg[0].

  // Output model (Load phase payload).
  double output_ratio = 1.0;        // Output bytes per input byte.
  double output_arg_power = 0.0;    // Output scales with arg[0]^power (resize).
  // Media kind of the produced object; defaults to the input kind. Stages that
  // change modality (e.g. video decode -> raw frame data) must set this so the
  // next pipeline stage models its input correctly.
  std::optional<InputKind> output_kind;
};

// Ground-truth resource demands of one invocation.
struct InvocationDemand {
  Bytes memory = 0;        // Peak resident memory of the sandbox.
  SimDuration compute = 0;  // Transform-phase duration.
  Bytes output_size = 0;   // Load-phase payload.
};

// Samples argument values uniformly from each ArgSpec range.
std::vector<double> SampleArgs(const FunctionSpec& spec, Rng& rng);

// Evaluates the generative model. `rng` may be null for the noise-free mean.
InvocationDemand ComputeDemand(const FunctionSpec& spec, const MediaDescriptor& media,
                               const std::vector<double>& args, Rng* rng);

// Descriptor of the object a function writes: same-kind outputs keep the input
// descriptor with content scaled to the new byte size; modality-changing
// outputs (spec.output_kind) become plain data descriptors.
MediaDescriptor OutputMedia(const FunctionSpec& spec, const MediaDescriptor& input,
                            Bytes output_size);

// ---- ML feature plumbing (§5.1.2) ---------------------------------------------

// Feature attributes for this function: common features (file size, format) +
// per-kind descriptive features + the function-specific arguments.
std::vector<ml::Attribute> FeatureAttributes(const FunctionSpec& spec);

// Feature vector matching FeatureAttributes for a concrete invocation.
std::vector<double> ExtractFeatures(const FunctionSpec& spec, const MediaDescriptor& media,
                                    const std::vector<double>& args);

// ---- Registries -----------------------------------------------------------------

// The 19 single-stage functions (Figure 7's six wand_* functions, Figure 3's
// sharp_resize, and 12 more spanning image/audio/video/text).
const std::vector<FunctionSpec>& AllFunctions();

// Stage functions used by the four pipelines (MapReduce word count, THIS,
// IMAD, ServerlessBench Image Processing).
const std::vector<FunctionSpec>& PipelineStageFunctions();

// Looks up a function in either registry; nullptr when absent.
const FunctionSpec* FindFunction(const std::string& name);

}  // namespace ofc::workloads

#endif  // OFC_WORKLOADS_FUNCTIONS_H_
