#include "src/store/object_store.h"

#include <utility>

#include "src/common/logging.h"
#include "src/common/sim_assert.h"

namespace ofc::store {

std::string MakeKey(const std::string& container, const std::string& name) {
  return container + "/" + name;
}

ObjectStore::ObjectStore(sim::EventLoop* loop, StoreProfile profile, Rng rng,
                         std::string name, obs::MetricsRegistry* metrics)
    : loop_(loop), profile_(profile), rng_(rng), name_(std::move(name)) {
  InitMetrics(metrics);
}

ObjectStore::ObjectStore(sim::EventLoop* loop, sim::LatencyModel request_latency, Rng rng,
                         std::string name, std::optional<sim::LatencyModel> control_latency,
                         obs::MetricsRegistry* metrics)
    : ObjectStore(loop,
                  StoreProfile{request_latency, request_latency,
                               control_latency.value_or(sim::LatencyModel{
                                   request_latency.base, 0.0,
                                   request_latency.jitter_fraction})},
                  rng, std::move(name), metrics) {}

void ObjectStore::InitMetrics(obs::MetricsRegistry* metrics) {
  metrics_ = metrics;
  if (metrics_ == nullptr) {
    owned_metrics_ = std::make_unique<obs::MetricsRegistry>();
    metrics_ = owned_metrics_.get();
  }
  m_.reads = metrics_->GetCounter("ofc.store.reads", name_);
  m_.writes = metrics_->GetCounter("ofc.store.writes", name_);
  m_.shadow_writes = metrics_->GetCounter("ofc.store.shadow_writes", name_);
  m_.payload_finalizes = metrics_->GetCounter("ofc.store.payload_finalizes", name_);
  m_.deletes = metrics_->GetCounter("ofc.store.deletes", name_);
  m_.unavailable_errors = metrics_->GetCounter("ofc.store.unavailable_errors", name_);
  m_.webhook_bypasses = metrics_->GetCounter("ofc.store.webhook_bypasses", name_);
  m_.checksum_failures =
      metrics_->GetCounter("ofc.integrity.store_checksum_failures", name_);
  m_.integrity_repairs = metrics_->GetCounter("ofc.integrity.store_repairs", name_);
  m_.bytes_read = metrics_->GetCounter("ofc.store.bytes_read", name_);
  m_.bytes_written = metrics_->GetCounter("ofc.store.bytes_written", name_);
}

StoreStats ObjectStore::stats() const {
  StoreStats stats;
  stats.reads = m_.reads->value();
  stats.writes = m_.writes->value();
  stats.shadow_writes = m_.shadow_writes->value();
  stats.payload_finalizes = m_.payload_finalizes->value();
  stats.deletes = m_.deletes->value();
  stats.unavailable_errors = m_.unavailable_errors->value();
  stats.webhook_bypasses = m_.webhook_bypasses->value();
  stats.checksum_failures = m_.checksum_failures->value();
  stats.integrity_repairs = m_.integrity_repairs->value();
  stats.bytes_read = static_cast<Bytes>(m_.bytes_read->value());
  stats.bytes_written = static_cast<Bytes>(m_.bytes_written->value());
  return stats;
}

void ObjectStore::ResetStats() {
  m_.reads->Reset();
  m_.writes->Reset();
  m_.shadow_writes->Reset();
  m_.payload_finalizes->Reset();
  m_.deletes->Reset();
  m_.unavailable_errors->Reset();
  m_.webhook_bypasses->Reset();
  m_.checksum_failures->Reset();
  m_.integrity_repairs->Reset();
  m_.bytes_read->Reset();
  m_.bytes_written->Reset();
}

void ObjectStore::After(SimDuration delay, std::function<void()> fn) {
  loop_->ScheduleAfter(delay, std::move(fn));
}

SimDuration ObjectStore::ControlCost() { return Inflate(profile_.control.Cost(0, &rng_)); }

SimDuration ObjectStore::ReadCost(Bytes size) {
  return Inflate(profile_.read.Cost(size, &rng_));
}

SimDuration ObjectStore::WriteCost(Bytes size) {
  return Inflate(profile_.write.Cost(size, &rng_));
}

SimDuration ObjectStore::Inflate(SimDuration cost) const {
  if (latency_factor_ <= 1.0) {
    return cost;
  }
  return static_cast<SimDuration>(static_cast<double>(cost) * latency_factor_);
}

bool ObjectStore::FailIfUnavailable(const std::string& op, const std::string& key,
                                    Callback done) {
  if (available_) {
    return false;
  }
  ++*m_.unavailable_errors;
  After(ControlCost(), [op, key, done = std::move(done)]() {
    done(UnavailableError(op + ": store unavailable: " + key));
  });
  return true;
}

bool ObjectStore::FailIfUnavailable(const std::string& op, const std::string& key,
                                    MetaCallback done) {
  if (available_) {
    return false;
  }
  ++*m_.unavailable_errors;
  After(ControlCost(), [op, key, done = std::move(done)]() {
    done(UnavailableError(op + ": store unavailable: " + key));
  });
  return true;
}

void ObjectStore::Put(const std::string& key, Bytes size, Tags tags, Callback done) {
  if (FailIfUnavailable("put", key, done)) {
    return;
  }
  const SimDuration cost = WriteCost(size);
  After(cost, [this, key, size, tags = std::move(tags), done = std::move(done)]() mutable {
    ObjectMetadata& obj = objects_[key];
    const bool fresh = obj.key.empty();
    obj.key = key;
    obj.size = size;
    obj.pending_size = 0;
    obj.latest_version = next_version_++;
    obj.rsds_version = obj.latest_version;
    obj.tags = std::move(tags);
    if (fresh) {
      obj.created_at = loop_->now();
    }
    obj.modified_at = loop_->now();
    obj.checksum = ExpectedChecksum(key, obj.size, obj.rsds_version);
    // A full-payload write leaves the object in the converged state.
    SIM_ASSERT(!obj.IsShadow()) << "; Put left a shadow: " << key;
    ++*m_.writes;
    m_.bytes_written->Add(static_cast<std::uint64_t>(size));
    done(OkStatus());
  });
}

void ObjectStore::PutIfVersion(const std::string& key, ObjectVersion expected_latest,
                               Bytes size, Tags tags, Callback done) {
  PutIfVersion(key, expected_latest, size, std::move(tags), /*fingerprint=*/0,
               std::move(done));
}

void ObjectStore::PutIfVersion(const std::string& key, ObjectVersion expected_latest,
                               Bytes size, Tags tags, Checksum fingerprint,
                               Callback done) {
  if (FailIfUnavailable("put_if_version", key, done)) {
    return;
  }
  const SimDuration cost = WriteCost(size);
  After(cost, [this, key, expected_latest, size, fingerprint, tags = std::move(tags),
               done = std::move(done)]() mutable {
    // The carried fingerprint is verified before anything lands: a payload
    // damaged between the acknowledging write and this push must never be
    // installed as the authoritative copy.
    if (fingerprint != 0 && fingerprint != PayloadFingerprint(key, size)) {
      ++*m_.checksum_failures;
      done(DataLossError("put_if_version: corrupt payload push: " + key));
      return;
    }
    auto it = objects_.find(key);
    const ObjectVersion current = it == objects_.end() ? 0 : it->second.latest_version;
    // Checked when the write *lands*, not when it starts: an atomic
    // compare-and-swap against whatever arrived while it was in flight.
    if (current != expected_latest) {
      done(AbortedError("put_if_version: " + key + " advanced to v" +
                        std::to_string(current)));
      return;
    }
    ObjectMetadata& obj = objects_[key];
    const bool fresh = obj.key.empty();
    obj.key = key;
    obj.size = size;
    obj.pending_size = 0;
    obj.latest_version = next_version_++;
    obj.rsds_version = obj.latest_version;
    obj.tags = std::move(tags);
    if (fresh) {
      obj.created_at = loop_->now();
    }
    obj.modified_at = loop_->now();
    obj.checksum = ExpectedChecksum(key, obj.size, obj.rsds_version);
    SIM_ASSERT(!obj.IsShadow()) << "; PutIfVersion left a shadow: " << key;
    ++*m_.writes;
    m_.bytes_written->Add(static_cast<std::uint64_t>(size));
    done(OkStatus());
  });
}

void ObjectStore::PutShadow(const std::string& key, Bytes pending_size, MetaCallback done) {
  if (FailIfUnavailable("put_shadow", key, done)) {
    return;
  }
  After(ControlCost(), [this, key, pending_size, done = std::move(done)]() {
    ObjectMetadata& obj = objects_[key];
    const bool fresh = obj.key.empty();
    obj.key = key;
    obj.pending_size = pending_size;
    obj.latest_version = next_version_++;
    if (fresh) {
      obj.created_at = loop_->now();
      obj.rsds_version = 0;
    }
    obj.modified_at = loop_->now();
    // Shadow state machine: the placeholder's cache-visible version is always
    // strictly ahead of the RSDS-resident payload version.
    SIM_ASSERT(obj.rsds_version < obj.latest_version)
        << "; shadow write did not advance latest_version: " << key;
    ++*m_.shadow_writes;
    done(obj);
  });
}

void ObjectStore::FinalizePayload(const std::string& key, ObjectVersion version, Bytes size,
                                  Callback done) {
  FinalizePayload(key, version, size, /*fingerprint=*/0, std::move(done));
}

void ObjectStore::FinalizePayload(const std::string& key, ObjectVersion version, Bytes size,
                                  Checksum fingerprint, Callback done) {
  if (FailIfUnavailable("finalize", key, done)) {
    return;
  }
  const SimDuration cost = WriteCost(size);
  After(cost, [this, key, version, size, fingerprint, done = std::move(done)]() {
    if (fingerprint != 0 && fingerprint != PayloadFingerprint(key, size)) {
      ++*m_.checksum_failures;
      done(DataLossError("finalize: corrupt payload push: " + key));
      return;
    }
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      done(NotFoundError("finalize: " + key));
      return;
    }
    ObjectMetadata& obj = it->second;
    if (version <= obj.rsds_version) {
      done(AbortedError("finalize out of order: " + key));
      return;
    }
    obj.rsds_version = version;
    obj.size = size;
    obj.checksum = ExpectedChecksum(key, obj.size, obj.rsds_version);
    // Persistors only install versions that a shadow write announced: the
    // RSDS-resident version catches up but never overtakes latest_version.
    SIM_ASSERT(obj.rsds_version <= obj.latest_version)
        << "; finalize overtook latest: " << key << " v" << version << " > v"
        << obj.latest_version;
    if (obj.rsds_version == obj.latest_version) {
      obj.pending_size = 0;
    }
    obj.modified_at = loop_->now();
    ++*m_.payload_finalizes;
    m_.bytes_written->Add(static_cast<std::uint64_t>(size));
    done(OkStatus());
  });
}

void ObjectStore::Get(const std::string& key, MetaCallback done) {
  if (FailIfUnavailable("get", key, done)) {
    return;
  }
  auto it = objects_.find(key);
  // Cost is computed up front from the current size; a miss costs one RTT.
  const SimDuration cost = it == objects_.end() ? ControlCost() : ReadCost(it->second.size);
  After(cost, [this, key, done = std::move(done)]() mutable {
    auto it2 = objects_.find(key);
    if (it2 == objects_.end()) {
      done(NotFoundError("get: " + key));
      return;
    }
    ++*m_.reads;
    m_.bytes_read->Add(static_cast<std::uint64_t>(it2->second.size));
    ObjectMetadata& obj = it2->second;
    const Checksum expected = ExpectedChecksum(key, obj.size, obj.rsds_version);
    if (obj.checksum != expected) {
      // Rotted copy: object stores hold their own internal redundancy, so the
      // read is retried against another replica (one extra payload read) and
      // the damaged copy repaired in place. Corrupt data is never returned.
      ++*m_.checksum_failures;
      obj.checksum = expected;
      ++*m_.integrity_repairs;
      After(ReadCost(obj.size), [this, key, done = std::move(done)]() {
        auto it3 = objects_.find(key);
        if (it3 == objects_.end()) {
          done(NotFoundError("get: " + key));
          return;
        }
        m_.bytes_read->Add(static_cast<std::uint64_t>(it3->second.size));
        done(it3->second);
      });
      return;
    }
    done(obj);
  });
}

void ObjectStore::Head(const std::string& key, MetaCallback done) {
  if (FailIfUnavailable("head", key, done)) {
    return;
  }
  After(ControlCost(), [this, key, done = std::move(done)]() {
    auto it = objects_.find(key);
    if (it == objects_.end()) {
      done(NotFoundError("head: " + key));
      return;
    }
    done(it->second);
  });
}

void ObjectStore::Delete(const std::string& key, Callback done) {
  if (FailIfUnavailable("delete", key, done)) {
    return;
  }
  After(ControlCost(), [this, key, done = std::move(done)]() {
    if (objects_.erase(key) == 0) {
      done(NotFoundError("delete: " + key));
      return;
    }
    ++*m_.deletes;
    done(OkStatus());
  });
}

void ObjectStore::ExternalRead(const std::string& key, MetaCallback done) {
  if (read_webhook_ && !webhooks_enabled_) {
    // Dropped webhook: the read proceeds without waiting for the persistor, so
    // an external client may observe a stale payload. Counted, never silent.
    ++*m_.webhook_bypasses;
    Get(key, std::move(done));
    return;
  }
  if (read_webhook_) {
    // The webhook must complete (e.g. waiting on a persistor boost) before the
    // external read proceeds against the store.
    read_webhook_(key, [this, key, done = std::move(done)]() mutable {
      Get(key, std::move(done));
    });
    return;
  }
  Get(key, std::move(done));
}

void ObjectStore::ExternalWrite(const std::string& key, Bytes size, Callback done) {
  if (write_webhook_ && !webhooks_enabled_) {
    // Dropped webhook: cached copies are not invalidated for this write.
    ++*m_.webhook_bypasses;
    Put(key, size, {}, std::move(done));
    return;
  }
  if (write_webhook_) {
    write_webhook_(key, [this, key, size, done = std::move(done)]() mutable {
      Put(key, size, {}, std::move(done));
    });
    return;
  }
  Put(key, size, {}, std::move(done));
}

Result<ObjectMetadata> ObjectStore::Stat(const std::string& key) const {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return NotFoundError("stat: " + key);
  }
  return it->second;
}

std::vector<std::string> ObjectStore::Keys() const {
  std::vector<std::string> keys;
  keys.reserve(objects_.size());
  for (const auto& [key, obj] : objects_) {
    keys.push_back(key);
  }
  return keys;
}

Bytes ObjectStore::TotalBytes() const {
  Bytes total = 0;
  for (const auto& [key, obj] : objects_) {
    total += obj.size;
  }
  return total;
}

void ObjectStore::Seed(const std::string& key, Bytes size, Tags tags) {
  ObjectMetadata& obj = objects_[key];
  obj.key = key;
  obj.size = size;
  obj.latest_version = next_version_++;
  obj.rsds_version = obj.latest_version;
  obj.tags = std::move(tags);
  obj.created_at = loop_->now();
  obj.modified_at = loop_->now();
  obj.checksum = ExpectedChecksum(key, obj.size, obj.rsds_version);
}

int ObjectStore::Rot(int flips) {
  int flipped = 0;
  for (auto& [key, obj] : objects_) {
    if (flipped >= flips) {
      break;
    }
    const Checksum expected = ExpectedChecksum(key, obj.size, obj.rsds_version);
    // Only damage currently-healthy copies: CorruptChecksum is an involution,
    // so re-corrupting an already-rotted object would silently heal it.
    if (obj.checksum != expected) {
      continue;
    }
    obj.checksum = CorruptChecksum(obj.checksum);
    ++flipped;
  }
  return flipped;
}

int ObjectStore::ScrubKey(const std::string& key) {
  auto it = objects_.find(key);
  if (it == objects_.end()) {
    return 0;
  }
  ObjectMetadata& obj = it->second;
  const Checksum expected = ExpectedChecksum(key, obj.size, obj.rsds_version);
  if (obj.checksum == expected) {
    return 0;
  }
  ++*m_.checksum_failures;
  obj.checksum = expected;
  ++*m_.integrity_repairs;
  return 1;
}

}  // namespace ofc::store
