// ObjectStore: the remote shared data store (RSDS) substrate.
//
// Models a Swift/S3-style object store as used by OFC (§3, §6.2): containers of
// versioned objects with metadata tags, plus the two OFC-specific extensions the
// paper adds to Swift (15 LoC there):
//   * shadow objects — an empty-payload placeholder carrying two version
//     numbers (latest vs RSDS-resident), created synchronously on the write path
//     so external readers can detect a stale payload;
//   * webhooks — read/write interposition handlers, used to block external
//     reads until the persistor catches up and to invalidate cached copies on
//     external writes.
//
// The same class also serves as the Redis-style IMOC baseline (OWK-Redis): only
// the latency profile differs. All operations are asynchronous on the shared
// sim::EventLoop with calibrated latency models.
#ifndef OFC_STORE_OBJECT_STORE_H_
#define OFC_STORE_OBJECT_STORE_H_

#include <cstdint>
#include <functional>
#include <map>
#include <memory>
#include <optional>
#include <string>
#include <vector>

#include "src/common/checksum.h"
#include "src/common/rng.h"
#include "src/common/status.h"
#include "src/common/units.h"
#include "src/obs/metrics.h"
#include "src/sim/event_loop.h"
#include "src/sim/latency.h"

namespace ofc::store {

using ObjectVersion = std::uint64_t;

// Key = "container/object"; helpers keep call sites tidy.
std::string MakeKey(const std::string& container, const std::string& name);

// Feature tags extracted at object-creation time (§5.1.2: extraction runs as a
// background task so it is off the invocation critical path).
using Tags = std::map<std::string, std::string>;

struct ObjectMetadata {
  std::string key;
  Bytes size = 0;                 // Size of the payload resident in the RSDS.
  Bytes pending_size = 0;         // Size the shadow version will have once persisted.
  ObjectVersion latest_version = 0;  // Most recent logical version (cache-visible).
  ObjectVersion rsds_version = 0;    // Version whose payload the RSDS holds.
  Tags tags;
  SimTime created_at = 0;
  SimTime modified_at = 0;
  // Integrity: checksum stored with the RSDS-resident payload. Healthy objects
  // hold ExpectedChecksum(key, size, rsds_version); shadow writes leave it
  // untouched (the resident payload has not changed yet).
  Checksum checksum = 0;

  // A shadow object's payload has not yet been persisted by a persistor task.
  bool IsShadow() const { return rsds_version < latest_version; }
};

// Snapshot view over the store's `ofc.store.*` registry counters (cells are
// labeled with the store's name, so several stores share one registry).
struct StoreStats {
  std::uint64_t reads = 0;
  std::uint64_t writes = 0;
  std::uint64_t shadow_writes = 0;
  std::uint64_t payload_finalizes = 0;
  std::uint64_t deletes = 0;
  std::uint64_t unavailable_errors = 0;  // Ops rejected during an outage.
  std::uint64_t webhook_bypasses = 0;    // External ops while webhooks dropped.
  std::uint64_t checksum_failures = 0;   // Corrupt payloads detected (get/scrub/land).
  std::uint64_t integrity_repairs = 0;   // Repaired from the store's own redundancy.
  Bytes bytes_read = 0;
  Bytes bytes_written = 0;
};

// Latency profile of a store deployment. Reads and writes are priced
// separately (object stores replicate synchronously on write: Swift/S3 writes
// are several times slower than reads); control operations (HEAD/DELETE/shadow
// puts) carry no payload.
struct StoreProfile {
  sim::LatencyModel read;
  sim::LatencyModel write;
  sim::LatencyModel control;

  // Swift deployment of §7 (same-switch cluster; ~11 ms metadata ops).
  static StoreProfile Swift() {
    return StoreProfile{sim::LatencyModel{Millis(18), 120e6, 0.05},
                        sim::LatencyModel{Millis(42), 90e6, 0.05},
                        sim::LatencyModel{Millis(11), 0.0, 0.05}};
  }
  // AWS S3 as used in the §2.2.3 motivation experiment.
  static StoreProfile S3() {
    return StoreProfile{sim::LatencyModel{Millis(28), 80e6, 0.10},
                        sim::LatencyModel{Millis(60), 60e6, 0.10},
                        sim::LatencyModel{Millis(16), 0.0, 0.10}};
  }
  // Redis IMOC as measured through a FaaS runtime's client stack (OWK-Redis
  // baseline; §2.2.3's ElastiCache): network RTT plus (de)serialization put the
  // per-operation cost in the milliseconds, an order of magnitude below the
  // RSDS but far above raw in-memory access.
  static StoreProfile Redis() {
    return StoreProfile{sim::LatencyModel{Millis(5), 250e6, 0.05},
                        sim::LatencyModel{Millis(7), 220e6, 0.05},
                        sim::LatencyModel{Millis(2), 0.0, 0.05}};
  }
};

class ObjectStore {
 public:
  using Callback = std::function<void(Status)>;
  using MetaCallback = std::function<void(Result<ObjectMetadata>)>;

  // Webhooks receive the key and a `resume` continuation; the store completes
  // the triggering external operation only after `resume` runs, which lets the
  // handler wait for a persistor (§6.2).
  using Webhook = std::function<void(const std::string& key, std::function<void()> resume)>;

  // `metrics` (optional) is the shared observability registry; null -> the
  // store owns a private one.
  ObjectStore(sim::EventLoop* loop, StoreProfile profile, Rng rng, std::string name,
              obs::MetricsRegistry* metrics = nullptr);

  // Convenience: symmetric read/write latency (unit tests, simple setups);
  // control ops default to the request model's fixed cost.
  ObjectStore(sim::EventLoop* loop, sim::LatencyModel request_latency, Rng rng,
              std::string name,
              std::optional<sim::LatencyModel> control_latency = std::nullopt,
              obs::MetricsRegistry* metrics = nullptr);

  const std::string& name() const { return name_; }

  // ---- FaaS-side data path (used by functions and the persistor) ----

  // Full-payload write: creates or replaces the object; bumps both versions.
  void Put(const std::string& key, Bytes size, Tags tags, Callback done);

  // Conditional full-payload write (an If-Match/ETag-guarded PUT): behaves like
  // Put, but only when the key's latest_version still equals `expected_latest`
  // (0 = key absent) at the moment the write lands — otherwise the object is
  // left intact and the write fails with kAborted. The proxy's degraded
  // (shadow-less) persistor pushes through this so a stale fallback payload can
  // never clobber a write acknowledged after the store healed.
  void PutIfVersion(const std::string& key, ObjectVersion expected_latest, Bytes size,
                    Tags tags, Callback done);
  // PutIfVersion carrying the payload fingerprint the proxy stamped at write
  // time: a fingerprint that fails verification at landing is rejected with
  // kDataLoss instead of being installed — a conflict-safe write-back stays
  // verifiable end to end. `fingerprint` == 0 skips the check (legacy callers).
  void PutIfVersion(const std::string& key, ObjectVersion expected_latest, Bytes size,
                    Tags tags, Checksum fingerprint, Callback done);

  // Shadow write: synchronously records a placeholder for a new version whose
  // payload currently lives only in the cache. Constant latency (empty body).
  void PutShadow(const std::string& key, Bytes pending_size, MetaCallback done);

  // Persistor push: installs the payload for `version`. Out-of-order pushes
  // (version <= rsds_version) return kAborted so successive updates propagate
  // in order (§6.2). Unknown keys return kNotFound.
  void FinalizePayload(const std::string& key, ObjectVersion version, Bytes size,
                       Callback done);
  // Fingerprint-carrying variant, mirroring PutIfVersion: a corrupt payload
  // push is rejected with kDataLoss at landing and counted, never installed.
  void FinalizePayload(const std::string& key, ObjectVersion version, Bytes size,
                       Checksum fingerprint, Callback done);

  // Payload read; latency scales with the object size.
  void Get(const std::string& key, MetaCallback done);

  // Metadata-only read; constant latency.
  void Head(const std::string& key, MetaCallback done);

  void Delete(const std::string& key, Callback done);

  // ---- External-client path (non-FaaS applications; triggers webhooks) ----

  void ExternalRead(const std::string& key, MetaCallback done);
  void ExternalWrite(const std::string& key, Bytes size, Callback done);

  void set_read_webhook(Webhook hook) { read_webhook_ = std::move(hook); }
  void set_write_webhook(Webhook hook) { write_webhook_ = std::move(hook); }

  // ---- Fault-injection hooks (src/fault/) ----------------------------------
  //
  // Availability and latency are properties of the *deployment*, not the data:
  // an unavailable store fails every asynchronous operation with kUnavailable
  // after one control round-trip (the client sees a fast error, not a hang); a
  // brownout multiplies every operation's latency by `factor` while leaving
  // results intact. Both are synchronous management-plane toggles driven by the
  // FaultInjector and apply to operations *started* while the condition holds.

  void SetAvailable(bool available) { available_ = available; }
  bool available() const { return available_; }

  // `factor` >= 1.0 inflates all operation latencies (1.0 = healthy).
  void SetLatencyFactor(double factor) { latency_factor_ = factor < 1.0 ? 1.0 : factor; }
  double latency_factor() const { return latency_factor_; }

  // Webhook drop: while disabled, external operations bypass the read/write
  // interposition handlers entirely (counted, so tests can observe the loss of
  // the consistency guarantee rather than silently missing it).
  void SetWebhooksEnabled(bool enabled) { webhooks_enabled_ = enabled; }
  bool webhooks_enabled() const { return webhooks_enabled_; }

  // Bit rot (kStoreRot): flips the stored checksum of up to `flips` currently
  // healthy objects in key order (replayable). Returns how many were damaged.
  // Detection happens on the next Get or scrub pass; repair uses the store's
  // own internal redundancy (object stores keep 3 copies), so unlike the cache
  // a rotted RSDS object self-repairs without an external good copy.
  int Rot(int flips);

  // Scrub support: verifies `key` and repairs a rotted checksum in place.
  // Returns 1 when corruption was found (and repaired), 0 otherwise (including
  // unknown keys — the scrubber's walk races deletes by design).
  int ScrubKey(const std::string& key);

  // ---- Management / test plane (synchronous, zero simulated cost) ----

  Result<ObjectMetadata> Stat(const std::string& key) const;
  bool Exists(const std::string& key) const { return objects_.contains(key); }
  std::size_t NumObjects() const { return objects_.size(); }
  // All object keys in sorted order (chaos-harness consistency sweeps).
  std::vector<std::string> Keys() const;
  Bytes TotalBytes() const;
  // Assembled on demand from the metrics registry.
  StoreStats stats() const;
  void ResetStats();
  obs::MetricsRegistry& metrics() { return *metrics_; }
  // Seeds an object instantly (dataset preparation in FaaSLoad).
  void Seed(const std::string& key, Bytes size, Tags tags);

 private:
  // Registry cells behind StoreStats, labeled with the store's name.
  struct Metrics {
    obs::Counter* reads = nullptr;
    obs::Counter* writes = nullptr;
    obs::Counter* shadow_writes = nullptr;
    obs::Counter* payload_finalizes = nullptr;
    obs::Counter* deletes = nullptr;
    obs::Counter* unavailable_errors = nullptr;
    obs::Counter* webhook_bypasses = nullptr;
    obs::Counter* checksum_failures = nullptr;
    obs::Counter* integrity_repairs = nullptr;
    obs::Counter* bytes_read = nullptr;
    obs::Counter* bytes_written = nullptr;
  };
  void InitMetrics(obs::MetricsRegistry* metrics);

  void After(SimDuration delay, std::function<void()> fn);
  SimDuration ControlCost();
  SimDuration ReadCost(Bytes size);
  SimDuration WriteCost(Bytes size);
  // Applies the brownout multiplier to a computed cost.
  SimDuration Inflate(SimDuration cost) const;
  // Outage guard: when the store is down, schedules `done(kUnavailable)` after
  // one control round-trip and returns true (the operation must bail out).
  bool FailIfUnavailable(const std::string& op, const std::string& key, Callback done);
  bool FailIfUnavailable(const std::string& op, const std::string& key, MetaCallback done);

  sim::EventLoop* loop_;
  StoreProfile profile_;
  Rng rng_;
  std::string name_;
  // Ordered: TotalBytes() and future listings iterate this map; keeping it
  // sorted removes hash order from every export path.
  std::map<std::string, ObjectMetadata> objects_;
  Webhook read_webhook_;
  Webhook write_webhook_;
  bool available_ = true;
  double latency_factor_ = 1.0;  // Brownout multiplier; 1.0 = healthy.
  bool webhooks_enabled_ = true;
  std::unique_ptr<obs::MetricsRegistry> owned_metrics_;  // When none injected.
  obs::MetricsRegistry* metrics_ = nullptr;
  Metrics m_;
  ObjectVersion next_version_ = 1;
};

}  // namespace ofc::store

#endif  // OFC_STORE_OBJECT_STORE_H_
