#include "src/ramcloud/segmented_log.h"

#include <algorithm>
#include <cmath>

#include "src/common/sim_assert.h"

namespace ofc::rc {

SegmentedLog::SegmentedLog(SegmentedLogOptions options) : options_(options) {
  SIM_ASSERT(options_.segment_size > 0);
}

double SegmentedLog::utilization() const {
  return footprint_ <= 0 ? 1.0
                         : static_cast<double>(live_bytes_) / static_cast<double>(footprint_);
}

Result<Bytes> SegmentedLog::EntrySize(EntryId id) const {
  auto it = entry_segment_.find(id);
  if (it == entry_segment_.end()) {
    return NotFoundError("no such log entry");
  }
  return segments_[it->second].entries.at(id);
}

std::size_t SegmentedLog::AllocateSegment(Bytes cap) {
  std::size_t index;
  if (!free_slots_.empty()) {
    index = free_slots_.back();
    free_slots_.pop_back();
  } else {
    index = segments_.size();
    segments_.emplace_back();
  }
  Segment& segment = segments_[index];
  segment.allocated = true;
  segment.cap = cap;
  segment.live = 0;
  segment.used = 0;
  segment.entries.clear();
  ++allocated_segments_;
  footprint_ += cap;
  ++stats_.segments_allocated;
  return index;
}

void SegmentedLog::ReleaseSegment(std::size_t index) {
  Segment& segment = segments_[index];
  SIM_ASSERT(segment.allocated && segment.entries.empty())
      << "; releasing segment " << index << " with " << segment.entries.size() << " live entries";
  footprint_ -= segment.cap;
  SIM_ASSERT(footprint_ >= 0) << "; footprint underflow releasing segment " << index;
  segment.allocated = false;
  segment.cap = 0;
  segment.live = 0;
  segment.used = 0;
  --allocated_segments_;
  free_slots_.push_back(index);
  ++stats_.segments_reclaimed;
}

int SegmentedLog::FindSlot(Bytes size, Bytes capacity) {
  // Jumbo entries get a dedicated exact-size segment.
  if (size > options_.segment_size) {
    if (footprint_ + size > capacity) {
      return -1;
    }
    return static_cast<int>(AllocateSegment(size));
  }
  // First allocated segment with contiguous room (append-only within segments).
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    const Segment& segment = segments_[i];
    if (segment.allocated && segment.cap == options_.segment_size &&
        segment.used + size <= segment.cap) {
      return static_cast<int>(i);
    }
  }
  if (footprint_ + options_.segment_size > capacity) {
    return -1;
  }
  return static_cast<int>(AllocateSegment(options_.segment_size));
}

Result<SegmentedLog::EntryId> SegmentedLog::Append(Bytes size, Bytes capacity,
                                                   SimDuration* cleaning_cost) {
  if (size <= 0) {
    return InvalidArgumentError("non-positive entry size");
  }
  int slot = FindSlot(size, capacity);
  if (slot < 0) {
    // Out of footprint: compact, then retry once.
    const CleanResult cleaned = Clean(capacity - std::min(capacity, size));
    if (cleaning_cost != nullptr) {
      *cleaning_cost += cleaned.duration;
    }
    slot = FindSlot(size, capacity);
    if (slot < 0) {
      return ResourceExhaustedError("log footprint would exceed capacity");
    }
  }
  Segment& segment = segments_[static_cast<std::size_t>(slot)];
  const EntryId id = next_id_++;
  segment.entries.emplace(id, size);
  segment.live += size;
  segment.used += size;
  entry_segment_.emplace(id, static_cast<std::size_t>(slot));
  live_bytes_ += size;
  ++stats_.appends;
  // Per-segment accounting: live never exceeds appended, appended never
  // exceeds the segment capacity; global live never exceeds the footprint.
  SIM_ASSERT(segment.live <= segment.used && segment.used <= segment.cap)
      << "; segment " << slot << " live=" << segment.live << " used=" << segment.used
      << " cap=" << segment.cap;
  SIM_ASSERT(live_bytes_ <= footprint_)
      << "; live=" << live_bytes_ << " footprint=" << footprint_;
  return id;
}

Status SegmentedLog::Free(EntryId id) {
  auto it = entry_segment_.find(id);
  if (it == entry_segment_.end()) {
    return NotFoundError("no such log entry");
  }
  const std::size_t segment_index = it->second;
  Segment& segment = segments_[segment_index];
  const Bytes size = segment.entries.at(id);
  segment.entries.erase(id);
  segment.live -= size;  // Dead bytes stay in `used` until the cleaner runs.
  live_bytes_ -= size;
  entry_segment_.erase(it);
  ++stats_.frees;
  SIM_ASSERT(segment.live >= 0 && live_bytes_ >= 0)
      << "; entry " << id << " freed twice? segment live=" << segment.live
      << " total live=" << live_bytes_;
  // Fast path: a fully dead segment is reclaimed immediately (no copying).
  if (segment.entries.empty()) {
    ReleaseSegment(segment_index);
  }
  return OkStatus();
}

CleanResult SegmentedLog::Clean(Bytes max_footprint) {
  CleanResult result;
  ++stats_.cleaner_runs;

  // Reclaim fully dead segments first (free of copying).
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].allocated && segments_[i].entries.empty()) {
      ReleaseSegment(i);
      ++result.segments_freed;
    }
  }

  // Segments are append-only: compaction copies live entries out of the
  // least-live *victim* segments into freshly allocated *survivor* segments
  // (the RAMCloud cleaner), then releases the victims. A victim batch is
  // profitable when its live bytes pack into fewer segments than it occupies.
  std::vector<std::size_t> standard;
  for (std::size_t i = 0; i < segments_.size(); ++i) {
    if (segments_[i].allocated && segments_[i].cap == options_.segment_size) {
      standard.push_back(i);
    }
  }
  std::sort(standard.begin(), standard.end(), [&](std::size_t a, std::size_t b) {
    return segments_[a].live < segments_[b].live;
  });
  // Largest prefix whose live bytes fit into strictly fewer segments.
  Bytes prefix_live = 0;
  std::size_t victims = 0;
  for (std::size_t i = 0; i < standard.size(); ++i) {
    prefix_live += segments_[standard[i]].live;
    if (prefix_live <= static_cast<Bytes>(i) * options_.segment_size) {
      victims = i + 1;
    }
  }
  if (victims >= 2) {
    std::vector<std::size_t> survivors;
    auto place = [&](EntryId id, Bytes size) {
      for (std::size_t s : survivors) {
        if (segments_[s].used + size <= segments_[s].cap) {
          Segment& target = segments_[s];
          target.entries.emplace(id, size);
          target.live += size;
          target.used += size;
          entry_segment_[id] = s;
          return;
        }
      }
      const std::size_t fresh = AllocateSegment(options_.segment_size);
      survivors.push_back(fresh);
      Segment& target = segments_[fresh];
      target.entries.emplace(id, size);
      target.live += size;
      target.used += size;
      entry_segment_[id] = fresh;
    };
    for (std::size_t v = 0; v < victims; ++v) {
      const std::size_t index = standard[v];
      std::vector<std::pair<EntryId, Bytes>> to_move(segments_[index].entries.begin(),
                                                     segments_[index].entries.end());
      for (const auto& [id, size] : to_move) {
        segments_[index].entries.erase(id);
        segments_[index].live -= size;
        place(id, size);
        result.bytes_copied += size;
      }
      ReleaseSegment(index);
    }
    result.segments_freed +=
        static_cast<int>(victims) - static_cast<int>(survivors.size());
  }

  // Full re-derivation of the incremental accounting (Debug builds only).
  SIM_DCHECK([&] {
    Bytes live = 0;
    Bytes cap = 0;
    for (const Segment& segment : segments_) {
      if (segment.allocated) {
        live += segment.live;
        cap += segment.cap;
      }
    }
    return live == live_bytes_ && cap == footprint_;
  }()) << "; cleaner corrupted live/footprint accounting";

  (void)max_footprint;  // The caller compares footprint() afterwards.
  stats_.cleaner_bytes_copied += result.bytes_copied;
  result.duration = static_cast<SimDuration>(
      static_cast<double>(result.bytes_copied) / options_.cleaner_bytes_per_second * 1e6);
  return result;
}

}  // namespace ofc::rc
